(* wipdb_cli: an interactive/administrative front end for a WipDB store on
   a real filesystem directory. Subcommands mirror the public API:

     wipdb_cli put    --db /tmp/db key value
     wipdb_cli get    --db /tmp/db key
     wipdb_cli delete --db /tmp/db key
     wipdb_cli scan   --db /tmp/db --lo a --hi z [--limit N]
     wipdb_cli load   --db /tmp/db --ops 100000 [--dist uniform|zipfian|...]
     wipdb_cli stats  --db /tmp/db
     wipdb_cli compact --db /tmp/db

   plus the service layer: `serve` exposes a sharded store over the
   binary wire protocol, and `client` speaks it from the command line:

     wipdb_cli serve  --db /tmp/db --addr 127.0.0.1 --port 7070 --shards 4
     wipdb_cli client get   --port 7070 key
     wipdb_cli client put   --port 7070 key value
     wipdb_cli client bench --port 7070 --ops 100000 *)

open Cmdliner

let open_store dir =
  let env = Wip_storage.Env.posix ~root:dir in
  let cfg = { Wipdb.Config.default with Wipdb.Config.name = "wipdb" } in
  (env, Wipdb.Store.recover ~env cfg)

let db_arg =
  let doc = "Store directory (created on first use)." in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

let finish db =
  Wipdb.Store.checkpoint db;
  `Ok ()

let put_cmd =
  let run dir key value =
    let _, db = open_store dir in
    Wipdb.Store.put db ~key ~value;
    finish db
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE") in
  Cmd.v (Cmd.info "put" ~doc:"Insert or update one key")
    Term.(ret (const run $ db_arg $ key $ value))

let get_cmd =
  let run dir key =
    let _, db = open_store dir in
    (match Wipdb.Store.get db key with
    | Some v -> print_endline v
    | None ->
      prerr_endline "(not found)";
      exit 1);
    `Ok ()
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v (Cmd.info "get" ~doc:"Look up one key")
    Term.(ret (const run $ db_arg $ key))

let delete_cmd =
  let run dir key =
    let _, db = open_store dir in
    Wipdb.Store.delete db ~key;
    finish db
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v (Cmd.info "delete" ~doc:"Delete one key")
    Term.(ret (const run $ db_arg $ key))

let scan_cmd =
  let run dir lo hi limit =
    let _, db = open_store dir in
    List.iter
      (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
      (Wipdb.Store.scan db ~lo ~hi ~limit ());
    `Ok ()
  in
  let lo = Arg.(value & opt string "" & info [ "lo" ] ~docv:"KEY") in
  let hi = Arg.(value & opt string "\255" & info [ "hi" ] ~docv:"KEY") in
  let limit = Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N") in
  Cmd.v (Cmd.info "scan" ~doc:"Range scan [lo, hi)")
    Term.(ret (const run $ db_arg $ lo $ hi $ limit))

let dist_conv =
  let parse = function
    | "uniform" -> Ok Wip_workload.Distribution.Uniform
    | "zipfian" ->
      Ok (Wip_workload.Distribution.Zipfian { theta = 0.99; scrambled = true })
    | "exponential" -> Ok (Wip_workload.Distribution.Exponential { rate = 10.0 })
    | "normal" ->
      Ok (Wip_workload.Distribution.Normal { mean_frac = 0.5; stddev_frac = 0.125 })
    | "sequential" -> Ok Wip_workload.Distribution.Sequential
    | s -> Error (`Msg ("unknown distribution: " ^ s))
  in
  Arg.conv (parse, fun fmt d ->
      Format.pp_print_string fmt (Wip_workload.Distribution.shape_name d))

let load_cmd =
  let run dir ops shape value_size =
    let _, db = open_store dir in
    let dist =
      Wip_workload.Distribution.make shape ~space:1_000_000_000L ~seed:42L
    in
    let rng = Wip_util.Rng.create ~seed:7L in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to ops do
      let key = Wip_workload.Key_codec.encode (Wip_workload.Distribution.next dist) in
      Wipdb.Store.put db ~key
        ~value:(Bytes.to_string (Wip_util.Rng.bytes rng value_size))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "loaded %d items in %.2f s (%.0f ops/s)\n" ops dt
      (float_of_int ops /. dt);
    finish db
  in
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N") in
  let dist =
    Arg.(value & opt dist_conv Wip_workload.Distribution.Uniform
         & info [ "dist" ] ~docv:"DIST")
  in
  let vsize = Arg.(value & opt int 100 & info [ "value-size" ] ~docv:"BYTES") in
  Cmd.v (Cmd.info "load" ~doc:"Bulk-load synthetic data")
    Term.(ret (const run $ db_arg $ ops $ dist $ vsize))

let stats_cmd =
  let run dir =
    let env, db = open_store dir in
    let stats = Wip_storage.Env.stats env in
    Printf.printf "buckets:       %d\n" (Wipdb.Store.bucket_count db);
    Printf.printf "splits:        %d\n" (Wipdb.Store.split_count db);
    Printf.printf "compactions:   %d\n" (Wipdb.Store.compaction_count db);
    Printf.printf "sequence:      %Ld\n" (Wipdb.Store.sequence db);
    Printf.printf "wal bytes:     %d\n" (Wipdb.Store.wal_bytes db);
    Printf.printf "files:         %d\n" (List.length (Wipdb.Store.file_sizes db));
    Printf.printf "live bytes:    %d\n" (Wip_storage.Env.total_live_bytes env);
    Printf.printf "session WA:    %.2f\n"
      (Wip_storage.Io_stats.write_amplification stats);
    List.iteri
      (fun i (info : Wipdb.Store.bucket_info) ->
        if i < 20 then
          Printf.printf "  bucket %3d lo=%-18s mem=%-5d sublevels=%s bytes=%d\n" i
            (if info.Wipdb.Store.lo = "" then "(min)" else info.Wipdb.Store.lo)
            info.Wipdb.Store.memtable_items
            (String.concat "/"
               (List.map string_of_int info.Wipdb.Store.sublevels_per_level))
            info.Wipdb.Store.bytes)
      (Wipdb.Store.bucket_infos db);
    `Ok ()
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show store statistics")
    Term.(ret (const run $ db_arg))

let compact_cmd =
  let run dir =
    let _, db = open_store dir in
    Wipdb.Store.flush db;
    Wipdb.Store.maintenance db ();
    finish db
  in
  Cmd.v (Cmd.info "compact" ~doc:"Flush memtables and run all compactions")
    Term.(ret (const run $ db_arg))

(* db_bench-style micro-benchmark suite over a fresh in-memory store. *)
let bench_cmd =
  let run ops value_size names =
    let fresh () =
      Wipdb.Store.create
        { Wipdb.Config.default with Wipdb.Config.name = "bench" }
    in
    let rng = Wip_util.Rng.create ~seed:0xD8L in
    let value () = Bytes.to_string (Wip_util.Rng.bytes rng value_size) in
    let rand_key () =
      Wip_workload.Key_codec.encode (Wip_util.Rng.int64 rng 1_000_000_000L)
    in
    let timed name f =
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%-14s %10d ops in %7.3f s  = %9.0f ops/s\n%!" name ops dt
        (float_of_int ops /. dt)
    in
    let preloaded = lazy (
      let db = fresh () in
      for i = 0 to ops - 1 do
        Wipdb.Store.put db ~key:(Wip_workload.Key_codec.encode (Int64.of_int i))
          ~value:(value ())
      done;
      Wipdb.Store.flush db;
      Wipdb.Store.maintenance db ();
      db)
    in
    let run_one = function
      | "fillseq" ->
        let db = fresh () in
        timed "fillseq" (fun () ->
            for i = 0 to ops - 1 do
              Wipdb.Store.put db
                ~key:(Wip_workload.Key_codec.encode (Int64.of_int i))
                ~value:(value ())
            done)
      | "fillrandom" ->
        let db = fresh () in
        timed "fillrandom" (fun () ->
            for _ = 0 to ops - 1 do
              Wipdb.Store.put db ~key:(rand_key ()) ~value:(value ())
            done)
      | "overwrite" ->
        let db = Lazy.force preloaded in
        timed "overwrite" (fun () ->
            for _ = 0 to ops - 1 do
              Wipdb.Store.put db
                ~key:(Wip_workload.Key_codec.encode
                        (Wip_util.Rng.int64 rng (Int64.of_int ops)))
                ~value:(value ())
            done)
      | "readrandom" ->
        let db = Lazy.force preloaded in
        timed "readrandom" (fun () ->
            for _ = 0 to ops - 1 do
              ignore
                (Wipdb.Store.get db
                   (Wip_workload.Key_codec.encode
                      (Wip_util.Rng.int64 rng (Int64.of_int ops))))
            done)
      | "readseq" ->
        let db = Lazy.force preloaded in
        timed "readseq" (fun () ->
            let n = ref 0 in
            Seq.iter (fun _ -> incr n)
              (Wipdb.Store.iter_range db ~lo:"" ~hi:"\255" ()
              |> Seq.take ops);
            assert (!n <= ops))
      | "seekrandom" ->
        let db = Lazy.force preloaded in
        timed "seekrandom" (fun () ->
            for _ = 0 to ops - 1 do
              let lo =
                Wip_workload.Key_codec.encode
                  (Wip_util.Rng.int64 rng (Int64.of_int ops))
              in
              ignore
                (Wipdb.Store.iter_range db ~lo ~hi:"\255" ()
                |> Seq.take 1 |> List.of_seq)
            done)
      | "deleterandom" ->
        let db = Lazy.force preloaded in
        timed "deleterandom" (fun () ->
            for _ = 0 to ops - 1 do
              Wipdb.Store.delete db
                ~key:(Wip_workload.Key_codec.encode
                        (Wip_util.Rng.int64 rng (Int64.of_int ops)))
            done)
      | other -> Printf.eprintf "unknown benchmark: %s\n" other
    in
    let names =
      if names = [] then
        [ "fillseq"; "fillrandom"; "overwrite"; "readrandom"; "readseq";
          "seekrandom"; "deleterandom" ]
      else names
    in
    List.iter run_one names;
    `Ok ()
  in
  let ops = Arg.(value & opt int 100_000 & info [ "num" ] ~docv:"N") in
  let vsize = Arg.(value & opt int 100 & info [ "value-size" ] ~docv:"BYTES") in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"BENCH") in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "db_bench-style microbenchmarks (fillseq fillrandom overwrite \
          readrandom readseq seekrandom deleterandom)")
    Term.(ret (const run $ ops $ vsize $ names))

(* --- service layer ----------------------------------------------------- *)

module Server = Wip_server.Server
module Net_client = Wip_server.Client
module Sharded = Wip_concurrent.Sharded_store.Make (Wipdb.Store)

let serve_cmd =
  let run dir addr port shards workers no_group_commit =
    let env = Wip_storage.Env.posix ~root:dir in
    let base =
      {
        Wipdb.Config.default with
        Wipdb.Config.name = "wipdb";
        (* The pool compacts; the serving path must not compact inline. *)
        compaction_budget_per_batch = 0;
      }
    in
    let bounds = Wipdb.Config.shard_boundaries base ~shards in
    let stores =
      List.mapi
        (fun i lo ->
          (* "wipdb.shard-N", not "wipdb-shard-N": orphan GC reclaims
             unreferenced "<name>-*.lvt" files, so no shard's files may
             carry another store's "<name>-" prefix. *)
          let cfg =
            { base with Wipdb.Config.name = Printf.sprintf "wipdb.shard-%d" i }
          in
          (lo, Wipdb.Store.recover ~env cfg))
        bounds
    in
    let st = Sharded.create stores in
    let ops =
      {
        Server.get = (fun key -> Sharded.get st key);
        scan = (fun ~lo ~hi ~limit -> Sharded.scan st ~lo ~hi ?limit ());
        commit = (fun batches -> Sharded.commit_batches st batches);
        stats =
          (fun () ->
            [
              ("shards", Int64.of_int (Sharded.shard_count st));
              ("compaction_cycles",
               Int64.of_int (Sharded.compaction_cycles st));
              ("inflight_bytes", Int64.of_int (Sharded.inflight_bytes st));
            ]);
      }
    in
    let srv =
      Server.start ~addr ~port ~workers ~group_commit:(not no_group_commit)
        ~ops ()
    in
    Printf.printf
      "serving %s on %s:%d (%d shards, %d workers, group commit %s)\n%!" dir
      addr (Server.port srv) shards workers
      (if no_group_commit then "off" else "on");
    let stop_now = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop_now := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler;
    while not !stop_now do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    prerr_endline "shutting down";
    Server.stop srv;
    Sharded.stop st;
    `Ok ()
  in
  let addr =
    Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"HOST")
  in
  let port = Arg.(value & opt int 7070 & info [ "port" ] ~docv:"PORT") in
  let shards =
    let doc =
      "Number of key-range shards (must match across restarts of the same \
       store directory)."
    in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N") in
  let no_gc =
    let doc = "Commit every write alone (per-request fsync baseline)." in
    Arg.(value & flag & info [ "no-group-commit" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a store directory over the binary wire protocol (group-commit \
          WAL, pipelined connections); stop with SIGINT")
    Term.(ret (const run $ db_arg $ addr $ port $ shards $ workers $ no_gc))

let caddr_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"HOST")

let cport_arg = Arg.(value & opt int 7070 & info [ "port" ] ~docv:"PORT")

let with_conn addr port f =
  let c = Net_client.connect ~addr ~port () in
  Fun.protect ~finally:(fun () -> Net_client.close c) (fun () -> f c)

let unwrap name = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "%s: %s\n" name (Net_client.error_to_string e);
    exit 1

let client_get_cmd =
  let run addr port key =
    with_conn addr port (fun c ->
        match unwrap "get" (Net_client.get c key) with
        | Some v ->
          print_endline v;
          `Ok ()
        | None ->
          prerr_endline "(not found)";
          exit 1)
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v (Cmd.info "get" ~doc:"Look up one key over the wire")
    Term.(ret (const run $ caddr_arg $ cport_arg $ key))

let client_put_cmd =
  let run addr port key value =
    with_conn addr port (fun c ->
        unwrap "put" (Net_client.put c ~key ~value);
        `Ok ())
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE") in
  Cmd.v (Cmd.info "put" ~doc:"Durable put over the wire (ack = fsynced)")
    Term.(ret (const run $ caddr_arg $ cport_arg $ key $ value))

let client_delete_cmd =
  let run addr port key =
    with_conn addr port (fun c ->
        unwrap "delete" (Net_client.delete c ~key);
        `Ok ())
  in
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  Cmd.v (Cmd.info "delete" ~doc:"Durable delete over the wire")
    Term.(ret (const run $ caddr_arg $ cport_arg $ key))

let client_scan_cmd =
  let run addr port lo hi limit =
    with_conn addr port (fun c ->
        List.iter
          (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
          (unwrap "scan" (Net_client.scan c ~lo ~hi ~limit ()));
        `Ok ())
  in
  let lo = Arg.(value & opt string "" & info [ "lo" ] ~docv:"KEY") in
  let hi = Arg.(value & opt string "\255" & info [ "hi" ] ~docv:"KEY") in
  let limit = Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N") in
  Cmd.v (Cmd.info "scan" ~doc:"Range scan [lo, hi) over the wire")
    Term.(ret (const run $ caddr_arg $ cport_arg $ lo $ hi $ limit))

let client_ping_cmd =
  let run addr port =
    with_conn addr port (fun c ->
        unwrap "ping" (Net_client.ping c);
        print_endline "pong";
        `Ok ())
  in
  Cmd.v (Cmd.info "ping" ~doc:"Round-trip liveness check")
    Term.(ret (const run $ caddr_arg $ cport_arg))

let client_stats_cmd =
  let run addr port =
    with_conn addr port (fun c ->
        List.iter
          (fun (k, v) -> Printf.printf "%-20s %Ld\n" k v)
          (unwrap "stats" (Net_client.stats c));
        `Ok ())
  in
  Cmd.v (Cmd.info "stats" ~doc:"Server-side counters")
    Term.(ret (const run $ caddr_arg $ cport_arg))

let client_bench_cmd =
  let run addr port ops value_size =
    with_conn addr port (fun c ->
        let rng = Wip_util.Rng.create ~seed:0xC11E47L in
        let h = Wip_stats.Histogram.create () in
        let acked = ref 0 and errors = ref 0 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to ops do
          let key =
            Wip_workload.Key_codec.encode
              (Wip_util.Rng.int64 rng 1_000_000_000L)
          in
          let value = Bytes.to_string (Wip_util.Rng.bytes rng value_size) in
          let s0 = Unix.gettimeofday () in
          (match Net_client.put c ~key ~value with
          | Ok () -> incr acked
          | Error _ -> incr errors);
          Wip_stats.Histogram.add h ((Unix.gettimeofday () -. s0) *. 1.0e6)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf
          "%d puts in %.2f s = %.0f ops/s  p50 %.1f us  p99 %.1f us  \
           (acked %d, errors %d)\n"
          ops dt
          (float_of_int ops /. dt)
          (Wip_stats.Histogram.percentile h 50.0)
          (Wip_stats.Histogram.percentile h 99.0)
          !acked !errors;
        `Ok ())
  in
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N") in
  let vsize = Arg.(value & opt int 100 & info [ "value-size" ] ~docv:"BYTES") in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Synchronous durable puts against a live server; ops/s + latency")
    Term.(ret (const run $ caddr_arg $ cport_arg $ ops $ vsize))

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a served store over the wire protocol")
    [
      client_get_cmd; client_put_cmd; client_delete_cmd; client_scan_cmd;
      client_ping_cmd; client_stats_cmd; client_bench_cmd;
    ]

let () =
  let info =
    Cmd.info "wipdb_cli" ~version:"1.0.0"
      ~doc:"Command-line front end for a WipDB store"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            put_cmd; get_cmd; delete_cmd; scan_cmd; load_cmd; stats_cmd;
            compact_cmd; bench_cmd; serve_cmd; client_cmd;
          ]))
