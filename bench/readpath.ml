(* Read-path microbenchmark: the cost of serving data already on "disk".

   Two layers:

   1. Table layer — the cursor read path itself: point-get ops/s against a
      cache-warm and a cache-less reader (with allocation and restart-probe
      counts per get, perfect-hash index on vs off), full-table scan
      throughput, and k-way merge-compact throughput.

   2. Engine layer — all three engines (WipDB, the leveled baseline, the
      fragmented baseline) loaded so that 4+ overlapping runs exist, then
      measured with the read accelerators (sorted view + ph index) on vs
      off in the same process: scan ns/entry, point-get ns/op and restart
      probes/op, view rebuild cost, and index block footprint.

   Everything lands in BENCH_readpath.json; tools/readpath_gate compares
   the machine-independent fields (probes/op, on/off speedups) against the
   committed baseline. *)

open Harness
module Table = Wip_sstable.Table
module Block = Wip_sstable.Block
module Merge_iter = Wip_sstable.Merge_iter
module Block_cache = Wip_storage.Block_cache
module Ikey = Wip_util.Ikey

let key i = Printf.sprintf "%012d" i

let value = String.make 100 'v'

let build_table env ~name ~keys ~stride ~offset =
  let b =
    Table.Builder.create env ~name ~category:Io_stats.Flush
      ~expected_keys:keys ()
  in
  for i = 0 to keys - 1 do
    Table.Builder.add_encoded b
      ~key:(Ikey.encode_seek (key ((i * stride) + offset)) ~seq:(Int64.of_int (i + 1)))
      ~value
  done;
  ignore (Table.Builder.finish b)

(* [f] many times; returns (ops/s, allocated bytes per op, restart probes
   per op — Block.Cursor.seek key comparisons, which the ph path never
   performs). *)
let timed ~ops f =
  (* Settle major-GC debt from the previous phase so its mark/sweep slices
     don't bill this one. *)
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let p0 = Atomic.get Block.seek_probe_count in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int ops in
  let probes =
    float_of_int (Atomic.get Block.seek_probe_count - p0) /. float_of_int ops
  in
  (float_of_int ops /. dt, alloc, probes)

let point_gets ~ops ~keys reader =
  (* Uniform pseudo-random present keys; the multiplier is coprime to any
     power-of-ten key count so the sequence cycles the whole table. *)
  timed ~ops (fun i ->
      let k = key (i * 7919 mod keys) in
      if Table.Reader.get reader ~category:Io_stats.Read_path k
           ~snapshot:Int64.max_int
         = None
      then failwith ("lost key " ^ k))

let scan_pass ~category ?fill_cache reader =
  let n = ref 0 in
  let t0 = Unix.gettimeofday () in
  Seq.iter
    (fun _ -> incr n)
    (Table.Reader.stream reader ~category ?fill_cache ());
  (float_of_int !n /. (Unix.gettimeofday () -. t0), !n)

(* ------------------------------------------------------------------ *)
(* Engine layer: accelerators on vs off over a multi-run store *)

module Store_intf = Wip_kv.Store_intf

type arm_metrics = {
  a_runs : int;
  a_scan_ns : float; (* ns per scanned entry, full-range scan *)
  a_get_ns : float; (* ns per point get *)
  a_get_probes : float; (* restart probes per point get *)
  a_view_rebuilds : int;
  a_view_rebuild_ns : int;
  a_ph_bytes : int; (* index block bytes across live tables *)
}

let engine_key_count = 20_000

let engine_value = String.make 64 'e'

let ekey i = Printf.sprintf "%010d" i

(* WipDB names tables .lvt, the baselines .sst. *)
let table_files st =
  Env.list_files (Store_intf.env st)
  |> List.filter (fun f ->
         Filename.check_suffix f ".sst" || Filename.check_suffix f ".lvt")

let ph_bytes_of st =
  let env = Store_intf.env st in
  List.fold_left
    (fun acc f ->
      let r = Table.Reader.open_ env ~name:f in
      let b = Table.Reader.ph_bytes r in
      Table.Reader.close r;
      acc + b)
    0 (table_files st)

let measure_arm st =
  (* Load in a stride order so every flushed run spans the key space — the
     maximal-overlap shape the view is built for. *)
  for i = 0 to engine_key_count - 1 do
    Store_intf.put st ~key:(ekey (i * 7919 mod engine_key_count)) ~value:engine_value
  done;
  Store_intf.flush st;
  let runs = List.length (table_files st) in
  (* Warmup scan: builds the sorted view on accelerated arms so the timed
     passes measure the steady state (the build itself is reported via
     view_rebuild_ns). *)
  let warm = List.length (Store_intf.scan st ~lo:"" ~hi:"\255" ()) in
  if warm <> engine_key_count then
    failwith (Printf.sprintf "scan returned %d of %d keys" warm engine_key_count);
  let reps = 12 in
  Gc.full_major ();
  (* Median of per-rep times: a single scan is a few ms, so one stray
     major-GC slice would otherwise swing the whole measurement. *)
  let times =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Store_intf.scan st ~lo:"" ~hi:"\255" ());
        Unix.gettimeofday () -. t0)
  in
  Array.sort Float.compare times;
  let scan_ns = times.(reps / 2) *. 1e9 /. float_of_int engine_key_count in
  let get_ops = 3000 in
  Gc.full_major ();
  let p0 = Atomic.get Block.seek_probe_count in
  let g0 = Unix.gettimeofday () in
  for i = 0 to get_ops - 1 do
    match Store_intf.get st (ekey (i * 4241 mod engine_key_count)) with
    | Some _ -> ()
    | None -> failwith "lost key"
  done;
  let get_ns = (Unix.gettimeofday () -. g0) *. 1e9 /. float_of_int get_ops in
  let get_probes =
    float_of_int (Atomic.get Block.seek_probe_count - p0)
    /. float_of_int get_ops
  in
  let stats = Io_stats.snapshot (Store_intf.io_stats st) in
  {
    a_runs = runs;
    a_scan_ns = scan_ns;
    a_get_ns = get_ns;
    a_get_probes = get_probes;
    a_view_rebuilds = Io_stats.view_rebuild_count stats;
    a_view_rebuild_ns = Io_stats.view_rebuild_ns stats;
    a_ph_bytes = ph_bytes_of st;
  }

(* Compaction-suppressing configs: runs accumulate at level 0 so the scan
   path faces a genuine 4+-way overlapping merge. *)

let wipdb_arm ~accel =
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 4096;
      memtable_bytes = 40 * 1024;
      initial_buckets = 1;
      t_sublevels = 64;
      min_count = 64;
      max_count = 128;
      sorted_view = accel;
      ph_index = accel;
      name = (if accel then "wip-on" else "wip-off");
    }
  in
  Store_intf.Store ((module Wipdb.Store), Wipdb.Store.create cfg)

let leveled_arm ~accel =
  let cfg =
    {
      (Wip_lsm.Leveled.leveldb_config ~scale:1) with
      Wip_lsm.Leveled.memtable_bytes = 40 * 1024;
      l0_compaction_trigger = 999;
      sorted_view = accel;
      ph_index = accel;
      name = (if accel then "lvl-on" else "lvl-off");
    }
  in
  Store_intf.Store ((module Wip_lsm.Leveled), Wip_lsm.Leveled.create cfg)

let flsm_arm ~accel =
  let cfg =
    {
      (Wip_flsm.Flsm.default_config ~scale:1) with
      Wip_flsm.Flsm.memtable_bytes = 40 * 1024;
      max_files_per_guard = 999;
      sorted_view = accel;
      ph_index = accel;
      name = (if accel then "flsm-on" else "flsm-off");
    }
  in
  Store_intf.Store ((module Wip_flsm.Flsm), Wip_flsm.Flsm.create cfg)

let engine_json name (on, off) =
  Printf.sprintf
    {|    "%s": {
      "runs": %d,
      "scan_ns_per_entry_on": %.1f,
      "scan_ns_per_entry_off": %.1f,
      "scan_speedup": %.3f,
      "get_ns_per_op_on": %.1f,
      "get_ns_per_op_off": %.1f,
      "get_probes_per_op_on": %.2f,
      "get_probes_per_op_off": %.2f,
      "view_rebuilds": %d,
      "view_rebuild_ns": %d,
      "ph_index_bytes": %d
    }|}
    name on.a_runs on.a_scan_ns off.a_scan_ns
    (off.a_scan_ns /. on.a_scan_ns)
    on.a_get_ns off.a_get_ns on.a_get_probes off.a_get_probes
    on.a_view_rebuilds on.a_view_rebuild_ns on.a_ph_bytes

let run_engines () =
  (* Shed the table-layer phase's heap before engine timing. *)
  Gc.compact ();
  section
    (Printf.sprintf
       "readpath: engine scans + gets, accelerators on vs off (%d keys, \
        compaction suppressed)"
       engine_key_count);
  row "%-10s %5s %16s %16s %9s %14s %14s" "engine" "runs" "scan ns/entry"
    "(off)" "speedup" "get probes/op" "(off)";
  let measure name mk =
    let on = measure_arm (mk ~accel:true) in
    let off = measure_arm (mk ~accel:false) in
    row "%-10s %5d %16.1f %16.1f %8.2fx %14.2f %14.2f" name on.a_runs
      on.a_scan_ns off.a_scan_ns
      (off.a_scan_ns /. on.a_scan_ns)
      on.a_get_probes off.a_get_probes;
    (name, (on, off))
  in
  [
    measure "WipDB" wipdb_arm;
    measure "LevelDB" leveled_arm;
    measure "PebblesDB" flsm_arm;
  ]

let run ~ops () =
  let keys = max 10_000 ops in
  section
    (Printf.sprintf "readpath: cursor read path (%d keys, %d ops/measure)"
       keys ops);
  let env = Env.in_memory () in
  build_table env ~name:"rp" ~keys ~stride:1 ~offset:0;
  let cache = Block_cache.create ~capacity_bytes:(64 * 1024 * 1024) in
  let warm = Table.Reader.open_ ~cache env ~name:"rp" in
  let cold = Table.Reader.open_ env ~name:"rp" in
  let cold_nph = Table.Reader.open_ env ~name:"rp" ~ph:false in

  (* Hot: every block resident after one filling pass. *)
  ignore (scan_pass ~category:Io_stats.Read_path warm);
  let hot_ops, hot_alloc, hot_probes = point_gets ~ops ~keys warm in
  (* Cold: no cache at all — every get re-reads its block. The default
     reader serves gets through the perfect-hash index; the ~ph:false
     reader is the restart-binary-search fallback path. *)
  (* Throwaway pass: the process's first cold phase pays a one-time
     major-heap ramp for block-sized allocations; don't bill it to
     whichever reader happens to run first. *)
  ignore (point_gets ~ops ~keys cold_nph);
  let cold_ops, cold_alloc, cold_probes = point_gets ~ops ~keys cold in
  let nph_ops, _, nph_probes = point_gets ~ops ~keys cold_nph in
  row "%-28s %14.0f ops/s %10.0f B/op %8.2f probes/op"
    "point get (cache-hot)" hot_ops hot_alloc hot_probes;
  row "%-28s %14.0f ops/s %10.0f B/op %8.2f probes/op"
    "point get (no cache, ph)" cold_ops cold_alloc cold_probes;
  row "%-28s %14.0f ops/s %21s %8.2f probes/op"
    "point get (no cache, no ph)" nph_ops "" nph_probes;

  let scan_ops, scanned = scan_pass ~category:Io_stats.Read_path warm in
  row "%-28s %14.0f entries/s  (%d entries)" "scan (stream, warm)" scan_ops
    scanned;

  (* Merge-compact: 4 interleaved runs, compacted the way a real compaction
     consumes them — scan-resistant streams into the pairing heap. *)
  let fan = 4 in
  let per = keys / fan in
  for j = 0 to fan - 1 do
    build_table env
      ~name:(Printf.sprintf "run-%d" j)
      ~keys:per ~stride:fan ~offset:j
  done;
  let runs =
    List.init fan (fun j ->
        Table.Reader.open_ ~cache env ~name:(Printf.sprintf "run-%d" j))
  in
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let merged = ref 0 in
  Seq.iter
    (fun _ -> incr merged)
    (Merge_iter.compact ~drop_tombstones:true
       (List.map
          (fun r ->
            Table.Reader.stream r ~category:(Io_stats.Compaction_read 0)
              ~fill_cache:false ())
          runs));
  let merge_dt = Unix.gettimeofday () -. t0 in
  let merge_ops = float_of_int !merged /. merge_dt in
  let merge_alloc = (Gc.allocated_bytes () -. a0) /. float_of_int !merged in
  row "%-28s %14.0f entries/s %10.0f B/entry  (%d-way, %d entries)"
    "merge-compact" merge_ops merge_alloc fan !merged;

  (* Report from one atomic snapshot: the individual getters each take the
     stats lock separately, so reading them piecemeal around live traffic
     can produce a torn set (an FP count from a later instant than its
     probe count, say). *)
  let stats = Io_stats.snapshot (Env.stats env) in
  let fp_rate = Io_stats.bloom_fp_rate stats in
  row "%-28s %14.4f  (%d probes, %d FPs)" "bloom FP rate" fp_rate
    (Io_stats.bloom_probe_count stats)
    (Io_stats.bloom_false_positive_count stats);
  row "%-28s %14d probes %8d false hits %4d fallbacks" "ph index"
    (Io_stats.ph_probe_count stats)
    (Io_stats.ph_false_hit_count stats)
    (Io_stats.ph_fallback_count stats);
  let cc = Block_cache.counters cache in
  row "%-28s %14d hits %10d misses %6d bypasses" "block cache"
    cc.Block_cache.c_hits cc.Block_cache.c_misses cc.Block_cache.c_bypasses;

  let engines = run_engines () in

  (* Machine-readable trail for cross-PR comparison. *)
  let json = "BENCH_readpath.json" in
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "bench": "readpath",
  "keys": %d,
  "ops": %d,
  "point_get_hot_ops_per_sec": %.0f,
  "point_get_hot_alloc_bytes_per_op": %.1f,
  "point_get_hot_probes_per_op": %.2f,
  "point_get_cold_ops_per_sec": %.0f,
  "point_get_cold_alloc_bytes_per_op": %.1f,
  "point_get_cold_probes_per_op": %.2f,
  "point_get_cold_noph_ops_per_sec": %.0f,
  "point_get_cold_noph_probes_per_op": %.2f,
  "scan_entries_per_sec": %.0f,
  "merge_compact_entries_per_sec": %.0f,
  "merge_compact_alloc_bytes_per_entry": %.1f,
  "bloom_fp_rate": %.6f,
  "ph_probes": %d,
  "ph_false_hits": %d,
  "ph_fallbacks": %d,
  "block_fetches": %d,
  "cache_hits": %d,
  "cache_misses": %d,
  "engines": {
%s
  }
}
|}
    keys ops hot_ops hot_alloc hot_probes cold_ops cold_alloc cold_probes
    nph_ops nph_probes scan_ops merge_ops merge_alloc fp_rate
    (Io_stats.ph_probe_count stats)
    (Io_stats.ph_false_hit_count stats)
    (Io_stats.ph_fallback_count stats)
    (Io_stats.block_fetch_count stats)
    cc.Block_cache.c_hits cc.Block_cache.c_misses
    (String.concat ",\n"
       (List.map (fun (name, arms) -> engine_json name arms) engines));
  close_out oc;
  row "wrote %s" json;
  List.iter Table.Reader.close runs;
  Table.Reader.close warm;
  Table.Reader.close cold;
  Table.Reader.close cold_nph
