(* Read-path microbenchmark: the cost of serving data already on "disk".

   Measures, at the table layer the cursor read path lives in:
     - point-get ops/s against a cache-warm reader and a cache-less reader,
       with minor-heap allocation per get (Gc.allocated_bytes deltas);
     - full-table scan throughput through Reader.stream;
     - k-way merge-compact throughput (Merge_iter.compact over table
       streams in scan-resistant mode) — the inner loop of every flush,
       compaction and split;
   and writes the numbers to BENCH_readpath.json so successive PRs can
   diff the read-path trajectory mechanically. *)

open Harness
module Table = Wip_sstable.Table
module Merge_iter = Wip_sstable.Merge_iter
module Block_cache = Wip_storage.Block_cache
module Ikey = Wip_util.Ikey

let key i = Printf.sprintf "%012d" i

let value = String.make 100 'v'

let build_table env ~name ~keys ~stride ~offset =
  let b =
    Table.Builder.create env ~name ~category:Io_stats.Flush
      ~expected_keys:keys ()
  in
  for i = 0 to keys - 1 do
    Table.Builder.add_encoded b
      ~key:(Ikey.encode_seek (key ((i * stride) + offset)) ~seq:(Int64.of_int (i + 1)))
      ~value
  done;
  ignore (Table.Builder.finish b)

(* [f] many times; returns (ops/s, allocated bytes per op). *)
let timed ~ops f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int ops in
  (float_of_int ops /. dt, alloc)

let point_gets ~ops ~keys reader =
  (* Uniform pseudo-random present keys; the multiplier is coprime to any
     power-of-ten key count so the sequence cycles the whole table. *)
  timed ~ops (fun i ->
      let k = key (i * 7919 mod keys) in
      if Table.Reader.get reader ~category:Io_stats.Read_path k
           ~snapshot:Int64.max_int
         = None
      then failwith ("lost key " ^ k))

let scan_pass ~category ?fill_cache reader =
  let n = ref 0 in
  let t0 = Unix.gettimeofday () in
  Seq.iter
    (fun _ -> incr n)
    (Table.Reader.stream reader ~category ?fill_cache ());
  (float_of_int !n /. (Unix.gettimeofday () -. t0), !n)

let run ~ops () =
  let keys = max 10_000 ops in
  section
    (Printf.sprintf "readpath: cursor read path (%d keys, %d ops/measure)"
       keys ops);
  let env = Env.in_memory () in
  build_table env ~name:"rp" ~keys ~stride:1 ~offset:0;
  let cache = Block_cache.create ~capacity_bytes:(64 * 1024 * 1024) in
  let warm = Table.Reader.open_ ~cache env ~name:"rp" in
  let cold = Table.Reader.open_ env ~name:"rp" in

  (* Hot: every block resident after one filling pass. *)
  ignore (scan_pass ~category:Io_stats.Read_path warm);
  let hot_ops, hot_alloc = point_gets ~ops ~keys warm in
  (* Cold: no cache at all — every get re-reads its block. *)
  let cold_ops, cold_alloc = point_gets ~ops ~keys cold in
  row "%-28s %14.0f ops/s %10.0f B/op" "point get (cache-hot)" hot_ops
    hot_alloc;
  row "%-28s %14.0f ops/s %10.0f B/op" "point get (no cache)" cold_ops
    cold_alloc;

  let scan_ops, scanned = scan_pass ~category:Io_stats.Read_path warm in
  row "%-28s %14.0f entries/s  (%d entries)" "scan (stream, warm)" scan_ops
    scanned;

  (* Merge-compact: 4 interleaved runs, compacted the way a real compaction
     consumes them — scan-resistant streams into the pairing heap. *)
  let fan = 4 in
  let per = keys / fan in
  for j = 0 to fan - 1 do
    build_table env
      ~name:(Printf.sprintf "run-%d" j)
      ~keys:per ~stride:fan ~offset:j
  done;
  let runs =
    List.init fan (fun j ->
        Table.Reader.open_ ~cache env ~name:(Printf.sprintf "run-%d" j))
  in
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let merged = ref 0 in
  Seq.iter
    (fun _ -> incr merged)
    (Merge_iter.compact ~drop_tombstones:true
       (List.map
          (fun r ->
            Table.Reader.stream r ~category:(Io_stats.Compaction_read 0)
              ~fill_cache:false ())
          runs));
  let merge_dt = Unix.gettimeofday () -. t0 in
  let merge_ops = float_of_int !merged /. merge_dt in
  let merge_alloc = (Gc.allocated_bytes () -. a0) /. float_of_int !merged in
  row "%-28s %14.0f entries/s %10.0f B/entry  (%d-way, %d entries)"
    "merge-compact" merge_ops merge_alloc fan !merged;

  (* Report from one atomic snapshot: the individual getters each take the
     stats lock separately, so reading them piecemeal around live traffic
     can produce a torn set (an FP count from a later instant than its
     probe count, say). *)
  let stats = Io_stats.snapshot (Env.stats env) in
  let fp_rate = Io_stats.bloom_fp_rate stats in
  row "%-28s %14.4f  (%d probes, %d FPs)" "bloom FP rate" fp_rate
    (Io_stats.bloom_probe_count stats)
    (Io_stats.bloom_false_positive_count stats);
  let cc = Block_cache.counters cache in
  row "%-28s %14d hits %10d misses %6d bypasses" "block cache"
    cc.Block_cache.c_hits cc.Block_cache.c_misses cc.Block_cache.c_bypasses;

  (* Machine-readable trail for cross-PR comparison. *)
  let json = "BENCH_readpath.json" in
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "bench": "readpath",
  "keys": %d,
  "ops": %d,
  "point_get_hot_ops_per_sec": %.0f,
  "point_get_hot_alloc_bytes_per_op": %.1f,
  "point_get_cold_ops_per_sec": %.0f,
  "point_get_cold_alloc_bytes_per_op": %.1f,
  "scan_entries_per_sec": %.0f,
  "merge_compact_entries_per_sec": %.0f,
  "merge_compact_alloc_bytes_per_entry": %.1f,
  "bloom_fp_rate": %.6f,
  "block_fetches": %d,
  "cache_hits": %d,
  "cache_misses": %d
}
|}
    keys ops hot_ops hot_alloc cold_ops cold_alloc scan_ops merge_ops
    merge_alloc fp_rate
    (Io_stats.block_fetch_count stats)
    cc.Block_cache.c_hits cc.Block_cache.c_misses;
  close_out oc;
  row "wrote %s" json;
  List.iter Table.Reader.close runs;
  Table.Reader.close warm;
  Table.Reader.close cold
