(* Multi-threaded scaling of the sharded front-end: ops/s at 1/2/4/8
   foreground threads against 8 shards with the paper's 7-thread background
   compaction pool (§IV-A). Each round rebuilds and preloads a fresh store,
   then splits [ops] mixed operations (~90% get / 10% put, uniform keys)
   across the foreground domains; per-domain latency histograms are merged
   for the percentile columns. *)

open Harness
module Config = Wipdb.Config
module Key_codec = Wip_workload.Key_codec
module Rng = Wip_util.Rng
module Histogram = Wip_stats.Histogram
module Sharded = Wip_concurrent.Sharded_store.Make (Wipdb.Store)

let shards = 8

let pool_threads = 7

let thread_counts = [ 1; 2; 4; 8 ]

(* Small memtables so flushes pile up sublevels and background compaction
   has real work during the measured window; the write path never compacts
   inline ([compaction_budget_per_batch = 0]). *)
let shard_config i =
  {
    Config.default with
    Config.name = Printf.sprintf "mt-s%d" i;
    memtable_items = 128;
    memtable_bytes = 16 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    initial_buckets = 2;
    compaction_budget_per_batch = 0;
    initial_key_space = key_space;
  }

(* Key [i] of [n] spread uniformly across the whole key space so traffic
   covers every shard. *)
let key_of ~n i =
  Key_codec.encode Int64.(div (mul (of_int i) key_space) (of_int n))

let build_store () =
  let bounds = Config.shard_boundaries (shard_config 0) ~shards in
  Sharded.create ~pool_threads ~idle_sleep:0.0002
    (List.mapi (fun i lo -> (lo, Wipdb.Store.create (shard_config i))) bounds)

let preload c ~keys ~value =
  for i = 0 to keys - 1 do
    Sharded.put c ~key:(key_of ~n:keys i) ~value
  done

(* One foreground worker: [per_domain] ops, ~90% get / 10% put, recording
   per-op latency in microseconds. *)
let foreground c ~keys ~value ~seed ~per_domain h () =
  let rng = Rng.create ~seed in
  for _ = 1 to per_domain do
    let k = key_of ~n:keys (Rng.int rng keys) in
    let t0 = Unix.gettimeofday () in
    (if Rng.int rng 10 = 0 then Sharded.put c ~key:k ~value
     else ignore (Sharded.get c k));
    Histogram.add h ((Unix.gettimeofday () -. t0) *. 1.0e6)
  done

type round_result = {
  r_threads : int;
  r_ops_per_s : float;
  r_p50 : float;
  r_p99 : float;
  r_cycles : int;
  r_compactions : int;
  (* Resilience counters, summed over all shard stats from one consistent
     per-shard snapshot each. *)
  r_stalls : int;
  r_stall_ms : float;
  r_retries : int;
  r_degraded : int;
}

let round ~ops ~threads ~value =
  let keys = max 1000 (ops / 2) in
  let c = build_store () in
  preload c ~keys ~value;
  let cycles0 = Sharded.compaction_cycles c in
  let per_domain = ops / threads in
  let merged = Histogram.create () in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init threads (fun d ->
        let h = Histogram.create () in
        let dom =
          Domain.spawn
            (foreground c ~keys ~value
               ~seed:(Int64.of_int (0xC0FFEE + d))
               ~per_domain h)
        in
        (dom, h))
  in
  List.iter
    (fun (dom, h) ->
      Domain.join dom;
      Histogram.merge merged h)
    ds;
  let dt = Unix.gettimeofday () -. t0 in
  let cycles = Sharded.compaction_cycles c - cycles0 in
  Sharded.stop c;
  let compactions =
    Sharded.fold_shards c ~init:0 ~f:(fun acc s ->
        acc + Wipdb.Store.compaction_count s)
  in
  let stalls, stall_ns, retries, degraded =
    Sharded.fold_shards c ~init:(0, 0, 0, 0)
      ~f:(fun (st, sn, re, dg) s ->
        let io = Wip_storage.Io_stats.snapshot (Wipdb.Store.io_stats s) in
        ( st + Wip_storage.Io_stats.stall_count io,
          sn + Wip_storage.Io_stats.stall_ns io,
          re + Wip_storage.Io_stats.retry_count io,
          dg + Wip_storage.Io_stats.degraded_transition_count io ))
  in
  {
    r_threads = threads;
    r_ops_per_s = float_of_int (threads * per_domain) /. dt;
    r_p50 = Histogram.percentile merged 50.0;
    r_p99 = Histogram.percentile merged 99.0;
    r_cycles = cycles;
    r_compactions = compactions;
    r_stalls = stalls;
    r_stall_ms = float_of_int stall_ns /. 1.0e6;
    r_retries = retries;
    r_degraded = degraded;
  }

let run ~ops () =
  section
    (Printf.sprintf
       "mt: sharded front-end scaling (%d shards, %d-thread pool, %d ops/round)"
       shards pool_threads ops);
  let value = String.make 100 'v' in
  row "%-8s %12s %9s %12s %12s %12s %12s %7s %9s" "threads" "ops/s" "speedup"
    "p50 (us)" "p99 (us)" "pool cycles" "compactions" "stalls" "retries";
  let base = ref None in
  let results =
    List.map
      (fun threads ->
        let r = round ~ops ~threads ~value in
        let b =
          match !base with
          | None ->
            base := Some r.r_ops_per_s;
            r.r_ops_per_s
          | Some b -> b
        in
        row "%-8d %12.0f %8.2fx %12.1f %12.1f %12d %12d %7d %9d" threads
          r.r_ops_per_s (r.r_ops_per_s /. b) r.r_p50 r.r_p99 r.r_cycles
          r.r_compactions r.r_stalls r.r_retries;
        r)
      thread_counts
  in
  (* Machine-readable trail, resilience counters included. *)
  let json = "BENCH_mt.json" in
  let oc = open_out json in
  Printf.fprintf oc "{\n  \"bench\": \"mt\",\n  \"ops\": %d,\n  \"rounds\": [" ops;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "%s\n    { \"threads\": %d, \"ops_per_sec\": %.0f, \"p50_us\": %.1f, \
         \"p99_us\": %.1f,\n\
        \      \"pool_cycles\": %d, \"compactions\": %d, \"stalls\": %d, \
         \"stall_ms\": %.1f,\n\
        \      \"retries\": %d, \"degraded_transitions\": %d }"
        (if i = 0 then "" else ",")
        r.r_threads r.r_ops_per_s r.r_p50 r.r_p99 r.r_cycles r.r_compactions
        r.r_stalls r.r_stall_ms r.r_retries r.r_degraded)
    results;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  row "wrote %s" json
