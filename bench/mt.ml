(* Multi-threaded scaling of the sharded front-end: ops/s at 1/2/4/8
   foreground threads against 8 shards with the paper's 7-thread background
   compaction pool (§IV-A). Each round rebuilds and preloads a fresh store,
   then splits [ops] mixed operations (~90% get / 10% put, uniform keys)
   across the foreground domains; per-domain latency histograms are merged
   for the percentile columns. *)

open Harness
module Config = Wipdb.Config
module Key_codec = Wip_workload.Key_codec
module Rng = Wip_util.Rng
module Histogram = Wip_stats.Histogram
module Sharded = Wip_concurrent.Sharded_store.Make (Wipdb.Store)

let shards = 8

let pool_threads = 7

let thread_counts = [ 1; 2; 4; 8 ]

(* Small memtables so flushes pile up sublevels and background compaction
   has real work during the measured window; the write path never compacts
   inline ([compaction_budget_per_batch = 0]). *)
let shard_config i =
  {
    Config.default with
    Config.name = Printf.sprintf "mt-s%d" i;
    memtable_items = 128;
    memtable_bytes = 16 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    initial_buckets = 2;
    compaction_budget_per_batch = 0;
    initial_key_space = key_space;
  }

(* Key [i] of [n] spread uniformly across the whole key space so traffic
   covers every shard. *)
let key_of ~n i =
  Key_codec.encode Int64.(div (mul (of_int i) key_space) (of_int n))

let build_store () =
  let bounds = Config.shard_boundaries (shard_config 0) ~shards in
  Sharded.create ~pool_threads ~idle_sleep:0.0002
    (List.mapi (fun i lo -> (lo, Wipdb.Store.create (shard_config i))) bounds)

let preload c ~keys ~value =
  for i = 0 to keys - 1 do
    Sharded.put c ~key:(key_of ~n:keys i) ~value
  done

(* One foreground worker: [per_domain] ops, ~90% get / 10% put, recording
   per-op latency in microseconds. *)
let foreground c ~keys ~value ~seed ~per_domain h () =
  let rng = Rng.create ~seed in
  for _ = 1 to per_domain do
    let k = key_of ~n:keys (Rng.int rng keys) in
    let t0 = Unix.gettimeofday () in
    (if Rng.int rng 10 = 0 then Sharded.put c ~key:k ~value
     else ignore (Sharded.get c k));
    Histogram.add h ((Unix.gettimeofday () -. t0) *. 1.0e6)
  done

let round ~ops ~threads ~value =
  let keys = max 1000 (ops / 2) in
  let c = build_store () in
  preload c ~keys ~value;
  let cycles0 = Sharded.compaction_cycles c in
  let per_domain = ops / threads in
  let merged = Histogram.create () in
  let t0 = Unix.gettimeofday () in
  let ds =
    List.init threads (fun d ->
        let h = Histogram.create () in
        let dom =
          Domain.spawn
            (foreground c ~keys ~value
               ~seed:(Int64.of_int (0xC0FFEE + d))
               ~per_domain h)
        in
        (dom, h))
  in
  List.iter
    (fun (dom, h) ->
      Domain.join dom;
      Histogram.merge merged h)
    ds;
  let dt = Unix.gettimeofday () -. t0 in
  let cycles = Sharded.compaction_cycles c - cycles0 in
  Sharded.stop c;
  let compactions =
    Sharded.fold_shards c ~init:0 ~f:(fun acc s ->
        acc + Wipdb.Store.compaction_count s)
  in
  ( float_of_int (threads * per_domain) /. dt,
    Histogram.percentile merged 50.0,
    Histogram.percentile merged 99.0,
    cycles,
    compactions )

let run ~ops () =
  section
    (Printf.sprintf
       "mt: sharded front-end scaling (%d shards, %d-thread pool, %d ops/round)"
       shards pool_threads ops);
  let value = String.make 100 'v' in
  row "%-8s %12s %9s %12s %12s %12s %12s" "threads" "ops/s" "speedup"
    "p50 (us)" "p99 (us)" "pool cycles" "compactions";
  let base = ref None in
  List.iter
    (fun threads ->
      let opss, p50, p99, cycles, compactions = round ~ops ~threads ~value in
      let b = match !base with None -> base := Some opss; opss | Some b -> b in
      row "%-8d %12.0f %8.2fx %12.1f %12.1f %12d %12d" threads opss (opss /. b)
        p50 p99 cycles compactions)
    thread_counts
