(* Admission-control stall benchmark: the cost and the payoff of the write
   watermarks.

   Two identical single-engine write runs — small memtables, no inline
   compaction budget, so every byte written becomes flush + compaction debt
   — once with admission control ON (slowdown/stop watermarks gating each
   batch, the stalled writer paying the debt down) and once OFF (debt grows
   without bound). Reports per-batch latency p50/p99, stall count and time
   from Io_stats, and the maximum observed write pressure
   (MemTable bytes + maintenance debt): bounded near the stop watermark
   with admission on, proportional to total bytes written with it off.

   Writes BENCH_stall.json (schema in EXPERIMENTS.md) so successive PRs
   can diff the stall trajectory mechanically. *)

open Harness
module Config = Wipdb.Config
module Store = Wipdb.Store
module Histogram = Wip_stats.Histogram
module Key_codec = Wip_workload.Key_codec
module Rng = Wip_util.Rng

let slowdown_mark = 256 * 1024

let stop_mark = 512 * 1024

let batch_size = 16

let value_size = 128

let config ~admission name =
  {
    Config.default with
    Config.name;
    memtable_items = 256;
    memtable_bytes = 16 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    initial_buckets = 2;
    initial_key_space = key_space;
    (* All maintenance is deferred debt: nothing compacts inline, so only
       admission control (or nothing) stands between the writer and
       unbounded accumulation. *)
    compaction_budget_per_batch = 0;
    admission_control = admission;
    slowdown_watermark_bytes = slowdown_mark;
    stop_watermark_bytes = stop_mark;
    stall_deadline_s = 5.0;
  }

type outcome = {
  ops_per_s : float;
  p50_us : float;
  p99_us : float;
  max_pressure : int;
  stalls : int;
  stall_ms : float;
  rejected : int;
}

let one_run ~ops ~admission =
  let db =
    Store.create (config ~admission (if admission then "st-on" else "st-off"))
  in
  let rng = Rng.create ~seed:0x57A11L in
  let h = Histogram.create () in
  let batches = ops / batch_size in
  let max_pressure = ref 0 in
  let rejected = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batches do
    let items =
      List.init batch_size (fun _ ->
          let k = Key_codec.encode (Rng.int64 rng key_space) in
          (Wip_util.Ikey.Value, k, value_of_size rng value_size))
    in
    let bt0 = Unix.gettimeofday () in
    (match Store.try_write_batch db items with
    | Ok () -> ()
    | Error _ -> incr rejected);
    Histogram.add h ((Unix.gettimeofday () -. bt0) *. 1.0e6);
    max_pressure := max !max_pressure (Store.write_pressure db)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let stats = Wip_storage.Io_stats.snapshot (Store.io_stats db) in
  {
    ops_per_s = float_of_int (batches * batch_size) /. dt;
    p50_us = Histogram.percentile h 50.0;
    p99_us = Histogram.percentile h 99.0;
    max_pressure = !max_pressure;
    stalls = Wip_storage.Io_stats.stall_count stats;
    stall_ms = float_of_int (Wip_storage.Io_stats.stall_ns stats) /. 1.0e6;
    rejected = !rejected;
  }

let run ~ops () =
  section
    (Printf.sprintf
       "stall: admission control on vs off (%d ops, watermarks %s/%s)" ops
       (human_bytes slowdown_mark) (human_bytes stop_mark));
  let on = one_run ~ops ~admission:true in
  let off = one_run ~ops ~admission:false in
  row "%-10s %12s %12s %12s %14s %8s %10s %9s" "admission" "ops/s" "p50 (us)"
    "p99 (us)" "max pressure" "stalls" "stall (ms)" "rejected";
  let print label (o : outcome) =
    row "%-10s %12.0f %12.1f %12.1f %14s %8d %10.1f %9d" label o.ops_per_s
      o.p50_us o.p99_us (human_bytes o.max_pressure) o.stalls o.stall_ms
      o.rejected
  in
  print "on" on;
  print "off" off;
  (* Admission keeps pressure within one batch's landing of the stop
     watermark; without it the debt is bounded only by the bytes written. *)
  let slack = (batch_size * (value_size + 64)) + (16 * 1024) in
  let bounded = on.max_pressure <= stop_mark + slack in
  row "pressure bound: %s <= %s + slack: %b"
    (human_bytes on.max_pressure) (human_bytes stop_mark) bounded;
  let json = "BENCH_stall.json" in
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "bench": "stall",
  "ops": %d,
  "slowdown_watermark_bytes": %d,
  "stop_watermark_bytes": %d,
  "admission_on": {
    "ops_per_sec": %.0f,
    "p50_us": %.1f,
    "p99_us": %.1f,
    "max_pressure_bytes": %d,
    "stalls": %d,
    "stall_ms": %.1f,
    "rejected": %d
  },
  "admission_off": {
    "ops_per_sec": %.0f,
    "p50_us": %.1f,
    "p99_us": %.1f,
    "max_pressure_bytes": %d,
    "stalls": %d,
    "stall_ms": %.1f,
    "rejected": %d
  },
  "pressure_bounded": %b
}
|}
    ops slowdown_mark stop_mark on.ops_per_s on.p50_us on.p99_us
    on.max_pressure on.stalls on.stall_ms on.rejected off.ops_per_s
    off.p50_us off.p99_us off.max_pressure off.stalls off.stall_ms
    off.rejected bounded;
  close_out oc;
  row "wrote %s" json;
  if not bounded then
    failwith "stall: admission control failed to bound write pressure"
