(* Snapshot benchmark: what pinned reads cost and what version GC buys.

   Part one — scan stability under churn: a sharded WipDB front takes 4
   writer domains hammering batched puts while the main domain repeatedly
   pins a snapshot, scans a window at it twice, and releases. Reports
   scan-at-snapshot p50/p99 and asserts the stability law the snapshot
   machinery exists for: both drains at one pinned snapshot are identical,
   however much landed in between.

   Part two — version-GC reclamation: the same overwrite-heavy single-engine
   run twice, once with a snapshot pinned from the start (the GC floor holds
   every overwritten version and every retired table — "GC off") and once
   unpinned (compaction keeps only the newest version per key). The live-byte
   gap is what version GC reclaims; releasing the pin and compacting must
   then hand the held bytes back.

   Writes BENCH_snapshot.json (schema in EXPERIMENTS.md) so successive PRs
   can diff scan-at-snapshot latency and reclamation mechanically. *)

open Harness
module Config = Wipdb.Config
module Store = Wipdb.Store
module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Histogram = Wip_stats.Histogram
module Key_codec = Wip_workload.Key_codec
module Rng = Wip_util.Rng
module Ikey = Wip_util.Ikey

let writer_domains = 4

let batch_size = 16

let value_size = 128

let window = 2_000L

let config name =
  {
    Config.default with
    Config.name;
    memtable_items = 256;
    memtable_bytes = 16 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    initial_buckets = 2;
    initial_key_space = key_space;
    compaction_budget_per_batch = 0;
  }

type churn_outcome = {
  scan_p50_us : float;
  scan_p99_us : float;
  scans : int;
  unstable : int;
  written : int;
  refused : int;
}

let churn_run ~ops =
  let bounds = Config.shard_boundaries (config "sn") ~shards:writer_domains in
  let stores =
    List.mapi
      (fun i lo -> (lo, Store.create (config (Printf.sprintf "sn-%d" i))))
      bounds
  in
  let st = Sh.create ~pool_threads:2 ~idle_sleep:0.0005 stores in
  let rng = Rng.create ~seed:0x5AA9L in
  for _ = 1 to 5_000 / batch_size do
    let items =
      List.init batch_size (fun _ ->
          ( Ikey.Value,
            Key_codec.encode (Rng.int64 rng key_space),
            value_of_size rng value_size ))
    in
    match Sh.try_write_batch st items with Ok () | Error _ -> ()
  done;
  let remaining = Atomic.make writer_domains in
  let writers =
    List.init writer_domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Rng.create ~seed:(Int64.of_int (0xBEEF + d)) in
            let written = ref 0 and refused = ref 0 in
            for _ = 1 to ops / writer_domains / batch_size do
              let items =
                List.init batch_size (fun _ ->
                    ( Ikey.Value,
                      Key_codec.encode (Rng.int64 rng key_space),
                      value_of_size rng value_size ))
              in
              match Sh.try_write_batch st items with
              | Ok () -> written := !written + batch_size
              | Error _ -> incr refused
            done;
            Atomic.decr remaining;
            (!written, !refused)))
  in
  let h = Histogram.create () in
  let scans = ref 0 and unstable = ref 0 in
  while Atomic.get remaining > 0 || !scans = 0 do
    let snap = Sh.snapshot st in
    let a = Rng.int64 rng (Int64.sub key_space window) in
    let lo = Key_codec.encode a and hi = Key_codec.encode (Int64.add a window) in
    let t0 = Unix.gettimeofday () in
    let first = Sh.scan_at st ~lo ~hi ~snapshot:snap () in
    Histogram.add h ((Unix.gettimeofday () -. t0) *. 1.0e6);
    (* The law under test: a pinned snapshot's view never moves, whatever
       the four writer domains land between the two drains. *)
    let second = Sh.scan_at st ~lo ~hi ~snapshot:snap () in
    if first <> second then incr unstable;
    Sh.release st snap;
    incr scans
  done;
  let totals = List.map Domain.join writers in
  Sh.stop st;
  {
    scan_p50_us = Histogram.percentile h 50.0;
    scan_p99_us = Histogram.percentile h 99.0;
    scans = !scans;
    unstable = !unstable;
    written = List.fold_left (fun a (w, _) -> a + w) 0 totals;
    refused = List.fold_left (fun a (_, r) -> a + r) 0 totals;
  }

type gc_outcome = {
  live_during : int;  (** env live bytes at the end of the overwrite run *)
  live_after : int;  (** same, after release (if any) + final maintenance *)
  pinned_read_ok : bool;
}

let gc_keys = 2_000

let gc_key i = Key_codec.encode (Int64.of_int i)

let gc_value r =
  let tag = Printf.sprintf "r%04d-" r in
  tag ^ String.make (value_size - String.length tag) 'x'

let gc_run ~ops ~pin =
  let env = Wip_storage.Env.in_memory () in
  let db =
    Store.create ~env (config (if pin then "sn-gc-off" else "sn-gc-on"))
  in
  for i = 0 to gc_keys - 1 do
    Store.put db ~key:(gc_key i) ~value:(gc_value 0)
  done;
  Store.flush db;
  Store.maintenance db ();
  let snap = if pin then Some (Store.snapshot db) else None in
  let rounds = max 2 (min 10 (ops / gc_keys)) in
  for r = 1 to rounds do
    for i = 0 to gc_keys - 1 do
      Store.put db ~key:(gc_key i) ~value:(gc_value r)
    done;
    Store.flush db;
    Store.maintenance db ()
  done;
  let live_during = Wip_storage.Env.total_live_bytes env in
  let pinned_read_ok =
    match snap with
    | None -> true
    | Some s ->
      (* The held bytes are not dead weight: the pin still reads round 0. *)
      let ok = ref true in
      for i = 0 to 9 do
        let k = gc_key (i * (gc_keys / 10)) in
        if Store.get_at db k ~snapshot:s <> Some (gc_value 0) then ok := false
      done;
      Wip_kv.Store_intf.release s;
      !ok
  in
  Store.maintenance db ();
  let live_after = Wip_storage.Env.total_live_bytes env in
  { live_during; live_after; pinned_read_ok }

let run ~ops () =
  section
    (Printf.sprintf
       "snapshot: scan-at-snapshot under churn (%d ops, %d writer domains) + \
        version-GC reclamation"
       ops writer_domains);
  let churn = churn_run ~ops in
  row "%-18s %10s %12s %12s %10s %10s" "" "scans" "p50 (us)" "p99 (us)"
    "written" "refused";
  row "%-18s %10d %12.1f %12.1f %10d %10d" "scan-at-snapshot" churn.scans
    churn.scan_p50_us churn.scan_p99_us churn.written churn.refused;
  row "stable snapshots: %d/%d" (churn.scans - churn.unstable) churn.scans;
  let off = gc_run ~ops ~pin:true in
  let on = gc_run ~ops ~pin:false in
  let held = off.live_during - on.live_during in
  let released = off.live_during - off.live_after in
  row "%-18s %14s %14s" "version GC" "live during" "live after";
  row "%-18s %14s %14s" "pinned (GC off)"
    (human_bytes off.live_during)
    (human_bytes off.live_after);
  row "%-18s %14s %14s" "unpinned (GC on)"
    (human_bytes on.live_during)
    (human_bytes on.live_after);
  row "held by the pin: %s; reclaimed on release: %s" (human_bytes held)
    (human_bytes released);
  let json = "BENCH_snapshot.json" in
  let oc = open_out json in
  Printf.fprintf oc
    {|{
  "bench": "snapshot",
  "ops": %d,
  "writer_domains": %d,
  "scan_at_snapshot": {
    "scans": %d,
    "p50_us": %.1f,
    "p99_us": %.1f,
    "unstable": %d,
    "writes_acked": %d,
    "writes_refused": %d
  },
  "version_gc": {
    "pinned_live_bytes": %d,
    "pinned_live_bytes_after_release": %d,
    "unpinned_live_bytes": %d,
    "bytes_held_by_pin": %d,
    "bytes_reclaimed_on_release": %d
  }
}
|}
    ops writer_domains churn.scans churn.scan_p50_us churn.scan_p99_us
    churn.unstable churn.written churn.refused off.live_during off.live_after
    on.live_during held released;
  close_out oc;
  row "wrote %s" json;
  (* Self-checks: the run must demonstrate the machinery, not just time it. *)
  if churn.scans = 0 then failwith "snapshot: reader never completed a scan";
  if churn.unstable > 0 then
    failwith
      (Printf.sprintf "snapshot: %d/%d pinned scans were unstable"
         churn.unstable churn.scans);
  if not off.pinned_read_ok then
    failwith "snapshot: pinned read diverged during the GC-off run";
  if held <= 0 then
    failwith "snapshot: a live pin held no bytes back from version GC";
  if off.live_after >= off.live_during then
    failwith "snapshot: releasing the pin reclaimed nothing"
