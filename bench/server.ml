(* Service-layer benchmark: group commit on vs off over real loopback
   sockets.

   Eight client domains hammer a served store with synchronous puts. The
   device is a fault-injected in-memory env with a scripted durable-op
   latency, so an fsync costs what an fsync costs — which is exactly the
   price group commit amortises. Two runs: group commit ON (concurrent
   commits coalesce into WAL windows, one append + one fsync per window)
   and OFF (every request pays its own append + fsync through the same
   code path). The headline is fsyncs per acked op; the paper-level claim
   is that the ON run needs at least 4x fewer at 8 concurrent clients.

   Writes BENCH_server.json (schema in EXPERIMENTS.md) so successive PRs
   can diff the coalescing behaviour mechanically. *)

open Harness
module Config = Wipdb.Config
module Store = Wipdb.Store
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats
module Server = Wip_server.Server
module Client = Wip_server.Client
module Group_commit = Wip_server.Group_commit
module Histogram = Wip_stats.Histogram
module Key_codec = Wip_workload.Key_codec
module Rng = Wip_util.Rng

let clients = 8

let value_size = 128

(* 150 us per durable op: the ballpark of a data-center-grade NVMe fsync,
   and large enough that coalescing dominates scheduling noise. *)
let durable_op_ns = 150_000

let config name =
  {
    Config.default with
    Config.name;
    (* The run must measure commit fsyncs, not flush traffic: memtable and
       WAL thresholds sit far above the benchmark's footprint. *)
    memtable_items = 1_000_000;
    memtable_bytes = 256 * 1024 * 1024;
    wal_segment_bytes = 256 * 1024 * 1024;
    wal_size_threshold = 1024 * 1024 * 1024;
    block_cache_bytes = 0;
  }

type outcome = {
  ops_per_s : float;
  p50_us : float;
  p99_us : float;
  acked : int;
  errors : int;
  fsyncs : int;
  fsyncs_per_op : float;
  windows : int;
  requests : int;
}

let one_run ~ops ~group_commit =
  let name = if group_commit then "srv-gc-on" else "srv-gc-off" in
  let fenv = Fault_env.create () in
  Fault_env.set_latency fenv ~durable_ns:durable_op_ns;
  let db = Store.create ~env:(Fault_env.env fenv) (config name) in
  let commit batches =
    match Store.try_write_batches db (Array.to_list batches) with
    | Error e -> Array.map (fun _ -> Error e) batches
    | Ok () -> (
      match Store.log_sync db with
      | () -> Array.map (fun _ -> Ok ()) batches
      | exception Wip_kv.Store_intf.Rejected e ->
        Array.map (fun _ -> Error e) batches)
  in
  let ops_rec =
    {
      Server.get = (fun key -> Store.get db key);
      scan = (fun ~lo ~hi ~limit -> Store.scan db ~lo ~hi ?limit ());
      commit;
      stats = (fun () -> []);
    }
  in
  let syncs_before = Io_stats.sync_count (Io_stats.snapshot (Store.io_stats db)) in
  let srv = Server.start ~workers:clients ~group_commit ~ops:ops_rec () in
  let per_client = ops / clients in
  let client_domain c =
    Domain.spawn (fun () ->
        let conn = Client.connect ~port:(Server.port srv) () in
        let rng = Rng.create ~seed:(Int64.of_int (0x5E4 + c)) in
        let h = Histogram.create () in
        let acked = ref 0 and errors = ref 0 in
        for _ = 1 to per_client do
          let key = Key_codec.encode (Rng.int64 rng key_space) in
          let value = value_of_size rng value_size in
          let t0 = Unix.gettimeofday () in
          (match Client.put conn ~key ~value with
          | Ok () -> incr acked
          | Error _ -> incr errors);
          Histogram.add h ((Unix.gettimeofday () -. t0) *. 1.0e6)
        done;
        Client.close conn;
        (h, !acked, !errors))
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init clients client_domain in
  let results = List.map Domain.join domains in
  let dt = Unix.gettimeofday () -. t0 in
  let gc = Server.group srv in
  let windows = Group_commit.windows gc in
  let requests = Group_commit.requests gc in
  Server.stop srv;
  let syncs_after = Io_stats.sync_count (Io_stats.snapshot (Store.io_stats db)) in
  let hist = Histogram.create () in
  let acked = ref 0 and errors = ref 0 in
  List.iter
    (fun (h, a, e) ->
      Histogram.merge hist h;
      acked := !acked + a;
      errors := !errors + e)
    results;
  let fsyncs = syncs_after - syncs_before in
  {
    ops_per_s = float_of_int !acked /. dt;
    p50_us = Histogram.percentile hist 50.0;
    p99_us = Histogram.percentile hist 99.0;
    acked = !acked;
    errors = !errors;
    fsyncs;
    fsyncs_per_op = float_of_int fsyncs /. float_of_int (max 1 !acked);
    windows;
    requests;
  }

let run ~ops () =
  section
    (Printf.sprintf
       "server: group commit on vs off (%d ops, %d client domains, %d us/durable op)"
       ops clients (durable_op_ns / 1000));
  let on = one_run ~ops ~group_commit:true in
  let off = one_run ~ops ~group_commit:false in
  row "%-12s %10s %10s %10s %8s %8s %10s %9s" "group commit" "ops/s"
    "p50 (us)" "p99 (us)" "acked" "fsyncs" "fsyncs/op" "win size";
  let print label (o : outcome) =
    row "%-12s %10.0f %10.1f %10.1f %8d %8d %10.3f %9.1f" label o.ops_per_s
      o.p50_us o.p99_us o.acked o.fsyncs o.fsyncs_per_op
      (float_of_int o.requests /. float_of_int (max 1 o.windows))
  in
  print "on" on;
  print "off" off;
  let reduction = off.fsyncs_per_op /. on.fsyncs_per_op in
  row "fsync reduction: %.1fx (>= 4x required at %d clients)" reduction clients;
  if on.errors + off.errors > 0 then
    row "errors: on=%d off=%d" on.errors off.errors;
  let json = "BENCH_server.json" in
  let oc = open_out json in
  let emit label (o : outcome) =
    Printf.sprintf
      {|{
    "ops_per_sec": %.0f,
    "p50_us": %.1f,
    "p99_us": %.1f,
    "acked": %d,
    "errors": %d,
    "fsyncs": %d,
    "fsyncs_per_op": %.4f,
    "windows": %d,
    "requests": %d
  }|}
      o.ops_per_s o.p50_us o.p99_us o.acked o.errors o.fsyncs o.fsyncs_per_op
      o.windows o.requests
    |> fun body -> Printf.sprintf "%S: %s" label body
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"server\",\n  \"ops\": %d,\n  \"clients\": %d,\n  \
     \"durable_op_ns\": %d,\n  %s,\n  %s,\n  \"fsync_reduction_x\": %.2f\n}\n"
    ops clients durable_op_ns
    (emit "group_commit_on" on)
    (emit "group_commit_off" off)
    reduction;
  close_out oc;
  row "wrote %s" json;
  if on.acked = 0 || off.acked = 0 then failwith "server: no acked ops";
  if reduction < 4.0 then
    failwith
      (Printf.sprintf
         "server: group commit reduced fsyncs/op only %.1fx (< 4x)" reduction)
