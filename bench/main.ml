(* Benchmark harness entry point.

   Each experiment regenerates one of the paper's tables/figures (see
   DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
   results). With no arguments, every experiment runs at a scaled-down
   default size; pass experiment names to select, and "--ops N" to change
   the per-experiment operation count.

     dune exec bench/main.exe                    # everything, default size
     dune exec bench/main.exe -- fig6 --ops 500000
     dune exec bench/main.exe -- micro           # Bechamel microbenches *)

let experiments =
  [
    ("fig2", "guard-position drift in LevelDB levels", fun ~ops -> Fig2.run ~ops);
    ("fig3", "MemTable structure comparison", fun ~ops -> Fig3.run ~ops);
    ("fig6", "write throughput / WA / per-level I/O", fun ~ops -> Fig6.run ~ops);
    ("fig7", "changing key distribution", fun ~ops -> Fig7.run ~ops);
    ("fig8", "mixed read/write + Table I latency", fun ~ops -> Fig8.run ~ops);
    ("fig9", "WAL size and restart time", fun ~ops -> Fig9.run ~ops);
    ("fig10", "YCSB throughput + Table II latency", fun ~ops -> Fig10.run ~ops);
    ("fig11", "file-size histograms", fun ~ops -> Fig11.run ~ops);
    ("ablation", "WA bound and scheduling-window sweeps", fun ~ops ->
      Ablation.run ~ops);
    ("mt", "sharded front-end scaling, 1..8 foreground threads", fun ~ops ->
      Mt.run ~ops);
    ("readpath", "cursor read path: point get / scan / merge-compact", fun ~ops ->
      Readpath.run ~ops);
    ("stall", "admission control on vs off: latency, stalls, pressure bound",
     fun ~ops -> Stall.run ~ops);
    ("server", "network service layer: group commit on vs off over loopback",
     fun ~ops -> Server.run ~ops);
    ("snapshot",
     "pinned-snapshot scans under churn + version-GC reclamation",
     fun ~ops -> Snapshot.run ~ops);
  ]

let default_ops =
  [
    ("fig2", 60_000);
    ("fig3", 200_000);
    ("fig6", 200_000);
    ("fig7", 120_000);
    ("fig8", 40_000);
    ("fig9", 30_000);
    ("fig10", 30_000);
    ("fig11", 60_000);
    ("ablation", 40_000);
    ("mt", 40_000);
    ("readpath", 200_000);
    ("stall", 40_000);
    ("server", 4_000);
    ("snapshot", 20_000);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...] [--ops N]";
  print_endline "experiments:";
  List.iter (fun (name, doc, _) -> Printf.printf "  %-10s %s\n" name doc)
    experiments;
  Printf.printf "  %-10s %s\n" "micro" "Bechamel microbenchmarks";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse names ops = function
    | [] -> (List.rev names, ops)
    | "--ops" :: n :: rest -> parse names (Some (int_of_string n)) rest
    | ("--help" | "-h") :: _ -> usage ()
    | name :: rest -> parse (name :: names) ops rest
  in
  let names, ops_override = parse [] None args in
  let names =
    if names = [] then List.map (fun (n, _, _) -> n) experiments else names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      if name = "micro" then Micro.run ()
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, run) ->
          let ops =
            match ops_override with
            | Some n -> n
            | None -> List.assoc name default_ops
          in
          (* Fresh heap per experiment: the previous experiment's garbage
             (e.g. fig3's million skip-list nodes) must not tax this one's
             wall-clock numbers. *)
          Gc.compact ();
          run ~ops ()
        | None ->
          Printf.eprintf "unknown experiment: %s\n" name;
          usage ())
    names;
  (* Run microbenches in the no-arg "everything" mode too. *)
  if args = [] then Micro.run ();
  Printf.printf "\ntotal bench time: %.1f s\n%!" (Unix.gettimeofday () -. t0)
