(* Product catalog: the paper's §II-C motivating scenario. Keys are built by
   sequencing descriptors (category > subcategory > product), giving a
   long-term stable key distribution — exactly what WipDB's bucket
   partitioning exploits. Range search over a category prefix is a single
   sorted scan across buckets.

   Run with:  dune exec examples/product_catalog.exe *)

let categories =
  [|
    ("grocery", [| "snacks"; "beverages"; "produce"; "bakery" |]);
    ("electronics", [| "audio"; "cameras"; "phones"; "laptops" |]);
    ("books", [| "fiction"; "science"; "history"; "cooking" |]);
    ("garden", [| "tools"; "plants"; "furniture"; "lighting" |]);
  |]

(* Popularity of categories is skewed but stable over time: the paper's
   assumption about real key spaces. *)
let category_weights = [| 50; 30; 15; 5 |]

let pick_category rng =
  let total = Array.fold_left ( + ) 0 category_weights in
  let roll = Wip_util.Rng.int rng total in
  let rec pick i acc =
    let acc = acc + category_weights.(i) in
    if roll < acc then i else pick (i + 1) acc
  in
  pick 0 0

let product_key rng =
  let ci = pick_category rng in
  let name, subs = categories.(ci) in
  let sub = subs.(Wip_util.Rng.int rng (Array.length subs)) in
  let sku = Wip_util.Rng.int rng 1_000_000 in
  Printf.sprintf "%s/%s/sku-%06d" name sub sku

let () =
  let env = Wip_storage.Env.in_memory () in
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 1024;
      name = "catalog";
    }
  in
  let db = Wipdb.Store.create ~env cfg in
  let rng = Wip_util.Rng.create ~seed:2024L in

  (* Ingest a skewed but stationary stream of product updates. *)
  let n = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    let key = product_key rng in
    let value =
      Printf.sprintf "{\"price\": %d, \"stock\": %d, \"rev\": %d}"
        (1 + Wip_util.Rng.int rng 500)
        (Wip_util.Rng.int rng 1000)
        i
    in
    Wipdb.Store.put db ~key ~value
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "ingested %d product updates in %.2f s (%.0f ops/s)\n" n dt
    (float_of_int n /. dt);
  Printf.printf "buckets adapted to the catalog shape: %d (from %d), splits: %d\n"
    (Wipdb.Store.bucket_count db) cfg.Wipdb.Config.initial_buckets
    (Wipdb.Store.split_count db);
  Printf.printf "write amplification: %.2f (paper bound for this config: %.2f)\n\n"
    (Wip_storage.Io_stats.write_amplification (Wip_storage.Env.stats env))
    (Wipdb.Config.wa_upper_bound cfg);

  (* Prefix range search: all snack products. The '0'..'9'+1 trick bounds a
     prefix: "grocery/snacks/" .. "grocery/snacks0". *)
  let prefix = "grocery/snacks/" in
  let hi = "grocery/snacks0" in
  let t0 = Unix.gettimeofday () in
  let snacks = Wipdb.Store.scan db ~lo:prefix ~hi () in
  Printf.printf "range search %S: %d products in %.1f ms\n" prefix
    (List.length snacks)
    (1000.0 *. (Unix.gettimeofday () -. t0));
  (match snacks with
  | (k, v) :: _ -> Printf.printf "  first: %s -> %s\n" k v
  | [] -> ());

  (* Per-category counts via four prefix scans — the sorted order makes the
     whole catalog enumerable by category. *)
  Array.iter
    (fun (name, _) ->
      let items = Wipdb.Store.scan db ~lo:(name ^ "/") ~hi:(name ^ "0") () in
      Printf.printf "  %-12s %6d distinct products\n" name (List.length items))
    categories;

  (* Bucket boundaries reflect the category popularity. *)
  print_endline "\nbucket boundaries (first 12):";
  List.iteri
    (fun i (info : Wipdb.Store.bucket_info) ->
      if i < 12 then
        Printf.printf "  bucket %2d starts at %S\n" i info.Wipdb.Store.lo)
    (Wipdb.Store.bucket_infos db)
