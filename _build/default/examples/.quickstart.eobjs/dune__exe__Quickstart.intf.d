examples/quickstart.mli:
