examples/product_catalog.mli:
