examples/background_compaction.ml: Atomic List Printf String Thread Unix Wip_concurrent Wip_storage Wip_util Wipdb
