examples/quickstart.ml: List Option Printf Wip_storage Wip_util Wipdb
