examples/telemetry.ml: Array List Printf Unix Wip_storage Wip_util Wipdb
