examples/telemetry.mli:
