examples/background_compaction.mli:
