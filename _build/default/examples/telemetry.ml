(* Telemetry ingestion: a BigTable-style workload (paper §II-C) with keys of
   the form  metric + host + timestamp. Ingestion is write-intensive — the
   case WipDB is built for — and queries are time-windowed range scans.
   The example also demonstrates crash recovery mid-ingestion.

   Run with:  dune exec examples/telemetry.exe *)

let metrics = [| "cpu.util"; "mem.rss"; "disk.iops"; "net.rx"; "net.tx" |]

let hosts = Array.init 40 (fun i -> Printf.sprintf "host-%03d" i)

let sample_key rng tick =
  (* Key layout: metric/host/timestamp — sorted scans give one metric on one
     host in time order. *)
  let metric = metrics.(Wip_util.Rng.int rng (Array.length metrics)) in
  let host = hosts.(Wip_util.Rng.int rng (Array.length hosts)) in
  Printf.sprintf "%s/%s/%012d" metric host tick

let () =
  let env = Wip_storage.Env.in_memory () in
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 1024;
      name = "telemetry";
    }
  in
  let db = Wipdb.Store.create ~env cfg in
  let rng = Wip_util.Rng.create ~seed:99L in

  (* Phase 1: ingest samples in batches (the paper batches 1000 writes per
     log append for efficiency). *)
  let n = 150_000 in
  let batch = ref [] in
  let t0 = Unix.gettimeofday () in
  for tick = 1 to n do
    let key = sample_key rng tick in
    let value = Printf.sprintf "%.3f" (Wip_util.Rng.float rng *. 100.0) in
    batch := (Wip_util.Ikey.Value, key, value) :: !batch;
    if tick mod 1000 = 0 then begin
      Wipdb.Store.write_batch db !batch;
      batch := []
    end
  done;
  Wipdb.Store.write_batch db !batch;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "ingested %d samples in %.2f s (%.0f samples/s), WA %.2f\n" n dt
    (float_of_int n /. dt)
    (Wip_storage.Io_stats.write_amplification (Wip_storage.Env.stats env));

  (* Phase 2: time-windowed queries — scan one metric on one host between
     two ticks. *)
  let window metric host lo_tick hi_tick =
    let lo = Printf.sprintf "%s/%s/%012d" metric host lo_tick in
    let hi = Printf.sprintf "%s/%s/%012d" metric host hi_tick in
    Wipdb.Store.scan db ~lo ~hi ()
  in
  let t0 = Unix.gettimeofday () in
  let samples = window "cpu.util" "host-007" 0 n in
  Printf.printf "cpu.util/host-007 full history: %d samples in %.1f ms\n"
    (List.length samples)
    (1000.0 *. (Unix.gettimeofday () -. t0));
  let recent = window "cpu.util" "host-007" (n - 20_000) n in
  Printf.printf "  last window: %d samples" (List.length recent);
  (match recent with
  | (k, v) :: _ -> Printf.printf " (first %s = %s)\n" k v
  | [] -> print_newline ());

  (* Phase 3: crash in the middle of ingesting new data — unflushed samples
     live only in MemTables + WAL, and must survive recovery. *)
  for tick = n + 1 to n + 500 do
    Wipdb.Store.put db ~key:(sample_key rng tick) ~value:"42.0"
  done;
  (* No checkpoint, no flush: simulate a power failure right here. *)
  let t0 = Unix.gettimeofday () in
  let db2 = Wipdb.Store.recover ~env cfg in
  Printf.printf "recovered after simulated crash in %.1f ms (%d buckets, seq %Ld)\n"
    (1000.0 *. (Unix.gettimeofday () -. t0))
    (Wipdb.Store.bucket_count db2)
    (Wipdb.Store.sequence db2);
  (* Every pre-crash sample is still there. *)
  let all = Wipdb.Store.scan db2 ~lo:"cpu.util/host-007/" ~hi:"cpu.util/host-0070" () in
  Printf.printf "post-recovery cpu.util/host-007 history: %d samples\n"
    (List.length all);
  assert (List.length all >= List.length samples);
  print_endline "telemetry example OK"
