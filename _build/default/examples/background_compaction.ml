(* Background compaction: the paper's deployment model (§IV-A runs seven
   compaction threads). The concurrent front wraps a WipDB store behind a
   lock and runs a dedicated compactor thread, so foreground writes return
   after the WAL append + MemTable insert and merge-sorting happens off the
   critical path. Reader threads run concurrently with the writer.

   Run with:  dune exec examples/background_compaction.exe *)

module C = Wip_concurrent.Concurrent_store.Make (Wipdb.Store)

let key i = Printf.sprintf "%012d" i

let () =
  let env = Wip_storage.Env.in_memory () in
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 512;
      memtable_bytes = 64 * 1024;
      (* Leave all eligible compactions to the background thread: the write
         path only does mandatory work (splits, over-limit levels). *)
      compaction_budget_per_batch = 0;
      name = "bgdb";
    }
  in
  let db = Wipdb.Store.create ~env cfg in
  let c = C.create ~budget_per_cycle:(512 * 1024) ~idle_sleep:0.0002 db in

  let n = 120_000 in
  let write_done = Atomic.make false in
  let reads = Atomic.make 0 and hits = Atomic.make 0 in

  let writer () =
    let rng = Wip_util.Rng.create ~seed:1L in
    for i = 1 to n do
      C.put c
        ~key:(key (Wip_util.Rng.int rng 500_000))
        ~value:(Printf.sprintf "value-%08d" i)
    done;
    Atomic.set write_done true
  in
  let reader seed () =
    let rng = Wip_util.Rng.create ~seed in
    while not (Atomic.get write_done) do
      let k = key (Wip_util.Rng.int rng 500_000) in
      Atomic.incr reads;
      match C.get c k with Some _ -> Atomic.incr hits | None -> ()
    done
  in

  let t0 = Unix.gettimeofday () in
  let threads =
    Thread.create writer ()
    :: List.map (fun s -> Thread.create (reader s) ()) [ 2L; 3L; 4L ]
  in
  List.iter Thread.join threads;
  let dt = Unix.gettimeofday () -. t0 in
  C.stop c;

  Printf.printf "writer: %d puts in %.2f s (%.0f ops/s)\n" n dt
    (float_of_int n /. dt);
  Printf.printf "readers (3 threads): %d gets, %d hits, concurrent with writes\n"
    (Atomic.get reads) (Atomic.get hits);
  C.with_store c (fun db ->
      Printf.printf
        "background compactor: %d compactions, %d splits, %d buckets, WA %.2f\n"
        (Wipdb.Store.compaction_count db)
        (Wipdb.Store.split_count db)
        (Wipdb.Store.bucket_count db)
        (Wip_storage.Io_stats.write_amplification (Wip_storage.Env.stats env)));
  Printf.printf "compactor cycles that did work: %d\n" (C.compaction_cycles c);
  (* Everything remains readable after the compactor drains. *)
  let sample = C.scan c ~lo:(key 0) ~hi:(key 500_000) ~limit:5 () in
  Printf.printf "first keys: %s\n"
    (String.concat ", " (List.map fst sample));
  print_endline "background compaction example OK"
