(* Quickstart: the WipDB public API in two minutes.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A store needs a Config and a storage Env. The in-memory Env is perfect
     for experimentation; use Wip_storage.Env.posix ~root:"/path" for a real
     on-disk store. *)
  let env = Wip_storage.Env.in_memory () in
  let db = Wipdb.Store.create ~env Wipdb.Config.default in

  (* Point writes, reads, updates, deletes. *)
  Wipdb.Store.put db ~key:"user:1001:name" ~value:"Ada Lovelace";
  Wipdb.Store.put db ~key:"user:1001:email" ~value:"ada@example.com";
  Wipdb.Store.put db ~key:"user:1002:name" ~value:"Alan Turing";

  (match Wipdb.Store.get db "user:1001:name" with
  | Some name -> Printf.printf "user 1001 is %s\n" name
  | None -> assert false);

  Wipdb.Store.put db ~key:"user:1001:email" ~value:"lovelace@example.com";
  Wipdb.Store.delete db ~key:"user:1002:name";
  assert (Wipdb.Store.get db "user:1002:name" = None);

  (* Range scans: keys are globally sorted across buckets, so a prefix scan
     is just a range. *)
  let profile = Wipdb.Store.scan db ~lo:"user:1001:" ~hi:"user:1001;" () in
  Printf.printf "user 1001 has %d attributes:\n" (List.length profile);
  List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) profile;

  (* Atomic batches: all-or-nothing in the write-ahead log. *)
  Wipdb.Store.write_batch db
    [
      (Wip_util.Ikey.Value, "account:a", "90");
      (Wip_util.Ikey.Value, "account:b", "110");
    ];

  (* Snapshots: a sequence number pins a consistent view. *)
  let snap = Wipdb.Store.snapshot db in
  Wipdb.Store.put db ~key:"account:a" ~value:"0";
  Printf.printf "account:a now=%s, at snapshot=%s\n"
    (Option.get (Wipdb.Store.get db "account:a"))
    (Option.get (Wipdb.Store.get_at db "account:a" ~snapshot:snap));

  (* Crash recovery: everything above is already durable in the WAL. *)
  Wipdb.Store.checkpoint db;
  let db2 = Wipdb.Store.recover ~env Wipdb.Config.default in
  assert (Wipdb.Store.get db2 "account:b" = Some "110");
  Printf.printf "recovered store has %d bucket(s); write amplification %.2f\n"
    (Wipdb.Store.bucket_count db2)
    (Wip_storage.Io_stats.write_amplification (Wip_storage.Env.stats env));
  print_endline "quickstart OK"
