(* Tests for the concurrent front: thread safety under mixed load and
   background compaction actually happening off the write path. *)

module C = Wip_concurrent.Concurrent_store.Make (Wipdb.Store)

let base_config =
  {
    Wipdb.Config.default with
    Wipdb.Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    (* Leave eligible compactions entirely to the background thread. *)
    compaction_budget_per_batch = 0;
    name = "conc";
  }

let key i = Printf.sprintf "%08d" i

let test_background_compaction_happens () =
  let db = Wipdb.Store.create base_config in
  let c = C.create ~idle_sleep:0.0005 db in
  for i = 0 to 9999 do
    C.put c ~key:(key (i mod 3000)) ~value:("v" ^ string_of_int i)
  done;
  (* Give the compactor a moment, then stop (stop drains to quiescence). *)
  C.stop c;
  Alcotest.(check bool)
    (Printf.sprintf "compactions ran (%d, %d cycles)"
       (Wipdb.Store.compaction_count db) (C.compaction_cycles c))
    true
    (Wipdb.Store.compaction_count db > 0);
  (* Data intact. *)
  for i = 0 to 2999 do
    if C.get c (key i) = None then Alcotest.failf "lost key %d" i
  done

let test_concurrent_readers_and_writer () =
  let db = Wipdb.Store.create base_config in
  let c = C.create db in
  let n = 4000 in
  let failures = Atomic.make 0 in
  let writer () =
    for i = 0 to n - 1 do
      C.put c ~key:(key i) ~value:(string_of_int i)
    done
  in
  let reader () =
    (* Readers chase the writer; any key they observe must have its exact
       written value. *)
    for _ = 0 to (2 * n) - 1 do
      let i = Random.int n in
      match C.get c (key i) with
      | Some v when v <> string_of_int i -> Atomic.incr failures
      | Some _ | None -> ()
    done
  in
  let scanner () =
    for _ = 0 to 49 do
      let r = C.scan c ~lo:(key 0) ~hi:(key n) ~limit:100 () in
      (* Scans must be sorted and duplicate-free even mid-write. *)
      let rec ordered = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          if String.compare a b >= 0 then Atomic.incr failures;
          ordered rest
        | _ -> ()
      in
      ordered r
    done
  in
  let threads =
    [
      Thread.create writer ();
      Thread.create reader ();
      Thread.create reader ();
      Thread.create scanner ();
    ]
  in
  List.iter Thread.join threads;
  C.stop c;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get failures);
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "final key %d" i)
      (Some (string_of_int i))
      (C.get c (key i))
  done

let test_write_batch_and_flush () =
  let db = Wipdb.Store.create base_config in
  let c = C.create db in
  C.write_batch c
    [
      (Wip_util.Ikey.Value, "a", "1");
      (Wip_util.Ikey.Value, "b", "2");
      (Wip_util.Ikey.Deletion, "a", "");
    ];
  C.flush c;
  Alcotest.(check (option string)) "batch applied" None (C.get c "a");
  Alcotest.(check (option string)) "batch applied b" (Some "2") (C.get c "b");
  C.stop c

let test_stop_idempotent () =
  let db = Wipdb.Store.create base_config in
  let c = C.create db in
  C.put c ~key:"x" ~value:"y";
  C.stop c;
  C.stop c;
  Alcotest.(check (option string)) "usable after stop" (Some "y") (C.get c "x")

let test_with_store_exposes_engine () =
  let db = Wipdb.Store.create base_config in
  let c = C.create db in
  C.put c ~key:"k" ~value:"v1";
  let snap = C.with_store c Wipdb.Store.snapshot in
  C.put c ~key:"k" ~value:"v2";
  let old = C.with_store c (fun s -> Wipdb.Store.get_at s "k" ~snapshot:snap) in
  Alcotest.(check (option string)) "snapshot via with_store" (Some "v1") old;
  C.stop c

let suite =
  [
    Alcotest.test_case "background compaction" `Quick
      test_background_compaction_happens;
    Alcotest.test_case "readers + writer" `Slow test_concurrent_readers_and_writer;
    Alcotest.test_case "batch and flush" `Quick test_write_batch_and_flush;
    Alcotest.test_case "stop idempotent" `Quick test_stop_idempotent;
    Alcotest.test_case "with_store" `Quick test_with_store_exposes_engine;
  ]

(* The wrapper is generic over engines: drive the leveled baseline too. *)
module CL = Wip_concurrent.Concurrent_store.Make (Wip_lsm.Leveled)

let test_generic_over_leveled () =
  let db =
    Wip_lsm.Leveled.create
      {
        (Wip_lsm.Leveled.leveldb_config ~scale:1) with
        Wip_lsm.Leveled.memtable_bytes = 2048;
        name = "conc-lvl";
      }
  in
  let c = CL.create db in
  for i = 0 to 1999 do
    CL.put c ~key:(key i) ~value:(string_of_int i)
  done;
  CL.stop c;
  for i = 0 to 1999 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Some (string_of_int i))
      (CL.get c (key i))
  done

let suite =
  suite
  @ [ Alcotest.test_case "generic over leveled" `Quick test_generic_over_leveled ]
