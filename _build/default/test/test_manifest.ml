(* Tests for the WipDB manifest: edit encoding, replay order, torn tails,
   and segment chaining across reopen. *)

module Env = Wip_storage.Env
module Manifest = Wipdb.Manifest

let edits =
  [
    Manifest.Add_bucket { id = 0; lo = "" };
    Manifest.Add_bucket { id = 1; lo = "m" };
    Manifest.Add_table
      {
        bucket = 0;
        level = 0;
        name = "t-000001.lvt";
        size = 1234;
        entry_count = 99;
        smallest = "a";
        largest = "l";
      };
    Manifest.Remove_table { bucket = 0; level = 0; name = "t-000001.lvt" };
    Manifest.Watermark { seq = 77L; next_file = 3 };
    Manifest.Remove_bucket { id = 1 };
  ]

let test_roundtrip () =
  let env = Env.in_memory () in
  let m = Manifest.create env ~name:"mft" in
  List.iter (Manifest.append m) edits;
  Manifest.sync m;
  let replayed = ref [] in
  Manifest.replay env ~name:"mft" (fun e -> replayed := e :: !replayed);
  Alcotest.(check int) "count" (List.length edits) (List.length !replayed);
  Alcotest.(check bool) "order and content" true (List.rev !replayed = edits)

let test_exists () =
  let env = Env.in_memory () in
  Alcotest.(check bool) "fresh env" false (Manifest.exists env ~name:"mft");
  let _ = Manifest.create env ~name:"mft" in
  Alcotest.(check bool) "after create" true (Manifest.exists env ~name:"mft")

let test_reopen_chains_segments () =
  let env = Env.in_memory () in
  let m = Manifest.create env ~name:"mft" in
  Manifest.append m (Manifest.Add_bucket { id = 0; lo = "" });
  Manifest.sync m;
  let m2 = Manifest.reopen env ~name:"mft" in
  Manifest.append m2 (Manifest.Add_bucket { id = 1; lo = "x" });
  Manifest.sync m2;
  let replayed = ref [] in
  Manifest.replay env ~name:"mft" (fun e -> replayed := e :: !replayed);
  Alcotest.(check int) "both segments replayed" 2 (List.length !replayed);
  match List.rev !replayed with
  | [ Manifest.Add_bucket { id = 0; _ }; Manifest.Add_bucket { id = 1; _ } ] -> ()
  | _ -> Alcotest.fail "order across segments"

let test_create_truncates () =
  let env = Env.in_memory () in
  let m = Manifest.create env ~name:"mft" in
  Manifest.append m (Manifest.Add_bucket { id = 0; lo = "" });
  Manifest.sync m;
  let _m2 = Manifest.create env ~name:"mft" in
  let count = ref 0 in
  Manifest.replay env ~name:"mft" (fun _ -> incr count);
  Alcotest.(check int) "old edits gone" 0 !count

let test_torn_tail () =
  let env = Env.in_memory () in
  let m = Manifest.create env ~name:"mft" in
  Manifest.append m (Manifest.Add_bucket { id = 0; lo = "" });
  Manifest.sync m;
  (* Append half a record to the segment. *)
  let seg =
    List.find (fun f -> Filename.check_suffix f ".mft") (Env.list_files env)
  in
  let r = Env.open_file env seg in
  let contents = Env.read_all r ~category:Wip_storage.Io_stats.Manifest in
  Env.close_reader r;
  let w = Env.create_file env seg in
  Env.append w ~category:Wip_storage.Io_stats.Manifest (contents ^ "\x99\x99\x99");
  Env.close_writer w;
  let replayed = ref [] in
  Manifest.replay env ~name:"mft" (fun e -> replayed := e :: !replayed);
  Alcotest.(check int) "intact edit only" 1 (List.length !replayed)

let test_bytes_written () =
  let env = Env.in_memory () in
  let m = Manifest.create env ~name:"mft" in
  Alcotest.(check int) "zero" 0 (Manifest.bytes_written m);
  Manifest.append m (Manifest.Watermark { seq = 1L; next_file = 1 });
  Alcotest.(check bool) "positive" true (Manifest.bytes_written m > 0)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "reopen chains" `Quick test_reopen_chains_segments;
    Alcotest.test_case "create truncates" `Quick test_create_truncates;
    Alcotest.test_case "torn tail" `Quick test_torn_tail;
    Alcotest.test_case "bytes written" `Quick test_bytes_written;
  ]
