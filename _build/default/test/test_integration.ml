(* Cross-library integration tests:
   - all four engines given one operation stream agree on every read;
   - WipDB end-to-end on the POSIX backend, across process-like reopen;
   - deterministic reproducibility of a whole store build;
   - engine behaviour under interleaved scans, writes and deletions. *)

module Store_intf = Wip_kv.Store_intf
module Env = Wip_storage.Env

module Model = Map.Make (String)

let key i = Printf.sprintf "%010d" i

let make_engines () =
  let wip =
    Wipdb.Store.create
      {
        Wipdb.Config.default with
        Wipdb.Config.memtable_items = 64;
        memtable_bytes = 8 * 1024;
        t_sublevels = 4;
        min_count = 2;
        max_count = 8;
        name = "iwip";
      }
  in
  let lvl =
    Wip_lsm.Leveled.create
      {
        (Wip_lsm.Leveled.leveldb_config ~scale:1) with
        Wip_lsm.Leveled.memtable_bytes = 2 * 1024;
        sstable_bytes = 1024;
        level1_bytes = 8 * 1024;
        name = "ilvl";
      }
  in
  let flsm =
    Wip_flsm.Flsm.create
      {
        (Wip_flsm.Flsm.default_config ~scale:1) with
        Wip_flsm.Flsm.memtable_bytes = 2 * 1024;
        top_level_bits = 6;
        name = "iflsm";
      }
  in
  [
    Store_intf.Store ((module Wipdb.Store), wip);
    Store_intf.Store ((module Wip_lsm.Leveled), lvl);
    Store_intf.Store ((module Wip_flsm.Flsm), flsm);
  ]

let test_engines_agree () =
  let stores = make_engines () in
  let model = ref Model.empty in
  let rng = Wip_util.Rng.create ~seed:0x1A7L in
  for i = 0 to 5999 do
    let k = key (Wip_util.Rng.int rng 500) in
    if Wip_util.Rng.int rng 5 = 0 then begin
      List.iter (fun s -> Store_intf.delete s ~key:k) stores;
      model := Model.remove k !model
    end
    else begin
      let v = "v" ^ string_of_int i in
      List.iter (fun s -> Store_intf.put s ~key:k ~value:v) stores;
      model := Model.add k v !model
    end
  done;
  List.iter
    (fun s ->
      Store_intf.flush s;
      Store_intf.maintenance s ())
    stores;
  (* Every engine must agree with the model on every key... *)
  for i = 0 to 499 do
    let k = key i in
    let expected = Model.find_opt k !model in
    List.iter
      (fun s ->
        if Store_intf.get s k <> expected then
          Alcotest.failf "engine %s disagrees on %s" (Store_intf.store_name s) k)
      stores
  done;
  (* ...and on range scans. *)
  let expected_range =
    Model.bindings !model
    |> List.filter (fun (k, _) -> k >= key 100 && k < key 200)
  in
  List.iter
    (fun s ->
      let got = Store_intf.scan s ~lo:(key 100) ~hi:(key 200) () in
      if got <> expected_range then
        Alcotest.failf "engine %s scan disagrees (%d vs %d entries)"
          (Store_intf.store_name s) (List.length got)
          (List.length expected_range))
    stores

let test_wipdb_on_posix () =
  let root = Filename.temp_file "wipdb-it" "" in
  Sys.remove root;
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 128;
      name = "posixdb";
    }
  in
  let env = Env.posix ~root in
  let db = Wipdb.Store.create ~env cfg in
  for i = 0 to 1999 do
    Wipdb.Store.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Wipdb.Store.checkpoint db;
  (* Reopen through a brand-new Env over the same directory — the
     process-restart situation. *)
  let env2 = Env.posix ~root in
  let db2 = Wipdb.Store.recover ~env:env2 cfg in
  for i = 0 to 1999 do
    match Wipdb.Store.get db2 (key i) with
    | Some v when v = "v" ^ string_of_int i -> ()
    | _ -> Alcotest.failf "posix recovery lost key %d" i
  done;
  let r = Wipdb.Store.scan db2 ~lo:(key 10) ~hi:(key 20) () in
  Alcotest.(check int) "scan after reopen" 10 (List.length r);
  (* Cleanup. *)
  List.iter (fun f -> Env.delete env2 f) (Env.list_files env2);
  Unix.rmdir root

let build_store seed =
  let env = Env.in_memory () in
  let db =
    Wipdb.Store.create ~env
      {
        Wipdb.Config.default with
        Wipdb.Config.memtable_items = 64;
        memtable_bytes = 8 * 1024;
        t_sublevels = 4;
        min_count = 2;
        max_count = 8;
      }
  in
  let rng = Wip_util.Rng.create ~seed in
  for i = 0 to 9999 do
    Wipdb.Store.put db
      ~key:(key (Wip_util.Rng.int rng 5000))
      ~value:("v" ^ string_of_int i)
  done;
  (env, db)

let test_deterministic_builds () =
  let env1, db1 = build_store 42L in
  let env2, db2 = build_store 42L in
  Alcotest.(check int) "same bucket count" (Wipdb.Store.bucket_count db1)
    (Wipdb.Store.bucket_count db2);
  Alcotest.(check int) "same compactions" (Wipdb.Store.compaction_count db1)
    (Wipdb.Store.compaction_count db2);
  Alcotest.(check int) "same device bytes"
    (Wip_storage.Io_stats.bytes_written (Env.stats env1))
    (Wip_storage.Io_stats.bytes_written (Env.stats env2));
  Alcotest.(check (list string)) "identical file listing"
    (Env.list_files env1) (Env.list_files env2)

let test_scan_during_heavy_churn () =
  (* Scans taken between write bursts must always reflect a consistent
     point-in-time state: never a duplicate key, never unsorted. *)
  let _, db = build_store 7L in
  let rng = Wip_util.Rng.create ~seed:70L in
  for burst = 0 to 19 do
    for _ = 0 to 199 do
      Wipdb.Store.put db
        ~key:(key (Wip_util.Rng.int rng 5000))
        ~value:(string_of_int burst)
    done;
    let r = Wipdb.Store.scan db ~lo:"" ~hi:"\255" () in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if String.compare a b >= 0 then
          Alcotest.failf "scan unsorted or duplicate: %s then %s" a b;
        check rest
      | _ -> ()
    in
    check r
  done

let test_large_values () =
  let db =
    Wipdb.Store.create
      { Wipdb.Config.default with Wipdb.Config.memtable_bytes = 64 * 1024 }
  in
  let big = String.make 100_000 'x' in
  Wipdb.Store.put db ~key:"big" ~value:big;
  Wipdb.Store.flush db;
  (match Wipdb.Store.get db "big" with
  | Some v -> Alcotest.(check int) "length preserved" 100_000 (String.length v)
  | None -> Alcotest.fail "big value lost");
  Alcotest.(check bool) "content" true (Wipdb.Store.get db "big" = Some big)

let test_many_sequential_reopens () =
  let env = Env.in_memory () in
  let cfg =
    { Wipdb.Config.default with Wipdb.Config.memtable_items = 32; name = "re" }
  in
  let db = ref (Wipdb.Store.create ~env cfg) in
  for epoch = 0 to 4 do
    for i = 0 to 99 do
      Wipdb.Store.put !db
        ~key:(key ((epoch * 100) + i))
        ~value:(Printf.sprintf "e%d" epoch)
    done;
    Wipdb.Store.checkpoint !db;
    db := Wipdb.Store.recover ~env cfg
  done;
  for i = 0 to 499 do
    if Wipdb.Store.get !db (key i) = None then
      Alcotest.failf "key %d lost across reopens" i
  done

let suite =
  [
    Alcotest.test_case "engines agree" `Slow test_engines_agree;
    Alcotest.test_case "wipdb on posix" `Quick test_wipdb_on_posix;
    Alcotest.test_case "deterministic builds" `Quick test_deterministic_builds;
    Alcotest.test_case "scan during churn" `Quick test_scan_during_heavy_churn;
    Alcotest.test_case "large values" `Quick test_large_values;
    Alcotest.test_case "repeated reopens" `Quick test_many_sequential_reopens;
  ]
