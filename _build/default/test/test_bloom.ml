(* Tests for wip_bloom: no false negatives, bounded false positives,
   serialized-form queries. *)

module Bloom = Wip_bloom.Bloom

let keys n prefix = List.init n (fun i -> Printf.sprintf "%s-%08d" prefix i)

let test_no_false_negatives () =
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:1000 in
  let ks = keys 1000 "present" in
  List.iter (Bloom.add b) ks;
  List.iter
    (fun k ->
      if not (Bloom.mem b k) then Alcotest.failf "false negative on %s" k)
    ks

let test_false_positive_rate () =
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:2000 in
  List.iter (Bloom.add b) (keys 2000 "in");
  let fp = ref 0 in
  let probes = 10_000 in
  List.iter
    (fun k -> if Bloom.mem b k then incr fp)
    (keys probes "out");
  (* ~1% expected at 10 bits/key; assert a generous 4% ceiling. *)
  if !fp > probes * 4 / 100 then
    Alcotest.failf "false positive rate too high: %d/%d" !fp probes

let test_encoded_equivalence () =
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:500 in
  let ks = keys 500 "x" in
  List.iter (Bloom.add b) ks;
  let encoded = Bloom.encode b in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        "encoded matches live" (Bloom.mem b k)
        (Bloom.mem_encoded encoded k))
    (ks @ keys 500 "y")

let test_empty_or_bad_filter_is_permissive () =
  Alcotest.(check bool) "empty" true (Bloom.mem_encoded "" "k");
  Alcotest.(check bool) "bad probe count" true
    (Bloom.mem_encoded "\x00\x00\x00\xff" "k")

let test_sizing () =
  let b = Bloom.create ~bits_per_key:10 ~expected_keys:100 in
  Alcotest.(check bool) "bits >= keys*bits_per_key" true (Bloom.bit_count b >= 1000);
  Alcotest.(check bool) "probes in [1,30]" true
    (Bloom.probe_count b >= 1 && Bloom.probe_count b <= 30)

let qcheck_no_false_negatives =
  QCheck.Test.make ~name:"bloom never loses an added key" ~count:100
    QCheck.(small_list small_string)
    (fun ks ->
      let b = Bloom.create ~bits_per_key:10 ~expected_keys:(max 1 (List.length ks)) in
      List.iter (Bloom.add b) ks;
      List.for_all (Bloom.mem b) ks)

let qcheck_encoded_no_false_negatives =
  QCheck.Test.make ~name:"serialized bloom never loses an added key" ~count:100
    QCheck.(small_list small_string)
    (fun ks ->
      let b = Bloom.create ~bits_per_key:8 ~expected_keys:(max 1 (List.length ks)) in
      List.iter (Bloom.add b) ks;
      let e = Bloom.encode b in
      List.for_all (fun k -> Bloom.mem_encoded e k) ks)

let suite =
  [
    Alcotest.test_case "no false negatives" `Quick test_no_false_negatives;
    Alcotest.test_case "false positive rate" `Quick test_false_positive_rate;
    Alcotest.test_case "encoded equivalence" `Quick test_encoded_equivalence;
    Alcotest.test_case "permissive on bad input" `Quick
      test_empty_or_bad_filter_is_permissive;
    Alcotest.test_case "sizing" `Quick test_sizing;
    QCheck_alcotest.to_alcotest qcheck_no_false_negatives;
    QCheck_alcotest.to_alcotest qcheck_encoded_no_false_negatives;
  ]
