(* Tests for wip_memtable: skiplist, the paper's hash memtable, and the
   unified front, checked against a reference model. *)

module Ikey = Wip_util.Ikey
module Skiplist = Wip_memtable.Skiplist
module Hash_memtable = Wip_memtable.Hash_memtable
module Memtable = Wip_memtable.Memtable

module Model = Map.Make (String)

let ik ?(kind = Ikey.Value) key seq = Ikey.make ~kind key ~seq:(Int64.of_int seq)

(* ------------------------------------------------------------------ *)
(* Skiplist *)

let test_skiplist_basic () =
  let s = Skiplist.create () in
  Skiplist.add s (ik "b" 1) "vb";
  Skiplist.add s (ik "a" 2) "va";
  Skiplist.add s (ik "c" 3) "vc";
  Alcotest.(check int) "count" 3 (Skiplist.count s);
  (match Skiplist.find s "a" ~snapshot:10L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "a" "va" v
  | _ -> Alcotest.fail "a not found");
  Alcotest.(check bool) "missing" true (Skiplist.find s "zz" ~snapshot:10L = None)

let test_skiplist_versions_and_snapshots () =
  let s = Skiplist.create () in
  Skiplist.add s (ik "k" 1) "v1";
  Skiplist.add s (ik "k" 5) "v5";
  Skiplist.add s (ik ~kind:Ikey.Deletion "k" 8) "";
  (match Skiplist.find s "k" ~snapshot:10L with
  | Some (Ikey.Deletion, _) -> ()
  | _ -> Alcotest.fail "newest is the tombstone");
  (match Skiplist.find s "k" ~snapshot:6L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "snapshot 6" "v5" v
  | _ -> Alcotest.fail "v5 expected");
  (match Skiplist.find s "k" ~snapshot:1L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "snapshot 1" "v1" v
  | _ -> Alcotest.fail "v1 expected");
  Alcotest.(check bool) "before any write" true
    (Skiplist.find s "k" ~snapshot:0L = None)

let test_skiplist_sorted_iteration () =
  let s = Skiplist.create () in
  let rng = Wip_util.Rng.create ~seed:5L in
  for i = 1 to 500 do
    let key = Printf.sprintf "%05d" (Wip_util.Rng.int rng 1000) in
    Skiplist.add s (ik key i) "v"
  done;
  let entries = List.of_seq (Skiplist.to_sorted_seq s) in
  Alcotest.(check int) "all entries" 500 (List.length entries);
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      Ikey.compare a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by internal key" true (sorted entries)

let test_skiplist_range () =
  let s = Skiplist.create () in
  Skiplist.add s (ik "a" 1) "va";
  Skiplist.add s (ik "b" 2) "vb-old";
  Skiplist.add s (ik "b" 3) "vb-new";
  Skiplist.add s (ik ~kind:Ikey.Deletion "c" 4) "";
  Skiplist.add s (ik "d" 5) "vd";
  let r = Skiplist.range s ~lo:"a" ~hi:"d" ~snapshot:10L in
  Alcotest.(check (list (pair string string)))
    "newest visible, tombstones dropped"
    [ ("a", "va"); ("b", "vb-new") ]
    r;
  let r = Skiplist.range s ~lo:"a" ~hi:"d" ~snapshot:2L in
  Alcotest.(check (list (pair string string)))
    "old snapshot sees old version"
    [ ("a", "va"); ("b", "vb-old") ]
    r

(* ------------------------------------------------------------------ *)
(* Hash memtable *)

let test_hash_basic () =
  let h = Hash_memtable.create ~capacity_items:100 in
  Alcotest.(check bool) "add" true (Hash_memtable.try_add h (ik "x" 1) "vx");
  Alcotest.(check bool) "add" true (Hash_memtable.try_add h (ik "y" 2) "vy");
  (match Hash_memtable.find h "x" ~snapshot:10L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "x" "vx" v
  | _ -> Alcotest.fail "x missing");
  Alcotest.(check bool) "absent" true (Hash_memtable.find h "z" ~snapshot:10L = None)

let test_hash_newest_wins () =
  let h = Hash_memtable.create ~capacity_items:100 in
  ignore (Hash_memtable.try_add h (ik "k" 1) "old");
  ignore (Hash_memtable.try_add h (ik "k" 2) "new");
  (match Hash_memtable.find h "k" ~snapshot:10L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "newest" "new" v
  | _ -> Alcotest.fail "missing");
  (match Hash_memtable.find h "k" ~snapshot:1L with
  | Some (Ikey.Value, v) -> Alcotest.(check string) "snapshot sees old" "old" v
  | _ -> Alcotest.fail "missing")

let test_hash_capacity_full () =
  let h = Hash_memtable.create ~capacity_items:8 in
  let added = ref 0 in
  (try
     for i = 0 to 100 do
       if Hash_memtable.try_add h (ik (Printf.sprintf "key%d" i) i) "v" then
         incr added
       else raise Exit
     done
   with Exit -> ());
  Alcotest.(check int) "stops at capacity" 8 !added

let test_hash_entry_overflow_freezes () =
  (* With a big arena but only 2 directory entries (capacity 8 -> 2 entries),
     nine keys hashing anywhere must overflow some 8-slot entry before 17
     insertions; the table reports full rather than relocating. *)
  let h = Hash_memtable.create ~capacity_items:1000 in
  let full = ref false in
  (try
     for i = 0 to 999 do
       if not (Hash_memtable.try_add h (ik (Printf.sprintf "key%d" i) i) "v")
       then begin
         full := true;
         raise Exit
       end
     done
   with Exit -> ());
  (* 1000-item capacity gives 256 entries * 8 slots = 2048 slots, but uneven
     hashing can overflow one entry early; either way it must not crash and
     sorted output must contain exactly what was accepted. *)
  let entries = Hash_memtable.to_sorted_entries h in
  Alcotest.(check int) "sorted output size" (Hash_memtable.count h)
    (Array.length entries);
  ignore !full

let test_hash_sorted_entries () =
  let h = Hash_memtable.create ~capacity_items:512 in
  let rng = Wip_util.Rng.create ~seed:9L in
  let n = 300 in
  for i = 1 to n do
    ignore
      (Hash_memtable.try_add h
         (ik (Printf.sprintf "%06d" (Wip_util.Rng.int rng 100000)) i)
         ("v" ^ string_of_int i))
  done;
  let entries = Hash_memtable.to_sorted_entries h in
  Alcotest.(check int) "count" n (Array.length entries);
  for i = 1 to Array.length entries - 1 do
    if Ikey.compare (fst entries.(i - 1)) (fst entries.(i)) >= 0 then
      Alcotest.fail "not sorted"
  done

(* ------------------------------------------------------------------ *)
(* Unified memtable, model-based *)

let model_check structure =
  let mt =
    Memtable.create ~structure ~capacity_items:10_000
      ~capacity_bytes:(1 lsl 30)
  in
  let model = ref Model.empty in
  let rng = Wip_util.Rng.create ~seed:77L in
  for seq = 1 to 2000 do
    let key = Printf.sprintf "%04d" (Wip_util.Rng.int rng 300) in
    (* A rejected insert (hash-entry overflow) means the table is full in
       real use; the model must not record it. *)
    if Wip_util.Rng.int rng 10 = 0 then begin
      if Memtable.try_add mt (ik ~kind:Ikey.Deletion key seq) "" then
        model := Model.add key None !model
    end
    else begin
      let v = Printf.sprintf "v%d" seq in
      if Memtable.try_add mt (ik key seq) v then
        model := Model.add key (Some v) !model
    end
  done;
  Model.iter
    (fun key expected ->
      match (Memtable.find mt key ~snapshot:Int64.max_int, expected) with
      | Some (Ikey.Value, v), Some v' when String.equal v v' -> ()
      | Some (Ikey.Deletion, _), None -> ()
      | got, _ ->
        Alcotest.failf "mismatch on %s (got %s)" key
          (match got with
          | None -> "none"
          | Some (Ikey.Value, v) -> "value " ^ v
          | Some (Ikey.Deletion, _) -> "tombstone"))
    !model

let test_memtable_model_hash () = model_check Memtable.Hash

let test_memtable_model_sorted () = model_check Memtable.Sorted

let test_memtable_min_seq () =
  let mt =
    Memtable.create ~structure:Memtable.Hash ~capacity_items:100
      ~capacity_bytes:(1 lsl 20)
  in
  Alcotest.(check bool) "empty" true (Memtable.min_seq mt = None);
  ignore (Memtable.try_add mt (ik "a" 5) "v");
  ignore (Memtable.try_add mt (ik "b" 3) "v");
  ignore (Memtable.try_add mt (ik "c" 9) "v");
  Alcotest.(check bool) "min is 3" true (Memtable.min_seq mt = Some 3L)

let test_memtable_capacity_bytes () =
  let mt =
    Memtable.create ~structure:Memtable.Sorted ~capacity_items:1_000_000
      ~capacity_bytes:100
  in
  let accepted = ref 0 in
  (try
     for i = 1 to 100 do
       if Memtable.try_add mt (ik (Printf.sprintf "%05d" i) i) "0123456789" then
         incr accepted
       else raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "byte capacity enforced" true (!accepted < 100)

let test_memtable_range_includes_tombstones () =
  let mt =
    Memtable.create ~structure:Memtable.Hash ~capacity_items:100
      ~capacity_bytes:(1 lsl 20)
  in
  ignore (Memtable.try_add mt (ik "a" 1) "va");
  ignore (Memtable.try_add mt (ik ~kind:Ikey.Deletion "b" 2) "");
  let r = Memtable.range mt ~lo:"a" ~hi:"z" ~snapshot:10L in
  Alcotest.(check int) "two results incl tombstone" 2 (List.length r);
  (match List.assoc "b" r with
  | Ikey.Deletion, _, _ -> ()
  | _ -> Alcotest.fail "b should be a tombstone")

let qcheck_hash_vs_skiplist =
  QCheck.Test.make ~name:"hash and skiplist memtables agree" ~count:50
    QCheck.(small_list (pair (int_bound 50) (int_bound 2)))
    (fun ops ->
      let h =
        Memtable.create ~structure:Memtable.Hash ~capacity_items:10_000
          ~capacity_bytes:(1 lsl 30)
      and s =
        Memtable.create ~structure:Memtable.Sorted ~capacity_items:10_000
          ~capacity_bytes:(1 lsl 30)
      in
      List.iteri
        (fun i (k, op) ->
          let key = Printf.sprintf "%03d" k in
          let kind = if op = 0 then Ikey.Deletion else Ikey.Value in
          let ikey = ik ~kind key (i + 1) in
          let v = "v" ^ string_of_int i in
          (* Keep the two tables in lockstep: skip the skiplist insert when
             the hash table rejects (overflow). *)
          if Memtable.try_add h ikey v then ignore (Memtable.try_add s ikey v))
        ops;
      List.for_all
        (fun (k, _) ->
          let key = Printf.sprintf "%03d" k in
          Memtable.find h key ~snapshot:Int64.max_int
          = Memtable.find s key ~snapshot:Int64.max_int)
        ops)

let suite =
  [
    Alcotest.test_case "skiplist basic" `Quick test_skiplist_basic;
    Alcotest.test_case "skiplist versions" `Quick
      test_skiplist_versions_and_snapshots;
    Alcotest.test_case "skiplist sorted" `Quick test_skiplist_sorted_iteration;
    Alcotest.test_case "skiplist range" `Quick test_skiplist_range;
    Alcotest.test_case "hash basic" `Quick test_hash_basic;
    Alcotest.test_case "hash newest wins" `Quick test_hash_newest_wins;
    Alcotest.test_case "hash capacity" `Quick test_hash_capacity_full;
    Alcotest.test_case "hash overflow freeze" `Quick
      test_hash_entry_overflow_freezes;
    Alcotest.test_case "hash sorted entries" `Quick test_hash_sorted_entries;
    Alcotest.test_case "memtable model (hash)" `Quick test_memtable_model_hash;
    Alcotest.test_case "memtable model (sorted)" `Quick
      test_memtable_model_sorted;
    Alcotest.test_case "memtable min_seq" `Quick test_memtable_min_seq;
    Alcotest.test_case "memtable byte capacity" `Quick
      test_memtable_capacity_bytes;
    Alcotest.test_case "memtable range tombstones" `Quick
      test_memtable_range_includes_tombstones;
    QCheck_alcotest.to_alcotest qcheck_hash_vs_skiplist;
  ]
