test/test_stats.ml: Alcotest Float List QCheck QCheck_alcotest Wip_stats
