test/test_bloom.ml: Alcotest List Printf QCheck QCheck_alcotest Wip_bloom
