test/test_manifest.ml: Alcotest Filename List Wip_storage Wipdb
