test/test_storage.ml: Alcotest Filename String Sys Unix Wip_storage
