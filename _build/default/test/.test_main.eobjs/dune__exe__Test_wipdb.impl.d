test/test_wipdb.ml: Alcotest List Map Printf QCheck QCheck_alcotest String Wip_memtable Wip_storage Wip_util Wipdb
