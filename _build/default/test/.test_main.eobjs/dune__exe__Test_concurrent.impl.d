test/test_concurrent.ml: Alcotest Atomic List Printf Random String Thread Wip_concurrent Wip_lsm Wip_util Wipdb
