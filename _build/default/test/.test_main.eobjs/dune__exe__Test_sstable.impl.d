test/test_sstable.ml: Alcotest Bytes Char Int64 List Printf QCheck QCheck_alcotest Seq String Wip_sstable Wip_storage Wip_util
