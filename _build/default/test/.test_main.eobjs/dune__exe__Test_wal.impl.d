test/test_wal.ml: Alcotest Bytes Char Filename Int64 List Printf QCheck QCheck_alcotest String Wip_storage Wip_util Wip_wal
