test/test_properties.ml: Array Hashtbl Int64 List Printf QCheck QCheck_alcotest String Wip_lsm Wip_sstable Wip_storage Wip_util Wip_workload Wipdb
