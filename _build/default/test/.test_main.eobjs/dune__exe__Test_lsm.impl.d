test/test_lsm.ml: Alcotest List Map Printf QCheck QCheck_alcotest String Wip_lsm Wip_sstable Wip_storage Wip_util
