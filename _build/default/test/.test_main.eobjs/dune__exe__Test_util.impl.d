test/test_util.ml: Alcotest Buffer Bytes Char Int64 List QCheck QCheck_alcotest String Wip_util
