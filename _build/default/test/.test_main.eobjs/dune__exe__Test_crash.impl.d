test/test_crash.ml: Alcotest Bytes Char Filename Fun List Printf String Wip_storage Wip_util Wipdb
