test/test_memtable.ml: Alcotest Array Int64 List Map Printf QCheck QCheck_alcotest String Wip_memtable Wip_util
