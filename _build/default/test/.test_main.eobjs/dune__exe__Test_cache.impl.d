test/test_cache.ml: Alcotest Int64 Printf String Wip_sstable Wip_storage Wip_util Wipdb
