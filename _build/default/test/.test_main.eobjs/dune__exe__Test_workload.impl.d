test/test_workload.ml: Alcotest Hashtbl Int64 List Printf String Wip_kv Wip_lsm Wip_storage Wip_util Wip_workload Wipdb
