test/test_flsm.ml: Alcotest List Map Printf QCheck QCheck_alcotest String Wip_flsm Wip_storage Wip_util
