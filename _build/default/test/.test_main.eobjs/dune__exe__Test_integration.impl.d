test/test_integration.ml: Alcotest Filename List Map Printf String Sys Unix Wip_flsm Wip_kv Wip_lsm Wip_storage Wip_util Wipdb
