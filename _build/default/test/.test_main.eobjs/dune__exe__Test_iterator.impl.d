test/test_iterator.ml: Alcotest List Printf Seq String Wip_storage Wip_util Wipdb
