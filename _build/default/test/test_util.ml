(* Tests for wip_util: coding, CRC, hashing, internal keys, RNG. *)

module Coding = Wip_util.Coding
module Crc32c = Wip_util.Crc32c
module Hashing = Wip_util.Hashing
module Ikey = Wip_util.Ikey
module Rng = Wip_util.Rng

let check = Alcotest.check

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Coding.put_varint buf v;
      let s = Buffer.contents buf in
      let v', off = Coding.get_varint s 0 in
      check Alcotest.int "value" v v';
      check Alcotest.int "length" (String.length s) off;
      check Alcotest.int "predicted length" (Coding.varint_length v)
        (String.length s))
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 20; 1 lsl 40; max_int ]

let test_fixed_roundtrip () =
  let buf = Buffer.create 16 in
  Coding.put_fixed32 buf 0xDEADBEEF;
  Coding.put_fixed64 buf 0x1122334455667788L;
  let s = Buffer.contents buf in
  check Alcotest.int "fixed32" 0xDEADBEEF (Coding.get_fixed32 s 0);
  check Alcotest.bool "fixed64" true
    (Int64.equal 0x1122334455667788L (Coding.get_fixed64 s 4))

let test_length_prefixed () =
  let buf = Buffer.create 16 in
  Coding.put_length_prefixed buf "hello";
  Coding.put_length_prefixed buf "";
  let s = Buffer.contents buf in
  let a, off = Coding.get_length_prefixed s 0 in
  let b, off' = Coding.get_length_prefixed s off in
  check Alcotest.string "first" "hello" a;
  check Alcotest.string "second" "" b;
  check Alcotest.int "consumed" (String.length s) off'

let test_varint_truncated () =
  Alcotest.check_raises "truncated"
    (Invalid_argument "Coding.get_varint: truncated") (fun () ->
      ignore (Coding.get_varint "\x80" 0))

let test_crc_known () =
  (* CRC-32C("123456789") = 0xE3069283, a standard test vector. *)
  check Alcotest.int "check value" 0xE3069283 (Crc32c.string "123456789")

let test_crc_mask_roundtrip () =
  let crc = Crc32c.string "some data" in
  check Alcotest.int "unmask . mask = id" crc (Crc32c.unmask (Crc32c.masked crc))

let test_crc_incremental () =
  let whole = Crc32c.string "abcdef" in
  let part = Crc32c.substring "xxabcdefyy" ~pos:2 ~len:6 in
  check Alcotest.int "substring" whole part

let test_hash_deterministic () =
  check Alcotest.bool "same input same hash" true
    (Int64.equal (Hashing.hash64 "key") (Hashing.hash64 "key"));
  check Alcotest.bool "different seeds differ" false
    (Int64.equal (Hashing.hash64 ~seed:1L "key") (Hashing.hash64 ~seed:2L "key"))

let test_tag16_nonzero () =
  for i = 0 to 999 do
    let t = Hashing.tag16 (string_of_int i) in
    if t = 0 || t > 0xFFFF then Alcotest.failf "tag out of range: %d" t
  done

let test_ikey_roundtrip () =
  let cases =
    [
      Ikey.make "user" ~seq:1L;
      Ikey.make ~kind:Ikey.Deletion "user" ~seq:42L;
      Ikey.make "" ~seq:0L;
      Ikey.make "k" ~seq:Ikey.max_seq;
    ]
  in
  List.iter
    (fun ik ->
      let ik' = Ikey.decode (Ikey.encode ik) in
      check Alcotest.bool "roundtrip" true (Ikey.compare ik ik' = 0);
      check Alcotest.string "user key" ik.Ikey.user_key ik'.Ikey.user_key;
      check Alcotest.bool "seq" true (Int64.equal ik.Ikey.seq ik'.Ikey.seq))
    cases

let test_ikey_order () =
  let a = Ikey.make "a" ~seq:5L in
  let a_newer = Ikey.make "a" ~seq:9L in
  let b = Ikey.make "b" ~seq:1L in
  check Alcotest.bool "user key ascending" true (Ikey.compare a b < 0);
  check Alcotest.bool "seq descending" true (Ikey.compare a_newer a < 0)

let test_ikey_encoded_order_same_user_key () =
  (* For equal user keys, bytewise order of encodings must match
     Ikey.compare (the SSTable block layer compares encodings). *)
  let e1 = Ikey.encode (Ikey.make "same" ~seq:10L) in
  let e2 = Ikey.encode (Ikey.make "same" ~seq:3L) in
  check Alcotest.bool "newer encodes smaller" true (String.compare e1 e2 < 0)

let test_rng_determinism () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    check Alcotest.bool "stream equal" true
      (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b))
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:11L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:3L in
  let s = Rng.split r in
  check Alcotest.bool "split diverges" false
    (Int64.equal (Rng.next_int64 r) (Rng.next_int64 s))

(* Property tests *)

let qcheck_varint =
  QCheck.Test.make ~name:"varint roundtrips any nat" ~count:500
    QCheck.(map abs int)
    (fun v ->
      let buf = Buffer.create 16 in
      Coding.put_varint buf v;
      fst (Coding.get_varint (Buffer.contents buf) 0) = v)

let qcheck_ikey_compare_encode =
  QCheck.Test.make ~name:"ikey encode/decode preserves compare" ~count:500
    QCheck.(pair (pair small_string small_nat) (pair small_string small_nat))
    (fun ((k1, s1), (k2, s2)) ->
      let a = Ikey.make k1 ~seq:(Int64.of_int s1) in
      let b = Ikey.make k2 ~seq:(Int64.of_int s2) in
      let via_decode =
        Ikey.compare (Ikey.decode (Ikey.encode a)) (Ikey.decode (Ikey.encode b))
      in
      compare (Ikey.compare a b) 0 = compare via_decode 0)

let qcheck_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single byte flips" ~count:200
    QCheck.(pair string small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      Crc32c.string s <> Crc32c.string (Bytes.to_string b))

let suite =
  [
    Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
    Alcotest.test_case "fixed roundtrip" `Quick test_fixed_roundtrip;
    Alcotest.test_case "length prefixed" `Quick test_length_prefixed;
    Alcotest.test_case "varint truncated" `Quick test_varint_truncated;
    Alcotest.test_case "crc known vector" `Quick test_crc_known;
    Alcotest.test_case "crc mask roundtrip" `Quick test_crc_mask_roundtrip;
    Alcotest.test_case "crc incremental" `Quick test_crc_incremental;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "tag16 nonzero" `Quick test_tag16_nonzero;
    Alcotest.test_case "ikey roundtrip" `Quick test_ikey_roundtrip;
    Alcotest.test_case "ikey order" `Quick test_ikey_order;
    Alcotest.test_case "ikey encoded order" `Quick
      test_ikey_encoded_order_same_user_key;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest qcheck_varint;
    QCheck_alcotest.to_alcotest qcheck_ikey_compare_encode;
    QCheck_alcotest.to_alcotest qcheck_crc_detects_flip;
  ]
