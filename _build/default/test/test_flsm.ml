(* Tests for wip_flsm: the PebblesDB-like fragmented LSM with guards. *)

module Flsm = Wip_flsm.Flsm
module Io_stats = Wip_storage.Io_stats

module Model = Map.Make (String)

let small_config =
  {
    (Flsm.default_config ~scale:1) with
    Flsm.memtable_bytes = 2 * 1024;
    max_files_per_guard = 3;
    top_level_bits = 6;
    bits_decrement = 2;
    max_levels = 4;
    name = "Pebbles-test";
  }

let key i = Printf.sprintf "%08d" i

let test_put_get () =
  let db = Flsm.create small_config in
  Flsm.put db ~key:"a" ~value:"1";
  Flsm.put db ~key:"b" ~value:"2";
  Alcotest.(check (option string)) "a" (Some "1") (Flsm.get db "a");
  Alcotest.(check (option string)) "missing" None (Flsm.get db "zzz")

let test_overwrite_and_delete () =
  let db = Flsm.create small_config in
  Flsm.put db ~key:"k" ~value:"old";
  Flsm.put db ~key:"k" ~value:"new";
  Alcotest.(check (option string)) "latest" (Some "new") (Flsm.get db "k");
  Flsm.delete db ~key:"k";
  Flsm.flush db;
  Flsm.maintenance db ();
  Alcotest.(check (option string)) "deleted" None (Flsm.get db "k")

let test_persistence_through_guard_compaction () =
  let db = Flsm.create small_config in
  let n = 4000 in
  for i = 0 to n - 1 do
    Flsm.put db ~key:(key (i * 6151 mod n)) ~value:("v" ^ string_of_int i)
  done;
  Flsm.flush db;
  Flsm.maintenance db ();
  Alcotest.(check bool) "reached deeper levels" true (Flsm.level_count db >= 2);
  for i = 0 to n - 1 do
    if Flsm.get db (key i) = None then Alcotest.failf "lost key %d" i
  done

let test_guards_grow_with_data () =
  let db = Flsm.create small_config in
  for i = 0 to 7999 do
    Flsm.put db ~key:(key (i * 6151 mod 8000)) ~value:"payload-payload"
  done;
  Flsm.flush db;
  Flsm.maintenance db ();
  let total_guards =
    List.fold_left ( + ) 0
      (List.init 3 (fun l -> Flsm.guard_count db ~level:(l + 1)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "guards appeared (%d)" total_guards)
    true (total_guards > 0)

let test_deeper_levels_have_more_guards () =
  let db = Flsm.create small_config in
  for i = 0 to 15_999 do
    Flsm.put db ~key:(key (i * 6151 mod 16_000)) ~value:"payload-payload"
  done;
  Flsm.flush db;
  Flsm.maintenance db ();
  let g1 = Flsm.guard_count db ~level:1 in
  let g3 = Flsm.guard_count db ~level:3 in
  Alcotest.(check bool)
    (Printf.sprintf "g3 (%d) >= g1 (%d)" g3 g1)
    true (g3 >= g1)

let test_scan () =
  let db = Flsm.create small_config in
  for i = 0 to 1999 do
    Flsm.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Flsm.delete db ~key:(key 1000);
  let r = Flsm.scan db ~lo:(key 995) ~hi:(key 1005) () in
  Alcotest.(check int) "live keys" 9 (List.length r);
  Alcotest.(check bool) "tombstone honored" true (not (List.mem_assoc (key 1000) r))

let test_model_random_ops () =
  let db = Flsm.create small_config in
  let model = ref Model.empty in
  let rng = Wip_util.Rng.create ~seed:21L in
  for i = 0 to 4999 do
    let k = key (Wip_util.Rng.int rng 400) in
    if Wip_util.Rng.int rng 6 = 0 then begin
      Flsm.delete db ~key:k;
      model := Model.remove k !model
    end
    else begin
      let v = "v" ^ string_of_int i in
      Flsm.put db ~key:k ~value:v;
      model := Model.add k v !model
    end
  done;
  for i = 0 to 399 do
    let k = key i in
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Model.find_opt k !model) (Flsm.get db k)
  done

let test_file_fragmentation () =
  (* The paper's Figure 11: PebblesDB's guard partitioning produces many
     small files. After a sizable load the store must have strictly more
     files than levels. *)
  let db = Flsm.create small_config in
  for i = 0 to 9999 do
    Flsm.put db ~key:(key (i * 6151 mod 10_000)) ~value:(String.make 50 'v')
  done;
  Flsm.flush db;
  Flsm.maintenance db ();
  let sizes = Flsm.file_sizes db in
  Alcotest.(check bool)
    (Printf.sprintf "many fragments (%d)" (List.length sizes))
    true
    (List.length sizes > 8)

let qcheck_model =
  QCheck.Test.make ~name:"flsm agrees with Map model" ~count:15
    QCheck.(small_list (pair (int_bound 100) (option (int_bound 1000))))
    (fun ops ->
      let db = Flsm.create small_config in
      let model = ref Model.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            let v = string_of_int v in
            Flsm.put db ~key:k ~value:v;
            model := Model.add k v !model
          | None ->
            Flsm.delete db ~key:k;
            model := Model.remove k !model)
        ops;
      Flsm.flush db;
      Flsm.maintenance db ();
      Model.for_all (fun k v -> Flsm.get db k = Some v) !model
      && List.for_all
           (fun (k, _) -> Flsm.get db (key k) = Model.find_opt (key k) !model)
           ops)

let suite =
  [
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "overwrite/delete" `Quick test_overwrite_and_delete;
    Alcotest.test_case "guard compaction persistence" `Quick
      test_persistence_through_guard_compaction;
    Alcotest.test_case "guards grow" `Quick test_guards_grow_with_data;
    Alcotest.test_case "guard density by depth" `Slow
      test_deeper_levels_have_more_guards;
    Alcotest.test_case "scan" `Quick test_scan;
    Alcotest.test_case "model random ops" `Quick test_model_random_ops;
    Alcotest.test_case "file fragmentation" `Quick test_file_fragmentation;
    QCheck_alcotest.to_alcotest qcheck_model;
  ]

let test_recovery_roundtrip () =
  let env = Wip_storage.Env.in_memory () in
  let db = Flsm.create ~env small_config in
  for i = 0 to 7999 do
    Flsm.put db ~key:(key (i * 6151 mod 8000)) ~value:("v" ^ string_of_int i)
  done;
  Flsm.delete db ~key:(key 11);
  let guards_before =
    List.init 3 (fun l -> Flsm.guard_count db ~level:(l + 1))
  in
  let db2 = Flsm.recover ~env small_config in
  Alcotest.(check (list int)) "guard structure recovered" guards_before
    (List.init 3 (fun l -> Flsm.guard_count db2 ~level:(l + 1)));
  Alcotest.(check (option string)) "deletion recovered" None (Flsm.get db2 (key 11));
  for i = 0 to 7999 do
    if i <> 11 && Flsm.get db2 (key i) = None then
      Alcotest.failf "recovery lost key %d" i
  done;
  (* Scans still observe global order across recovered spans. *)
  let r = Flsm.scan db2 ~lo:(key 100) ~hi:(key 120) () in
  Alcotest.(check int) "range intact" 20 (List.length r)

let test_recovery_of_unflushed_writes () =
  let env = Wip_storage.Env.in_memory () in
  let db = Flsm.create ~env small_config in
  Flsm.put db ~key:"wal-only" ~value:"survives";
  let db2 = Flsm.recover ~env small_config in
  Alcotest.(check (option string)) "wal replay" (Some "survives")
    (Flsm.get db2 "wal-only")

let suite =
  suite
  @ [
      Alcotest.test_case "recovery roundtrip" `Quick test_recovery_roundtrip;
      Alcotest.test_case "recovery of unflushed" `Quick
        test_recovery_of_unflushed_writes;
    ]
