(* Tests for wip_workload: key codec, distribution shapes, YCSB mixes. *)

module Key_codec = Wip_workload.Key_codec
module Distribution = Wip_workload.Distribution
module Ycsb = Wip_workload.Ycsb

let test_key_codec_roundtrip () =
  List.iter
    (fun v ->
      let k = Key_codec.encode v in
      Alcotest.(check int) "width" Key_codec.key_bytes (String.length k);
      Alcotest.(check bool) "roundtrip" true (Int64.equal v (Key_codec.decode k)))
    [ 0L; 1L; 999L; 123456789L; 999_999_999_999L ]

let test_key_codec_order () =
  (* Byte order must equal numeric order. *)
  let rng = Wip_util.Rng.create ~seed:2L in
  for _ = 1 to 1000 do
    let a = Wip_util.Rng.int64 rng 1_000_000_000L in
    let b = Wip_util.Rng.int64 rng 1_000_000_000L in
    let bytewise = compare (String.compare (Key_codec.encode a) (Key_codec.encode b)) 0 in
    let numeric = compare (Int64.compare a b) 0 in
    if bytewise <> numeric then Alcotest.fail "order mismatch"
  done

let test_key_codec_fraction () =
  Alcotest.(check (float 0.001)) "middle" 0.5
    (Key_codec.fraction_of_space (Key_codec.encode 500L) ~space:1000L)

let space = 100_000L

let sample_fracs shape n seed =
  let g = Distribution.make shape ~space ~seed in
  List.init n (fun _ -> Int64.to_float (Distribution.next g) /. Int64.to_float space)

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let test_uniform_bounds_and_mean () =
  let fracs = sample_fracs Distribution.Uniform 20_000 1L in
  List.iter (fun f -> if f < 0.0 || f >= 1.0 then Alcotest.fail "out of range") fracs;
  let m = mean fracs in
  Alcotest.(check bool) "mean near 0.5" true (m > 0.45 && m < 0.55)

let test_exponential_concentrates_low () =
  let fracs = sample_fracs (Distribution.Exponential { rate = 10.0 }) 20_000 2L in
  let low = List.length (List.filter (fun f -> f < 0.2) fracs) in
  (* P(x < 0.2) = 1 - e^-2 ≈ 0.86 *)
  Alcotest.(check bool) "mass at low keys" true (low > 16_000)

let test_reversed_exponential_concentrates_high () =
  let fracs =
    sample_fracs (Distribution.Reversed_exponential { rate = 10.0 }) 20_000 3L
  in
  let high = List.length (List.filter (fun f -> f > 0.8) fracs) in
  Alcotest.(check bool) "mass at high keys" true (high > 16_000)

let test_normal_concentrates_middle () =
  let fracs =
    sample_fracs
      (Distribution.Normal { mean_frac = 0.5; stddev_frac = 0.125 })
      20_000 4L
  in
  let mid = List.length (List.filter (fun f -> f > 0.25 && f < 0.75) fracs) in
  (* +-2 sigma ≈ 95% *)
  Alcotest.(check bool) "mass in middle" true (mid > 18_000)

let test_zipfian_skew () =
  let g =
    Distribution.make
      (Distribution.Zipfian { theta = 0.99; scrambled = false })
      ~space ~seed:5L
  in
  let n = 20_000 in
  let top100 = ref 0 in
  for _ = 1 to n do
    if Int64.compare (Distribution.next g) 100L < 0 then incr top100
  done;
  (* Unscrambled zipf(0.99): P(rank < 100 of 100 000) ≈ 0.41 — orders of
     magnitude above the uniform 0.1%. *)
  Alcotest.(check bool) "zipf skew" true (!top100 > n * 30 / 100)

let test_zipfian_scrambled_spreads () =
  let g =
    Distribution.make
      (Distribution.Zipfian { theta = 0.99; scrambled = true })
      ~space ~seed:6L
  in
  let n = 20_000 in
  let low_half = ref 0 in
  for _ = 1 to n do
    if Int64.compare (Distribution.next g) 50_000L < 0 then incr low_half
  done;
  (* Scrambling spreads hot ranks across the space: roughly half below. *)
  Alcotest.(check bool) "scrambled spread" true
    (!low_half > n * 35 / 100 && !low_half < n * 65 / 100)

let test_sequential () =
  let g = Distribution.make Distribution.Sequential ~space ~seed:7L in
  Alcotest.(check bool) "0" true (Int64.equal 0L (Distribution.next g));
  Alcotest.(check bool) "1" true (Int64.equal 1L (Distribution.next g));
  Alcotest.(check bool) "2" true (Int64.equal 2L (Distribution.next g))

let test_latest_tracks_bound () =
  let g = Distribution.make (Distribution.Latest { theta = 0.99 }) ~space ~seed:8L in
  Distribution.set_bound g 1000L;
  let n = 5000 in
  let recent = ref 0 in
  for _ = 1 to n do
    let v = Distribution.next g in
    if Int64.compare v 1000L >= 0 then Alcotest.fail "beyond bound";
    if Int64.compare v 900L >= 0 then incr recent
  done;
  (* "Latest" skews toward the most recent records: the top 10% of the key
     range draws far more than its uniform 10% share. *)
  Alcotest.(check bool) "skew toward newest" true (!recent > n * 35 / 100)

let test_determinism () =
  let a = sample_fracs Distribution.Uniform 100 42L in
  let b = sample_fracs Distribution.Uniform 100 42L in
  Alcotest.(check bool) "same seed same stream" true (a = b)

(* YCSB *)

let count_ops workload n =
  let t = Ycsb.create workload ~record_count:10_000 ~seed:1L () in
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 and scans = ref 0 and rmws = ref 0 in
  for _ = 1 to n do
    match Ycsb.next t with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Update _ -> incr updates
    | Ycsb.Insert _ -> incr inserts
    | Ycsb.Scan _ -> incr scans
    | Ycsb.Read_modify_write _ -> incr rmws
  done;
  (!reads, !updates, !inserts, !scans, !rmws)

let near x target tolerance = abs (x - target) <= tolerance

let test_ycsb_load_all_inserts () =
  let _, _, inserts, _, _ = count_ops Ycsb.Load 1000 in
  Alcotest.(check int) "all inserts" 1000 inserts

let test_ycsb_a_mix () =
  let reads, updates, _, _, _ = count_ops Ycsb.A 10_000 in
  Alcotest.(check bool) "50/50" true (near reads 5000 400 && near updates 5000 400)

let test_ycsb_b_mix () =
  let reads, updates, _, _, _ = count_ops Ycsb.B 10_000 in
  Alcotest.(check bool) "95/5" true (near reads 9500 300 && near updates 500 300)

let test_ycsb_c_all_reads () =
  let reads, _, _, _, _ = count_ops Ycsb.C 1000 in
  Alcotest.(check int) "100% read" 1000 reads

let test_ycsb_d_mix () =
  let reads, _, inserts, _, _ = count_ops Ycsb.D 10_000 in
  Alcotest.(check bool) "95/5 read/insert" true
    (near reads 9500 300 && near inserts 500 300)

let test_ycsb_e_mix () =
  let _, _, inserts, scans, _ = count_ops Ycsb.E 10_000 in
  Alcotest.(check bool) "95/5 scan/insert" true
    (near scans 9500 300 && near inserts 500 300)

let test_ycsb_f_mix () =
  let reads, _, _, _, rmws = count_ops Ycsb.F 10_000 in
  Alcotest.(check bool) "50/50 read/rmw" true
    (near reads 5000 400 && near rmws 5000 400)

let test_ycsb_insert_keys_are_fresh () =
  let t = Ycsb.create Ycsb.D ~record_count:100 ~seed:2L () in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 1000 do
    match Ycsb.next t with
    | Ycsb.Insert (k, _) ->
      if Hashtbl.mem seen k then Alcotest.fail "duplicate insert key";
      Hashtbl.replace seen k ();
      if Int64.compare (Key_codec.decode k) 100L < 0 then
        Alcotest.fail "insert collides with preload"
    | _ -> ()
  done

let test_ycsb_scan_lengths () =
  let t = Ycsb.create Ycsb.E ~record_count:1000 ~seed:3L () in
  for _ = 1 to 1000 do
    match Ycsb.next t with
    | Ycsb.Scan (_, n) ->
      if n < 1 || n > 100 then Alcotest.failf "scan length %d out of [1,100]" n
    | _ -> ()
  done

let test_ycsb_value_deterministic () =
  let t = Ycsb.create Ycsb.C ~record_count:100 ~value_size:64 ~seed:4L () in
  let v1 = Ycsb.value_for t "somekey" in
  let v2 = Ycsb.value_for t "somekey" in
  Alcotest.(check string) "deterministic" v1 v2;
  Alcotest.(check int) "size" 64 (String.length v1)

let suite =
  [
    Alcotest.test_case "key codec roundtrip" `Quick test_key_codec_roundtrip;
    Alcotest.test_case "key codec order" `Quick test_key_codec_order;
    Alcotest.test_case "key codec fraction" `Quick test_key_codec_fraction;
    Alcotest.test_case "uniform" `Quick test_uniform_bounds_and_mean;
    Alcotest.test_case "exponential" `Quick test_exponential_concentrates_low;
    Alcotest.test_case "reversed exponential" `Quick
      test_reversed_exponential_concentrates_high;
    Alcotest.test_case "normal" `Quick test_normal_concentrates_middle;
    Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
    Alcotest.test_case "zipfian scrambled" `Quick test_zipfian_scrambled_spreads;
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "latest" `Quick test_latest_tracks_bound;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "ycsb load" `Quick test_ycsb_load_all_inserts;
    Alcotest.test_case "ycsb A" `Quick test_ycsb_a_mix;
    Alcotest.test_case "ycsb B" `Quick test_ycsb_b_mix;
    Alcotest.test_case "ycsb C" `Quick test_ycsb_c_all_reads;
    Alcotest.test_case "ycsb D" `Quick test_ycsb_d_mix;
    Alcotest.test_case "ycsb E" `Quick test_ycsb_e_mix;
    Alcotest.test_case "ycsb F" `Quick test_ycsb_f_mix;
    Alcotest.test_case "ycsb fresh inserts" `Quick test_ycsb_insert_keys_are_fresh;
    Alcotest.test_case "ycsb scan lengths" `Quick test_ycsb_scan_lengths;
    Alcotest.test_case "ycsb values" `Quick test_ycsb_value_deterministic;
  ]

(* Trace record/replay *)

module Trace = Wip_workload.Trace

let test_trace_roundtrip () =
  let env = Wip_storage.Env.in_memory () in
  let w = Trace.Writer.create env ~name:"t.trace" in
  let ops =
    [
      Trace.Put ("k1", "v1");
      Trace.Get "k1";
      Trace.Delete "k1";
      Trace.Scan { lo = "a"; hi = "z"; limit = 10 };
      Trace.Put ("binary\x00key", "binary\xffvalue");
    ]
  in
  List.iter (Trace.Writer.record w) ops;
  Alcotest.(check int) "op count" 5 (Trace.Writer.op_count w);
  Trace.Writer.close w;
  let replayed = ref [] in
  let n = Trace.replay env ~name:"t.trace" (fun op -> replayed := op :: !replayed) in
  Alcotest.(check int) "replayed" 5 n;
  Alcotest.(check bool) "identical" true (List.rev !replayed = ops)

let test_trace_torn_tail () =
  let env = Wip_storage.Env.in_memory () in
  let w = Trace.Writer.create env ~name:"t.trace" in
  Trace.Writer.record w (Trace.Put ("a", "1"));
  Trace.Writer.record w (Trace.Put ("b", "2"));
  Trace.Writer.close w;
  let r = Wip_storage.Env.open_file env "t.trace" in
  let contents = Wip_storage.Env.read_all r ~category:Wip_storage.Io_stats.Manifest in
  Wip_storage.Env.close_reader r;
  let w2 = Wip_storage.Env.create_file env "t.trace" in
  Wip_storage.Env.append w2 ~category:Wip_storage.Io_stats.Manifest
    (String.sub contents 0 (String.length contents - 3));
  Wip_storage.Env.close_writer w2;
  let n = Trace.replay env ~name:"t.trace" (fun _ -> ()) in
  Alcotest.(check int) "intact prefix only" 1 n

let test_trace_drives_engines_identically () =
  (* Record a workload once; replaying it into two engines must leave them
     in agreement on every key. *)
  let env = Wip_storage.Env.in_memory () in
  let w = Trace.Writer.create env ~name:"w.trace" in
  let rng = Wip_util.Rng.create ~seed:0x7246L in
  for i = 0 to 1999 do
    let k = Printf.sprintf "%05d" (Wip_util.Rng.int rng 300) in
    if Wip_util.Rng.int rng 5 = 0 then Trace.Writer.record w (Trace.Delete k)
    else Trace.Writer.record w (Trace.Put (k, "v" ^ string_of_int i))
  done;
  Trace.Writer.close w;
  let wip =
    Wipdb.Store.create
      { Wipdb.Config.default with Wipdb.Config.memtable_items = 64; name = "tw" }
  in
  let lvl =
    Wip_lsm.Leveled.create
      { (Wip_lsm.Leveled.leveldb_config ~scale:1) with
        Wip_lsm.Leveled.memtable_bytes = 2048; name = "tl" }
  in
  let s1 = Wip_kv.Store_intf.Store ((module Wipdb.Store), wip) in
  let s2 = Wip_kv.Store_intf.Store ((module Wip_lsm.Leveled), lvl) in
  let n1 = Trace.replay_into env ~name:"w.trace" s1 in
  let n2 = Trace.replay_into env ~name:"w.trace" s2 in
  Alcotest.(check int) "same op counts" n1 n2;
  for i = 0 to 299 do
    let k = Printf.sprintf "%05d" i in
    if Wipdb.Store.get wip k <> Wip_lsm.Leveled.get lvl k then
      Alcotest.failf "engines disagree on %s after trace replay" k
  done

let suite =
  suite
  @ [
      Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
      Alcotest.test_case "trace torn tail" `Quick test_trace_torn_tail;
      Alcotest.test_case "trace drives engines" `Quick
        test_trace_drives_engines_identically;
    ]
