(* Tests for wip_wal: batched logging, recovery, torn-tail tolerance, and
   Figure-5 tail reclamation. *)

module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Wal = Wip_wal.Wal

let batch items = List.map (fun (k, v) -> (Ikey.Value, k, v)) items

let test_append_recover_roundtrip () =
  let env = Env.in_memory () in
  let w = Wal.create env () in
  Wal.append_batch w ~first_seq:1L (batch [ ("a", "1"); ("b", "2") ]);
  Wal.append_batch w ~first_seq:3L [ (Ikey.Deletion, "a", "") ];
  Wal.sync w;
  let replayed = ref [] in
  let _w2 =
    Wal.recover env ~replay:(fun r -> replayed := r :: !replayed) ()
  in
  let replayed = List.rev !replayed in
  Alcotest.(check int) "record count" 3 (List.length replayed);
  (match replayed with
  | [ r1; r2; r3 ] ->
    Alcotest.(check string) "k1" "a" r1.Wal.key;
    Alcotest.(check string) "v1" "1" r1.Wal.value;
    Alcotest.(check bool) "seq1" true (Int64.equal 1L r1.Wal.seq);
    Alcotest.(check bool) "seq2" true (Int64.equal 2L r2.Wal.seq);
    Alcotest.(check bool) "r3 deletion" true (r3.Wal.kind = Ikey.Deletion);
    Alcotest.(check bool) "seq3" true (Int64.equal 3L r3.Wal.seq)
  | _ -> Alcotest.fail "bad replay")

let test_recover_continues_sequence () =
  let env = Env.in_memory () in
  let w = Wal.create env () in
  Wal.append_batch w ~first_seq:1L (batch [ ("x", "1") ]);
  let w2 = Wal.recover env ~replay:(fun _ -> ()) () in
  Wal.append_batch w2 ~first_seq:2L (batch [ ("y", "2") ]);
  let count = ref 0 in
  let _w3 = Wal.recover env ~replay:(fun _ -> incr count) () in
  Alcotest.(check int) "both epochs replayed" 2 !count;
  Alcotest.(check bool) "max seq" true (Int64.equal 2L (Wal.max_seq_logged w2))

let test_torn_tail_discarded () =
  let env = Env.in_memory () in
  let w = Wal.create env () in
  Wal.append_batch w ~first_seq:1L (batch [ ("good", "v") ]);
  (* Simulate a torn write: append garbage half-record to the segment. *)
  let seg = List.find (fun f -> Filename.check_suffix f ".log") (Env.list_files env) in
  let r = Env.open_file env seg in
  let contents = Env.read_all r ~category:Wip_storage.Io_stats.Wal in
  Env.close_reader r;
  let w' = Env.create_file env seg in
  Env.append w' ~category:Wip_storage.Io_stats.Wal
    (contents ^ "\x01\x02\x03\x04\x05\x06\x07\x08garbage");
  Env.close_writer w';
  let replayed = ref [] in
  let _ = Wal.recover env ~replay:(fun r -> replayed := r :: !replayed) () in
  Alcotest.(check int) "only intact record" 1 (List.length !replayed)

let test_corrupt_record_stops_replay () =
  let env = Env.in_memory () in
  let w = Wal.create env () in
  Wal.append_batch w ~first_seq:1L (batch [ ("a", "1") ]);
  Wal.append_batch w ~first_seq:2L (batch [ ("b", "2") ]);
  let seg = List.find (fun f -> Filename.check_suffix f ".log") (Env.list_files env) in
  let r = Env.open_file env seg in
  let contents = Env.read_all r ~category:Wip_storage.Io_stats.Wal in
  Env.close_reader r;
  (* Flip a byte inside the FIRST record's payload: replay must stop before
     it and deliver nothing. *)
  let b = Bytes.of_string contents in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xFF));
  let w' = Env.create_file env seg in
  Env.append w' ~category:Wip_storage.Io_stats.Wal (Bytes.to_string b);
  Env.close_writer w';
  let count = ref 0 in
  let _ = Wal.recover env ~replay:(fun _ -> incr count) () in
  Alcotest.(check int) "replay stops at corruption" 0 !count

let test_segment_rolling () =
  let env = Env.in_memory () in
  let w = Wal.create env ~segment_bytes:256 () in
  for i = 1 to 50 do
    Wal.append_batch w ~first_seq:(Int64.of_int i)
      (batch [ (Printf.sprintf "key-%03d" i, String.make 20 'v') ])
  done;
  Alcotest.(check bool) "multiple segments" true (Wal.segment_count w > 1);
  let count = ref 0 in
  let _ = Wal.recover env ~segment_bytes:256 ~replay:(fun _ -> incr count) () in
  Alcotest.(check int) "all records across segments" 50 !count

let test_reclaim_tail () =
  let env = Env.in_memory () in
  let w = Wal.create env ~segment_bytes:256 () in
  for i = 1 to 50 do
    Wal.append_batch w ~first_seq:(Int64.of_int i)
      (batch [ (Printf.sprintf "key-%03d" i, String.make 20 'v') ])
  done;
  let before = Wal.total_bytes w in
  let segs_before = Wal.segment_count w in
  (* Everything below sequence 40 persisted: old segments must go. *)
  let freed = Wal.reclaim w ~persisted_below:40L in
  Alcotest.(check bool) "freed bytes" true (freed > 0);
  Alcotest.(check bool) "fewer segments" true (Wal.segment_count w < segs_before);
  Alcotest.(check bool) "smaller" true (Wal.total_bytes w < before);
  (* Records >= 40 must survive recovery. *)
  let survivors = ref [] in
  let _ =
    Wal.recover env ~segment_bytes:256 ~replay:(fun r -> survivors := r.Wal.seq :: !survivors) ()
  in
  Alcotest.(check bool) "all survivors >= some tail bound" true
    (List.for_all (fun s -> Int64.compare s 0L > 0) !survivors);
  Alcotest.(check bool) "seq 40..50 retained" true
    (List.for_all
       (fun i -> List.mem (Int64.of_int i) !survivors)
       [ 40; 41; 42; 43; 44; 45; 46; 47; 48; 49; 50 ])

let test_reclaim_respects_min_unpersisted () =
  (* Figure 5's interleaving: a segment containing any record >= the bound
     must be kept even if it also holds reclaimable garbage. *)
  let env = Env.in_memory () in
  let w = Wal.create env ~segment_bytes:128 () in
  Wal.append_batch w ~first_seq:1L (batch [ ("a", String.make 100 'x') ]);
  Wal.append_batch w ~first_seq:2L (batch [ ("b", String.make 100 'x') ]);
  Wal.append_batch w ~first_seq:3L (batch [ ("c", String.make 100 'x') ]);
  let _ = Wal.reclaim w ~persisted_below:2L in
  let survivors = ref [] in
  let _ =
    Wal.recover env ~segment_bytes:128 ~replay:(fun r -> survivors := r.Wal.seq :: !survivors) ()
  in
  Alcotest.(check bool) "2 retained" true (List.mem 2L !survivors);
  Alcotest.(check bool) "3 retained" true (List.mem 3L !survivors)

let test_empty_batch_ignored () =
  let env = Env.in_memory () in
  let w = Wal.create env () in
  Wal.append_batch w ~first_seq:1L [];
  Alcotest.(check int) "no bytes" 0 (Wal.total_bytes w)

let qcheck_wal_roundtrip =
  QCheck.Test.make ~name:"wal roundtrips arbitrary batches" ~count:50
    QCheck.(small_list (small_list (pair small_string small_string)))
    (fun batches ->
      let env = Env.in_memory () in
      let w = Wal.create env () in
      let seq = ref 1L in
      let written = ref [] in
      List.iter
        (fun b ->
          let items = batch b in
          Wal.append_batch w ~first_seq:!seq items;
          List.iter (fun (_, k, v) -> written := (k, v) :: !written) items;
          seq := Int64.add !seq (Int64.of_int (List.length items)))
        batches;
      let replayed = ref [] in
      let _ =
        Wal.recover env ~replay:(fun r -> replayed := (r.Wal.key, r.Wal.value) :: !replayed) ()
      in
      !replayed = !written)

let suite =
  [
    Alcotest.test_case "append/recover" `Quick test_append_recover_roundtrip;
    Alcotest.test_case "recover continues" `Quick test_recover_continues_sequence;
    Alcotest.test_case "torn tail" `Quick test_torn_tail_discarded;
    Alcotest.test_case "corrupt record" `Quick test_corrupt_record_stops_replay;
    Alcotest.test_case "segment rolling" `Quick test_segment_rolling;
    Alcotest.test_case "reclaim tail" `Quick test_reclaim_tail;
    Alcotest.test_case "reclaim keeps live tail" `Quick
      test_reclaim_respects_min_unpersisted;
    Alcotest.test_case "empty batch" `Quick test_empty_batch_ignored;
    QCheck_alcotest.to_alcotest qcheck_wal_roundtrip;
  ]
