(* Crash-injection tests: cut the device state at arbitrary points and
   verify recovery semantics — batches are atomic, the surviving set is a
   prefix of the write order, and corruption never escapes as wrong data. *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats

let wal_only_config =
  (* Memtables far larger than the test writes: everything lives in WAL. *)
  { Config.default with Config.name = "crash"; memtable_items = 1 lsl 20 }

let key b i = Printf.sprintf "b%03d-i%02d" b i

(* Copy every file of [src] into a fresh env, truncating the newest WAL
   segment to [cut] bytes — a power failure mid-append. *)
let crashed_copy src ~cut =
  let dst = Env.in_memory () in
  let files = Env.list_files src in
  let wal_segments =
    List.filter (fun f -> Filename.check_suffix f ".log") files
    |> List.sort String.compare
  in
  let last_wal = List.nth wal_segments (List.length wal_segments - 1) in
  List.iter
    (fun name ->
      let r = Env.open_file src name in
      let contents = Env.read_all r ~category:Io_stats.Manifest in
      Env.close_reader r;
      let contents =
        if String.equal name last_wal then
          String.sub contents 0 (min cut (String.length contents))
        else contents
      in
      let w = Env.create_file dst name in
      Env.append w ~category:Io_stats.Manifest contents;
      Env.close_writer w)
    files;
  dst

let build_env ~batches ~batch_size =
  let env = Env.in_memory () in
  let db = Store.create ~env wal_only_config in
  for b = 0 to batches - 1 do
    Store.write_batch db
      (List.init batch_size (fun i ->
           (Wip_util.Ikey.Value, key b i, Printf.sprintf "v%d-%d" b i)))
  done;
  env

let check_prefix_atomicity db ~batches ~batch_size =
  (* Find how many whole batches survived; then assert exact prefix
     semantics around that boundary. *)
  let batch_present b =
    let found =
      List.init batch_size (fun i -> Store.get db (key b i) <> None)
    in
    if List.for_all Fun.id found then `All
    else if List.exists Fun.id found then `Partial
    else `None
  in
  let survived = ref 0 in
  let after_gap = ref false in
  for b = 0 to batches - 1 do
    match batch_present b with
    | `All ->
      if !after_gap then
        Alcotest.failf "batch %d survived after a lost batch (not a prefix)" b;
      incr survived
    | `None -> after_gap := true
    | `Partial -> Alcotest.failf "batch %d partially recovered (not atomic)" b
  done;
  (* Values of survivors must be exact. *)
  for b = 0 to !survived - 1 do
    for i = 0 to batch_size - 1 do
      Alcotest.(check (option string))
        (Printf.sprintf "batch %d item %d" b i)
        (Some (Printf.sprintf "v%d-%d" b i))
        (Store.get db (key b i))
    done
  done;
  !survived

let test_truncation_sweep () =
  let batches = 12 and batch_size = 5 in
  let env = build_env ~batches ~batch_size in
  let wal =
    Env.list_files env |> List.filter (fun f -> Filename.check_suffix f ".log")
    |> function
    | [ seg ] -> seg
    | _ -> Alcotest.fail "expected a single WAL segment"
  in
  let r = Env.open_file env wal in
  let total = Env.file_size r in
  Env.close_reader r;
  (* Cut at a spread of byte offsets, including record boundaries ±1. *)
  let rng = Wip_util.Rng.create ~seed:0xC4A5L in
  let cuts =
    0 :: 1 :: (total - 1) :: total
    :: List.init 24 (fun _ -> Wip_util.Rng.int rng (total + 1))
  in
  let last_survivors = ref (-1) in
  List.iter
    (fun cut ->
      let env' = crashed_copy env ~cut in
      let db = Store.recover ~env:env' wal_only_config in
      let survived = check_prefix_atomicity db ~batches ~batch_size in
      (* More bytes can never mean fewer batches. *)
      ignore !last_survivors;
      last_survivors := survived;
      if cut = total && survived <> batches then
        Alcotest.failf "uncut log lost %d batches" (batches - survived);
      if cut = 0 && survived <> 0 then Alcotest.fail "empty log produced data")
    cuts

let test_corruption_mid_log () =
  let batches = 8 and batch_size = 4 in
  let env = build_env ~batches ~batch_size in
  let wal =
    Env.list_files env |> List.find (fun f -> Filename.check_suffix f ".log")
  in
  let r = Env.open_file env wal in
  let contents = Env.read_all r ~category:Io_stats.Manifest in
  Env.close_reader r;
  (* Flip one byte somewhere in the middle: replay must stop at the damaged
     record, keeping an intact prefix and never inventing data. *)
  let pos = String.length contents / 2 in
  let b = Bytes.of_string contents in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let env' = Env.in_memory () in
  List.iter
    (fun name ->
      let r = Env.open_file env name in
      let c = Env.read_all r ~category:Io_stats.Manifest in
      Env.close_reader r;
      let c = if String.equal name wal then Bytes.to_string b else c in
      let w = Env.create_file env' name in
      Env.append w ~category:Io_stats.Manifest c;
      Env.close_writer w)
    (Env.list_files env);
  let db = Store.recover ~env:env' wal_only_config in
  let survived = check_prefix_atomicity db ~batches ~batch_size in
  Alcotest.(check bool)
    (Printf.sprintf "some prefix survived (%d), not everything" survived)
    true
    (survived < batches)

let test_crash_after_flush_loses_nothing () =
  (* Once data is flushed and the manifest recorded, even deleting the whole
     WAL must not lose it. *)
  let env = Env.in_memory () in
  let cfg = { wal_only_config with Config.memtable_items = 64 } in
  let db = Store.create ~env cfg in
  for i = 0 to 999 do
    Store.put db ~key:(Printf.sprintf "%06d" i) ~value:"v"
  done;
  Store.flush db;
  Store.checkpoint db;
  (* Destroy the log entirely. *)
  Env.list_files env
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.iter (Env.delete env);
  let db2 = Store.recover ~env cfg in
  for i = 0 to 999 do
    if Store.get db2 (Printf.sprintf "%06d" i) = None then
      Alcotest.failf "flushed key %d lost without WAL" i
  done

let suite =
  [
    Alcotest.test_case "WAL truncation sweep" `Quick test_truncation_sweep;
    Alcotest.test_case "mid-log corruption" `Quick test_corruption_mid_log;
    Alcotest.test_case "crash after flush" `Quick test_crash_after_flush_loses_nothing;
  ]
