(* Tests for wip_storage: the Env backends and byte-accurate I/O stats. *)

module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats

let test_mem_roundtrip () =
  let env = Env.in_memory () in
  let w = Env.create_file env "a.dat" in
  Env.append w ~category:Io_stats.Flush "hello ";
  Env.append w ~category:Io_stats.Flush "world";
  Alcotest.(check int) "offset" 11 (Env.writer_offset w);
  Env.close_writer w;
  let r = Env.open_file env "a.dat" in
  Alcotest.(check string) "full read" "hello world"
    (Env.read_all r ~category:Io_stats.Read_path);
  Alcotest.(check string) "partial read" "world"
    (Env.read r ~category:Io_stats.Read_path ~pos:6 ~len:5);
  Alcotest.(check int) "size" 11 (Env.file_size r);
  Env.close_reader r

let test_mem_namespace () =
  let env = Env.in_memory () in
  let w = Env.create_file env "x" in
  Env.append w ~category:Io_stats.Flush "1";
  Env.close_writer w;
  Alcotest.(check bool) "exists" true (Env.exists env "x");
  Env.rename env ~src:"x" ~dst:"y";
  Alcotest.(check bool) "renamed away" false (Env.exists env "x");
  Alcotest.(check bool) "renamed to" true (Env.exists env "y");
  Alcotest.(check (list string)) "listing" [ "y" ] (Env.list_files env);
  Env.delete env "y";
  Alcotest.(check (list string)) "empty" [] (Env.list_files env);
  Env.delete env "y" (* idempotent *)

let test_missing_file () =
  let env = Env.in_memory () in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Env.open_file env "nope"))

let test_out_of_bounds_read () =
  let env = Env.in_memory () in
  let w = Env.create_file env "f" in
  Env.append w ~category:Io_stats.Flush "abc";
  Env.close_writer w;
  let r = Env.open_file env "f" in
  (match Env.read r ~category:Io_stats.Read_path ~pos:2 ~len:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  Env.close_reader r

let test_stats_accounting () =
  let env = Env.in_memory () in
  let stats = Env.stats env in
  let w = Env.create_file env "f" in
  Env.append w ~category:Io_stats.Flush (String.make 100 'x');
  Env.append w ~category:(Io_stats.Compaction 2) (String.make 50 'y');
  Env.close_writer w;
  Io_stats.record_write stats Io_stats.User_write 30;
  Alcotest.(check int) "flush bytes" 100 (Io_stats.written_by stats Io_stats.Flush);
  Alcotest.(check int) "level-2 bytes" 50
    (Io_stats.written_by stats (Io_stats.Compaction 2));
  Alcotest.(check int) "total written" 150 (Io_stats.bytes_written stats);
  Alcotest.(check int) "user bytes" 30 (Io_stats.user_bytes stats);
  Alcotest.(check (float 0.001)) "wa" 5.0 (Io_stats.write_amplification stats);
  let r = Env.open_file env "f" in
  ignore (Env.read r ~category:Io_stats.Read_path ~pos:0 ~len:100);
  Alcotest.(check int) "read bytes" 100 (Io_stats.bytes_read stats);
  Env.close_reader r

let test_stats_wal_excluded_from_wa () =
  let stats = Io_stats.create () in
  Io_stats.record_write stats Io_stats.User_write 100;
  Io_stats.record_write stats Io_stats.Wal 1000;
  Io_stats.record_write stats Io_stats.Flush 200;
  Alcotest.(check (float 0.001)) "wa excludes wal" 2.0
    (Io_stats.write_amplification stats);
  Alcotest.(check int) "bytes_written includes wal" 1200
    (Io_stats.bytes_written stats)

let test_stats_per_level () =
  let stats = Io_stats.create () in
  Io_stats.record_write stats (Io_stats.Compaction 1) 10;
  Io_stats.record_write stats (Io_stats.Compaction 3) 30;
  Io_stats.record_write stats (Io_stats.Compaction 12) 5;
  Alcotest.(check (list (pair int int)))
    "per level" [ (1, 10); (3, 30); (12, 5) ]
    (Io_stats.per_level_write stats)

let test_stats_snapshot_diff () =
  let stats = Io_stats.create () in
  Io_stats.record_write stats Io_stats.Flush 10;
  let base = Io_stats.snapshot stats in
  Io_stats.record_write stats Io_stats.Flush 25;
  let d = Io_stats.diff stats base in
  Alcotest.(check int) "delta" 25 (Io_stats.written_by d Io_stats.Flush);
  Io_stats.record_write base Io_stats.Flush 1000;
  Alcotest.(check int) "snapshot is independent" 35
    (Io_stats.written_by stats Io_stats.Flush)

let test_total_live_bytes () =
  let env = Env.in_memory () in
  let w = Env.create_file env "a" in
  Env.append w ~category:Io_stats.Flush (String.make 10 'a');
  Env.close_writer w;
  let w = Env.create_file env "b" in
  Env.append w ~category:Io_stats.Flush (String.make 7 'b');
  Env.close_writer w;
  Alcotest.(check int) "live" 17 (Env.total_live_bytes env);
  Env.delete env "a";
  Alcotest.(check int) "after delete" 7 (Env.total_live_bytes env)

let test_posix_roundtrip () =
  let root = Filename.temp_file "wipdb-test" "" in
  Sys.remove root;
  let env = Env.posix ~root in
  let w = Env.create_file env "data.bin" in
  Env.append w ~category:Io_stats.Flush "persisted";
  Env.sync w;
  Env.close_writer w;
  let r = Env.open_file env "data.bin" in
  Alcotest.(check string) "posix read" "persisted"
    (Env.read_all r ~category:Io_stats.Read_path);
  Env.close_reader r;
  Alcotest.(check bool) "exists" true (Env.exists env "data.bin");
  Env.delete env "data.bin";
  Unix.rmdir root

let suite =
  [
    Alcotest.test_case "mem roundtrip" `Quick test_mem_roundtrip;
    Alcotest.test_case "mem namespace" `Quick test_mem_namespace;
    Alcotest.test_case "missing file" `Quick test_missing_file;
    Alcotest.test_case "out of bounds read" `Quick test_out_of_bounds_read;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "wa excludes wal" `Quick test_stats_wal_excluded_from_wa;
    Alcotest.test_case "per-level stats" `Quick test_stats_per_level;
    Alcotest.test_case "snapshot diff" `Quick test_stats_snapshot_diff;
    Alcotest.test_case "total live bytes" `Quick test_total_live_bytes;
    Alcotest.test_case "posix roundtrip" `Quick test_posix_roundtrip;
  ]
