(* Tests for the LRU block cache and its integration with table readers and
   the WipDB read path. *)

module Block_cache = Wip_storage.Block_cache
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats

let test_basic_hit_miss () =
  let c = Block_cache.create ~capacity_bytes:1024 in
  Alcotest.(check (option string)) "cold" None (Block_cache.find c ~file:"f" ~offset:0);
  Block_cache.add c ~file:"f" ~offset:0 "block-a";
  Alcotest.(check (option string)) "hit" (Some "block-a")
    (Block_cache.find c ~file:"f" ~offset:0);
  Alcotest.(check int) "hits" 1 (Block_cache.hits c);
  Alcotest.(check int) "misses" 1 (Block_cache.misses c)

let test_lru_eviction_order () =
  let c = Block_cache.create ~capacity_bytes:30 in
  Block_cache.add c ~file:"f" ~offset:0 (String.make 10 'a');
  Block_cache.add c ~file:"f" ~offset:1 (String.make 10 'b');
  Block_cache.add c ~file:"f" ~offset:2 (String.make 10 'c');
  (* Touch offset 0 so it is most recent; adding a fourth evicts offset 1. *)
  ignore (Block_cache.find c ~file:"f" ~offset:0);
  Block_cache.add c ~file:"f" ~offset:3 (String.make 10 'd');
  Alcotest.(check bool) "0 survives" true
    (Block_cache.find c ~file:"f" ~offset:0 <> None);
  Alcotest.(check bool) "1 evicted" true
    (Block_cache.find c ~file:"f" ~offset:1 = None);
  Alcotest.(check bool) "2 survives" true
    (Block_cache.find c ~file:"f" ~offset:2 <> None);
  Alcotest.(check bool) "capacity respected" true (Block_cache.used_bytes c <= 30)

let test_oversized_value_not_cached () =
  let c = Block_cache.create ~capacity_bytes:8 in
  Block_cache.add c ~file:"f" ~offset:0 "way-too-large-for-this-cache";
  Alcotest.(check int) "nothing stored" 0 (Block_cache.entry_count c)

let test_replace_same_key () =
  let c = Block_cache.create ~capacity_bytes:100 in
  Block_cache.add c ~file:"f" ~offset:0 "old";
  Block_cache.add c ~file:"f" ~offset:0 "newer";
  Alcotest.(check (option string)) "replaced" (Some "newer")
    (Block_cache.find c ~file:"f" ~offset:0);
  Alcotest.(check int) "one entry" 1 (Block_cache.entry_count c);
  Alcotest.(check int) "bytes tracked" 5 (Block_cache.used_bytes c)

let test_evict_file () =
  let c = Block_cache.create ~capacity_bytes:100 in
  Block_cache.add c ~file:"dead" ~offset:0 "x";
  Block_cache.add c ~file:"dead" ~offset:1 "y";
  Block_cache.add c ~file:"live" ~offset:0 "z";
  Block_cache.evict_file c "dead";
  Alcotest.(check int) "only live remains" 1 (Block_cache.entry_count c);
  Alcotest.(check bool) "live still cached" true
    (Block_cache.find c ~file:"live" ~offset:0 <> None)

let build_table env cache n =
  let b =
    Wip_sstable.Table.Builder.create env ~name:"t" ~category:Io_stats.Flush
      ~expected_keys:n ()
  in
  for i = 0 to n - 1 do
    Wip_sstable.Table.Builder.add b
      (Wip_util.Ikey.make (Printf.sprintf "%06d" i) ~seq:(Int64.of_int (i + 1)))
      "value"
  done;
  let _ = Wip_sstable.Table.Builder.finish b in
  Wip_sstable.Table.Reader.open_ ?cache env ~name:"t"

let test_reader_uses_cache () =
  let env = Env.in_memory () in
  let cache = Block_cache.create ~capacity_bytes:(1 lsl 20) in
  let r = build_table env (Some cache) 2000 in
  let stats = Env.stats env in
  let read_key k =
    ignore
      (Wip_sstable.Table.Reader.get r ~category:Io_stats.Read_path
         (Printf.sprintf "%06d" k) ~snapshot:Int64.max_int)
  in
  read_key 500;
  let after_first = Io_stats.read_by stats Io_stats.Read_path in
  (* Same block again: no further device reads. *)
  read_key 500;
  read_key 501;
  Alcotest.(check int) "no extra device I/O on warm block" after_first
    (Io_stats.read_by stats Io_stats.Read_path);
  Alcotest.(check bool) "cache recorded hits" true (Block_cache.hits cache >= 2)

let test_wipdb_cache_cuts_read_io () =
  let run cache_bytes =
    let env = Env.in_memory () in
    let cfg =
      {
        Wipdb.Config.default with
        Wipdb.Config.memtable_items = 256;
        block_cache_bytes = cache_bytes;
        name = "cachedb";
      }
    in
    let db = Wipdb.Store.create ~env cfg in
    for i = 0 to 4999 do
      Wipdb.Store.put db ~key:(Printf.sprintf "%08d" i) ~value:"payload"
    done;
    Wipdb.Store.flush db;
    Wipdb.Store.maintenance db ();
    let stats = Env.stats env in
    let before = Io_stats.read_by stats Io_stats.Read_path in
    (* A hot working set read repeatedly. *)
    for _ = 1 to 10 do
      for i = 0 to 99 do
        ignore (Wipdb.Store.get db (Printf.sprintf "%08d" i))
      done
    done;
    Io_stats.read_by stats Io_stats.Read_path - before
  in
  let cold = run 0 in
  let warm = run (4 * 1024 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "cached I/O (%d) well below uncached (%d)" warm cold)
    true
    (warm * 4 < cold)

let suite =
  [
    Alcotest.test_case "hit/miss" `Quick test_basic_hit_miss;
    Alcotest.test_case "lru order" `Quick test_lru_eviction_order;
    Alcotest.test_case "oversized" `Quick test_oversized_value_not_cached;
    Alcotest.test_case "replace" `Quick test_replace_same_key;
    Alcotest.test_case "evict file" `Quick test_evict_file;
    Alcotest.test_case "reader integration" `Quick test_reader_uses_cache;
    Alcotest.test_case "wipdb read I/O" `Quick test_wipdb_cache_cuts_read_io;
  ]
