(* Tests for the WipDB core: correctness against a model, bucket splitting,
   WA bound, recovery, snapshots, WAL threshold, adaptive memtables and
   read-aware compaction scheduling. *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Memtable = Wip_memtable.Memtable

module Model = Map.Make (String)

let small_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    wal_size_threshold = 1 lsl 30;
    bucket_merge_bytes = 0;
  }

let key i = Printf.sprintf "%016d" i

let test_config_validation () =
  (match Config.validate Config.default with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default invalid: %s" e);
  (match Config.validate { Config.default with Config.l_max = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "l_max 0 accepted");
  (match Config.validate { Config.default with Config.split_fanout = 1 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fanout 1 accepted");
  match Store.create { Config.default with Config.l_max = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create accepted bad config"

let test_wa_bound_formula () =
  Alcotest.(check (float 0.01)) "paper default bound" 4.142857
    (Config.wa_upper_bound Config.default)

let test_put_get_delete () =
  let db = Store.create small_config in
  Store.put db ~key:"alpha" ~value:"1";
  Store.put db ~key:"beta" ~value:"2";
  Alcotest.(check (option string)) "alpha" (Some "1") (Store.get db "alpha");
  Store.put db ~key:"alpha" ~value:"updated";
  Alcotest.(check (option string)) "updated" (Some "updated") (Store.get db "alpha");
  Store.delete db ~key:"alpha";
  Alcotest.(check (option string)) "deleted" None (Store.get db "alpha");
  Alcotest.(check (option string)) "beta intact" (Some "2") (Store.get db "beta")

let test_deletion_survives_flush_and_compaction () =
  let db = Store.create small_config in
  Store.put db ~key:"k" ~value:"v";
  Store.flush db;
  Store.maintenance db ();
  Store.delete db ~key:"k";
  Store.flush db;
  Store.maintenance db ();
  Alcotest.(check (option string)) "deleted after compaction" None (Store.get db "k")

let load db n =
  for i = 0 to n - 1 do
    Store.put db ~key:(key (i * 7919 mod n)) ~value:("v" ^ string_of_int i)
  done

let test_split_preserves_data () =
  let db = Store.create small_config in
  let n = 40_000 in
  load db n;
  Alcotest.(check bool)
    (Printf.sprintf "splits happened (%d)" (Store.split_count db))
    true
    (Store.split_count db >= 1);
  Alcotest.(check bool) "bucket count grew" true (Store.bucket_count db > 1);
  for i = 0 to n - 1 do
    if Store.get db (key i) = None then Alcotest.failf "lost key %d after split" i
  done

let test_bucket_boundaries_sorted_and_cover () =
  let db = Store.create small_config in
  load db 40_000;
  let infos = Store.bucket_infos db in
  (match infos with
  | first :: _ ->
    Alcotest.(check string) "first bucket covers space bottom" "" first.Store.lo
  | [] -> Alcotest.fail "no buckets");
  let rec sorted = function
    | (a : Store.bucket_info) :: (b : Store.bucket_info) :: rest ->
      String.compare a.Store.lo b.Store.lo < 0 && sorted (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "strictly sorted boundaries" true (sorted infos)

let test_wa_bound_holds () =
  let db = Store.create small_config in
  load db 60_000;
  let wa = Io_stats.write_amplification (Store.io_stats db) in
  (* The paper's bound is on logical data movement; the on-disk format adds
     block/index/bloom framing (~15% on 20-byte items) plus manifest traffic,
     so assert the bound with that overhead allowance. *)
  let bound = Config.wa_upper_bound small_config *. 1.35 in
  Alcotest.(check bool)
    (Printf.sprintf "WA %.2f <= %.2f" wa bound)
    true (wa <= bound)

let test_sublevel_caps () =
  let db = Store.create small_config in
  load db 30_000;
  List.iter
    (fun (info : Store.bucket_info) ->
      List.iteri
        (fun level count ->
          (* Every level is bounded by max_count: inner levels compact
             beyond it, the last level splits beyond it. *)
          if count > small_config.Config.max_count then
            Alcotest.failf "level %d has %d sublevels > max_count" level count)
        info.Store.sublevels_per_level)
    (Store.bucket_infos db)

let test_scan_correctness () =
  let db = Store.create small_config in
  for i = 0 to 999 do
    Store.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Store.delete db ~key:(key 500);
  let r = Store.scan db ~lo:(key 495) ~hi:(key 505) () in
  Alcotest.(check int) "9 live keys" 9 (List.length r);
  Alcotest.(check bool) "deleted key skipped" true (not (List.mem_assoc (key 500) r));
  let all = Store.scan db ~lo:"" ~hi:"\255" () in
  Alcotest.(check int) "full scan" 999 (List.length all);
  let limited = Store.scan db ~lo:"" ~hi:"\255" ~limit:7 () in
  Alcotest.(check int) "limit" 7 (List.length limited)

let test_scan_across_bucket_boundaries () =
  let db = Store.create small_config in
  let n = 40_000 in
  load db n;
  Alcotest.(check bool) "several buckets" true (Store.bucket_count db >= 4);
  let r = Store.scan db ~lo:(key 17_000) ~hi:(key 17_200) () in
  Alcotest.(check int) "contiguous range across buckets" 200 (List.length r);
  List.iteri
    (fun off (k, _) ->
      Alcotest.(check string) "ordered" (key (17_000 + off)) k)
    r

let test_snapshot_isolation () =
  let db = Store.create small_config in
  Store.put db ~key:"k" ~value:"v1";
  let snap = Store.snapshot db in
  Store.put db ~key:"k" ~value:"v2";
  Store.put db ~key:"new" ~value:"n";
  Alcotest.(check (option string)) "snapshot sees v1" (Some "v1")
    (Store.get_at db "k" ~snapshot:snap);
  Alcotest.(check (option string)) "snapshot misses new key" None
    (Store.get_at db "new" ~snapshot:snap);
  Alcotest.(check (option string)) "live sees v2" (Some "v2") (Store.get db "k");
  let r = Store.scan_at db ~lo:"" ~hi:"\255" ~snapshot:snap () in
  Alcotest.(check (list (pair string string))) "snapshot scan" [ ("k", "v1") ] r

let test_model_random_ops () =
  let db = Store.create small_config in
  let model = ref Model.empty in
  let rng = Wip_util.Rng.create ~seed:31L in
  for i = 0 to 9999 do
    let k = key (Wip_util.Rng.int rng 600) in
    if Wip_util.Rng.int rng 6 = 0 then begin
      Store.delete db ~key:k;
      model := Model.remove k !model
    end
    else begin
      let v = "v" ^ string_of_int i in
      Store.put db ~key:k ~value:v;
      model := Model.add k v !model
    end
  done;
  for i = 0 to 599 do
    let k = key i in
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Model.find_opt k !model) (Store.get db k)
  done;
  let scanned = Store.scan db ~lo:"" ~hi:"\255" () in
  Alcotest.(check int) "scan matches model" (Model.cardinal !model)
    (List.length scanned)

let test_recovery_roundtrip () =
  let env = Env.in_memory () in
  let db = Store.create ~env small_config in
  let n = 20_000 in
  load db n;
  Store.delete db ~key:(key 7);
  Store.checkpoint db;
  (* "Crash": drop the handle, recover from the same device. *)
  let db2 = Store.recover ~env small_config in
  Alcotest.(check (option string)) "deleted stays deleted" None (Store.get db2 (key 7));
  for i = 0 to n - 1 do
    if i <> 7 && Store.get db2 (key i) = None then
      Alcotest.failf "lost key %d in recovery" i
  done;
  Alcotest.(check int) "bucket directory recovered" (Store.bucket_count db)
    (Store.bucket_count db2);
  (* Writes continue with fresh sequence numbers. *)
  Store.put db2 ~key:"post-crash" ~value:"yes";
  Alcotest.(check (option string)) "post-crash write" (Some "yes")
    (Store.get db2 "post-crash")

let test_recovery_of_unflushed_writes () =
  let env = Env.in_memory () in
  let db = Store.create ~env small_config in
  (* Fewer writes than a memtable: nothing reaches a LevelTable. *)
  Store.put db ~key:"only-in-wal" ~value:"survives";
  let db2 = Store.recover ~env small_config in
  Alcotest.(check (option string)) "replayed from wal" (Some "survives")
    (Store.get db2 "only-in-wal")

let test_recover_on_empty_env_is_create () =
  let env = Env.in_memory () in
  let db = Store.recover ~env small_config in
  Store.put db ~key:"a" ~value:"b";
  Alcotest.(check (option string)) "works" (Some "b") (Store.get db "a")

let test_wal_reclamation_bounds_log () =
  (* Segments must be smaller than the threshold or whole-segment
     reclamation can never shrink the log below it. *)
  let cfg =
    {
      small_config with
      Config.wal_size_threshold = 64 * 1024;
      wal_segment_bytes = 8 * 1024;
    }
  in
  let db = Store.create cfg in
  for i = 0 to 49_999 do
    Store.put db ~key:(key (i mod 50_000)) ~value:(String.make 40 'v')
  done;
  (* The tail-flush policy must keep the log near its threshold. *)
  Alcotest.(check bool)
    (Printf.sprintf "wal %d <= 3x threshold" (Store.wal_bytes db))
    true
    (Store.wal_bytes db <= 3 * cfg.Config.wal_size_threshold)

let test_adaptive_memtable_switches () =
  let cfg =
    { small_config with Config.range_query_switch_threshold = 4; adaptive_memtable = true }
  in
  let db = Store.create cfg in
  for i = 0 to 60 do
    Store.put db ~key:(key i) ~value:"v"
  done;
  (* Hammer the bucket with range queries, then force a flush cycle. *)
  for _ = 1 to 10 do
    ignore (Store.scan db ~lo:(key 0) ~hi:(key 50) ())
  done;
  Store.flush db;
  let structures =
    List.map (fun (i : Store.bucket_info) -> i.Store.memtable_structure)
      (Store.bucket_infos db)
  in
  Alcotest.(check bool) "switched to sorted" true
    (List.mem Memtable.Sorted structures);
  (* With no further range traffic the next flush switches back. *)
  for i = 0 to 200 do
    Store.put db ~key:(key i) ~value:"v2"
  done;
  Store.flush db;
  let structures =
    List.map (fun (i : Store.bucket_info) -> i.Store.memtable_structure)
      (Store.bucket_infos db)
  in
  Alcotest.(check bool) "reverted to hash" true
    (List.for_all (fun s -> s = Memtable.Hash) structures)

let test_read_aware_scheduling_prioritizes_hot_bucket () =
  (* Two buckets, both with compaction-eligible level-0 sublevels; the one
     served read traffic must be compacted first under a tight budget. *)
  let cfg =
    {
      small_config with
      Config.initial_buckets = 2;
      initial_key_space = 1_000_000_000L;
      min_count = 2;
      max_count = 50;
      t_sublevels = 50;
      read_weight = 10.0;
      (* No background allowance: eligible compactions run only through the
         explicit maintenance calls this test makes. *)
      compaction_budget_per_batch = 0;
    }
  in
  let db = Store.create cfg in
  (* Key 1 lands in bucket 0; key 900M in bucket 1. *)
  let lo_key i = key i and hi_key i = Printf.sprintf "%016d" (900_000_000 + i) in
  for round = 0 to 3 do
    for i = 0 to 70 do
      Store.put db ~key:(lo_key ((round * 100) + i)) ~value:"v";
      Store.put db ~key:(hi_key ((round * 100) + i)) ~value:"v"
    done;
    Store.flush db
  done;
  (* Reads only on the high bucket. *)
  for i = 0 to 70 do
    ignore (Store.get db (hi_key i))
  done;
  let sublevels_of idx =
    List.nth (Store.bucket_infos db) idx |> fun (i : Store.bucket_info) ->
    List.nth i.Store.sublevels_per_level 0
  in
  let lo_before = sublevels_of 0 and hi_before = sublevels_of 1 in
  Alcotest.(check bool) "both eligible" true (lo_before >= 2 && hi_before >= 2);
  (* One compaction's worth of budget. *)
  Store.maintenance db ~budget_bytes:1 ();
  let lo_after = sublevels_of 0 and hi_after = sublevels_of 1 in
  Alcotest.(check bool) "hot bucket compacted first" true
    (hi_after < hi_before && lo_after = lo_before)

let test_drc_ignores_reads () =
  let cfg =
    {
      small_config with
      Config.initial_buckets = 2;
      min_count = 2;
      max_count = 50;
      t_sublevels = 50;
      read_weight = 0.0;
      compaction_budget_per_batch = 0;
    }
  in
  let db = Store.create cfg in
  let lo_key i = key i and hi_key i = Printf.sprintf "%016d" (900_000_000 + i) in
  (* Give the LOW bucket more sublevels, the HIGH bucket the read traffic. *)
  for round = 0 to 5 do
    for i = 0 to 70 do
      Store.put db ~key:(lo_key ((round * 100) + i)) ~value:"v"
    done;
    Store.flush db
  done;
  for round = 0 to 2 do
    for i = 0 to 70 do
      Store.put db ~key:(hi_key ((round * 100) + i)) ~value:"v"
    done;
    Store.flush db
  done;
  for i = 0 to 70 do
    ignore (Store.get db (hi_key i))
  done;
  let sublevels_of idx =
    List.nth (Store.bucket_infos db) idx |> fun (i : Store.bucket_info) ->
    List.nth i.Store.sublevels_per_level 0
  in
  let lo_before = sublevels_of 0 in
  Store.maintenance db ~budget_bytes:1 ();
  (* With read_weight 0, priority is driven by sublevel count: the LOW
     bucket (more sublevels) compacts first despite zero reads. *)
  Alcotest.(check bool) "sublevel count wins" true (sublevels_of 0 < lo_before)

let test_bucket_merge () =
  let cfg =
    { small_config with Config.initial_buckets = 8; bucket_merge_bytes = 1 lsl 20 }
  in
  let db = Store.create cfg in
  for i = 0 to 99 do
    Store.put db ~key:(key i) ~value:"v"
  done;
  Store.flush db;
  Store.maintenance db ();
  (* Eight nearly-empty buckets collapse toward initial_buckets. *)
  Alcotest.(check bool)
    (Printf.sprintf "buckets reduced or kept (%d)" (Store.bucket_count db))
    true
    (Store.bucket_count db <= 8);
  for i = 0 to 99 do
    if Store.get db (key i) = None then Alcotest.failf "merge lost key %d" i
  done

let test_write_batch_atomic_visibility () =
  let db = Store.create small_config in
  Store.write_batch db
    [
      (Wip_util.Ikey.Value, "a", "1");
      (Wip_util.Ikey.Value, "b", "2");
      (Wip_util.Ikey.Deletion, "a", "");
    ];
  Alcotest.(check (option string)) "later op in batch wins" None (Store.get db "a");
  Alcotest.(check (option string)) "b" (Some "2") (Store.get db "b")

let test_empty_value_and_binary_keys () =
  let db = Store.create small_config in
  Store.put db ~key:"empty" ~value:"";
  Alcotest.(check (option string)) "empty value stored" (Some "") (Store.get db "empty");
  let bin_key = "\x00\x01\xff\xfe" in
  Store.put db ~key:bin_key ~value:"bin";
  Store.flush db;
  Store.maintenance db ();
  Alcotest.(check (option string)) "binary key" (Some "bin") (Store.get db bin_key)

let qcheck_model =
  QCheck.Test.make ~name:"wipdb agrees with Map model" ~count:15
    QCheck.(small_list (pair (int_bound 100) (option (int_bound 1000))))
    (fun ops ->
      let db = Store.create small_config in
      let model = ref Model.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            let v = string_of_int v in
            Store.put db ~key:k ~value:v;
            model := Model.add k v !model
          | None ->
            Store.delete db ~key:k;
            model := Model.remove k !model)
        ops;
      Store.flush db;
      Store.maintenance db ();
      Model.for_all (fun k v -> Store.get db k = Some v) !model
      && List.for_all
           (fun (k, _) -> Store.get db (key k) = Model.find_opt (key k) !model)
           ops)

let qcheck_recovery_equivalence =
  QCheck.Test.make ~name:"recovery preserves every live key" ~count:10
    QCheck.(small_list (pair (int_bound 60) (option (int_bound 100))))
    (fun ops ->
      let env = Env.in_memory () in
      let db = Store.create ~env small_config in
      let model = ref Model.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            let v = string_of_int v in
            Store.put db ~key:k ~value:v;
            model := Model.add k v !model
          | None ->
            Store.delete db ~key:k;
            model := Model.remove k !model)
        ops;
      let db2 = Store.recover ~env small_config in
      Model.for_all (fun k v -> Store.get db2 k = Some v) !model)

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "WA bound formula" `Quick test_wa_bound_formula;
    Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
    Alcotest.test_case "deletion survives compaction" `Quick
      test_deletion_survives_flush_and_compaction;
    Alcotest.test_case "split preserves data" `Slow test_split_preserves_data;
    Alcotest.test_case "bucket boundaries" `Slow
      test_bucket_boundaries_sorted_and_cover;
    Alcotest.test_case "WA bound holds" `Slow test_wa_bound_holds;
    Alcotest.test_case "sublevel caps" `Slow test_sublevel_caps;
    Alcotest.test_case "scan correctness" `Quick test_scan_correctness;
    Alcotest.test_case "scan across buckets" `Slow
      test_scan_across_bucket_boundaries;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "model random ops" `Slow test_model_random_ops;
    Alcotest.test_case "recovery roundtrip" `Slow test_recovery_roundtrip;
    Alcotest.test_case "recovery of unflushed writes" `Quick
      test_recovery_of_unflushed_writes;
    Alcotest.test_case "recover on empty env" `Quick
      test_recover_on_empty_env_is_create;
    Alcotest.test_case "wal stays bounded" `Slow test_wal_reclamation_bounds_log;
    Alcotest.test_case "adaptive memtable" `Quick test_adaptive_memtable_switches;
    Alcotest.test_case "read-aware scheduling" `Quick
      test_read_aware_scheduling_prioritizes_hot_bucket;
    Alcotest.test_case "DRC ignores reads" `Quick test_drc_ignores_reads;
    Alcotest.test_case "bucket merge" `Quick test_bucket_merge;
    Alcotest.test_case "write batch" `Quick test_write_batch_atomic_visibility;
    Alcotest.test_case "edge values/keys" `Quick test_empty_value_and_binary_keys;
    QCheck_alcotest.to_alcotest qcheck_model;
    QCheck_alcotest.to_alcotest qcheck_recovery_equivalence;
  ]

(* Edge cases on the store surface. *)

let test_empty_store_reads () =
  let db = Store.create small_config in
  Alcotest.(check (option string)) "get on empty" None (Store.get db "k");
  Alcotest.(check int) "scan on empty" 0
    (List.length (Store.scan db ~lo:"" ~hi:"\255" ()));
  Store.flush db (* flushing nothing must be a no-op *);
  Store.maintenance db ();
  Alcotest.(check int) "no files created" 0 (List.length (Store.file_sizes db))

let test_initial_bucket_routing () =
  (* With pre-partitioned buckets, keys at and around every boundary must
     route consistently for writes and reads. *)
  let cfg =
    { small_config with Config.initial_buckets = 8; initial_key_space = 800L }
  in
  let db = Store.create cfg in
  for i = 0 to 799 do
    Store.put db ~key:(Printf.sprintf "%016d" i) ~value:(string_of_int i)
  done;
  for i = 0 to 799 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Some (string_of_int i))
      (Store.get db (Printf.sprintf "%016d" i))
  done;
  (* Keys outside the numeric space still route (first/last bucket). *)
  Store.put db ~key:"" ~value:"below-all";
  Store.put db ~key:"\255\255" ~value:"above-all";
  Alcotest.(check (option string)) "min key" (Some "below-all") (Store.get db "");
  Alcotest.(check (option string)) "max key" (Some "above-all")
    (Store.get db "\255\255")

let test_overwrite_heavy_single_key () =
  let db = Store.create small_config in
  for i = 1 to 5000 do
    Store.put db ~key:"hot" ~value:(string_of_int i)
  done;
  Alcotest.(check (option string)) "last version" (Some "5000") (Store.get db "hot");
  Store.flush db;
  Store.maintenance db ();
  Alcotest.(check (option string)) "after compaction" (Some "5000")
    (Store.get db "hot");
  let r = Store.scan db ~lo:"" ~hi:"\255" () in
  Alcotest.(check int) "one live key" 1 (List.length r)

let test_delete_nonexistent_key () =
  let db = Store.create small_config in
  Store.delete db ~key:"ghost";
  Alcotest.(check (option string)) "still absent" None (Store.get db "ghost");
  Store.flush db;
  Store.maintenance db ();
  Alcotest.(check (option string)) "absent after compaction" None
    (Store.get db "ghost")

let suite =
  suite
  @ [
      Alcotest.test_case "empty store" `Quick test_empty_store_reads;
      Alcotest.test_case "initial bucket routing" `Quick
        test_initial_bucket_routing;
      Alcotest.test_case "overwrite-heavy key" `Quick
        test_overwrite_heavy_single_key;
      Alcotest.test_case "delete nonexistent" `Quick test_delete_nonexistent_key;
    ]
