(* Shared plumbing for the experiment harness: engine constructors over
   fresh in-memory environments, workload drivers, and table printing. *)

module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Store_intf = Wip_kv.Store_intf
module Key_codec = Wip_workload.Key_codec
module Distribution = Wip_workload.Distribution

let key_space = 1_000_000_000L

(* ------------------------------------------------------------------ *)
(* Engine constructors. [scale] grows memtable/level capacities so the
   level structure at benchmark size resembles the paper's at its size. *)

type engine = {
  label : string;
  store : Store_intf.store;
}

let wipdb_config ~scale =
  {
    (Wipdb.Config.scaled ~scale) with
    Wipdb.Config.memtable_items = 512 * scale;
    memtable_bytes = 128 * 1024 * scale;
    initial_buckets = 16;
    (* Tight enough that the default runs exercise bucket splitting, as the
       paper's Figure 6 does ("as WipDB starts to split, the number of
       buckets grows"). *)
    bucket_capacity_bytes = 768 * 1024 * scale;
    wal_segment_bytes = 256 * 1024;
    wal_size_threshold = 64 * 1024 * 1024;
  }

let make_wipdb ?(label = "WipDB") ?(cfg_adjust = fun c -> c) ~scale () =
  let cfg = cfg_adjust { (wipdb_config ~scale) with Wipdb.Config.name = label } in
  let db = Wipdb.Store.create cfg in
  { label; store = Store_intf.Store ((module Wipdb.Store), db) }

let make_wipdb_s ~scale () =
  make_wipdb ~label:"WipDB-S"
    ~cfg_adjust:(fun c ->
      { c with Wipdb.Config.memtable_structure = Wip_memtable.Memtable.Sorted })
    ~scale ()

let make_wipdb_drc ~scale () =
  make_wipdb ~label:"WipDB-DRC"
    ~cfg_adjust:(fun c -> { c with Wipdb.Config.read_weight = 0.0 })
    ~scale ()

let make_leveldb ~scale () =
  let db = Wip_lsm.Leveled.create (Wip_lsm.Leveled.leveldb_config ~scale) in
  { label = "LevelDB"; store = Store_intf.Store ((module Wip_lsm.Leveled), db) }

let make_rocksdb ~scale () =
  let db = Wip_lsm.Leveled.create (Wip_lsm.Leveled.rocksdb_config ~scale) in
  { label = "RocksDB"; store = Store_intf.Store ((module Wip_lsm.Leveled), db) }

let make_rocksdb_bigmem ~scale () =
  let db = Wip_lsm.Leveled.create (Wip_lsm.Leveled.rocksdb_bigmem_config ~scale) in
  {
    label = "RocksDB-bigmem";
    store = Store_intf.Store ((module Wip_lsm.Leveled), db);
  }

let make_pebblesdb ~scale () =
  let db = Wip_flsm.Flsm.create (Wip_flsm.Flsm.default_config ~scale) in
  { label = "PebblesDB"; store = Store_intf.Store ((module Wip_flsm.Flsm), db) }

(* ------------------------------------------------------------------ *)
(* Drivers *)

let value_of_size rng n = Bytes.to_string (Wip_util.Rng.bytes rng n)

(* Write [ops] items whose key positions come from [dist]; batch the log as
   the paper does (1000 writes per batch). Returns elapsed seconds. *)
let drive_writes ?(batch = 200) ?(value_size = 100) ?(on_progress = fun ~done_:_ -> ())
    engine dist ~ops =
  let rng = Wip_util.Rng.create ~seed:0xBEEFL in
  let t0 = Unix.gettimeofday () in
  let remaining = ref ops in
  let done_ = ref 0 in
  while !remaining > 0 do
    let n = min batch !remaining in
    let items =
      List.init n (fun _ ->
          let k = Key_codec.encode (Distribution.next dist) in
          (Wip_util.Ikey.Value, k, value_of_size rng value_size))
    in
    Store_intf.write_batch engine.store items;
    remaining := !remaining - n;
    done_ := !done_ + n;
    on_progress ~done_:!done_
  done;
  Unix.gettimeofday () -. t0

let mops v = v /. 1.0e6

(* ------------------------------------------------------------------ *)
(* Output helpers *)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let human_bytes n =
  if n >= 1 lsl 30 then Printf.sprintf "%.2f GiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.2f MiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then Printf.sprintf "%.2f KiB" (float_of_int n /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" n
