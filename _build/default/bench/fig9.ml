(* Figure 9: impact of the shared WAL on restart. With more buckets, the
   reclamation bound (min unpersisted seq across MemTables) advances more
   slowly, so the log — and the crash-recovery replay — grows with bucket
   count until the threshold-driven tail flush caps it. We build stores at
   several bucket counts, "crash" them, and measure log size and restart
   time. *)

open Harness
module Distribution = Wip_workload.Distribution

let run ~ops () =
  section "Figure 9: restart time (s) and WAL size vs bucket count";
  row "%-10s %12s %14s %12s" "initial" "wal size" "restart (ms)" "recovered";
  List.iter
    (fun buckets ->
      let cfg =
        {
          (wipdb_config ~scale:1) with
          Wipdb.Config.initial_buckets = buckets;
          name = Printf.sprintf "WipDB-b%d" buckets;
          wal_segment_bytes = 128 * 1024;
          wal_size_threshold = 8 * 1024 * 1024;
        }
      in
      let env = Wip_storage.Env.in_memory () in
      let db = Wipdb.Store.create ~env cfg in
      let engine =
        { label = "x"; store = Wip_kv.Store_intf.Store ((module Wipdb.Store), db) }
      in
      let dist = Distribution.make Distribution.Uniform ~space:key_space ~seed:9L in
      let _ = drive_writes engine dist ~ops in
      let wal = Wipdb.Store.wal_bytes db in
      (* Crash: no checkpoint, no flush — recover from device state alone. *)
      let t0 = Unix.gettimeofday () in
      let db2 = Wipdb.Store.recover ~env cfg in
      let restart_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      row "%-10d %12s %14.1f %12d" buckets (human_bytes wal) restart_ms
        (Wipdb.Store.bucket_count db2))
    [ 4; 16; 64; 256; 512 ]
