(* Figure 7: WipDB under a shifting key distribution. Starting from a single
   bucket, four workload phases write to four disjoint quarters of the key
   space with different distributions (exponential, normal, uniform,
   reversed-exponential). We report bucket count over time and the bucket
   density across the key space at each phase end — the density must follow
   each phase's distribution. *)

open Harness
module Distribution = Wip_workload.Distribution
module Key_codec = Wip_workload.Key_codec

let bins = 60

let bucket_histogram db =
  let hist = Array.make bins 0 in
  List.iter
    (fun (info : Wipdb.Store.bucket_info) ->
      let frac =
        if info.Wipdb.Store.lo = "" then 0.0
        else Key_codec.fraction_of_space info.Wipdb.Store.lo ~space:key_space
      in
      let bin = min (bins - 1) (int_of_float (frac *. float_of_int bins)) in
      hist.(bin) <- hist.(bin) + 1)
    (Wipdb.Store.bucket_infos db);
  hist

let sparkline hist =
  let chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let maxv = Array.fold_left max 1 hist in
  String.init (Array.length hist) (fun i ->
      chars.(min 9 (hist.(i) * 9 / maxv)))

let run ~ops () =
  section "Figure 7: responding to changing key distribution";
  let cfg =
    {
      (wipdb_config ~scale:1) with
      Wipdb.Config.initial_buckets = 1;
      name = "WipDB-shift";
    }
  in
  let db = Wipdb.Store.create cfg in
  let rng = Wip_util.Rng.create ~seed:0xF7L in
  let quarter = Int64.div key_space 4L in
  let phases =
    [
      ("exponential", Distribution.Exponential { rate = 8.0 }, 0L);
      ("normal", Distribution.Normal { mean_frac = 0.5; stddev_frac = 0.15 }, quarter);
      ("uniform", Distribution.Uniform, Int64.mul quarter 2L);
      ( "rev-exponential",
        Distribution.Reversed_exponential { rate = 8.0 },
        Int64.mul quarter 3L );
    ]
  in
  let per_phase = ops / 4 in
  row "%-18s %-12s %-10s %-8s" "phase" "ops so far" "buckets" "Kops/s";
  List.iter
    (fun (label, shape, offset) ->
      let dist = Distribution.make shape ~space:quarter ~seed:7L in
      let t0 = Unix.gettimeofday () in
      for i = 1 to per_phase do
        let pos = Int64.add offset (Distribution.next dist) in
        let k = Key_codec.encode pos in
        Wipdb.Store.put db ~key:k ~value:(value_of_size rng 100);
        if i mod (max 1 (per_phase / 2)) = 0 then
          row "%-18s %-12d %-10d %-8.1f" label
            ((i
             +
             match label with
             | "exponential" -> 0
             | "normal" -> per_phase
             | "uniform" -> 2 * per_phase
             | _ -> 3 * per_phase))
            (Wipdb.Store.bucket_count db)
            (float_of_int i /. Float.max 1e-9 (Unix.gettimeofday () -. t0) /. 1e3)
      done;
      row "  bucket density after %-14s |%s|" label (sparkline (bucket_histogram db)))
    phases;
  row "";
  row "final buckets: %d, splits: %d, WA %.2f"
    (Wipdb.Store.bucket_count db) (Wipdb.Store.split_count db)
    (Wip_storage.Io_stats.write_amplification (Wipdb.Store.io_stats db))
