(* Bechamel microbenchmarks — one Test.make per paper table/figure's hot
   path: Figure 3 (MemTable insert/lookup structures), Figure 6 (write
   path), Figure 8/Table I (point-read path), Figure 10-E/Table II (scan
   path), plus substrate primitives (bloom, block coding, WAL append). *)

open Bechamel
open Toolkit
module Ikey = Wip_util.Ikey
module Memtable = Wip_memtable.Memtable

let prepared_keys n =
  let rng = Wip_util.Rng.create ~seed:0xABCDL in
  Array.init n (fun _ ->
      Printf.sprintf "%016d" (Wip_util.Rng.int rng 1_000_000_000))

(* Figure 3: hash vs skiplist memtable insert. *)
let memtable_insert structure =
  let keys = prepared_keys 4096 in
  let t =
    ref (Memtable.create ~structure ~capacity_items:10_000 ~capacity_bytes:max_int)
  in
  let i = ref 0 in
  Staged.stage (fun () ->
      let key = keys.(!i land 4095) in
      incr i;
      let ik = Ikey.make key ~seq:(Int64.of_int !i) in
      if not (Memtable.try_add !t ik "0123456789abcdef") then begin
        t :=
          Memtable.create ~structure ~capacity_items:10_000 ~capacity_bytes:max_int;
        ignore (Memtable.try_add !t ik "0123456789abcdef")
      end)

let memtable_lookup structure =
  let keys = prepared_keys 4096 in
  let t = Memtable.create ~structure ~capacity_items:8192 ~capacity_bytes:max_int in
  Array.iteri
    (fun i k -> ignore (Memtable.try_add t (Ikey.make k ~seq:(Int64.of_int i)) "v"))
    keys;
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      ignore (Memtable.find t keys.(!i land 4095) ~snapshot:Int64.max_int))

(* Figure 6: the WipDB write path end to end (memtable + wal + compactions). *)
let wipdb_write () =
  let cfg =
    {
      (Harness.wipdb_config ~scale:1) with
      Wipdb.Config.initial_buckets = 8;
      name = "WipDB-micro";
    }
  in
  let db = Wipdb.Store.create cfg in
  let keys = prepared_keys 4096 in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Wipdb.Store.put db ~key:keys.(!i land 4095) ~value:"0123456789abcdef")

(* Figure 8 / Table I: point reads on a populated store. *)
let wipdb_read () =
  let cfg =
    {
      (Harness.wipdb_config ~scale:1) with
      Wipdb.Config.initial_buckets = 8;
      name = "WipDB-micro-r";
    }
  in
  let db = Wipdb.Store.create cfg in
  let keys = prepared_keys 8192 in
  Array.iter (fun k -> Wipdb.Store.put db ~key:k ~value:"v") keys;
  Wipdb.Store.flush db;
  Wipdb.Store.maintenance db ();
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      ignore (Wipdb.Store.get db keys.(!i land 8191)))

(* Figure 10-E / Table II: short range scans. *)
let wipdb_scan () =
  let cfg =
    {
      (Harness.wipdb_config ~scale:1) with
      Wipdb.Config.initial_buckets = 8;
      name = "WipDB-micro-s";
    }
  in
  let db = Wipdb.Store.create cfg in
  for i = 0 to 8191 do
    Wipdb.Store.put db ~key:(Printf.sprintf "%016d" (i * 1000)) ~value:"v"
  done;
  Wipdb.Store.flush db;
  Wipdb.Store.maintenance db ();
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      let lo = Printf.sprintf "%016d" ((!i * 37 land 8191) * 1000) in
      let hi = Printf.sprintf "%016d" (((!i * 37 land 8191) + 50) * 1000) in
      ignore (Wipdb.Store.scan db ~lo ~hi ~limit:50 ()))

(* Substrate primitives. *)
let bloom_query () =
  let b = Wip_bloom.Bloom.create ~bits_per_key:10 ~expected_keys:10_000 in
  let keys = prepared_keys 4096 in
  Array.iter (Wip_bloom.Bloom.add b) keys;
  let e = Wip_bloom.Bloom.encode b in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      ignore (Wip_bloom.Bloom.mem_encoded e keys.(!i land 4095)))

let wal_append () =
  let env = Wip_storage.Env.in_memory () in
  let w = Wip_wal.Wal.create env () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Wip_wal.Wal.append_batch w ~first_seq:(Int64.of_int !i)
        [ (Ikey.Value, "key-0123456789", "value-0123456789") ])

let tests () =
  Test.make_grouped ~name:"wipdb"
    [
      Test.make ~name:"fig3/memtable-insert-hash" (memtable_insert Memtable.Hash);
      Test.make ~name:"fig3/memtable-insert-skiplist"
        (memtable_insert Memtable.Sorted);
      Test.make ~name:"fig3/memtable-lookup-hash" (memtable_lookup Memtable.Hash);
      Test.make ~name:"fig3/memtable-lookup-skiplist"
        (memtable_lookup Memtable.Sorted);
      Test.make ~name:"fig6/wipdb-put" (wipdb_write ());
      Test.make ~name:"fig8/wipdb-get" (wipdb_read ());
      Test.make ~name:"fig10e/wipdb-scan50" (wipdb_scan ());
      Test.make ~name:"substrate/bloom-query" (bloom_query ());
      Test.make ~name:"substrate/wal-append" (wal_append ());
    ]

let run () =
  Harness.section "Bechamel microbenchmarks (ns/op)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/op\n%!" name est
      | _ -> Printf.printf "%-40s (no estimate)\n%!" name)
    results
