(* Figure 8 + Table I: mixed read/write service. A store preloaded with
   uniform data serves a read stream (uniform in 8a, exponential in 8b)
   while a throttled writer runs concurrently. The paper's machinery:
   8 reader threads + 1 writer at 150 Kops/s; our deterministic analogue
   interleaves R reads per write and grants the WipDB variants a bounded
   background-compaction budget per write, so read-aware scheduling
   (WipDB vs WipDB-DRC) has a scarce resource to allocate. Reads address
   keys that exist: the read distribution indexes the sorted preloaded key
   array, so exponential reads are spatially concentrated — the locality
   the read-aware scheduler exploits (§III-G). *)

open Harness
module Distribution = Wip_workload.Distribution
module Key_codec = Wip_workload.Key_codec
module Store_intf = Wip_kv.Store_intf
module Histogram = Wip_stats.Histogram

(* Scarce on purpose: the writer must outpace the background allowance so a
   backlog of sublevels builds up and the scheduler's choice of WHERE to
   compact matters. *)
let budget_per_batch = 32

(* Engines are rebuilt per phase. WipDB variants also expose their concrete
   handle so the hot/cold sublevel mechanism metric can be read out. *)
let wip_cfg ~read_weight ~scale label =
  {
    (wipdb_config ~scale) with
    Wipdb.Config.name = label;
    compaction_budget_per_batch = budget_per_batch;
    memtable_items = 128;
    memtable_bytes = 32 * 1024;
    read_weight;
  }

let engines ~scale =
  let wip label read_weight =
    let db = Wipdb.Store.create (wip_cfg ~read_weight ~scale label) in
    ( { label; store = Store_intf.Store ((module Wipdb.Store), db) },
      Some db )
  in
  [
    wip "WipDB" 10.0;
    wip "WipDB-DRC" 0.0;
    (make_leveldb ~scale (), None);
    (make_rocksdb ~scale (), None);
    (make_pebblesdb ~scale (), None);
  ]

(* Mean total sublevel count of the buckets at or below [hot_hi] (the
   read-hot key range under exponential reads) vs the rest: read-aware
   scheduling should keep the hot side lower. *)
let hot_cold_sublevels db ~hot_hi =
  let hot_n = ref 0 and hot_sum = ref 0 and cold_n = ref 0 and cold_sum = ref 0 in
  List.iter
    (fun (info : Wipdb.Store.bucket_info) ->
      let subs = List.fold_left ( + ) 0 info.Wipdb.Store.sublevels_per_level in
      if String.compare info.Wipdb.Store.lo hot_hi <= 0 then begin
        incr hot_n;
        hot_sum := !hot_sum + subs
      end
      else begin
        incr cold_n;
        cold_sum := !cold_sum + subs
      end)
    (Wipdb.Store.bucket_infos db);
  ( (if !hot_n = 0 then 0.0 else float_of_int !hot_sum /. float_of_int !hot_n),
    if !cold_n = 0 then 0.0 else float_of_int !cold_sum /. float_of_int !cold_n )

let mixed_phase (engine, wip_handle) ~read_shape ~preload ~mixed_ops ~reads_per_write =
  let rng = Wip_util.Rng.create ~seed:0xF8L in
  let write_dist = Distribution.make Distribution.Uniform ~space:key_space ~seed:8L in
  (* Preload, remembering the key population. *)
  let keys = Array.make preload "" in
  let batch = ref [] in
  for i = 0 to preload - 1 do
    let k = Key_codec.encode (Distribution.next write_dist) in
    keys.(i) <- k;
    batch := (Wip_util.Ikey.Value, k, value_of_size rng 100) :: !batch;
    if List.length !batch = 200 then begin
      Store_intf.write_batch engine.store !batch;
      batch := []
    end
  done;
  Store_intf.write_batch engine.store !batch;
  Store_intf.flush engine.store;
  Store_intf.maintenance engine.store ();
  Array.sort String.compare keys;
  (* Read index distribution over the sorted population: exponential reads
     hit a spatially concentrated key range. *)
  let read_dist =
    Distribution.make read_shape ~space:(Int64.of_int preload) ~seed:9L
  in
  let lat = Histogram.create () in
  let hits = ref 0 in
  let t0 = Unix.gettimeofday () in
  let writes = ref 0 in
  for _ = 1 to mixed_ops / (reads_per_write + 1) do
    let k = Key_codec.encode (Distribution.next write_dist) in
    Store_intf.put engine.store ~key:k ~value:(value_of_size rng 100);
    incr writes;
    for _ = 1 to reads_per_write do
      let idx = Int64.to_int (Distribution.next read_dist) in
      let r0 = Unix.gettimeofday () in
      (match Store_intf.get engine.store keys.(idx) with
      | Some _ -> incr hits
      | None -> ());
      Histogram.add lat ((Unix.gettimeofday () -. r0) *. 1e6)
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let reads = Histogram.count lat in
  let hot_cold =
    match wip_handle with
    | Some db -> Some (hot_cold_sublevels db ~hot_hi:keys.(preload / 10))
    | None -> None
  in
  ( float_of_int reads /. dt,
    float_of_int !writes /. dt,
    Histogram.percentile lat 99.0,
    float_of_int !hits /. float_of_int (max 1 reads),
    hot_cold )

let run ~ops () =
  let preload = ops in
  let mixed_ops = max 1000 (4 * ops) in
  let reads_per_write = 4 in
  let run_phase title shape =
    section title;
    row "%-16s %12s %12s %12s %8s %20s" "store" "read Kops/s" "write Kops/s"
      "p99 (us)" "hit%%" "hot/cold sublevels";
    List.filter_map
      (fun ((engine, _) as pair) ->
        let read_thr, write_thr, p99, hit_rate, hot_cold =
          mixed_phase pair ~read_shape:shape ~preload ~mixed_ops ~reads_per_write
        in
        let hc =
          match hot_cold with
          | Some (hot, cold) -> Printf.sprintf "%.1f / %.1f" hot cold
          | None -> "-"
        in
        row "%-16s %12.1f %12.1f %12.1f %8.1f %20s" engine.label
          (read_thr /. 1e3) (write_thr /. 1e3) p99 (100.0 *. hit_rate) hc;
        Some (engine.label, p99))
      (engines ~scale:1)
  in
  let uni =
    run_phase "Figure 8(a): mixed read/write, uniform reads" Distribution.Uniform
  in
  let expo =
    run_phase "Figure 8(b): mixed read/write, exponential reads"
      (Distribution.Exponential { rate = 10.0 })
  in
  section "Table I: 99th-percentile read latency (us)";
  row "%-16s %12s %12s" "store" "uniform" "exponential";
  List.iter
    (fun (label, p_uni) ->
      match List.assoc_opt label expo with
      | Some p_exp -> row "%-16s %12.1f %12.1f" label p_uni p_exp
      | None -> ())
    uni
