(* Figure 10 + Table II: YCSB core workloads. Each store is preloaded with
   the record set; every workload then runs its standard operation mix.
   Reported: throughput per workload (Figure 10) and 99th-percentile
   latency (Table II). *)

open Harness
module Ycsb = Wip_workload.Ycsb
module Store_intf = Wip_kv.Store_intf
module Histogram = Wip_stats.Histogram
module Key_codec = Wip_workload.Key_codec

(* The paper pre-partitions WipDB's buckets over the workload's key space
   (100 buckets at start, §IV-B); YCSB keys live in [0, ~2*records). *)
let engines ~scale ~records =
  [
    make_wipdb
      ~cfg_adjust:(fun c ->
        {
          c with
          Wipdb.Config.initial_key_space = Int64.of_int (2 * records);
          initial_buckets = 16;
        })
      ~scale ();
    make_leveldb ~scale ();
    make_rocksdb ~scale ();
    make_pebblesdb ~scale ();
  ]

let preload engine ~records =
  let gen = Ycsb.create Ycsb.Load ~record_count:records ~seed:10L () in
  let t0 = Unix.gettimeofday () in
  let batch = ref [] and batched = ref 0 in
  for _ = 1 to records do
    (match Ycsb.next gen with
    | Ycsb.Insert (k, v) -> batch := (Wip_util.Ikey.Value, k, v) :: !batch
    | _ -> ());
    incr batched;
    if !batched = 200 then begin
      Store_intf.write_batch engine.store (List.rev !batch);
      batch := [];
      batched := 0
    end
  done;
  Store_intf.write_batch engine.store (List.rev !batch);
  Store_intf.flush engine.store;
  Store_intf.maintenance engine.store ();
  float_of_int records /. (Unix.gettimeofday () -. t0)

let scan_hi start length =
  (* Upper bound covering [length] consecutive numeric keys. *)
  match Int64.of_string_opt start with
  | Some v -> Key_codec.encode (Int64.add v (Int64.of_int (length * 10)))
  | None -> start ^ "\255"

let run_workload engine workload ~records ~ops =
  let gen = Ycsb.create workload ~record_count:records ~seed:11L () in
  let lat = Histogram.create () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    let op = Ycsb.next gen in
    let r0 = Unix.gettimeofday () in
    (match op with
    | Ycsb.Read k -> ignore (Store_intf.get engine.store k)
    | Ycsb.Update (k, v) | Ycsb.Insert (k, v) ->
      Store_intf.put engine.store ~key:k ~value:v
    | Ycsb.Scan (k, n) ->
      ignore (Store_intf.scan engine.store ~lo:k ~hi:(scan_hi k n) ~limit:n ())
    | Ycsb.Read_modify_write (k, v) ->
      ignore (Store_intf.get engine.store k);
      Store_intf.put engine.store ~key:k ~value:v);
    Histogram.add lat ((Unix.gettimeofday () -. r0) *. 1e6)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int ops /. dt, Histogram.percentile lat 99.0)

let run ~ops () =
  let records = max 10_000 ops in
  let ops_per_workload = max 2_000 (ops / 5) in
  section
    (Printf.sprintf
       "Figure 10: YCSB throughput (Kops/s), %d records preloaded, %d ops/workload"
       records ops_per_workload);
  let workloads = [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ] in
  Printf.printf "%-16s %8s" "store" "Load";
  List.iter (fun w -> Printf.printf "%8s" (Ycsb.workload_name w)) workloads;
  print_newline ();
  let latencies = ref [] in
  List.iter
    (fun engine ->
      let load_thr = preload engine ~records in
      Printf.printf "%-16s %8.1f%!" engine.label (load_thr /. 1e3);
      let lats =
        List.map
          (fun w ->
            let thr, p99 = run_workload engine w ~records ~ops:ops_per_workload in
            Printf.printf "%8.1f%!" (thr /. 1e3);
            p99)
          workloads
      in
      print_newline ();
      latencies := (engine.label, lats) :: !latencies)
    (engines ~scale:1 ~records);
  section "Table II: YCSB 99th-percentile latency (us)";
  Printf.printf "%-16s" "store";
  List.iter (fun w -> Printf.printf "%8s" (Ycsb.workload_name w)) workloads;
  print_newline ();
  List.iter
    (fun (label, lats) ->
      Printf.printf "%-16s" label;
      List.iter (fun p -> Printf.printf "%8.0f" p) lats;
      print_newline ())
    (List.rev !latencies)
