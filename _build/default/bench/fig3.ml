(* Figure 3: MemTable structure comparison — many skip lists vs many hash
   tables vs one big skip list. The paper measures CPU cache/TLB misses; we
   reproduce the mechanism with throughput and per-op probe counts (memory
   accesses on the lookup/insert path), which is what drives those misses. *)

open Harness
module Memtable = Wip_memtable.Memtable
module Skiplist = Wip_memtable.Skiplist
module Ikey = Wip_util.Ikey

let table_capacity = 10_000

(* Write [ops] random keys routed to [tables] tables by key hash; a full
   table is replaced by a fresh one (freeze-and-rotate, as WipDB does). *)
let run_many_tables structure ~tables ~ops =
  let make () =
    Memtable.create ~structure ~capacity_items:table_capacity
      ~capacity_bytes:max_int
  in
  let arr = Array.init tables (fun _ -> make ()) in
  let rng = Wip_util.Rng.create ~seed:0xF3L in
  let retired_probes = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to ops do
    let key = Printf.sprintf "%016d" (Wip_util.Rng.int rng 1_000_000_000) in
    let idx = Wip_util.Hashing.hash32 ~seed:7 key mod tables in
    let ikey = Ikey.make key ~seq:(Int64.of_int i) in
    if not (Memtable.try_add arr.(idx) ikey "0123456789abcdef") then begin
      retired_probes := !retired_probes + Memtable.probes arr.(idx);
      arr.(idx) <- make ();
      ignore (Memtable.try_add arr.(idx) ikey "0123456789abcdef")
    end
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let probes =
    Array.fold_left (fun a t -> a + Memtable.probes t) !retired_probes arr
  in
  (float_of_int ops /. dt, float_of_int probes /. float_of_int ops)

let run_one_big_skiplist ~ops =
  let s = Skiplist.create () in
  let rng = Wip_util.Rng.create ~seed:0xF3L in
  let t0 = Unix.gettimeofday () in
  for i = 1 to ops do
    let key = Printf.sprintf "%016d" (Wip_util.Rng.int rng 1_000_000_000) in
    Skiplist.add s (Ikey.make key ~seq:(Int64.of_int i)) "0123456789abcdef"
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int ops /. dt, float_of_int (Skiplist.probes s) /. float_of_int ops)

let run ~ops () =
  section "Figure 3: MemTable structures (throughput + probes/op)";
  row "(cache/TLB miss counters are not portable; probes/op is the";
  row " memory-access count behind those misses — see DESIGN.md)";
  row "";
  row "%-12s %-12s %12s %14s" "structure" "#tables" "Mops/s" "probes/op";
  List.iter
    (fun tables ->
      let thr_s, probes_s = run_many_tables Memtable.Sorted ~tables ~ops in
      let thr_h, probes_h = run_many_tables Memtable.Hash ~tables ~ops in
      row "%-12s %-12d %12.3f %14.2f" "SkipLists" tables (mops thr_s) probes_s;
      row "%-12s %-12d %12.3f %14.2f" "Hash" tables (mops thr_h) probes_h)
    [ 1; 16; 256; 1024 ];
  let thr_1, probes_1 = run_one_big_skiplist ~ops in
  row "%-12s %-12s %12.3f %14.2f" "1-SkipList" "(unbounded)" (mops thr_1) probes_1
