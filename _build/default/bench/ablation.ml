(* Ablations on the design knobs DESIGN.md calls out:
   - split fanout N and level budget L_max against the WA bound
     L_max + N/(N-1) (paper §III-E);
   - the compaction-eligibility window [min_count, max_count];
   - bloom-filter density vs read I/O;
   - block-cache capacity vs read I/O for a hot working set. *)

open Harness
module Distribution = Wip_workload.Distribution
module Io_stats = Wip_storage.Io_stats

let run_config label cfg ~ops =
  let db = Wipdb.Store.create cfg in
  let engine =
    { label; store = Wip_kv.Store_intf.Store ((module Wipdb.Store), db) }
  in
  let dist = Distribution.make Distribution.Uniform ~space:key_space ~seed:12L in
  let elapsed = drive_writes engine dist ~ops in
  (db, Io_stats.write_amplification (Wipdb.Store.io_stats db), elapsed)

let run ~ops () =
  section "Ablation: WA vs split fanout N and level budget L_max";
  row "%-8s %-8s %10s %12s %10s %10s" "L_max" "N" "bound" "measured WA" "buckets" "Kops/s";
  List.iter
    (fun l_max ->
      List.iter
        (fun n ->
          let cfg =
            {
              (wipdb_config ~scale:1) with
              Wipdb.Config.l_max;
              split_fanout = n;
              initial_buckets = 4;
              name = Printf.sprintf "WipDB-L%d-N%d" l_max n;
            }
          in
          let db, wa, elapsed = run_config cfg.Wipdb.Config.name cfg ~ops in
          row "%-8d %-8d %10.2f %12.2f %10d %10.1f" l_max n
            (Wipdb.Config.wa_upper_bound cfg)
            wa
            (Wipdb.Store.bucket_count db)
            (float_of_int ops /. elapsed /. 1e3))
        [ 2; 4; 8 ])
    [ 2; 3; 4 ];
  section "Ablation: compaction-eligibility window [min_count, max_count]";
  row "%-12s %-12s %12s %10s" "min_count" "max_count" "measured WA" "Kops/s";
  List.iter
    (fun (min_count, max_count) ->
      let cfg =
        {
          (wipdb_config ~scale:1) with
          Wipdb.Config.min_count;
          max_count;
          initial_buckets = 4;
          name = Printf.sprintf "WipDB-mc%d-%d" min_count max_count;
        }
      in
      let _db, wa, elapsed = run_config cfg.Wipdb.Config.name cfg ~ops in
      row "%-12d %-12d %12.2f %10.1f" min_count max_count wa
        (float_of_int ops /. elapsed /. 1e3))
    [ (2, 4); (4, 8); (4, 20); (8, 20) ]

  ;
  section "Ablation: bloom bits/key vs read-path device I/O";
  row "%-12s %14s %16s" "bits/key" "bytes/get" "false-pos reads";
  List.iter
    (fun bits_per_key ->
      let env = Wip_storage.Env.in_memory () in
      let cfg =
        {
          (wipdb_config ~scale:1) with
          Wipdb.Config.bits_per_key;
          name = Printf.sprintf "WipDB-bpk%d" bits_per_key;
        }
      in
      let db = Wipdb.Store.create ~env cfg in
      (* Store even keys; query odd ones — misses that land inside every
         table's key range, so only the bloom filter stands between the
         lookup and a data-block read. *)
      for i = 0 to 19_999 do
        Wipdb.Store.put db ~key:(Printf.sprintf "%016d" (2 * i))
          ~value:"payload-96-bytes"
      done;
      Wipdb.Store.flush db;
      let stats = Wip_storage.Env.stats env in
      let before = Io_stats.read_by stats Io_stats.Read_path in
      let misses = 20_000 in
      for i = 0 to misses - 1 do
        ignore (Wipdb.Store.get db (Printf.sprintf "%016d" ((2 * i) + 1)))
      done;
      let fp_bytes = Io_stats.read_by stats Io_stats.Read_path - before in
      row "%-12d %14.1f %16s" bits_per_key
        (float_of_int fp_bytes /. float_of_int misses)
        (human_bytes fp_bytes))
    [ 2; 6; 10; 14 ];
  section "Ablation: block-cache capacity vs read-path device I/O";
  row "%-14s %14s %12s" "cache" "bytes/get" "hit rate";
  List.iter
    (fun cache_bytes ->
      let env = Wip_storage.Env.in_memory () in
      let cfg =
        {
          (wipdb_config ~scale:1) with
          Wipdb.Config.block_cache_bytes = cache_bytes;
          name = Printf.sprintf "WipDB-bc%d" cache_bytes;
        }
      in
      let db = Wipdb.Store.create ~env cfg in
      for i = 0 to 19_999 do
        Wipdb.Store.put db ~key:(Printf.sprintf "%016d" i) ~value:"payload-96-bytes"
      done;
      Wipdb.Store.flush db;
      Wipdb.Store.maintenance db ();
      let stats = Wip_storage.Env.stats env in
      let before = Io_stats.read_by stats Io_stats.Read_path in
      let rng = Wip_util.Rng.create ~seed:0xCAFEL in
      let reads = 40_000 in
      (* Zipf-hot working set: 90% of reads hit 10% of keys. *)
      for _ = 1 to reads do
        let hot = Wip_util.Rng.int rng 10 < 9 in
        let k =
          if hot then Wip_util.Rng.int rng 2_000
          else Wip_util.Rng.int rng 20_000
        in
        ignore (Wipdb.Store.get db (Printf.sprintf "%016d" k))
      done;
      let bytes = Io_stats.read_by stats Io_stats.Read_path - before in
      row "%-14s %14.1f %12s"
        (if cache_bytes = 0 then "off" else human_bytes cache_bytes)
        (float_of_int bytes /. float_of_int reads)
        "-")
    [ 0; 64 * 1024; 512 * 1024; 4 * 1024 * 1024 ]
