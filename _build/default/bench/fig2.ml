(* Figure 2: hypothetical guard positions in a LevelDB-like store drift as
   compactions run — heavily in the upper levels, little in the deep ones.
   This instability is the paper's argument for why approximate sorting
   cannot be applied per-level in an LSM-tree (§II-C). *)

open Harness

let run ~ops () =
  section "Figure 2: guard-position drift in LevelDB levels (uniform writes)";
  (* The concrete Leveled handle is needed for guard instrumentation. *)
  let db = Wip_lsm.Leveled.create (Wip_lsm.Leveled.leveldb_config ~scale:1) in
  let dist =
    Wip_workload.Distribution.make Wip_workload.Distribution.Uniform
      ~space:key_space ~seed:2L
  in
  let rng = Wip_util.Rng.create ~seed:0xF16L in
  let checkpoints = 6 in
  let per_phase = ops / checkpoints in
  let guard_every = max 200 (ops / 50) in
  let history = Array.make (checkpoints + 1) [] in
  for phase = 1 to checkpoints do
    for _ = 1 to per_phase do
      let k =
        Wip_workload.Key_codec.encode (Wip_workload.Distribution.next dist)
      in
      Wip_lsm.Leveled.put db ~key:k ~value:(value_of_size rng 100)
    done;
    Wip_lsm.Leveled.flush db;
    Wip_lsm.Leveled.maintenance db ();
    history.(phase) <-
      List.map
        (fun level ->
          ( level,
            Wip_lsm.Leveled.guard_positions db ~level ~every:guard_every
              ~space:key_space ))
        [ 1; 2; 3 ]
  done;
  row "%-6s %-6s %-8s %s" "phase" "level" "#guards" "first guard positions (%% of key space)";
  for phase = 1 to checkpoints do
    List.iter
      (fun (level, guards) ->
        let shown =
          guards |> List.filteri (fun i _ -> i < 6)
          |> List.map (fun f -> Printf.sprintf "%5.1f" (100.0 *. f))
          |> String.concat " "
        in
        row "%-6d L%-5d %-8d %s" phase level (List.length guards) shown)
      history.(phase)
  done;
  (* Drift summary: mean |Δ| of matching guard ordinals between consecutive
     checkpoints. The paper's claim: drift(L1) > drift(L2) > drift(L3). *)
  row "";
  row "%-6s %s" "level" "mean |guard drift| between phases (%% of key space)";
  List.iter
    (fun level ->
      let drift = ref 0.0 and samples = ref 0 in
      for phase = 2 to checkpoints do
        let prev = List.assoc level history.(phase - 1) in
        let cur = List.assoc level history.(phase) in
        List.iteri
          (fun i g ->
            match List.nth_opt prev i with
            | Some g' ->
              drift := !drift +. Float.abs (g -. g');
              incr samples
            | None -> ())
          cur
      done;
      let mean = if !samples = 0 then 0.0 else 100.0 *. !drift /. float_of_int !samples in
      row "L%-5d %.3f" level mean)
    [ 1; 2; 3 ]
