(* Figure 11: file-size histograms per store after a sizable load. The
   paper's observation: PebblesDB's probabilistic guards fragment the store
   into many small files (over half below 1 MB, 20x the file count of other
   stores), while WipDB/LevelDB/RocksDB keep files near their target size. *)

open Harness
module Store_intf = Wip_kv.Store_intf
module Distribution = Wip_workload.Distribution

let buckets_kib = [ 4; 16; 64; 256; 1024; max_int ]

let bucket_label lo hi =
  if hi = max_int then Printf.sprintf ">%dK" lo
  else if lo = 0 then Printf.sprintf "<%dK" hi
  else Printf.sprintf "%d-%dK" lo hi

let run ~ops () =
  section "Figure 11: file size histogram (counts per size range)";
  let labels =
    let rec pairs lo = function
      | [] -> []
      | hi :: rest -> bucket_label lo hi :: pairs hi rest
    in
    pairs 0 buckets_kib
  in
  Printf.printf "%-16s %8s" "store" "#files";
  List.iter (fun l -> Printf.printf "%10s" l) labels;
  print_newline ();
  List.iter
    (fun mk ->
      let engine = mk in
      let dist = Distribution.make Distribution.Uniform ~space:key_space ~seed:11L in
      let _ = drive_writes engine dist ~ops in
      Store_intf.flush engine.store;
      Store_intf.maintenance engine.store ();
      let sizes = Store_intf.file_sizes engine.store in
      let hist = Array.make (List.length buckets_kib) 0 in
      List.iter
        (fun size ->
          let rec place i = function
            | [] -> ()
            | hi :: rest ->
              if hi = max_int || size < hi * 1024 then hist.(i) <- hist.(i) + 1
              else place (i + 1) rest
          in
          place 0 buckets_kib)
        sizes;
      Printf.printf "%-16s %8d" engine.label (List.length sizes);
      Array.iter (fun n -> Printf.printf "%10d" n) hist;
      print_newline ())
    [
      make_wipdb ~scale:1 ();
      make_leveldb ~scale:1 ();
      make_rocksdb ~scale:1 ();
      make_pebblesdb ~scale:1 ();
    ]
