(* Figure 6: sustained random-write performance across stores —
   (a) throughput over time, (b) write amplification over time,
   (c) total per-level read/write I/O. The paper writes 8 billion
   116-byte items; we write a scaled-down stream over the same key space
   and report the same three views. *)

open Harness
module Io_stats = Wip_storage.Io_stats
module Store_intf = Wip_kv.Store_intf

let engines ~scale =
  [
    make_wipdb ~scale ();
    make_wipdb_s ~scale ();
    make_leveldb ~scale ();
    make_rocksdb ~scale ();
    make_rocksdb_bigmem ~scale ();
    make_pebblesdb ~scale ();
  ]

let run ~ops () =
  section "Figure 6: write performance (uniform keys, 16 B keys / 100 B values)";
  let samples = 8 in
  let results =
    List.map
      (fun mk ->
        let engine = mk in
        let dist =
          Wip_workload.Distribution.make Wip_workload.Distribution.Uniform
            ~space:key_space ~seed:6L
        in
        let stats = Store_intf.io_stats engine.store in
        let marks = ref [] in
        let next_mark = ref (ops / samples) in
        let window_t0 = ref (Unix.gettimeofday ()) in
        let window_ops = ref 0 in
        let last_done = ref 0 in
        let on_progress ~done_ =
          window_ops := !window_ops + (done_ - !last_done);
          last_done := done_;
          if done_ >= !next_mark then begin
            let t1 = Unix.gettimeofday () in
            let thr = float_of_int !window_ops /. Float.max 1e-9 (t1 -. !window_t0) in
            marks := (done_, thr, Io_stats.write_amplification stats) :: !marks;
            window_t0 := t1;
            window_ops := 0;
            next_mark := !next_mark + (ops / samples)
          end
        in
        let elapsed = drive_writes ~on_progress engine dist ~ops in
        Store_intf.flush engine.store;
        Store_intf.maintenance engine.store ();
        (engine, elapsed, List.rev !marks))
      (engines ~scale:1)
  in
  (* (a) throughput over time *)
  row "";
  row "-- 6(a) write throughput (Mops/s) at each progress mark --";
  Printf.printf "%-16s" "store";
  for i = 1 to samples do
    Printf.printf "%8d%%" (100 * i / samples)
  done;
  Printf.printf "%10s\n%!" "overall";
  List.iter
    (fun (engine, elapsed, marks) ->
      Printf.printf "%-16s" engine.label;
      List.iter (fun (_, thr, _) -> Printf.printf "%9.3f" (mops thr)) marks;
      Printf.printf "%10.3f\n%!" (mops (float_of_int ops /. elapsed)))
    results;
  (* (b) WA over time *)
  row "";
  row "-- 6(b) cumulative write amplification at each progress mark --";
  Printf.printf "%-16s" "store";
  for i = 1 to samples do
    Printf.printf "%8d%%" (100 * i / samples)
  done;
  Printf.printf "%10s\n%!" "final";
  List.iter
    (fun (engine, _, marks) ->
      Printf.printf "%-16s" engine.label;
      List.iter (fun (_, _, wa) -> Printf.printf "%9.2f" wa) marks;
      let stats = Store_intf.io_stats engine.store in
      Printf.printf "%10.2f\n%!" (Io_stats.write_amplification stats))
    results;
  (* (c) per-level I/O *)
  row "";
  row "-- 6(c) I/O breakdown (device bytes) --";
  List.iter
    (fun (engine, _, _) ->
      let stats = Store_intf.io_stats engine.store in
      row "%s:" engine.label;
      row "  flush (into L0):        W %-12s R %s"
        (human_bytes (Io_stats.written_by stats Io_stats.Flush))
        (human_bytes (Io_stats.read_by stats Io_stats.Flush));
      List.iter
        (fun (level, bytes) ->
          row "  compaction into L%d:     W %-12s R %s" level
            (human_bytes bytes)
            (human_bytes (Io_stats.read_by stats (Io_stats.Compaction_read (level - 1)))))
        (Io_stats.per_level_write stats);
      row "  splits/guards:          W %-12s R %s"
        (human_bytes (Io_stats.written_by stats Io_stats.Split))
        (human_bytes (Io_stats.read_by stats Io_stats.Split));
      row "  wal:                    W %s"
        (human_bytes (Io_stats.written_by stats Io_stats.Wal));
      row "  TOTAL (store writes):   %s for %s of user data  (WA %.2f)"
        (human_bytes (Io_stats.store_bytes_written stats))
        (human_bytes (Io_stats.user_bytes stats))
        (Io_stats.write_amplification stats))
    results
