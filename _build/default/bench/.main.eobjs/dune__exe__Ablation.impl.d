bench/ablation.ml: Harness List Printf Wip_kv Wip_storage Wip_util Wip_workload Wipdb
