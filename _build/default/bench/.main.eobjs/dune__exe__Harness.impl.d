bench/harness.ml: Bytes List Printf Unix Wip_flsm Wip_kv Wip_lsm Wip_memtable Wip_storage Wip_util Wip_workload Wipdb
