bench/fig6.ml: Float Harness List Printf Unix Wip_kv Wip_storage Wip_workload
