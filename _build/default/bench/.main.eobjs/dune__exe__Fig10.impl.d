bench/fig10.ml: Harness Int64 List Printf Unix Wip_kv Wip_stats Wip_util Wip_workload Wipdb
