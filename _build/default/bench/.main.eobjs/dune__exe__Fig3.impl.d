bench/fig3.ml: Array Harness Int64 List Printf Unix Wip_memtable Wip_util
