bench/fig11.ml: Array Harness List Printf Wip_kv Wip_workload
