bench/main.mli:
