bench/micro.ml: Analyze Array Bechamel Benchmark Harness Hashtbl Instance Int64 Measure Printf Staged Test Time Toolkit Wip_bloom Wip_memtable Wip_storage Wip_util Wip_wal Wipdb
