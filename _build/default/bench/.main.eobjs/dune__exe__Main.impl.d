bench/main.ml: Ablation Array Fig10 Fig11 Fig2 Fig3 Fig6 Fig7 Fig8 Fig9 Gc List Micro Printf Sys Unix
