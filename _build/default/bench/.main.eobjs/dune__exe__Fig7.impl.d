bench/fig7.ml: Array Float Harness Int64 List String Unix Wip_storage Wip_util Wip_workload Wipdb
