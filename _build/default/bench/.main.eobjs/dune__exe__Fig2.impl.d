bench/fig2.ml: Array Float Harness List Printf String Wip_lsm Wip_util Wip_workload
