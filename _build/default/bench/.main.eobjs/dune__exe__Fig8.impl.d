bench/fig8.ml: Array Harness Int64 List Printf String Unix Wip_kv Wip_stats Wip_util Wip_workload Wipdb
