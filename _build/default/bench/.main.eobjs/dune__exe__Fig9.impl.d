bench/fig9.ml: Harness List Printf Unix Wip_kv Wip_storage Wip_workload Wipdb
