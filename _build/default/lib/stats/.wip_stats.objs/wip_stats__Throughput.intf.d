lib/stats/throughput.mli:
