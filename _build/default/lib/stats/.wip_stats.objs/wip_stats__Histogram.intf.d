lib/stats/histogram.mli:
