lib/stats/throughput.ml: Float List Unix
