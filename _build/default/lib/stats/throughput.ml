type t = {
  window : int;
  start : float;
  mutable ops : int;
  mutable window_ops : int;
  mutable window_start : float;
  mutable bins : (int * float) list; (* reverse *)
}

let now () = Unix.gettimeofday ()

let create ~window =
  let t0 = now () in
  { window; start = t0; ops = 0; window_ops = 0; window_start = t0; bins = [] }

let tick t ?(n = 1) () =
  t.ops <- t.ops + n;
  t.window_ops <- t.window_ops + n;
  if t.window_ops >= t.window then begin
    let t1 = now () in
    let dt = Float.max 1e-9 (t1 -. t.window_start) in
    t.bins <- (t.ops, float_of_int t.window_ops /. dt) :: t.bins;
    t.window_ops <- 0;
    t.window_start <- t1
  end

let series t = List.rev t.bins

let total_ops t = t.ops

let elapsed_seconds t = now () -. t.start
