let sub_buckets = 16

let bucket_count = 64 * sub_buckets

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable minimum : float;
  mutable maximum : float;
}

let create () =
  {
    buckets = Array.make bucket_count 0;
    total = 0;
    sum = 0.0;
    minimum = infinity;
    maximum = neg_infinity;
  }

(* Bucket index: exponent of 2 selects the decade, the next [sub_buckets]
   fractions subdivide it. Values < 1 land in bucket 0. *)
let bucket_of v =
  if v < 1.0 then 0
  else begin
    let e = int_of_float (Float.log2 v) in
    let base = 2.0 ** float_of_int e in
    let frac = (v -. base) /. base in
    let idx = (e * sub_buckets) + int_of_float (frac *. float_of_int sub_buckets) in
    min (bucket_count - 1) (max 0 idx)
  end

let lower_bound_of_bucket i =
  let e = i / sub_buckets and f = i mod sub_buckets in
  let base = 2.0 ** float_of_int e in
  base +. (base *. float_of_int f /. float_of_int sub_buckets)

let upper_bound_of_bucket i =
  let e = i / sub_buckets and f = i mod sub_buckets in
  let base = 2.0 ** float_of_int e in
  base +. (base *. float_of_int (f + 1) /. float_of_int sub_buckets)

let add t v =
  let v = max v 0.0 in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.minimum then t.minimum <- v;
  if v > t.maximum then t.maximum <- v

let count t = t.total

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let threshold = float_of_int t.total *. p /. 100.0 in
    let rec walk i seen =
      if i >= bucket_count then t.maximum
      else
        let seen' = seen + t.buckets.(i) in
        if float_of_int seen' >= threshold && t.buckets.(i) > 0 then begin
          (* Linear interpolation within the bucket. *)
          let lo = lower_bound_of_bucket i and hi = upper_bound_of_bucket i in
          let within =
            (threshold -. float_of_int seen) /. float_of_int t.buckets.(i)
          in
          let v = lo +. ((hi -. lo) *. within) in
          Float.min v t.maximum
        end
        else walk (i + 1) seen'
    in
    walk 0 0
  end

let max_value t = if t.total = 0 then 0.0 else t.maximum

let min_value t = if t.total = 0 then 0.0 else t.minimum

let merge dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.minimum < dst.minimum then dst.minimum <- src.minimum;
  if src.maximum > dst.maximum then dst.maximum <- src.maximum

let reset t =
  Array.fill t.buckets 0 bucket_count 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.minimum <- infinity;
  t.maximum <- neg_infinity
