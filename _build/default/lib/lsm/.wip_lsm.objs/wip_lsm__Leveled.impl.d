lib/lsm/leveled.ml: Array Hashtbl Int64 Key_frac List Printf Seq String Wip_manifest Wip_memtable Wip_sstable Wip_storage Wip_util Wip_wal
