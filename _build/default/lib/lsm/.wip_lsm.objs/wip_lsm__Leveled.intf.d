lib/lsm/leveled.mli: Wip_kv Wip_sstable Wip_storage
