lib/lsm/key_frac.ml: Char Int64 String
