(* Position of a fixed-width decimal key within a numeric key space, as a
   fraction in [0, 1]. Non-numeric keys fall back to interpreting the first
   8 bytes as a big-endian integer over the byte space. *)
let of_key key ~space =
  match Int64.of_string_opt key with
  | Some v -> Int64.to_float v /. Int64.to_float space
  | None ->
    let v = ref 0.0 in
    for i = 0 to min 7 (String.length key - 1) do
      v := (!v *. 256.0) +. float_of_int (Char.code key.[i])
    done;
    !v /. (256.0 ** float_of_int (min 8 (String.length key)))
