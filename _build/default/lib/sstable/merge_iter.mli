(** K-way merge of internal-key-ordered sequences.

    Inputs must each be sorted by {!Wip_util.Ikey.compare}. The merged output
    preserves that order; with [dedup_user_keys] the newest version of each
    user key survives and older versions are dropped; with [drop_tombstones]
    surviving deletion markers are also elided (legal only when merging into
    the bottommost data of a key range). *)

val merge : (Wip_util.Ikey.t * string) Seq.t list -> (Wip_util.Ikey.t * string) Seq.t

val compact :
  ?dedup_user_keys:bool ->
  ?drop_tombstones:bool ->
  ?snapshot_floor:int64 ->
  (Wip_util.Ikey.t * string) Seq.t list ->
  (Wip_util.Ikey.t * string) Seq.t
(** [snapshot_floor] (default: keep-newest-only regardless) protects
    versions newer than the floor from dedup so that open snapshots keep
    reading consistent data; versions at or below the floor collapse to the
    newest one. *)
