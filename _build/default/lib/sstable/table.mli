(** Sorted tables (SSTables / LevelTables): builder and reader.

    A table stores internal-key/value entries in ascending
    {!Wip_util.Ikey.compare} order, carved into prefix-compressed blocks with
    an index block, a bloom filter over user keys, and a CRC-protected
    footer. Tables are immutable once finished. *)

type meta = {
  name : string;  (** file name within the {!Wip_storage.Env.t} *)
  size : int;  (** file size in bytes *)
  entry_count : int;
  smallest : string;  (** smallest user key; "" iff the table is empty *)
  largest : string;
}

module Builder : sig
  type t

  val create :
    Wip_storage.Env.t ->
    name:string ->
    category:Wip_storage.Io_stats.category ->
    ?block_size:int ->
    ?bits_per_key:int ->
    ?expected_keys:int ->
    unit ->
    t
  (** [block_size] defaults to 4096 bytes, [bits_per_key] to 10. *)

  val add : t -> Wip_util.Ikey.t -> string -> unit
  (** Keys must arrive in strictly ascending internal-key order. *)

  val entry_count : t -> int

  val estimated_size : t -> int

  val finish : t -> meta
  (** Flushes remaining data, writes filter, index and footer, syncs and
      closes the file. *)

  val abandon : t -> unit
  (** Close and delete the partially written file. *)
end

module Reader : sig
  type t

  val open_ : ?cache:Wip_storage.Block_cache.t -> Wip_storage.Env.t -> name:string -> t
  (** Reads footer, index and filter eagerly (accounted as
      [Manifest] traffic); data blocks are read on demand, consulting
      [cache] first when one is supplied (only device reads are charged to
      the {!Wip_storage.Io_stats.category}). *)

  val meta : t -> meta

  val get :
    t ->
    category:Wip_storage.Io_stats.category ->
    string ->
    snapshot:int64 ->
    (Wip_util.Ikey.kind * string * int64) option
  (** Newest version of the user key with sequence [<= snapshot]. The bloom
      filter short-circuits definite misses without any data-block I/O. *)

  val may_contain : t -> string -> bool
  (** Bloom-filter check only. *)

  val iter_from :
    t ->
    category:Wip_storage.Io_stats.category ->
    ?lo:string ->
    unit ->
    (Wip_util.Ikey.t * string) Seq.t
  (** Entries in internal-key order, starting at the first entry whose user
      key is [>= lo] (or the table start). Blocks are fetched lazily. *)

  val close : t -> unit
end

val overlaps : meta -> lo:string -> hi:string -> bool
(** Whether the table's [smallest, largest] user-key range intersects the
    inclusive range [lo, hi]. Empty tables overlap nothing. *)
