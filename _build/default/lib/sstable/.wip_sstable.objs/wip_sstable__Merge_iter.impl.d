lib/sstable/merge_iter.ml: Int64 List Option Seq String Wip_util
