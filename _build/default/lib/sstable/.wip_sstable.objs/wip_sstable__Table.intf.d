lib/sstable/table.mli: Seq Wip_storage Wip_util
