lib/sstable/block.mli:
