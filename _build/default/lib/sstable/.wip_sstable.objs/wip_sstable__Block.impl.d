lib/sstable/block.ml: Buffer List String Table_format Wip_util
