lib/sstable/merge_iter.mli: Seq Wip_util
