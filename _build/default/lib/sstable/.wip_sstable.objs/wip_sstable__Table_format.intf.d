lib/sstable/table_format.mli:
