lib/sstable/table_format.ml: Buffer Int64 String Wip_util
