lib/sstable/table.ml: Array Block Buffer Int64 List Seq String Table_format Wip_bloom Wip_storage Wip_util
