module Coding = Wip_util.Coding

module Builder = struct
  type t = {
    buf : Buffer.t;
    mutable restarts : int list; (* reverse order *)
    mutable counter : int;
    mutable last_key : string;
    mutable entries : int;
  }

  let create () =
    { buf = Buffer.create 4096; restarts = [ 0 ]; counter = 0; last_key = ""; entries = 0 }

  let shared_prefix_length a b =
    let n = min (String.length a) (String.length b) in
    let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
    loop 0

  let add t ~key ~value =
    assert (t.entries = 0 || String.compare t.last_key key <= 0);
    let shared =
      if t.counter < Table_format.restart_interval then
        shared_prefix_length t.last_key key
      else begin
        t.restarts <- Buffer.length t.buf :: t.restarts;
        t.counter <- 0;
        0
      end
    in
    Coding.put_varint t.buf shared;
    Coding.put_varint t.buf (String.length key - shared);
    Coding.put_varint t.buf (String.length value);
    Buffer.add_substring t.buf key shared (String.length key - shared);
    Buffer.add_string t.buf value;
    t.last_key <- key;
    t.counter <- t.counter + 1;
    t.entries <- t.entries + 1

  let size_estimate t =
    Buffer.length t.buf + (4 * List.length t.restarts) + 4

  let entry_count t = t.entries

  let finish t =
    let restarts = List.rev t.restarts in
    List.iter (fun off -> Coding.put_fixed32 t.buf off) restarts;
    Coding.put_fixed32 t.buf (List.length restarts);
    Buffer.contents t.buf
end

let restart_info raw =
  let n = String.length raw in
  let count = Coding.get_fixed32 raw (n - 4) in
  let restart_base = n - 4 - (4 * count) in
  (count, restart_base)

let restart_offset raw restart_base i = Coding.get_fixed32 raw (restart_base + (4 * i))

(* Decode the entry at [off]; returns (key, value, next_off). [prev_key] is
   the fully reconstructed previous key for prefix sharing. *)
let decode_entry raw ~prev_key off =
  let shared, off = Coding.get_varint raw off in
  let unshared, off = Coding.get_varint raw off in
  let vlen, off = Coding.get_varint raw off in
  let key = String.sub prev_key 0 shared ^ String.sub raw off unshared in
  let off = off + unshared in
  let value = String.sub raw off vlen in
  (key, value, off + vlen)

let decode_all raw =
  let _count, restart_base = restart_info raw in
  let rec loop off prev_key acc =
    if off >= restart_base then List.rev acc
    else
      let key, value, off' = decode_entry raw ~prev_key off in
      loop off' key ((key, value) :: acc)
  in
  loop 0 "" []

let seek raw ~compare =
  let count, restart_base = restart_info raw in
  (* Binary search restarts for the last restart whose key has compare < 0. *)
  let key_at_restart i =
    let off = restart_offset raw restart_base i in
    let key, _v, _next = decode_entry raw ~prev_key:"" off in
    key
  in
  let rec bsearch lo hi =
    (* invariant: restart lo's key compares < 0 (or lo = 0); hi's >= 0 or hi = count *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if compare (key_at_restart mid) < 0 then bsearch mid hi else bsearch lo mid
  in
  if count = 0 then None
  else begin
    let start =
      if compare (key_at_restart 0) >= 0 then 0
      else bsearch 0 count
    in
    let rec scan off prev_key =
      if off >= restart_base then None
      else
        let key, value, off' = decode_entry raw ~prev_key off in
        if compare key >= 0 then Some (key, value) else scan off' key
    in
    scan (restart_offset raw restart_base start) ""
  end
