(** Prefix-compressed key/value blocks.

    Entries are appended in ascending key order; every
    {!Table_format.restart_interval} entries a restart point stores the full
    key so that readers can binary-search restarts and then scan forward.
    Keys here are opaque byte strings (the table layer passes encoded
    internal keys). *)

module Builder : sig
  type t

  val create : unit -> t

  val add : t -> key:string -> value:string -> unit

  val size_estimate : t -> int
  (** Bytes the finished (unsealed) block would occupy so far. *)

  val entry_count : t -> int

  val finish : t -> string
  (** Raw block bytes (no CRC trailer); the builder must not be reused. *)
end

val decode_all : string -> (string * string) list
(** All entries of a raw block in order. *)

val seek : string -> compare:(string -> int) -> (string * string) option
(** [seek raw ~compare] returns the first entry whose key [k] satisfies
    [compare k >= 0] — i.e. [compare] is [fun k -> some_order k target]
    negated... concretely: pass [compare = fun k -> cmp k] where [cmp k < 0]
    while [k] precedes the target. Uses restart-point binary search then a
    linear scan. *)
