module Ikey = Wip_util.Ikey

(* A tiny pairing heap keyed by the head element of each sequence; k is
   small (tens), so simplicity beats asymptotics here. *)
type stream = { head : Ikey.t * string; tail : (Ikey.t * string) Seq.t }

let stream_of_seq seq =
  match seq () with
  | Seq.Nil -> None
  | Seq.Cons (head, tail) -> Some { head; tail }

let stream_compare a b = Ikey.compare (fst a.head) (fst b.head)

let merge seqs =
  let streams = List.filter_map stream_of_seq seqs in
  let rec next streams () =
    match streams with
    | [] -> Seq.Nil
    | _ ->
      let best =
        List.fold_left
          (fun acc s ->
            match acc with
            | None -> Some s
            | Some b -> if stream_compare s b < 0 then Some s else acc)
          None streams
      in
      let best = Option.get best in
      let rest = List.filter (fun s -> s != best) streams in
      let streams' =
        match stream_of_seq best.tail with
        | Some s -> s :: rest
        | None -> rest
      in
      Seq.Cons (best.head, next streams')
  in
  next streams

let compact ?(dedup_user_keys = true) ?(drop_tombstones = false)
    ?(snapshot_floor = Int64.max_int) seqs =
  let merged = merge seqs in
  (* [emitted_below_floor]: a version of [last_user_key] with seq <= floor has
     already been decided (kept or tombstone-dropped); all older ones are
     shadowed. Versions with seq > floor always survive — an open snapshot may
     still need them. *)
  let rec filter last_user_key emitted_below_floor seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (((ik, _v) as entry), rest) ->
      let same_key =
        match last_user_key with
        | Some k -> String.equal k ik.Ikey.user_key
        | None -> false
      in
      let emitted_below_floor = same_key && emitted_below_floor in
      let key' = Some ik.Ikey.user_key in
      if Int64.compare ik.Ikey.seq snapshot_floor > 0 then
        Seq.Cons (entry, filter key' emitted_below_floor rest)
      else if dedup_user_keys && emitted_below_floor then
        filter key' true rest ()
      else if drop_tombstones && ik.Ikey.kind = Ikey.Deletion then
        filter key' true rest ()
      else Seq.Cons (entry, filter key' true rest)
  in
  filter None false merged
