(** Incremental manifest: durable structural metadata for any engine.

    Every structural change — a group (WipDB bucket / guard span; 0 for the
    leveled stores) created or retired, a table added to or removed from a
    group's level — appends one CRC-framed edit record to the manifest log.
    Recovery replays the edits in order to rebuild the structure exactly
    (including each level's newest-first order), then replays the WAL for
    MemTable contents. Appending deltas (rather than rewriting a snapshot
    per change) keeps manifest traffic negligible, as in LevelDB's
    VersionEdit scheme. *)

type edit =
  | Add_bucket of { id : int; lo : string }
  | Remove_bucket of { id : int }
  | Add_table of {
      bucket : int;
      level : int;
      name : string;
      size : int;
      entry_count : int;
      smallest : string;
      largest : string;
    }
  | Remove_table of { bucket : int; level : int; name : string }
  | Watermark of { seq : int64; next_file : int }

type t

val create : Wip_storage.Env.t -> name:string -> t
(** Starts a fresh manifest log, truncating any existing one. *)

val append : t -> edit -> unit

val sync : t -> unit

val exists : Wip_storage.Env.t -> name:string -> bool

val replay : Wip_storage.Env.t -> name:string -> (edit -> unit) -> unit
(** Feeds every intact edit, in append order, to the callback; stops at the
    first torn or corrupt record. *)

val reopen : Wip_storage.Env.t -> name:string -> t
(** Open for appending after replay (edits continue the same log). *)

val bytes_written : t -> int
