module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Coding = Wip_util.Coding
module Crc32c = Wip_util.Crc32c

type edit =
  | Add_bucket of { id : int; lo : string }
  | Remove_bucket of { id : int }
  | Add_table of {
      bucket : int;
      level : int;
      name : string;
      size : int;
      entry_count : int;
      smallest : string;
      largest : string;
    }
  | Remove_table of { bucket : int; level : int; name : string }
  | Watermark of { seq : int64; next_file : int }

(* The manifest is a chain of append-only segment files
   "<name>-NNNNNN.mft"; a reopen after recovery starts a new segment so we
   never need append-to-existing-file support from the Env. *)
type t = {
  env : Env.t;
  name : string;
  writer : Env.writer;
  mutable written : int;
}

let segment_name name n = Printf.sprintf "%s-%06d.mft" name n

let segments env name =
  Env.list_files env
  |> List.filter (fun f ->
         String.length f > String.length name + 1
         && String.sub f 0 (String.length name + 1) = name ^ "-"
         && Filename.check_suffix f ".mft")
  |> List.sort String.compare

let create env ~name =
  List.iter (Env.delete env) (segments env name);
  {
    env;
    name;
    writer = Env.create_file env (segment_name name 0);
    written = 0;
  }

let encode_edit edit =
  let buf = Buffer.create 64 in
  (match edit with
  | Add_bucket { id; lo } ->
    Buffer.add_char buf '\001';
    Coding.put_varint buf id;
    Coding.put_length_prefixed buf lo
  | Remove_bucket { id } ->
    Buffer.add_char buf '\002';
    Coding.put_varint buf id
  | Add_table { bucket; level; name; size; entry_count; smallest; largest } ->
    Buffer.add_char buf '\003';
    Coding.put_varint buf bucket;
    Coding.put_varint buf level;
    Coding.put_length_prefixed buf name;
    Coding.put_varint buf size;
    Coding.put_varint buf entry_count;
    Coding.put_length_prefixed buf smallest;
    Coding.put_length_prefixed buf largest
  | Remove_table { bucket; level; name } ->
    Buffer.add_char buf '\004';
    Coding.put_varint buf bucket;
    Coding.put_varint buf level;
    Coding.put_length_prefixed buf name
  | Watermark { seq; next_file } ->
    Buffer.add_char buf '\005';
    Coding.put_fixed64 buf seq;
    Coding.put_varint buf next_file);
  Buffer.contents buf

let decode_edit payload =
  let tag = payload.[0] in
  match tag with
  | '\001' ->
    let id, off = Coding.get_varint payload 1 in
    let lo, _ = Coding.get_length_prefixed payload off in
    Add_bucket { id; lo }
  | '\002' ->
    let id, _ = Coding.get_varint payload 1 in
    Remove_bucket { id }
  | '\003' ->
    let bucket, off = Coding.get_varint payload 1 in
    let level, off = Coding.get_varint payload off in
    let name, off = Coding.get_length_prefixed payload off in
    let size, off = Coding.get_varint payload off in
    let entry_count, off = Coding.get_varint payload off in
    let smallest, off = Coding.get_length_prefixed payload off in
    let largest, _ = Coding.get_length_prefixed payload off in
    Add_table { bucket; level; name; size; entry_count; smallest; largest }
  | '\004' ->
    let bucket, off = Coding.get_varint payload 1 in
    let level, off = Coding.get_varint payload off in
    let name, _ = Coding.get_length_prefixed payload off in
    Remove_table { bucket; level; name }
  | '\005' ->
    let seq = Coding.get_fixed64 payload 1 in
    let next_file, _ = Coding.get_varint payload 9 in
    Watermark { seq; next_file }
  | c -> invalid_arg (Printf.sprintf "Manifest: bad edit tag %d" (Char.code c))

let append t edit =
  let payload = encode_edit edit in
  let buf = Buffer.create (String.length payload + 8) in
  Coding.put_fixed32 buf (Crc32c.masked (Crc32c.string payload));
  Coding.put_fixed32 buf (String.length payload);
  Buffer.add_string buf payload;
  let bytes = Buffer.contents buf in
  Env.append t.writer ~category:Io_stats.Manifest bytes;
  t.written <- t.written + String.length bytes

let sync t = Env.sync t.writer

let exists env ~name = segments env name <> []

let replay env ~name emit =
  List.iter
    (fun seg ->
      let reader = Env.open_file env seg in
      let contents = Env.read_all reader ~category:Io_stats.Manifest in
      Env.close_reader reader;
      let n = String.length contents in
      let rec loop off =
        if off + 8 <= n then begin
          let stored = Coding.get_fixed32 contents off in
          let len = Coding.get_fixed32 contents (off + 4) in
          if off + 8 + len <= n then begin
            let payload = String.sub contents (off + 8) len in
            if Crc32c.masked (Crc32c.string payload) = stored then begin
              emit (decode_edit payload);
              loop (off + 8 + len)
            end
          end
        end
      in
      loop 0)
    (segments env name)

let reopen env ~name =
  let next =
    match List.rev (segments env name) with
    | [] -> 0
    | last :: _ ->
      let base = Filename.chop_suffix last ".mft" in
      1
      + int_of_string
          (String.sub base
             (String.length name + 1)
             (String.length base - String.length name - 1))
  in
  { env; name; writer = Env.create_file env (segment_name name next); written = 0 }

let bytes_written t = t.written
