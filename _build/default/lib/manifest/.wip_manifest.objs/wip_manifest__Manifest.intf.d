lib/manifest/manifest.mli: Wip_storage
