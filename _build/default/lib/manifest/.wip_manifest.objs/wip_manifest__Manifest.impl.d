lib/manifest/manifest.ml: Buffer Char Filename List Printf String Wip_storage Wip_util
