lib/storage/env.mli: Io_stats
