lib/storage/block_cache.mli:
