lib/storage/block_cache.ml: Hashtbl List String
