lib/storage/env.ml: Array Buffer Filename Hashtbl Io_stats List Printf String Sys Unix
