(** Storage environment.

    [Env] abstracts the device under the store: file creation, sequential
    append, random reads, deletion, directory listing — with every byte of
    traffic attributed to an {!Io_stats.category}. Two backends:

    - {!in_memory}: files are byte buffers. Deterministic, fast, and the
      default for tests and benchmarks. Substitutes for the paper's PCIe SSD
      per DESIGN.md — the experiments measure bytes moved, which this backend
      accounts exactly.
    - {!posix}: real files under a root directory, for end-to-end runs.

    Paths are flat strings ("000017.lvt", "wal/000002.log", ...). *)

type t

type writer
(** Append-only file handle. *)

type reader
(** Random-access read handle over an immutable (closed) file. *)

val in_memory : unit -> t

val posix : root:string -> t
(** Files live under [root]; the directory is created if missing. *)

val stats : t -> Io_stats.t

(** {1 Writing} *)

val create_file : t -> string -> writer
(** Truncates any existing file of that name. *)

val append : writer -> category:Io_stats.category -> string -> unit

val writer_offset : writer -> int
(** Bytes written so far. *)

val sync : writer -> unit
(** Durability barrier. No-op in memory; fsync on POSIX. *)

val close_writer : writer -> unit

(** {1 Reading} *)

val open_file : t -> string -> reader
(** @raise Not_found if the file does not exist. *)

val read : reader -> category:Io_stats.category -> pos:int -> len:int -> string
(** @raise Invalid_argument when the range is out of bounds. *)

val read_all : reader -> category:Io_stats.category -> string

val file_size : reader -> int

val close_reader : reader -> unit

(** {1 Namespace} *)

val exists : t -> string -> bool

val delete : t -> string -> unit
(** Idempotent. *)

val rename : t -> src:string -> dst:string -> unit

val list_files : t -> string list
(** All live file names, sorted. *)

val total_live_bytes : t -> int
(** Sum of sizes of all live files — the store's device footprint. *)
