type backend =
  | Mem of (string, Buffer.t) Hashtbl.t
  | Posix of string (* root directory *)

type t = { backend : backend; stats : Io_stats.t }

type writer = {
  w_env : t;
  w_name : string;
  mutable w_off : int;
  w_impl : w_impl;
}

and w_impl = W_mem of Buffer.t | W_posix of out_channel

type reader = {
  r_env : t;
  r_size : int;
  r_impl : r_impl;
}

and r_impl = R_mem of string | R_posix of in_channel

let in_memory () = { backend = Mem (Hashtbl.create 64); stats = Io_stats.create () }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let posix ~root =
  mkdir_p root;
  { backend = Posix root; stats = Io_stats.create () }

let stats t = t.stats

let posix_path root name =
  (* Flatten any separators so the namespace stays flat on disk. *)
  let flat = String.map (fun c -> if c = '/' then '_' else c) name in
  Filename.concat root flat

let create_file t name =
  match t.backend with
  | Mem files ->
    let buf = Buffer.create 4096 in
    Hashtbl.replace files name buf;
    { w_env = t; w_name = name; w_off = 0; w_impl = W_mem buf }
  | Posix root ->
    let oc = open_out_bin (posix_path root name) in
    { w_env = t; w_name = name; w_off = 0; w_impl = W_posix oc }

let append w ~category s =
  Io_stats.record_write w.w_env.stats category (String.length s);
  w.w_off <- w.w_off + String.length s;
  match w.w_impl with
  | W_mem buf -> Buffer.add_string buf s
  | W_posix oc -> output_string oc s

let writer_offset w = w.w_off

let sync w =
  match w.w_impl with W_mem _ -> () | W_posix oc -> flush oc

let close_writer w =
  match w.w_impl with W_mem _ -> () | W_posix oc -> close_out oc

let open_file t name =
  match t.backend with
  | Mem files ->
    let buf = try Hashtbl.find files name with Not_found -> raise Not_found in
    let contents = Buffer.contents buf in
    { r_env = t; r_size = String.length contents; r_impl = R_mem contents }
  | Posix root ->
    let path = posix_path root name in
    if not (Sys.file_exists path) then raise Not_found;
    let ic = open_in_bin path in
    { r_env = t; r_size = in_channel_length ic; r_impl = R_posix ic }

let read r ~category ~pos ~len =
  if pos < 0 || len < 0 || pos + len > r.r_size then
    invalid_arg
      (Printf.sprintf "Env.read: range [%d, %d+%d) out of bounds (size %d)"
         pos pos len r.r_size);
  Io_stats.record_read r.r_env.stats category len;
  match r.r_impl with
  | R_mem s -> String.sub s pos len
  | R_posix ic ->
    seek_in ic pos;
    really_input_string ic len

let read_all r ~category = read r ~category ~pos:0 ~len:r.r_size

let file_size r = r.r_size

let close_reader r =
  match r.r_impl with R_mem _ -> () | R_posix ic -> close_in ic

let exists t name =
  match t.backend with
  | Mem files -> Hashtbl.mem files name
  | Posix root -> Sys.file_exists (posix_path root name)

let delete t name =
  match t.backend with
  | Mem files -> Hashtbl.remove files name
  | Posix root ->
    let path = posix_path root name in
    if Sys.file_exists path then Sys.remove path

let rename t ~src ~dst =
  match t.backend with
  | Mem files ->
    (match Hashtbl.find_opt files src with
     | None -> raise Not_found
     | Some buf ->
       Hashtbl.remove files src;
       Hashtbl.replace files dst buf)
  | Posix root -> Sys.rename (posix_path root src) (posix_path root dst)

let list_files t =
  match t.backend with
  | Mem files ->
    Hashtbl.fold (fun name _ acc -> name :: acc) files []
    |> List.sort String.compare
  | Posix root ->
    Sys.readdir root |> Array.to_list |> List.sort String.compare

let total_live_bytes t =
  match t.backend with
  | Mem files -> Hashtbl.fold (fun _ buf acc -> acc + Buffer.length buf) files 0
  | Posix root ->
    Sys.readdir root |> Array.to_list
    |> List.fold_left
         (fun acc name ->
           acc + (Unix.stat (Filename.concat root name)).Unix.st_size)
         0
