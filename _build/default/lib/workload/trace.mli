(** Workload traces: record a stream of store operations to an Env file and
    replay it later against any engine.

    Traces make cross-engine comparisons exactly reproducible (every engine
    sees the identical operation sequence) and let a problematic workload be
    captured once and replayed under a debugger. Records are CRC-framed like
    the WAL, so a truncated trace replays its intact prefix. *)

type op =
  | Put of string * string
  | Delete of string
  | Get of string
  | Scan of { lo : string; hi : string; limit : int }

module Writer : sig
  type t

  val create : Wip_storage.Env.t -> name:string -> t

  val record : t -> op -> unit

  val close : t -> unit
  (** Flush and close; [record] must not be called afterwards. *)

  val op_count : t -> int
end

val replay : Wip_storage.Env.t -> name:string -> (op -> unit) -> int
(** Feed every intact operation, in order, to the callback; returns the
    number of operations replayed. Stops silently at a torn tail. *)

val replay_into :
  Wip_storage.Env.t -> name:string -> Wip_kv.Store_intf.store -> int
(** Drive a store with the trace: puts/deletes mutate, gets/scans execute
    and have their results discarded. Returns operations applied. *)
