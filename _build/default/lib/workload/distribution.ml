module Rng = Wip_util.Rng

type shape =
  | Uniform
  | Zipfian of { theta : float; scrambled : bool }
  | Exponential of { rate : float }
  | Reversed_exponential of { rate : float }
  | Normal of { mean_frac : float; stddev_frac : float }
  | Sequential
  | Latest of { theta : float }

(* YCSB-style zipfian over [0, n): precomputes zeta(n, theta) once. *)
type zipf_state = {
  n : int64;
  theta : float;
  zeta_n : float;
  zeta2 : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  let n = Int64.to_int n in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let make_zipf n theta =
  let zeta_n = zeta n theta in
  let zeta2 = zeta 2L theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. Int64.to_float n) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zeta_n))
  in
  { n; theta; zeta_n; zeta2; alpha; eta }

let zipf_sample z rng =
  let u = Rng.float rng in
  let uz = u *. z.zeta_n in
  if uz < 1.0 then 0L
  else if uz < 1.0 +. (0.5 ** z.theta) then 1L
  else
    Int64.of_float
      (Int64.to_float z.n
      *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha))

(* FNV-1a 64-bit scrambling, as YCSB's ScrambledZipfian does. *)
let fnv64 v =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to 7 do
    let byte = Int64.(to_int (logand (shift_right_logical v (8 * i)) 0xffL)) in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime
  done;
  Int64.logand !h Int64.max_int

type state =
  | S_uniform
  | S_zipf of { z : zipf_state; scrambled : bool }
  | S_exp of { rate : float; reversed : bool }
  | S_normal of { mean : float; stddev : float }
  | S_seq of { mutable counter : int64 }
  | S_latest of { z : zipf_state; mutable bound : int64 }

type t = { space : int64; rng : Rng.t; state : state }

let make shape ~space ~seed =
  let rng = Rng.create ~seed in
  let state =
    match shape with
    | Uniform -> S_uniform
    | Zipfian { theta; scrambled } ->
      S_zipf { z = make_zipf space theta; scrambled }
    | Exponential { rate } -> S_exp { rate; reversed = false }
    | Reversed_exponential { rate } -> S_exp { rate; reversed = true }
    | Normal { mean_frac; stddev_frac } ->
      S_normal
        {
          mean = mean_frac *. Int64.to_float space;
          stddev = stddev_frac *. Int64.to_float space;
        }
    | Sequential -> S_seq { counter = 0L }
    | Latest { theta } ->
      (* Zipf over a small initial window; rescaled on set_bound via
         modular fold (YCSB uses zipf over item count directly; we zipf over
         the full space and fold into [0, bound)). *)
      S_latest { z = make_zipf space theta; bound = 1L }
  in
  { space; rng; state }

let clamp t v =
  if Int64.compare v 0L < 0 then 0L
  else if Int64.compare v t.space >= 0 then Int64.sub t.space 1L
  else v

let rec gaussian rng =
  (* Box–Muller (polar form). *)
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let v = (2.0 *. Rng.float rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then gaussian rng
  else u *. sqrt (-2.0 *. log s /. s)

let next t =
  match t.state with
  | S_uniform -> Rng.int64 t.rng t.space
  | S_zipf { z; scrambled } ->
    let v = zipf_sample z t.rng in
    if scrambled then Int64.rem (fnv64 v) t.space else clamp t v
  | S_exp { rate; reversed } ->
    let u = Rng.float t.rng in
    let u = if u <= 0.0 then 1e-12 else u in
    let x = -.log u /. rate in
    (* x ~ Exp(rate) in units of the whole space. *)
    let pos = Int64.of_float (x *. Int64.to_float t.space) in
    let pos = clamp t pos in
    if reversed then Int64.sub (Int64.sub t.space 1L) pos else pos
  | S_normal { mean; stddev } ->
    clamp t (Int64.of_float (mean +. (stddev *. gaussian t.rng)))
  | S_seq s ->
    let v = s.counter in
    s.counter <- Int64.add s.counter 1L;
    Int64.rem v t.space
  | S_latest s ->
    let v = zipf_sample s.z t.rng in
    let offset = Int64.rem v (Int64.max 1L s.bound) in
    Int64.sub (Int64.max 1L s.bound) (Int64.add offset 1L)

let set_bound t b =
  match t.state with
  | S_latest s -> s.bound <- b
  | S_uniform | S_zipf _ | S_exp _ | S_normal _ | S_seq _ -> ()

let shape_name = function
  | Uniform -> "uniform"
  | Zipfian _ -> "zipfian"
  | Exponential _ -> "exponential"
  | Reversed_exponential _ -> "reversed-exponential"
  | Normal _ -> "normal"
  | Sequential -> "sequential"
  | Latest _ -> "latest"
