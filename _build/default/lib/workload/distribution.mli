(** Key-space position generators.

    A generator samples positions in [\[0, space)]. The shapes match the
    paper's workloads: uniform, zipfian (YCSB-style with optional hash
    scrambling), exponential (mass at the low end of the space),
    reversed-exponential, normal (mass in the middle), sequential, and
    "latest" (skewed toward the most recently inserted record, YCSB-D). *)

type shape =
  | Uniform
  | Zipfian of { theta : float; scrambled : bool }
  | Exponential of { rate : float }
      (** Density ∝ exp(-rate·x/space); [rate] ≈ 10 concentrates ~99.995% of
          the mass in the first half of the space. *)
  | Reversed_exponential of { rate : float }
  | Normal of { mean_frac : float; stddev_frac : float }
  | Sequential
  | Latest of { theta : float }
      (** Position = max_position - zipfian_sample; requires the caller to
          grow [max] via {!set_bound}. *)

type t

val make : shape -> space:int64 -> seed:int64 -> t

val next : t -> int64
(** A position in [\[0, bound)] where [bound] is [space] (or the dynamic
    bound for [Latest] / the running counter for [Sequential]). *)

val set_bound : t -> int64 -> unit
(** For [Latest]: advance the "newest record" bound. Ignored otherwise. *)

val shape_name : shape -> string
