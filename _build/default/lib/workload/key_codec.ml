let key_bytes = 16

let encode v = Printf.sprintf "%016Ld" v

let decode s =
  if String.length s <> key_bytes then
    invalid_arg "Key_codec.decode: wrong length";
  try Int64.of_string s
  with Failure _ -> invalid_arg "Key_codec.decode: not numeric"

let fraction_of_space s ~space =
  let v = decode s in
  Int64.to_float v /. Int64.to_float space
