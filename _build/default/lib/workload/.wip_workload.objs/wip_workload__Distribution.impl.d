lib/workload/distribution.ml: Int64 Wip_util
