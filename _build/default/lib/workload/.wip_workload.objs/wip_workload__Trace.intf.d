lib/workload/trace.mli: Wip_kv Wip_storage
