lib/workload/trace.ml: Buffer Printf String Wip_kv Wip_storage Wip_util
