lib/workload/key_codec.mli:
