lib/workload/ycsb.ml: Bytes Distribution Int64 Key_codec Wip_util
