lib/workload/ycsb.mli:
