lib/workload/distribution.mli:
