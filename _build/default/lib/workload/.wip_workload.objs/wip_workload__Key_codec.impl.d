lib/workload/key_codec.ml: Int64 Printf String
