module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Coding = Wip_util.Coding
module Crc32c = Wip_util.Crc32c

type op =
  | Put of string * string
  | Delete of string
  | Get of string
  | Scan of { lo : string; hi : string; limit : int }

let encode_op op =
  let buf = Buffer.create 64 in
  (match op with
  | Put (k, v) ->
    Buffer.add_char buf 'P';
    Coding.put_length_prefixed buf k;
    Coding.put_length_prefixed buf v
  | Delete k ->
    Buffer.add_char buf 'D';
    Coding.put_length_prefixed buf k
  | Get k ->
    Buffer.add_char buf 'G';
    Coding.put_length_prefixed buf k
  | Scan { lo; hi; limit } ->
    Buffer.add_char buf 'S';
    Coding.put_length_prefixed buf lo;
    Coding.put_length_prefixed buf hi;
    Coding.put_varint buf limit);
  Buffer.contents buf

let decode_op payload =
  match payload.[0] with
  | 'P' ->
    let k, off = Coding.get_length_prefixed payload 1 in
    let v, _ = Coding.get_length_prefixed payload off in
    Put (k, v)
  | 'D' ->
    let k, _ = Coding.get_length_prefixed payload 1 in
    Delete k
  | 'G' ->
    let k, _ = Coding.get_length_prefixed payload 1 in
    Get k
  | 'S' ->
    let lo, off = Coding.get_length_prefixed payload 1 in
    let hi, off = Coding.get_length_prefixed payload off in
    let limit, _ = Coding.get_varint payload off in
    Scan { lo; hi; limit }
  | c -> invalid_arg (Printf.sprintf "Trace: bad op tag %c" c)

module Writer = struct
  type t = { writer : Env.writer; mutable ops : int; mutable closed : bool }

  let create env ~name =
    { writer = Env.create_file env name; ops = 0; closed = false }

  let record t op =
    assert (not t.closed);
    let payload = encode_op op in
    let buf = Buffer.create (String.length payload + 8) in
    Coding.put_fixed32 buf (Crc32c.masked (Crc32c.string payload));
    Coding.put_fixed32 buf (String.length payload);
    Buffer.add_string buf payload;
    Env.append t.writer ~category:Io_stats.Manifest (Buffer.contents buf);
    t.ops <- t.ops + 1

  let close t =
    if not t.closed then begin
      Env.sync t.writer;
      Env.close_writer t.writer;
      t.closed <- true
    end

  let op_count t = t.ops
end

let replay env ~name emit =
  let reader = Env.open_file env name in
  let contents = Env.read_all reader ~category:Io_stats.Manifest in
  Env.close_reader reader;
  let n = String.length contents in
  let count = ref 0 in
  let rec loop off =
    if off + 8 <= n then begin
      let stored = Coding.get_fixed32 contents off in
      let len = Coding.get_fixed32 contents (off + 4) in
      if off + 8 + len <= n then begin
        let payload = String.sub contents (off + 8) len in
        if Crc32c.masked (Crc32c.string payload) = stored then begin
          emit (decode_op payload);
          incr count;
          loop (off + 8 + len)
        end
      end
    end
  in
  loop 0;
  !count

let replay_into env ~name store =
  replay env ~name (fun op ->
      match op with
      | Put (key, value) -> Wip_kv.Store_intf.put store ~key ~value
      | Delete key -> Wip_kv.Store_intf.delete store ~key
      | Get key -> ignore (Wip_kv.Store_intf.get store key)
      | Scan { lo; hi; limit } ->
        ignore (Wip_kv.Store_intf.scan store ~lo ~hi ~limit ()))
