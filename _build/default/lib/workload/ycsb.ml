module Rng = Wip_util.Rng

type workload = Load | A | B | C | D | E | F

type op =
  | Read of string
  | Update of string * string
  | Insert of string * string
  | Scan of string * int
  | Read_modify_write of string * string

type t = {
  workload : workload;
  value_size : int;
  rng : Rng.t;
  key_dist : Distribution.t;
  mutable insert_counter : int64;
  space : int64;
}

let zipf_theta = 0.99

let create workload ~record_count ?(value_size = 100) ?(seed = 42L) () =
  let space = Int64.of_int record_count in
  let key_dist =
    let shape =
      match workload with
      | Load -> Distribution.Sequential
      | A | B | C | E | F ->
        Distribution.Zipfian { theta = zipf_theta; scrambled = true }
      | D -> Distribution.Latest { theta = zipf_theta }
    in
    Distribution.make shape ~space ~seed
  in
  Distribution.set_bound key_dist space;
  {
    workload;
    value_size;
    rng = Rng.create ~seed:(Int64.add seed 1L);
    key_dist;
    insert_counter = space;
    space;
  }

let value_for t key =
  (* Deterministic pseudo-random payload derived from the key. *)
  let h = Wip_util.Hashing.hash64 key in
  let rng = Rng.create ~seed:h in
  Bytes.to_string (Rng.bytes rng t.value_size)

let existing_key t = Key_codec.encode (Distribution.next t.key_dist)

let fresh_key t =
  let k = t.insert_counter in
  t.insert_counter <- Int64.add k 1L;
  Distribution.set_bound t.key_dist t.insert_counter;
  Key_codec.encode k

let next t =
  let roll = Rng.int t.rng 100 in
  match t.workload with
  | Load ->
    let k = fresh_key t in
    Insert (k, value_for t k)
  | A ->
    if roll < 50 then Read (existing_key t)
    else
      let k = existing_key t in
      Update (k, value_for t k)
  | B ->
    if roll < 95 then Read (existing_key t)
    else
      let k = existing_key t in
      Update (k, value_for t k)
  | C -> Read (existing_key t)
  | D ->
    if roll < 95 then Read (existing_key t)
    else
      let k = fresh_key t in
      Insert (k, value_for t k)
  | E ->
    if roll < 95 then Scan (existing_key t, 1 + Rng.int t.rng 100)
    else
      let k = fresh_key t in
      Insert (k, value_for t k)
  | F ->
    if roll < 50 then Read (existing_key t)
    else
      let k = existing_key t in
      Read_modify_write (k, value_for t k)

let workload_name = function
  | Load -> "Load"
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

let all = [ Load; A; B; C; D; E; F ]
