(** YCSB core workload generator (paper §IV-E, Figure 10 / Table II).

    Standard operation mixes over a preloaded store of [record_count] items:

    - Load: 100% insert
    - A: 50% read / 50% update, zipfian
    - B: 95% read / 5% update, zipfian
    - C: 100% read, zipfian
    - D: 95% read / 5% insert, latest
    - E: 95% scan / 5% insert, zipfian, scan length uniform in [1, 100]
    - F: 50% read / 50% read-modify-write, zipfian *)

type workload = Load | A | B | C | D | E | F

type op =
  | Read of string
  | Update of string * string
  | Insert of string * string
  | Scan of string * int  (** start key, max records *)
  | Read_modify_write of string * string

type t

val create :
  workload ->
  record_count:int ->
  ?value_size:int ->
  ?seed:int64 ->
  unit ->
  t

val next : t -> op

val workload_name : workload -> string

val all : workload list
(** [Load; A; B; C; D; E; F]. *)

val value_for : t -> string -> string
(** Deterministic value payload for a key (used for preloading). *)
