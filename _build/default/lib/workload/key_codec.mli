(** Fixed-width key encoding (db_bench style).

    Numeric key-space positions become 16-byte zero-padded decimal strings,
    so byte-wise key order equals numeric order — the property the bucket
    partitioning and all range experiments rely on. *)

val key_bytes : int
(** 16. *)

val encode : int64 -> string

val decode : string -> int64
(** @raise Invalid_argument on malformed keys. *)

val fraction_of_space : string -> space:int64 -> float
(** Position of the key in [\[0, space)] as a fraction in [\[0, 1\]] — used to
    plot guard/bucket positions (Figures 2 and 7). *)
