lib/wal/wal.mli: Wip_storage Wip_util
