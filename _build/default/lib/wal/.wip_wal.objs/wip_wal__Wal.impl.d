lib/wal/wal.ml: Buffer Char Filename Int64 List Printf String Wip_storage Wip_util
