lib/concurrent/concurrent_store.mli: Wip_kv Wip_util
