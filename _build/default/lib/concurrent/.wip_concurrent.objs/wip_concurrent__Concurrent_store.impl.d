lib/concurrent/concurrent_store.ml: Fun Mutex Thread Wip_kv Wip_storage
