module Make (S : Wip_kv.Store_intf.S) = struct
  type t = {
    store : S.t;
    lock : Mutex.t;
    budget : int;
    idle_sleep : float;
    mutable stopping : bool;
    mutable cycles : int;
    mutable thread : Thread.t option;
  }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.store)

  let compactor t () =
    while not t.stopping do
      let worked =
        locked t (fun store ->
            let stats = S.io_stats store in
            let before = Wip_storage.Io_stats.bytes_written stats in
            S.maintenance store ~budget_bytes:t.budget ();
            Wip_storage.Io_stats.bytes_written stats > before)
      in
      if worked then t.cycles <- t.cycles + 1;
      (* Let foreground threads in; sleep longer when idle. *)
      Thread.delay (if worked then t.idle_sleep else t.idle_sleep *. 10.0)
    done

  let create ?(budget_per_cycle = 1024 * 1024) ?(idle_sleep = 0.001) store =
    let t =
      {
        store;
        lock = Mutex.create ();
        budget = budget_per_cycle;
        idle_sleep;
        stopping = false;
        cycles = 0;
        thread = None;
      }
    in
    t.thread <- Some (Thread.create (compactor t) ());
    t

  let put t ~key ~value = locked t (fun s -> S.put s ~key ~value)

  let write_batch t items = locked t (fun s -> S.write_batch s items)

  let delete t ~key = locked t (fun s -> S.delete s ~key)

  let get t key = locked t (fun s -> S.get s key)

  let scan t ~lo ~hi ?limit () = locked t (fun s -> S.scan s ~lo ~hi ?limit ())

  let flush t = locked t S.flush

  let with_store t f = locked t f

  let compaction_cycles t = t.cycles

  let stop t =
    if not t.stopping then begin
      t.stopping <- true;
      (match t.thread with Some th -> Thread.join th | None -> ());
      t.thread <- None;
      locked t (fun s -> S.maintenance s ())
    end
end
