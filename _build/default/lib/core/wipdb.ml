(** Library root: re-exports the WipDB store and its supporting modules. *)

module Config = Config
module Manifest = Wip_manifest.Manifest
module Store = Store
