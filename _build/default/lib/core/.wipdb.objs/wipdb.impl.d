lib/core/wipdb.ml: Config Store Wip_manifest
