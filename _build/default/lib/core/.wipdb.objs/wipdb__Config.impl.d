lib/core/config.ml: Printf Wip_memtable
