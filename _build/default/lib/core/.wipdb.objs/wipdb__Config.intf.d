lib/core/config.mli: Wip_memtable
