lib/core/store.ml: Array Config Filename Hashtbl Int64 List Printf Seq String Wip_manifest Wip_memtable Wip_sstable Wip_storage Wip_util Wip_wal
