lib/core/store.mli: Config Seq Wip_kv Wip_memtable Wip_storage
