lib/bloom/bloom.mli:
