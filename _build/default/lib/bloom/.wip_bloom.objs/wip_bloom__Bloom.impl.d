lib/bloom/bloom.ml: Bytes Char Int64 String Wip_util
