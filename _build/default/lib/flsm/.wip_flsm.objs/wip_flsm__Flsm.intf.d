lib/flsm/flsm.mli: Wip_kv Wip_storage
