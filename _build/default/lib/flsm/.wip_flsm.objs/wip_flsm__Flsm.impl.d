lib/flsm/flsm.ml: Array Hashtbl Int64 List Option Printf Seq String Wip_manifest Wip_memtable Wip_sstable Wip_storage Wip_util Wip_wal
