lib/util/rng.mli:
