lib/util/coding.ml: Buffer Char Int64 String
