lib/util/coding.mli: Buffer
