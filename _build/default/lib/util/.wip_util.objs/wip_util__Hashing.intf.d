lib/util/hashing.mli:
