lib/util/crc32c.ml: Array Char Lazy String
