lib/util/ikey.ml: Buffer Char Int64 Printf Stdlib String
