lib/util/ikey.mli:
