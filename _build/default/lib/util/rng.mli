(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    test and benchmark is reproducible from an explicit seed. The generator
    is splitmix64: tiny state, excellent statistical quality for the
    simulation purposes here, and trivially splittable. *)

type t

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t] once. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)
