type kind = Value | Deletion

type t = { user_key : string; seq : int64; kind : kind }

let make ?(kind = Value) user_key ~seq = { user_key; seq; kind }

let kind_tag = function Value -> 1 | Deletion -> 0

let compare_user = String.compare

let compare a b =
  let c = String.compare a.user_key b.user_key in
  if c <> 0 then c
  else
    let c = Int64.compare b.seq a.seq in
    if c <> 0 then c else Stdlib.compare (kind_tag b.kind) (kind_tag a.kind)

let max_seq = 0x00FFFFFFFFFFFFFFL

let encode t =
  let buf = Buffer.create (String.length t.user_key + 8) in
  Buffer.add_string buf t.user_key;
  let trailer =
    Int64.(logor (shift_left t.seq 8) (of_int (kind_tag t.kind)))
  in
  (* Big-endian trailer with the sequence bits inverted, so bytewise order of
     the encoding matches [compare] (sequence is descending). *)
  let inv = Int64.lognot trailer in
  for i = 7 downto 0 do
    Buffer.add_char buf
      Int64.(Char.unsafe_chr (to_int (logand (shift_right_logical inv (8 * i)) 0xffL)))
  done;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  if n < 8 then invalid_arg "Ikey.decode: too short";
  let user_key = String.sub s 0 (n - 8) in
  let inv = ref 0L in
  for i = 0 to 7 do
    inv := Int64.(logor (shift_left !inv 8) (of_int (Char.code s.[n - 8 + i])))
  done;
  let trailer = Int64.lognot !inv in
  let seq = Int64.shift_right_logical trailer 8 in
  let kind =
    match Int64.(to_int (logand trailer 0xffL)) with
    | 1 -> Value
    | 0 -> Deletion
    | k -> invalid_arg (Printf.sprintf "Ikey.decode: bad kind tag %d" k)
  in
  { user_key; seq; kind }

let kind_to_string = function Value -> "value" | Deletion -> "deletion"
