let put_fixed32 buf v =
  Buffer.add_char buf (Char.unsafe_chr (v land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v lsr 24) land 0xff))

let put_fixed64 buf v =
  for i = 0 to 7 do
    let byte = Int64.(to_int (logand (shift_right_logical v (8 * i)) 0xffL)) in
    Buffer.add_char buf (Char.unsafe_chr byte)
  done

let rec put_varint buf v =
  assert (v >= 0);
  if v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
    put_varint buf (v lsr 7)
  end

let put_length_prefixed buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let get_fixed32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let get_fixed64 s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.(logor (shift_left !v 8) (of_int (Char.code s.[off + i])))
  done;
  !v

let get_varint s off =
  let rec loop off shift acc =
    if off >= String.length s then invalid_arg "Coding.get_varint: truncated";
    if shift > 63 then invalid_arg "Coding.get_varint: overlong";
    let byte = Char.code s.[off] in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then (acc, off + 1) else loop (off + 1) (shift + 7) acc
  in
  loop off 0 0

let get_length_prefixed s off =
  let len, off = get_varint s off in
  if off + len > String.length s then
    invalid_arg "Coding.get_length_prefixed: truncated";
  (String.sub s off len, off + len)

let varint_length v =
  let rec loop v n = if v < 0x80 then n else loop (v lsr 7) (n + 1) in
  loop v 1
