let polynomial = 0x82F63B78 (* reflected CRC-32C polynomial *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := (!c lsr 1) lxor polynomial
         else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let substring ?(init = 0) s ~pos ~len =
  let t = Lazy.force table in
  let crc = ref (init lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := (!crc lsr 8) lxor t.((!crc lxor Char.code s.[i]) land 0xff)
  done;
  !crc lxor 0xFFFFFFFF

let string ?init s = substring ?init s ~pos:0 ~len:(String.length s)

let mask_delta = 0xa282ead8

let masked crc =
  (((crc lsr 15) lor (crc lsl 17)) + mask_delta) land 0xFFFFFFFF

let unmask masked_crc =
  let rot = (masked_crc - mask_delta) land 0xFFFFFFFF in
  ((rot lsr 17) lor (rot lsl 15)) land 0xFFFFFFFF
