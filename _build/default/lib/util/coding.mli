(** Binary coding primitives shared by the on-disk formats.

    Integers are little-endian. Varints follow the LEB128-style encoding used
    by LevelDB: seven payload bits per byte, continuation bit in the MSB. *)

val put_fixed32 : Buffer.t -> int -> unit
(** Append a 32-bit little-endian unsigned integer (given as an OCaml [int]
    in [\[0, 2^32)]). *)

val put_fixed64 : Buffer.t -> int64 -> unit

val put_varint : Buffer.t -> int -> unit
(** Append a non-negative [int] as a varint (1–9 bytes on 63-bit ints). *)

val put_length_prefixed : Buffer.t -> string -> unit
(** Append [varint (String.length s)] followed by the raw bytes of [s]. *)

val get_fixed32 : string -> int -> int
(** [get_fixed32 s off] reads a 32-bit LE unsigned integer at [off]. *)

val get_fixed64 : string -> int -> int64

val get_varint : string -> int -> int * int
(** [get_varint s off] returns [(value, next_off)].
    @raise Invalid_argument on truncated or overlong input. *)

val get_length_prefixed : string -> int -> string * int
(** [get_length_prefixed s off] returns [(payload, next_off)]. *)

val varint_length : int -> int
(** Number of bytes [put_varint] would write. *)
