(** CRC-32C (Castagnoli) checksums, as used by the SSTable and WAL formats
    to detect corruption. Pure-OCaml table-driven implementation. *)

val string : ?init:int -> string -> int
(** [string s] is the CRC-32C of [s] as an unsigned 32-bit value in an
    OCaml [int]. [init] allows incremental computation: pass the previous
    checksum to extend it. *)

val substring : ?init:int -> string -> pos:int -> len:int -> int

val masked : int -> int
(** LevelDB-style masking so that a CRC stored alongside data that itself
    embeds CRCs does not collide with the data CRC. *)

val unmask : int -> int
