(** Internal keys.

    Every record written to the store carries, in addition to its user key,
    a globally monotonically increasing sequence number and a kind (value or
    deletion tombstone). Internal keys order by (user key ascending, sequence
    number descending) so that the newest version of a user key is
    encountered first during merges and lookups. *)

type kind = Value | Deletion

type t = { user_key : string; seq : int64; kind : kind }

val make : ?kind:kind -> string -> seq:int64 -> t

val compare : t -> t -> int
(** User key ascending, then sequence descending, then kind (Value before
    Deletion at equal sequence, which cannot happen in a well-formed store). *)

val compare_user : string -> string -> int
(** Plain byte-wise user-key comparison (the store's global comparator). *)

val encode : t -> string
(** [user_key ^ 8-byte big-endian (seq << 8 | kind_tag)] — big-endian so the
    encoded form preserves [compare] ordering bytewise on the trailer when
    user keys are equal. *)

val decode : string -> t
(** @raise Invalid_argument if shorter than the 8-byte trailer. *)

val kind_to_string : kind -> string

val max_seq : int64
(** Largest representable sequence number (56 bits). *)
