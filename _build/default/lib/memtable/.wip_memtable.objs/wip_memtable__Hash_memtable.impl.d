lib/memtable/hash_memtable.ml: Array Int64 String Wip_util
