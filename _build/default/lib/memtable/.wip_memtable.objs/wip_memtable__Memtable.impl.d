lib/memtable/memtable.ml: Array Hash_memtable Int64 List Skiplist String Wip_util
