lib/memtable/memtable.mli: Wip_util
