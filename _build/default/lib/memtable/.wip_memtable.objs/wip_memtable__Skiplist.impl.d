lib/memtable/skiplist.ml: Array Int64 List Seq String Wip_util
