lib/memtable/hash_memtable.mli: Wip_util
