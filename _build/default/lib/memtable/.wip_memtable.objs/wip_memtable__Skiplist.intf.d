lib/memtable/skiplist.mli: Seq Wip_util
