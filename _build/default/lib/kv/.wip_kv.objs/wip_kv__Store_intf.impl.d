lib/kv/store_intf.ml: Wip_storage Wip_util
