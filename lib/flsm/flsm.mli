(** Fragmented LSM-tree — the PebblesDB-like baseline (paper §II-B).

    Each level below 0 is partitioned by {e guards}: probabilistically
    selected user keys. The span between two adjacent guards holds a set of
    possibly overlapping sstable fragments. Compacting a guard merges its
    fragments and partitions the output by the {e next} level's guards,
    appending fragments there without rewriting next-level data (tiering) —
    so a single compaction's write amplification is ≈ 1.

    Guards are picked by hashing every inserted key: a key becomes a guard
    for level [i] when its hash has at least [guard_bits i] trailing zero
    bits; [guard_bits] decreases with depth, so deeper levels get
    exponentially more guards and a guard at level [i] is also a guard at
    every deeper level (the paper's invariant). Committing a new guard to a
    level must split fragments that span it — rewrites charged as [Split]
    I/O, the cost the paper identifies as PebblesDB's weakness. *)

type config = {
  memtable_bytes : int;
  max_files_per_guard : int;  (** compaction trigger per guard span *)
  top_level_bits : int;
      (** trailing-zero bits required for a guard at level 1 — the knob the
          paper tuned from 27 to 31 to keep guard count manageable *)
  bits_decrement : int;  (** per-level decrease of the requirement *)
  max_levels : int;
  bits_per_key : int;
  sorted_view : bool;
      (** maintain a store-wide REMIX-style sorted view so scans replay one
          frozen merge instead of heap-merging every fragment (default
          true) *)
  sorted_view_min_runs : int;
      (** fragment count below which scans just heap-merge (default 2) *)
  ph_index : bool;
      (** emit a perfect-hash point-index block in every fragment (default
          true); see {!Wip_sstable.Table} *)
  name : string;
}

val default_config : scale:int -> config

type t

val create : ?env:Wip_storage.Env.t -> config -> t

val recover : ?env:Wip_storage.Env.t -> config -> t
(** Reopen the store persisted in [env]: manifest replay rebuilds guards and
    fragment placement, WAL replay repopulates the memtable. Equivalent to
    [create] on a fresh device. *)

val guard_count : t -> level:int -> int

val level_count : t -> int

val compaction_count : t -> int

val live_table_files : t -> string list
(** Names of every fragment file the guard structure references — after
    recovery, exactly the table files present on the Env. *)

val live_snapshot_count : t -> int

val oldest_snapshot_seq : t -> int64
(** Version-GC floor: min over live pinned snapshots, [Int64.max_int] when
    none — compaction then keeps only the newest version per key. *)

include Wip_kv.Store_intf.S with type t := t
