module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Table = Wip_sstable.Table
module Merge_iter = Wip_sstable.Merge_iter
module Sorted_view = Wip_sstable.Sorted_view
module Skiplist = Wip_memtable.Skiplist
module Wal = Wip_wal.Wal
module Manifest = Wip_manifest.Manifest

type config = {
  memtable_bytes : int;
  max_files_per_guard : int;
  top_level_bits : int;
  bits_decrement : int;
  max_levels : int;
  bits_per_key : int;
  sorted_view : bool;
  sorted_view_min_runs : int;
  ph_index : bool;
  name : string;
}

let default_config ~scale =
  {
    memtable_bytes = 64 * 1024 * scale;
    max_files_per_guard = 4;
    (* Scaled-down analogue of PebblesDB's top_level_bits: at our store
       sizes, requiring ~14 trailing zero bits at level 1 yields a guard
       population comparable in proportion to the paper's setup. *)
    top_level_bits = 14;
    bits_decrement = 2;
    max_levels = 5;
    bits_per_key = 10;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "PebblesDB";
  }

(* A guard span: fragments between [guard] (inclusive lower bound) and the
   next guard. The span before the first guard has guard = "". *)
type span = {
  guard : string;
  mutable fragments : Table.meta list; (* newest first; guarded_by: caller *)
}

type level = {
  mutable spans : span list; (* sorted by guard; guarded_by: caller *)
}

type t = {
  cfg : config;
  env : Env.t;
  wal : Wal.t;
  manifest : Manifest.t;
  mutable mem : Skiplist.t; (* guarded_by: caller *)
  mutable l0 : Table.meta list; (* newest first; guarded_by: caller *)
  levels : level array; (* index 1..max_levels-1 used *)
  readers : (string, Table.Reader.t) Hashtbl.t;
  mutable next_file : int; (* guarded_by: caller *)
  mutable seq : int64; (* guarded_by: caller *)
  mutable compactions : int; (* guarded_by: caller *)
  (* Guards observed from inserted keys but not yet committed to a level. *)
  pending_guards : (int, string list) Hashtbl.t;
  mutable next_snap_id : int; (* guarded_by: caller *)
  live_snaps : (int, int64) Hashtbl.t; (* snapshot id -> pinned seq *)
  mutable view : (Sorted_view.t * Table.meta array) option; (* guarded_by: caller *)
      (* Store-wide sorted view over every live fragment; None when absent
         or invalidated. Scans build it lazily; compaction and guard-commit
         fragment splits drop it. *)
}

let manifest_name cfg = cfg.name ^ "-manifest"

let create ?env cfg =
  let env = match env with Some e -> e | None -> Env.in_memory () in
  {
    cfg;
    env;
    wal = Wal.create env ~prefix:(cfg.name ^ "-wal") ();
    manifest = Manifest.create env ~name:(manifest_name cfg);
    mem = Skiplist.create ();
    l0 = [];
    levels = Array.init cfg.max_levels (fun _ -> { spans = [ { guard = ""; fragments = [] } ] });
    readers = Hashtbl.create 64;
    next_file = 1;
    seq = 0L;
    compactions = 0;
    pending_guards = Hashtbl.create 8;
    next_snap_id = 0;
    live_snaps = Hashtbl.create 8;
    view = None;
  }

let name t = t.cfg.name

let env t = t.env

let io_stats t = Env.stats t.env

let fresh_table_name t =
  let n = t.next_file in
  t.next_file <- n + 1;
  Printf.sprintf "%s-%06d.sst" t.cfg.name n

let reader_of t (meta : Table.meta) =
  match Hashtbl.find_opt t.readers meta.Table.name with
  | Some r -> r
  | None ->
    let r = Table.Reader.open_ t.env ~name:meta.Table.name in
    Hashtbl.replace t.readers meta.Table.name r;
    r

let drop_table t (meta : Table.meta) =
  (match Hashtbl.find_opt t.readers meta.Table.name with
  | Some r ->
    Table.Reader.close r;
    Hashtbl.remove t.readers meta.Table.name
  | None -> ());
  Env.delete t.env meta.Table.name

(* Pinned snapshots. Reads in this baseline are eager (no lazy stream
   escapes a call), so pinning only needs the version-GC floor: while a
   snapshot is live, compaction keeps every version a pinned seq can see. *)

let oldest_snapshot_seq t =
  Hashtbl.fold
    (fun _ s acc -> if Int64.compare s acc < 0 then s else acc)
    t.live_snaps Int64.max_int

let live_snapshot_count t = Hashtbl.length t.live_snaps

let snapshot t =
  let id = t.next_snap_id in
  t.next_snap_id <- id + 1;
  Hashtbl.replace t.live_snaps id t.seq;
  {
    Wip_kv.Store_intf.snap_seq = t.seq;
    snap_id = id;
    snap_release = (fun () -> Hashtbl.remove t.live_snaps id);
  }

(* Manifest edits: the [bucket] field carries the level a fragment lives in
   (0 = the unguarded L0); guards are logged as [Add_bucket { id = level;
   lo = guard }]. Replay re-places every fragment into the span containing
   its smallest key — sound because live operation physically splits (and
   re-logs) any fragment that would straddle a new guard. *)
let log_add_fragment t ~level (m : Table.meta) =
  Manifest.append t.manifest
    (Manifest.Add_table
       {
         bucket = level;
         level;
         name = m.Table.name;
         size = m.Table.size;
         entry_count = m.Table.entry_count;
         smallest = m.Table.smallest;
         largest = m.Table.largest;
       })

let log_remove_fragment t ~level (m : Table.meta) =
  Manifest.append t.manifest
    (Manifest.Remove_table { bucket = level; level; name = m.Table.name })

let log_watermark t =
  Manifest.append t.manifest
    (Manifest.Watermark { seq = t.seq; next_file = t.next_file })

(* ------------------------------------------------------------------ *)
(* Sorted view (REMIX-style; see Sorted_view and DESIGN.md). One view over
   every live fragment — guards partition the key space but do not change
   the merge: a frozen merge of all fragments replays any range. Streams
   are scan-resistant (~fill_cache:false). *)

let invalidate_view t = t.view <- None

let view_open_run t (runs : Table.meta array) r ~from =
  Table.Reader.stream (reader_of t runs.(r)) ~category:Io_stats.Read_path
    ~fill_cache:false ~from ()

let all_tables t =
  t.l0
  @ List.concat_map
      (fun lvl -> List.concat_map (fun s -> s.fragments) lvl.spans)
      (Array.to_list t.levels)

let store_view t =
  match t.view with
  | Some vr -> Some vr
  | None ->
    if not t.cfg.sorted_view then None
    else begin
      let tables = all_tables t in
      let n = List.length tables in
      if n < t.cfg.sorted_view_min_runs || n > Sorted_view.max_runs then None
      else begin
        let runs = Array.of_list tables in
        let started = Unix.gettimeofday () in
        let view =
          Sorted_view.build
            (Array.map
               (fun m ->
                 Table.Reader.stream (reader_of t m)
                   ~category:Io_stats.Read_path ~fill_cache:false ())
               runs)
        in
        Io_stats.record_view_rebuild (io_stats t)
          ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
        let vr = (view, runs) in
        t.view <- Some vr;
        Some vr
      end
    end

(* Flush site: extend an existing view with the new L0 fragment instead of
   dropping it. Stores that are never scanned never have a view and never
   pay this. *)
let view_note_flush t (meta : Table.meta) =
  match t.view with
  | None -> ()
  | Some (view, runs) ->
    if (not t.cfg.sorted_view) || Sorted_view.run_count view >= Sorted_view.max_runs
    then invalidate_view t
    else begin
      let started = Unix.gettimeofday () in
      let view' =
        Sorted_view.add_run view ~open_run:(view_open_run t runs)
          (Table.Reader.stream (reader_of t meta)
             ~category:Io_stats.Read_path ~fill_cache:false ())
      in
      Io_stats.record_view_rebuild (io_stats t)
        ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
      t.view <- Some (view', Array.append runs [| meta |])
    end

(* ------------------------------------------------------------------ *)
(* Guard selection *)

let trailing_zeros h =
  if Int64.equal h 0L then 64
  else begin
    let rec loop h n =
      if Int64.logand h 1L = 1L then n
      else loop (Int64.shift_right_logical h 1) (n + 1)
    in
    loop h 0
  end

let guard_bits cfg level = max 1 (cfg.top_level_bits - (cfg.bits_decrement * (level - 1)))

(* Record key as a pending guard for every level whose requirement it
   meets. Invariant: meeting level i's requirement implies meeting every
   deeper level's (bits decrease with depth). *)
let observe_key t key =
  let z = trailing_zeros (Wip_util.Hashing.hash64 ~seed:0x9172L key) in
  let rec note level =
    if level < t.cfg.max_levels then
      if z >= guard_bits t.cfg level then begin
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt t.pending_guards level)
        in
        Hashtbl.replace t.pending_guards level (key :: existing);
        note (level + 1)
      end
      else note (level + 1)
  in
  note 1

(* Commit pending guards for [level]: split any span whose fragments cross
   the new guard. Fragment splitting rewrites data in place — charged as
   Split I/O (the PebblesDB cost the paper calls out). *)
let rec split_fragment t ~category (meta : Table.meta) ~at =
  ignore category;
  let reader = reader_of t meta in
  let at_enc = Ikey.encode_user at in
  let build side_name pred =
    let b =
      Table.Builder.create t.env ~name:side_name ~category:Io_stats.Split
        ~bits_per_key:t.cfg.bits_per_key ~ph_index:t.cfg.ph_index
        ~expected_keys:(max 64 meta.Table.entry_count) ()
    in
    Seq.iter
      (fun (key, value) ->
        if pred key then Table.Builder.add_encoded b ~key ~value)
      (Table.Reader.stream reader ~category:Io_stats.Split ~fill_cache:false ());
    if Table.Builder.entry_count b > 0 then Some (Table.Builder.finish b)
    else begin
      Table.Builder.abandon b;
      None
    end
  in
  (* The caller deletes [meta] once the manifest edits replacing it are
     durable. *)
  let left =
    build (fresh_table_name t) (fun k -> Ikey.compare_encoded_user at_enc k > 0)
  in
  let right =
    build (fresh_table_name t) (fun k -> Ikey.compare_encoded_user at_enc k <= 0)
  in
  (left, right)

and commit_guards t level =
  match Hashtbl.find_opt t.pending_guards level with
  | None | Some [] -> ()
  | Some keys ->
    Hashtbl.remove t.pending_guards level;
    let lvl = t.levels.(level) in
    let existing = List.map (fun s -> s.guard) lvl.spans in
    let fresh =
      List.sort_uniq String.compare keys
      |> List.filter (fun k -> not (List.mem k existing))
    in
    let split_inputs = ref [] in
    List.iter
      (fun g ->
        Manifest.append t.manifest (Manifest.Add_bucket { id = level; lo = g });
        (* Find the span that contains g: the last span with guard <= g. *)
        let rec place before = function
          | [] -> List.rev before
          | span :: rest ->
            let next_guard =
              match rest with s :: _ -> Some s.guard | [] -> None
            in
            let contains =
              String.compare span.guard g <= 0
              && (match next_guard with
                 | Some ng -> String.compare g ng < 0
                 | None -> true)
            in
            if not contains then place (span :: before) rest
            else begin
              (* Split fragments that straddle g. *)
              let left_frags = ref [] and right_frags = ref [] in
              List.iter
                (fun (m : Table.meta) ->
                  if String.compare m.Table.largest g < 0 then
                    left_frags := m :: !left_frags
                  else if String.compare m.Table.smallest g >= 0 then
                    right_frags := m :: !right_frags
                  else begin
                    let l, r = split_fragment t ~category:Io_stats.Split m ~at:g in
                    split_inputs := m :: !split_inputs;
                    log_remove_fragment t ~level m;
                    (match l with
                    | Some m ->
                      left_frags := m :: !left_frags;
                      log_add_fragment t ~level m
                    | None -> ());
                    (match r with
                    | Some m ->
                      right_frags := m :: !right_frags;
                      log_add_fragment t ~level m
                    | None -> ())
                  end)
                span.fragments;
              let left_span = { guard = span.guard; fragments = List.rev !left_frags } in
              let right_span = { guard = g; fragments = List.rev !right_frags } in
              List.rev_append before (left_span :: right_span :: rest)
            end
        in
        lvl.spans <- place [] lvl.spans)
      fresh;
    if !split_inputs <> [] then begin
      invalidate_view t;
      (* The split halves' edits must be durable before the straddling
         fragment they replace is deleted. *)
      Manifest.sync t.manifest;
      List.iter (drop_table t) !split_inputs
    end

(* ------------------------------------------------------------------ *)
(* Flush and compaction *)

let write_run t ~category entries ~expected =
  let name = fresh_table_name t in
  let b =
    Table.Builder.create t.env ~name ~category
      ~bits_per_key:t.cfg.bits_per_key ~ph_index:t.cfg.ph_index
      ~expected_keys:(max 64 expected) ()
  in
  Seq.iter (fun (ik, v) -> Table.Builder.add b ik v) entries;
  if Table.Builder.entry_count b > 0 then Some (Table.Builder.finish b)
  else begin
    Table.Builder.abandon b;
    None
  end

let flush_mem t =
  if Skiplist.count t.mem > 0 then begin
    (match
       write_run t ~category:Io_stats.Flush (Skiplist.to_sorted_seq t.mem)
         ~expected:(Skiplist.count t.mem)
     with
    | Some meta ->
      t.l0 <- meta :: t.l0;
      view_note_flush t meta;
      log_add_fragment t ~level:0 meta
    | None -> ());
    log_watermark t;
    (* The flushed fragment's manifest edit must be durable before the WAL
       records it replaces are reclaimed. *)
    Manifest.sync t.manifest;
    t.mem <- Skiplist.create ();
    ignore (Wal.reclaim t.wal ~persisted_below:(Int64.add t.seq 1L))
  end

let table_seq t ~category meta =
  Table.Reader.stream (reader_of t meta) ~category ~fill_cache:false ()

(* Partition a merged (encoded) entry sequence by the guards of [level],
   appending one fragment per span. *)
let emit_into_level t ~category level entries ~expected =
  commit_guards t level;
  let lvl = t.levels.(level) in
  let spans = Array.of_list lvl.spans in
  (* Guards encoded once; the per-entry span test then runs on raw bytes. *)
  let guard_enc = Array.map (fun s -> Ikey.encode_user s.guard) spans in
  let n = Array.length spans in
  (* For each span, collect its slice of the iterator lazily by walking the
     merged sequence once. *)
  let current = ref 0 in
  let builder = ref None in
  let finish () =
    match !builder with
    | Some b ->
      if Table.Builder.entry_count b > 0 then begin
        let meta = Table.Builder.finish b in
        let span = spans.(!current) in
        span.fragments <- meta :: span.fragments;
        log_add_fragment t ~level meta
      end
      else Table.Builder.abandon b;
      builder := None
    | None -> ()
  in
  let span_for key =
    (* Largest span index whose guard <= key. Spans are sorted; linear
       advance suffices because entries arrive in key order. *)
    let rec advance i =
      if i + 1 < n && Ikey.compare_encoded_user guard_enc.(i + 1) key <= 0 then
        advance (i + 1)
      else i
    in
    advance !current
  in
  Seq.iter
    (fun (key, value) ->
      let target = span_for key in
      if target <> !current then begin
        finish ();
        current := target
      end;
      let b =
        match !builder with
        | Some b -> b
        | None ->
          let b' =
            Table.Builder.create t.env ~name:(fresh_table_name t) ~category
              ~bits_per_key:t.cfg.bits_per_key ~ph_index:t.cfg.ph_index
              ~expected_keys:(max 64 expected) ()
          in
          builder := Some b';
          b'
      in
      Table.Builder.add_encoded b ~key ~value)
    entries;
  finish ()

let deepest_nonempty t =
  let rec check l =
    if l <= 0 then 0
    else if List.exists (fun s -> s.fragments <> []) t.levels.(l).spans then l
    else check (l - 1)
  in
  check (t.cfg.max_levels - 1)

let compact_l0 t =
  if t.l0 <> [] then begin
    t.compactions <- t.compactions + 1;
    let inputs = t.l0 in
    let seqs =
      List.map (fun m -> table_seq t ~category:(Io_stats.Compaction_read 0) m) inputs
    in
    let drop = deepest_nonempty t = 0 in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:drop
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    let expected =
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.entry_count) 0 inputs
    in
    emit_into_level t ~category:(Io_stats.Compaction 1) 1 entries ~expected;
    t.l0 <- [];
    invalidate_view t;
    List.iter (fun m -> log_remove_fragment t ~level:0 m) inputs;
    log_watermark t;
    (* Removes durable before the input files vanish. *)
    Manifest.sync t.manifest;
    List.iter (drop_table t) inputs
  end

let compact_span t level span =
  if span.fragments <> [] && level + 1 < t.cfg.max_levels then begin
    t.compactions <- t.compactions + 1;
    let inputs = span.fragments in
    let seqs =
      List.map (fun m -> table_seq t ~category:(Io_stats.Compaction_read level) m) inputs
    in
    let drop = deepest_nonempty t <= level in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:drop
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    let expected =
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.entry_count) 0 inputs
    in
    emit_into_level t ~category:(Io_stats.Compaction (level + 1)) (level + 1) entries
      ~expected;
    span.fragments <- [];
    invalidate_view t;
    List.iter (fun m -> log_remove_fragment t ~level m) inputs;
    log_watermark t;
    Manifest.sync t.manifest;
    List.iter (drop_table t) inputs
  end

let pick_compaction t =
  if List.length t.l0 >= t.cfg.max_files_per_guard then Some `L0
  else begin
    let best = ref None in
    for level = 1 to t.cfg.max_levels - 2 do
      List.iter
        (fun span ->
          let n = List.length span.fragments in
          if n >= t.cfg.max_files_per_guard then
            match !best with
            | Some (_, _, m) when m >= n -> ()
            | _ -> best := Some (level, span, n))
        t.levels.(level).spans
    done;
    match !best with Some (l, s, _) -> Some (`Span (l, s)) | None -> None
  end

(* Advisory estimate for the compaction pool (may be read without external
   synchronization): input bytes of L0 and of every over-full guard span. *)
let maintenance_pending t =
  let frag_bytes =
    List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.size) 0
  in
  let pending =
    ref
      (if List.length t.l0 >= t.cfg.max_files_per_guard then
         max 1 (frag_bytes t.l0)
       else 0)
  in
  for level = 1 to t.cfg.max_levels - 2 do
    List.iter
      (fun span ->
        if List.length span.fragments >= t.cfg.max_files_per_guard then
          pending := !pending + max 1 (frag_bytes span.fragments))
      t.levels.(level).spans
  done;
  !pending

let maintenance t ?budget_bytes () =
  let budget = ref (match budget_bytes with Some b -> b | None -> max_int) in
  let rec loop () =
    if !budget > 0 then
      match pick_compaction t with
      | Some job ->
        let before = Io_stats.bytes_written (io_stats t) in
        (match job with
        | `L0 -> compact_l0 t
        | `Span (level, span) -> compact_span t level span);
        let after = Io_stats.bytes_written (io_stats t) in
        budget := !budget - (after - before);
        loop ()
      | None -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Recovery *)

let recover ?env cfg =
  let env = match env with Some e -> e | None -> Env.in_memory () in
  if not (Manifest.exists env ~name:(manifest_name cfg)) then create ~env cfg
  else begin
    let t =
      {
        cfg;
        env;
        (* Replaced below once the real WAL is recovered. *)
        wal = Wal.create env ~prefix:(cfg.name ^ "-tmpwal") ();
        manifest = Manifest.reopen env ~name:(manifest_name cfg);
        mem = Skiplist.create ();
        l0 = [];
        levels =
          Array.init cfg.max_levels (fun _ ->
              { spans = [ { guard = ""; fragments = [] } ] });
        readers = Hashtbl.create 64;
        next_file = 1;
        seq = 0L;
        compactions = 0;
        pending_guards = Hashtbl.create 8;
        next_snap_id = 0;
        live_snaps = Hashtbl.create 8;
        view = None;
      }
    in
    (* Place a fragment into the span of its level containing its smallest
       key (fragments never straddle guards: live operation splits and
       re-logs them before a guard lands). *)
    let span_for_key lvl key =
      let rec pick best = function
        | [] -> best
        | span :: rest ->
          if String.compare span.guard key <= 0 then pick span rest else best
      in
      match lvl.spans with
      | first :: rest -> pick first rest
      | [] -> assert false
    in
    Manifest.replay env ~name:(manifest_name cfg) (fun edit ->
        match edit with
        | Manifest.Add_table { bucket = level; name; size; entry_count; smallest; largest; _ } ->
          let meta = { Table.name; size; entry_count; smallest; largest } in
          if level = 0 then t.l0 <- meta :: t.l0
          else begin
            let span = span_for_key t.levels.(level) meta.Table.smallest in
            span.fragments <- meta :: span.fragments
          end
        | Manifest.Remove_table { bucket = level; name; _ } ->
          let drop = List.filter (fun (m : Table.meta) -> not (String.equal m.Table.name name)) in
          if level = 0 then t.l0 <- drop t.l0
          else
            List.iter
              (fun span -> span.fragments <- drop span.fragments)
              t.levels.(level).spans
        | Manifest.Add_bucket { id = level; lo = g } ->
          let lvl = t.levels.(level) in
          if not (List.exists (fun s -> String.equal s.guard g) lvl.spans) then begin
            let target = span_for_key lvl g in
            let left, right =
              List.partition
                (fun (m : Table.meta) -> String.compare m.Table.smallest g < 0)
                target.fragments
            in
            let right_span = { guard = g; fragments = right } in
            let rec insert = function
              | [] -> []
              | span :: rest ->
                if span == target then
                  { span with fragments = left } :: right_span :: rest
                else span :: insert rest
            in
            lvl.spans <- insert lvl.spans
          end
        | Manifest.Remove_bucket _ -> ()
        | Manifest.Watermark { seq; next_file } ->
          t.seq <- seq;
          t.next_file <- max t.next_file next_file);
    let wal =
      Wal.recover env ~prefix:(cfg.name ^ "-wal")
        ~replay:(fun (r : Wal.record) ->
          if Int64.compare r.Wal.seq t.seq > 0 then t.seq <- r.Wal.seq;
          observe_key t r.Wal.key;
          Skiplist.add t.mem
            (Ikey.make ~kind:r.Wal.kind r.Wal.key ~seq:r.Wal.seq)
            r.Wal.value)
        ()
    in
    Env.delete env (cfg.name ^ "-tmpwal-000000.log");
    let t = { t with wal } in
    if Int64.compare (Wal.max_seq_logged wal) t.seq > 0 then
      t.seq <- Wal.max_seq_logged wal;
    (* Garbage-collect fragment files no manifest edit survived for. *)
    let live = Hashtbl.create 64 in
    List.iter (fun (m : Table.meta) -> Hashtbl.replace live m.Table.name ()) t.l0;
    Array.iter
      (fun lvl ->
        List.iter
          (fun s ->
            List.iter
              (fun (m : Table.meta) -> Hashtbl.replace live m.Table.name ())
              s.fragments)
          lvl.spans)
      t.levels;
    let prefix = cfg.name ^ "-" in
    let plen = String.length prefix in
    List.iter
      (fun f ->
        if
          String.length f > plen
          && String.equal (String.sub f 0 plen) prefix
          && Filename.check_suffix f ".sst"
          && not (Hashtbl.mem live f)
        then Env.delete env f)
      (Env.list_files env);
    t
  end

(* ------------------------------------------------------------------ *)
(* Public API *)

let apply t kind key value =
  let seq = Int64.add t.seq 1L in
  t.seq <- seq;
  observe_key t key;
  Skiplist.add t.mem (Ikey.make ~kind key ~seq) value;
  Io_stats.record_write (io_stats t) Io_stats.User_write
    (String.length key + String.length value);
  if Skiplist.byte_size t.mem >= t.cfg.memtable_bytes then begin
    flush_mem t;
    maintenance t ()
  end

let write_batch t items =
  if items <> [] then begin
    Wal.append_batch t.wal ~first_seq:(Int64.add t.seq 1L) items;
    List.iter (fun (kind, key, value) -> apply t kind key value) items
  end

let put t ~key ~value = write_batch t [ (Ikey.Value, key, value) ]

let delete t ~key = write_batch t [ (Ikey.Deletion, key, "") ]

let span_containing lvl key =
  let rec pick last = function
    | [] -> last
    | span :: rest ->
      if String.compare span.guard key <= 0 then pick (Some span) rest else last
  in
  pick None lvl.spans

let get_seq t key ~snapshot =
  match Skiplist.find t.mem key ~snapshot with
  | Some (Ikey.Value, v) -> Some v
  | Some (Ikey.Deletion, _) -> None
  | None ->
    (* One encoded seek target serves every fragment probe on the way down. *)
    let target = Ikey.encode_seek key ~seq:snapshot in
    let check_meta (m : Table.meta) =
      if not (Table.overlaps m ~lo:key ~hi:key) then None
      else
        Table.Reader.get_encoded (reader_of t m) ~category:Io_stats.Read_path
          target
    in
    let rec check_list = function
      | [] -> `Miss
      | m :: rest -> (
        match check_meta m with
        | Some (Ikey.Value, v, _) -> `Hit v
        | Some (Ikey.Deletion, _, _) -> `Deleted
        | None -> check_list rest)
    in
    let rec levels level =
      if level >= t.cfg.max_levels then None
      else
        match span_containing t.levels.(level) key with
        | None -> levels (level + 1)
        | Some span -> (
          match check_list span.fragments with
          | `Hit v -> Some v
          | `Deleted -> None
          | `Miss -> levels (level + 1))
    in
    (match check_list t.l0 with
    | `Hit v -> Some v
    | `Deleted -> None
    | `Miss -> levels 1)

let get t key = get_seq t key ~snapshot:t.seq

let get_at t key ~snapshot =
  get_seq t key ~snapshot:snapshot.Wip_kv.Store_intf.snap_seq

let scan_seq t ~lo ~hi ?(limit = max_int) ~snapshot () =
  let from = Ikey.encode_seek lo ~seq:Ikey.max_seq in
  let hi_enc = Ikey.encode_user hi in
  let mem_seq =
    Skiplist.to_sorted_seq t.mem
    |> Seq.filter (fun ((ik : Ikey.t), _) ->
           Ikey.compare_user ik.Ikey.user_key lo >= 0
           && Ikey.compare_user ik.Ikey.user_key hi < 0)
    |> Seq.map (fun (ik, v) -> (Ikey.encode ik, v))
  in
  let frag_seqs =
    match store_view t with
    | Some (view, runs) ->
      [
        Sorted_view.walk view ~from ~open_run:(view_open_run t runs)
        |> Seq.take_while (fun (k, _) ->
               Ikey.compare_encoded_user hi_enc k > 0);
      ]
    | None ->
      List.filter_map
        (fun (m : Table.meta) ->
          (* Exclusive bound: a fragment starting exactly at [hi] holds
             nothing in [lo, hi). *)
          if Table.overlaps_excl m ~lo ~hi_excl:hi then
            Some
              (Table.Reader.stream (reader_of t m)
                 ~category:Io_stats.Read_path ~fill_cache:false ~from ()
              |> Seq.take_while (fun (k, _) ->
                     Ikey.compare_encoded_user hi_enc k > 0))
          else None)
        (all_tables t)
  in
  let merged =
    Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:false
      ~snapshot_floor:snapshot (mem_seq :: frag_seqs)
  in
  let out = ref [] and n = ref 0 and last = ref None in
  (try
     Seq.iter
       (fun (k, v) ->
         if !n >= limit then raise Exit;
         if Int64.compare (Ikey.encoded_seq k) snapshot <= 0 then begin
           let dup =
             match !last with
             | Some prev -> Ikey.encoded_same_user prev k
             | None -> false
           in
           if not dup then begin
             last := Some k;
             match Ikey.encoded_kind k with
             | Ikey.Value ->
               out := (Ikey.user_key_of_encoded k, v) :: !out;
               incr n
             | Ikey.Deletion -> ()
           end
         end)
       merged
   with Exit -> ());
  List.rev !out

let scan t ~lo ~hi ?limit () = scan_seq t ~lo ~hi ?limit ~snapshot:t.seq ()

let scan_at t ~lo ~hi ?limit ~snapshot () =
  scan_seq t ~lo ~hi ?limit ~snapshot:snapshot.Wip_kv.Store_intf.snap_seq ()

let flush t = flush_mem t

let file_sizes t =
  let frag_sizes lvl =
    List.concat_map
      (fun s -> List.map (fun (m : Table.meta) -> m.Table.size) s.fragments)
      lvl.spans
  in
  List.map (fun (m : Table.meta) -> m.Table.size) t.l0
  @ List.concat_map frag_sizes (Array.to_list t.levels)

let live_table_files t =
  List.map (fun (m : Table.meta) -> m.Table.name) t.l0
  @ List.concat_map
      (fun lvl ->
        List.concat_map
          (fun s -> List.map (fun (m : Table.meta) -> m.Table.name) s.fragments)
          lvl.spans)
      (Array.to_list t.levels)

let guard_count t ~level =
  if level < 1 || level >= t.cfg.max_levels then 0
  else List.length t.levels.(level).spans - 1

let level_count t = 1 + deepest_nonempty t

let compaction_count t = t.compactions

(* Resilience interface: this baseline has no admission control or degraded
   state — it exists for I/O-pattern comparison, not fault drills. Writes
   are always admitted and faults propagate raw. *)
let try_write_batch t items =
  write_batch t items;
  Ok ()

let write_batches t batches =
  if List.exists (fun items -> items <> []) batches then begin
    Wal.append_batches t.wal ~first_seq:(Int64.add t.seq 1L) batches;
    List.iter
      (fun items ->
        List.iter (fun (kind, key, value) -> apply t kind key value) items)
      batches
  end

let try_write_batches t batches =
  write_batches t batches;
  Ok ()

let log_sync t = Wal.sync t.wal

let health _ = Wip_kv.Store_intf.Healthy

let probe _ = Wip_kv.Store_intf.Healthy
