(** Sorted in-memory table backed by a probabilistic skip list.

    Entries are internal-key/value pairs ordered by {!Wip_util.Ikey.compare},
    i.e. user key ascending then sequence descending — so multiple versions
    of the same user key coexist and the newest is met first. This is the
    MemTable organization of LevelDB, and WipDB's fallback for buckets that
    receive heavy range-query traffic. *)

type t

val create : ?seed:int64 -> unit -> t

val add : t -> Wip_util.Ikey.t -> string -> unit

val find : t -> string -> snapshot:int64 -> (Wip_util.Ikey.kind * string) option
(** [find t user_key ~snapshot] returns the newest version of [user_key]
    whose sequence number is [<= snapshot], if any. *)

val find_with_seq :
  t -> string -> snapshot:int64 ->
  (Wip_util.Ikey.kind * string * int64) option
(** {!find} that also reports the matched version's sequence number. *)

val to_sorted_seq : t -> (Wip_util.Ikey.t * string) Seq.t
(** All entries in internal-key order. *)

val range : t -> lo:string -> hi:string -> snapshot:int64
  -> (string * string) list
(** Newest visible (non-deleted) value per user key with [lo <= key < hi],
    ascending. Tombstoned keys are reported nowhere; shadowed old versions
    are skipped. *)

val count : t -> int
(** Number of stored entries (versions, not distinct user keys). *)

val byte_size : t -> int
(** Approximate memory footprint of payload bytes. *)

val probes : t -> int
(** Cumulative node visits across all operations — the memory-access proxy
    used by the Figure 3 reproduction. *)
