module Ikey = Wip_util.Ikey

let slots_per_entry = 8

type item = { ikey : Ikey.t; value : string }

type t = {
  (* Directory: entry [e], slot [s] lives at tags.(e * 8 + s) / refs.(e * 8 + s).
     A tag of 0 means the slot is empty; slots fill left to right (a log). *)
  tags : int array;
  refs : int array;
  entry_count : int;
  mutable items : item array;
  mutable item_count : int;
  capacity_items : int;
  mutable byte_size : int;
  mutable probes : int;
}

let next_pow2 n =
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let create ~capacity_items =
  assert (capacity_items > 0);
  (* Two slots of average load per eight-slot entry at full capacity: the
     Poisson tail P(entry >= 8 | mean 2) ~ 1e-3 keeps premature
     freeze-on-overflow rare while a lookup still costs one cache line. *)
  let entry_count = max 2 (next_pow2 ((capacity_items + 1) / 2)) in
  {
    tags = Array.make (entry_count * slots_per_entry) 0;
    refs = Array.make (entry_count * slots_per_entry) 0;
    entry_count;
    items = Array.make (min capacity_items 64) { ikey = Ikey.make "" ~seq:0L; value = "" };
    item_count = 0;
    capacity_items;
    byte_size = 0;
    probes = 0;
  }

let entry_of t user_key =
  Wip_util.Hashing.hash32 user_key land (t.entry_count - 1)

let grow_items t =
  let cap = Array.length t.items in
  if t.item_count = cap then begin
    let bigger =
      Array.make (min t.capacity_items (max 64 (cap * 2)))
        { ikey = Ikey.make "" ~seq:0L; value = "" }
    in
    Array.blit t.items 0 bigger 0 cap;
    t.items <- bigger
  end

let try_add t ikey value =
  if t.item_count >= t.capacity_items then false
  else begin
    let entry = entry_of t ikey.Ikey.user_key in
    let base = entry * slots_per_entry in
    (* Find the first empty slot in the entry's log. *)
    let rec first_free s =
      if s = slots_per_entry then None
      else begin
        t.probes <- t.probes + 1;
        if t.tags.(base + s) = 0 then Some s else first_free (s + 1)
      end
    in
    match first_free 0 with
    | None -> false (* entry overflow: freeze the table *)
    | Some s ->
      grow_items t;
      t.items.(t.item_count) <- { ikey; value };
      t.tags.(base + s) <- Wip_util.Hashing.tag16 ikey.Ikey.user_key;
      t.refs.(base + s) <- t.item_count;
      t.item_count <- t.item_count + 1;
      t.byte_size <-
        t.byte_size + String.length ikey.Ikey.user_key + String.length value + 8;
      true
  end

let find t user_key ~snapshot =
  let entry = entry_of t user_key in
  let base = entry * slots_per_entry in
  let tag = Wip_util.Hashing.tag16 user_key in
  (* Scan the slot log from its end: newest first. *)
  let rec scan s =
    if s < 0 then None
    else begin
      t.probes <- t.probes + 1;
      if t.tags.(base + s) = 0 then scan (s - 1)
      else if t.tags.(base + s) <> tag then scan (s - 1)
      else
        let item = t.items.(t.refs.(base + s)) in
        if
          String.equal item.ikey.Ikey.user_key user_key
          && Int64.compare item.ikey.Ikey.seq snapshot <= 0
        then Some (item.ikey.Ikey.kind, item.value)
        else scan (s - 1)
    end
  in
  scan (slots_per_entry - 1)

let find_with_seq t user_key ~snapshot =
  let entry = entry_of t user_key in
  let base = entry * slots_per_entry in
  let tag = Wip_util.Hashing.tag16 user_key in
  let rec scan s =
    if s < 0 then None
    else begin
      t.probes <- t.probes + 1;
      if t.tags.(base + s) = 0 then scan (s - 1)
      else if t.tags.(base + s) <> tag then scan (s - 1)
      else
        let item = t.items.(t.refs.(base + s)) in
        if
          String.equal item.ikey.Ikey.user_key user_key
          && Int64.compare item.ikey.Ikey.seq snapshot <= 0
        then Some (item.ikey.Ikey.kind, item.value, item.ikey.Ikey.seq)
        else scan (s - 1)
    end
  in
  scan (slots_per_entry - 1)

let to_sorted_entries t =
  let arr = Array.init t.item_count (fun i -> t.items.(i)) in
  Array.sort (fun a b -> Ikey.compare a.ikey b.ikey) arr;
  Array.map (fun it -> (it.ikey, it.value)) arr

let count t = t.item_count

let byte_size t = t.byte_size

let probes t = t.probes

let capacity_items t = t.capacity_items
