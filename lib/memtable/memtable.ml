module Ikey = Wip_util.Ikey

type structure = Hash | Sorted

type impl = I_hash of Hash_memtable.t | I_sorted of Skiplist.t

type t = {
  impl : impl;
  capacity_items : int;
  capacity_bytes : int;
  mutable min_seq : int64 option;
}

let create ~structure ~capacity_items ~capacity_bytes =
  let impl =
    match structure with
    | Hash -> I_hash (Hash_memtable.create ~capacity_items)
    | Sorted -> I_sorted (Skiplist.create ())
  in
  { impl; capacity_items; capacity_bytes; min_seq = None }

let structure t = match t.impl with I_hash _ -> Hash | I_sorted _ -> Sorted

let count t =
  match t.impl with
  | I_hash h -> Hash_memtable.count h
  | I_sorted s -> Skiplist.count s

let byte_size t =
  match t.impl with
  | I_hash h -> Hash_memtable.byte_size h
  | I_sorted s -> Skiplist.byte_size s

let note_seq t seq =
  match t.min_seq with
  | None -> t.min_seq <- Some seq
  | Some m -> if Int64.compare seq m < 0 then t.min_seq <- Some seq

let try_add t ikey value =
  if count t >= t.capacity_items || byte_size t >= t.capacity_bytes then false
  else
    match t.impl with
    | I_hash h ->
      let ok = Hash_memtable.try_add h ikey value in
      if ok then note_seq t ikey.Ikey.seq;
      ok
    | I_sorted s ->
      Skiplist.add s ikey value;
      note_seq t ikey.Ikey.seq;
      true

let find t user_key ~snapshot =
  match t.impl with
  | I_hash h -> Hash_memtable.find h user_key ~snapshot
  | I_sorted s -> Skiplist.find s user_key ~snapshot

let find_with_seq t user_key ~snapshot =
  match t.impl with
  | I_hash h -> Hash_memtable.find_with_seq h user_key ~snapshot
  | I_sorted s -> Skiplist.find_with_seq s user_key ~snapshot

let sorted_entries t =
  match t.impl with
  | I_hash h -> Hash_memtable.to_sorted_entries h
  | I_sorted s -> Array.of_seq (Skiplist.to_sorted_seq s)

let range t ~lo ~hi ~snapshot =
  let entries = sorted_entries t in
  let acc = ref [] in
  let last_key = ref None in
  Array.iter
    (fun ((k : Ikey.t), v) ->
      if
        Ikey.compare_user k.Ikey.user_key lo >= 0
        && Ikey.compare_user k.Ikey.user_key hi < 0
        && Int64.compare k.Ikey.seq snapshot <= 0
        && not
             (match !last_key with
             | Some prev -> String.equal prev k.Ikey.user_key
             | None -> false)
      then begin
        last_key := Some k.Ikey.user_key;
        acc := (k.Ikey.user_key, (k.Ikey.kind, v, k.Ikey.seq)) :: !acc
      end)
    entries;
  List.rev !acc

let probes t =
  match t.impl with
  | I_hash h -> Hash_memtable.probes h
  | I_sorted s -> Skiplist.probes s

let is_empty t = count t = 0

let min_seq t = t.min_seq
