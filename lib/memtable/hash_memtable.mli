(** WipDB's hash-table MemTable (paper §III-C, Figure 4).

    The directory is an array of cacheline-sized entries, each holding eight
    slots. A slot stores a two-byte tag derived from the user key and a
    pointer (here: an index into the item arena). The slots of an entry are
    used as a log: new items are appended at the end, and lookups scan from
    the end so the newest version of a key wins. When any entry overflows —
    or the item arena reaches capacity — the table reports itself full; the
    owner freezes it, sorts it, and writes it out as a level-0 LevelTable.

    No entry is ever relocated, so a single memory access (one entry probe)
    serves a lookup — the property behind the Figure 3 throughput gap. *)

type t

val create : capacity_items:int -> t
(** Directory is sized so that an average of four slots per entry are used
    at capacity, leaving headroom before overflow. *)

val try_add : t -> Wip_util.Ikey.t -> string -> bool
(** [false] means the table is full (entry overflow or arena at capacity)
    and the item was NOT inserted; the caller must rotate the table. *)

val find : t -> string -> snapshot:int64 -> (Wip_util.Ikey.kind * string) option

val find_with_seq :
  t -> string -> snapshot:int64 ->
  (Wip_util.Ikey.kind * string * int64) option
(** {!find} that also reports the matched version's sequence number. *)

val to_sorted_entries : t -> (Wip_util.Ikey.t * string) array
(** Sort-on-demand: copies the arena into a fresh buffer sorted by internal
    key (the paper's one-time-use buffer for range search / flush). The
    table itself is not modified. *)

val count : t -> int

val byte_size : t -> int

val probes : t -> int
(** Cumulative slot inspections — memory-access proxy for Figure 3. *)

val capacity_items : t -> int
