module Ikey = Wip_util.Ikey

let max_height = 12

type node = {
  ikey : Ikey.t option; (* None only for the head sentinel *)
  value : string;
  next : node option array;
}

type t = {
  head : node;
  rng : Wip_util.Rng.t;
  mutable height : int;
  mutable count : int;
  mutable byte_size : int;
  mutable probes : int;
}

let create ?(seed = 0x5175L) () =
  {
    head = { ikey = None; value = ""; next = Array.make max_height None };
    rng = Wip_util.Rng.create ~seed;
    height = 1;
    count = 0;
    byte_size = 0;
    probes = 0;
  }

let random_height t =
  (* Branching factor 4: each extra level with probability 1/4. *)
  let rec loop h =
    if h < max_height && Wip_util.Rng.int t.rng 4 = 0 then loop (h + 1) else h
  in
  loop 1

(* [node_before t ikey prev] finds, at every level, the last node whose key
   is strictly before [ikey]; fills [prev] when provided. *)
let node_before t ikey prev =
  let rec descend node level =
    t.probes <- t.probes + 1;
    let advance =
      match node.next.(level) with
      | Some next_node -> (
        match next_node.ikey with
        | Some k when Ikey.compare k ikey < 0 -> Some next_node
        | _ -> None)
      | None -> None
    in
    match advance with
    | Some next_node -> descend next_node level
    | None ->
      (match prev with Some arr -> arr.(level) <- node | None -> ());
      if level = 0 then node else descend node (level - 1)
  in
  descend t.head (t.height - 1)

let add t ikey value =
  let prev = Array.make max_height t.head in
  ignore (node_before t ikey (Some prev));
  let h = random_height t in
  if h > t.height then begin
    for level = t.height to h - 1 do
      prev.(level) <- t.head
    done;
    t.height <- h
  end;
  let node = { ikey = Some ikey; value; next = Array.make h None } in
  for level = 0 to h - 1 do
    node.next.(level) <- prev.(level).next.(level);
    prev.(level).next.(level) <- Some node
  done;
  t.count <- t.count + 1;
  t.byte_size <-
    t.byte_size + String.length ikey.Ikey.user_key + String.length value + 16

let find t user_key ~snapshot =
  (* The newest visible version has the largest seq <= snapshot; in internal
     key order that is the first entry for [user_key] at or after
     (user_key, snapshot). *)
  let target = Ikey.make user_key ~seq:snapshot in
  let before = node_before t target None in
  let rec scan node =
    t.probes <- t.probes + 1;
    match node.next.(0) with
    | None -> None
    | Some next_node -> (
      match next_node.ikey with
      | None -> None
      | Some k ->
        if String.equal k.Ikey.user_key user_key then
          if Int64.compare k.Ikey.seq snapshot <= 0 then
            Some (k.Ikey.kind, next_node.value)
          else scan next_node
        else None)
  in
  scan before

let find_with_seq t user_key ~snapshot =
  let target = Ikey.make user_key ~seq:snapshot in
  let before = node_before t target None in
  let rec scan node =
    t.probes <- t.probes + 1;
    match node.next.(0) with
    | None -> None
    | Some next_node -> (
      match next_node.ikey with
      | None -> None
      | Some k ->
        if String.equal k.Ikey.user_key user_key then
          if Int64.compare k.Ikey.seq snapshot <= 0 then
            Some (k.Ikey.kind, next_node.value, k.Ikey.seq)
          else scan next_node
        else None)
  in
  scan before

let to_sorted_seq t =
  let rec from node () =
    match node.next.(0) with
    | None -> Seq.Nil
    | Some next_node -> (
      match next_node.ikey with
      | None -> Seq.Nil
      | Some k -> Seq.Cons ((k, next_node.value), from next_node))
  in
  from t.head

let range t ~lo ~hi ~snapshot =
  let rec collect seq last_key acc =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((k, v), rest) ->
      if Ikey.compare_user k.Ikey.user_key lo < 0 then collect rest last_key acc
      else if Ikey.compare_user k.Ikey.user_key hi >= 0 then List.rev acc
      else if Int64.compare k.Ikey.seq snapshot > 0 then
        collect rest last_key acc
      else if (match last_key with
               | Some prev_key -> String.equal prev_key k.Ikey.user_key
               | None -> false)
      then collect rest last_key acc
      else
        let last_key = Some k.Ikey.user_key in
        (match k.Ikey.kind with
         | Ikey.Value -> collect rest last_key ((k.Ikey.user_key, v) :: acc)
         | Ikey.Deletion -> collect rest last_key acc)
  in
  collect (to_sorted_seq t) None []

let count t = t.count

let byte_size t = t.byte_size

let probes t = t.probes
