(** Unified MemTable front.

    A WipDB bucket owns one of these; the underlying structure is either the
    {!Hash_memtable} (default, write-optimized) or the {!Skiplist}
    (range-scan friendly). The adaptive policy in the core library decides
    which structure each bucket's next table uses, based on recent
    range-query traffic (paper §III-D). *)

type structure = Hash | Sorted

type t

val create : structure:structure -> capacity_items:int -> capacity_bytes:int -> t

val structure : t -> structure

val try_add : t -> Wip_util.Ikey.t -> string -> bool
(** [false] iff the table is full; the item was not inserted. A skiplist
    table is full when [capacity_bytes] or [capacity_items] is reached; a
    hash table additionally when a directory entry overflows. *)

val find : t -> string -> snapshot:int64 -> (Wip_util.Ikey.kind * string) option

val find_with_seq :
  t -> string -> snapshot:int64 ->
  (Wip_util.Ikey.kind * string * int64) option
(** {!find} that also reports the found version's sequence number — the
    transaction layer validates commit read/write sets against it. *)

val sorted_entries : t -> (Wip_util.Ikey.t * string) array
(** For flushing and range search. Hash tables sort into a one-time buffer;
    skiplists just materialize their order. *)

val range : t -> lo:string -> hi:string -> snapshot:int64
  -> (string * (Wip_util.Ikey.kind * string * int64)) list
(** All newest-visible versions (including tombstones, which the store-level
    merge needs) with [lo <= key < hi], ascending: [(key, (kind, value, seq))]. *)

val count : t -> int

val byte_size : t -> int

val probes : t -> int

val is_empty : t -> bool

val min_seq : t -> int64 option
(** Smallest sequence number held — drives WAL reclamation. *)
