(** LRU block cache.

    Caches raw (already CRC-verified) data blocks keyed by
    [(file name, offset)], bounded by a byte capacity. Table readers consult
    it before issuing device reads, so repeated point reads and scans over
    hot ranges skip the device entirely — the effect the paper relies on
    when it notes that freshly written, immediately read items are served
    from a cache (§III-G). *)

type t

val create : capacity_bytes:int -> t

val find : t -> file:string -> offset:int -> string option
(** Marks the entry most-recently-used on a hit. *)

val find_no_fill : t -> file:string -> offset:int -> string option
(** Scan-resistant probe: a hit counts in {!hits} but does not promote the
    entry; a miss counts in {!bypasses} instead of {!misses}. Sequential
    readers (compaction, splits) use this so one pass over a table neither
    pollutes the recency order nor skews the point-read hit rate. *)

val add : t -> file:string -> offset:int -> string -> unit
(** Inserts (replacing any previous entry for the key) and evicts
    least-recently-used entries until the total payload fits the capacity.
    Values larger than the whole capacity are not cached; such inserts
    count in {!rejections} rather than silently vanishing. *)

val evict_file : t -> string -> unit
(** Drop every block of a deleted file. *)

type counters = {
  c_hits : int;
  c_misses : int;
  c_bypasses : int;
  c_rejections : int;
  c_used_bytes : int;
  c_entries : int;
}

val counters : t -> counters
(** Every counter read under one lock acquisition — the only way to get a
    mutually consistent set while other threads hit the cache. The scalar
    getters below each take the lock separately, so a pair of them read
    around concurrent traffic can be torn. *)

val hits : t -> int

val misses : t -> int

val bypasses : t -> int
(** Misses of {!find_no_fill} probes (deliberate non-filling traffic). *)

val rejections : t -> int
(** Inserts dropped because the value alone exceeded the capacity. *)

val used_bytes : t -> int

val entry_count : t -> int
