(** Deterministic fault injection under any store.

    [Fault_env] is an in-memory device that distinguishes, per file, the
    bytes a crash would preserve (the {e synced prefix}) from bytes that are
    merely buffered. Every [append] and every [sync] issued through the
    wrapped {!Env.t} is a numbered {e durable op}; a scriptable fault plan
    can, at any chosen op:

    - {b crash}: capture a device image in which every file is cut back to
      its synced prefix — optionally keeping [torn] extra bytes of the
      written file's unsynced tail, modelling a torn write — and abort the
      run by raising {!Crashed};
    - {b fail}: raise the typed {!Env.Io_fault} without applying the
      operation (a transient device error — retrying is legal).

    Reads are independently numbered and can be failed the same way, and
    stored bytes can be bit-flipped in place to model silent media
    corruption. Deletions, renames and file creation are modelled as
    immediately durable — the pessimistic direction for data loss, since a
    deleted WAL segment is unrecoverable while an undeleted orphan is
    merely garbage.

    The crash-matrix harness ([test/test_crash_matrix.ml]) first profiles a
    workload with an empty plan to learn its durable-op count, then replays
    it once per op with a crash scheduled there, recovering from each image
    and asserting the recovery invariants of DESIGN.md. *)

exception Crashed
(** Raised at a scripted crash point, after the device image is captured.
    The store that was running on the env is dead; only {!image} matters. *)

type t

val create : unit -> t

val env : t -> Env.t
(** The wrapped environment to hand to a store. All traffic through it is
    subject to the fault plan; injected faults are counted by
    {!Io_stats.fault_count} on its stats. *)

(** {1 Scripting faults} *)

val crash_at : t -> op:int -> ?torn:int -> unit -> unit
(** Crash when durable op [op] (1-based, counting appends and syncs in
    issue order) executes. [torn] (default 0) bytes of the affected file's
    unsynced tail survive into the image beyond its synced prefix. *)

val fail_write_at : t -> ?retryable:bool -> op:int -> unit -> unit
(** Raise {!Env.Io_fault} at durable op [op] instead of applying it.
    [retryable] (default [true]) marks the fault transient; pass [false]
    to model a permanent error that retry loops must give up on. *)

val fail_read_at : t -> op:int -> unit
(** Raise {!Env.Io_fault} at read op [op] (1-based, counting reads). Read
    faults carry [retryable = false] — the read path surfaces them typed
    rather than re-attempting. *)

val storm : t -> first_op:int -> last_op:int -> unit
(** A transient-fault storm: every durable op in [[first_op, last_op)]
    raises a retryable {!Env.Io_fault}. Retries themselves are numbered
    ops, so a storm of width [w] defeats fewer than ⌈w / (attempts - 1)⌉
    logical operations before the window passes. Storms stack. *)

val set_space_budget : t -> bytes:int option -> unit
(** Disk full after a byte budget: once [bytes] total have been appended
    successfully, any further append raises
    [Io_fault { op = "no_space"; retryable = false }] before the bytes are
    buffered. [None] (the initial state) removes the limit. *)

val set_latency : t -> durable_ns:int -> unit
(** Sleep [durable_ns] nanoseconds before each durable op — a slow device,
    for exercising stall deadlines. 0 (the initial state) disables. *)

val appended_bytes : t -> int
(** Total bytes successfully appended — the amount charged against the
    space budget. *)

val flip_bit : t -> file:string -> bit:int -> unit
(** Flip bit [bit] (counting from bit 0 of byte 0) of the stored file —
    silent media corruption. The flip lands in both the live contents and
    the synced prefix. @raise Not_found if the file does not exist. *)

(** {1 Observation} *)

val durable_ops : t -> int
(** Durable ops (appends + syncs) executed so far — after a fault-free
    profiling run, the size of the crash matrix. *)

val read_ops : t -> int

val file_size : t -> string -> int
(** Current (buffered) size of a file. @raise Not_found if missing. *)

(** {1 Images} *)

val image : t -> Env.t
(** The device image captured by the crash that fired. A fresh in-memory
    {!Env.t} — recover a store from it. @raise Invalid_argument if no
    scripted crash has fired. *)

val durable_image : t -> Env.t
(** An image of the durable state {e right now} (every file cut to its
    synced prefix), without scheduling a crash — "what if power failed at
    this instant". *)

val snapshot_env : ?truncate:string * int -> t -> Env.t
(** A copy of the full current state (buffered bytes included), with the
    named file truncated to the given byte count when [truncate] is
    supplied. A [truncate] naming a missing file is ignored — copying a
    device with no WAL segment is not an error. *)
