type category =
  | User_write
  | Wal
  | Flush
  | Compaction of int
  | Compaction_read of int
  | Split
  | Read_path
  | Manifest
  | Table_meta

(* Fixed slots for the scalar categories; per-level compaction traffic lives
   in growable arrays indexed by level. A per-record mutex makes every
   recorder and reader atomic: one Env (and thus one stats record) may be
   shared by several shard stores written from parallel threads. *)
module Sync = Wip_util.Sync

type t = {
  lock : Sync.t;
  mutable user : int; (* guarded_by: lock *)
  mutable wal_w : int; (* guarded_by: lock *)
  mutable wal_r : int; (* guarded_by: lock *)
  mutable flush_w : int; (* guarded_by: lock *)
  mutable flush_r : int; (* guarded_by: lock *)
  mutable split_w : int; (* guarded_by: lock *)
  mutable split_r : int; (* guarded_by: lock *)
  mutable read_path_w : int; (* guarded_by: lock *)
  mutable read_path_r : int; (* guarded_by: lock *)
  mutable manifest_w : int; (* guarded_by: lock *)
  mutable manifest_r : int; (* guarded_by: lock *)
  mutable table_meta_w : int; (* guarded_by: lock *)
  mutable table_meta_r : int; (* guarded_by: lock *)
  mutable level_w : int array; (* writes into level i; guarded_by: lock *)
  mutable level_r : int array; (* reads from level i; guarded_by: lock *)
  mutable syncs : int; (* durability barriers issued; guarded_by: lock *)
  mutable faults : int; (* injected faults (crashes, I/O errors, bit flips); guarded_by: lock *)
  mutable stalls : int; (* admission-control write stalls; guarded_by: lock *)
  mutable stall_ns : int; (* total time spent in those stalls; guarded_by: lock *)
  mutable retries : int; (* durable-op re-attempts after transient faults; guarded_by: lock *)
  mutable degraded_transitions : int; (* Healthy -> Degraded edges; guarded_by: lock *)
  mutable bloom_probes : int; (* bloom filter consultations on reads; guarded_by: lock *)
  mutable bloom_negatives : int; (* probes answered "definitely absent"; guarded_by: lock *)
  mutable bloom_fps : int; (* maybe-answers that then found nothing; guarded_by: lock *)
  mutable block_fetches : int; (* data-block requests (cache hits included); guarded_by: lock *)
  mutable group_commits : int; (* group-commit windows (one fsync each); guarded_by: lock *)
  mutable group_commit_requests : int; (* logical commits coalesced into them; guarded_by: lock *)
  mutable group_commit_ns : int; (* total window latency, submit to ack; guarded_by: lock *)
  mutable ph_probes : int; (* perfect-hash point-index lookups; guarded_by: lock *)
  mutable ph_false_hits : int; (* fingerprint aliases rejected by key check; guarded_by: lock *)
  mutable ph_fallbacks : int; (* ph blocks dropped (CRC/parse) at open; guarded_by: lock *)
  mutable view_rebuilds : int; (* sorted-view builds + incremental add_runs; guarded_by: lock *)
  mutable view_rebuild_ns : int; (* total time spent in those rebuilds; guarded_by: lock *)
}

let create () =
  {
    lock = Sync.create ~name:"io_stats" ();
    user = 0;
    wal_w = 0;
    wal_r = 0;
    flush_w = 0;
    flush_r = 0;
    split_w = 0;
    split_r = 0;
    read_path_w = 0;
    read_path_r = 0;
    manifest_w = 0;
    manifest_r = 0;
    table_meta_w = 0;
    table_meta_r = 0;
    level_w = Array.make 8 0;
    level_r = Array.make 8 0;
    syncs = 0;
    faults = 0;
    stalls = 0;
    stall_ns = 0;
    retries = 0;
    degraded_transitions = 0;
    bloom_probes = 0;
    bloom_negatives = 0;
    bloom_fps = 0;
    block_fetches = 0;
    group_commits = 0;
    group_commit_requests = 0;
    group_commit_ns = 0;
    ph_probes = 0;
    ph_false_hits = 0;
    ph_fallbacks = 0;
    view_rebuilds = 0;
    view_rebuild_ns = 0;
  }

let locked t f = Sync.with_lock t.lock f

let ensure_level arr level =
  let arr' =
    if level < Array.length arr then arr
    else begin
      let bigger = Array.make (max (level + 1) (2 * Array.length arr)) 0 in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    end
  in
  arr'

let record_write t cat n =
  locked t (fun () ->
      match cat with
      | User_write -> t.user <- t.user + n
      | Wal -> t.wal_w <- t.wal_w + n
      | Flush -> t.flush_w <- t.flush_w + n
      | Compaction level ->
        t.level_w <- ensure_level t.level_w level;
        t.level_w.(level) <- t.level_w.(level) + n
      | Compaction_read level ->
        t.level_r <- ensure_level t.level_r level;
        t.level_r.(level) <- t.level_r.(level) + n
      | Split -> t.split_w <- t.split_w + n
      | Read_path -> t.read_path_w <- t.read_path_w + n
      | Manifest -> t.manifest_w <- t.manifest_w + n
      | Table_meta -> t.table_meta_w <- t.table_meta_w + n)

let record_read t cat n =
  locked t (fun () ->
      match cat with
      | User_write -> t.user <- t.user + n
      | Wal -> t.wal_r <- t.wal_r + n
      | Flush -> t.flush_r <- t.flush_r + n
      | Compaction level | Compaction_read level ->
        t.level_r <- ensure_level t.level_r level;
        t.level_r.(level) <- t.level_r.(level) + n
      | Split -> t.split_r <- t.split_r + n
      | Read_path -> t.read_path_r <- t.read_path_r + n
      | Manifest -> t.manifest_r <- t.manifest_r + n
      | Table_meta -> t.table_meta_r <- t.table_meta_r + n)

let record_sync t =
  locked t (fun () ->
      (* Debug witness for the guarded_by annotations above. *)
      Sync.check_guard t.lock ~field:"syncs";
      t.syncs <- t.syncs + 1)

let record_bloom_probe t ~negative =
  locked t (fun () ->
      t.bloom_probes <- t.bloom_probes + 1;
      if negative then t.bloom_negatives <- t.bloom_negatives + 1)

let record_bloom_false_positive t =
  locked t (fun () -> t.bloom_fps <- t.bloom_fps + 1)

let record_block_fetch t =
  locked t (fun () -> t.block_fetches <- t.block_fetches + 1)

let bloom_probe_count t = locked t (fun () -> t.bloom_probes)

let bloom_negative_count t = locked t (fun () -> t.bloom_negatives)

let bloom_false_positive_count t = locked t (fun () -> t.bloom_fps)

let bloom_fp_rate t =
  locked t (fun () ->
      let maybes = t.bloom_probes - t.bloom_negatives in
      if maybes <= 0 then 0.0 else float_of_int t.bloom_fps /. float_of_int maybes)

let block_fetch_count t = locked t (fun () -> t.block_fetches)

let record_fault t = locked t (fun () -> t.faults <- t.faults + 1)

let record_group_commit t ~requests ~ns =
  locked t (fun () ->
      t.group_commits <- t.group_commits + 1;
      t.group_commit_requests <- t.group_commit_requests + requests;
      t.group_commit_ns <- t.group_commit_ns + max 0 ns)

let group_commit_count t = locked t (fun () -> t.group_commits)

let group_commit_request_count t = locked t (fun () -> t.group_commit_requests)

let group_commit_ns t = locked t (fun () -> t.group_commit_ns)

let record_ph_probe t = locked t (fun () -> t.ph_probes <- t.ph_probes + 1)

let record_ph_false_hit t =
  locked t (fun () -> t.ph_false_hits <- t.ph_false_hits + 1)

let record_ph_fallback t =
  locked t (fun () -> t.ph_fallbacks <- t.ph_fallbacks + 1)

let record_view_rebuild t ~ns =
  locked t (fun () ->
      t.view_rebuilds <- t.view_rebuilds + 1;
      t.view_rebuild_ns <- t.view_rebuild_ns + max 0 ns)

let ph_probe_count t = locked t (fun () -> t.ph_probes)

let ph_false_hit_count t = locked t (fun () -> t.ph_false_hits)

let ph_fallback_count t = locked t (fun () -> t.ph_fallbacks)

let view_rebuild_count t = locked t (fun () -> t.view_rebuilds)

let view_rebuild_ns t = locked t (fun () -> t.view_rebuild_ns)

let record_stall t ~ns =
  locked t (fun () ->
      t.stalls <- t.stalls + 1;
      t.stall_ns <- t.stall_ns + max 0 ns)

let record_retry t = locked t (fun () -> t.retries <- t.retries + 1)

let record_degraded_transition t =
  locked t (fun () -> t.degraded_transitions <- t.degraded_transitions + 1)

let sync_count t = locked t (fun () -> t.syncs)

let fault_count t = locked t (fun () -> t.faults)

let stall_count t = locked t (fun () -> t.stalls)

let stall_ns t = locked t (fun () -> t.stall_ns)

let retry_count t = locked t (fun () -> t.retries)

let degraded_transition_count t = locked t (fun () -> t.degraded_transitions)

let sum = Array.fold_left ( + ) 0

let bytes_written t =
  locked t (fun () ->
      t.wal_w + t.flush_w + t.split_w + t.manifest_w + t.table_meta_w
      + sum t.level_w)

let store_bytes_written t =
  locked t (fun () ->
      t.flush_w + t.split_w + t.manifest_w + t.table_meta_w + sum t.level_w)

let bytes_read t =
  locked t (fun () ->
      t.wal_r + t.flush_r + t.split_r + t.read_path_r + t.manifest_r
      + t.table_meta_r + sum t.level_r)

let user_bytes t = locked t (fun () -> t.user)

let write_amplification t =
  locked t (fun () ->
      if t.user = 0 then 0.0
      else
        let store_w =
          t.flush_w + t.split_w + t.manifest_w + t.table_meta_w + sum t.level_w
        in
        float_of_int store_w /. float_of_int t.user)

let written_by t cat =
  locked t (fun () ->
      match cat with
      | User_write -> t.user
      | Wal -> t.wal_w
      | Flush -> t.flush_w
      | Compaction level ->
        if level < Array.length t.level_w then t.level_w.(level) else 0
      | Compaction_read level ->
        if level < Array.length t.level_r then t.level_r.(level) else 0
      | Split -> t.split_w
      | Read_path -> t.read_path_w
      | Manifest -> t.manifest_w
      | Table_meta -> t.table_meta_w)

let read_by t cat =
  locked t (fun () ->
      match cat with
      | User_write -> t.user
      | Wal -> t.wal_r
      | Flush -> t.flush_r
      | Compaction level | Compaction_read level ->
        if level < Array.length t.level_r then t.level_r.(level) else 0
      | Split -> t.split_r
      | Read_path -> t.read_path_r
      | Manifest -> t.manifest_r
      | Table_meta -> t.table_meta_r)

let per_level arr =
  let acc = ref [] in
  for level = Array.length arr - 1 downto 0 do
    if arr.(level) > 0 then acc := (level, arr.(level)) :: !acc
  done;
  !acc

let per_level_write t = locked t (fun () -> per_level t.level_w)

let per_level_read t = locked t (fun () -> per_level t.level_r)

let reset t =
  locked t (fun () ->
      t.user <- 0;
      t.wal_w <- 0;
      t.wal_r <- 0;
      t.flush_w <- 0;
      t.flush_r <- 0;
      t.split_w <- 0;
      t.split_r <- 0;
      t.read_path_w <- 0;
      t.read_path_r <- 0;
      t.manifest_w <- 0;
      t.manifest_r <- 0;
      t.table_meta_w <- 0;
      t.table_meta_r <- 0;
      t.syncs <- 0;
      t.faults <- 0;
      t.stalls <- 0;
      t.stall_ns <- 0;
      t.retries <- 0;
      t.degraded_transitions <- 0;
      t.bloom_probes <- 0;
      t.bloom_negatives <- 0;
      t.bloom_fps <- 0;
      t.block_fetches <- 0;
      t.group_commits <- 0;
      t.group_commit_requests <- 0;
      t.group_commit_ns <- 0;
      t.ph_probes <- 0;
      t.ph_false_hits <- 0;
      t.ph_fallbacks <- 0;
      t.view_rebuilds <- 0;
      t.view_rebuild_ns <- 0;
      Array.fill t.level_w 0 (Array.length t.level_w) 0;
      Array.fill t.level_r 0 (Array.length t.level_r) 0)

let snapshot t =
  locked t (fun () ->
      {
        t with
        lock = Sync.create ~name:"io_stats" ();
        level_w = Array.copy t.level_w;
        level_r = Array.copy t.level_r;
      })

(* [diff] reads only private snapshot copies — its own [snapshot cur] and a
   caller-held base snapshot — never the live shared record, so the
   guarded-by discipline does not apply to its field reads.
   lint: allow-fun R8 — fields of private snapshot copies *)
let diff cur base =
  (* [base] is normally a private {!snapshot}; take an atomic copy of [cur]
     first so the subtraction sees one consistent state. *)
  let cur = snapshot cur in
  let sub_arrays a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i ->
        (if i < Array.length a then a.(i) else 0)
        - if i < Array.length b then b.(i) else 0)
  in
  {
    lock = Sync.create ~name:"io_stats" ();
    user = cur.user - base.user;
    wal_w = cur.wal_w - base.wal_w;
    wal_r = cur.wal_r - base.wal_r;
    flush_w = cur.flush_w - base.flush_w;
    flush_r = cur.flush_r - base.flush_r;
    split_w = cur.split_w - base.split_w;
    split_r = cur.split_r - base.split_r;
    read_path_w = cur.read_path_w - base.read_path_w;
    read_path_r = cur.read_path_r - base.read_path_r;
    manifest_w = cur.manifest_w - base.manifest_w;
    manifest_r = cur.manifest_r - base.manifest_r;
    table_meta_w = cur.table_meta_w - base.table_meta_w;
    table_meta_r = cur.table_meta_r - base.table_meta_r;
    level_w = sub_arrays cur.level_w base.level_w;
    level_r = sub_arrays cur.level_r base.level_r;
    syncs = cur.syncs - base.syncs;
    faults = cur.faults - base.faults;
    stalls = cur.stalls - base.stalls;
    stall_ns = cur.stall_ns - base.stall_ns;
    retries = cur.retries - base.retries;
    degraded_transitions = cur.degraded_transitions - base.degraded_transitions;
    bloom_probes = cur.bloom_probes - base.bloom_probes;
    bloom_negatives = cur.bloom_negatives - base.bloom_negatives;
    bloom_fps = cur.bloom_fps - base.bloom_fps;
    block_fetches = cur.block_fetches - base.block_fetches;
    group_commits = cur.group_commits - base.group_commits;
    group_commit_requests = cur.group_commit_requests - base.group_commit_requests;
    group_commit_ns = cur.group_commit_ns - base.group_commit_ns;
    ph_probes = cur.ph_probes - base.ph_probes;
    ph_false_hits = cur.ph_false_hits - base.ph_false_hits;
    ph_fallbacks = cur.ph_fallbacks - base.ph_fallbacks;
    view_rebuilds = cur.view_rebuilds - base.view_rebuilds;
    view_rebuild_ns = cur.view_rebuild_ns - base.view_rebuild_ns;
  }
