(* Classic LRU: a hash table from key to a doubly-linked node; the list head
   is most recent, the tail gets evicted. A single internal mutex makes every
   operation atomic — the cache is shared by all of a store's tables and, in
   the sharded front, probed from many threads, and even [find] mutates (hit
   counters, recency list). *)

type key = { file : string; offset : int }

type node = {
  key : key;
  value : string;
  mutable prev : node option; (* guarded_by: lock *)
  mutable next : node option; (* guarded_by: lock *)
}

module Sync = Wip_util.Sync

type t = {
  lock : Sync.t;
  capacity : int;
  table : (key, node) Hashtbl.t; (* guarded_by: lock *)
  mutable head : node option; (* guarded_by: lock *)
  mutable tail : node option; (* guarded_by: lock *)
  mutable used : int; (* guarded_by: lock *)
  mutable hits : int; (* guarded_by: lock *)
  mutable misses : int; (* guarded_by: lock *)
  mutable bypasses : int; (* no-fill probes that missed; guarded_by: lock *)
  mutable rejections : int; (* capacity-exceeding inserts; guarded_by: lock *)
}

let create ~capacity_bytes =
  {
    lock = Sync.create ~name:"block_cache" ();
    capacity = max 0 capacity_bytes;
    table = Hashtbl.create 256;
    head = None;
    tail = None;
    used = 0;
    hits = 0;
    misses = 0;
    bypasses = 0;
    rejections = 0;
  }

let locked t f = Sync.with_lock t.lock f

(* requires: lock *)
let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

(* requires: lock *)
let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

(* requires: lock *)
let remove t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  t.used <- t.used - String.length node.value

let find t ~file ~offset =
  locked t (fun () ->
      (* Debug witness for the guarded_by annotations above. *)
      Sync.check_guard t.lock ~field:"hits";
      match Hashtbl.find_opt t.table { file; offset } with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

(* Scan-resistant probe for sequential readers (compaction, splits, range
   scans): a hit is served without promoting the entry, a miss is counted as
   a bypass — not a miss — and the caller is expected not to insert the
   block it then fetches, so one pass over a table cannot evict the
   point-read working set. *)
let find_no_fill t ~file ~offset =
  locked t (fun () ->
      match Hashtbl.find_opt t.table { file; offset } with
      | Some node ->
        t.hits <- t.hits + 1;
        Some node.value
      | None ->
        t.bypasses <- t.bypasses + 1;
        None)

(* requires: lock *)
let rec evict_until_fits t =
  if t.used > t.capacity then
    match t.tail with
    | Some node ->
      remove t node;
      evict_until_fits t
    | None -> ()

let add t ~file ~offset value =
  if String.length value > t.capacity then
    locked t (fun () -> t.rejections <- t.rejections + 1)
  else
    locked t (fun () ->
        let key = { file; offset } in
        (match Hashtbl.find_opt t.table key with
        | Some old -> remove t old
        | None -> ());
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        t.used <- t.used + String.length value;
        evict_until_fits t)

let evict_file t file =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key node acc ->
            if String.equal key.file file then node :: acc else acc)
          t.table []
      in
      List.iter (remove t) victims)

type counters = {
  c_hits : int;
  c_misses : int;
  c_bypasses : int;
  c_rejections : int;
  c_used_bytes : int;
  c_entries : int;
}

(* One acquisition for the whole set: reading counters one getter at a time
   while writers run yields values from different instants (a torn pair —
   e.g. hits + misses no longer equals lookups). Reporting paths snapshot. *)
let counters t =
  locked t (fun () ->
      {
        c_hits = t.hits;
        c_misses = t.misses;
        c_bypasses = t.bypasses;
        c_rejections = t.rejections;
        c_used_bytes = t.used;
        c_entries = Hashtbl.length t.table;
      })

let hits t = locked t (fun () -> t.hits)

let misses t = locked t (fun () -> t.misses)

let bypasses t = locked t (fun () -> t.bypasses)

let rejections t = locked t (fun () -> t.rejections)

let used_bytes t = locked t (fun () -> t.used)

let entry_count t = locked t (fun () -> Hashtbl.length t.table)
