(** Storage environment.

    [Env] abstracts the device under the store: file creation, sequential
    append, random reads, deletion, directory listing — with every byte of
    traffic attributed to an {!Io_stats.category}. Two backends:

    - {!in_memory}: files are byte buffers. Deterministic, fast, and the
      default for tests and benchmarks. Substitutes for the paper's PCIe SSD
      per DESIGN.md — the experiments measure bytes moved, which this backend
      accounts exactly.
    - {!posix}: real files under a root directory, for end-to-end runs.

    Paths are flat strings ("000017.lvt", "wal/000002.log", ...). *)

exception Io_fault of { op : string; file : string; retryable : bool }
(** A device error (injected by {!Fault_env} or surfaced by a backend). The
    operation had no effect. [retryable] classifies it: [true] for transient
    errors that may succeed if re-attempted, [false] for permanent ones
    (disk full, failed media) that must never be spun on.

    Lint rule R6 restricts exception handlers that {e match} this exception
    to [lib/storage] and [Wip_util.Retry]. Other layers catch generically
    and consult the classifiers below. *)

exception Corruption of { file : string; detail : string }
(** Stored bytes failed validation (checksum mismatch, impossible offsets,
    bad magic). Raised by readers instead of ever decoding garbage. *)

val io_fault_retryable : exn -> bool
(** [true] exactly for [Io_fault { retryable = true; _ }]. The classifier
    {!with_retry} uses; exposed so upper layers can classify without
    matching the exception themselves. *)

val io_fault_detail : exn -> string option
(** ["op on file"] for an [Io_fault], [None] otherwise. *)

val corruption_detail : exn -> (string * string) option
(** [(file, detail)] for a {!Corruption}, [None] otherwise. *)

type t

type writer
(** Append-only file handle. *)

type reader
(** Random-access read handle over an immutable (closed) file. *)

val in_memory : unit -> t

val posix : root:string -> t
(** Files live under [root]; the directory is created if missing. File
    creation, deletion and rename are made durable with a directory fsync;
    {!sync} is a real fsync. *)

(** {1 Custom backends}

    A backend implemented outside this module — a vtable of closures.
    {!Fault_env} uses this to interpose fault plans under any store. *)

type custom = {
  c_create : string -> custom_writer;
  c_open : string -> custom_reader;  (** raises [Not_found] when missing *)
  c_exists : string -> bool;
  c_delete : string -> unit;
  c_rename : src:string -> dst:string -> unit;
  c_list : unit -> string list;
  c_live_bytes : unit -> int;
}

and custom_writer = {
  cw_append : string -> unit;
  cw_sync : unit -> unit;
  cw_close : unit -> unit;
}

and custom_reader = {
  cr_size : int;
  cr_read : pos:int -> len:int -> string;
  cr_close : unit -> unit;
}

val custom : custom -> t
(** Wrap a custom backend; I/O accounting still happens in this module. *)

val stats : t -> Io_stats.t

(** {1 Transient-fault retry} *)

val with_retry :
  ?policy:Wip_util.Retry.policy ->
  ?sleep_ns:(int -> unit) ->
  seed:int64 ->
  t ->
  t
(** [with_retry ~seed t] is a derived env sharing [t]'s backend, stats and
    lock, whose durable operations — {!create_file}, {!append}, {!sync},
    {!delete}, {!rename} — are re-attempted under [policy] (default
    {!Wip_util.Retry.default_policy}) when they raise a retryable
    {!Io_fault}. Because every durable byte of WAL, flush, compaction,
    split and manifest traffic flows through these five entry points, this
    one wrapper covers every durable-op site in the store.

    Reads are deliberately {e not} retried: a read fault must propagate
    typed to the caller so the read path can fail the one lookup rather
    than stall it.

    The backoff schedule is deterministic: each durable op derives a fresh
    {!Wip_util.Rng} from [seed] and a per-env op counter. [sleep_ns]
    (default: real [Unix.sleepf]) is swappable for tests. Re-attempts are
    counted by {!Io_stats.retry_count}.
    @raise Invalid_argument if [policy] fails [Retry.validate]. *)

(** {1 Writing} *)

val create_file : t -> string -> writer
(** Truncates any existing file of that name. *)

val append : writer -> category:Io_stats.category -> string -> unit

val writer_offset : writer -> int
(** Bytes written so far. *)

val sync : writer -> unit
(** Durability barrier. No-op in memory; fsync on POSIX. Counted by
    {!Io_stats.sync_count} on every backend. *)

val close_writer : writer -> unit

(** {1 Reading} *)

val open_file : t -> string -> reader
(** @raise Not_found if the file does not exist. *)

val read : reader -> category:Io_stats.category -> pos:int -> len:int -> string
(** @raise Invalid_argument when the range is out of bounds. *)

val read_all : reader -> category:Io_stats.category -> string

val file_size : reader -> int

val close_reader : reader -> unit

(** {1 Namespace} *)

val exists : t -> string -> bool

val delete : t -> string -> unit
(** Idempotent. *)

val rename : t -> src:string -> dst:string -> unit

val list_files : t -> string list
(** All live file names, sorted. *)

val total_live_bytes : t -> int
(** Sum of sizes of all live files — the store's device footprint. *)
