exception Io_fault of { op : string; file : string; retryable : bool }

exception Corruption of { file : string; detail : string }

(* Exception classifiers. R6 restricts handlers that *match* Io_fault to
   lib/storage and Wip_util.Retry; upper layers catch generically and consult
   these, so the fault vocabulary stays defined in one place. *)
let io_fault_retryable = function
  | Io_fault { retryable; _ } -> retryable
  | _ -> false

let io_fault_detail = function
  | Io_fault { op; file; _ } -> Some (Printf.sprintf "%s on %s" op file)
  | _ -> None

let corruption_detail = function
  | Corruption { file; detail } -> Some (file, detail)
  | _ -> None

(* A custom backend is a vtable of closures: the hook Fault_env (and any
   future backend) uses to sit underneath every byte the store moves. *)
type custom = {
  c_create : string -> custom_writer;
  c_open : string -> custom_reader; (* raises Not_found *)
  c_exists : string -> bool;
  c_delete : string -> unit;
  c_rename : src:string -> dst:string -> unit;
  c_list : unit -> string list;
  c_live_bytes : unit -> int;
}

and custom_writer = {
  cw_append : string -> unit;
  cw_sync : unit -> unit;
  cw_close : unit -> unit;
}

and custom_reader = {
  cr_size : int;
  cr_read : pos:int -> len:int -> string;
  cr_close : unit -> unit;
}

type backend =
  | Mem of (string, Buffer.t) Hashtbl.t
  | Posix of string (* root directory *)
  | Custom of custom

(* Retry configuration attached by [with_retry]. The op counter seeds a
   fresh Rng per durable operation, so backoff schedules are deterministic
   from [r_seed] yet uncorrelated across ops, with no shared Rng lock. *)
type retry_state = {
  r_policy : Wip_util.Retry.policy;
  r_seed : int64;
  r_sleep_ns : int -> unit;
  r_ops : int Atomic.t;
}

(* [lock] guards the Mem backend's file table: one in-memory Env may back
   several shard stores driven from parallel threads, and Hashtbl mutations
   race without it. Posix and Custom backends rely on the OS / the custom
   implementation for their own metadata atomicity. File *contents* need no
   lock here: distinct files own distinct buffers, and each store serializes
   access to its own files. *)
type t = {
  backend : backend;
  stats : Io_stats.t;
  lock : Wip_util.Sync.t;
  retry : retry_state option;
}

type writer = {
  w_env : t;
  w_name : string;
  (* A writer belongs to one producing store; [Sharded_store] serializes
     all appends under the owning shard lock. *)
  mutable w_off : int; (* guarded_by: caller *)
  w_impl : w_impl;
}

and w_impl = W_mem of Buffer.t | W_posix of out_channel | W_custom of custom_writer

type reader = {
  r_env : t;
  r_size : int;
  r_impl : r_impl;
}

and r_impl = R_mem of string | R_posix of in_channel | R_custom of custom_reader

let in_memory () =
  {
    backend = Mem (Hashtbl.create 64);
    stats = Io_stats.create ();
    lock = Wip_util.Sync.create ~name:"env" ();
    retry = None;
  }

let custom c =
  {
    backend = Custom c;
    stats = Io_stats.create ();
    lock = Wip_util.Sync.create ~name:"env" ();
    retry = None;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let posix ~root =
  mkdir_p root;
  {
    backend = Posix root;
    stats = Io_stats.create ();
    lock = Wip_util.Sync.create ~name:"env" ();
    retry = None;
  }

let stats t = t.stats

let default_sleep_ns ns = if ns > 0 then Unix.sleepf (float_of_int ns /. 1e9)

let with_retry ?(policy = Wip_util.Retry.default_policy)
    ?(sleep_ns = default_sleep_ns) ~seed t =
  (match Wip_util.Retry.validate policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Env.with_retry: " ^ msg));
  {
    t with
    retry =
      Some { r_policy = policy; r_seed = seed; r_sleep_ns = sleep_ns;
             r_ops = Atomic.make 0 };
  }

(* Run one durable operation under the env's retry policy, if any. Only
   transient faults ([Io_fault] with [retryable = true]) are re-attempted;
   the Io_fault contract — the failed op had no effect — is what makes the
   blind re-run sound. Each re-attempt is counted in [Io_stats.retry_count]. *)
let retried t f =
  match t.retry with
  | None -> f ()
  | Some r ->
    let op = Atomic.fetch_and_add r.r_ops 1 in
    let rng =
      Wip_util.Rng.create
        ~seed:
          (Int64.logxor r.r_seed
             (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (op + 1))))
    in
    Wip_util.Retry.run ~policy:r.r_policy ~rng ~sleep_ns:r.r_sleep_ns
      ~is_retryable:io_fault_retryable
      ~on_retry:(fun ~attempt:_ ~delay_ns:_ -> Io_stats.record_retry t.stats)
      f

let locked t f = Wip_util.Sync.with_lock t.lock f

let posix_path root name =
  (* Flatten any separators so the namespace stays flat on disk. *)
  let flat = String.map (fun c -> if c = '/' then '_' else c) name in
  Filename.concat root flat

(* Creations, renames and deletes only survive a power failure once the
   containing directory is fsynced — same discipline as LevelDB's env. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let create_file t name =
  retried t (fun () ->
      match t.backend with
      | Mem files ->
        let buf = Buffer.create 4096 in
        locked t (fun () -> Hashtbl.replace files name buf);
        { w_env = t; w_name = name; w_off = 0; w_impl = W_mem buf }
      | Posix root ->
        let oc = open_out_bin (posix_path root name) in
        fsync_dir root;
        { w_env = t; w_name = name; w_off = 0; w_impl = W_posix oc }
      | Custom c ->
        { w_env = t; w_name = name; w_off = 0;
          w_impl = W_custom (c.c_create name) })

let append w ~category s =
  retried w.w_env (fun () ->
      match w.w_impl with
      | W_mem buf -> Buffer.add_string buf s
      | W_posix oc -> output_string oc s
      | W_custom cw -> cw.cw_append s);
  Io_stats.record_write w.w_env.stats category (String.length s);
  w.w_off <- w.w_off + String.length s

let writer_offset w = w.w_off

let sync w =
  Io_stats.record_sync w.w_env.stats;
  retried w.w_env (fun () ->
      match w.w_impl with
      | W_mem _ -> ()
      | W_posix oc ->
        flush oc;
        (try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())
      | W_custom cw -> cw.cw_sync ())

let close_writer w =
  match w.w_impl with
  | W_mem _ -> ()
  | W_posix oc -> close_out oc
  | W_custom cw -> cw.cw_close ()

let open_file t name =
  match t.backend with
  | Mem files ->
    let buf =
      locked t (fun () ->
          try Hashtbl.find files name with Not_found -> raise Not_found)
    in
    let contents = Buffer.contents buf in
    { r_env = t; r_size = String.length contents; r_impl = R_mem contents }
  | Posix root ->
    let path = posix_path root name in
    if not (Sys.file_exists path) then raise Not_found;
    let ic = open_in_bin path in
    { r_env = t; r_size = in_channel_length ic; r_impl = R_posix ic }
  | Custom c ->
    let cr = c.c_open name in
    { r_env = t; r_size = cr.cr_size; r_impl = R_custom cr }

let read r ~category ~pos ~len =
  if pos < 0 || len < 0 || pos + len > r.r_size then
    invalid_arg
      (Printf.sprintf "Env.read: range [%d, %d+%d) out of bounds (size %d)"
         pos pos len r.r_size);
  Io_stats.record_read r.r_env.stats category len;
  match r.r_impl with
  | R_mem s -> String.sub s pos len
  | R_posix ic ->
    seek_in ic pos;
    really_input_string ic len
  | R_custom cr -> cr.cr_read ~pos ~len

let read_all r ~category = read r ~category ~pos:0 ~len:r.r_size

let file_size r = r.r_size

let close_reader r =
  match r.r_impl with
  | R_mem _ -> ()
  | R_posix ic -> close_in ic
  | R_custom cr -> cr.cr_close ()

let exists t name =
  match t.backend with
  | Mem files -> locked t (fun () -> Hashtbl.mem files name)
  | Posix root -> Sys.file_exists (posix_path root name)
  | Custom c -> c.c_exists name

let delete t name =
  retried t (fun () ->
      match t.backend with
      | Mem files -> locked t (fun () -> Hashtbl.remove files name)
      | Posix root ->
        let path = posix_path root name in
        if Sys.file_exists path then begin
          Sys.remove path;
          fsync_dir root
        end
      | Custom c -> c.c_delete name)

let rename t ~src ~dst =
  retried t (fun () ->
      match t.backend with
      | Mem files ->
        locked t (fun () ->
            match Hashtbl.find_opt files src with
            | None -> raise Not_found
            | Some buf ->
              Hashtbl.remove files src;
              Hashtbl.replace files dst buf)
      | Posix root ->
        Sys.rename (posix_path root src) (posix_path root dst);
        fsync_dir root
      | Custom c -> c.c_rename ~src ~dst)

let list_files t =
  match t.backend with
  | Mem files ->
    locked t (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) files [])
    |> List.sort String.compare
  | Posix root ->
    Sys.readdir root |> Array.to_list |> List.sort String.compare
  | Custom c -> List.sort String.compare (c.c_list ())

let total_live_bytes t =
  match t.backend with
  | Mem files ->
    locked t (fun () ->
        Hashtbl.fold (fun _ buf acc -> acc + Buffer.length buf) files 0)
  | Posix root ->
    Sys.readdir root |> Array.to_list
    |> List.fold_left
         (fun acc name ->
           acc + (Unix.stat (Filename.concat root name)).Unix.st_size)
         0
  | Custom c -> c.c_live_bytes ()
