(** Byte-accurate I/O accounting.

    Every write and read issued through an {!Env.t} is attributed to a
    category, so experiments can report write amplification and the per-level
    I/O breakdown of Figure 6(c) exactly. *)

type category =
  | User_write  (** bytes of user payload accepted by the store front end *)
  | Wal  (** write-ahead-log appends *)
  | Flush  (** memtable → level-0 table writes *)
  | Compaction of int  (** compaction writing INTO the given level *)
  | Compaction_read of int  (** compaction reading FROM the given level *)
  | Split  (** bucket/guard split rewrites (WipDB, PebblesDB) *)
  | Read_path  (** block reads performed to serve user point/range reads *)
  | Manifest  (** metadata persistence *)
  | Table_meta
      (** table self-description: footer, index and filter blocks read when a
          table is opened (previously mis-charged to [Manifest]) *)

type t

val create : unit -> t

val record_write : t -> category -> int -> unit

val record_read : t -> category -> int -> unit

val record_sync : t -> unit
(** Count one durability barrier ({!Env.sync} call). *)

val record_fault : t -> unit
(** Count one injected fault (crash, transient I/O error, or bit flip);
    only fault-injection backends call this. *)

val record_stall : t -> ns:int -> unit
(** Count one admission-control write stall and the time it spent waiting
    ([ns], clamped at 0). *)

val record_retry : t -> unit
(** Count one durable-op re-attempt after a transient fault (the retry
    itself, not the original attempt). *)

val record_degraded_transition : t -> unit
(** Count one Healthy → Degraded edge — a store giving up on its write path
    after exhausting retries. *)

val record_group_commit : t -> requests:int -> ns:int -> unit
(** Count one group-commit window: [requests] logical commits coalesced
    into a single WAL append + fsync, [ns] the window's latency from first
    submit to acks (clamped at 0). Fsyncs saved by the window =
    [requests - 1]. *)

val record_bloom_probe : t -> negative:bool -> unit
(** Count one bloom-filter consultation; [negative] when the filter ruled
    the key definitely absent. *)

val record_bloom_false_positive : t -> unit
(** Count one probe where the filter said maybe but the table had no entry
    for the user key — the measured FP rate's numerator. *)

val record_block_fetch : t -> unit
(** Count one data-block request (cache hits included). *)

val record_ph_probe : t -> unit
(** Count one perfect-hash point-index lookup on a table get. *)

val record_ph_false_hit : t -> unit
(** Count one fingerprint alias: the ph slot named an entry whose user key
    did not match the target (probability ~1/255 per absent-key probe). *)

val record_ph_fallback : t -> unit
(** Count one ph block dropped at reader open (CRC or parse failure) — the
    table serves gets through restart binary search instead. *)

val record_view_rebuild : t -> ns:int -> unit
(** Count one sorted-view construction (full build or incremental add_run)
    taking [ns] nanoseconds (clamped at 0). *)

val bloom_probe_count : t -> int

val bloom_negative_count : t -> int

val bloom_false_positive_count : t -> int

val bloom_fp_rate : t -> float
(** [false positives / (probes - negatives)]; 0 with no maybe-answers. *)

val block_fetch_count : t -> int

val ph_probe_count : t -> int

val ph_false_hit_count : t -> int

val ph_fallback_count : t -> int

val view_rebuild_count : t -> int

val view_rebuild_ns : t -> int
(** Total nanoseconds spent building sorted views. *)

val sync_count : t -> int
(** Durability barriers issued — the denominator of fsync overhead. *)

val fault_count : t -> int

val stall_count : t -> int

val stall_ns : t -> int
(** Total nanoseconds spent in admission-control stalls. *)

val retry_count : t -> int

val degraded_transition_count : t -> int

val group_commit_count : t -> int
(** Group-commit windows committed (one fsync each). *)

val group_commit_request_count : t -> int
(** Logical commits carried by those windows; [request_count - count] is
    the number of fsyncs group commit saved. *)

val group_commit_ns : t -> int
(** Total group-commit window latency (submit to ack), nanoseconds. *)

val bytes_written : t -> int
(** Total device bytes written, across all categories except [User_write]
    (which counts logical user payload, not device traffic). *)

val store_bytes_written : t -> int
(** Device bytes written to the store proper: flush + compaction + split +
    manifest, excluding the WAL. The paper's write-amplification numbers use
    this denominator-free form — its experiments place the log on a separate
    SSD (§IV-A). *)

val bytes_read : t -> int

val user_bytes : t -> int

val write_amplification : t -> float
(** [store_bytes_written / user_bytes]; 0 when no user bytes were written. *)

val written_by : t -> category -> int

val read_by : t -> category -> int

val per_level_write : t -> (int * int) list
(** [(level, bytes)] written into each level by compaction, ascending level;
    includes flush as level 0 writes. *)

val per_level_read : t -> (int * int) list

val reset : t -> unit

val snapshot : t -> t
(** An independent copy, for delta measurements. *)

val diff : t -> t -> t
(** [diff current baseline] — counters of [current] minus [baseline]. *)
