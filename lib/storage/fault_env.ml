exception Crashed

(* Growable byte array: Buffer has no in-place mutation, which bit-flip
   corruption needs. *)
(* Every mutable field below is caller-serialized — a fault env is driven
   by one store (or one test thread) at a time; chaos tests serialize crash
   injection with the store's own shard lock before touching plans. *)
type file = {
  mutable data : Bytes.t; (* guarded_by: caller *)
  mutable len : int; (* guarded_by: caller *)
  mutable synced : int; (* durable prefix length, <= len; guarded_by: caller *)
}

type fault = Crash of { torn : int } | Fail of { retryable : bool }

type t = {
  files : (string, file) Hashtbl.t;
  mutable durable_plan : (int * fault) list; (* guarded_by: caller *)
  mutable read_plan : int list; (* guarded_by: caller *)
  mutable storms : (int * int) list; (* durable-op windows; guarded_by: caller *)
  mutable space_budget : int option; (* None = infinite; guarded_by: caller *)
  mutable appended : int; (* bytes appended so far; guarded_by: caller *)
  mutable latency_ns : int; (* delay per durable op; guarded_by: caller *)
  mutable durable_ops : int; (* guarded_by: caller *)
  mutable read_ops : int; (* guarded_by: caller *)
  mutable captured : (string * string) list option; (* guarded_by: caller *)
  mutable wrapped : Env.t option; (* guarded_by: caller *)
}

let create_file_state () = { data = Bytes.create 256; len = 0; synced = 0 }

let ensure_capacity f extra =
  let need = f.len + extra in
  if need > Bytes.length f.data then begin
    let bigger = Bytes.create (max need (2 * Bytes.length f.data)) in
    Bytes.blit f.data 0 bigger 0 f.len;
    f.data <- bigger
  end

let contents f = Bytes.sub_string f.data 0 f.len

let find_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> raise Not_found

let stats t =
  match t.wrapped with Some env -> Env.stats env | None -> assert false

(* Capture the durable view: each file cut to its synced prefix, except
   [torn_file] which keeps [torn] extra unsynced bytes (a torn write).
   [buffered] is the extent of valid bytes in the torn file's buffer —
   during an append crash the in-flight bytes sit beyond [f.len]. *)
let capture t ~torn_file ~torn ~buffered =
  let image =
    Hashtbl.fold
      (fun name f acc ->
        let keep =
          if String.equal name torn_file then min buffered (f.synced + torn)
          else f.synced
        in
        (name, Bytes.sub_string f.data 0 keep) :: acc)
      t.files []
  in
  t.captured <- Some image

let in_storm t =
  List.exists (fun (lo, hi) -> t.durable_ops >= lo && t.durable_ops < hi)
    t.storms

(* One durable op: consult the plan, then run [apply]. A crash captures the
   image with the op's bytes already buffered, so [torn] can expose any
   prefix of them. Each attempt — including a retry of a failed op — counts
   as a fresh op, so a storm window [i, j) fails every attempt made while
   the window lasts and lets a later retry through. *)
let durable_op t ~op_name ~file ~torn_file ~buffered ~apply =
  t.durable_ops <- t.durable_ops + 1;
  if t.latency_ns > 0 then Unix.sleepf (float_of_int t.latency_ns /. 1e9);
  match List.assoc_opt t.durable_ops t.durable_plan with
  | Some (Crash { torn }) ->
    Io_stats.record_fault (stats t);
    capture t ~torn_file ~torn ~buffered;
    raise Crashed
  | Some (Fail { retryable }) ->
    Io_stats.record_fault (stats t);
    raise (Env.Io_fault { op = op_name; file; retryable })
  | None ->
    if in_storm t then begin
      Io_stats.record_fault (stats t);
      raise (Env.Io_fault { op = op_name; file; retryable = true })
    end;
    apply ()

let backend t =
  let create name =
    let f = create_file_state () in
    Hashtbl.replace t.files name f;
    {
      Env.cw_append =
        (fun s ->
          (* Disk full is permanent: checked before the op is even numbered,
             raised with [retryable = false] so no retry loop spins on it. *)
          (match t.space_budget with
          | Some budget when t.appended + String.length s > budget ->
            Io_stats.record_fault (stats t);
            raise (Env.Io_fault { op = "no_space"; file = name;
                                  retryable = false })
          | _ -> ());
          (* Buffer the bytes first so a crash here can tear them. *)
          ensure_capacity f (String.length s);
          Bytes.blit_string s 0 f.data f.len (String.length s);
          let before = f.len in
          durable_op t ~op_name:"append" ~file:name ~torn_file:name
            ~buffered:(before + String.length s)
            ~apply:(fun () ->
              f.len <- before + String.length s;
              t.appended <- t.appended + String.length s));
      cw_sync =
        (fun () ->
          (* The tail being persisted is still unsynced if we crash here. *)
          durable_op t ~op_name:"sync" ~file:name ~torn_file:name
            ~buffered:f.len
            ~apply:(fun () -> f.synced <- f.len));
      cw_close = (fun () -> ());
    }
  in
  let open_ name =
    let f = find_file t name in
    let snapshot = contents f in
    {
      Env.cr_size = String.length snapshot;
      cr_read =
        (fun ~pos ~len ->
          t.read_ops <- t.read_ops + 1;
          if List.mem t.read_ops t.read_plan then begin
            Io_stats.record_fault (stats t);
            (* Read faults are never retried by the env (reads fail the one
               lookup, typed); retryable = false keeps that explicit. *)
            raise (Env.Io_fault { op = "read"; file = name;
                                  retryable = false })
          end;
          String.sub snapshot pos len);
      cr_close = (fun () -> ());
    }
  in
  {
    Env.c_create = create;
    c_open = open_;
    c_exists = (fun name -> Hashtbl.mem t.files name);
    c_delete = (fun name -> Hashtbl.remove t.files name);
    c_rename =
      (fun ~src ~dst ->
        let f = find_file t src in
        Hashtbl.remove t.files src;
        Hashtbl.replace t.files dst f);
    c_list = (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) t.files []);
    c_live_bytes = (fun () -> Hashtbl.fold (fun _ f acc -> acc + f.len) t.files 0);
  }

let create () =
  let t =
    {
      files = Hashtbl.create 64;
      durable_plan = [];
      read_plan = [];
      storms = [];
      space_budget = None;
      appended = 0;
      latency_ns = 0;
      durable_ops = 0;
      read_ops = 0;
      captured = None;
      wrapped = None;
    }
  in
  t.wrapped <- Some (Env.custom (backend t));
  t

let env t = match t.wrapped with Some e -> e | None -> assert false

let crash_at t ~op ?(torn = 0) () =
  t.durable_plan <- (op, Crash { torn }) :: t.durable_plan

let fail_write_at t ?(retryable = true) ~op () =
  t.durable_plan <- (op, Fail { retryable }) :: t.durable_plan

let fail_read_at t ~op = t.read_plan <- op :: t.read_plan

let storm t ~first_op ~last_op =
  if first_op < 1 || last_op < first_op then
    invalid_arg "Fault_env.storm: need 1 <= first_op <= last_op";
  t.storms <- (first_op, last_op) :: t.storms

let set_space_budget t ~bytes = t.space_budget <- bytes

let set_latency t ~durable_ns =
  if durable_ns < 0 then invalid_arg "Fault_env.set_latency: negative";
  t.latency_ns <- durable_ns

let appended_bytes t = t.appended

let flip_bit t ~file ~bit =
  let f = find_file t file in
  let pos = bit / 8 in
  if pos >= f.len then
    invalid_arg
      (Printf.sprintf "Fault_env.flip_bit: bit %d outside %s (%d bytes)" bit
         file f.len);
  Io_stats.record_fault (stats t);
  Bytes.set f.data pos
    (Char.chr (Char.code (Bytes.get f.data pos) lxor (1 lsl (bit mod 8))))

let durable_ops t = t.durable_ops

let read_ops t = t.read_ops

let file_size t name = (find_file t name).len

let build_env files =
  let env = Env.in_memory () in
  List.iter
    (fun (name, data) ->
      let w = Env.create_file env name in
      Env.append w ~category:Io_stats.Manifest data;
      Env.close_writer w)
    files;
  Io_stats.reset (Env.stats env);
  env

let image t =
  match t.captured with
  | Some files -> build_env files
  | None -> invalid_arg "Fault_env.image: no scripted crash has fired"

let durable_image t =
  build_env
    (Hashtbl.fold
       (fun name f acc -> (name, Bytes.sub_string f.data 0 f.synced) :: acc)
       t.files [])

let snapshot_env ?truncate t =
  build_env
    (Hashtbl.fold
       (fun name f acc ->
         let keep =
           match truncate with
           | Some (file, cut) when String.equal file name -> min cut f.len
           | _ -> f.len
         in
         (name, Bytes.sub_string f.data 0 keep) :: acc)
       t.files [])
