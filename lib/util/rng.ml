type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create ~seed:(mix (Int64.logxor seed 0xA5A5A5A5A5A5A5A5L))

let int64 t bound =
  assert (Int64.compare bound 0L > 0);
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec loop () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw bound in
    if
      Int64.compare (Int64.sub raw v)
        (Int64.sub (Int64.sub Int64.max_int bound) 1L)
      > 0
    then loop ()
    else v
  in
  loop ()

let int t bound =
  assert (bound > 0);
  Int64.to_int (int64 t (Int64.of_int bound))

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b
