(** Internal keys.

    Every record written to the store carries, in addition to its user key,
    a globally monotonically increasing sequence number and a kind (value or
    deletion tombstone). Internal keys order by (user key ascending, sequence
    number descending) so that the newest version of a user key is
    encountered first during merges and lookups.

    The encoded form is {e memcomparable}: [String.compare (encode a)
    (encode b)] agrees in sign with [compare a b], so the table, block and
    merge layers operate directly on encoded bytes and never decode on hot
    paths. Layout: user-key bytes with every 0x00 escaped as 0x00 0xFF and a
    0x00 0x01 terminator (keeping strict-prefix user keys and embedded NULs
    correctly ordered), then an 8-byte big-endian bitwise complement of
    [seq << 8 | kind_tag] (sequence descending, Value before Deletion). *)

type kind = Value | Deletion

type t = { user_key : string; seq : int64; kind : kind }

val make : ?kind:kind -> string -> seq:int64 -> t

val compare : t -> t -> int
(** User key ascending, then sequence descending, then kind (Value before
    Deletion at equal sequence, which cannot happen in a well-formed store). *)

val compare_user : string -> string -> int
(** Plain byte-wise user-key comparison (the store's global comparator). *)

val encode : t -> string
(** Memcomparable form (see module doc); bytewise order matches {!compare}. *)

val decode : string -> t
(** @raise Invalid_argument on truncated or malformed encodings. Intended
    for tests and tools; hot paths use the [encoded_*] accessors below. *)

val encode_seek : string -> seq:int64 -> string
(** [encode_seek user_key ~seq] = [encode (make user_key ~seq)]: the seek
    target that every entry of [user_key] with sequence [<= seq] (and no
    other version of that user key) compares [>=] to. *)

val encode_user : string -> string
(** Just the escaped user key plus terminator — the user portion of
    {!encode}'s output. Precompute once per range boundary and compare with
    {!compare_encoded_user} instead of decoding every entry. *)

val trailer_length : int
(** Bytes of the fixed trailer (8); an encoded key is
    [encode_user user ^ trailer]. *)

val encoded_seq : string -> int64
(** Sequence number of an encoded key, read from the trailer. *)

val encoded_kind : string -> kind
(** Kind of an encoded key, read from the trailer's last byte. *)

val encoded_same_user : string -> string -> bool
(** Whether two encoded keys share a user key (bytewise on the escaped
    portions; no decoding). *)

val compare_encoded_user : string -> string -> int
(** [compare_encoded_user eu enc] compares an {!encode_user} result against
    the user portion of the encoded key [enc]; sign matches
    [compare_user u (decode enc).user_key]. *)

val user_key_of_encoded : string -> string
(** Unescaped user key of an encoded key (allocates; off the hot path). *)

val encoded_seq_bytes : Bytes.t -> len:int -> int64
(** {!encoded_seq} over the first [len] bytes of a buffer (a
    [Block.Cursor]'s reusable key buffer). *)

val encoded_kind_bytes : Bytes.t -> len:int -> kind

val encoded_same_user_bytes : Bytes.t -> len:int -> string -> bool
(** [encoded_same_user_bytes buf ~len enc]: whether the encoded key held in
    [buf.[0..len)] shares its user key with the encoded string [enc]. *)

val kind_to_string : kind -> string

val max_seq : int64
(** Largest representable sequence number (56 bits). *)
