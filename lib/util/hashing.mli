(** Non-cryptographic hashing for bloom filters and the hash memtable.

    [hash64] is an xxhash/murmur-style 64-bit avalanche hash; [hash32] folds
    it to 32 bits. Both are seedable so independent hash functions can be
    derived for double hashing. *)

val hash64 : ?seed:int64 -> string -> int64

val hash64_sub : ?seed:int64 -> string -> pos:int -> len:int -> int64
(** Hash of the substring [s.[pos .. pos+len)], equal to
    [hash64 (String.sub s pos len)] without the copy — bloom probes over
    slices of encoded internal keys stay allocation-free. *)

val hash32 : ?seed:int -> string -> int
(** Unsigned 32-bit result in an OCaml [int]. *)

val tag16 : string -> int
(** Two-byte tag used by the hash memtable's slot directory; never 0 so that
    0 can mean "empty slot". *)
