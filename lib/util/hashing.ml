let prime1 = 0x9E3779B185EBCA87L
let prime2 = 0xC2B2AE3D27D4EB4FL
let prime3 = 0x165667B19E3779F9L

let rotl x r = Int64.(logor (shift_left x r) (shift_right_logical x (64 - r)))

let avalanche h =
  let h = Int64.(mul (logxor h (shift_right_logical h 33)) prime2) in
  let h = Int64.(mul (logxor h (shift_right_logical h 29)) prime3) in
  Int64.(logxor h (shift_right_logical h 32))

let hash64_sub ?(seed = 0L) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Hashing.hash64_sub";
  let stop = pos + len in
  let h = ref (Int64.add seed (Int64.of_int len)) in
  let i = ref pos in
  (* 8-byte lanes *)
  while !i + 8 <= stop do
    let lane = ref 0L in
    for j = 7 downto 0 do
      lane := Int64.(logor (shift_left !lane 8) (of_int (Char.code s.[!i + j])))
    done;
    h := Int64.mul (rotl (Int64.add !h (Int64.mul !lane prime2)) 31) prime1;
    i := !i + 8
  done;
  (* tail bytes *)
  while !i < stop do
    let b = Int64.of_int (Char.code s.[!i]) in
    h := Int64.mul (rotl (Int64.logxor !h (Int64.mul b prime1)) 27) prime2;
    incr i
  done;
  avalanche !h

let hash64 ?seed s = hash64_sub ?seed s ~pos:0 ~len:(String.length s)

let hash32 ?(seed = 0) s =
  let h = hash64 ~seed:(Int64.of_int seed) s in
  Int64.(to_int (logand (logxor h (shift_right_logical h 32)) 0xFFFFFFFFL))

let tag16 s =
  let t = hash32 ~seed:0x7a6 s land 0xFFFF in
  if t = 0 then 1 else t
