(** Bounded retry with exponential backoff and deterministic jitter.

    The one sanctioned place an operation may be re-attempted after a
    transient failure. [run] is generic over the failure classification —
    callers pass [is_retryable], so this module needs no knowledge of any
    particular exception — and over time itself: the backoff schedule is a
    pure function of the caller's {!Rng} seed and the attempt number, and
    sleeping is delegated to [sleep_ns], so tests can replace real delays
    with a recording stub and replay identical schedules from a seed.

    Lint rule R6 leans on this module: matching [Env.Io_fault] in an
    exception handler is only legal here and under [lib/storage] — every
    other layer must either let the fault propagate or go through [run]. *)

type policy = {
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  base_delay_ns : int;  (** delay before the first retry *)
  max_delay_ns : int;  (** cap on the exponential growth *)
  jitter : float;
      (** fraction of each delay randomized away (in [0, 1]): the slept
          delay is [d * (1 - jitter * u)] for uniform [u] — jitter shrinks
          delays, so [max_delay_ns] stays a hard upper bound *)
}

val default_policy : policy
(** 4 attempts, 1 ms base doubling to a 100 ms cap, 0.5 jitter. *)

val no_retry : policy
(** A single attempt — [run] with this policy is just [f ()]. *)

val validate : policy -> (unit, string) result

val delay_ns : policy -> rng:Rng.t -> attempt:int -> int
(** The delay slept after failed attempt [attempt] (1-based). Exposed for
    tests asserting the schedule; advances [rng]. *)

val run :
  ?policy:policy ->
  rng:Rng.t ->
  sleep_ns:(int -> unit) ->
  is_retryable:(exn -> bool) ->
  ?on_retry:(attempt:int -> delay_ns:int -> unit) ->
  (unit -> 'a) ->
  'a
(** [run ~rng ~sleep_ns ~is_retryable f] runs [f], re-attempting after any
    exception [e] with [is_retryable e = true] until [policy.max_attempts]
    attempts have been made; the last failure (or any non-retryable one)
    propagates unchanged. [on_retry] fires before each backoff sleep.
    @raise Invalid_argument if the policy fails {!validate}. *)
