(* lint: allow-file R3 — Sync is the one module allowed to touch Mutex;
   every other critical section enters through with_lock below. *)

type t = { mutex : Mutex.t; lock_rank : int; lock_name : string }

exception Order_violation of string

let rank_pool = 100

let rank_shard_base = 1_000

let rank_leaf = 1_000_000

let debug =
  Atomic.make
    (match Sys.getenv_opt "WIPDB_LOCK_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_debug b = Atomic.set debug b

let debug_enabled () = Atomic.get debug

let violations = Atomic.make 0

let violation_count () = Atomic.get violations

(* Per-systhread stack of held locks, innermost first. Only maintained in
   debug mode. Domain.DLS would be wrong here: sys-threads within a domain
   share its DLS, so one thread's held lock would corrupt another's order
   check the moment a critical section spans a blocking point (a socket
   write, say). The registry is keyed by (domain, thread) under a raw
   mutex — Sync itself is the one module allowed to hold one. *)
let held_mu = Mutex.create ()

let held_tbl : (int * int, t list ref) Hashtbl.t = Hashtbl.create 64

let held_stack () =
  let key = ((Domain.self () :> int), Thread.id (Thread.self ())) in
  Mutex.lock held_mu;
  let r =
    match Hashtbl.find_opt held_tbl key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace held_tbl key r;
      r
  in
  Mutex.unlock held_mu;
  r

let held_count () = List.length !(held_stack ())

let create ?(rank = rank_leaf) ?(name = "lock") () =
  { mutex = Mutex.create (); lock_rank = rank; lock_name = name }

let rank t = t.lock_rank

let name t = t.lock_name

let violate msg =
  Atomic.incr violations;
  raise (Order_violation msg)

let check_order t =
  match !(held_stack ()) with
  | top :: _ when t.lock_rank <= top.lock_rank ->
    violate
      (Printf.sprintf
         "acquiring %s (rank %d) while holding %s (rank %d): lock ranks \
          must strictly ascend"
         t.lock_name t.lock_rank top.lock_name top.lock_rank)
  | _ -> ()

let acquire t =
  if Atomic.get debug then begin
    check_order t;
    Mutex.lock t.mutex;
    let stack = held_stack () in
    stack := t :: !stack
  end
  else Mutex.lock t.mutex

let release t =
  if Atomic.get debug then begin
    let stack = held_stack () in
    (* Releases must mirror acquisitions; with_lock guarantees this, so a
       mismatch means the stack was corrupted by a leaked acquisition. *)
    match !stack with
    | top :: rest when top == t ->
      stack := rest;
      Mutex.unlock t.mutex
    | _ ->
      Mutex.unlock t.mutex;
      violate
        (Printf.sprintf "releasing %s out of acquisition order" t.lock_name)
  end
  else Mutex.unlock t.mutex

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

(* Deadline-bounded wait-for-condition. Stdlib Condition has no timed wait,
   so this polls: release, sleep one quantum, reacquire, re-check. The
   release/acquire pair keeps the debug-mode held stack exact, and the
   quantum bounds how stale a satisfied predicate can go unnoticed. Callers
   must already hold [t] (with_lock) and must treat a [false] return as a
   hard timeout — the predicate may of course become true immediately
   after. *)
let await t ?(quantum_s = 0.0002) ~deadline pred =
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      release t;
      Unix.sleepf quantum_s;
      acquire t;
      loop ()
    end
  in
  loop ()

(* Real condition variables, tied to a Sync lock. Condition.wait atomically
   releases the mutex and reacquires it on wakeup; in debug mode the held
   stack must mirror that, so the lock is popped before the wait and pushed
   back after. Waiters must already hold the lock (with_lock). *)
module Cond = struct
  type nonrec cond = { cv : Condition.t; lock : t }

  let create lock = { cv = Condition.create (); lock }

  let wait c =
    if Atomic.get debug then begin
      let stack = held_stack () in
      (match !stack with
      | top :: rest when top == c.lock -> stack := rest
      | _ ->
        violate
          (Printf.sprintf "Cond.wait on %s without holding it innermost"
             c.lock.lock_name));
      Condition.wait c.cv c.lock.mutex;
      stack := c.lock :: !stack
    end
    else Condition.wait c.cv c.lock.mutex

  let signal c = Condition.signal c.cv

  let broadcast c = Condition.broadcast c.cv
end

(* --------------------------------------------------------------------- *)
(* Guarded-by witness: the runtime end of the static R8 analysis. A module
   places [check_guard lock ~field] next to an access the linter proved to
   run under [lock]; in debug mode the call verifies the lock really is in
   this thread's held stack and records a contradiction otherwise — evidence
   that a guarded_by annotation (and hence the static lock-set model) has
   rotted. Contradictions are recorded, not raised: a witness firing inside
   a storm of concurrent work should not turn into an unrelated crash; tests
   assert the counter is zero at their sync points. *)

let guard_contras : (string * string) list ref = ref []

let check_guard t ~field =
  if Atomic.get debug then begin
    let held = List.exists (fun l -> l == t) !(held_stack ()) in
    if not held then begin
      Mutex.lock held_mu;
      guard_contras := (field, t.lock_name) :: !guard_contras;
      Mutex.unlock held_mu
    end
  end

let guard_contradictions () =
  Mutex.lock held_mu;
  let l = List.rev !guard_contras in
  Mutex.unlock held_mu;
  l

let guard_contradiction_count () = List.length (guard_contradictions ())

let reset_guard_contradictions () =
  Mutex.lock held_mu;
  guard_contras := [];
  Mutex.unlock held_mu

let rec check_ascending = function
  | a :: (b :: _ as rest) ->
    if b.lock_rank <= a.lock_rank then
      violate
        (Printf.sprintf
           "with_locks_ordered: %s (rank %d) does not ascend from %s (rank \
            %d)"
           b.lock_name b.lock_rank a.lock_name a.lock_rank);
    check_ascending rest
  | _ -> ()

let with_locks_ordered locks f =
  if Atomic.get debug then check_ascending locks;
  (* Acquire one at a time; whatever prefix is held when an exception
     escapes (from [f] or from a later acquisition) unwinds in reverse
     order through the nested protects. *)
  let rec go = function
    | [] -> f ()
    | l :: rest ->
      acquire l;
      Fun.protect ~finally:(fun () -> release l) (fun () -> go rest)
  in
  go locks
