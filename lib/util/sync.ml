(* lint: allow-file R3 — Sync is the one module allowed to touch Mutex;
   every other critical section enters through with_lock below. *)

type t = { mutex : Mutex.t; lock_rank : int; lock_name : string }

exception Order_violation of string

let rank_pool = 100

let rank_shard_base = 1_000

let rank_leaf = 1_000_000

let debug =
  Atomic.make
    (match Sys.getenv_opt "WIPDB_LOCK_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_debug b = Atomic.set debug b

let debug_enabled () = Atomic.get debug

let violations = Atomic.make 0

let violation_count () = Atomic.get violations

(* Per-domain stack of held locks, innermost first. Only maintained in
   debug mode: with the validator off an acquisition touches no
   domain-local state. *)
let held : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let held_count () = List.length !(Domain.DLS.get held)

let create ?(rank = rank_leaf) ?(name = "lock") () =
  { mutex = Mutex.create (); lock_rank = rank; lock_name = name }

let rank t = t.lock_rank

let name t = t.lock_name

let violate msg =
  Atomic.incr violations;
  raise (Order_violation msg)

let check_order t =
  match !(Domain.DLS.get held) with
  | top :: _ when t.lock_rank <= top.lock_rank ->
    violate
      (Printf.sprintf
         "acquiring %s (rank %d) while holding %s (rank %d): lock ranks \
          must strictly ascend"
         t.lock_name t.lock_rank top.lock_name top.lock_rank)
  | _ -> ()

let acquire t =
  if Atomic.get debug then begin
    check_order t;
    Mutex.lock t.mutex;
    let stack = Domain.DLS.get held in
    stack := t :: !stack
  end
  else Mutex.lock t.mutex

let release t =
  if Atomic.get debug then begin
    let stack = Domain.DLS.get held in
    (* Releases must mirror acquisitions; with_lock guarantees this, so a
       mismatch means the stack was corrupted by a leaked acquisition. *)
    match !stack with
    | top :: rest when top == t ->
      stack := rest;
      Mutex.unlock t.mutex
    | _ ->
      Mutex.unlock t.mutex;
      violate
        (Printf.sprintf "releasing %s out of acquisition order" t.lock_name)
  end
  else Mutex.unlock t.mutex

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

(* Deadline-bounded wait-for-condition. Stdlib Condition has no timed wait,
   so this polls: release, sleep one quantum, reacquire, re-check. The
   release/acquire pair keeps the debug-mode held stack exact, and the
   quantum bounds how stale a satisfied predicate can go unnoticed. Callers
   must already hold [t] (with_lock) and must treat a [false] return as a
   hard timeout — the predicate may of course become true immediately
   after. *)
let await t ?(quantum_s = 0.0002) ~deadline pred =
  let rec loop () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      release t;
      Unix.sleepf quantum_s;
      acquire t;
      loop ()
    end
  in
  loop ()

let rec check_ascending = function
  | a :: (b :: _ as rest) ->
    if b.lock_rank <= a.lock_rank then
      violate
        (Printf.sprintf
           "with_locks_ordered: %s (rank %d) does not ascend from %s (rank \
            %d)"
           b.lock_name b.lock_rank a.lock_name a.lock_rank);
    check_ascending rest
  | _ -> ()

let with_locks_ordered locks f =
  if Atomic.get debug then check_ascending locks;
  (* Acquire one at a time; whatever prefix is held when an exception
     escapes (from [f] or from a later acquisition) unwinds in reverse
     order through the nested protects. *)
  let rec go = function
    | [] -> f ()
    | l :: rest ->
      acquire l;
      Fun.protect ~finally:(fun () -> release l) (fun () -> go rest)
  in
  go locks
