type kind = Value | Deletion

type t = { user_key : string; seq : int64; kind : kind }

let make ?(kind = Value) user_key ~seq = { user_key; seq; kind }

let kind_tag = function Value -> 1 | Deletion -> 0

let compare_user = String.compare

let compare a b =
  let c = String.compare a.user_key b.user_key in
  if c <> 0 then c
  else
    let c = Int64.compare b.seq a.seq in
    if c <> 0 then c else Stdlib.compare (kind_tag b.kind) (kind_tag a.kind)

let max_seq = 0x00FFFFFFFFFFFFFFL

let trailer_length = 8

(* The encoding is memcomparable: [String.compare] on two encoded keys agrees
   in sign with [compare] on the originals, so readers and merges never need
   to decode. User-key bytes come first with every 0x00 escaped as 0x00 0xFF
   and a 0x00 0x01 terminator appended; the terminator sorts below any
   continuation byte (so "ab" < "abc" survives encoding) and below the
   escaped-zero pair (so "a" < "a\x00"), and escaped forms are prefix-free.
   The trailer is the bitwise complement of [seq << 8 | kind_tag] in
   big-endian, making sequence numbers sort descending (and Value before
   Deletion at equal sequence) under plain bytewise comparison. *)

let escaped_length key =
  let n = String.length key in
  let extra = ref 0 in
  for i = 0 to n - 1 do
    if String.unsafe_get key i = '\x00' then incr extra
  done;
  n + !extra + 2

(* Write escape(key) followed by the terminator at [pos]; next free offset. *)
let blit_escaped key b pos =
  let n = String.length key in
  let p = ref pos in
  for i = 0 to n - 1 do
    let c = String.unsafe_get key i in
    if c = '\x00' then begin
      Bytes.unsafe_set b !p '\x00';
      Bytes.unsafe_set b (!p + 1) '\xff';
      p := !p + 2
    end
    else begin
      Bytes.unsafe_set b !p c;
      incr p
    end
  done;
  Bytes.unsafe_set b !p '\x00';
  Bytes.unsafe_set b (!p + 1) '\x01';
  !p + 2

let blit_trailer ~seq ~kind b pos =
  let inv =
    Int64.lognot
      (Int64.logor (Int64.shift_left seq 8) (Int64.of_int (kind_tag kind)))
  in
  for i = 0 to 7 do
    Bytes.unsafe_set b (pos + i)
      Int64.(
        Char.unsafe_chr
          (to_int (logand (shift_right_logical inv (8 * (7 - i))) 0xffL)))
  done;
  pos + 8

let encode_user key =
  let b = Bytes.create (escaped_length key) in
  let _ = blit_escaped key b 0 in
  Bytes.unsafe_to_string b

let encode t =
  let b = Bytes.create (escaped_length t.user_key + trailer_length) in
  let pos = blit_escaped t.user_key b 0 in
  let _ = blit_trailer ~seq:t.seq ~kind:t.kind b pos in
  Bytes.unsafe_to_string b

let encode_seek user_key ~seq = encode { user_key; seq; kind = Value }

let bad detail = invalid_arg ("Ikey.decode: " ^ detail)

let unescape s ulen =
  (* [s.[0 .. ulen)] is the escaped user key without its terminator. *)
  let buf = Buffer.create ulen in
  let i = ref 0 in
  while !i < ulen do
    let c = String.unsafe_get s !i in
    if c = '\x00' then begin
      if !i + 1 >= ulen || s.[!i + 1] <> '\xff' then bad "bad escape";
      Buffer.add_char buf '\x00';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let check_terminator s n =
  if n < trailer_length + 2 then bad "too short";
  if s.[n - 10] <> '\x00' || s.[n - 9] <> '\x01' then bad "missing terminator"

let user_key_of_encoded s =
  let n = String.length s in
  check_terminator s n;
  unescape s (n - trailer_length - 2)

let decode_trailer s n =
  let inv = ref 0L in
  for i = 0 to 7 do
    inv := Int64.(logor (shift_left !inv 8) (of_int (Char.code s.[n - 8 + i])))
  done;
  Int64.lognot !inv

let decode s =
  let n = String.length s in
  check_terminator s n;
  let user_key = unescape s (n - trailer_length - 2) in
  let trailer = decode_trailer s n in
  let seq = Int64.shift_right_logical trailer 8 in
  let kind =
    match Int64.(to_int (logand trailer 0xffL)) with
    | 1 -> Value
    | 0 -> Deletion
    | k -> bad (Printf.sprintf "bad kind tag %d" k)
  in
  { user_key; seq; kind }

(* --- allocation-free accessors over encoded keys --- *)

let encoded_seq s =
  let n = String.length s in
  if n < trailer_length then bad "too short";
  Int64.shift_right_logical (decode_trailer s n) 8

(* The complemented kind tag sits in the last byte: 0xFE = Value, 0xFF =
   Deletion. *)
let kind_of_last_byte = function
  | 0xFE -> Value
  | 0xFF -> Deletion
  | k -> bad (Printf.sprintf "bad kind byte %d" k)

let encoded_kind s =
  let n = String.length s in
  if n < trailer_length then bad "too short";
  kind_of_last_byte (Char.code s.[n - 1])

let encoded_same_user a b =
  let la = String.length a - trailer_length
  and lb = String.length b - trailer_length in
  la = lb
  &&
  let rec loop i =
    i >= la
    || (String.unsafe_get a i = String.unsafe_get b i && loop (i + 1))
  in
  loop 0

let compare_encoded_user eu s =
  (* [eu] is an [encode_user] result; compare it against the user portion of
     the encoded key [s]. Escaped forms are prefix-free, so distinct user
     keys always differ at some byte both sides have. *)
  let lu = String.length eu and ls = String.length s - trailer_length in
  let n = min lu ls in
  let rec loop i =
    if i = n then Stdlib.compare lu ls
    else
      let c =
        Char.compare (String.unsafe_get eu i) (String.unsafe_get s i)
      in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

(* Bytes-buffer variants for Block.Cursor's reusable key buffer. *)

let encoded_seq_bytes b ~len =
  let inv = ref 0L in
  for i = len - 8 to len - 1 do
    inv :=
      Int64.(logor (shift_left !inv 8) (of_int (Char.code (Bytes.unsafe_get b i))))
  done;
  Int64.shift_right_logical (Int64.lognot !inv) 8

let encoded_kind_bytes b ~len =
  kind_of_last_byte (Char.code (Bytes.unsafe_get b (len - 1)))

let encoded_same_user_bytes b ~len s =
  let lb = len - trailer_length and ls = String.length s - trailer_length in
  lb = ls
  &&
  let rec loop i =
    i >= lb
    || (Bytes.unsafe_get b i = String.unsafe_get s i && loop (i + 1))
  in
  loop 0

let kind_to_string = function Value -> "value" | Deletion -> "deletion"
