type policy = {
  max_attempts : int;
  base_delay_ns : int;
  max_delay_ns : int;
  jitter : float;
}

let default_policy =
  {
    max_attempts = 4;
    base_delay_ns = 1_000_000 (* 1 ms *);
    max_delay_ns = 100_000_000 (* 100 ms *);
    jitter = 0.5;
  }

let no_retry = { default_policy with max_attempts = 1 }

let validate p =
  if p.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if p.base_delay_ns < 0 then Error "base_delay_ns must be >= 0"
  else if p.max_delay_ns < p.base_delay_ns then
    Error "max_delay_ns must be >= base_delay_ns"
  else if p.jitter < 0.0 || p.jitter > 1.0 then
    Error "jitter must be in [0, 1]"
  else Ok ()

(* Exponential growth capped at max_delay_ns, then jittered DOWN by up to
   [jitter] of itself: delay * (1 - jitter * u). Shrinking (rather than
   growing) keeps the cap a true upper bound, and drawing u from the caller's
   Rng keeps the whole schedule a pure function of the seed. *)
let delay_ns p ~rng ~attempt =
  if p.base_delay_ns = 0 then 0
  else begin
    let exp = min (attempt - 1) 30 in
    let raw =
      if p.base_delay_ns > p.max_delay_ns lsr exp then p.max_delay_ns
      else p.base_delay_ns lsl exp
    in
    let raw = min raw p.max_delay_ns in
    let u = Rng.float rng in
    let scaled = float_of_int raw *. (1.0 -. (p.jitter *. u)) in
    int_of_float scaled
  end

let run ?(policy = default_policy) ~rng ~sleep_ns ~is_retryable
    ?(on_retry = fun ~attempt:_ ~delay_ns:_ -> ()) f =
  (match validate policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Retry.run: " ^ msg));
  let rec attempt_no n =
    try f ()
    with e when n < policy.max_attempts && is_retryable e ->
      let d = delay_ns policy ~rng ~attempt:n in
      on_retry ~attempt:n ~delay_ns:d;
      if d > 0 then sleep_ns d;
      attempt_no (n + 1)
  in
  attempt_no 1
