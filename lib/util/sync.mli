(** Exception-safe, rank-ordered locking.

    Every mutex in the store lives behind this module: the lint rule R3
    forbids bare [Mutex.*] / [Condition.*] anywhere else, so a critical
    section can only be entered through {!with_lock} /
    {!with_locks_ordered}, which always release on exception.

    Each lock carries a {e rank}. The global lock order is "ascending
    rank": a thread holding a lock may only acquire strictly greater
    ranks. The convention used across the store:

    - [rank_pool] (100) — the compaction pool's claim lock; never held
      together with any other lock.
    - [rank_shard_base + i] (1000 + shard index) — shard locks, acquired
      in ascending shard order by cross-shard operations.
    - [rank_leaf] (1_000_000, the default) — leaf locks (Env, Io_stats,
      Block_cache, Histogram, Throughput): critical sections that take no
      further lock. Two leaf locks must never nest.

    In debug mode ({!set_debug}) every acquisition is validated against a
    per-thread stack of held locks (keyed by domain {e and} systhread, so
    threads sharing a domain cannot pollute each other's checks): acquiring
    a rank less than or equal to the highest held rank raises
    {!Order_violation} (before the mutex is touched, so nothing leaks), and
    bumps {!violation_count}. Production mode costs one atomic read per
    acquisition. *)

type t

exception Order_violation of string

val rank_pool : int

val rank_shard_base : int

val rank_leaf : int

(** [create ()] makes a lock of rank {!rank_leaf}; pass [~rank] to place
    it elsewhere in the order. [~name] is used in violation reports. *)
val create : ?rank:int -> ?name:string -> unit -> t

val rank : t -> int

val name : t -> string

(** [with_lock l f] runs [f ()] with [l] held, releasing on any exit —
    normal return or raise. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** [with_locks_ordered ls f] acquires every lock in [ls] (which must be
    in strictly ascending rank order — checked eagerly in debug mode),
    runs [f ()], and releases them in reverse order on any exit. *)
val with_locks_ordered : t list -> (unit -> 'a) -> 'a

(** [await t ~deadline pred] — must be called while holding [t] (inside
    {!with_lock}) — returns [true] as soon as [pred ()] holds, re-checking
    every [quantum_s] (default 0.2 ms) with the lock released between
    checks, or [false] once {!Unix.gettimeofday} reaches [deadline]. The
    lock is held whenever [pred] runs and on both return paths. This is
    the primitive behind write-stall waits: a bounded, deadline-respecting
    wait that can never park a writer forever. *)
val await : t -> ?quantum_s:float -> deadline:float -> (unit -> bool) -> bool

(** Condition variables bound to a {!t}. Unlike {!await} (a bounded
    polling wait), these park the waiter on a real [Condition.t] — the
    right tool when a peer is guaranteed to signal (group-commit
    leader/follower handoff). [wait c] must be called while holding the
    lock passed to [create] (innermost, in debug mode); it atomically
    releases the lock, sleeps, and reacquires before returning. As with
    stdlib conditions, wakeups may be spurious — re-check the predicate
    in a loop. [signal]/[broadcast] need not hold the lock but usually
    do. *)
module Cond : sig
  type cond

  val create : t -> cond

  val wait : cond -> unit

  val signal : cond -> unit

  val broadcast : cond -> unit
end

(** Enable / disable the per-domain acquisition-order validator. *)
val set_debug : bool -> unit

val debug_enabled : unit -> bool

(** Locks currently held by the calling thread (0 unless debug mode saw
    the acquisitions). Quiescent code should observe 0 — a nonzero value
    at a sync point is a leak. *)
val held_count : unit -> int

(** Total order violations detected since process start (each also raised
    as {!Order_violation} at the offending acquisition). *)
val violation_count : unit -> int

(** Guarded-by witness — the runtime end of the lint rule R8. A module
    places [check_guard lock ~field] beside an access whose [guarded_by]
    annotation names [lock]; in debug mode the call checks that [lock] is
    physically in the calling thread's held stack and records a
    contradiction (field, lock name) otherwise. No-op outside debug mode.
    Contradictions are recorded rather than raised so a rotted annotation
    surfaces as a test assertion, not a crash inside a worker. *)
val check_guard : t -> field:string -> unit

(** Contradictions recorded since start (or the last reset), oldest
    first. *)
val guard_contradictions : unit -> (string * string) list

val guard_contradiction_count : unit -> int

val reset_guard_contradictions : unit -> unit
