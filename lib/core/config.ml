type t = {
  l_max : int;
  t_sublevels : int;
  split_fanout : int;
  bucket_capacity_bytes : int;
  memtable_items : int;
  memtable_bytes : int;
  initial_buckets : int;
  initial_key_space : int64;
  min_count : int;
  max_count : int;
  read_weight : float;
  bits_per_key : int;
  block_cache_bytes : int;
  memtable_structure : Wip_memtable.Memtable.structure;
  adaptive_memtable : bool;
  range_query_switch_threshold : int;
  compaction_budget_per_batch : int;
  wal_segment_bytes : int;
  wal_size_threshold : int;
  bucket_merge_bytes : int;
  admission_control : bool;
  slowdown_watermark_bytes : int;
  stop_watermark_bytes : int;
  stall_deadline_s : float;
  sorted_view : bool;
  sorted_view_min_runs : int;
  ph_index : bool;
  name : string;
}

let default =
  {
    l_max = 3;
    t_sublevels = 8;
    split_fanout = 8;
    bucket_capacity_bytes = 0;
    memtable_items = 4096;
    memtable_bytes = 512 * 1024;
    initial_buckets = 1;
    initial_key_space = 1_000_000_000L;
    min_count = 4;
    max_count = 20;
    read_weight = 10.0;
    bits_per_key = 10;
    block_cache_bytes = 0;
    memtable_structure = Wip_memtable.Memtable.Hash;
    adaptive_memtable = true;
    range_query_switch_threshold = 8;
    compaction_budget_per_batch = max_int;
    wal_segment_bytes = 1024 * 1024;
    wal_size_threshold = 64 * 1024 * 1024;
    bucket_merge_bytes = 16 * 1024;
    admission_control = true;
    slowdown_watermark_bytes = 2 * 1024 * 1024;
    stop_watermark_bytes = 4 * 1024 * 1024;
    stall_deadline_s = 1.0;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "WipDB";
  }

let scaled ~scale =
  {
    default with
    memtable_items = default.memtable_items * scale;
    memtable_bytes = default.memtable_bytes * scale;
    wal_segment_bytes = default.wal_segment_bytes * scale;
    wal_size_threshold = default.wal_size_threshold * scale;
    bucket_merge_bytes = default.bucket_merge_bytes * scale;
    slowdown_watermark_bytes = default.slowdown_watermark_bytes * scale;
    stop_watermark_bytes = default.stop_watermark_bytes * scale;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.l_max < 1 then err "l_max must be >= 1 (got %d)" t.l_max
  else if t.t_sublevels < 1 then err "t_sublevels must be >= 1"
  else if t.split_fanout < 2 then err "split_fanout must be >= 2"
  else if t.bucket_capacity_bytes < 0 then err "bucket_capacity_bytes must be >= 0"
  else if t.memtable_items < 1 then err "memtable_items must be >= 1"
  else if t.initial_buckets < 1 then err "initial_buckets must be >= 1"
  else if t.min_count < 1 then err "min_count must be >= 1"
  else if t.max_count < t.min_count then err "max_count must be >= min_count"
  else if t.read_weight < 0.0 then err "read_weight must be >= 0"
  else if t.slowdown_watermark_bytes < 1 then
    err "slowdown_watermark_bytes must be >= 1"
  else if t.stop_watermark_bytes < t.slowdown_watermark_bytes then
    err "stop_watermark_bytes must be >= slowdown_watermark_bytes"
  else if t.stall_deadline_s <= 0.0 then err "stall_deadline_s must be > 0"
  else if t.sorted_view_min_runs < 2 then
    err "sorted_view_min_runs must be >= 2 (a 1-run view accelerates nothing)"
  else Ok ()

(* Boundary j of n sits at j/n of the numeric key space, formatted exactly
   like bootstrap bucket boundaries — so when [n] divides [initial_buckets]
   every shard boundary coincides with an engine bucket boundary and a shard
   never straddles a bucket. *)
let shard_boundaries t ~shards =
  if shards < 1 then invalid_arg "Config.shard_boundaries: shards must be >= 1";
  List.init shards (fun i ->
      if i = 0 then ""
      else
        Printf.sprintf "%016Ld"
          (Int64.div
             (Int64.mul t.initial_key_space (Int64.of_int i))
             (Int64.of_int shards)))

let effective_bucket_capacity t =
  if t.bucket_capacity_bytes > 0 then t.bucket_capacity_bytes
  else t.l_max * t.t_sublevels * t.memtable_bytes

let wa_upper_bound t =
  float_of_int t.l_max
  +. (float_of_int t.split_fanout /. float_of_int (t.split_fanout - 1))
