module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Table = Wip_sstable.Table
module Merge_iter = Wip_sstable.Merge_iter
module Sorted_view = Wip_sstable.Sorted_view
module Memtable = Wip_memtable.Memtable
module Wal = Wip_wal.Wal
module Manifest = Wip_manifest.Manifest
module Intf = Wip_kv.Store_intf

(* Engine state is externally serialized (guard: caller): the concurrent
   front holds the owning shard lock across every Store_intf call, and
   single-threaded embedders need no lock at all. The annotations below
   document that contract for the lock-discipline checker. *)
type bucket = {
  id : int;
  lo : string;
  mutable memtable : Memtable.t; (* guarded_by: caller *)
  levels : Table.meta list array; (* newest first within each level *)
  read_counts : int array; (* per level, since last compaction of it *)
  mutable range_queries : int; (* since last flush; drives adaptivity; guarded_by: caller *)
  mutable next_structure : Memtable.structure; (* guarded_by: caller *)
  (* REMIX-style sorted view over this bucket's current run set, with the
     exact run array it was built against (the view names runs by index).
     Built lazily by the first scan that finds enough runs, extended
     incrementally at flush, dropped at every other run-set mutation
     (compaction, split, merge, collapse, quarantine). A walk in flight
     under a pinned snapshot keeps reading its captured runs through the
     zombie registry even after the field here is invalidated. *)
  mutable view : (Sorted_view.t * Table.meta array) option; (* guarded_by: caller *)
}

(* A table retired by compaction/split/merge while snapshots were live: the
   file, its reader and its cached blocks stay usable until every snapshot
   that could still be streaming it releases. [z_pinners] holds the ids of
   the snapshots that were live at retirement time. *)
type zombie = {
  z_meta : Table.meta;
  mutable z_pinners : int list; (* guarded_by: caller *)
}

type t = {
  cfg : Config.t;
  env : Env.t;
  wal : Wal.t;
  manifest : Manifest.t;
  mutable buckets : bucket array; (* sorted by lo; guarded_by: caller *)
  readers : (string, Table.Reader.t) Hashtbl.t;
  mutable next_file : int; (* guarded_by: caller *)
  mutable next_bucket_id : int; (* guarded_by: caller *)
  mutable seq : int64; (* guarded_by: caller *)
  mutable splits : int; (* guarded_by: caller *)
  mutable compactions : int; (* guarded_by: caller *)
  mutable io_credit : int; (* guarded_by: caller *)
      (* accumulated background-compaction allowance (bytes); see
         Config.compaction_budget_per_batch *)
  mutable health : Intf.health; (* guarded_by: caller *)
  mutable quarantined : (string * string) list; (* guarded_by: caller *)
      (* (file, detail) of tables renamed aside after corruption *)
  cache : Wip_storage.Block_cache.t option;
  mutable next_snap_id : int; (* guarded_by: caller *)
  live_snaps : (int, int64) Hashtbl.t; (* snapshot id -> pinned seq *)
  zombies : (string, zombie) Hashtbl.t; (* retired-but-pinned, by file *)
}

let config t = t.cfg

let name t = t.cfg.Config.name

let env t = t.env

let io_stats t = Env.stats t.env

let sequence t = t.seq

let split_count t = t.splits

let compaction_count t = t.compactions

let bucket_count t = Array.length t.buckets

let wal_bytes t = Wal.total_bytes t.wal

(* ------------------------------------------------------------------ *)
(* Construction *)

let fresh_memtable t structure =
  Memtable.create ~structure ~capacity_items:t.cfg.Config.memtable_items
    ~capacity_bytes:t.cfg.Config.memtable_bytes

let make_bucket t ~id ~lo ~structure =
  {
    id;
    lo;
    memtable = fresh_memtable t structure;
    levels = Array.make t.cfg.Config.l_max [];
    read_counts = Array.make t.cfg.Config.l_max 0;
    range_queries = 0;
    next_structure = structure;
    view = None;
  }

let manifest_name cfg = cfg.Config.name ^ "-manifest"

(* Initial bucket boundaries: evenly spaced over the numeric key space
   (a single bucket when initial_buckets = 1, the paper's cold start).
   Also used by recovery when the manifest replays to zero buckets — a
   crash before the very first manifest sync leaves a store that must
   bootstrap itself again. *)
let bootstrap_buckets t =
  let cfg = t.cfg in
  let los =
    Config.shard_boundaries cfg ~shards:cfg.Config.initial_buckets
    |> Array.of_list
  in
  let buckets =
    Array.map
      (fun lo ->
        let id = t.next_bucket_id in
        t.next_bucket_id <- id + 1;
        Manifest.append t.manifest (Manifest.Add_bucket { id; lo });
        make_bucket t ~id ~lo ~structure:cfg.Config.memtable_structure)
      los
  in
  t.buckets <- buckets

let create ?env:env_opt cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Wipdb.create: " ^ msg));
  let env = match env_opt with Some e -> e | None -> Env.in_memory () in
  let manifest = Manifest.create env ~name:(manifest_name cfg) in
  let t =
    {
      cfg;
      env;
      wal = Wal.create env ~prefix:(cfg.Config.name ^ "-wal")
              ~segment_bytes:cfg.Config.wal_segment_bytes ();
      manifest;
      buckets = [||];
      readers = Hashtbl.create 256;
      next_file = 1;
      next_bucket_id = 0;
      seq = 0L;
      splits = 0;
      compactions = 0;
      io_credit = 0;
      health = Intf.Healthy;
      quarantined = [];
      cache =
        (if cfg.Config.block_cache_bytes > 0 then
           Some
             (Wip_storage.Block_cache.create
                ~capacity_bytes:cfg.Config.block_cache_bytes)
         else None);
      next_snap_id = 0;
      live_snaps = Hashtbl.create 8;
      zombies = Hashtbl.create 8;
    }
  in
  bootstrap_buckets t;
  Manifest.sync manifest;
  t

(* ------------------------------------------------------------------ *)
(* Bucket directory *)

(* Rightmost bucket whose lower bound <= key. *)
let bucket_for t key =
  let arr = t.buckets in
  let n = Array.length arr in
  let rec bs lo hi =
    (* invariant: arr.(lo).lo <= key; arr.(hi).lo > key or hi = n *)
    if hi - lo <= 1 then arr.(lo)
    else
      let mid = (lo + hi) / 2 in
      if String.compare arr.(mid).lo key <= 0 then bs mid hi else bs lo mid
  in
  bs 0 n

(* ------------------------------------------------------------------ *)
(* Table plumbing *)

let fresh_table_name t =
  let n = t.next_file in
  t.next_file <- n + 1;
  Printf.sprintf "%s-%06d.lvt" t.cfg.Config.name n

let reader_of t (meta : Table.meta) =
  match Hashtbl.find_opt t.readers meta.Table.name with
  | Some r -> r
  | None ->
    let r = Table.Reader.open_ ?cache:t.cache t.env ~name:meta.Table.name in
    Hashtbl.replace t.readers meta.Table.name r;
    r

let reclaim_table t name =
  (match Hashtbl.find_opt t.readers name with
  | Some r ->
    Table.Reader.close r;
    Hashtbl.remove t.readers name
  | None -> ());
  (match t.cache with
  | Some cache -> Wip_storage.Block_cache.evict_file cache name
  | None -> ());
  Env.delete t.env name

(* Retire a table the bucket directory no longer references. With no live
   snapshot the file is reclaimed immediately; otherwise it becomes a
   zombie pinned by every currently-live snapshot — a pinned snapshot may
   still be lazily streaming its blocks (the store.ml drain-before-write
   hazard this fixes), so the reader stays open and the file stays on the
   Env until the last pinner releases. *)
let drop_table t (meta : Table.meta) =
  if Hashtbl.length t.live_snaps = 0 then reclaim_table t meta.Table.name
  else begin
    let pinners = Hashtbl.fold (fun id _ acc -> id :: acc) t.live_snaps [] in
    Hashtbl.replace t.zombies meta.Table.name
      { z_meta = meta; z_pinners = pinners }
  end

(* ------------------------------------------------------------------ *)
(* Pinned snapshots (§III-D sequence-number rule, end to end).

   A snapshot pins a seq. Reads at that seq stay exact for the handle's
   lifetime because (a) version GC floors at the oldest live snapshot
   ([oldest_snapshot_seq] feeds every Merge_iter.compact site as
   [snapshot_floor], so the newest version at-or-below the floor and every
   version above it survive), and (b) tables retired while a snapshot is
   live stay readable as zombies until their last pinner releases. *)

let oldest_snapshot_seq t =
  Hashtbl.fold
    (fun _ s acc -> if Int64.compare s acc < 0 then s else acc)
    t.live_snaps Int64.max_int

let live_snapshot_count t = Hashtbl.length t.live_snaps

let zombie_table_files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.zombies []

let zombie_bytes t =
  Hashtbl.fold (fun _ z acc -> acc + z.z_meta.Table.size) t.zombies 0

let release_snapshot_id t id =
  if Hashtbl.mem t.live_snaps id then begin
    Hashtbl.remove t.live_snaps id;
    let dead =
      Hashtbl.fold
        (fun name z acc ->
          z.z_pinners <- List.filter (fun p -> p <> id) z.z_pinners;
          if z.z_pinners = [] then name :: acc else acc)
        t.zombies []
    in
    List.iter
      (fun name ->
        Hashtbl.remove t.zombies name;
        reclaim_table t name)
      dead
  end

let snapshot t =
  let id = t.next_snap_id in
  t.next_snap_id <- id + 1;
  Hashtbl.replace t.live_snaps id t.seq;
  {
    Intf.snap_seq = t.seq;
    snap_id = id;
    snap_release = (fun () -> release_snapshot_id t id);
  }

let log_add_table t bucket level (meta : Table.meta) =
  Manifest.append t.manifest
    (Manifest.Add_table
       {
         bucket = bucket.id;
         level;
         name = meta.Table.name;
         size = meta.Table.size;
         entry_count = meta.Table.entry_count;
         smallest = meta.Table.smallest;
         largest = meta.Table.largest;
       })

let log_remove_table t bucket level (meta : Table.meta) =
  Manifest.append t.manifest
    (Manifest.Remove_table { bucket = bucket.id; level; name = meta.Table.name })

(* Encoded-entry stream over one table. Compaction/split readers pass
   ~fill_cache:false: a sequential pass must not evict the point-read
   working set from the block cache. *)
let table_seq t ~category ?(fill_cache = true) meta =
  Table.Reader.stream (reader_of t meta) ~category ~fill_cache ()

(* ------------------------------------------------------------------ *)
(* Sorted views (REMIX-style; see Sorted_view and DESIGN.md).

   The view's run streams are always scan-resistant (~fill_cache:false):
   replaying a whole bucket must not evict the point-get working set. *)

let invalidate_view bucket = bucket.view <- None

let view_open_run t (runs : Table.meta array) r ~from =
  Table.Reader.stream (reader_of t runs.(r)) ~category:Io_stats.Read_path
    ~fill_cache:false ~from ()

let bucket_tables bucket = Array.to_list bucket.levels |> List.concat

(* The view of [bucket], building it on demand when the flag is on and the
   run count is in the profitable window. Returns the pair a walk needs. *)
let bucket_view t bucket =
  match bucket.view with
  | Some vr -> Some vr
  | None ->
    if not t.cfg.Config.sorted_view then None
    else begin
      let tables = bucket_tables bucket in
      let n = List.length tables in
      if n < t.cfg.Config.sorted_view_min_runs || n > Sorted_view.max_runs
      then None
      else begin
        let runs = Array.of_list tables in
        let started = Unix.gettimeofday () in
        let view =
          Sorted_view.build
            (Array.map
               (fun m ->
                 table_seq t ~category:Io_stats.Read_path ~fill_cache:false m)
               runs)
        in
        Io_stats.record_view_rebuild (io_stats t)
          ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
        let vr = (view, runs) in
        bucket.view <- Some vr;
        Some vr
      end
    end

(* Flush site: extend an existing view with the new run instead of dropping
   it — a 2-way merge of the view's replay against the just-flushed table.
   Buckets that are never scanned never have a view and never pay this. *)
let view_note_flush t bucket (meta : Table.meta) =
  match bucket.view with
  | None -> ()
  | Some (view, runs) ->
    if
      (not t.cfg.Config.sorted_view)
      || Sorted_view.run_count view >= Sorted_view.max_runs
    then invalidate_view bucket
    else begin
      let started = Unix.gettimeofday () in
      let view' =
        Sorted_view.add_run view ~open_run:(view_open_run t runs)
          (table_seq t ~category:Io_stats.Read_path ~fill_cache:false meta)
      in
      Io_stats.record_view_rebuild (io_stats t)
        ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
      bucket.view <- Some (view', Array.append runs [| meta |])
    end

(* ------------------------------------------------------------------ *)
(* Flush (minor compaction): MemTable -> one level-0 LevelTable *)

let wal_reclaim t =
  (* Deleting a WAL segment discards the only other copy of the records the
     manifest's latest edits account for — those edits must hit the device
     first, or a crash after the delete loses acknowledged data. *)
  Manifest.sync t.manifest;
  (* Figure 5: the reclamation bound is the smallest unpersisted sequence
     number across all MemTables, or just past the newest write when every
     MemTable is empty. *)
  let bound =
    Array.fold_left
      (fun acc b ->
        match Memtable.min_seq b.memtable with
        | Some s -> Int64.min acc s
        | None -> acc)
      (Int64.add t.seq 1L) t.buckets
  in
  ignore (Wal.reclaim t.wal ~persisted_below:bound)

let flush_bucket t bucket =
  if not (Memtable.is_empty bucket.memtable) then begin
    (* A batch can span buckets, so this flush may persist part of a batch
       whose WAL record is still buffered; sync the log first so a crash
       after the flush replays the whole batch instead of applying half. *)
    Wal.sync t.wal;
    let entries = Memtable.sorted_entries bucket.memtable in
    let builder =
      Table.Builder.create t.env ~name:(fresh_table_name t)
        ~category:Io_stats.Flush ~bits_per_key:t.cfg.Config.bits_per_key
        ~ph_index:t.cfg.Config.ph_index ~expected_keys:(Array.length entries)
        ()
    in
    Array.iter (fun (ik, v) -> Table.Builder.add builder ik v) entries;
    let meta = Table.Builder.finish builder in
    bucket.levels.(0) <- meta :: bucket.levels.(0);
    view_note_flush t bucket meta;
    log_add_table t bucket 0 meta;
    (* Adaptive MemTable structure (§III-D): heavy range-query traffic since
       the last flush switches the next table to the sorted structure; quiet
       buckets switch back to the hash structure. *)
    if t.cfg.Config.adaptive_memtable then
      bucket.next_structure <-
        (if bucket.range_queries >= t.cfg.Config.range_query_switch_threshold
         then Memtable.Sorted
         else t.cfg.Config.memtable_structure);
    bucket.range_queries <- 0;
    bucket.memtable <- fresh_memtable t bucket.next_structure;
    wal_reclaim t
  end

(* ------------------------------------------------------------------ *)
(* Compaction: merge ALL sublevels of level i into ONE sublevel of i+1.
   Nothing in level i+1 is rewritten — write amplification 1 per level. *)

let compact_level t bucket level =
  let inputs = bucket.levels.(level) in
  if inputs <> [] && level + 1 < t.cfg.Config.l_max then begin
    t.compactions <- t.compactions + 1;
    let seqs =
      List.map
        (fun m ->
          table_seq t ~category:(Io_stats.Compaction_read level)
            ~fill_cache:false m)
        inputs
    in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:false
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    let expected =
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.entry_count) 0 inputs
    in
    let builder =
      Table.Builder.create t.env ~name:(fresh_table_name t)
        ~category:(Io_stats.Compaction (level + 1))
        ~bits_per_key:t.cfg.Config.bits_per_key
        ~ph_index:t.cfg.Config.ph_index ~expected_keys:(max 64 expected) ()
    in
    Seq.iter
      (fun (key, value) -> Table.Builder.add_encoded builder ~key ~value)
      entries;
    if Table.Builder.entry_count builder > 0 then begin
      let meta = Table.Builder.finish builder in
      bucket.levels.(level + 1) <- meta :: bucket.levels.(level + 1);
      log_add_table t bucket (level + 1) meta
    end
    else Table.Builder.abandon builder;
    List.iter (fun m -> log_remove_table t bucket level m) inputs;
    bucket.levels.(level) <- [];
    bucket.read_counts.(level) <- 0;
    invalidate_view bucket;
    (* The removes must be durable before the inputs vanish, or recovery
       would replay a manifest referencing deleted files. *)
    Manifest.sync t.manifest;
    List.iter (drop_table t) inputs
  end

(* ------------------------------------------------------------------ *)
(* Bucket split (§III-E) *)

(* Sample-sort splitter selection: every sublevel contributes N-1 evenly
   spaced keys (sampled from its in-memory index, which holds one key per
   data block); the sorted union is then itself evenly split N ways. *)
let choose_splitters t bucket =
  let n = t.cfg.Config.split_fanout in
  let per_table (meta : Table.meta) =
    if meta.Table.entry_count = 0 then []
    else begin
      let reader = reader_of t meta in
      let sample = ref [] in
      (* Evenly spaced block boundaries approximate key ordinals. *)
      let keys =
        Table.Reader.stream reader ~category:Io_stats.Split ~fill_cache:false ()
        |> Seq.map fst
      in
      (* Taking every (count/n)-th key exactly would re-read the table; the
         index-based approximation below uses the table's smallest/largest
         and a handful of sampled keys. For fidelity we sample from the real
         iterator but cap the work: stride through entries. Only the few
         sampled keys get unescaped. *)
      let stride = max 1 (meta.Table.entry_count / n) in
      let i = ref 0 in
      Seq.iter
        (fun k ->
          if !i mod stride = stride - 1 && List.length !sample < n - 1 then
            sample := Ikey.user_key_of_encoded k :: !sample;
          incr i)
        keys;
      !sample
    end
  in
  let all =
    Array.to_list bucket.levels
    |> List.concat_map (fun tables -> List.concat_map per_table tables)
    |> List.sort_uniq String.compare
  in
  let m = List.length all in
  if m = 0 then []
  else begin
    let arr = Array.of_list all in
    let splitters = ref [] in
    for i = 1 to n - 1 do
      let idx = min (m - 1) (i * m / n) in
      splitters := arr.(idx) :: !splitters
    done;
    List.sort_uniq String.compare !splitters
    |> List.filter (fun s -> String.compare s bucket.lo > 0)
  end

let split_bucket t bucket =
  let splitters = choose_splitters t bucket in
  if splitters <> [] then begin
    t.splits <- t.splits + 1;
    let boundaries = bucket.lo :: splitters in
    (* Full compaction of the whole bucket into one sorted stream; tombstones
       die here because the stream is the entire history of the range. *)
    let seqs =
      Array.to_list bucket.levels
      |> List.concat_map
           (List.map (fun m ->
                table_seq t ~category:Io_stats.Split ~fill_cache:false m))
    in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:true
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    (* Cut the stream at each splitter: one output table per new bucket.
       Splitters are pre-encoded once so the per-entry comparison runs on
       raw bytes. *)
    let remaining =
      ref (List.map (fun s -> Ikey.encode_user s) (List.tl boundaries))
    in
    let outputs = ref [] in
    let builder = ref None in
    let total_entries =
      Array.fold_left
        (fun acc tables ->
          List.fold_left
            (fun acc (m : Table.meta) -> acc + m.Table.entry_count)
            acc tables)
        0 bucket.levels
    in
    let finish () =
      match !builder with
      | Some b ->
        if Table.Builder.entry_count b > 0 then
          outputs := Table.Builder.finish b :: !outputs
        else Table.Builder.abandon b;
        builder := None
      | None -> ()
    in
    Seq.iter
      (fun (key, value) ->
        (* Advance past any splitters <= this key. *)
        let advanced = ref false in
        while
          match !remaining with
          | s :: _ when Ikey.compare_encoded_user s key <= 0 -> true
          | _ -> false
        do
          remaining := List.tl !remaining;
          advanced := true
        done;
        if !advanced then finish ();
        let b =
          match !builder with
          | Some b -> b
          | None ->
            let b' =
              Table.Builder.create t.env ~name:(fresh_table_name t)
                ~category:Io_stats.Split
                ~bits_per_key:t.cfg.Config.bits_per_key
                ~ph_index:t.cfg.Config.ph_index
                ~expected_keys:(max 64 (total_entries / List.length boundaries))
                ()
            in
            builder := Some b';
            b'
        in
        Table.Builder.add_encoded b ~key ~value)
      entries;
    finish ();
    let outputs = List.rev !outputs in
    (* Build the new buckets; each takes the output table whose range falls
       in its boundaries as its last level, and inherits the old MemTable's
       items that belong to it. *)
    let old_entries = Memtable.sorted_entries bucket.memtable in
    let new_buckets =
      List.map
        (fun lo ->
          let id = t.next_bucket_id in
          t.next_bucket_id <- id + 1;
          Manifest.append t.manifest (Manifest.Add_bucket { id; lo });
          make_bucket t ~id ~lo ~structure:bucket.next_structure)
        boundaries
    in
    let arr = Array.of_list new_buckets in
    let last = Array.length arr - 1 in
    let new_bucket_for key =
      let rec find i =
        if i = last then arr.(i)
        else if String.compare arr.(i + 1).lo key <= 0 then find (i + 1)
        else arr.(i)
      in
      find 0
    in
    List.iter
      (fun (meta : Table.meta) ->
        if meta.Table.entry_count > 0 then begin
          let b = new_bucket_for meta.Table.smallest in
          let lvl = t.cfg.Config.l_max - 1 in
          b.levels.(lvl) <- meta :: b.levels.(lvl);
          log_add_table t b lvl meta
        end)
      outputs;
    Array.iter
      (fun ((ik : Ikey.t), v) ->
        let b = new_bucket_for ik.Ikey.user_key in
        (* Capacity cannot be exceeded: the old table held all of these. *)
        ignore (Memtable.try_add b.memtable ik v))
      old_entries;
    (* Retire the old bucket. Log every edit of the split first, make them
       durable, and only then delete the retired files — recovery either
       sees the whole split or none of it, never a manifest pointing at
       missing tables. *)
    Array.iteri
      (fun level tables ->
        List.iter (fun m -> log_remove_table t bucket level m) tables)
      bucket.levels;
    Manifest.append t.manifest (Manifest.Remove_bucket { id = bucket.id });
    let others =
      Array.to_list t.buckets |> List.filter (fun b -> b.id <> bucket.id)
    in
    let all =
      List.sort (fun a b -> String.compare a.lo b.lo) (others @ new_buckets)
    in
    t.buckets <- Array.of_list all;
    Manifest.append t.manifest
      (Manifest.Watermark { seq = t.seq; next_file = t.next_file });
    Manifest.sync t.manifest;
    Array.iter (fun tables -> List.iter (drop_table t) tables) bucket.levels
  end

(* ------------------------------------------------------------------ *)
(* Bucket merge: adjacent tiny buckets collapse into one (§III-E). *)

let bucket_bytes bucket =
  Array.fold_left
    (fun acc tables ->
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.size) acc tables)
    0 bucket.levels

let merge_buckets t left right =
  (* Full-compact both buckets into one table placed at the merged bucket's
     last level; MemTable items are re-added. *)
  let seqs =
    List.concat_map
      (fun b ->
        Array.to_list b.levels
        |> List.concat_map
             (List.map (fun m ->
                  table_seq t ~category:Io_stats.Split ~fill_cache:false m)))
      [ left; right ]
  in
  let entries =
    Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:true
      ~snapshot_floor:(oldest_snapshot_seq t) seqs
  in
  let expected =
    List.fold_left
      (fun acc b ->
        Array.fold_left
          (fun acc tables ->
            List.fold_left
              (fun acc (m : Table.meta) -> acc + m.Table.entry_count)
              acc tables)
          acc b.levels)
      0
      [ left; right ]
  in
  let id = t.next_bucket_id in
  t.next_bucket_id <- id + 1;
  Manifest.append t.manifest (Manifest.Add_bucket { id; lo = left.lo });
  let merged = make_bucket t ~id ~lo:left.lo ~structure:left.next_structure in
  let builder =
    Table.Builder.create t.env ~name:(fresh_table_name t)
      ~category:Io_stats.Split ~bits_per_key:t.cfg.Config.bits_per_key
      ~ph_index:t.cfg.Config.ph_index ~expected_keys:(max 64 expected) ()
  in
  Seq.iter
    (fun (key, value) -> Table.Builder.add_encoded builder ~key ~value)
    entries;
  if Table.Builder.entry_count builder > 0 then begin
    let meta = Table.Builder.finish builder in
    let lvl = t.cfg.Config.l_max - 1 in
    merged.levels.(lvl) <- [ meta ];
    log_add_table t merged lvl meta
  end
  else Table.Builder.abandon builder;
  List.iter
    (fun b ->
      Array.iter
        (fun ((ik : Ikey.t), v) -> ignore (Memtable.try_add merged.memtable ik v))
        (Memtable.sorted_entries b.memtable);
      Array.iteri
        (fun level tables ->
          List.iter (fun m -> log_remove_table t b level m) tables)
        b.levels;
      Manifest.append t.manifest (Manifest.Remove_bucket { id = b.id }))
    [ left; right ];
  (* Edits durable before the retired files are deleted. *)
  Manifest.sync t.manifest;
  List.iter
    (fun b ->
      Array.iter (fun tables -> List.iter (drop_table t) tables) b.levels)
    [ left; right ];
  let others =
    Array.to_list t.buckets
    |> List.filter (fun b -> b.id <> left.id && b.id <> right.id)
  in
  t.buckets <-
    Array.of_list
      (List.sort (fun a b -> String.compare a.lo b.lo) (merged :: others))

(* ------------------------------------------------------------------ *)
(* Read-aware compaction scheduling (§III-G) *)

type job = { j_bucket : bucket; j_level : int; j_priority : float }

let eligible_jobs t =
  let cfg = t.cfg in
  let jobs = ref [] in
  Array.iter
    (fun b ->
      for level = 0 to cfg.Config.l_max - 2 do
        let subs = List.length b.levels.(level) in
        if subs >= cfg.Config.min_count then
          jobs := (b, level, subs, b.read_counts.(level)) :: !jobs
      done)
    t.buckets;
  let jobs = !jobs in
  if jobs = [] then []
  else begin
    let n = float_of_int (List.length jobs) in
    let avg_sub =
      List.fold_left (fun acc (_, _, s, _) -> acc +. float_of_int s) 0.0 jobs /. n
    in
    let avg_read =
      List.fold_left (fun acc (_, _, _, r) -> acc +. float_of_int r) 0.0 jobs /. n
    in
    List.map
      (fun (b, level, subs, reads) ->
        let rela_sub =
          if avg_sub > 0.0 then float_of_int subs /. avg_sub else 0.0
        in
        let rela_read =
          if avg_read > 0.0 then float_of_int reads /. avg_read else 0.0
        in
        {
          j_bucket = b;
          j_level = level;
          j_priority = (cfg.Config.read_weight *. rela_read) +. rela_sub;
        })
      jobs
    |> List.sort (fun a b -> Float.compare b.j_priority a.j_priority)
  end

(* A bucket splits when its device footprint reaches capacity (the paper's
   "each level consists of T full sublevels"), or — regardless of size —
   when the last level hits max_count sublevels, since the last level has
   nowhere left to compact to. *)
let needs_split t bucket =
  bucket_bytes bucket >= Config.effective_bucket_capacity t.cfg
  || List.length bucket.levels.(t.cfg.Config.l_max - 1) >= t.cfg.Config.max_count

(* Collapse the last level's sublevels into one — the escape valve for a
   bucket that must shed sublevels but cannot split (e.g. it holds a single
   hot key, so sample-sort finds no splitter). Tombstones die here: the
   last level is the deepest data, so a tombstone can only shadow versions
   inside this very merge. *)
let collapse_last_level t bucket =
  let level = t.cfg.Config.l_max - 1 in
  let inputs = bucket.levels.(level) in
  if List.length inputs > 1 then begin
    t.compactions <- t.compactions + 1;
    let seqs =
      List.map
        (fun m ->
          table_seq t ~category:(Io_stats.Compaction_read level)
            ~fill_cache:false m)
        inputs
    in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:true
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    let expected =
      List.fold_left
        (fun acc (m : Table.meta) -> acc + m.Table.entry_count)
        0 inputs
    in
    let builder =
      Table.Builder.create t.env ~name:(fresh_table_name t)
        ~category:(Io_stats.Compaction level)
        ~bits_per_key:t.cfg.Config.bits_per_key
        ~ph_index:t.cfg.Config.ph_index ~expected_keys:(max 64 expected) ()
    in
    Seq.iter
      (fun (key, value) -> Table.Builder.add_encoded builder ~key ~value)
      entries;
    if Table.Builder.entry_count builder > 0 then begin
      let meta = Table.Builder.finish builder in
      bucket.levels.(level) <- [ meta ];
      log_add_table t bucket level meta
    end
    else begin
      Table.Builder.abandon builder;
      bucket.levels.(level) <- []
    end;
    List.iter (fun m -> log_remove_table t bucket level m) inputs;
    bucket.read_counts.(level) <- 0;
    invalidate_view bucket;
    Manifest.sync t.manifest;
    List.iter (drop_table t) inputs
  end

(* Advisory pending-work estimate for the compaction pool's shard scheduler
   (Store_intf contract: read without the shard lock, so this must tolerate
   concurrent mutation and write nothing). Counts the bytes a split would
   rewrite plus the input bytes of every compaction-eligible level. *)
let maintenance_pending t =
  let pending = ref 0 in
  Array.iter
    (fun b ->
      if needs_split t b then pending := !pending + bucket_bytes b;
      for level = 0 to t.cfg.Config.l_max - 2 do
        let subs = b.levels.(level) in
        if List.length subs >= t.cfg.Config.min_count then
          pending :=
            !pending
            + List.fold_left
                (fun acc (m : Table.meta) -> acc + m.Table.size)
                0 subs
      done)
    t.buckets;
  !pending

let mandatory_work t =
  (* Splits and over-limit levels run regardless of budget. *)
  let progress = ref false in
  Array.iter
    (fun b ->
      if needs_split t b then begin
        let splits_before = t.splits in
        split_bucket t b;
        if t.splits > splits_before then progress := true
        else if
          List.length b.levels.(t.cfg.Config.l_max - 1)
          >= t.cfg.Config.max_count
        then begin
          collapse_last_level t b;
          progress := true
        end
        (* else: over byte capacity but unsplittable and within sublevel
           limits — nothing to do until the key population diversifies. *)
      end)
    (Array.copy t.buckets);
  Array.iter
    (fun b ->
      for level = 0 to t.cfg.Config.l_max - 2 do
        if List.length b.levels.(level) >= t.cfg.Config.max_count then begin
          compact_level t b level;
          progress := true
        end
      done)
    t.buckets;
  !progress

let maintenance t ?budget_bytes () =
  let budget = ref (match budget_bytes with Some b -> b | None -> max_int) in
  let rec loop () =
    while mandatory_work t do
      ()
    done;
    if !budget > 0 then begin
      match eligible_jobs t with
      | [] -> ()
      | job :: _ ->
        let before = Io_stats.bytes_written (io_stats t) in
        compact_level t job.j_bucket job.j_level;
        let after = Io_stats.bytes_written (io_stats t) in
        budget := !budget - (after - before);
        loop ()
    end
  in
  loop ();
  (* Opportunistic merge of adjacent tiny buckets. *)
  let n = Array.length t.buckets in
  if n >= 2 then begin
    let rec find i =
      if i + 1 >= Array.length t.buckets then ()
      else begin
        let a = t.buckets.(i) and b = t.buckets.(i + 1) in
        if
          bucket_bytes a + bucket_bytes b <= t.cfg.Config.bucket_merge_bytes
          && Memtable.count a.memtable + Memtable.count b.memtable
             < t.cfg.Config.memtable_items
          && Array.length t.buckets > t.cfg.Config.initial_buckets
        then merge_buckets t a b
        else find (i + 1)
      end
    in
    find 0
  end

(* ------------------------------------------------------------------ *)
(* Writes *)

let apply t kind key value =
  let seq = Int64.add t.seq 1L in
  t.seq <- seq;
  Io_stats.record_write (io_stats t) Io_stats.User_write
    (String.length key + String.length value);
  let ikey = Ikey.make ~kind key ~seq in
  let bucket = bucket_for t key in
  if not (Memtable.try_add bucket.memtable ikey value) then begin
    flush_bucket t bucket;
    (* A fresh table always has room for one item. *)
    let ok = Memtable.try_add bucket.memtable ikey value in
    assert ok
  end

let enforce_wal_threshold t =
  (* §III-F: when the log exceeds its threshold, flush the MemTable holding
     the oldest unpersisted item so the tail can advance. *)
  let guard = ref 0 in
  while
    Wal.total_bytes t.wal > t.cfg.Config.wal_size_threshold && !guard < 1024
  do
    incr guard;
    let oldest = ref None in
    Array.iter
      (fun b ->
        match Memtable.min_seq b.memtable with
        | Some s -> (
          match !oldest with
          | Some (s', _) when Int64.compare s' s <= 0 -> ()
          | _ -> oldest := Some (s, b))
        | None -> ())
      t.buckets;
    match !oldest with
    | Some (_, b) -> flush_bucket t b
    | None ->
      wal_reclaim t;
      guard := 1024
  done

(* The raw write path, before admission control and degraded-state guards
   (both live in the "Resilient write path" section below). Accepts several
   logical batches as one commit unit — a single WAL append carrying one
   record per batch (the group-commit primitive) — the common single-batch
   case being the one-element list. *)
let write_batches_inner t batches =
  let total =
    List.fold_left (fun acc items -> acc + List.length items) 0 batches
  in
  if total > 0 then begin
    Wal.append_batches t.wal ~first_seq:(Int64.add t.seq 1L) batches;
    List.iter
      (fun items ->
        List.iter (fun (kind, key, value) -> apply t kind key value) items)
      batches;
    enforce_wal_threshold t;
    (* Splits and over-limit compactions always run; eligible compactions
       draw on an allowance that accrues per batch, modeling the background
       bandwidth compaction threads would share with the foreground. An
       unconfigured budget (max_int) means eager compaction. *)
    if t.cfg.Config.compaction_budget_per_batch = max_int then maintenance t ()
    else begin
      t.io_credit <-
        min
          (t.io_credit + t.cfg.Config.compaction_budget_per_batch)
          (256 * 1024 * 1024);
      while mandatory_work t do () done;
      let rec drain () =
        if t.io_credit > 0 then
          match eligible_jobs t with
          | [] -> ()
          | job :: _ ->
            let before = Io_stats.bytes_written (io_stats t) in
            compact_level t job.j_bucket job.j_level;
            let after = Io_stats.bytes_written (io_stats t) in
            t.io_credit <- t.io_credit - (after - before);
            drain ()
      in
      drain ()
    end
  end

let flush t = Array.iter (fun b -> flush_bucket t b) t.buckets

(* ------------------------------------------------------------------ *)
(* Reads *)

let get_at_seq t key ~snapshot =
  let bucket = bucket_for t key in
  match Memtable.find bucket.memtable key ~snapshot with
  | Some (Ikey.Value, v) -> Some v
  | Some (Ikey.Deletion, _) -> None
  | None ->
    (* One seek target serves every sublevel probe: the bloom hashes its
       escaped-user prefix and the cursor seeks its full bytes, so the per-get
       allocation is this one string (plus the returned value). *)
    let target = Ikey.encode_seek key ~seq:snapshot in
    let rec levels level =
      if level >= t.cfg.Config.l_max then None
      else begin
        let rec sublevels = function
          | [] -> levels (level + 1)
          | (m : Table.meta) :: rest ->
            if not (Table.overlaps m ~lo:key ~hi:key) then sublevels rest
            else begin
              let reader = reader_of t m in
              if not (Table.Reader.may_contain_encoded reader target) then
                sublevels rest
              else begin
                (* A real sublevel access: §III-G read accounting. *)
                bucket.read_counts.(level) <- bucket.read_counts.(level) + 1;
                match
                  Table.Reader.get_encoded reader
                    ~category:Io_stats.Read_path ~filter_checked:true target
                with
                | Some (Ikey.Value, v, _) -> Some v
                | Some (Ikey.Deletion, _, _) -> None
                | None -> sublevels rest
              end
            end
        in
        sublevels bucket.levels.(level)
      end
    in
    levels 0

(* Newest committed version's seq for [key] — across the owning bucket's
   MemTable and every level — or None when the key was never written.
   Transaction commit validation compares this against the transaction's
   snapshot seq; it is robust to version GC because the newest version of a
   key always survives compaction. *)
let newest_seq t key =
  let bucket = bucket_for t key in
  match Memtable.find_with_seq bucket.memtable key ~snapshot:Ikey.max_seq with
  | Some (_, _, seq) -> Some seq
  | None ->
    let target = Ikey.encode_seek key ~seq:Ikey.max_seq in
    let rec levels level =
      if level >= t.cfg.Config.l_max then None
      else begin
        let rec sublevels = function
          | [] -> levels (level + 1)
          | (m : Table.meta) :: rest ->
            if not (Table.overlaps m ~lo:key ~hi:key) then sublevels rest
            else begin
              let reader = reader_of t m in
              if not (Table.Reader.may_contain_encoded reader target) then
                sublevels rest
              else
                match
                  Table.Reader.get_encoded reader
                    ~category:Io_stats.Read_path ~filter_checked:true target
                with
                | Some (_, _, seq) -> Some seq
                | None -> sublevels rest
            end
        in
        sublevels bucket.levels.(level)
      end
    in
    levels 0

(* [get]/[scan]/[get_at]/[scan_at] are defined in the resilience section
   below, wrapping the [_seq] versions with corruption quarantine. *)

(* Lazy stream of visible (key, value) pairs with lo <= key < hi at the
   given snapshot — newest visible version per key, tombstones elided.

   Bucket key ranges are disjoint (the bucket-sort invariant), so the stream
   is the concatenation of per-bucket merges in bucket order; a consumer
   that stops early never touches later buckets' data blocks. Per-bucket
   state (table handles, the sorted MemTable buffer of §III-D) is captured
   when the bucket is first reached. A caller that must interleave the
   stream with writes pins a {!snapshot} first: tables retired by a
   concurrent compaction then stay readable (on every Env, POSIX included)
   until the snapshot releases. *)
let visible_seq t ~lo ~hi ~snapshot =
  let relevant =
    (* The last bucket's upper bound is unbounded — no sentinel string, so
       arbitrarily large user keys (e.g. 17+ bytes of 0xff) stay in scope. *)
    Array.to_list t.buckets
    |> List.filteri (fun i b ->
           let b_hi =
             if i + 1 < Array.length t.buckets then
               Some t.buckets.(i + 1).lo
             else None
           in
           String.compare b.lo hi < 0
           &&
           match b_hi with
           | None -> true
           | Some h -> String.compare h lo > 0)
  in
  (* Encoded range bounds, computed once: tables seek [from] directly and the
     take-while compares [hi_enc] against each entry's escaped-user prefix. *)
  let from = Ikey.encode_seek lo ~seq:Ikey.max_seq in
  let hi_enc = Ikey.encode_user hi in
  let bucket_seq b () =
    b.range_queries <- b.range_queries + 1;
    let mem_entries =
      (* §III-D: sort the hash MemTable into a one-time buffer; entries are
         encoded here to join the bytewise merge (the MemTable is small, so
         this is bounded work). *)
      Memtable.sorted_entries b.memtable
      |> Array.to_seq
      |> Seq.filter (fun ((ik : Ikey.t), _) ->
             Ikey.compare_user ik.Ikey.user_key lo >= 0
             && Ikey.compare_user ik.Ikey.user_key hi < 0)
      |> Seq.map (fun (ik, v) -> (Ikey.encode ik, v))
    in
    let table_seqs =
      (* Sorted view first: one selector-driven walk replaces the heap
         merge of the whole run set. Falls through to the per-table merge
         when the flag is off, the bucket has too few (or too many) runs,
         or the view was just invalidated. Both paths stream with
         ~fill_cache:false — live and snapshot scans alike are
         scan-resistant, so a long walk cannot evict the hot-get working
         set (PR 9 satellite). *)
      match bucket_view t b with
      | Some (view, runs) ->
        [
          Sorted_view.walk view ~from ~open_run:(view_open_run t runs)
          |> Seq.take_while (fun (k, _) ->
                 Ikey.compare_encoded_user hi_enc k > 0);
        ]
      | None ->
        Array.to_list b.levels
        |> List.concat_map
             (List.filter_map (fun (m : Table.meta) ->
                  (* Exclusive bound: a table whose smallest key equals [hi]
                     holds nothing in [lo, hi) — never open or stream it. *)
                  if Table.overlaps_excl m ~lo ~hi_excl:hi then
                    Some
                      (Table.Reader.stream (reader_of t m)
                         ~category:Io_stats.Read_path ~fill_cache:false ~from
                         ()
                      |> Seq.take_while (fun (k, _) ->
                             Ikey.compare_encoded_user hi_enc k > 0))
                  else None))
    in
    (Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:false
       ~snapshot_floor:snapshot
       (mem_entries :: table_seqs))
      ()
  in
  let merged = Seq.concat (List.to_seq (List.map bucket_seq relevant)) in
  (* Entries newer than the snapshot are skipped (§III-D sequence-number
     rule); among the rest the first (newest) version per user key decides,
     and tombstones are dropped. Only emitted keys get unescaped. *)
  let rec visible last seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((k, v), rest) ->
      if Int64.compare (Ikey.encoded_seq k) snapshot > 0 then
        visible last rest ()
      else begin
        let dup =
          match last with
          | Some prev -> Ikey.encoded_same_user prev k
          | None -> false
        in
        let last = Some k in
        if dup then visible last rest ()
        else
          match Ikey.encoded_kind k with
          | Ikey.Value ->
            Seq.Cons ((Ikey.user_key_of_encoded k, v), visible last rest)
          | Ikey.Deletion -> visible last rest ()
      end
  in
  visible None merged

let iter_range t ?snapshot ~lo ~hi () =
  let snapshot =
    match snapshot with Some s -> s.Intf.snap_seq | None -> t.seq
  in
  visible_seq t ~lo ~hi ~snapshot

(* Seq.take raises on a negative count; a negative limit means "nothing". *)
let scan_at_seq t ~lo ~hi ?(limit = max_int) ~snapshot () =
  visible_seq t ~lo ~hi ~snapshot |> Seq.take (max 0 limit) |> List.of_seq


(* ------------------------------------------------------------------ *)
(* Recovery *)

(* Delete table files that no live bucket references — debris of an
   interrupted flush/compaction/split whose manifest edit never became
   durable. Only files carrying this store's name prefix and the table
   suffix are touched, so co-tenant stores on the same Env are safe. *)
let gc_orphans t =
  let live = Hashtbl.create 64 in
  Array.iter
    (fun b ->
      Array.iter
        (List.iter (fun (m : Table.meta) -> Hashtbl.replace live m.Table.name ()))
        b.levels)
    t.buckets;
  let prefix = t.cfg.Config.name ^ "-" in
  let plen = String.length prefix in
  List.iter
    (fun f ->
      if
        String.length f > plen
        && String.equal (String.sub f 0 plen) prefix
        && Filename.check_suffix f ".lvt"
        && not (Hashtbl.mem live f)
      then Env.delete t.env f)
    (Env.list_files t.env)

let recover ?env:env_opt cfg =
  let env = match env_opt with Some e -> e | None -> Env.in_memory () in
  if not (Manifest.exists env ~name:(manifest_name cfg)) then create ~env cfg
  else begin
    (* Rebuild the bucket directory from manifest edits. *)
    let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 64 in
    let max_bucket_id = ref (-1) in
    let watermark_seq = ref 0L in
    let watermark_file = ref 1 in
    let stub_t = ref None in
    (* We need a [t] to create memtables; construct it first with empty
       directory, then fill. *)
    let t =
      {
        cfg;
        env;
        (* Placeholder log, replaced below once the real WAL is recovered;
           its distinct prefix keeps it out of future recoveries and its
           single empty segment is deleted before returning. *)
        wal = Wal.create env ~prefix:(cfg.Config.name ^ "-tmpwal") ();
        manifest = Manifest.reopen env ~name:(manifest_name cfg);
        buckets = [||];
        readers = Hashtbl.create 256;
        next_file = 1;
        next_bucket_id = 0;
        seq = 0L;
        splits = 0;
        compactions = 0;
        io_credit = 0;
        health = Intf.Healthy;
        quarantined = [];
        cache =
          (if cfg.Config.block_cache_bytes > 0 then
             Some
               (Wip_storage.Block_cache.create
                  ~capacity_bytes:cfg.Config.block_cache_bytes)
           else None);
        next_snap_id = 0;
        live_snaps = Hashtbl.create 8;
        zombies = Hashtbl.create 8;
      }
    in
    stub_t := Some t;
    Manifest.replay env ~name:(manifest_name cfg) (fun edit ->
        match edit with
        | Manifest.Add_bucket { id; lo } ->
          if id > !max_bucket_id then max_bucket_id := id;
          Hashtbl.replace buckets id
            (make_bucket t ~id ~lo ~structure:cfg.Config.memtable_structure)
        | Manifest.Remove_bucket { id } -> Hashtbl.remove buckets id
        | Manifest.Add_table { bucket; level; name; size; entry_count; smallest; largest } -> (
          match Hashtbl.find_opt buckets bucket with
          | Some b ->
            let meta =
              { Table.name; size; entry_count; smallest; largest }
            in
            b.levels.(level) <- meta :: b.levels.(level)
          | None -> ())
        | Manifest.Remove_table { bucket; level; name } -> (
          match Hashtbl.find_opt buckets bucket with
          | Some b ->
            b.levels.(level) <-
              List.filter
                (fun (m : Table.meta) -> not (String.equal m.Table.name name))
                b.levels.(level)
          | None -> ())
        | Manifest.Watermark { seq; next_file } ->
          watermark_seq := seq;
          watermark_file := next_file);
    let bucket_list =
      Hashtbl.fold (fun _ b acc -> b :: acc) buckets []
      |> List.sort (fun a b -> String.compare a.lo b.lo)
    in
    t.buckets <- Array.of_list bucket_list;
    t.next_bucket_id <- !max_bucket_id + 1;
    (* A crash before the very first manifest sync replays to zero buckets;
       bootstrap again so the WAL replay below has somewhere to land. *)
    if Array.length t.buckets = 0 then bootstrap_buckets t;
    (* next_file: beyond both the watermark and any live table file. *)
    let max_file_no =
      Array.fold_left
        (fun acc b ->
          Array.fold_left
            (fun acc tables ->
              List.fold_left
                (fun acc (m : Table.meta) ->
                  (* "<name>-NNNNNN.lvt" *)
                  let base = Filename.chop_suffix m.Table.name ".lvt" in
                  let prefix_len = String.length cfg.Config.name + 1 in
                  match
                    int_of_string_opt
                      (String.sub base prefix_len (String.length base - prefix_len))
                  with
                  | Some n -> max acc n
                  | None -> acc)
                acc tables)
            acc b.levels)
        !watermark_file t.buckets
    in
    t.next_file <- max_file_no + 1;
    t.seq <- !watermark_seq;
    (* Replay the WAL into MemTables; duplicates of already-persisted items
       carry their original (smaller or equal) sequence numbers, so reads
       stay correct and the next flush simply rewrites them. *)
    let wal =
      Wal.recover env ~prefix:(cfg.Config.name ^ "-wal")
        ~segment_bytes:cfg.Config.wal_segment_bytes
        ~replay:(fun (r : Wal.record) ->
          if Int64.compare r.Wal.seq t.seq > 0 then t.seq <- r.Wal.seq;
          let ikey = Ikey.make ~kind:r.Wal.kind r.Wal.key ~seq:r.Wal.seq in
          let bucket = bucket_for t r.Wal.key in
          if not (Memtable.try_add bucket.memtable ikey r.Wal.value) then begin
            flush_bucket t bucket;
            ignore (Memtable.try_add bucket.memtable ikey r.Wal.value)
          end)
        ()
    in
    Env.delete env (cfg.Config.name ^ "-tmpwal-000000.log");
    let t = { t with wal } in
    if Int64.compare (Wal.max_seq_logged wal) t.seq > 0 then
      t.seq <- Wal.max_seq_logged wal;
    gc_orphans t;
    t
  end

let checkpoint t =
  Wal.sync t.wal;
  Manifest.append t.manifest
    (Manifest.Watermark { seq = t.seq; next_file = t.next_file });
  Manifest.sync t.manifest

(* ------------------------------------------------------------------ *)
(* Resilient write path: admission control, degraded state, quarantine.

   Layering: the Env underneath already retries transient faults when
   wrapped by [Env.with_retry], so any [Io_fault] that reaches this layer
   has exhausted its retry budget (or carries [retryable = false]). The
   store then stops accepting mutations — reads keep working — until a
   recovery probe's durable round-trip succeeds. Exceptions are classified
   through [Env.io_fault_detail] / [Env.corruption_detail] rather than
   matched: lint rule R6 reserves [Io_fault] handlers for [lib/storage]
   and [Wip_util.Retry]. *)

let health t = t.health

let quarantined_tables t = t.quarantined

let degrade t ~reason =
  match t.health with
  | Intf.Degraded _ -> ()
  | Intf.Healthy ->
    t.health <- Intf.Degraded { reason };
    Io_stats.record_degraded_transition (io_stats t)

(* Memtable bytes plus estimated compaction debt: the quantity the
   watermarks gate on, and the quantity [bench/stall.ml] asserts stays
   bounded when admission control is on. *)
let write_pressure t =
  Array.fold_left (fun acc b -> acc + Memtable.byte_size b.memtable) 0
    t.buckets
  + maintenance_pending t

(* Write admission. This engine runs all maintenance on the writing thread
   — there is no background pool at this layer — so a stall is not a sleep
   but a debt payment: the stalled writer flushes and compacts until the
   pressure drops below the stop watermark or the deadline passes. The
   slowdown band pays one bounded slice and admits; the sharded front end
   layers real (pool-drained) waits on top of this. *)
let admit t =
  if not t.cfg.Config.admission_control then Ok ()
  else begin
    let slowdown = t.cfg.Config.slowdown_watermark_bytes in
    let stop = t.cfg.Config.stop_watermark_bytes in
    if write_pressure t < slowdown then Ok ()
    else begin
      let started = Unix.gettimeofday () in
      let deadline = started +. t.cfg.Config.stall_deadline_s in
      let pay_slice () =
        if maintenance_pending t > 0 then
          maintenance t ~budget_bytes:t.cfg.Config.memtable_bytes ()
        else begin
          (* All pressure is MemTable bytes: flush the fullest one. *)
          let fullest = ref None in
          Array.iter
            (fun b ->
              let sz = Memtable.byte_size b.memtable in
              if sz > 0 then
                match !fullest with
                | Some (sz', _) when sz' >= sz -> ()
                | _ -> fullest := Some (sz, b))
            t.buckets;
          match !fullest with Some (_, b) -> flush_bucket t b | None -> ()
        end
      in
      let result =
        if write_pressure t < stop then begin
          pay_slice ();
          Ok ()
        end
        else begin
          let rec stall_loop () =
            let p = write_pressure t in
            if p < stop then Ok ()
            else if Unix.gettimeofday () >= deadline then
              Error (Intf.Backpressure { shard = 0; debt_bytes = p })
            else begin
              pay_slice ();
              (* When nothing can make progress (nothing flushable or
                 compactable) the loop must not spin hot; the deadline
                 still bounds it. *)
              if write_pressure t >= p then Unix.sleepf 0.0002;
              stall_loop ()
            end
          in
          stall_loop ()
        end
      in
      Io_stats.record_stall (io_stats t)
        ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
      result
    end
  end

let try_write_batches t batches =
  match t.health with
  | Intf.Degraded { reason } -> Error (Intf.Store_degraded { reason })
  | Intf.Healthy -> (
    if List.for_all (fun items -> items = []) batches then Ok ()
    else
      try
        match admit t with
        | Error _ as e -> e
        | Ok () ->
          write_batches_inner t batches;
          Ok ()
      with e -> (
        match Env.io_fault_detail e with
        | Some reason ->
          degrade t ~reason;
          Error (Intf.Store_degraded { reason })
        | None -> raise e))

let try_write_batch t items = try_write_batches t [ items ]

let write_batch t items =
  match try_write_batch t items with
  | Ok () -> ()
  | Error e -> raise (Intf.Rejected e)

let put t ~key ~value = write_batch t [ (Ikey.Value, key, value) ]

let delete t ~key = write_batch t [ (Ikey.Deletion, key, "") ]

(* Maintenance entry points get the same degraded-state discipline as
   writes: a fault that survives the env's retries flips the store
   read-only and surfaces typed. (Internal callers — admission, WAL
   enforcement — use the unguarded versions above; the guard at the public
   boundary sees their faults when they propagate.) *)
let guard_durable t f =
  match t.health with
  | Intf.Degraded { reason } -> raise (Intf.Rejected (Intf.Store_degraded { reason }))
  | Intf.Healthy -> (
    try f ()
    with e -> (
      match Env.io_fault_detail e with
      | Some reason ->
        degrade t ~reason;
        raise (Intf.Rejected (Intf.Store_degraded { reason }))
      | None -> raise e))

let flush t = guard_durable t (fun () -> flush t)

(* WAL-only durability barrier: the group-commit leader calls this once per
   batch window after [try_write_batches]. A durable failure here must not
   let the caller ack, hence the raising guard. *)
let log_sync t = guard_durable t (fun () -> Wal.sync t.wal)

let maintenance t ?budget_bytes () =
  guard_durable t (fun () -> maintenance t ?budget_bytes ())

let probe t =
  match t.health with
  | Intf.Healthy -> Intf.Healthy
  | Intf.Degraded _ -> (
    (* One genuine durable round-trip through the same path writes use: a
       checkpoint watermark appended and synced. Success proves the device
       accepts writes again. *)
    match checkpoint t with
    | () ->
      t.health <- Intf.Healthy;
      t.health
    | exception e -> (
      match Env.io_fault_detail e with
      | Some reason ->
        t.health <- Intf.Degraded { reason };
        t.health
      | None -> raise e))

(* Quarantine: a table whose bytes fail validation is dropped from its
   level (manifest edit included, so recovery agrees), its reader and
   cached blocks discarded, and the file renamed aside with a
   ".quarantined" suffix — outside the ".lvt" namespace, so neither
   [gc_orphans] nor recovery will touch the evidence. Serving continues
   from the remaining runs. Returns [true] when a table was found and
   removed, guaranteeing the caller's retry makes progress. *)
let quarantine t ~file ~detail =
  let found = ref false in
  Array.iter
    (fun b ->
      Array.iteri
        (fun level tables ->
          if
            (not !found)
            && List.exists
                 (fun (m : Table.meta) -> String.equal m.Table.name file)
                 tables
          then begin
            found := true;
            let meta =
              List.find
                (fun (m : Table.meta) -> String.equal m.Table.name file)
                tables
            in
            b.levels.(level) <-
              List.filter
                (fun (m : Table.meta) ->
                  not (String.equal m.Table.name file))
                tables;
            log_remove_table t b level meta;
            invalidate_view b;
            Manifest.sync t.manifest;
            (match Hashtbl.find_opt t.readers file with
            | Some r ->
              Table.Reader.close r;
              Hashtbl.remove t.readers file
            | None -> ());
            (match t.cache with
            | Some cache -> Wip_storage.Block_cache.evict_file cache file
            | None -> ());
            (try Env.rename t.env ~src:file ~dst:(file ^ ".quarantined")
             with Not_found -> ());
            t.quarantined <- (file, detail) :: t.quarantined
          end)
        b.levels)
    t.buckets;
  !found

let rec get t key =
  try get_at_seq t key ~snapshot:t.seq
  with e -> (
    match Env.corruption_detail e with
    | Some (file, detail) when quarantine t ~file ~detail -> get t key
    | _ -> raise e)

let rec scan t ~lo ~hi ?limit () =
  try scan_at_seq t ~lo ~hi ?limit ~snapshot:t.seq ()
  with e -> (
    match Env.corruption_detail e with
    | Some (file, detail) when quarantine t ~file ~detail ->
      scan t ~lo ~hi ?limit ()
    | _ -> raise e)

let rec get_at t key ~snapshot =
  try get_at_seq t key ~snapshot:snapshot.Intf.snap_seq
  with e -> (
    match Env.corruption_detail e with
    | Some (file, detail) when quarantine t ~file ~detail ->
      get_at t key ~snapshot
    | _ -> raise e)

let rec scan_at t ~lo ~hi ?limit ~snapshot () =
  try scan_at_seq t ~lo ~hi ?limit ~snapshot:snapshot.Intf.snap_seq ()
  with e -> (
    match Env.corruption_detail e with
    | Some (file, detail) when quarantine t ~file ~detail ->
      scan_at t ~lo ~hi ?limit ~snapshot ()
    | _ -> raise e)

(* ------------------------------------------------------------------ *)
(* Snapshot-isolation transactions.

   [txn_begin] pins a snapshot; reads are served from the transaction's own
   write buffer first and otherwise at the pinned seq (recording the key in
   the read set). Nothing touches the store until [txn_commit], which
   first-committer-wins validates: if any key in the read or write set has a
   committed version newer than the snapshot, the commit fails with
   {!Intf.Txn_conflict}; otherwise the buffered writes apply atomically
   through the normal admission-controlled batch path (so a commit can still
   fail with [Backpressure] or [Store_degraded]). The engine is
   single-writer under its shard lock, so validate-then-apply is atomic. *)

type txn = {
  txn_store : t;
  txn_snap : Intf.snapshot;
  txn_writes : (string, Ikey.kind * string) Hashtbl.t;
  txn_reads : (string, unit) Hashtbl.t;
  mutable txn_open : bool; (* guarded_by: caller *)
}

let txn_begin t =
  {
    txn_store = t;
    txn_snap = snapshot t;
    txn_writes = Hashtbl.create 16;
    txn_reads = Hashtbl.create 16;
    txn_open = true;
  }

let txn_snapshot txn = txn.txn_snap

let require_open txn op =
  if not txn.txn_open then
    invalid_arg (Printf.sprintf "Store.%s: transaction already closed" op)

let txn_get txn key =
  require_open txn "txn_get";
  match Hashtbl.find_opt txn.txn_writes key with
  | Some (Ikey.Value, v) -> Some v
  | Some (Ikey.Deletion, _) -> None
  | None ->
    Hashtbl.replace txn.txn_reads key ();
    get_at txn.txn_store key ~snapshot:txn.txn_snap

let txn_put txn ~key ~value =
  require_open txn "txn_put";
  Hashtbl.replace txn.txn_writes key (Ikey.Value, value)

let txn_delete txn ~key =
  require_open txn "txn_delete";
  Hashtbl.replace txn.txn_writes key (Ikey.Deletion, "")

let txn_close txn =
  if txn.txn_open then begin
    txn.txn_open <- false;
    Intf.release txn.txn_snap
  end

let txn_abort txn = txn_close txn

let txn_commit txn =
  require_open txn "txn_commit";
  let t = txn.txn_store in
  let base = txn.txn_snap.Intf.snap_seq in
  let conflicting key acc =
    match acc with
    | Some _ -> acc
    | None -> (
      match newest_seq t key with
      | Some s when Int64.compare s base > 0 -> Some key
      | _ -> None)
  in
  let conflict =
    Hashtbl.fold (fun key _ acc -> conflicting key acc) txn.txn_writes None
  in
  let conflict =
    Hashtbl.fold (fun key _ acc -> conflicting key acc) txn.txn_reads conflict
  in
  let result =
    match conflict with
    | Some key -> Error (Intf.Txn_conflict { key })
    | None ->
      let items =
        Hashtbl.fold
          (fun key (kind, value) acc -> (kind, key, value) :: acc)
          txn.txn_writes []
      in
      if items = [] then Ok () else try_write_batch t items
  in
  txn_close txn;
  result

(* ------------------------------------------------------------------ *)
(* Introspection *)

type bucket_info = {
  lo : string;
  memtable_items : int;
  memtable_structure : Memtable.structure;
  sublevels_per_level : int list;
  bytes : int;
}

let bucket_boundaries t =
  Array.to_list t.buckets |> List.map (fun (b : bucket) -> b.lo)

let bucket_infos t =
  Array.to_list t.buckets
  |> List.map (fun (b : bucket) ->
         {
           lo = b.lo;
           memtable_items = Memtable.count b.memtable;
           memtable_structure = Memtable.structure b.memtable;
           sublevels_per_level =
             Array.to_list (Array.map List.length b.levels);
           bytes = bucket_bytes b;
         })

let file_sizes t =
  Array.to_list t.buckets
  |> List.concat_map (fun b ->
         Array.to_list b.levels
         |> List.concat_map (List.map (fun (m : Table.meta) -> m.Table.size)))

let live_table_files t =
  Array.to_list t.buckets
  |> List.concat_map (fun b ->
         Array.to_list b.levels
         |> List.concat_map (List.map (fun (m : Table.meta) -> m.Table.name)))

let memtable_probes t =
  Array.fold_left (fun acc b -> acc + Memtable.probes b.memtable) 0 t.buckets
