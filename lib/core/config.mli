(** WipDB configuration (paper §III, §IV-A defaults). *)

type t = {
  l_max : int;
      (** levels per bucket's miniature LSM-tree; compaction-induced write
          amplification is bounded by this (default 3) *)
  t_sublevels : int;
      (** sublevels per level at bucket capacity; the last level reaching
          this count triggers a bucket split (default 8) *)
  split_fanout : int;
      (** [N]: buckets produced by one split; split-induced write
          amplification is [N/(N-1)] (default 8) *)
  bucket_capacity_bytes : int;
      (** a bucket splits when its on-device bytes reach this. 0 (the
          default) derives the paper's definition of a full bucket — every
          level holding [t_sublevels] memtable-sized sublevels:
          [l_max * t_sublevels * memtable_bytes]. A bucket whose last level
          reaches [max_count] sublevels splits regardless, since the last
          level cannot be compacted further. *)
  memtable_items : int;  (** per-bucket MemTable capacity in items *)
  memtable_bytes : int;  (** per-bucket MemTable capacity in bytes *)
  initial_buckets : int;  (** buckets pre-created over the key space *)
  initial_key_space : int64;
      (** numeric key-space extent used to place initial bucket boundaries;
          irrelevant when [initial_buckets = 1] *)
  min_count : int;  (** sublevels before a level is compaction-eligible (4) *)
  max_count : int;  (** sublevels forcing a mandatory compaction (20) *)
  read_weight : float;
      (** weight of relative read count in compaction priority (10);
          0 disables read-aware scheduling — the paper's WipDB-DRC *)
  bits_per_key : int;  (** bloom filter density (10) *)
  block_cache_bytes : int;
      (** LRU block-cache capacity shared by all of the store's tables;
          0 (the default) disables caching so I/O accounting reflects the
          raw read path. *)
  memtable_structure : Wip_memtable.Memtable.structure;
      (** initial structure for new MemTables; [Hash] is WipDB,
          [Sorted] is the paper's WipDB-S ablation *)
  adaptive_memtable : bool;
      (** switch a bucket to a sorted MemTable after heavy range-query
          traffic and back when it subsides (paper §III-D) *)
  range_query_switch_threshold : int;
      (** range queries between two flushes that trigger the switch *)
  compaction_budget_per_batch : int;
      (** background-compaction I/O allowance (bytes) granted per write
          batch, modeling the bandwidth a real deployment's compaction
          threads share with the foreground. [max_int] (the default) runs
          every eligible compaction eagerly; a finite budget makes the
          read-aware scheduler's choice of WHERE to compact meaningful. *)
  wal_segment_bytes : int;
  wal_size_threshold : int;
      (** total log size that forces flushing tail MemTables (paper §III-F) *)
  bucket_merge_bytes : int;
      (** adjacent buckets jointly smaller than this are merged *)
  admission_control : bool;
      (** gate writes on the watermarks below (default [true]); [false]
          admits everything — the ablation arm of [bench/stall.ml] *)
  slowdown_watermark_bytes : int;
      (** write pressure (total MemTable bytes + estimated compaction debt)
          above which an admitted writer first pays down a slice of
          maintenance debt — the analog of LevelDB's slowdown trigger
          (default 2 MiB) *)
  stop_watermark_bytes : int;
      (** write pressure above which writers stall until maintenance brings
          pressure back under the watermark; a stall that outlives
          [stall_deadline_s] is refused with [Backpressure] rather than
          hanging (default 4 MiB) *)
  stall_deadline_s : float;
      (** longest a single write may be stalled (default 1 s) *)
  sorted_view : bool;
      (** maintain a REMIX-style sorted view per bucket so scans replay one
          frozen merge instead of heap-merging the run set (default
          [true]); built lazily on the first scan of a bucket with at least
          [sorted_view_min_runs] runs, extended incrementally at flush, and
          invalidated by compaction/split/merge/quarantine *)
  sorted_view_min_runs : int;
      (** run count below which a bucket scan just heap-merges (default 2:
          any overlap benefits) *)
  ph_index : bool;
      (** emit a CHD perfect-hash point-index block in every table so cold
          gets jump straight to their entry instead of binary-searching
          restart points (default [true]); tables too large for 16-bit
          locators ship without one and read via the fallback path *)
  name : string;
}

val default : t
(** Paper defaults scaled to simulation size: [l_max = 3], [t_sublevels = 8],
    [split_fanout = 8], [min_count = 4], [max_count = 20],
    [read_weight = 10.0], hash MemTables of 4096 items / 512 KiB. *)

val scaled : scale:int -> t
(** Multiply the byte-sized knobs by [scale]. *)

val validate : t -> (unit, string) result

val shard_boundaries : t -> shards:int -> string list
(** Lower bounds (first is [""]) partitioning the numeric key space into
    [shards] contiguous ranges, placed by the same rule as the initial
    bucket boundaries — so a sharded front's ranges align with engine
    bucket boundaries whenever [shards] divides [initial_buckets].
    @raise Invalid_argument when [shards < 1]. *)

val effective_bucket_capacity : t -> int
(** [bucket_capacity_bytes] when positive, else the derived
    [l_max * t_sublevels * memtable_bytes]. *)

val wa_upper_bound : t -> float
(** The paper's bound [l_max + N/(N-1)] — 4.14… for the defaults. *)
