(** WipDB: a write-in-place key-value store that mimics bucket sort.

    The key space is partitioned into buckets; each incoming item goes
    straight into the bucket that owns its key range (write-in-place, like
    bucket sort), where a miniature tiered LSM-tree of at most
    [Config.l_max] levels manages it. Merging a level rewrites nothing in
    the target level, so compaction-induced write amplification is bounded
    by [l_max]; bucket splits add at most [N/(N-1)] more — ≈ 4.15 total with
    the paper's defaults, independent of store size.

    Front ends: one MemTable per bucket (hash-structured by default, §III-C),
    a shared write-ahead log with Figure-5 tail reclamation (§III-F), an
    incremental manifest for structural recovery, read-aware compaction
    scheduling (§III-G) and adaptive per-bucket MemTable structure (§III-D). *)

type t

val create : ?env:Wip_storage.Env.t -> Config.t -> t
(** A fresh store. @raise Invalid_argument if the config fails
    {!Config.validate}. *)

val recover : ?env:Wip_storage.Env.t -> Config.t -> t
(** Reopen the store persisted in [env]: replay the manifest to rebuild the
    bucket directory and the WAL to repopulate MemTables. Equivalent to
    [create] when no prior state exists. *)

val checkpoint : t -> unit
(** Flush durability barriers (WAL + manifest sync). *)

(** {1 The KV interface} *)

include Wip_kv.Store_intf.S with type t := t

(** {1 Pinned snapshots}

    [snapshot]/[get_at]/[scan_at] come from {!Wip_kv.Store_intf.S}: the
    handle pins its seq until {!Wip_kv.Store_intf.release}. While any
    snapshot is live, version GC floors at the oldest live snapshot's seq
    and tables retired by compaction/split stay readable (refcounted by the
    pinning snapshots), so a pinned lazy {!iter_range} stream keeps draining
    correctly across concurrent writes on every Env, POSIX included. *)

val live_snapshot_count : t -> int

val oldest_snapshot_seq : t -> int64
(** The version-GC floor: min over live snapshots, [Int64.max_int] when
    none are live (GC then keeps only the newest version per key). *)

val zombie_table_files : t -> string list
(** Files retired from the bucket directory but still pinned by live
    snapshots, unordered. Empty when no snapshot is live. *)

val zombie_bytes : t -> int
(** Total on-device size of {!zombie_table_files} — the space a long-lived
    snapshot is currently holding back from reclamation. *)

(** {1 Snapshot-isolation transactions}

    [txn_begin] pins a snapshot; [txn_get] reads the transaction's own
    writes first, then the snapshot (recording the key in the read set);
    [txn_commit] validates both sets — any key with a committed version
    newer than the snapshot aborts with
    {!Wip_kv.Store_intf.write_error.Txn_conflict} — then applies the
    buffered writes as one admission-controlled atomic batch. Commit and
    abort both release the pinned snapshot; any further use of the handle
    raises [Invalid_argument]. *)

type txn

val txn_begin : t -> txn

val txn_get : txn -> string -> string option

val txn_put : txn -> key:string -> value:string -> unit

val txn_delete : txn -> key:string -> unit

val txn_commit : txn -> (unit, Wip_kv.Store_intf.write_error) result

val txn_abort : txn -> unit

val txn_snapshot : txn -> Wip_kv.Store_intf.snapshot
(** The transaction's pinned snapshot (e.g. for consistent side reads);
    owned by the transaction — do not release it directly. *)

(** {1 Introspection (benchmarks, tests)} *)

type bucket_info = {
  lo : string;  (** inclusive lower key bound; [""] for the first bucket *)
  memtable_items : int;
  memtable_structure : Wip_memtable.Memtable.structure;
  sublevels_per_level : int list;  (** length [l_max] *)
  bytes : int;  (** on-device bytes of all the bucket's tables *)
}

val bucket_infos : t -> bucket_info list

val bucket_boundaries : t -> string list
(** Current bucket lower bounds in key order (first is [""]) — the hook a
    sharded front uses to align shard ranges with bucket boundaries; see
    {!Config.shard_boundaries} for the initial placement rule. *)

val bucket_count : t -> int

val split_count : t -> int

val compaction_count : t -> int

val wal_bytes : t -> int

val sequence : t -> int64

val memtable_probes : t -> int
(** Cumulative MemTable probe count across all buckets (Figure 3 proxy). *)

val config : t -> Config.t

val write_pressure : t -> int
(** MemTable bytes plus estimated compaction debt — the quantity the
    admission watermarks gate on. *)

val quarantined_tables : t -> (string * string) list
(** [(file, corruption detail)] of tables renamed aside after failing
    validation, newest first. *)

val live_table_files : t -> string list
(** Names of every table file the bucket directory references — after
    recovery, exactly the table files present on the Env (orphans are
    garbage-collected). *)

(** {1 Streaming iteration}

    [iter_range] is the lazy counterpart of {!scan}: entries materialize one
    data block at a time as the sequence is consumed, so arbitrarily large
    ranges stream in bounded memory. The sequence is a consistent view at
    the chosen (or current) snapshot. Pass a pinned [snapshot] when the
    stream will be interleaved with writes: without one, a compaction
    triggered mid-drain may retire a table the stream still needs. *)

val iter_range :
  t -> ?snapshot:Wip_kv.Store_intf.snapshot -> lo:string -> hi:string ->
  unit -> (string * string) Seq.t
