module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Coding = Wip_util.Coding
module Crc32c = Wip_util.Crc32c
module Ikey = Wip_util.Ikey

type record = {
  seq : int64;
  kind : Ikey.kind;
  key : string;
  value : string;
}

type segment = {
  seg_no : int;
  seg_name : string;
  mutable seg_bytes : int;
  mutable seg_max_seq : int64;
}

type t = {
  env : Env.t;
  prefix : string;
  segment_bytes : int;
  mutable segments : segment list; (* oldest first, excludes current *)
  mutable current : segment;
  mutable writer : Env.writer;
  mutable max_seq : int64;
  mutable durable_seq : int64; (* max_seq as of the last sync *)
  mutable next_seg_no : int;
}

let segment_name prefix n = Printf.sprintf "%s-%06d.log" prefix n

let fresh_segment t =
  let seg_no = t.next_seg_no in
  t.next_seg_no <- seg_no + 1;
  let seg_name = segment_name t.prefix seg_no in
  let seg = { seg_no; seg_name; seg_bytes = 0; seg_max_seq = 0L } in
  let writer = Env.create_file t.env seg_name in
  (seg, writer)

let create env ?(prefix = "wal") ?(segment_bytes = 4 * 1024 * 1024) () =
  let t =
    {
      env;
      prefix;
      segment_bytes;
      segments = [];
      current =
        { seg_no = 0; seg_name = segment_name prefix 0; seg_bytes = 0; seg_max_seq = 0L };
      writer = Env.create_file env (segment_name prefix 0);
      max_seq = 0L;
      durable_seq = 0L;
      next_seg_no = 1;
    }
  in
  t

(* Record layout:
   fixed32 masked-crc(payload) | fixed32 payload-length | payload
   payload: fixed64 first_seq | varint count
            (kind byte | length-prefixed key | length-prefixed value)* *)

let encode_batch ~first_seq items =
  let payload = Buffer.create 256 in
  Coding.put_fixed64 payload first_seq;
  Coding.put_varint payload (List.length items);
  List.iter
    (fun (kind, key, value) ->
      Buffer.add_char payload
        (match kind with Ikey.Value -> '\001' | Ikey.Deletion -> '\000');
      Coding.put_length_prefixed payload key;
      Coding.put_length_prefixed payload value)
    items;
  let payload = Buffer.contents payload in
  let out = Buffer.create (String.length payload + 8) in
  Coding.put_fixed32 out (Crc32c.masked (Crc32c.string payload));
  Coding.put_fixed32 out (String.length payload);
  Buffer.add_string out payload;
  Buffer.contents out

let decode_records contents ~emit =
  let n = String.length contents in
  let rec loop off =
    if off + 8 > n then ()
    else begin
      let stored_crc = Coding.get_fixed32 contents off in
      let len = Coding.get_fixed32 contents (off + 4) in
      if off + 8 + len > n then () (* torn tail *)
      else begin
        let payload = String.sub contents (off + 8) len in
        if Crc32c.masked (Crc32c.string payload) <> stored_crc then ()
          (* corrupt: stop replay here, discarding the suffix *)
        else begin
          let first_seq = Coding.get_fixed64 payload 0 in
          let count, p = Coding.get_varint payload 8 in
          let rec items i p =
            if i = count then ()
            else begin
              let kind =
                match payload.[p] with
                | '\001' -> Ikey.Value
                | '\000' -> Ikey.Deletion
                | c ->
                  invalid_arg
                    (Printf.sprintf "Wal: bad kind byte %d" (Char.code c))
              in
              let key, p = Coding.get_length_prefixed payload (p + 1) in
              let value, p = Coding.get_length_prefixed payload p in
              emit
                {
                  seq = Int64.add first_seq (Int64.of_int i);
                  kind;
                  key;
                  value;
                };
              items (i + 1) p
            end
          in
          items 0 p;
          loop (off + 8 + len)
        end
      end
    end
  in
  loop 0

let recover env ?(prefix = "wal") ?(segment_bytes = 4 * 1024 * 1024) ~replay () =
  let seg_files =
    Env.list_files env
    |> List.filter (fun name ->
           String.length name > String.length prefix + 1
           && String.sub name 0 (String.length prefix + 1) = prefix ^ "-"
           && Filename.check_suffix name ".log")
    |> List.sort String.compare
  in
  let max_seq = ref 0L in
  let segments =
    List.map
      (fun seg_name ->
        let reader = Env.open_file env seg_name in
        let contents = Env.read_all reader ~category:Io_stats.Wal in
        Env.close_reader reader;
        let seg_max = ref 0L in
        decode_records contents ~emit:(fun r ->
            if Int64.compare r.seq !seg_max > 0 then seg_max := r.seq;
            if Int64.compare r.seq !max_seq > 0 then max_seq := r.seq;
            replay r);
        let seg_no =
          (* "<prefix>-NNNNNN.log" *)
          let base = Filename.chop_suffix seg_name ".log" in
          int_of_string
            (String.sub base
               (String.length prefix + 1)
               (String.length base - String.length prefix - 1))
        in
        {
          seg_no;
          seg_name;
          seg_bytes = String.length contents;
          seg_max_seq = !seg_max;
        })
      seg_files
  in
  let next_seg_no =
    1 + List.fold_left (fun acc s -> max acc s.seg_no) (-1) segments
  in
  let t =
    {
      env;
      prefix;
      segment_bytes;
      segments;
      current =
        {
          seg_no = next_seg_no;
          seg_name = segment_name prefix next_seg_no;
          seg_bytes = 0;
          seg_max_seq = 0L;
        };
      writer = Env.create_file env (segment_name prefix next_seg_no);
      max_seq = !max_seq;
      durable_seq = !max_seq;
      next_seg_no = next_seg_no + 1;
    }
  in
  t

let roll_if_needed t =
  if t.current.seg_bytes >= t.segment_bytes then begin
    Env.sync t.writer;
    (* The roll happens right after an append, so every logged record is in
       the segment just synced: the whole log is durable at this point. *)
    t.durable_seq <- t.max_seq;
    Env.close_writer t.writer;
    t.segments <- t.segments @ [ t.current ];
    let seg, writer = fresh_segment t in
    t.current <- seg;
    t.writer <- writer
  end

(* Several logical batches, one physical append: each non-empty batch keeps
   its own record (and so its own CRC boundary — replay after a torn tail
   never splits a batch), but the device sees a single write. Sequence
   numbers run consecutively across the batches, in order. *)
let append_batches t ~first_seq batches =
  let total_items =
    List.fold_left (fun acc items -> acc + List.length items) 0 batches
  in
  if total_items > 0 then begin
    let out = Buffer.create 512 in
    let seq = ref first_seq in
    List.iter
      (fun items ->
        if items <> [] then begin
          Buffer.add_string out (encode_batch ~first_seq:!seq items);
          seq := Int64.add !seq (Int64.of_int (List.length items))
        end)
      batches;
    let bytes = Buffer.contents out in
    Env.append t.writer ~category:Io_stats.Wal bytes;
    let last_seq = Int64.add first_seq (Int64.of_int (total_items - 1)) in
    t.current.seg_bytes <- t.current.seg_bytes + String.length bytes;
    if Int64.compare last_seq t.current.seg_max_seq > 0 then
      t.current.seg_max_seq <- last_seq;
    if Int64.compare last_seq t.max_seq > 0 then t.max_seq <- last_seq;
    roll_if_needed t
  end

let append_batch t ~first_seq items = append_batches t ~first_seq [ items ]

let sync t =
  Env.sync t.writer;
  t.durable_seq <- t.max_seq

let durable_seq t = t.durable_seq

let reclaim t ~persisted_below =
  let freed = ref 0 in
  let keep, drop =
    List.partition
      (fun seg -> Int64.compare seg.seg_max_seq persisted_below >= 0)
      t.segments
  in
  List.iter
    (fun seg ->
      freed := !freed + seg.seg_bytes;
      Env.delete t.env seg.seg_name)
    drop;
  t.segments <- keep;
  !freed

let total_bytes t =
  t.current.seg_bytes
  + List.fold_left (fun acc seg -> acc + seg.seg_bytes) 0 t.segments

let segment_count t = 1 + List.length t.segments

let max_seq_logged t = t.max_seq
