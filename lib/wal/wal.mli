(** Segmented write-ahead log shared by all MemTables.

    Every update batch is appended to the log before it is acknowledged
    (paper §III-C/F). Because WipDB spreads incoming items over many
    MemTables, log space is reclaimed by the paper's Figure 5 scheme: each
    MemTable tracks the smallest sequence number it holds that is not yet
    persisted; the global minimum of those bounds a log prefix that is all
    garbage. The log is physically a chain of segment files; a segment is
    deleted once every record in it falls below the reclamation bound.

    Records carry a masked CRC-32C and a length header; recovery replays
    segments in order and stops cleanly at a torn tail write. *)

type t

type record = {
  seq : int64;
  kind : Wip_util.Ikey.kind;
  key : string;
  value : string;
}

val create :
  Wip_storage.Env.t -> ?prefix:string -> ?segment_bytes:int -> unit -> t
(** Starts an empty log. [prefix] defaults to ["wal"]; [segment_bytes]
    (default 4 MiB) bounds each segment file. *)

val recover :
  Wip_storage.Env.t ->
  ?prefix:string ->
  ?segment_bytes:int ->
  replay:(record -> unit) ->
  unit ->
  t
(** Opens the log left by a previous incarnation, replays every intact
    record in write order through [replay], and returns a log positioned to
    append after the replayed data. A torn final record is discarded. *)

val append_batch :
  t -> first_seq:int64 -> (Wip_util.Ikey.kind * string * string) list -> unit
(** Atomically logs a batch whose items take sequence numbers [first_seq],
    [first_seq+1], ... in order. *)

val append_batches :
  t ->
  first_seq:int64 ->
  (Wip_util.Ikey.kind * string * string) list list ->
  unit
(** [append_batches t ~first_seq batches] logs several logical batches with
    one physical append — the group-commit primitive. Each non-empty batch
    becomes its own CRC-framed record (replay never tears inside a batch),
    and sequence numbers run consecutively across the batches in list
    order. Equivalent to appending each batch in turn, but the device sees
    a single write. *)

val sync : t -> unit
(** Durability barrier on the current segment; advances {!durable_seq}. *)

val durable_seq : t -> int64
(** Largest sequence number known durable: [max_seq_logged] as of the last
    {!sync} (or segment roll, which syncs). After {!recover}, everything
    replayed is durable, so this starts at [max_seq_logged]. Appended but
    not yet synced records sit in [durable_seq < seq <= max_seq_logged] —
    exactly the window a crash may discard. *)

val reclaim : t -> persisted_below:int64 -> int
(** [reclaim t ~persisted_below:s] deletes every segment all of whose
    records have sequence numbers [< s]; returns bytes freed. This is the
    Figure 5 tail advance: [s] should be the minimum over live MemTables of
    their smallest unpersisted sequence number (or the next unassigned
    sequence number if everything is persisted). *)

val total_bytes : t -> int
(** Live log footprint. *)

val segment_count : t -> int

val max_seq_logged : t -> int64
(** Largest sequence number ever appended (0 when empty). *)
