(** The key-value store interface every engine in this repository implements
    (WipDB and the LevelDB-, RocksDB- and PebblesDB-like baselines), so the
    benchmark harness and the examples can drive them interchangeably. *)

type health =
  | Healthy
  | Degraded of { reason : string }
      (** Read-only: a durable write failed after exhausting its retry
          budget. Reads and scans keep working; mutations are rejected with
          {!Store_degraded} until a recovery probe succeeds. *)

(** Why a write was not accepted. *)
type write_error =
  | Backpressure of { shard : int; debt_bytes : int }
      (** Admission control held the write past its stall deadline:
          memtable bytes plus compaction debt on [shard] stood at
          [debt_bytes], above the stop watermark. Transient — retry after
          letting maintenance catch up. *)
  | Store_degraded of { reason : string }
      (** The store is in read-only {!Degraded} state. *)
  | Txn_conflict of { key : string }
      (** Snapshot-isolation commit validation failed: [key] — a member of
          the transaction's read or write set — was overwritten by a commit
          newer than the transaction's snapshot. The transaction is aborted;
          retry from a fresh [txn_begin]. *)

exception Rejected of write_error
(** Raised by the [unit]-returning mutation entry points ([put], [delete],
    [write_batch]) when the write is refused; [try_write_batch] returns the
    same information as a [result]. *)

let write_error_to_string = function
  | Backpressure { shard; debt_bytes } ->
    Printf.sprintf "backpressure: shard %d holds %d debt bytes" shard
      debt_bytes
  | Store_degraded { reason } -> Printf.sprintf "store degraded: %s" reason
  | Txn_conflict { key } ->
    Printf.sprintf "transaction conflict on key %S" key

(** A pinned snapshot: reads at [snap_seq] see exactly the versions that were
    visible when the snapshot was taken, for as long as the handle is live.
    While any snapshot is live the owning engine (a) keeps tables retired by
    compaction/split readable until the last pinning snapshot releases, and
    (b) floors version GC at the oldest live snapshot's seq, so no version
    visible to a live snapshot is dropped.

    The record is shared by every engine (and pinned per shard by the
    concurrent front end) so heterogeneous engines behind {!store} expose one
    snapshot currency. [release] is idempotent. *)
type snapshot = {
  snap_seq : int64;  (** the pinned sequence number *)
  snap_id : int;  (** unique within the owning engine instance *)
  snap_release : unit -> unit;
}

let snapshot_seq s = s.snap_seq

let release s = s.snap_release ()

module type S = sig
  type t

  val put : t -> key:string -> value:string -> unit

  val write_batch : t -> (Wip_util.Ikey.kind * string * string) list -> unit
  (** Atomically logged batch (the paper batches 1000 writes per log append).
      @raise Rejected when admission control or degraded state refuses it. *)

  val try_write_batch :
    t -> (Wip_util.Ikey.kind * string * string) list ->
    (unit, write_error) result
  (** [write_batch] with the refusal as data instead of an exception. *)

  val try_write_batches :
    t -> (Wip_util.Ikey.kind * string * string) list list ->
    (unit, write_error) result
  (** Several logical batches as one commit unit: a single WAL append
      carrying one record per batch, then every batch applied, all under
      one admission decision. The group-commit engine primitive — a
      leader calls this with the batches of every queued follower, then
      {!log_sync} once for the lot. All-or-nothing at this level: either
      every batch is logged and applied or none is. *)

  val log_sync : t -> unit
  (** Durability barrier on the write-ahead log only (no flush): after it
      returns, every previously applied batch survives a crash.
      @raise Rejected with [Store_degraded] if the sync itself fails
      durably — callers must not ack writes when this raises. *)

  val health : t -> health

  val probe : t -> health
  (** Attempt recovery when {!Degraded}: perform one durable write
      round-trip; on success the store returns to {!Healthy}. The returned
      value is the health after the probe. No-op when already healthy. *)

  val delete : t -> key:string -> unit

  val get : t -> string -> string option

  val scan : t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * string) list
  (** Live entries with [lo <= key < hi], ascending, at most [limit].
      A negative [limit] is clamped to 0 (empty result), never an error. *)

  val snapshot : t -> snapshot
  (** Pin the current sequence number. Until {!release}, reads through the
      handle are repeatable: version GC floors at the oldest live snapshot
      and retired tables stay readable. Snapshots do not survive a restart. *)

  val get_at : t -> string -> snapshot:snapshot -> string option
  (** [get] at a pinned snapshot: the newest version with seq <= the
      snapshot's seq, [None] if that version is a tombstone or absent. *)

  val scan_at :
    t -> lo:string -> hi:string -> ?limit:int -> snapshot:snapshot -> unit ->
    (string * string) list
  (** [scan] at a pinned snapshot. *)

  val flush : t -> unit
  (** Persist all memtable contents to level-0 tables. *)

  val maintenance : t -> ?budget_bytes:int -> unit -> unit
  (** Run pending background work (compactions). [budget_bytes] bounds the
      amount of compaction I/O performed; omit it to run to quiescence. *)

  val maintenance_pending : t -> int
  (** Estimated bytes of background work {!maintenance} would perform right
      now; 0 when quiescent. Advisory: the compaction pool reads it without
      the owning shard's lock to prioritize shards, so implementations must
      tolerate concurrent mutation (stale or approximate answers are fine,
      crashes are not) and must not write any state. *)

  val env : t -> Wip_storage.Env.t

  val io_stats : t -> Wip_storage.Io_stats.t

  val file_sizes : t -> int list
  (** Sizes of all live data files (Figure 11). *)

  val name : t -> string
end

(* Existential wrapper so heterogeneous engines fit in one list. *)
type store = Store : (module S with type t = 'a) * 'a -> store

let put (Store ((module M), t)) ~key ~value = M.put t ~key ~value
let write_batch (Store ((module M), t)) items = M.write_batch t items

let try_write_batch (Store ((module M), t)) items = M.try_write_batch t items

let try_write_batches (Store ((module M), t)) batches =
  M.try_write_batches t batches

let log_sync (Store ((module M), t)) = M.log_sync t

let health (Store ((module M), t)) = M.health t
let probe (Store ((module M), t)) = M.probe t
let delete (Store ((module M), t)) ~key = M.delete t ~key
let get (Store ((module M), t)) key = M.get t key

let scan (Store ((module M), t)) ~lo ~hi ?limit () =
  M.scan t ~lo ~hi ?limit ()

let snapshot (Store ((module M), t)) = M.snapshot t

let get_at (Store ((module M), t)) key ~snapshot = M.get_at t key ~snapshot

let scan_at (Store ((module M), t)) ~lo ~hi ?limit ~snapshot () =
  M.scan_at t ~lo ~hi ?limit ~snapshot ()

let flush (Store ((module M), t)) = M.flush t

let maintenance (Store ((module M), t)) ?budget_bytes () =
  M.maintenance t ?budget_bytes ()

let maintenance_pending (Store ((module M), t)) = M.maintenance_pending t

let env (Store ((module M), t)) = M.env t
let io_stats (Store ((module M), t)) = M.io_stats t
let file_sizes (Store ((module M), t)) = M.file_sizes t
let store_name (Store ((module M), t)) = M.name t
