(** The key-value store interface every engine in this repository implements
    (WipDB and the LevelDB-, RocksDB- and PebblesDB-like baselines), so the
    benchmark harness and the examples can drive them interchangeably. *)

module type S = sig
  type t

  val put : t -> key:string -> value:string -> unit

  val write_batch : t -> (Wip_util.Ikey.kind * string * string) list -> unit
  (** Atomically logged batch (the paper batches 1000 writes per log append). *)

  val delete : t -> key:string -> unit

  val get : t -> string -> string option

  val scan : t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * string) list
  (** Live entries with [lo <= key < hi], ascending, at most [limit]. *)

  val flush : t -> unit
  (** Persist all memtable contents to level-0 tables. *)

  val maintenance : t -> ?budget_bytes:int -> unit -> unit
  (** Run pending background work (compactions). [budget_bytes] bounds the
      amount of compaction I/O performed; omit it to run to quiescence. *)

  val maintenance_pending : t -> int
  (** Estimated bytes of background work {!maintenance} would perform right
      now; 0 when quiescent. Advisory: the compaction pool reads it without
      the owning shard's lock to prioritize shards, so implementations must
      tolerate concurrent mutation (stale or approximate answers are fine,
      crashes are not) and must not write any state. *)

  val env : t -> Wip_storage.Env.t

  val io_stats : t -> Wip_storage.Io_stats.t

  val file_sizes : t -> int list
  (** Sizes of all live data files (Figure 11). *)

  val name : t -> string
end

(* Existential wrapper so heterogeneous engines fit in one list. *)
type store = Store : (module S with type t = 'a) * 'a -> store

let put (Store ((module M), t)) ~key ~value = M.put t ~key ~value
let write_batch (Store ((module M), t)) items = M.write_batch t items
let delete (Store ((module M), t)) ~key = M.delete t ~key
let get (Store ((module M), t)) key = M.get t key

let scan (Store ((module M), t)) ~lo ~hi ?limit () =
  M.scan t ~lo ~hi ?limit ()

let flush (Store ((module M), t)) = M.flush t

let maintenance (Store ((module M), t)) ?budget_bytes () =
  M.maintenance t ?budget_bytes ()

let maintenance_pending (Store ((module M), t)) = M.maintenance_pending t

let env (Store ((module M), t)) = M.env t
let io_stats (Store ((module M), t)) = M.io_stats t
let file_sizes (Store ((module M), t)) = M.file_sizes t
let store_name (Store ((module M), t)) = M.name t
