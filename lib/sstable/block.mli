(** Prefix-compressed key/value blocks.

    Entries are appended in ascending key order; every
    {!Table_format.restart_interval} entries a restart point stores the full
    key so that readers can binary-search restarts and then scan forward.
    Keys here are opaque byte strings (the table layer passes encoded
    internal keys).

    Hot paths read blocks through {!Cursor}, which reconstructs prefix-shared
    keys in place into one reusable buffer and compares keys without
    materializing them; {!decode_all} and {!seek} remain for tests and
    tools. *)

module Builder : sig
  type t

  val create : unit -> t

  val add : t -> key:string -> value:string -> unit

  val size_estimate : t -> int
  (** Bytes the finished (unsealed) block would occupy so far. *)

  val entry_count : t -> int

  val finish : t -> string
  (** Raw block bytes (no CRC trailer); the builder must not be reused. *)
end

module Cursor : sig
  type t
  (** A mutable cursor over one raw (already CRC-verified) block. Creating
      one allocates only the cursor record and a small key buffer; stepping
      and seeking allocate nothing, and {!key}/{!value} materialize strings
      only when called. *)

  val create : string -> t
  (** Positioned before the first entry; call {!next} or {!seek}. *)

  val valid : t -> bool

  val next : t -> bool
  (** Advance to the next entry; [false] (and invalid) at the end. *)

  val rewind : t -> unit
  (** Back to before the first entry. *)

  val seek : t -> string -> bool
  (** [seek t target] positions at the first entry with key [>= target]
      (bytewise), using restart-point binary search directly over the raw
      bytes followed by a forward scan; [false] if no such entry. *)

  val seek_ordinal : t -> int -> bool
  (** [seek_ordinal t n] positions at the [n]-th entry of the block
      (0-based) with zero key comparisons: one restart jump plus at most
      [restart_interval - 1] steps. [false] if the block has fewer than
      [n + 1] restart spans. Used by the perfect-hash point-index path. *)

  val key : t -> string
  (** The current key (fresh string). *)

  val key_bytes : t -> Bytes.t
  (** The shared key buffer — only the first {!key_length} bytes are
      meaningful, and only until the cursor moves. Do not mutate. *)

  val key_length : t -> int

  val compare_key : t -> string -> int
  (** Bytewise comparison of the current key against a target, without
      materializing the key. *)

  val value : t -> string
  (** The current value (fresh string). *)

  val value_length : t -> int
end

val decode_all : string -> (string * string) list
(** All entries of a raw block in order. Counts into {!decode_count};
    test/tool use only — hot paths must use {!Cursor}. *)

val decode_count : int Atomic.t
(** Number of {!decode_all} calls since start; regression tests assert the
    read hot path leaves it untouched. *)

val seek_probe_count : int Atomic.t
(** Key comparisons spent by {!Cursor.seek} (restart probes + forward
    steps). {!Cursor.seek_ordinal} never bumps it; the readpath bench
    reports the per-get difference between the binary-search and
    perfect-hash point paths. *)

val seek : string -> compare:(string -> int) -> (string * string) option
(** [seek raw ~compare] returns the first entry whose key [k] satisfies
    [compare k >= 0] — i.e. [compare] is [fun k -> some_order k target]
    negated... concretely: pass [compare = fun k -> cmp k] where [cmp k < 0]
    while [k] precedes the target. Uses restart-point binary search then a
    linear scan. *)
