(* CHD-style perfect-hash point index (CompassDB's trick, PAPERS.md).

   Maps every distinct escaped-user key of a table to the exact
   (data block, entry ordinal) of its newest version, so a point get jumps
   straight to the entry with Cursor.seek_ordinal instead of binary-searching
   restart points. The structure is immutable and built once at table-write
   time from keys already in hand.

   Construction (compress-hash-displace with a single 16-bit displacement per
   bucket): keys are thrown into b ≈ n/4 buckets by one hash; buckets are
   placed greedily, largest first, each searching for a displacement d such
   that slot(key, d) = (h1 + d·h2) mod m is free and distinct for all its
   keys, with m ≈ 1.23·n slots. Each slot stores a 1-byte fingerprint (never
   0 — 0 marks an empty slot) plus fixed16 block and entry numbers, 5 bytes
   per slot ≈ 6.2 bytes per key. Construction is randomized only through the
   key set; for pathological sets it can fail, in which case [build] returns
   [None] and the table simply ships without an index (readers fall back to
   restart binary search). The same [None] applies to overweight tables:
   block or entry ordinals beyond 16 bits, or key counts beyond [capacity].

   A fingerprint match for an absent key (p ≈ 1/255) sends the reader to an
   unrelated entry; the table layer verifies the user key before trusting the
   slot and counts the rejection as a ph false hit. *)

module Coding = Wip_util.Coding
module Hashing = Wip_util.Hashing

let seed_bucket = 0x5748_4950_4442_3031L (* "WHIPDB01" *)
let seed_slot = 0x5748_4950_4442_3032L

let max_ordinal = 0xFFFF
let capacity = 1 lsl 22
let max_displacement = 0xFFFF
let slot_bytes = 5

(* Non-negative int from a 64-bit hash. *)
let pos64 h = Int64.to_int (Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL)

let fingerprint ha =
  let f = Int64.to_int (Int64.shift_right_logical ha 56) land 0xFF in
  if f = 0 then 1 else f

(* Slot families: the 16-bit displacement d encodes a CHD pair
   (d0, d1) = (d / 256, d mod 256); slot d = (h1 + d0·h2 + d1) mod m with
   h2 in [1, m-1], both derived from one hash of the key. The additive d1
   term steps through consecutive residues, so the family reaches every
   slot even when gcd(h2, m) > 1 — a plain (h1 + d·h2) walk can orbit a
   tiny subgroup and strand the last buckets of a large table. m >= 2
   always (we force it below). *)
let slot_params hb ~m =
  let h1 = pos64 hb mod m in
  let h2 = 1 + (pos64 (Int64.shift_right_logical hb 31) mod (m - 1)) in
  (h1, h2)

let slot_of ~h1 ~h2 ~m d = (h1 + ((d / 256) * h2) + (d mod 256)) mod m

type reader = {
  n : int;
  m : int;
  b : int;
  disp_off : int; (* byte offset of the displacement array *)
  slots_off : int; (* byte offset of the slot array *)
  data : string;
}

let key_count r = r.n

let byte_size r = String.length r.data

(* --- encoding ------------------------------------------------------- *)

let put_fixed16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let get_fixed16 s off =
  Char.code (String.unsafe_get s off)
  lor (Char.code (String.unsafe_get s (off + 1)) lsl 8)

(* [keys] are the escaped-user key slices (newest version first occurrence),
   [locators.(i)] = (block lsl 16) lor entry for keys.(i). *)
let build ~keys ~locators =
  let n = Array.length keys in
  if n = 0 || n > capacity || Array.length locators <> n then None
  else begin
    let m = max 2 (n * 123 / 100) in
    let b = max 1 ((n + 3) / 4) in
    (* Bucketize. *)
    let buckets = Array.make b [] in
    let ok = ref true in
    Array.iteri
      (fun i k ->
        if locators.(i) lsr 16 > max_ordinal || locators.(i) land 0xFFFF > max_ordinal
        then ok := false
        else begin
          let ha = Hashing.hash64 ~seed:seed_bucket k in
          buckets.(pos64 ha mod b) <- i :: buckets.(pos64 ha mod b)
        end)
      keys;
    if not !ok then None
    else begin
      let order = Array.init b (fun i -> i) in
      Array.sort
        (fun x y ->
          Int.compare (List.length buckets.(y)) (List.length buckets.(x)))
        order;
      let slots = Array.make m (-1) in
      let disp = Array.make b 0 in
      let place bucket_keys d =
        (* All keys of the bucket must land on distinct free slots at
           displacement d; returns the slots or None. *)
        let rec go acc = function
          | [] -> Some acc
          | i :: rest ->
            let hb = Hashing.hash64 ~seed:seed_slot keys.(i) in
            let h1, h2 = slot_params hb ~m in
            let s = slot_of ~h1 ~h2 ~m d in
            if slots.(s) >= 0 || List.exists (fun (s', _) -> s' = s) acc then
              None
            else go ((s, i) :: acc) rest
        in
        go [] bucket_keys
      in
      let rec search bi =
        if bi >= b then true
        else
          let bucket = buckets.(order.(bi)) in
          if bucket = [] then search (bi + 1)
          else begin
            let rec try_d d =
              if d > max_displacement then false
              else
                match place bucket d with
                | Some placed ->
                  List.iter (fun (s, i) -> slots.(s) <- i) placed;
                  disp.(order.(bi)) <- d;
                  true
                | None -> try_d (d + 1)
            in
            try_d 0 && search (bi + 1)
          end
      in
      if not (search 0) then None
      else begin
        let buf = Buffer.create (16 + (2 * b) + (slot_bytes * m)) in
        Coding.put_varint buf n;
        Coding.put_varint buf m;
        Coding.put_varint buf b;
        Array.iter (fun d -> put_fixed16 buf d) disp;
        Array.iter
          (fun i ->
            if i < 0 then begin
              Buffer.add_char buf '\000';
              put_fixed16 buf 0;
              put_fixed16 buf 0
            end
            else begin
              let ha = Hashing.hash64 ~seed:seed_bucket keys.(i) in
              Buffer.add_char buf (Char.chr (fingerprint ha));
              put_fixed16 buf (locators.(i) lsr 16);
              put_fixed16 buf (locators.(i) land 0xFFFF)
            end)
          slots;
        Some (Buffer.contents buf)
      end
    end
  end

(* --- decoding / lookup ---------------------------------------------- *)

let read data =
  let n, off = Coding.get_varint data 0 in
  let m, off = Coding.get_varint data off in
  let b, off = Coding.get_varint data off in
  if n < 0 || m < 2 || b < 1 then invalid_arg "Ph_index.read: bad header";
  let disp_off = off in
  let slots_off = disp_off + (2 * b) in
  if slots_off + (slot_bytes * m) > String.length data then
    invalid_arg "Ph_index.read: truncated";
  { n; m; b; disp_off; slots_off; data }

(* Look up the escaped-user slice [key.[pos .. pos+len)]. Returns
   [Some (block, entry)] on a fingerprint match — the caller must still
   verify the user key at that position — and [None] for a definite miss. *)
let find r key ~pos ~len =
  if r.n = 0 then None
  else begin
    let ha = Hashing.hash64_sub ~seed:seed_bucket key ~pos ~len in
    let bucket = pos64 ha mod r.b in
    let d = get_fixed16 r.data (r.disp_off + (2 * bucket)) in
    let hb = Hashing.hash64_sub ~seed:seed_slot key ~pos ~len in
    let h1, h2 = slot_params hb ~m:r.m in
    let s = slot_of ~h1 ~h2 ~m:r.m d in
    let off = r.slots_off + (slot_bytes * s) in
    let fp = Char.code (String.unsafe_get r.data off) in
    if fp = 0 || fp <> fingerprint ha then None
    else Some (get_fixed16 r.data (off + 1), get_fixed16 r.data (off + 3))
  end
