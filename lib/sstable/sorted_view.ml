(* REMIX-style cross-run sorted view (PAPERS.md).

   A bucket's run set is tiered and overlapping, so every scan normally pays
   a k-way pairing-heap merge: O(log k) comparisons per emitted entry plus a
   heap node allocation per step. The view freezes the outcome of that merge
   once and replays it for free: it stores, for the concatenation of all
   runs in sorted order, one byte per entry naming the source run (the
   selector array) and one full encoded key every [seg_size] entries (the
   anchor array). A walk then binary-searches the anchors, opens one cursor
   stream per run positioned at the segment anchor, and pops streams in
   selector order — zero comparisons per entry after the bounded skip into
   the first segment.

   Anchor positioning is sound because encoded internal keys are unique
   within a store (the sequence trailer differs even for rewrites of one
   user key): every entry ordered before a segment's first entry is strictly
   below its anchor, so seeking each run to the anchor skips exactly the
   entries the selector prefix already consumed.

   The view holds no cursors and no table handles — only anchors, selectors
   and a run count. Callers own the mapping from run index to a stream
   (engines close over [Table.Reader.stream] on the run set the view was
   built against) and must invalidate the view whenever that run set
   changes; [walk] raises [Stale_view] if a run ends before the selectors
   say it should, which only happens on a missed invalidation.

   Cost: 1 byte/entry + ~key_size/seg_size bytes/entry. A build is one heap
   merge of the runs (the same work a single full scan pays today); add_run
   is a 2-way merge of the existing view's replay against the new run. *)

exception Stale_view

type t = {
  anchors : string array; (* anchors.(s) = encoded key of entry s*seg_size *)
  selectors : Bytes.t; (* selectors.(i) = run index of entry i *)
  count : int;
  run_count : int;
}

let seg_size = 256

let max_runs = 255

let entry_count t = t.count

let run_count t = t.run_count

let byte_size t =
  Bytes.length t.selectors
  + Array.fold_left (fun a k -> a + String.length k + 8) 0 t.anchors

(* Build from a merged (key, run_index) sequence. *)
let of_tagged ~run_count tagged =
  let selectors = Buffer.create 4096 in
  let anchors = ref [] in
  let count = ref 0 in
  Seq.iter
    (fun (key, run) ->
      if !count mod seg_size = 0 then anchors := key :: !anchors;
      Buffer.add_char selectors (Char.chr run);
      incr count)
    tagged;
  {
    anchors = Array.of_list (List.rev !anchors);
    selectors = Buffer.to_bytes selectors;
    count = !count;
    run_count;
  }

let tag run seq = Seq.map (fun (k, _v) -> (k, run)) seq

let build runs =
  let k = Array.length runs in
  if k > max_runs then invalid_arg "Sorted_view.build: too many runs";
  of_tagged ~run_count:k
    (Merge_iter.merge_by ~compare:String.compare
       (List.init k (fun r -> tag r runs.(r))))

(* Replay the view as a (key, run) sequence by popping the runs' own
   streams in selector order — the primitive under both [walk] and
   [add_run]. [start] is an entry index whose key is >= the position every
   stream in [streams] is seeked to. *)
let replay t ~streams ~start =
  let pop r =
    match !(streams.(r)) () with
    | Seq.Nil -> raise Stale_view
    | Seq.Cons (kv, tail) ->
      streams.(r) := tail;
      kv
  in
  let rec go i () =
    if i >= t.count then Seq.Nil
    else
      let r = Bytes.get_uint8 t.selectors i in
      Seq.Cons ((pop r, r), go (i + 1))
  in
  go start

(* Greatest segment whose anchor is <= target (0 if none). *)
let seek_segment t target =
  let n = Array.length t.anchors in
  if n = 0 || String.compare t.anchors.(0) target >= 0 then 0
  else begin
    let rec bs lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if String.compare t.anchors.(mid) target <= 0 then bs mid hi
        else bs lo mid
    in
    bs 0 n
  end

let walk t ~from ~open_run =
  if t.count = 0 then Seq.empty
  else
    (* Delay stream creation until the walk is actually consumed, matching
       the laziness of the heap-merge path it replaces. The replay here is
       fused rather than layered over [replay]: the per-entry cost is the
       whole point of the view, and a tag tuple plus a [Seq.map fst] node
       per entry would give a third of the heap merge's work back. *)
    fun () ->
     let seg = seek_segment t from in
     let anchor = t.anchors.(seg) in
     let streams =
       Array.init t.run_count (fun r -> ref (open_run r ~from:anchor))
     in
     let pop r =
       match !(streams.(r)) () with
       | Seq.Nil -> raise Stale_view
       | Seq.Cons (kv, tail) ->
         streams.(r) := tail;
         kv
     in
     let rec go i () =
       if i >= t.count then Seq.Nil
       else Seq.Cons (pop (Bytes.get_uint8 t.selectors i), go (i + 1))
     in
     (* At most seg_size entries precede [from] within the segment. *)
     let rec skip i =
       if i >= t.count then Seq.Nil
       else
         let kv = pop (Bytes.get_uint8 t.selectors i) in
         if String.compare (fst kv) from >= 0 then Seq.Cons (kv, go (i + 1))
         else skip (i + 1)
     in
     skip (seg * seg_size)

let add_run t ~open_run run =
  if t.run_count >= max_runs then invalid_arg "Sorted_view.add_run: full";
  let existing () =
    let streams =
      Array.init t.run_count (fun r -> ref (open_run r ~from:""))
    in
    replay t ~streams ~start:0 ()
  in
  let existing = Seq.map (fun (kv, r) -> (fst kv, r)) existing in
  of_tagged ~run_count:(t.run_count + 1)
    (Merge_iter.merge_by ~compare:String.compare
       [ existing; tag t.run_count run ])
