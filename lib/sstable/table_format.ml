module Coding = Wip_util.Coding
module Crc32c = Wip_util.Crc32c

let magic = 0x7769706462_4C54L (* "wipdb" ^ "LT" *)

(* Tables carrying a perfect-hash point-index block use a distinct magic so
   that v1 readers fail loudly instead of misparsing, and v2 readers accept
   both: the old magic simply means "no ph block". *)
let magic_v2 = 0x7769706462_5632L (* "wipdb" ^ "V2" *)

let restart_interval = 16

type block_handle = { offset : int; size : int }

let no_handle = { offset = 0; size = 0 }

type footer = {
  index : block_handle;
  filter : block_handle;
  ph : block_handle;
  entry_count : int;
  smallest : string;
  largest : string;
}

(* Footer layout:
   varint index.offset | varint index.size
   varint filter.offset | varint filter.size
   [v2 only] varint ph.offset | varint ph.size
   varint entry_count
   length-prefixed smallest | length-prefixed largest
   fixed64 magic (v1) or magic_v2
   fixed32 total footer length (including this field and the magic)

   A footer without a ph block is encoded byte-identically to v1. *)

let footer_fixed_prefix_length = 12 (* magic (8) + length (4) *)

let encode_footer f =
  let v2 = f.ph.size > 0 in
  let buf = Buffer.create 64 in
  Coding.put_varint buf f.index.offset;
  Coding.put_varint buf f.index.size;
  Coding.put_varint buf f.filter.offset;
  Coding.put_varint buf f.filter.size;
  if v2 then begin
    Coding.put_varint buf f.ph.offset;
    Coding.put_varint buf f.ph.size
  end;
  Coding.put_varint buf f.entry_count;
  Coding.put_length_prefixed buf f.smallest;
  Coding.put_length_prefixed buf f.largest;
  Coding.put_fixed64 buf (if v2 then magic_v2 else magic);
  let total = Buffer.length buf + 4 in
  Coding.put_fixed32 buf total;
  Buffer.contents buf

let decode_footer s =
  let n = String.length s in
  if n < footer_fixed_prefix_length then
    invalid_arg "Table_format.decode_footer: too short";
  let stored_magic = Coding.get_fixed64 s (n - 12) in
  let v2 = Int64.equal stored_magic magic_v2 in
  if not (v2 || Int64.equal stored_magic magic) then
    invalid_arg "Table_format.decode_footer: bad magic";
  let index_offset, off = Coding.get_varint s 0 in
  let index_size, off = Coding.get_varint s off in
  let filter_offset, off = Coding.get_varint s off in
  let filter_size, off = Coding.get_varint s off in
  let ph, off =
    if v2 then
      let ph_offset, off = Coding.get_varint s off in
      let ph_size, off = Coding.get_varint s off in
      ({ offset = ph_offset; size = ph_size }, off)
    else (no_handle, off)
  in
  let entry_count, off = Coding.get_varint s off in
  let smallest, off = Coding.get_length_prefixed s off in
  let largest, _off = Coding.get_length_prefixed s off in
  {
    index = { offset = index_offset; size = index_size };
    filter = { offset = filter_offset; size = filter_size };
    ph;
    entry_count;
    smallest;
    largest;
  }

let seal_block raw =
  let crc = Crc32c.masked (Crc32c.string raw) in
  let buf = Buffer.create (String.length raw + 4) in
  Buffer.add_string buf raw;
  Coding.put_fixed32 buf crc;
  Buffer.contents buf

let unseal_block sealed =
  let n = String.length sealed in
  if n < 4 then invalid_arg "Table_format.unseal_block: too short";
  let stored = Coding.get_fixed32 sealed (n - 4) in
  let raw = String.sub sealed 0 (n - 4) in
  if Crc32c.masked (Crc32c.string raw) <> stored then
    invalid_arg "Table_format.unseal_block: checksum mismatch";
  raw

let strip_seal sealed =
  let n = String.length sealed in
  if n < 4 then invalid_arg "Table_format.strip_seal: too short";
  String.sub sealed 0 (n - 4)
