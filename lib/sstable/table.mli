(** Sorted tables (SSTables / LevelTables): builder and reader.

    A table stores internal-key/value entries in ascending
    {!Wip_util.Ikey.compare} order, carved into prefix-compressed blocks with
    an index block, a bloom filter over (escaped) user keys, and a
    CRC-protected footer. Tables are immutable once finished.

    Keys travel through this layer in their {e encoded} memcomparable form
    (see {!Wip_util.Ikey}): the reader compares raw bytes with
    [String.compare] and never decodes on the point-get, scan or compaction
    paths. *)

type meta = {
  name : string;  (** file name within the {!Wip_storage.Env.t} *)
  size : int;  (** file size in bytes *)
  entry_count : int;
  smallest : string;  (** smallest user key; "" iff the table is empty *)
  largest : string;
}

module Builder : sig
  type t

  val create :
    Wip_storage.Env.t ->
    name:string ->
    category:Wip_storage.Io_stats.category ->
    ?block_size:int ->
    ?bits_per_key:int ->
    ?ph_index:bool ->
    expected_keys:int ->
    unit ->
    t
  (** [block_size] defaults to 4096 bytes, [bits_per_key] to 10.
      [expected_keys] sizes the bloom filter and is required: every call
      site knows (or can bound) its key count, and a defaulted guess either
      wastes filter bytes or inflates the false-positive rate.
      [ph_index] (default true) emits a {!Ph_index} block mapping each user
      key to its newest version's exact slot; it is silently dropped for
      overweight tables or failed constructions. *)

  val add : t -> Wip_util.Ikey.t -> string -> unit
  (** Keys must arrive in strictly ascending internal-key order. *)

  val add_encoded : t -> key:string -> value:string -> unit
  (** Like {!add} but takes the already encoded internal key — the form
      compaction and split streams carry, so re-writing an entry encodes
      nothing. *)

  val entry_count : t -> int

  val estimated_size : t -> int

  val finish : t -> meta
  (** Flushes remaining data, writes filter, index and footer, syncs and
      closes the file. *)

  val abandon : t -> unit
  (** Close and delete the partially written file. *)
end

module Reader : sig
  type t

  val open_ :
    ?cache:Wip_storage.Block_cache.t ->
    ?ph:bool ->
    Wip_storage.Env.t ->
    name:string ->
    t
  (** Reads footer, index, filter and (when present) the perfect-hash point
      index eagerly (accounted as [Table_meta] traffic); data blocks are
      read on demand, consulting [cache] first when one is supplied (only
      device reads are charged to the {!Wip_storage.Io_stats.category}).
      [ph] (default true) set to false ignores any ph block — the bench's
      A/B switch. A ph block that fails its CRC or parse is recorded as a
      ph fallback and ignored: corruption of the accelerator never fails
      the open or the gets it would have served. *)

  val meta : t -> meta

  val has_ph : t -> bool
  (** Whether gets on this reader take the perfect-hash point path. *)

  val ph_bytes : t -> int
  (** On-disk size of the ph block (0 when absent) — bench reporting. *)

  val get :
    t ->
    category:Wip_storage.Io_stats.category ->
    string ->
    snapshot:int64 ->
    (Wip_util.Ikey.kind * string * int64) option
  (** Newest version of the user key with sequence [<= snapshot]. The bloom
      filter short-circuits definite misses without any data-block I/O. *)

  val get_encoded :
    t ->
    category:Wip_storage.Io_stats.category ->
    ?filter_checked:bool ->
    string ->
    (Wip_util.Ikey.kind * string * int64) option
  (** [get_encoded t ~category target] with [target] an
      {!Wip_util.Ikey.encode_seek} result: the allocation-lean form of
      {!get}, letting callers build the seek target once and probe many
      tables. [filter_checked] (default false) skips the bloom probe when
      the caller already ran {!may_contain_encoded}. A false-positive probe
      (maybe-answer but no entry) is recorded in the env's
      {!Wip_storage.Io_stats.t}. *)

  val may_contain : t -> string -> bool
  (** Bloom-filter check only (records the probe in the env stats). *)

  val may_contain_encoded : t -> string -> bool
  (** {!may_contain} taking an encoded (seek) key instead of a user key. *)

  val stream :
    t ->
    category:Wip_storage.Io_stats.category ->
    ?fill_cache:bool ->
    ?from:string ->
    unit ->
    (string * string) Seq.t
  (** Encoded entries in order, starting at the first entry [>= from]
      (an encoded seek key; [""] means the table start). Blocks are fetched
      lazily, decoded through one reusable {!Block.Cursor} each, and with
      [~fill_cache:false] the pass neither populates nor reorders the block
      cache (scan-resistant mode for compaction/split readers). The
      sequence is one-shot: it owns mutable cursors, so force it at most
      once. *)

  val iter_from :
    t ->
    category:Wip_storage.Io_stats.category ->
    ?lo:string ->
    unit ->
    (Wip_util.Ikey.t * string) Seq.t
  (** Decoding convenience over {!stream} (one {!Wip_util.Ikey.t} per
      entry); [lo] is a user key. Test/tool use — hot paths consume
      {!stream}. *)

  val close : t -> unit
end

val overlaps : meta -> lo:string -> hi:string -> bool
(** Whether the table's [smallest, largest] user-key range intersects the
    inclusive range [lo, hi]. Empty tables overlap nothing. *)

val overlaps_excl : meta -> lo:string -> hi_excl:string -> bool
(** Like {!overlaps} but with an exclusive upper bound — the natural fit for
    scan ranges [lo, hi): a table whose smallest key equals [hi_excl] does
    not overlap, so the read path never opens it just to discard every
    entry. *)
