(** CHD-style perfect-hash point index over a table's escaped-user keys.

    Built once at table-write time, the index maps each distinct user key to
    the exact (data block, entry ordinal) of its newest version so point
    gets skip both the index binary search's restart probing and the
    in-block restart binary search. ~6.2 bytes per key. See ph_index.ml for
    the construction and DESIGN.md "Read acceleration" for the block
    format. *)

val build : keys:string array -> locators:int array -> string option
(** [build ~keys ~locators] constructs the raw (unsealed) index block.
    [keys.(i)] is the i-th distinct escaped-user key slice in table order;
    [locators.(i) = (block lsl 16) lor entry] locates its newest version.
    [None] when the table is overweight (a block or entry ordinal exceeds
    16 bits, or more than 2^22 keys) or construction fails — the table then
    ships without an index and readers fall back to binary search. *)

type reader

val read : string -> reader
(** Parse a raw index block (already CRC-verified by the caller).
    @raise Invalid_argument on a malformed header or truncated arrays. *)

val find : reader -> string -> pos:int -> len:int -> (int * int) option
(** [find r key ~pos ~len] looks up the escaped-user slice
    [key.[pos .. pos+len)]. [None] is a definite miss (the key is not in
    the table). [Some (block, entry)] is a fingerprint match: with
    probability ~1/255 an absent key aliases an unrelated slot, so the
    caller must verify the user key at that position before trusting it. *)

val key_count : reader -> int

val byte_size : reader -> int
