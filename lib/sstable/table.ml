module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats

type meta = {
  name : string;
  size : int;
  entry_count : int;
  smallest : string;
  largest : string;
}

module Builder = struct
  type t = {
    env : Env.t;
    name : string;
    category : Io_stats.category;
    block_size : int;
    writer : Env.writer;
    bloom : Wip_bloom.Bloom.t;
    mutable block : Block.Builder.t;
    mutable index_entries : (string * Table_format.block_handle) list; (* rev *)
    mutable entry_count : int;
    mutable smallest : string option;
    mutable largest : string;
    mutable last_ikey : Ikey.t option;
    mutable written : int;
  }

  let create env ~name ~category ?(block_size = 4096) ?(bits_per_key = 10)
      ?(expected_keys = 4096) () =
    {
      env;
      name;
      category;
      block_size;
      writer = Env.create_file env name;
      bloom = Wip_bloom.Bloom.create ~bits_per_key ~expected_keys;
      block = Block.Builder.create ();
      index_entries = [];
      entry_count = 0;
      smallest = None;
      largest = "";
      last_ikey = None;
      written = 0;
    }

  let flush_block t ~last_key =
    if Block.Builder.entry_count t.block > 0 then begin
      let raw = Block.Builder.finish t.block in
      let sealed = Table_format.seal_block raw in
      let handle =
        { Table_format.offset = t.written; size = String.length sealed }
      in
      Env.append t.writer ~category:t.category sealed;
      t.written <- t.written + String.length sealed;
      t.index_entries <- (last_key, handle) :: t.index_entries;
      t.block <- Block.Builder.create ()
    end

  let add t ikey value =
    (match t.last_ikey with
    | Some prev -> assert (Ikey.compare prev ikey < 0)
    | None -> ());
    let encoded = Ikey.encode ikey in
    Block.Builder.add t.block ~key:encoded ~value;
    Wip_bloom.Bloom.add t.bloom ikey.Ikey.user_key;
    if t.smallest = None then t.smallest <- Some ikey.Ikey.user_key;
    t.largest <- ikey.Ikey.user_key;
    t.last_ikey <- Some ikey;
    t.entry_count <- t.entry_count + 1;
    if Block.Builder.size_estimate t.block >= t.block_size then
      flush_block t ~last_key:encoded

  let entry_count t = t.entry_count

  let estimated_size t = t.written + Block.Builder.size_estimate t.block

  let finish t =
    (match t.last_ikey with
    | Some ikey -> flush_block t ~last_key:(Ikey.encode ikey)
    | None -> ());
    (* Filter block *)
    let filter_raw = Wip_bloom.Bloom.encode t.bloom in
    let filter_sealed = Table_format.seal_block filter_raw in
    let filter_handle =
      { Table_format.offset = t.written; size = String.length filter_sealed }
    in
    Env.append t.writer ~category:t.category filter_sealed;
    t.written <- t.written + String.length filter_sealed;
    (* Index block *)
    let index_builder = Block.Builder.create () in
    List.iter
      (fun (key, (handle : Table_format.block_handle)) ->
        let buf = Buffer.create 16 in
        Wip_util.Coding.put_varint buf handle.offset;
        Wip_util.Coding.put_varint buf handle.size;
        Block.Builder.add index_builder ~key ~value:(Buffer.contents buf))
      (List.rev t.index_entries);
    let index_raw = Block.Builder.finish index_builder in
    let index_sealed = Table_format.seal_block index_raw in
    let index_handle =
      { Table_format.offset = t.written; size = String.length index_sealed }
    in
    Env.append t.writer ~category:t.category index_sealed;
    t.written <- t.written + String.length index_sealed;
    (* Footer *)
    let footer =
      {
        Table_format.index = index_handle;
        filter = filter_handle;
        entry_count = t.entry_count;
        smallest = (match t.smallest with Some s -> s | None -> "");
        largest = t.largest;
      }
    in
    let footer_bytes = Table_format.encode_footer footer in
    Env.append t.writer ~category:t.category footer_bytes;
    t.written <- t.written + String.length footer_bytes;
    Env.sync t.writer;
    Env.close_writer t.writer;
    {
      name = t.name;
      size = t.written;
      entry_count = t.entry_count;
      smallest = footer.Table_format.smallest;
      largest = footer.Table_format.largest;
    }

  let abandon t =
    Env.close_writer t.writer;
    Env.delete t.env t.name
end

module Reader = struct
  type t = {
    env : Env.t;
    reader : Env.reader;
    meta : meta;
    index : (string * Table_format.block_handle) array;
    (* index.(i) = (last encoded ikey of block i, handle) *)
    filter : string;
    cache : Wip_storage.Block_cache.t option;
  }

  (* Decoding damaged bytes fails with Invalid_argument somewhere inside the
     format/coding layers (checksum mismatch, bad magic, impossible offset or
     length). Surface all of it as the typed Corruption, tagged with the
     file, and never let garbage decode into answers. *)
  let guard ~file f =
    try f () with
    | Invalid_argument detail -> raise (Env.Corruption { file; detail })

  let open_ ?cache env ~name =
    let reader = Env.open_file env name in
    guard ~file:name @@ fun () ->
    let size = Env.file_size reader in
    (* Discover the footer: last 4 bytes give the total footer length. *)
    let tail =
      Env.read reader ~category:Io_stats.Manifest ~pos:(size - 4) ~len:4
    in
    let footer_len = Wip_util.Coding.get_fixed32 tail 0 in
    let footer_bytes =
      Env.read reader ~category:Io_stats.Manifest ~pos:(size - footer_len)
        ~len:footer_len
    in
    let footer = Table_format.decode_footer footer_bytes in
    let read_handle (h : Table_format.block_handle) =
      Table_format.unseal_block
        (Env.read reader ~category:Io_stats.Manifest ~pos:h.offset ~len:h.size)
    in
    let index_raw = read_handle footer.Table_format.index in
    let filter = read_handle footer.Table_format.filter in
    let index =
      Block.decode_all index_raw
      |> List.map (fun (key, value) ->
             let offset, off = Wip_util.Coding.get_varint value 0 in
             let bsize, _ = Wip_util.Coding.get_varint value off in
             (key, { Table_format.offset; size = bsize }))
      |> Array.of_list
    in
    {
      env;
      reader;
      meta =
        {
          name;
          size;
          entry_count = footer.Table_format.entry_count;
          smallest = footer.Table_format.smallest;
          largest = footer.Table_format.largest;
        };
      index;
      filter;
      cache;
    }

  let meta t = t.meta

  let may_contain t user_key =
    Wip_bloom.Bloom.mem_encoded t.filter user_key

  let read_block t ~category (handle : Table_format.block_handle) =
    let fetch () =
      guard ~file:t.meta.name @@ fun () ->
      Table_format.unseal_block
        (Env.read t.reader ~category ~pos:handle.offset ~len:handle.size)
    in
    match t.cache with
    | None -> fetch ()
    | Some cache -> (
      match
        Wip_storage.Block_cache.find cache ~file:t.meta.name ~offset:handle.offset
      with
      | Some raw -> raw
      | None ->
        let raw = fetch () in
        Wip_storage.Block_cache.add cache ~file:t.meta.name ~offset:handle.offset raw;
        raw)

  (* First index slot whose last-key is >= target (encoded ikey order via
     decode + Ikey.compare). *)
  let index_slot t target_ikey =
    let cmp_slot i =
      let last_key, _ = t.index.(i) in
      Ikey.compare (Ikey.decode last_key) target_ikey
    in
    let n = Array.length t.index in
    if n = 0 then None
    else begin
      (* binary search: smallest i with cmp_slot i >= 0 *)
      let rec bs lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cmp_slot mid < 0 then bs (mid + 1) hi else bs lo mid
      in
      let i = bs 0 n in
      if i >= n then None else Some i
    end

  let get t ~category user_key ~snapshot =
    if not (may_contain t user_key) then None
    else begin
      let target = Ikey.make user_key ~seq:snapshot in
      match guard ~file:t.meta.name (fun () -> index_slot t target) with
      | None -> None
      | Some slot ->
        let _, handle = t.index.(slot) in
        let raw = read_block t ~category handle in
        let compare encoded = Ikey.compare (Ikey.decode encoded) target in
        let rec first_visible entry =
          match entry with
          | None -> None
          | Some (encoded, value) ->
            let ik = Ikey.decode encoded in
            if not (String.equal ik.Ikey.user_key user_key) then None
            else if Int64.compare ik.Ikey.seq snapshot <= 0 then
              Some (ik.Ikey.kind, value, ik.Ikey.seq)
            else
              (* Newer than the snapshot: advance linearly. *)
              advance_from encoded raw
        and advance_from encoded raw =
          let entries = Block.decode_all raw in
          let rec skip = function
            | [] -> None
            | (k, _) :: rest when String.compare k encoded <= 0 -> skip rest
            | (k, v) :: _ -> first_visible (Some (k, v))
          in
          skip entries
        in
        first_visible (Block.seek raw ~compare)
    end

  let iter_from t ~category ?(lo = "") () =
    let target = Ikey.make lo ~seq:Ikey.max_seq in
    let n = Array.length t.index in
    let start_slot =
      match index_slot t target with Some s -> s | None -> n
    in
    (* Lazily walk blocks from start_slot, filtering entries < target. *)
    let rec block_seq slot () =
      if slot >= n then Seq.Nil
      else begin
        let _, handle = t.index.(slot) in
        let raw = read_block t ~category handle in
        let entries =
          Block.decode_all raw
          |> List.filter_map (fun (encoded, value) ->
                 let ik = Ikey.decode encoded in
                 if Ikey.compare ik target >= 0 then Some (ik, value) else None)
        in
        let rec items = function
          | [] -> block_seq (slot + 1)
          | (ik, v) :: rest -> fun () -> Seq.Cons ((ik, v), items rest)
        in
        items entries ()
      end
    in
    block_seq start_slot

  let close t = Env.close_reader t.reader
end

let overlaps (m : meta) ~lo ~hi =
  m.entry_count > 0
  && String.compare m.smallest hi <= 0
  && String.compare m.largest lo >= 0
