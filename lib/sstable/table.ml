module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats

type meta = {
  name : string;
  size : int;
  entry_count : int;
  smallest : string;
  largest : string;
}

module Builder = struct
  type t = {
    env : Env.t;
    name : string;
    category : Io_stats.category;
    block_size : int;
    writer : Env.writer;
    bloom : Wip_bloom.Bloom.t;
    mutable block : Block.Builder.t;
    mutable index_entries : (string * Table_format.block_handle) list; (* rev *)
    mutable entry_count : int;
    mutable smallest_enc : string option;
    mutable largest_enc : string;
    mutable written : int;
    mutable flushed_blocks : int;
    (* Perfect-hash point index bookkeeping: the escaped-user slice and
       (block, entry) locator of each distinct user key's first (= newest)
       version, in table order. [ph_ok] drops to false — and the table
       ships without an index — once any locator outgrows its fixed16
       slot. *)
    ph_wanted : bool;
    mutable ph_ok : bool;
    mutable ph_keys : (string * int) list; (* rev *)
  }

  let create env ~name ~category ?(block_size = 4096) ?(bits_per_key = 10)
      ?(ph_index = true) ~expected_keys () =
    {
      env;
      name;
      category;
      block_size;
      writer = Env.create_file env name;
      bloom = Wip_bloom.Bloom.create ~bits_per_key ~expected_keys:(max 1 expected_keys);
      block = Block.Builder.create ();
      index_entries = [];
      entry_count = 0;
      smallest_enc = None;
      largest_enc = "";
      written = 0;
      flushed_blocks = 0;
      ph_wanted = ph_index;
      ph_ok = ph_index;
      ph_keys = [];
    }

  let flush_block t ~last_key =
    if Block.Builder.entry_count t.block > 0 then begin
      let raw = Block.Builder.finish t.block in
      let sealed = Table_format.seal_block raw in
      let handle =
        { Table_format.offset = t.written; size = String.length sealed }
      in
      Env.append t.writer ~category:t.category sealed;
      t.written <- t.written + String.length sealed;
      t.index_entries <- (last_key, handle) :: t.index_entries;
      t.block <- Block.Builder.create ();
      t.flushed_blocks <- t.flushed_blocks + 1
    end

  let add_encoded t ~key ~value =
    assert (t.entry_count = 0 || String.compare t.largest_enc key < 0);
    if
      t.ph_ok
      && (t.entry_count = 0 || not (Ikey.encoded_same_user t.largest_enc key))
    then begin
      let blk = t.flushed_blocks in
      let ord = Block.Builder.entry_count t.block in
      if blk > 0xFFFF || ord > 0xFFFF then t.ph_ok <- false
      else
        t.ph_keys <-
          ( String.sub key 0 (String.length key - Ikey.trailer_length),
            (blk lsl 16) lor ord )
          :: t.ph_keys
    end;
    Block.Builder.add t.block ~key ~value;
    (* The bloom hashes the escaped-user slice of the encoded key; probes
       hash the same slice of the seek target, so no unescaping on either
       side. *)
    Wip_bloom.Bloom.add_sub t.bloom key ~pos:0
      ~len:(String.length key - Ikey.trailer_length);
    if t.smallest_enc = None then t.smallest_enc <- Some key;
    t.largest_enc <- key;
    t.entry_count <- t.entry_count + 1;
    if Block.Builder.size_estimate t.block >= t.block_size then
      flush_block t ~last_key:key

  let add t ikey value = add_encoded t ~key:(Ikey.encode ikey) ~value

  let entry_count t = t.entry_count

  let estimated_size t = t.written + Block.Builder.size_estimate t.block

  let finish t =
    if t.entry_count > 0 then flush_block t ~last_key:t.largest_enc;
    (* Filter block *)
    let filter_raw = Wip_bloom.Bloom.encode t.bloom in
    let filter_sealed = Table_format.seal_block filter_raw in
    let filter_handle =
      { Table_format.offset = t.written; size = String.length filter_sealed }
    in
    Env.append t.writer ~category:t.category filter_sealed;
    t.written <- t.written + String.length filter_sealed;
    (* Index block *)
    let index_builder = Block.Builder.create () in
    List.iter
      (fun (key, (handle : Table_format.block_handle)) ->
        let buf = Buffer.create 16 in
        Wip_util.Coding.put_varint buf handle.offset;
        Wip_util.Coding.put_varint buf handle.size;
        Block.Builder.add index_builder ~key ~value:(Buffer.contents buf))
      (List.rev t.index_entries);
    let index_raw = Block.Builder.finish index_builder in
    let index_sealed = Table_format.seal_block index_raw in
    let index_handle =
      { Table_format.offset = t.written; size = String.length index_sealed }
    in
    Env.append t.writer ~category:t.category index_sealed;
    t.written <- t.written + String.length index_sealed;
    (* Perfect-hash point-index block (optional: absent when disabled,
       overweight or when CHD construction fails — readers fall back to
       restart binary search). *)
    let ph_handle =
      if not (t.ph_wanted && t.ph_ok && t.entry_count > 0) then
        Table_format.no_handle
      else begin
        let pairs = Array.of_list (List.rev t.ph_keys) in
        let keys = Array.map fst pairs in
        let locators = Array.map snd pairs in
        match Ph_index.build ~keys ~locators with
        | None -> Table_format.no_handle
        | Some raw ->
          let sealed = Table_format.seal_block raw in
          let handle =
            { Table_format.offset = t.written; size = String.length sealed }
          in
          Env.append t.writer ~category:t.category sealed;
          t.written <- t.written + String.length sealed;
          handle
      end
    in
    (* Footer *)
    let footer =
      {
        Table_format.index = index_handle;
        filter = filter_handle;
        ph = ph_handle;
        entry_count = t.entry_count;
        smallest =
          (match t.smallest_enc with
          | Some enc -> Ikey.user_key_of_encoded enc
          | None -> "");
        largest =
          (if t.entry_count = 0 then ""
           else Ikey.user_key_of_encoded t.largest_enc);
      }
    in
    let footer_bytes = Table_format.encode_footer footer in
    Env.append t.writer ~category:t.category footer_bytes;
    t.written <- t.written + String.length footer_bytes;
    Env.sync t.writer;
    Env.close_writer t.writer;
    {
      name = t.name;
      size = t.written;
      entry_count = t.entry_count;
      smallest = footer.Table_format.smallest;
      largest = footer.Table_format.largest;
    }

  let abandon t =
    Env.close_writer t.writer;
    Env.delete t.env t.name
end

module Reader = struct
  type t = {
    env : Env.t;
    reader : Env.reader;
    meta : meta;
    index : (string * Table_format.block_handle) array;
    (* index.(i) = (last encoded ikey of block i, handle) *)
    verified : Bytes.t;
    (* verified.(i) = '\001' once block i's checksum has been verified;
       repeat device fetches then skip the CRC pass. Races across domains
       are benign: flags only flip '\000' -> '\001' and a stale read merely
       re-verifies. *)
    filter : string;
    ph : Ph_index.reader option;
    ph_size : int; (* on-disk bytes of the ph block, 0 when absent *)
    cache : Wip_storage.Block_cache.t option;
  }

  (* Decoding damaged bytes fails with Invalid_argument somewhere inside the
     format/coding layers (checksum mismatch, bad magic, impossible offset or
     length). Surface all of it as the typed Corruption, tagged with the
     file, and never let garbage decode into answers. *)
  let guard ~file f =
    try f () with
    | Invalid_argument detail -> raise (Env.Corruption { file; detail })

  let open_ ?cache ?(ph = true) env ~name =
    let reader = Env.open_file env name in
    guard ~file:name @@ fun () ->
    let size = Env.file_size reader in
    (* Discover the footer: last 4 bytes give the total footer length. *)
    let tail =
      Env.read reader ~category:Io_stats.Table_meta ~pos:(size - 4) ~len:4
    in
    let footer_len = Wip_util.Coding.get_fixed32 tail 0 in
    let footer_bytes =
      Env.read reader ~category:Io_stats.Table_meta ~pos:(size - footer_len)
        ~len:footer_len
    in
    let footer = Table_format.decode_footer footer_bytes in
    let read_handle (h : Table_format.block_handle) =
      Table_format.unseal_block
        (Env.read reader ~category:Io_stats.Table_meta ~pos:h.offset
           ~len:h.size)
    in
    let index_raw = read_handle footer.Table_format.index in
    let filter = read_handle footer.Table_format.filter in
    (* The ph block is an accelerator, never a dependency: a CRC mismatch or
       malformed header (typed Corruption territory for any other block) is
       recorded as a fallback and the reader serves every get through the
       restart binary search instead. *)
    let ph_block =
      if (not ph) || footer.Table_format.ph.size = 0 then None
      else
        match
          (try Some (read_handle footer.Table_format.ph) with
          | Invalid_argument _ | Env.Corruption _ -> None)
        with
        | None ->
          Io_stats.record_ph_fallback (Env.stats env);
          None
        | Some raw -> (
          try Some (Ph_index.read raw) with
          | Invalid_argument _ ->
            Io_stats.record_ph_fallback (Env.stats env);
            None)
    in
    let index =
      let cur = Block.Cursor.create index_raw in
      let slots = ref [] in
      while Block.Cursor.next cur do
        let value = Block.Cursor.value cur in
        let offset, off = Wip_util.Coding.get_varint value 0 in
        let bsize, _ = Wip_util.Coding.get_varint value off in
        slots :=
          (Block.Cursor.key cur, { Table_format.offset; size = bsize })
          :: !slots
      done;
      Array.of_list (List.rev !slots)
    in
    {
      env;
      reader;
      meta =
        {
          name;
          size;
          entry_count = footer.Table_format.entry_count;
          smallest = footer.Table_format.smallest;
          largest = footer.Table_format.largest;
        };
      index;
      verified = Bytes.make (Array.length index) '\000';
      filter;
      ph = ph_block;
      ph_size = footer.Table_format.ph.size;
      cache;
    }

  let meta t = t.meta

  let stats t = Env.stats t.env

  let has_ph t = t.ph <> None

  let ph_bytes t = t.ph_size

  (* Probe the bloom with the escaped-user slice of an encoded (seek) key —
     the same bytes the builder hashed. *)
  let may_contain_encoded t target =
    let len = String.length target - Ikey.trailer_length in
    let maybe = Wip_bloom.Bloom.mem_encoded_sub t.filter target ~pos:0 ~len in
    Io_stats.record_bloom_probe (stats t) ~negative:(not maybe);
    maybe

  let may_contain t user_key =
    let eu = Ikey.encode_user user_key in
    let maybe =
      Wip_bloom.Bloom.mem_encoded_sub t.filter eu ~pos:0
        ~len:(String.length eu)
    in
    Io_stats.record_bloom_probe (stats t) ~negative:(not maybe);
    maybe

  (* Data blocks are addressed by index ordinal. The checksum is verified on
     the first device fetch of each block and skipped on repeats — the cost
     of a CRC pass over every block on every cold scan would otherwise
     dominate the scan itself. *)
  let read_block t ~category ?(fill_cache = true) slot =
    let handle : Table_format.block_handle = snd t.index.(slot) in
    Io_stats.record_block_fetch (stats t);
    let fetch () =
      guard ~file:t.meta.name @@ fun () ->
      let sealed = Env.read t.reader ~category ~pos:handle.offset ~len:handle.size in
      if Bytes.get t.verified slot = '\001' then Table_format.strip_seal sealed
      else begin
        let raw = Table_format.unseal_block sealed in
        Bytes.set t.verified slot '\001';
        raw
      end
    in
    match t.cache with
    | None -> fetch ()
    | Some cache ->
      let find =
        if fill_cache then Wip_storage.Block_cache.find
        else Wip_storage.Block_cache.find_no_fill
      in
      (match find cache ~file:t.meta.name ~offset:handle.offset with
      | Some raw -> raw
      | None ->
        let raw = fetch () in
        if fill_cache then
          Wip_storage.Block_cache.add cache ~file:t.meta.name
            ~offset:handle.offset raw;
        raw)

  (* First index slot whose last-key is >= target; encoded keys compare raw. *)
  let index_slot t target =
    let n = Array.length t.index in
    if n = 0 then None
    else begin
      (* binary search: smallest i with last_key(i) >= target *)
      let rec bs lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if String.compare (fst t.index.(mid)) target < 0 then bs (mid + 1) hi
          else bs lo mid
      in
      let i = bs 0 n in
      if i >= n then None else Some i
    end

  (* Perfect-hash point path: the ph index locates the newest version of the
     target's user key directly — one ordinal jump, zero key comparisons to
     position. From there the cursor steps forward (sequences are encoded
     descending) to the first version with seq <= the snapshot, crossing
     block boundaries if a key's version chain spans them. A fingerprint
     alias for an absent key lands on an unrelated entry; the user-key check
     rejects it as a counted false hit. *)
  let get_via_ph t ~category ph target ~miss =
    let stats = stats t in
    Io_stats.record_ph_probe stats;
    let false_hit () =
      Io_stats.record_ph_false_hit stats;
      miss ()
    in
    let ulen = String.length target - Ikey.trailer_length in
    match Ph_index.find ph target ~pos:0 ~len:ulen with
    | None -> miss () (* definite absence: the bloom maybe was an FP *)
    | Some (blk, ord) ->
      if blk >= Array.length t.index then false_hit ()
      else begin
        let raw = read_block t ~category blk in
        guard ~file:t.meta.name @@ fun () ->
        let cur = Block.Cursor.create raw in
        if not (Block.Cursor.seek_ordinal cur ord) then false_hit ()
        else if
          not
            (Ikey.encoded_same_user_bytes (Block.Cursor.key_bytes cur)
               ~len:(Block.Cursor.key_length cur) target)
        then false_hit ()
        else begin
          let rec advance cur blk =
            if Block.Cursor.compare_key cur target >= 0 then begin
              let buf = Block.Cursor.key_bytes cur in
              let len = Block.Cursor.key_length cur in
              if Ikey.encoded_same_user_bytes buf ~len target then
                Some
                  ( Ikey.encoded_kind_bytes buf ~len,
                    Block.Cursor.value cur,
                    Ikey.encoded_seq_bytes buf ~len )
              else miss () (* every version is newer than the snapshot *)
            end
            else if Block.Cursor.next cur then advance cur blk
            else begin
              let blk = blk + 1 in
              if blk >= Array.length t.index then miss ()
              else begin
                let raw = read_block t ~category blk in
                let cur = Block.Cursor.create raw in
                if Block.Cursor.next cur then advance cur blk else miss ()
              end
            end
          in
          advance cur blk
        end
      end

  (* [target] must be an {!Ikey.encode_seek} result. The first entry >= target
     that still shares the user key necessarily has sequence <= the snapshot
     (the encoding orders sequences descending), so a single cursor seek is
     the whole lookup: no skip loop, no block decode, no Ikey.t. *)
  let get_encoded t ~category ?(filter_checked = false) target =
    if (not filter_checked) && not (may_contain_encoded t target) then None
    else begin
      let miss () =
        (* The filter said maybe, the table had nothing: a false positive. *)
        Io_stats.record_bloom_false_positive (stats t);
        None
      in
      match t.ph with
      | Some ph -> get_via_ph t ~category ph target ~miss
      | None -> (
        match index_slot t target with
        | None -> miss ()
        | Some slot ->
          let raw = read_block t ~category slot in
          guard ~file:t.meta.name @@ fun () ->
          let cur = Block.Cursor.create raw in
          if not (Block.Cursor.seek cur target) then miss ()
          else begin
            let buf = Block.Cursor.key_bytes cur in
            let len = Block.Cursor.key_length cur in
            if not (Ikey.encoded_same_user_bytes buf ~len target) then miss ()
            else
              Some
                ( Ikey.encoded_kind_bytes buf ~len,
                  Block.Cursor.value cur,
                  Ikey.encoded_seq_bytes buf ~len )
          end)
    end

  let get t ~category user_key ~snapshot =
    get_encoded t ~category (Ikey.encode_seek user_key ~seq:snapshot)

  (* One-shot sequence over encoded entries: lazy block loads, one mutable
     cursor per block. Ephemeral by construction — every internal consumer is
     single-pass (flush, compaction, split, scan assembly), and the public
     store API returns lists, so nothing ever re-forces a prefix. *)
  let stream t ~category ?(fill_cache = true) ?(from = "") () =
    let n = Array.length t.index in
    let start_slot =
      if from = "" then 0
      else match index_slot t from with Some s -> s | None -> n
    in
    let rec from_slot slot seek_target () =
      if slot >= n then Seq.Nil
      else begin
        let raw = read_block t ~category ~fill_cache slot in
        guard ~file:t.meta.name @@ fun () ->
        let cur = Block.Cursor.create raw in
        let positioned =
          match seek_target with
          | Some target -> Block.Cursor.seek cur target
          | None -> Block.Cursor.next cur
        in
        if positioned then step cur slot ()
        else from_slot (slot + 1) None ()
      end
    and step cur slot () =
      let entry = (Block.Cursor.key cur, Block.Cursor.value cur) in
      let more = guard ~file:t.meta.name (fun () -> Block.Cursor.next cur) in
      if more then Seq.Cons (entry, step cur slot)
      else Seq.Cons (entry, from_slot (slot + 1) None)
    in
    from_slot start_slot (if from = "" then None else Some from)

  let iter_from t ~category ?(lo = "") () =
    let from = if lo = "" then "" else Ikey.encode_seek lo ~seq:Ikey.max_seq in
    stream t ~category ~from () |> Seq.map (fun (k, v) -> (Ikey.decode k, v))

  let close t = Env.close_reader t.reader
end

let overlaps (m : meta) ~lo ~hi =
  m.entry_count > 0
  && String.compare m.smallest hi <= 0
  && String.compare m.largest lo >= 0

let overlaps_excl (m : meta) ~lo ~hi_excl =
  m.entry_count > 0
  && String.compare m.smallest hi_excl < 0
  && String.compare m.largest lo >= 0
