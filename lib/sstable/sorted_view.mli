(** REMIX-style cross-run sorted view: a frozen k-way merge of a run set.

    One byte per entry selects the source run; one anchor key per
    [seg_size] entries allows positioned walks. Scans replay the merge by
    popping per-run cursor streams in selector order — no pairing heap, no
    per-entry comparisons. See sorted_view.ml and DESIGN.md "Read
    acceleration" for layout and soundness. *)

type t

exception Stale_view
(** Raised by a walk whose run streams end before the selectors do — i.e.
    the run set changed under a view that was not invalidated. Engines must
    drop the view at every flush/compaction/split/retirement site. *)

val seg_size : int

val max_runs : int
(** Selectors are one byte: at most 255 runs per view. *)

val build : (string * string) Seq.t array -> t
(** [build runs] merges the full-range streams of the run set (encoded-key
    order, [String.compare]) and records selectors + anchors. Costs one
    full heap merge — the same work one whole-bucket scan pays without the
    view. @raise Invalid_argument beyond [max_runs]. *)

val add_run : t -> open_run:(int -> from:string -> (string * string) Seq.t) ->
  (string * string) Seq.t -> t
(** [add_run t ~open_run run] extends the view with one new run (index
    [run_count t]) by 2-way merging the existing replay against the new
    run's stream — the incremental flush-site rebuild. *)

val walk : t -> from:string ->
  open_run:(int -> from:string -> (string * string) Seq.t) ->
  (string * string) Seq.t
(** [walk t ~from ~open_run] streams all entries with encoded key [>= from]
    in sorted order. [open_run r ~from:k] must stream run [r]'s entries
    with key [>= k]; runs must be the exact set the view was built over.
    Streams are opened lazily on first pull, one per run, positioned at the
    segment anchor found by binary search; at most [seg_size] entries are
    skipped before the first emission. *)

val entry_count : t -> int

val run_count : t -> int

val byte_size : t -> int
(** Selector + anchor footprint, for stats/bench reporting. *)
