module Coding = Wip_util.Coding

module Builder = struct
  type t = {
    buf : Buffer.t;
    mutable restarts : int list; (* reverse order *)
    mutable counter : int;
    mutable last_key : string;
    mutable entries : int;
  }

  let create () =
    { buf = Buffer.create 4096; restarts = [ 0 ]; counter = 0; last_key = ""; entries = 0 }

  let shared_prefix_length a b =
    let n = min (String.length a) (String.length b) in
    let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
    loop 0

  let add t ~key ~value =
    assert (t.entries = 0 || String.compare t.last_key key <= 0);
    let shared =
      if t.counter < Table_format.restart_interval then
        shared_prefix_length t.last_key key
      else begin
        t.restarts <- Buffer.length t.buf :: t.restarts;
        t.counter <- 0;
        0
      end
    in
    Coding.put_varint t.buf shared;
    Coding.put_varint t.buf (String.length key - shared);
    Coding.put_varint t.buf (String.length value);
    Buffer.add_substring t.buf key shared (String.length key - shared);
    Buffer.add_string t.buf value;
    t.last_key <- key;
    t.counter <- t.counter + 1;
    t.entries <- t.entries + 1

  let size_estimate t =
    Buffer.length t.buf + (4 * List.length t.restarts) + 4

  let entry_count t = t.entries

  let finish t =
    let restarts = List.rev t.restarts in
    List.iter (fun off -> Coding.put_fixed32 t.buf off) restarts;
    Coding.put_fixed32 t.buf (List.length restarts);
    Buffer.contents t.buf
end

let restart_info raw =
  let n = String.length raw in
  let count = Coding.get_fixed32 raw (n - 4) in
  let restart_base = n - 4 - (4 * count) in
  (count, restart_base)

let restart_offset raw restart_base i = Coding.get_fixed32 raw (restart_base + (4 * i))

(* Full-block decodes performed (every [decode_all] call). Hot paths use
   {!Cursor} and never bump this; the regression test in test_readpath holds
   it still across a cache-hot get. *)
let decode_count = Atomic.make 0

(* Key comparisons spent positioning cursors: every restart probe of a
   binary search and every entry stepped over while converging on the
   target. The perfect-hash point path jumps straight to an ordinal, so the
   readpath bench reports this as probes/op to show the saving. *)
let seek_probe_count = Atomic.make 0

(* Decode the entry at [off]; returns (key, value, next_off). [prev_key] is
   the fully reconstructed previous key for prefix sharing. *)
let decode_entry raw ~prev_key off =
  let shared, off = Coding.get_varint raw off in
  let unshared, off = Coding.get_varint raw off in
  let vlen, off = Coding.get_varint raw off in
  let key = String.sub prev_key 0 shared ^ String.sub raw off unshared in
  let off = off + unshared in
  let value = String.sub raw off vlen in
  (key, value, off + vlen)

let decode_all raw =
  Atomic.incr decode_count;
  let _count, restart_base = restart_info raw in
  let rec loop off prev_key acc =
    if off >= restart_base then List.rev acc
    else
      let key, value, off' = decode_entry raw ~prev_key off in
      loop off' key ((key, value) :: acc)
  in
  loop 0 "" []

let seek raw ~compare =
  let count, restart_base = restart_info raw in
  (* Binary search restarts for the last restart whose key has compare < 0. *)
  let key_at_restart i =
    let off = restart_offset raw restart_base i in
    let key, _v, _next = decode_entry raw ~prev_key:"" off in
    key
  in
  let rec bsearch lo hi =
    (* invariant: restart lo's key compares < 0 (or lo = 0); hi's >= 0 or hi = count *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if compare (key_at_restart mid) < 0 then bsearch mid hi else bsearch lo mid
  in
  if count = 0 then None
  else begin
    let start =
      if compare (key_at_restart 0) >= 0 then 0
      else bsearch 0 count
    in
    let rec scan off prev_key =
      if off >= restart_base then None
      else
        let key, value, off' = decode_entry raw ~prev_key off in
        if compare key >= 0 then Some (key, value) else scan off' key
    in
    scan (restart_offset raw restart_base start) ""
  end

module Cursor = struct
  type t = {
    raw : string;
    restart_base : int;
    restart_count : int;
    mutable pos : int; (* offset of the next entry to parse *)
    mutable key_buf : Bytes.t; (* reused across entries; prefix in place *)
    mutable key_len : int;
    mutable val_off : int;
    mutable val_len : int;
    mutable valid : bool;
  }

  let create raw =
    let restart_count, restart_base = restart_info raw in
    if restart_base < 0 then invalid_arg "Block.Cursor: bad restart array";
    {
      raw;
      restart_base;
      restart_count;
      pos = 0;
      key_buf = Bytes.create 64;
      key_len = 0;
      val_off = 0;
      val_len = 0;
      valid = false;
    }

  let valid t = t.valid

  let reserve t n =
    if Bytes.length t.key_buf < n then begin
      let bigger = Bytes.create (max n (2 * Bytes.length t.key_buf)) in
      Bytes.blit t.key_buf 0 bigger 0 t.key_len;
      t.key_buf <- bigger
    end

  let next t =
    if t.pos >= t.restart_base then begin
      t.valid <- false;
      false
    end
    else begin
      let shared, off = Coding.get_varint t.raw t.pos in
      let unshared, off = Coding.get_varint t.raw off in
      let vlen, off = Coding.get_varint t.raw off in
      if (t.valid && shared > t.key_len) || (not t.valid) && shared > 0 then
        invalid_arg "Block.Cursor: shared prefix without predecessor";
      if off + unshared + vlen > t.restart_base then
        invalid_arg "Block.Cursor: entry overruns block";
      reserve t (shared + unshared);
      Bytes.blit_string t.raw off t.key_buf shared unshared;
      t.key_len <- shared + unshared;
      t.val_off <- off + unshared;
      t.val_len <- vlen;
      t.pos <- t.val_off + vlen;
      t.valid <- true;
      true
    end

  let rewind t =
    t.pos <- 0;
    t.key_len <- 0;
    t.valid <- false

  let key t = Bytes.sub_string t.key_buf 0 t.key_len

  let key_length t = t.key_len

  let key_bytes t = t.key_buf

  let value t = String.sub t.raw t.val_off t.val_len

  let value_length t = t.val_len

  let compare_key t target =
    let lt = String.length target in
    let n = min t.key_len lt in
    let rec loop i =
      if i = n then Int.compare t.key_len lt
      else
        let c =
          Char.compare (Bytes.unsafe_get t.key_buf i) (String.unsafe_get target i)
        in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

  (* Compare the key stored at restart [i] against [target] straight out of
     the raw block: restart entries carry their full key (shared = 0), so no
     reconstruction or copy is needed. *)
  let compare_restart t i target =
    let off = restart_offset t.raw t.restart_base i in
    let shared, off = Coding.get_varint t.raw off in
    let unshared, off = Coding.get_varint t.raw off in
    let _vlen, off = Coding.get_varint t.raw off in
    if shared <> 0 then invalid_arg "Block.Cursor: restart with shared prefix";
    let lt = String.length target in
    let n = min unshared lt in
    let rec loop i =
      if i = n then Int.compare unshared lt
      else
        let c =
          Char.compare
            (String.unsafe_get t.raw (off + i))
            (String.unsafe_get target i)
        in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

  let seek t target =
    if t.restart_count = 0 || t.restart_base = 0 then begin
      (* No entries (an empty builder still emits one restart slot). *)
      t.valid <- false;
      false
    end
    else begin
      let probe i =
        Atomic.incr seek_probe_count;
        compare_restart t i target
      in
      let start =
        if probe 0 >= 0 then 0
        else begin
          (* last restart whose key < target *)
          let rec bs lo hi =
            if hi - lo <= 1 then lo
            else
              let mid = (lo + hi) / 2 in
              if probe mid < 0 then bs mid hi else bs lo mid
          in
          bs 0 t.restart_count
        end
      in
      t.pos <- restart_offset t.raw t.restart_base start;
      t.key_len <- 0;
      t.valid <- false;
      let rec scan () =
        if not (next t) then false
        else begin
          Atomic.incr seek_probe_count;
          if compare_key t target >= 0 then true else scan ()
        end
      in
      scan ()
    end

  (* Jump to entry ordinal [n] without any key comparison: restart
     [n / restart_interval] then step [n mod restart_interval] entries.
     Sound because {!Builder.add} opens a restart every
     [Table_format.restart_interval] entries exactly. *)
  let seek_ordinal t n =
    if n < 0 then invalid_arg "Block.Cursor.seek_ordinal: negative ordinal";
    let r = n / Table_format.restart_interval in
    if t.restart_count = 0 || t.restart_base = 0 || r >= t.restart_count then begin
      t.valid <- false;
      false
    end
    else begin
      t.pos <- restart_offset t.raw t.restart_base r;
      t.key_len <- 0;
      t.valid <- false;
      let rec step k = k = 0 || (next t && step (k - 1)) in
      step ((n mod Table_format.restart_interval) + 1)
    end
end
