module Ikey = Wip_util.Ikey

(* A pairing heap keyed by the head element of each sequence: find-min is
   O(1) and delete-min amortises to O(log k), so each emitted element costs
   O(log k) instead of the O(k) fold + fresh List.filter allocation of the
   previous linear scan — the difference shows at split/merge time, when a
   bucket's every sublevel joins the merge. *)
type stream = { head : Ikey.t * string; tail : (Ikey.t * string) Seq.t }

let stream_of_seq seq =
  match seq () with
  | Seq.Nil -> None
  | Seq.Cons (head, tail) -> Some { head; tail }

let stream_compare a b = Ikey.compare (fst a.head) (fst b.head)

(* Non-empty heap; the whole heap is a [heap option]. *)
type heap = Node of stream * heap list

let meld (Node (sa, ca) as a) (Node (sb, cb) as b) =
  if stream_compare sa sb <= 0 then Node (sa, b :: ca) else Node (sb, a :: cb)

let insert s = function
  | None -> Some (Node (s, []))
  | Some h -> Some (meld (Node (s, [])) h)

(* Standard two-pass pairing: meld children pairwise left to right, then
   fold the pair melds together right to left. *)
let rec merge_pairs = function
  | [] -> None
  | [ h ] -> Some h
  | a :: b :: rest -> (
    let ab = meld a b in
    match merge_pairs rest with None -> Some ab | Some r -> Some (meld ab r))

let merge seqs =
  let heap =
    List.fold_left
      (fun acc seq ->
        match stream_of_seq seq with None -> acc | Some s -> insert s acc)
      None seqs
  in
  let rec next heap () =
    match heap with
    | None -> Seq.Nil
    | Some (Node (s, children)) ->
      let rest = merge_pairs children in
      let heap' =
        match stream_of_seq s.tail with
        | Some s' -> insert s' rest
        | None -> rest
      in
      Seq.Cons (s.head, next heap')
  in
  next heap

let compact ?(dedup_user_keys = true) ?(drop_tombstones = false)
    ?(snapshot_floor = Int64.max_int) seqs =
  let merged = merge seqs in
  (* [emitted_below_floor]: a version of [last_user_key] with seq <= floor has
     already been decided (kept or tombstone-dropped); all older ones are
     shadowed. Versions with seq > floor always survive — an open snapshot may
     still need them. *)
  let rec filter last_user_key emitted_below_floor seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (((ik, _v) as entry), rest) ->
      let same_key =
        match last_user_key with
        | Some k -> String.equal k ik.Ikey.user_key
        | None -> false
      in
      let emitted_below_floor = same_key && emitted_below_floor in
      let key' = Some ik.Ikey.user_key in
      if Int64.compare ik.Ikey.seq snapshot_floor > 0 then
        Seq.Cons (entry, filter key' emitted_below_floor rest)
      else if dedup_user_keys && emitted_below_floor then
        filter key' true rest ()
      else if drop_tombstones && ik.Ikey.kind = Ikey.Deletion then
        filter key' true rest ()
      else Seq.Cons (entry, filter key' true rest)
  in
  filter None false merged
