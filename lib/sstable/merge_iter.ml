module Ikey = Wip_util.Ikey

(* A pairing heap keyed by the head element of each sequence: find-min is
   O(1) and delete-min amortises to O(log k), so each emitted element costs
   O(log k) instead of the O(k) fold + fresh List.filter allocation of the
   previous linear scan — the difference shows at split/merge time, when a
   bucket's every sublevel joins the merge. Streams carry *encoded* internal
   keys compared bytewise (the encoding is memcomparable, see
   {!Wip_util.Ikey}), so merging materializes no [Ikey.t] records. *)
type ('k, 'v) stream = { head : 'k * 'v; tail : ('k * 'v) Seq.t }

let stream_of_seq seq =
  match seq () with
  | Seq.Nil -> None
  | Seq.Cons (head, tail) -> Some { head; tail }

(* Non-empty heap; the whole heap is a [heap option]. *)
type ('k, 'v) heap = Node of ('k, 'v) stream * ('k, 'v) heap list

let meld ~compare (Node (sa, ca) as a) (Node (sb, cb) as b) =
  if compare (fst sa.head) (fst sb.head) <= 0 then Node (sa, b :: ca)
  else Node (sb, a :: cb)

let insert ~compare s = function
  | None -> Some (Node (s, []))
  | Some h -> Some (meld ~compare (Node (s, [])) h)

(* Standard two-pass pairing: meld children pairwise left to right, then
   fold the pair melds together right to left. *)
let rec merge_pairs ~compare = function
  | [] -> None
  | [ h ] -> Some h
  | a :: b :: rest -> (
    let ab = meld ~compare a b in
    match merge_pairs ~compare rest with
    | None -> Some ab
    | Some r -> Some (meld ~compare ab r))

let merge_by ~compare seqs =
  match List.filter_map stream_of_seq seqs with
  | [] -> Seq.empty
  | [ s ] ->
    (* One live source — its order is already the merged order, so hand the
       underlying sequence back with no per-element heap bookkeeping. The
       common case is a store scan over a sorted view plus an empty
       memtable. *)
    fun () -> Seq.Cons (s.head, s.tail)
  | streams ->
    let heap =
      List.fold_left (fun acc s -> insert ~compare s acc) None streams
    in
    let rec next heap () =
      match heap with
      | None -> Seq.Nil
      | Some (Node (s, children)) ->
        let rest = merge_pairs ~compare children in
        let heap' =
          match stream_of_seq s.tail with
          | Some s' -> insert ~compare s' rest
          | None -> rest
        in
        Seq.Cons (s.head, next heap')
    in
    next heap

let compare_encoded (a : string) b = String.compare a b

let merge seqs = merge_by ~compare:compare_encoded seqs

let compact ?(dedup_user_keys = true) ?(drop_tombstones = false)
    ?(snapshot_floor = Int64.max_int) seqs =
  let merged = merge seqs in
  let no_floor = Int64.equal snapshot_floor Int64.max_int in
  (* [emitted_below_floor]: a version of the last user key with seq <= floor
     has already been decided (kept or tombstone-dropped); all older ones are
     shadowed. Versions with seq > floor always survive — an open snapshot
     may still need them. Everything reads off the encoded keys: user-key
     identity bytewise, sequence and kind from the trailer. *)
  let rec filter last_key emitted_below_floor seq () =
    match seq () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (((k, _v) as entry), rest) ->
      let same_key =
        match last_key with
        | Some prev -> Ikey.encoded_same_user prev k
        | None -> false
      in
      let emitted_below_floor = same_key && emitted_below_floor in
      let key' = Some k in
      if
        (not no_floor) && Int64.compare (Ikey.encoded_seq k) snapshot_floor > 0
      then Seq.Cons (entry, filter key' emitted_below_floor rest)
      else if dedup_user_keys && emitted_below_floor then filter key' true rest ()
      else if
        drop_tombstones
        && match Ikey.encoded_kind k with Ikey.Deletion -> true | Ikey.Value -> false
      then filter key' true rest ()
      else Seq.Cons (entry, filter key' true rest)
  in
  filter None false merged
