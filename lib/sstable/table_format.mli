(** On-disk layout of sorted tables (SSTables / LevelTables).

    {v
    [data block]* [filter block] [index block] [footer]
    v}

    Each data block holds prefix-compressed entries with restart points every
    [restart_interval] entries, followed by the restart offset array, its
    count, and a masked CRC-32C trailer. The index block maps each data
    block's last internal key to its (offset, size). The filter block is a
    serialized bloom filter over user keys. The footer pins the index and
    filter locations, the entry count, the smallest/largest user keys, and a
    magic number. *)

val magic : int64

val magic_v2 : int64
(** Magic of footers that carry a perfect-hash point-index block handle.
    Readers accept both; writers emit [magic_v2] only when a ph block is
    present, so tables without one stay byte-identical to v1. *)

val restart_interval : int

type block_handle = { offset : int; size : int }

val no_handle : block_handle
(** [{offset = 0; size = 0}] — the "block absent" sentinel (size 0). *)

type footer = {
  index : block_handle;
  filter : block_handle;
  ph : block_handle;
      (** perfect-hash point index; [no_handle] when the table has none *)
  entry_count : int;
  smallest : string;  (** smallest user key, "" when the table is empty *)
  largest : string;
}

val encode_footer : footer -> string

val decode_footer : string -> footer
(** Expects exactly the trailing footer bytes.
    @raise Invalid_argument on bad magic or truncation. *)

val footer_fixed_prefix_length : int
(** The footer is variable-length (it embeds keys); its last 8 bytes are a
    fixed32 total-footer-length field followed by nothing — readers read the
    last [footer_fixed_prefix_length] bytes first to discover the full
    footer extent. *)

val seal_block : string -> string
(** Append the masked CRC-32C trailer to raw block bytes. *)

val unseal_block : string -> string
(** Verify and strip the trailer.
    @raise Invalid_argument on checksum mismatch. *)

val strip_seal : string -> string
(** Strip the trailer without verifying it — for blocks whose checksum an
    earlier read of the same file already verified. *)
