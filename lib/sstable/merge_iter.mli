(** K-way merge of ordered sequences (pairing heap).

    The store-facing entry points ({!merge}, {!compact}) operate on
    {e encoded} internal keys — raw strings in memcomparable form (see
    {!Wip_util.Ikey}) compared with [String.compare] — so flush, compaction
    and split streams never materialize an [Ikey.t] per element.
    {!merge_by} is the generic core for other orderings (e.g. plain user-key
    merges across shards). *)

val merge_by :
  compare:('k -> 'k -> int) -> ('k * 'v) Seq.t list -> ('k * 'v) Seq.t
(** Inputs must each be sorted by [compare] on their first components; the
    merged output preserves that order (stable across inputs only up to
    [compare]-equality). *)

val merge : (string * string) Seq.t list -> (string * string) Seq.t
(** {!merge_by} with [String.compare] — encoded internal-key order. *)

val compact :
  ?dedup_user_keys:bool ->
  ?drop_tombstones:bool ->
  ?snapshot_floor:int64 ->
  (string * string) Seq.t list ->
  (string * string) Seq.t
(** Merge plus version GC, all on encoded keys. With [dedup_user_keys] the
    newest version of each user key survives and older versions are dropped;
    with [drop_tombstones] surviving deletion markers are also elided (legal
    only when merging into the bottommost data of a key range).
    [snapshot_floor] (default: keep-newest-only regardless) protects
    versions newer than the floor from dedup so that open snapshots keep
    reading consistent data; versions at or below the floor collapse to the
    newest one. *)
