module Coding = Wip_util.Coding
module Ikey = Wip_util.Ikey
module Intf = Wip_kv.Store_intf

type request =
  | Ping
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Write_batch of (Ikey.kind * string * string) list
  | Scan of { lo : string; hi : string; limit : int option }
  | Stats

type wire_error =
  | Backpressure of { shard : int; debt_bytes : int }
  | Store_degraded of { reason : string }
  | Txn_conflict of { key : string }
  | Bad_request of { message : string }

type response =
  | Ack
  | Value of { value : string }
  | Not_found
  | Entries of (string * string) list
  | Pong
  | Stats_reply of (string * int64) list
  | Error of wire_error

type protocol_error =
  | Truncated
  | Oversized of { len : int }
  | Bad_tag of { tag : int }
  | Malformed of { detail : string }

let protocol_error_to_string = function
  | Truncated -> "truncated frame body"
  | Oversized { len } -> Printf.sprintf "oversized frame: %d bytes" len
  | Bad_tag { tag } -> Printf.sprintf "unknown opcode/status 0x%02x" tag
  | Malformed { detail } -> Printf.sprintf "malformed frame: %s" detail

let wire_error_to_string = function
  | Backpressure { shard; debt_bytes } ->
    Printf.sprintf "backpressure: shard %d holds %d debt bytes" shard
      debt_bytes
  | Store_degraded { reason } -> Printf.sprintf "store degraded: %s" reason
  | Txn_conflict { key } ->
    Printf.sprintf "transaction conflict on key %S" key
  | Bad_request { message } -> Printf.sprintf "bad request: %s" message

let max_frame_bytes = 8 * 1024 * 1024

let write_error_to_wire = function
  | Intf.Backpressure { shard; debt_bytes } -> Backpressure { shard; debt_bytes }
  | Intf.Store_degraded { reason } -> Store_degraded { reason }
  | Intf.Txn_conflict { key } -> Txn_conflict { key }

(* Opcodes (requests) and statuses (responses) share one tag byte space:
   requests below 0x80, responses at and above it. *)
let tag_ping = 0x01

let tag_get = 0x02

let tag_put = 0x03

let tag_delete = 0x04

let tag_write_batch = 0x05

let tag_scan = 0x06

let tag_stats = 0x07

let tag_ack = 0x80

let tag_value = 0x81

let tag_not_found = 0x82

let tag_entries = 0x83

let tag_pong = 0x84

let tag_stats_reply = 0x85

let tag_error = 0xff

let err_backpressure = 1

let err_degraded = 2

let err_bad_request = 3

let err_txn_conflict = 4

let put_kind buf kind =
  Buffer.add_char buf
    (match kind with Ikey.Value -> '\001' | Ikey.Deletion -> '\000')

let put_items buf items =
  Coding.put_varint buf (List.length items);
  List.iter
    (fun (kind, key, value) ->
      put_kind buf kind;
      Coding.put_length_prefixed buf key;
      Coding.put_length_prefixed buf value)
    items

(* [body] writes tag + payload into [buf]; the frame wrapper prepends
   length and id. *)
let frame ~id body =
  let buf = Buffer.create 64 in
  body buf;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 8) in
  Coding.put_fixed32 out (String.length payload + 4);
  Coding.put_fixed32 out (id land 0xffffffff);
  Buffer.add_string out payload;
  Buffer.contents out

let encode_request ~id req =
  frame ~id (fun buf ->
      match req with
      | Ping -> Buffer.add_char buf (Char.chr tag_ping)
      | Get { key } ->
        Buffer.add_char buf (Char.chr tag_get);
        Coding.put_length_prefixed buf key
      | Put { key; value } ->
        Buffer.add_char buf (Char.chr tag_put);
        Coding.put_length_prefixed buf key;
        Coding.put_length_prefixed buf value
      | Delete { key } ->
        Buffer.add_char buf (Char.chr tag_delete);
        Coding.put_length_prefixed buf key
      | Write_batch items ->
        Buffer.add_char buf (Char.chr tag_write_batch);
        put_items buf items
      | Scan { lo; hi; limit } ->
        Buffer.add_char buf (Char.chr tag_scan);
        Coding.put_length_prefixed buf lo;
        Coding.put_length_prefixed buf hi;
        (* 0 = unlimited; a real limit is stored off by one. A negative
           limit means "nothing" and is clamped to 0 entries — it must not
           collide with the unlimited encoding or go negative on the wire. *)
        Coding.put_varint buf
          (match limit with
          | None -> 0
          | Some l when l < 0 -> 1
          | Some l -> l + 1)
      | Stats -> Buffer.add_char buf (Char.chr tag_stats))

let encode_response ~id resp =
  frame ~id (fun buf ->
      match resp with
      | Ack -> Buffer.add_char buf (Char.chr tag_ack)
      | Value { value } ->
        Buffer.add_char buf (Char.chr tag_value);
        Coding.put_length_prefixed buf value
      | Not_found -> Buffer.add_char buf (Char.chr tag_not_found)
      | Entries entries ->
        Buffer.add_char buf (Char.chr tag_entries);
        Coding.put_varint buf (List.length entries);
        List.iter
          (fun (key, value) ->
            Coding.put_length_prefixed buf key;
            Coding.put_length_prefixed buf value)
          entries
      | Pong -> Buffer.add_char buf (Char.chr tag_pong)
      | Stats_reply kvs ->
        Buffer.add_char buf (Char.chr tag_stats_reply);
        Coding.put_varint buf (List.length kvs);
        List.iter
          (fun (name, v) ->
            Coding.put_length_prefixed buf name;
            Coding.put_fixed64 buf v)
          kvs
      | Error err ->
        Buffer.add_char buf (Char.chr tag_error);
        (match err with
        | Backpressure { shard; debt_bytes } ->
          Buffer.add_char buf (Char.chr err_backpressure);
          Coding.put_varint buf shard;
          Coding.put_varint buf debt_bytes
        | Store_degraded { reason } ->
          Buffer.add_char buf (Char.chr err_degraded);
          Coding.put_length_prefixed buf reason
        | Bad_request { message } ->
          Buffer.add_char buf (Char.chr err_bad_request);
          Coding.put_length_prefixed buf message
        | Txn_conflict { key } ->
          Buffer.add_char buf (Char.chr err_txn_conflict);
          Coding.put_length_prefixed buf key))

(* ------------------------------------------------------------------ *)
(* Decoding. Every read is over the frame body only; Coding raises
   Invalid_argument on truncated input, which the [run] wrapper converts to
   the typed {!Truncated}. *)

type 'a decoded =
  | Frame of { id : int; payload : 'a; next : int }
  | Need_more
  | Fail of protocol_error

exception Bad of protocol_error

let fail e = raise (Bad e)

(* A body parser gets (body, off) and returns (value, off'). *)
let get_kind body p =
  match body.[p] with
  | '\001' -> (Ikey.Value, p + 1)
  | '\000' -> (Ikey.Deletion, p + 1)
  | c -> fail (Malformed { detail = Printf.sprintf "kind byte %d" (Char.code c) })

let get_items body p =
  let count, p = Coding.get_varint body p in
  if count < 0 || count > max_frame_bytes then
    fail (Malformed { detail = "item count" });
  let rec loop i p acc =
    if i = count then (List.rev acc, p)
    else begin
      let kind, p = get_kind body p in
      let key, p = Coding.get_length_prefixed body p in
      let value, p = Coding.get_length_prefixed body p in
      loop (i + 1) p ((kind, key, value) :: acc)
    end
  in
  loop 0 p []

let parse_request body p =
  let tag = Char.code body.[p] in
  let p = p + 1 in
  if tag = tag_ping then (Ping, p)
  else if tag = tag_get then begin
    let key, p = Coding.get_length_prefixed body p in
    (Get { key }, p)
  end
  else if tag = tag_put then begin
    let key, p = Coding.get_length_prefixed body p in
    let value, p = Coding.get_length_prefixed body p in
    (Put { key; value }, p)
  end
  else if tag = tag_delete then begin
    let key, p = Coding.get_length_prefixed body p in
    (Delete { key }, p)
  end
  else if tag = tag_write_batch then begin
    let items, p = get_items body p in
    (Write_batch items, p)
  end
  else if tag = tag_scan then begin
    let lo, p = Coding.get_length_prefixed body p in
    let hi, p = Coding.get_length_prefixed body p in
    let raw, p = Coding.get_varint body p in
    (* 0 = unlimited; otherwise off-by-one. A negative raw (an overflowed
       varint, or a client smuggling a negative limit) is a grammar
       violation — reject it here so it can never reach Seq.take. *)
    if raw < 0 then fail (Malformed { detail = "negative scan limit" });
    let limit = if raw = 0 then None else Some (raw - 1) in
    (Scan { lo; hi; limit }, p)
  end
  else if tag = tag_stats then (Stats, p)
  else fail (Bad_tag { tag })

let parse_error body p =
  let code = Char.code body.[p] in
  let p = p + 1 in
  if code = err_backpressure then begin
    let shard, p = Coding.get_varint body p in
    let debt_bytes, p = Coding.get_varint body p in
    (Backpressure { shard; debt_bytes }, p)
  end
  else if code = err_degraded then begin
    let reason, p = Coding.get_length_prefixed body p in
    (Store_degraded { reason }, p)
  end
  else if code = err_bad_request then begin
    let message, p = Coding.get_length_prefixed body p in
    (Bad_request { message }, p)
  end
  else if code = err_txn_conflict then begin
    let key, p = Coding.get_length_prefixed body p in
    (Txn_conflict { key }, p)
  end
  else fail (Malformed { detail = Printf.sprintf "error code %d" code })

let parse_response body p =
  let tag = Char.code body.[p] in
  let p = p + 1 in
  if tag = tag_ack then (Ack, p)
  else if tag = tag_value then begin
    let value, p = Coding.get_length_prefixed body p in
    (Value { value }, p)
  end
  else if tag = tag_not_found then (Not_found, p)
  else if tag = tag_entries then begin
    let count, p = Coding.get_varint body p in
    if count < 0 || count > max_frame_bytes then
      fail (Malformed { detail = "entry count" });
    let rec loop i p acc =
      if i = count then (Entries (List.rev acc), p)
      else begin
        let key, p = Coding.get_length_prefixed body p in
        let value, p = Coding.get_length_prefixed body p in
        loop (i + 1) p ((key, value) :: acc)
      end
    in
    loop 0 p []
  end
  else if tag = tag_pong then (Pong, p)
  else if tag = tag_stats_reply then begin
    let count, p = Coding.get_varint body p in
    if count < 0 || count > max_frame_bytes then
      fail (Malformed { detail = "stats count" });
    let rec loop i p acc =
      if i = count then (Stats_reply (List.rev acc), p)
      else begin
        let name, p = Coding.get_length_prefixed body p in
        let v = Coding.get_fixed64 body p in
        loop (i + 1) (p + 8) ((name, v) :: acc)
      end
    in
    loop 0 p []
  end
  else if tag = tag_error then begin
    let err, p = parse_error body p in
    (Error err, p)
  end
  else fail (Bad_tag { tag })

(* Shared framing: length, id, then [parse] over exactly the declared
   body. Anything [parse] leaves unconsumed is a grammar violation. *)
let decode parse s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then Fail (Malformed { detail = "bad scan offset" })
  else if pos + 4 > n then Need_more
  else begin
    let len = Coding.get_fixed32 s pos in
    if len > max_frame_bytes then Fail (Oversized { len })
    else if len < 5 then Fail (Malformed { detail = "frame too short" })
    else if pos + 4 + len > n then Need_more
    else begin
      let id = Coding.get_fixed32 s (pos + 4) in
      let body = String.sub s (pos + 8) (len - 4) in
      match parse body 0 with
      | payload, p ->
        if p <> String.length body then
          Fail (Malformed { detail = "trailing bytes in frame" })
        else Frame { id; payload; next = pos + 4 + len }
      | exception Bad e -> Fail e
      | exception Invalid_argument _ -> Fail Truncated
    end
  end

let decode_request s ~pos = decode parse_request s ~pos

let decode_response s ~pos = decode parse_response s ~pos
