(** Minimal blocking client for the WipDB wire protocol.

    One socket, one request stream. The synchronous helpers ({!ping},
    {!get}, {!put}, ...) send one frame and wait for its response. The raw
    {!send} / {!recv} pair exposes pipelining: issue many requests without
    waiting, then collect responses — which the server may return {e out
    of order} — matching them up by id. A client value is not thread-safe;
    use one per thread or domain. *)

type t

type error =
  | Wire of Protocol.wire_error
      (** the server answered with a typed refusal *)
  | Protocol_failure of Protocol.protocol_error
      (** the server's bytes do not parse *)
  | Unexpected of Protocol.response
      (** parsed, but the wrong shape for the request *)
  | Disconnected

val error_to_string : error -> string

val connect : ?addr:string -> port:int -> unit -> t

val close : t -> unit

val send : t -> Protocol.request -> int
(** Write one request frame; returns its id (ids ascend from 1 per
    connection). Raises [Unix.Unix_error] if the peer is gone. *)

val recv : t -> (int * Protocol.response, error) result
(** Next response frame, whichever request it answers. *)

val ping : t -> (unit, error) result

val get : t -> string -> (string option, error) result

val put : t -> key:string -> value:string -> (unit, error) result
(** [Ok ()] means the server acked — the write is durable. *)

val delete : t -> key:string -> (unit, error) result

val write_batch :
  t ->
  (Wip_util.Ikey.kind * string * string) list ->
  (unit, error) result

val scan :
  t ->
  lo:string ->
  hi:string ->
  ?limit:int ->
  unit ->
  ((string * string) list, error) result

val stats : t -> ((string * int64) list, error) result
