(** Multi-domain socket server over any store front.

    One acceptor thread listens; each connection gets a reader thread that
    decodes frames and feeds a shared job queue; [workers] worker domains
    pull jobs, execute them against the store, and write responses back
    under a per-connection write lock. Responses carry the request id and
    may complete {e out of order} — a slow scan occupies one worker while
    the puts pipelined behind it on the same socket are served by the
    others. [pipeline_depth] bounds each connection's queued-but-unanswered
    requests; past it the reader simply stops draining the socket, which
    is TCP backpressure all the way to the client.

    Writes (put / delete / write_batch) flow through a
    {!Group_commit} instance over the store's [commit] function, so [n]
    concurrent commits cost one WAL append + fsync per touched shard per
    window instead of [n]. An [Ack] therefore means {e durable}. Engine
    refusals map onto typed wire errors: [Backpressure] and
    [Store_degraded] travel as themselves ({!Protocol.wire_error});
    malformed frames are answered with [Bad_request] where an id is
    recoverable, and the connection is closed.

    The store is reached through a plain record of closures ({!store_ops})
    rather than a functor so any front — {!Wip_concurrent.Sharded_store},
    a bare engine, a test stub — can serve. *)

type store_ops = {
  get : string -> string option;
  scan :
    lo:string -> hi:string -> limit:int option -> (string * string) list;
  commit :
    (Wip_util.Ikey.kind * string * string) list array ->
    (unit, Wip_kv.Store_intf.write_error) result array;
      (** group-commit window: one verdict per batch, [Ok] = durable
          (applied and fsynced). For the sharded front this is
          {!Wip_concurrent.Sharded_store.Make.commit_batches}. *)
  stats : unit -> (string * int64) list;
      (** served verbatim to [Stats] requests *)
}

type t

val start :
  ?addr:string ->
  ?port:int ->
  ?workers:int ->
  ?pipeline_depth:int ->
  ?group_commit:bool ->
  ?max_batch_bytes:int ->
  ?max_delay_s:float ->
  ?stats:Wip_storage.Io_stats.t ->
  ops:store_ops ->
  unit ->
  t
(** Binds [addr] (default ["127.0.0.1"]) : [port] (default [0] =
    ephemeral; read the bound port back with {!port}), spawns [workers]
    (default 4) worker domains and the acceptor, and serves until
    {!stop}. [group_commit:false] commits every write request alone —
    the per-commit-fsync baseline. [max_batch_bytes] / [max_delay_s]
    bound the group-commit window; [stats] receives per-window
    group-commit counters. *)

val port : t -> int

val group : t -> Group_commit.t
(** The server's group-commit instance (window/request counters). *)

val stop : t -> unit
(** Close the listening socket and every connection, drain and join
    workers and the group-commit layer. Idempotent. *)
