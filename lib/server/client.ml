type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  (* A client handle is single-threaded by contract — callers own the
     request/response pairing; nothing here is shared. *)
  mutable data : string; (* unconsumed response bytes; guarded_by: caller *)
  mutable next_id : int; (* guarded_by: caller *)
}

type error =
  | Wire of Protocol.wire_error
  | Protocol_failure of Protocol.protocol_error
  | Unexpected of Protocol.response
  | Disconnected

let error_to_string = function
  | Wire e -> Protocol.wire_error_to_string e
  | Protocol_failure e -> Protocol.protocol_error_to_string e
  | Unexpected _ -> "unexpected response shape"
  | Disconnected -> "disconnected"

let connect ?(addr = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     Netio.close_quietly fd;
     raise e);
  { fd; chunk = Bytes.create 65536; data = ""; next_id = 1 }

let close t = Netio.close_quietly t.fd

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Netio.write_all t.fd (Protocol.encode_request ~id req);
  id

let rec recv t =
  match Protocol.decode_response t.data ~pos:0 with
  | Protocol.Frame { id; payload; next } ->
    t.data <- String.sub t.data next (String.length t.data - next);
    Ok (id, payload)
  | Protocol.Fail e -> Error (Protocol_failure e)
  | Protocol.Need_more -> (
    match Netio.read_chunk t.fd t.chunk with
    | None -> Error Disconnected
    | Some n ->
      t.data <- t.data ^ Bytes.sub_string t.chunk 0 n;
      recv t)

(* Synchronous round-trip: with no other request outstanding, the next
   response must answer ours. *)
let request t req =
  match send t req with
  | exception Unix.Unix_error _ -> Error Disconnected
  | id -> (
    match recv t with
    | Error _ as e -> e
    | Ok (rid, resp) ->
      if rid <> id then
        Error
          (Protocol_failure
             (Protocol.Malformed { detail = "response id mismatch" }))
      else Ok resp)

let ping t =
  match request t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Error e) -> Error (Wire e)
  | Ok r -> Error (Unexpected r)
  | Error _ as e -> e

let get t key =
  match request t (Protocol.Get { key }) with
  | Ok (Protocol.Value { value }) -> Ok (Some value)
  | Ok Protocol.Not_found -> Ok None
  | Ok (Protocol.Error e) -> Error (Wire e)
  | Ok r -> Error (Unexpected r)
  | Error _ as e -> e

let expect_ack = function
  | Ok Protocol.Ack -> Ok ()
  | Ok (Protocol.Error e) -> Error (Wire e)
  | Ok r -> Error (Unexpected r)
  | Error _ as e -> e

let put t ~key ~value = expect_ack (request t (Protocol.Put { key; value }))

let delete t ~key = expect_ack (request t (Protocol.Delete { key }))

let write_batch t items =
  expect_ack (request t (Protocol.Write_batch items))

let scan t ~lo ~hi ?limit () =
  match request t (Protocol.Scan { lo; hi; limit }) with
  | Ok (Protocol.Entries entries) -> Ok entries
  | Ok (Protocol.Error e) -> Error (Wire e)
  | Ok r -> Error (Unexpected r)
  | Error _ as e -> e

let stats t =
  match request t Protocol.Stats with
  | Ok (Protocol.Stats_reply kvs) -> Ok kvs
  | Ok (Protocol.Error e) -> Error (Wire e)
  | Ok r -> Error (Unexpected r)
  | Error _ as e -> e
