(* Small shared socket I/O helpers: full-frame writes and chunked reads.
   Kept in one spot so the rest of the subsystem speaks in whole frames. *)

(* Write the whole string, looping over short writes. Raises Unix_error
   (EPIPE, ECONNRESET, ...) when the peer is gone; callers treat that as a
   dead connection. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

(* One read into [chunk]; Some n bytes, or None on EOF / a dead socket.
   A connection closed under a blocked read surfaces as EBADF — that is
   the server's shutdown path, not an error. *)
let read_chunk fd chunk =
  match Unix.read fd chunk 0 (Bytes.length chunk) with
  | 0 -> None
  | n -> Some n
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
    None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Wake any thread blocked in [accept] or [read] on [fd]: on Linux a plain
   [close] does NOT interrupt a blocked syscall on the same descriptor, a
   [shutdown] does (accept fails, read returns EOF). *)
let shutdown_quietly fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* In-process servers must see EPIPE as an exception, not die on SIGPIPE
   when a peer disappears mid-write. Idempotent; a no-op off Unix. *)
let () =
  match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()
