module Sync = Wip_util.Sync
module Io_stats = Wip_storage.Io_stats
module Intf = Wip_kv.Store_intf

type pending = {
  items : (Wip_util.Ikey.kind * string * string) list;
  submitted_at : float;
  mutable verdict : (unit, Intf.write_error) result option; (* guarded_by: lock *)
}

type t = {
  lock : Sync.t;
  done_c : Sync.Cond.cond;
  mutable queue : pending list; (* newest first; guarded_by: lock *)
  mutable queued_bytes : int; (* guarded_by: lock *)
  mutable leader_active : bool; (* guarded_by: lock *)
  mutable stopping : bool; (* guarded_by: lock *)
  mutable window_count : int; (* guarded_by: lock *)
  mutable request_count : int; (* guarded_by: lock *)
  max_batch_bytes : int;
  max_delay_s : float;
  coalesce : bool;
  stats : Io_stats.t option;
  commit :
    (Wip_util.Ikey.kind * string * string) list array ->
    (unit, Intf.write_error) result array;
}

(* Below the shard locks (rank_shard_base = 1000) so a commit could even
   run with this lock held; above the pool. In practice the commit runs
   with no group-commit lock held at all — see [lead]. *)
let rank_group_commit = 500

let create ?(max_batch_bytes = 1024 * 1024) ?(max_delay_s = 0.002)
    ?(coalesce = true) ?stats ~commit () =
  if max_batch_bytes < 1 then
    invalid_arg "Group_commit.create: max_batch_bytes must be >= 1";
  if max_delay_s <= 0.0 then
    invalid_arg "Group_commit.create: max_delay_s must be > 0";
  let lock = Sync.create ~rank:rank_group_commit ~name:"group-commit" () in
  {
    lock;
    done_c = Sync.Cond.create lock;
    queue = [];
    queued_bytes = 0;
    leader_active = false;
    stopping = false;
    window_count = 0;
    request_count = 0;
    max_batch_bytes;
    max_delay_s;
    coalesce;
    stats;
    commit;
  }

let batch_bytes items =
  List.fold_left
    (fun acc (_, key, value) -> acc + String.length key + String.length value)
    0 items

let refused = Error (Intf.Store_degraded { reason = "group commit stopped" })

let record t ~requests ~started =
  match t.stats with
  | None -> ()
  | Some stats ->
    Io_stats.record_group_commit stats ~requests
      ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9))

(* Deliver verdicts to a window and hand the leader slot back. Always
   broadcasts — followers must never stay parked, least of all when the
   commit raised. *)
let finish t window ~count verdict_of =
  Sync.with_lock t.lock (fun () ->
      List.iteri (fun idx q -> q.verdict <- Some (verdict_of idx)) window;
      t.leader_active <- false;
      if count then begin
        t.window_count <- t.window_count + 1;
        t.request_count <- t.request_count + List.length window
      end;
      Sync.Cond.broadcast t.done_c)

(* Leader: drive [window] through the commit function with no group-commit
   lock held, so the next window accumulates during this one's fsync. *)
let lead t p window =
  let batches = Array.of_list (List.map (fun q -> q.items) window) in
  let verdicts =
    try t.commit batches
    with e ->
      let reason =
        Printf.sprintf "group commit window failed: %s" (Printexc.to_string e)
      in
      finish t window ~count:false (fun _ ->
          Error (Intf.Store_degraded { reason }));
      raise e
  in
  finish t window ~count:true (fun idx -> verdicts.(idx));
  let first =
    match window with q :: _ -> q.submitted_at | [] -> p.submitted_at
  in
  record t ~requests:(Array.length batches) ~started:first;
  (* [finish] published the verdict under the lock before broadcasting, and
     the leader's own pending entry is never reset once set.
     lint: allow R8 — leader reads its own just-published verdict *)
  match p.verdict with Some v -> v | None -> assert false

let submit t items =
  if items = [] then Ok ()
  else begin
    let p =
      { items; submitted_at = Unix.gettimeofday (); verdict = None }
    in
    let role =
      Sync.with_lock t.lock (fun () ->
          Sync.check_guard t.lock ~field:"queue";
          if t.stopping then `Refused
          else begin
            t.queue <- p :: t.queue;
            t.queued_bytes <- t.queued_bytes + batch_bytes items;
            let rec wait () =
              match p.verdict with
              | Some v -> `Done v
              | None ->
                if t.leader_active then begin
                  Sync.Cond.wait t.done_c;
                  wait ()
                end
                else begin
                  t.leader_active <- true;
                  if t.coalesce then begin
                    (* Fill the window: poll until the burst settles (one
                       quantum with no new arrivals — the natural case,
                       since anything queued now arrived during the
                       previous window's fsync), the bytes cap is hit, or
                       the max-delay clock from this submission expires.
                       A lone submitter pays one quantum, not the full
                       delay. *)
                    let last_len = ref (-1) in
                    ignore
                      (Sync.await t.lock ~quantum_s:0.00005
                         ~deadline:(p.submitted_at +. t.max_delay_s)
                         (fun () ->
                           (* The await contract runs the predicate with
                              [lock] held; the linter models the body as
                              released because the lock drops between polls.
                              lint: allow R8 — await pred holds the lock *)
                           let n = List.length t.queue in
                           let settled = n = !last_len in
                           last_len := n;
                           (* lint: allow R8 — await pred holds the lock *)
                           t.queued_bytes >= t.max_batch_bytes || t.stopping
                           || settled));
                    let window = List.rev t.queue in
                    t.queue <- [];
                    t.queued_bytes <- 0;
                    `Lead window
                  end
                  else begin
                    (* Baseline mode: the same serialized leader path, but
                       the window is forced to this one batch — one commit
                       (one append + fsync per touched shard) per request.
                       Anything else queued waits for the next leader. *)
                    t.queue <- List.filter (fun q -> not (q == p)) t.queue;
                    t.queued_bytes <- t.queued_bytes - batch_bytes p.items;
                    `Lead [ p ]
                  end
                end
            in
            wait ()
          end)
    in
    match role with
    | `Refused -> refused
    | `Done v -> v
    | `Lead window -> lead t p window
  end

let stop t =
  Sync.with_lock t.lock (fun () ->
      t.stopping <- true;
      let deadline = Unix.gettimeofday () +. 10.0 in
      ignore
        (Sync.await t.lock ~deadline (fun () ->
             (* lint: allow R8 — await pred holds the lock *)
             match t.queue with [] -> not t.leader_active | _ -> false)))

let windows t = Sync.with_lock t.lock (fun () -> t.window_count)

let requests t = Sync.with_lock t.lock (fun () -> t.request_count)
