(** Length-prefixed binary wire protocol for the WipDB service.

    Frame layout, both directions:

    {v
    fixed32  length of the rest of the frame (id + tag + body)
    fixed32  request id (echoed verbatim in the response)
    u8       opcode (request) / status (response)
    body     opcode-specific payload
    v}

    Request ids are chosen by the client; the server echoes them, and may
    complete requests {e out of order} — that is the whole pipelining
    mechanism, a slow scan's response simply arrives after the puts queued
    behind it. Integers are little-endian ({!Wip_util.Coding}); keys and
    values are length-prefixed raw bytes, so 0-length keys and values and
    arbitrary binary payloads are legal everywhere.

    Decoding never raises: malformed input comes back as a typed
    {!protocol_error}. A frame that has not fully arrived yet is
    [`Need_more] — the streaming case — while a frame whose declared
    length is satisfied but whose body does not parse is an error. *)

type request =
  | Ping
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Write_batch of (Wip_util.Ikey.kind * string * string) list
  | Scan of { lo : string; hi : string; limit : int option }
  | Stats

(** Engine refusals as they travel on the wire, mirroring
    {!Wip_kv.Store_intf.write_error} plus the server's own refusals. *)
type wire_error =
  | Backpressure of { shard : int; debt_bytes : int }
  | Store_degraded of { reason : string }
  | Txn_conflict of { key : string }
  | Bad_request of { message : string }

type response =
  | Ack
  | Value of { value : string }
  | Not_found
  | Entries of (string * string) list
  | Pong
  | Stats_reply of (string * int64) list
  | Error of wire_error

type protocol_error =
  | Truncated  (** a length field points past the end of the frame body *)
  | Oversized of { len : int }
      (** declared frame length exceeds {!max_frame_bytes} *)
  | Bad_tag of { tag : int }  (** unknown opcode or status byte *)
  | Malformed of { detail : string }
      (** body parsed but violates the grammar (bad kind byte, trailing
          bytes, varint overflow) *)

val protocol_error_to_string : protocol_error -> string

val wire_error_to_string : wire_error -> string

val max_frame_bytes : int
(** Upper bound on the declared frame length (8 MiB): bounds server-side
    buffering per connection and makes oversize framing a typed refusal
    instead of an allocation. *)

val write_error_to_wire : Wip_kv.Store_intf.write_error -> wire_error

val encode_request : id:int -> request -> string
(** Complete frame, length prefix included. [id] is truncated to 32 bits. *)

val encode_response : id:int -> response -> string

type 'a decoded =
  | Frame of { id : int; payload : 'a; next : int }
      (** one whole frame decoded; resume scanning at offset [next] *)
  | Need_more
      (** the buffer ends mid-frame — read more bytes and retry *)
  | Fail of protocol_error

val decode_request : string -> pos:int -> request decoded

val decode_response : string -> pos:int -> response decoded
