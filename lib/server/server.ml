module Sync = Wip_util.Sync
module Ikey = Wip_util.Ikey
module Intf = Wip_kv.Store_intf

type store_ops = {
  get : string -> string option;
  scan :
    lo:string -> hi:string -> limit:int option -> (string * string) list;
  commit :
    (Ikey.kind * string * string) list array ->
    (unit, Intf.write_error) result array;
  stats : unit -> (string * int64) list;
}

type conn = {
  fd : Unix.file_descr;
  write_lock : Sync.t; (* leaf: held only across one frame write *)
  mutable closed : bool; (* guarded_by: write_lock *)
  mutable outstanding : int; (* queued + executing jobs; guarded_by: qlock *)
}

type job = { conn : conn; id : int; req : Protocol.request }

(* Below the group-commit lock (500): a worker holding nothing calls
   Group_commit.submit, and the queue lock is never held across a job. *)
let rank_queue = 400

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  ops : store_ops;
  gc : Group_commit.t;
  pipeline_depth : int;
  stopping : bool Atomic.t;
  qlock : Sync.t;
  have_jobs : Sync.Cond.cond; (* signaled on push and on stop *)
  have_space : Sync.Cond.cond; (* signaled when a job completes *)
  jobs : job Queue.t; (* guarded_by: qlock *)
  mutable conns : conn list; (* guarded_by: qlock *)
  (* The two lifecycle fields are written in [start] before the handle
     escapes and in [stop] (idempotent via the [stopping] exchange). *)
  mutable workers : unit Domain.t list; (* guarded_by: none *)
  mutable acceptor : Thread.t option; (* guarded_by: none *)
}

let port t = t.bound_port

let group t = t.gc

(* ------------------------------------------------------------------ *)
(* Responses *)

let respond conn ~id resp =
  let frame = Protocol.encode_response ~id resp in
  Sync.with_lock conn.write_lock (fun () ->
      if not conn.closed then
        (* Deliberate leaf-lock flush: [write_lock] is held only across this
           one frame write, serializing concurrent responders per socket.
           lint: allow R9 — leaf write_lock, one frame per hold *)
        try Netio.write_all conn.fd frame
        with Unix.Unix_error _ ->
          (* Peer is gone; the reader thread owns the cleanup. *)
          conn.closed <- true)

let execute t req =
  let commit items =
    match Group_commit.submit t.gc items with
    | Ok () -> Protocol.Ack
    | Error e -> Protocol.Error (Protocol.write_error_to_wire e)
  in
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Get { key } -> (
    match t.ops.get key with
    | Some value -> Protocol.Value { value }
    | None -> Protocol.Not_found)
  | Protocol.Put { key; value } -> commit [ (Ikey.Value, key, value) ]
  | Protocol.Delete { key } -> commit [ (Ikey.Deletion, key, "") ]
  | Protocol.Write_batch items -> commit items
  | Protocol.Scan { limit = Some l; _ } when l < 0 ->
    (* Decode already rejects negative wire limits; this guards direct
       [store_ops] callers so a bad limit yields a typed error on this
       request instead of an exception in the worker. *)
    Protocol.Error (Protocol.Bad_request { message = "negative scan limit" })
  | Protocol.Scan { lo; hi; limit } ->
    Protocol.Entries (t.ops.scan ~lo ~hi ~limit)
  | Protocol.Stats -> Protocol.Stats_reply (t.ops.stats ())

let handle t { conn; id; req } =
  let resp =
    try execute t req
    with
    | Intf.Rejected e -> Protocol.Error (Protocol.write_error_to_wire e)
    | e ->
      (* A worker must survive anything a store can throw; the client gets
         a typed error instead of a hung request. *)
      Protocol.Error
        (Protocol.Store_degraded { reason = Printexc.to_string e })
  in
  respond conn ~id resp

(* ------------------------------------------------------------------ *)
(* Worker domains *)

let worker_loop t () =
  let rec next () =
    let job =
      Sync.with_lock t.qlock (fun () ->
          let rec take () =
            if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
            else if Atomic.get t.stopping then None
            else begin
              Sync.Cond.wait t.have_jobs;
              take ()
            end
          in
          take ())
    in
    match job with
    | None -> ()
    | Some job ->
      handle t job;
      Sync.with_lock t.qlock (fun () ->
          job.conn.outstanding <- job.conn.outstanding - 1;
          Sync.Cond.broadcast t.have_space);
      next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Per-connection reader *)

let enqueue t conn ~id req =
  Sync.with_lock t.qlock (fun () ->
      (* Pipeline bound: past [pipeline_depth] outstanding requests the
         reader parks here, stops draining the socket, and the client
         feels TCP backpressure. *)
      let rec wait_space () =
        if
          (not (Atomic.get t.stopping))
          && conn.outstanding >= t.pipeline_depth
        then begin
          Sync.Cond.wait t.have_space;
          wait_space ()
        end
      in
      wait_space ();
      Sync.check_guard t.qlock ~field:"outstanding";
      if not (Atomic.get t.stopping) then begin
        conn.outstanding <- conn.outstanding + 1;
        Queue.push { conn; id; req } t.jobs;
        Sync.Cond.signal t.have_jobs
      end)

let unregister t conn =
  Sync.with_lock conn.write_lock (fun () ->
      if not conn.closed then begin
        conn.closed <- true;
        Netio.close_quietly conn.fd
      end);
  Sync.with_lock t.qlock (fun () ->
      t.conns <- List.filter (fun c -> not (c == conn)) t.conns)

let reader t conn () =
  let chunk = Bytes.create 65536 in
  (* [data] holds unconsumed input; [pos] the scan offset into it. The
     consumed prefix is dropped whenever more input is needed. *)
  let rec loop data pos =
    match Protocol.decode_request data ~pos with
    | Protocol.Frame { id; payload; next } ->
      enqueue t conn ~id payload;
      loop data next
    | Protocol.Need_more -> (
      let data =
        if pos = 0 then data
        else String.sub data pos (String.length data - pos)
      in
      match Netio.read_chunk conn.fd chunk with
      | None -> ()
      | Some n -> loop (data ^ Bytes.sub_string chunk 0 n) 0)
    | Protocol.Fail e ->
      (* Typed decode failure. The stream is unsynchronized from here, so
         answer (id 0 — the frame's own id may be the corrupt part) and
         hang up. *)
      respond conn ~id:0
        (Protocol.Error
           (Protocol.Bad_request
              { message = Protocol.protocol_error_to_string e }))
  in
  (try loop "" 0 with Unix.Unix_error _ -> ());
  unregister t conn

(* ------------------------------------------------------------------ *)
(* Acceptor + lifecycle *)

let acceptor_loop t () =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let conn =
          {
            fd;
            write_lock = Sync.create ~name:"conn-write" ();
            closed = false;
            outstanding = 0;
          }
        in
        Sync.with_lock t.qlock (fun () -> t.conns <- conn :: t.conns);
        ignore (Thread.create (reader t conn) ());
        loop ()
      | exception Unix.Unix_error _ ->
        (* stop closed the listening socket *)
        ()
    end
  in
  loop ()

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* [shutdown], not [close]: a close alone leaves the acceptor blocked
       in [accept] forever on Linux. *)
    Netio.shutdown_quietly t.listen_fd;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    Netio.close_quietly t.listen_fd;
    (* Shut down every live connection: its blocked reader wakes on EOF,
       runs [unregister], and closes the descriptor itself. *)
    let conns = Sync.with_lock t.qlock (fun () -> t.conns) in
    List.iter (fun conn -> Netio.shutdown_quietly conn.fd) conns;
    (* Wake parked workers and readers so they observe [stopping]. *)
    Sync.with_lock t.qlock (fun () ->
        Sync.Cond.broadcast t.have_jobs;
        Sync.Cond.broadcast t.have_space);
    List.iter Domain.join t.workers;
    t.workers <- [];
    Group_commit.stop t.gc
  end

let start ?(addr = "127.0.0.1") ?(port = 0) ?(workers = 4)
    ?(pipeline_depth = 64) ?(group_commit = true)
    ?(max_batch_bytes = 1024 * 1024) ?(max_delay_s = 0.002) ?stats ~ops () =
  if workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if pipeline_depth < 1 then
    invalid_arg "Server.start: pipeline_depth must be >= 1";
  let gc =
    Group_commit.create ~max_batch_bytes ~max_delay_s ~coalesce:group_commit
      ?stats ~commit:ops.commit ()
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen listen_fd 128
   with e ->
     Netio.close_quietly listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let qlock = Sync.create ~rank:rank_queue ~name:"server-queue" () in
  let t =
    {
      listen_fd;
      bound_port;
      ops;
      gc;
      pipeline_depth;
      stopping = Atomic.make false;
      qlock;
      have_jobs = Sync.Cond.create qlock;
      have_space = Sync.Cond.create qlock;
      jobs = Queue.create ();
      conns = [];
      workers = [];
      acceptor = None;
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t.acceptor <- Some (Thread.create (acceptor_loop t) ());
  (* A server left running at process exit would keep the program alive. *)
  at_exit (fun () -> stop t);
  t
