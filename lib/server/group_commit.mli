(** Group commit: coalesce concurrent logical commits into one WAL
    append + fsync window.

    Workers call {!submit} with one logical batch each. The first
    submitter to find no window leader becomes the {e leader}: it takes
    the queue as one window — closing it as soon as the arrival burst
    settles (one poll quantum with no growth), the queue holds
    [max_batch_bytes], or [max_delay_s] has passed since its own
    arrival, whichever comes first — and drives it through the [commit]
    function (for the sharded front,
    {!Wip_concurrent.Sharded_store.Make.commit_batches} — one WAL append
    and one fsync per touched shard for the entire window). Every other
    submitter whose batch lands in an active window parks on a
    {!Wip_util.Sync.Cond} condition and is handed its own typed verdict
    when the window completes — leader/follower handoff, no polling.
    Most coalescing is {e natural}: batches that arrive while a window is
    inside its fsync queue up and ship together in the next one, so a
    lone submitter pays one quantum of fill wait, never the full delay.

    [submit] returning [Ok ()] means the batch is {e durable} (applied
    and fsynced); a server may acknowledge it. The commit runs with no
    group-commit lock held, so the next window fills while the current
    one is inside its fsync — the dynamic that makes window size track
    device latency. If the commit function raises (a crash in
    fault-injection runs), followers of the in-flight window are failed
    with a typed [Store_degraded] verdict — never left parked — and the
    exception propagates out of the leader's [submit].

    With [coalesce:false] every submit commits alone (one append + fsync
    per request) through the same serialized leader path: the baseline
    the group-commit benchmark compares against. *)

type t

val create :
  ?max_batch_bytes:int ->
  ?max_delay_s:float ->
  ?coalesce:bool ->
  ?stats:Wip_storage.Io_stats.t ->
  commit:
    ((Wip_util.Ikey.kind * string * string) list array ->
    (unit, Wip_kv.Store_intf.write_error) result array) ->
  unit ->
  t
(** [commit] receives the window's batches in submission order and must
    return one verdict per batch, in order, where [Ok] implies durable.
    [max_batch_bytes] (default 1 MiB) closes a window early;
    [max_delay_s] (default 2 ms) is the hard ceiling on the leader's fill
    wait (the window usually closes much sooner, when arrivals settle).
    [stats] receives one {!Wip_storage.Io_stats.record_group_commit}
    per window. *)

val submit :
  t ->
  (Wip_util.Ikey.kind * string * string) list ->
  (unit, Wip_kv.Store_intf.write_error) result
(** Blocks until the window holding this batch commits (bounded by the
    window clock plus the commit itself). [Ok ()] = durable. After
    {!stop}, returns [Store_degraded]. *)

val stop : t -> unit
(** Refuse new submissions and wait for in-flight windows to drain. *)

val windows : t -> int
(** Windows committed so far (each cost one commit-function call). *)

val requests : t -> int
(** Logical batches carried by those windows; [requests - windows] is the
    number of commit calls (and their fsyncs) coalescing saved. *)
