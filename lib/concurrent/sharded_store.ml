module Merge_iter = Wip_sstable.Merge_iter
module Sync = Wip_util.Sync

module Make (S : Wip_kv.Store_intf.S) = struct
  type shard = {
    lo : string; (* inclusive lower key bound; "" for the first shard *)
    store : S.t;
    lock : Sync.t;
    mutable claimed : bool; (* held by a pool worker; guarded by pool_lock *)
  }

  type t = {
    shards : shard array; (* sorted by lo *)
    budget : int;
    idle_sleep : float;
    stopping : bool Atomic.t;
    cycles : int Atomic.t;
    pool_lock : Sync.t;
    mutable workers : unit Domain.t list;
  }

  let shard_count t = Array.length t.shards

  let pool_size t = List.length t.workers

  let compaction_cycles t = Atomic.get t.cycles

  let locked_shard sh f = Sync.with_lock sh.lock (fun () -> f sh.store)

  (* Rightmost shard whose lower bound <= key (same rule as the engine's own
     bucket directory). *)
  let shard_index t key =
    let arr = t.shards in
    let rec bs lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if String.compare arr.(mid).lo key <= 0 then bs mid hi else bs lo mid
    in
    bs 0 (Array.length arr)

  (* ---------------------------------------------------------------- *)
  (* Compaction pool: workers pull per-shard maintenance work, always
     serving the shard with the largest pending-work estimate that no other
     worker holds. The estimate is read WITHOUT the shard lock (the
     Store_intf.maintenance_pending contract) so scanning never stalls
     behind foreground traffic; staleness only misprioritizes a cycle. *)

  let claim_shard t =
    Sync.with_lock t.pool_lock (fun () ->
        let best = ref None in
        Array.iter
          (fun sh ->
            if not sh.claimed then begin
              let p = S.maintenance_pending sh.store in
              if p > 0 then
                match !best with
                | Some (_, bp) when bp >= p -> ()
                | _ -> best := Some (sh, p)
            end)
          t.shards;
        (match !best with Some (sh, _) -> sh.claimed <- true | None -> ());
        Option.map fst !best)

  let release_shard t sh =
    Sync.with_lock t.pool_lock (fun () -> sh.claimed <- false)

  let worker t () =
    while not (Atomic.get t.stopping) do
      match claim_shard t with
      | Some sh ->
        Fun.protect
          ~finally:(fun () -> release_shard t sh)
          (fun () ->
            (* Engines only raise on injected faults; the pool is not meant
               to drive fault-injection envs, so a failed cycle is dropped
               rather than taking the whole pool down. *)
            try locked_shard sh (fun s -> S.maintenance s ~budget_bytes:t.budget ())
            with _ -> ());
        Atomic.incr t.cycles;
        (* Yield so foreground threads can take the shard lock. *)
        Unix.sleepf t.idle_sleep
      | None -> Unix.sleepf (t.idle_sleep *. 10.0)
    done

  (* ---------------------------------------------------------------- *)
  (* Lifecycle *)

  let maintenance t ?budget_bytes () =
    Array.iter
      (fun sh -> locked_shard sh (fun s -> S.maintenance s ?budget_bytes ()))
      t.shards

  let stop t =
    if not (Atomic.exchange t.stopping true) then begin
      List.iter Domain.join t.workers;
      t.workers <- [];
      (* Drain to quiescence so post-stop reads see fully-compacted state. *)
      maintenance t ()
    end

  let create ?(pool_threads = 7) ?(budget_per_cycle = 1024 * 1024)
      ?(idle_sleep = 0.001) shards =
    (match shards with
    | [] -> invalid_arg "Sharded_store.create: at least one shard"
    | (lo0, _) :: _ ->
      if lo0 <> "" then
        invalid_arg "Sharded_store.create: first shard's lower bound must be \"\"");
    let rec check_sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if String.compare a b >= 0 then
          invalid_arg
            "Sharded_store.create: shard lower bounds must be strictly increasing";
        check_sorted rest
      | _ -> ()
    in
    check_sorted shards;
    let t =
      {
        shards =
          Array.of_list
            (List.mapi
               (fun i (lo, store) ->
                 {
                   lo;
                   store;
                   (* Rank = shard index: cross-shard operations acquire in
                      ascending shard order, which the debug validator can
                      then check as ascending ranks. *)
                   lock =
                     Sync.create
                       ~rank:(Sync.rank_shard_base + i)
                       ~name:(Printf.sprintf "shard-%d" i)
                       ();
                   claimed = false;
                 })
               shards);
        budget = budget_per_cycle;
        idle_sleep;
        stopping = Atomic.make false;
        cycles = Atomic.make 0;
        pool_lock = Sync.create ~rank:Sync.rank_pool ~name:"pool" ();
        workers = [];
      }
    in
    t.workers <- List.init (max 0 pool_threads) (fun _ -> Domain.spawn (worker t));
    (* A pool left running at process exit would keep the program alive;
       tests and benches that fail mid-flight still shut down cleanly. *)
    if t.workers <> [] then at_exit (fun () -> stop t);
    t

  (* ---------------------------------------------------------------- *)
  (* Single-shard operations *)

  let put t ~key ~value =
    locked_shard t.shards.(shard_index t key) (fun s -> S.put s ~key ~value)

  let delete t ~key =
    locked_shard t.shards.(shard_index t key) (fun s -> S.delete s ~key)

  let get t key = locked_shard t.shards.(shard_index t key) (fun s -> S.get s key)

  let with_shard t ~key f = locked_shard t.shards.(shard_index t key) f

  let fold_shards t ~init ~f =
    Array.fold_left (fun acc sh -> locked_shard sh (f acc)) init t.shards

  let maintenance_pending t =
    Array.fold_left
      (fun acc sh -> acc + S.maintenance_pending sh.store)
      0 t.shards

  let flush t = Array.iter (fun sh -> locked_shard sh S.flush) t.shards

  (* ---------------------------------------------------------------- *)
  (* Cross-shard operations. Whenever more than one shard lock is needed,
     locks are taken in ascending shard order — one canonical order across
     all writers, readers and pool workers (which take a single lock), so no
     lock cycle can form. *)

  let lock_range t i0 i1 f =
    let locks = List.init (i1 - i0 + 1) (fun k -> t.shards.(i0 + k).lock) in
    Sync.with_locks_ordered locks f

  let write_batch t items =
    if items <> [] then begin
      let n = Array.length t.shards in
      let groups = Array.make n [] in
      List.iter
        (fun ((_, key, _) as item) ->
          let i = shard_index t key in
          groups.(i) <- item :: groups.(i))
        items;
      let touched = ref [] in
      for i = n - 1 downto 0 do
        if groups.(i) <> [] then begin
          groups.(i) <- List.rev groups.(i);
          touched := i :: !touched
        end
      done;
      match !touched with
      | [] -> ()
      | [ i ] -> locked_shard t.shards.(i) (fun s -> S.write_batch s groups.(i))
      | is ->
        (* The batch is atomic per shard (each sub-batch is one WAL record
           in its shard's engine) and isolated across shards: all involved
           locks are held for the whole application, so no reader observes
           a half-applied batch. *)
        let i0 = List.hd is and i1 = List.nth is (List.length is - 1) in
        lock_range t i0 i1 (fun () ->
            List.iter (fun i -> S.write_batch t.shards.(i).store groups.(i)) is)
    end

  let scan t ~lo ~hi ?limit () =
    if String.compare lo hi >= 0 then []
    else begin
      let n = Array.length t.shards in
      let i0 = shard_index t lo in
      let rec last j =
        if j + 1 < n && String.compare t.shards.(j + 1).lo hi < 0 then
          last (j + 1)
        else j
      in
      let i1 = last i0 in
      (* Collect every shard's result while holding all overlapping locks:
         a consistent cut — the merged result corresponds to one point in
         time across shards, as if taken under a global snapshot. *)
      let per_shard =
        lock_range t i0 i1 (fun () ->
            List.init (i1 - i0 + 1) (fun k ->
                S.scan t.shards.(i0 + k).store ~lo ~hi ?limit ()))
      in
      (* Shard ranges are disjoint, so this is morally a concatenation, but
         routing the streams through the k-way merge keeps the result sorted
         even if a caller hands in shards whose ranges overlap the engine's
         own boundaries imperfectly. The results are plain user-key pairs, so
         merge on those directly — no internal-key wrapping. *)
      let seqs = List.map List.to_seq per_shard in
      let merged = Merge_iter.merge_by ~compare:String.compare seqs in
      let merged =
        match limit with Some l -> Seq.take l merged | None -> merged
      in
      List.of_seq merged
    end
end
