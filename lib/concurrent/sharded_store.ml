module Merge_iter = Wip_sstable.Merge_iter
module Sync = Wip_util.Sync
module Io_stats = Wip_storage.Io_stats
module Intf = Wip_kv.Store_intf

module Make (S : Wip_kv.Store_intf.S) = struct
  type shard = {
    lo : string; (* inclusive lower key bound; "" for the first shard *)
    store : S.t;
    lock : Sync.t;
    mutable claimed : bool; (* held by a pool worker; guarded_by: pool_lock *)
    mutable inflight : int; (* guarded_by: lock — bytes admitted since the
           pool last serviced this shard (priority reads it racily, advisory) *)
  }

  type t = {
    shards : shard array; (* sorted by lo *)
    budget : int;
    idle_sleep : float;
    stopping : bool Atomic.t;
    cycles : int Atomic.t;
    pool_lock : Sync.t;
    (* Written in [create] before the front is shared and in [stop] (idempotent
       via the [stopping] exchange); never touched concurrently. *)
    mutable workers : unit Domain.t list; (* guarded_by: none *)
    (* Admission control over per-shard write debt. *)
    admission : bool;
    slowdown_mark : int;
    stop_mark : int;
    inflight_limit : int;
    stall_deadline_s : float;
  }

  let shard_count t = Array.length t.shards

  let pool_size t = List.length t.workers

  let compaction_cycles t = Atomic.get t.cycles

  let locked_shard sh f = Sync.with_lock sh.lock (fun () -> f sh.store)

  (* Rightmost shard whose lower bound <= key (same rule as the engine's own
     bucket directory). *)
  let shard_index t key =
    let arr = t.shards in
    let rec bs lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if String.compare arr.(mid).lo key <= 0 then bs mid hi else bs lo mid
    in
    bs 0 (Array.length arr)

  (* ---------------------------------------------------------------- *)
  (* Compaction pool: workers pull per-shard maintenance work, always
     serving the shard with the largest pending-work estimate that no other
     worker holds. The estimate is read WITHOUT the shard lock (the
     Store_intf.maintenance_pending contract) so scanning never stalls
     behind foreground traffic; staleness only misprioritizes a cycle. *)

  let claim_shard t =
    Sync.with_lock t.pool_lock (fun () ->
        let best = ref None in
        Array.iter
          (fun sh ->
            if not sh.claimed then begin
              (* In-flight bytes count toward priority so the pool also
                 visits shards whose engines are quiescent but whose debt
                 budget needs resetting (racy read — advisory, like the
                 pending estimate). *)
              (* Advisory racy read, declared in the field's contract:
                 staleness only misprioritizes one pool cycle.
                 lint: allow R8 — racy advisory priority read *)
              let p = S.maintenance_pending sh.store + sh.inflight in
              if p > 0 then
                match !best with
                | Some (_, bp) when bp >= p -> ()
                | _ -> best := Some (sh, p)
            end)
          t.shards;
        (match !best with Some (sh, _) -> sh.claimed <- true | None -> ());
        Option.map fst !best)

  let release_shard t sh =
    Sync.with_lock t.pool_lock (fun () -> sh.claimed <- false)

  let worker t () =
    while not (Atomic.get t.stopping) do
      match claim_shard t with
      | Some sh ->
        Fun.protect
          ~finally:(fun () -> release_shard t sh)
          (fun () ->
            (* Engines only raise on injected faults; the pool is not meant
               to drive fault-injection envs, so a failed cycle is dropped
               rather than taking the whole pool down. A completed cycle
               resets the shard's in-flight byte budget: the pool has
               serviced it, so stalled writers may proceed. *)
            try
              Sync.with_lock sh.lock (fun () ->
                  S.maintenance sh.store ~budget_bytes:t.budget ();
                  sh.inflight <- 0)
            with _ -> ());
        Atomic.incr t.cycles;
        (* Yield so foreground threads can take the shard lock. *)
        Unix.sleepf t.idle_sleep
      | None -> Unix.sleepf (t.idle_sleep *. 10.0)
    done

  (* ---------------------------------------------------------------- *)
  (* Lifecycle *)

  let maintenance t ?budget_bytes () =
    Array.iter
      (fun sh ->
        Sync.with_lock sh.lock (fun () ->
            S.maintenance sh.store ?budget_bytes ();
            sh.inflight <- 0))
      t.shards

  let stop t =
    if not (Atomic.exchange t.stopping true) then begin
      List.iter Domain.join t.workers;
      t.workers <- [];
      (* Drain to quiescence so post-stop reads see fully-compacted state.
         A degraded shard refuses maintenance — leave it be; its reads
         still serve from the runs it already has. *)
      Array.iter
        (fun sh ->
          try
            Sync.with_lock sh.lock (fun () ->
                S.maintenance sh.store ();
                sh.inflight <- 0)
          with Intf.Rejected _ -> ())
        t.shards
    end

  let create ?(pool_threads = 7) ?(budget_per_cycle = 1024 * 1024)
      ?(idle_sleep = 0.001) ?(admission = true)
      ?(slowdown_watermark_bytes = 2 * 1024 * 1024)
      ?(stop_watermark_bytes = 4 * 1024 * 1024)
      ?(inflight_limit_bytes = 4 * 1024 * 1024) ?(stall_deadline_s = 1.0)
      shards =
    if slowdown_watermark_bytes < 1 || stop_watermark_bytes < slowdown_watermark_bytes
    then
      invalid_arg
        "Sharded_store.create: need 1 <= slowdown_watermark_bytes <= \
         stop_watermark_bytes";
    if inflight_limit_bytes < 1 then
      invalid_arg "Sharded_store.create: inflight_limit_bytes must be >= 1";
    if stall_deadline_s <= 0.0 then
      invalid_arg "Sharded_store.create: stall_deadline_s must be > 0";
    (match shards with
    | [] -> invalid_arg "Sharded_store.create: at least one shard"
    | (lo0, _) :: _ ->
      if lo0 <> "" then
        invalid_arg "Sharded_store.create: first shard's lower bound must be \"\"");
    let rec check_sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if String.compare a b >= 0 then
          invalid_arg
            "Sharded_store.create: shard lower bounds must be strictly increasing";
        check_sorted rest
      | _ -> ()
    in
    check_sorted shards;
    let t =
      {
        shards =
          Array.of_list
            (List.mapi
               (fun i (lo, store) ->
                 {
                   lo;
                   store;
                   (* Rank = shard index: cross-shard operations acquire in
                      ascending shard order, which the debug validator can
                      then check as ascending ranks. *)
                   lock =
                     Sync.create
                       ~rank:(Sync.rank_shard_base + i)
                       ~name:(Printf.sprintf "shard-%d" i)
                       ();
                   claimed = false;
                   inflight = 0;
                 })
               shards);
        budget = budget_per_cycle;
        idle_sleep;
        stopping = Atomic.make false;
        cycles = Atomic.make 0;
        pool_lock = Sync.create ~rank:Sync.rank_pool ~name:"pool" ();
        workers = [];
        admission;
        slowdown_mark = slowdown_watermark_bytes;
        stop_mark = stop_watermark_bytes;
        inflight_limit = inflight_limit_bytes;
        stall_deadline_s;
      }
    in
    t.workers <- List.init (max 0 pool_threads) (fun _ -> Domain.spawn (worker t));
    (* A pool left running at process exit would keep the program alive;
       tests and benches that fail mid-flight still shut down cleanly. *)
    if t.workers <> [] then at_exit (fun () -> stop t);
    t

  (* ---------------------------------------------------------------- *)
  (* Admission control.

     Each shard carries a write-debt estimate: the engine's advisory
     [maintenance_pending] plus the in-flight bytes admitted since the pool
     last serviced the shard. A writer whose batch would push the debt past
     the stop watermark (or the in-flight bytes past their budget) stalls in
     {!Sync.await} — the shard lock is released between checks, so a pool
     worker can claim the shard and drain — until the debt recedes or the
     stall deadline passes, at which point the write is refused with a
     typed [Backpressure] rather than hanging. The slowdown band waits
     briefly and then admits regardless. *)

  let slowdown_wait_s = 0.005

  (* requires: lock *)
  let admit t i sh ~bytes =
    if not t.admission then Ok ()
    else begin
      (* A quiescent engine has no residual debt; refresh the budget so
         eager-compacting engines (and pool-less fronts) never stall on
         bytes that were drained inline. *)
      if S.maintenance_pending sh.store = 0 then sh.inflight <- 0;
      let debt () = S.maintenance_pending sh.store + sh.inflight in
      let fits () =
        debt () + bytes <= t.stop_mark
        && sh.inflight + bytes <= t.inflight_limit
      in
      if fits () && debt () <= t.slowdown_mark then Ok ()
      else begin
        let started = Unix.gettimeofday () in
        let deadline = started +. t.stall_deadline_s in
        let admitted =
          if fits () then begin
            (* Slowdown band: give the pool a moment, then admit anyway. *)
            ignore
              (Sync.await sh.lock
                 ~deadline:(min deadline (started +. slowdown_wait_s))
                 (fun () -> debt () <= t.slowdown_mark));
            true
          end
          else Sync.await sh.lock ~deadline fits
        in
        Io_stats.record_stall (S.io_stats sh.store)
          ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
        if admitted then Ok ()
        else Error (Intf.Backpressure { shard = i; debt_bytes = debt () })
      end
    end

  let batch_bytes items =
    List.fold_left
      (fun acc (_, key, value) ->
        acc + String.length key + String.length value)
      0 items

  (* Re-tag an engine-level refusal with the front end's shard index. *)
  let retag i = function
    | Intf.Backpressure { debt_bytes; _ } ->
      Intf.Backpressure { shard = i; debt_bytes }
    | (Intf.Store_degraded _ | Intf.Txn_conflict _) as e -> e

  (* Admission, then the engine's own guarded write path.
     requires: lock *)
  let sub_batch t i sh items =
    match S.health sh.store with
    | Intf.Degraded { reason } -> Error (Intf.Store_degraded { reason })
    | Intf.Healthy -> (
      let bytes = batch_bytes items in
      match admit t i sh ~bytes with
      | Error _ as e -> e
      | Ok () -> (
        (* Debug witness that the [requires] precondition really held. *)
        Sync.check_guard sh.lock ~field:"inflight";
        match S.try_write_batch sh.store items with
        | Ok () ->
          sh.inflight <- sh.inflight + bytes;
          Ok ()
        | Error e -> Error (retag i e)))

  (* ---------------------------------------------------------------- *)
  (* Single-shard operations *)

  let get t key = locked_shard t.shards.(shard_index t key) (fun s -> S.get s key)

  let with_shard t ~key f = locked_shard t.shards.(shard_index t key) f

  let fold_shards t ~init ~f =
    Array.fold_left (fun acc sh -> locked_shard sh (f acc)) init t.shards

  let maintenance_pending t =
    Array.fold_left
      (fun acc sh -> acc + S.maintenance_pending sh.store)
      0 t.shards

  let flush t = Array.iter (fun sh -> locked_shard sh S.flush) t.shards

  (* ---------------------------------------------------------------- *)
  (* Cross-shard operations. Whenever more than one shard lock is needed,
     locks are taken in ascending shard order — one canonical order across
     all writers, readers and pool workers (which take a single lock), so no
     lock cycle can form. *)

  let lock_range t i0 i1 f =
    let locks = List.init (i1 - i0 + 1) (fun k -> t.shards.(i0 + k).lock) in
    Sync.with_locks_ordered locks f

  let try_write_batch t items =
    if items = [] then Ok ()
    else begin
      let n = Array.length t.shards in
      let groups = Array.make n [] in
      List.iter
        (fun ((_, key, _) as item) ->
          let i = shard_index t key in
          groups.(i) <- item :: groups.(i))
        items;
      let touched = ref [] in
      for i = n - 1 downto 0 do
        if groups.(i) <> [] then begin
          groups.(i) <- List.rev groups.(i);
          touched := i :: !touched
        end
      done;
      match !touched with
      | [] -> Ok ()
      | [ i ] ->
        let sh = t.shards.(i) in
        Sync.with_lock sh.lock (fun () -> sub_batch t i sh groups.(i))
      | is ->
        (* The batch is atomic per shard (each sub-batch is one WAL record
           in its shard's engine) and isolated across shards: all involved
           locks are held for the whole application, so no reader observes
           a half-applied batch. *)
        let i0 = List.hd is and i1 = List.nth is (List.length is - 1) in
        lock_range t i0 i1 (fun () ->
            (* Admission across several held locks cannot stall: awaiting
               would release only one of them. Check every shard's debt up
               front and fail fast; only when all admit does anything apply. *)
            let refused =
              List.find_map
                (fun i ->
                  let sh = t.shards.(i) in
                  match S.health sh.store with
                  | Intf.Degraded { reason } ->
                    Some (Intf.Store_degraded { reason })
                  | Intf.Healthy ->
                    if not t.admission then None
                    else begin
                      if S.maintenance_pending sh.store = 0 then
                        sh.inflight <- 0;
                      let bytes = batch_bytes groups.(i) in
                      let debt =
                        S.maintenance_pending sh.store + sh.inflight
                      in
                      if
                        debt + bytes > t.stop_mark
                        || sh.inflight + bytes > t.inflight_limit
                      then
                        Some (Intf.Backpressure { shard = i; debt_bytes = debt })
                      else None
                    end)
                is
            in
            match refused with
            | Some e -> Error e
            | None ->
              (* A failure mid-application leaves earlier sub-batches
                 applied: the documented contract is atomic per shard, not
                 across shards, and the failing shard's engine has already
                 flipped itself Degraded. *)
              let rec apply = function
                | [] -> Ok ()
                | i :: rest -> (
                  let sh = t.shards.(i) in
                  match S.try_write_batch sh.store groups.(i) with
                  | Ok () ->
                    sh.inflight <- sh.inflight + batch_bytes groups.(i);
                    apply rest
                  | Error e -> Error (retag i e))
              in
              apply is)
    end

  (* ---------------------------------------------------------------- *)
  (* Group commit: several independent logical batches committed as one
     unit — per shard, one WAL append carrying one record per batch
     (S.try_write_batches) followed by one durability barrier (S.log_sync).
     Each batch gets its own verdict: a batch fails if any shard it touches
     refuses admission, fails to apply, or fails to sync — an [Ok] result
     therefore means "durable", which is what lets the server ack it. As
     with [try_write_batch], a batch is atomic per shard, not across
     shards. *)

  let commit_batches t batches =
    let nb = Array.length batches in
    let results = Array.make nb (Ok ()) in
    if nb = 0 then results
    else begin
      let n = Array.length t.shards in
      (* groups.(i).(j): batch [j]'s items routed to shard [i] (reversed). *)
      let groups = Array.make_matrix n nb [] in
      let batch_shards = Array.make nb [] in
      Array.iteri
        (fun j items ->
          List.iter
            (fun ((_, key, _) as item) ->
              let i = shard_index t key in
              if groups.(i).(j) = [] then
                batch_shards.(j) <- i :: batch_shards.(j);
              groups.(i).(j) <- item :: groups.(i).(j))
            items)
        batches;
      let touched = ref [] in
      for i = n - 1 downto 0 do
        if Array.exists (fun g -> g <> []) groups.(i) then begin
          for j = 0 to nb - 1 do
            groups.(i).(j) <- List.rev groups.(i).(j)
          done;
          touched := i :: !touched
        end
      done;
      match !touched with
      | [] -> results
      | is ->
        let shard_err = Array.make n None in
        let shard_bytes i =
          Array.fold_left
            (fun acc g -> acc + batch_bytes g)
            0 groups.(i)
        in
        let locks = List.map (fun i -> t.shards.(i).lock) is in
        Sync.with_locks_ordered locks (fun () ->
            (* Health + admission per shard, over the window's merged
               bytes. With a single shard involved the stall-capable path
               applies (only its own lock is held, so awaiting is safe);
               with several locks held, fail fast like try_write_batch. *)
            List.iter
              (fun i ->
                let sh = t.shards.(i) in
                match S.health sh.store with
                | Intf.Degraded { reason } ->
                  shard_err.(i) <- Some (Intf.Store_degraded { reason })
                | Intf.Healthy -> (
                  let bytes = shard_bytes i in
                  match is with
                  | [ _ ] -> (
                    match admit t i sh ~bytes with
                    | Ok () -> ()
                    | Error e -> shard_err.(i) <- Some e)
                  | _ ->
                    if t.admission then begin
                      if S.maintenance_pending sh.store = 0 then
                        sh.inflight <- 0;
                      let debt =
                        S.maintenance_pending sh.store + sh.inflight
                      in
                      if
                        debt + bytes > t.stop_mark
                        || sh.inflight + bytes > t.inflight_limit
                      then
                        shard_err.(i) <-
                          Some
                            (Intf.Backpressure { shard = i; debt_bytes = debt })
                    end))
              is;
            (* A batch touching a refusing shard is out of the window. *)
            Array.iteri
              (fun j is_j ->
                match
                  List.find_map (fun i -> shard_err.(i)) is_j
                with
                | Some e -> results.(j) <- Error e
                | None -> ())
              batch_shards;
            (* Apply: per shard, surviving batches as one commit unit. *)
            List.iter
              (fun i ->
                if shard_err.(i) = None then begin
                  let sh = t.shards.(i) in
                  let subs = ref [] in
                  let bytes = ref 0 in
                  for j = nb - 1 downto 0 do
                    if results.(j) = Ok () && groups.(i).(j) <> [] then begin
                      subs := groups.(i).(j) :: !subs;
                      bytes := !bytes + batch_bytes groups.(i).(j)
                    end
                  done;
                  if !subs <> [] then
                    match S.try_write_batches sh.store !subs with
                    | Ok () -> sh.inflight <- sh.inflight + !bytes
                    | Error e -> shard_err.(i) <- Some (retag i e)
                end)
              is;
            (* Durability barrier, one per touched shard that applied
               anything. A sync failure poisons every batch on that shard:
               nothing un-synced may be acked. *)
            List.iter
              (fun i ->
                if shard_err.(i) = None then
                  let sh = t.shards.(i) in
                  let applied =
                    Array.exists2
                      (fun r g -> r = Ok () && g <> [])
                      results groups.(i)
                  in
                  if applied then
                    try S.log_sync sh.store
                    with Intf.Rejected e -> shard_err.(i) <- Some (retag i e))
              is;
            Array.iteri
              (fun j is_j ->
                if results.(j) = Ok () then
                  match List.find_map (fun i -> shard_err.(i)) is_j with
                  | Some e -> results.(j) <- Error e
                  | None -> ())
              batch_shards;
            results)
    end

  let write_batch t items =
    match try_write_batch t items with
    | Ok () -> ()
    | Error e -> raise (Intf.Rejected e)

  let put t ~key ~value =
    write_batch t [ (Wip_util.Ikey.Value, key, value) ]

  let delete t ~key = write_batch t [ (Wip_util.Ikey.Deletion, key, "") ]

  (* ---------------------------------------------------------------- *)
  (* Health aggregation: the front is degraded as soon as any shard is. *)

  let health t =
    let deg = ref None in
    Array.iter
      (fun sh ->
        if Option.is_none !deg then
          match Sync.with_lock sh.lock (fun () -> S.health sh.store) with
          | Intf.Healthy -> ()
          | Intf.Degraded _ as d -> deg := Some d)
      t.shards;
    Option.value !deg ~default:Intf.Healthy

  let probe t =
    let deg = ref None in
    Array.iter
      (fun sh ->
        match Sync.with_lock sh.lock (fun () -> S.probe sh.store) with
        | Intf.Healthy -> ()
        | Intf.Degraded _ as d -> if Option.is_none !deg then deg := Some d)
      t.shards;
    Option.value !deg ~default:Intf.Healthy

  let inflight_bytes t =
    Array.fold_left
      (fun acc sh -> acc + Sync.with_lock sh.lock (fun () -> sh.inflight))
      0 t.shards

  let scan t ~lo ~hi ?limit () =
    if String.compare lo hi >= 0 then []
    else begin
      let n = Array.length t.shards in
      let i0 = shard_index t lo in
      let rec last j =
        if j + 1 < n && String.compare t.shards.(j + 1).lo hi < 0 then
          last (j + 1)
        else j
      in
      let i1 = last i0 in
      (* Collect every shard's result while holding all overlapping locks:
         a consistent cut — the merged result corresponds to one point in
         time across shards, as if taken under a global snapshot. *)
      let per_shard =
        lock_range t i0 i1 (fun () ->
            List.init (i1 - i0 + 1) (fun k ->
                S.scan t.shards.(i0 + k).store ~lo ~hi ?limit ()))
      in
      (* Shard ranges are disjoint, so this is morally a concatenation, but
         routing the streams through the k-way merge keeps the result sorted
         even if a caller hands in shards whose ranges overlap the engine's
         own boundaries imperfectly. The results are plain user-key pairs, so
         merge on those directly — no internal-key wrapping. *)
      let seqs = List.map List.to_seq per_shard in
      (* lint: allow R7 — disjoint shard streams, no cross-shard view *)
      let merged = Merge_iter.merge_by ~compare:String.compare seqs in
      let merged =
        match limit with
        | Some l -> Seq.take (max 0 l) merged
        | None -> merged
      in
      List.of_seq merged
    end

  (* ---------------------------------------------------------------- *)
  (* Pinned snapshots. One engine snapshot per shard, all acquired while
     holding every shard lock in canonical ascending order, so the
     per-shard pinned sequence numbers form one consistent cut: no write
     can land between two shards' pins. Reads at the snapshot afterwards
     lock shards one at a time — consistency survives the locks dropping
     because each shard's engine pins its own sequence number (and keeps
     retired tables readable) until release. *)

  type snapshot = Intf.snapshot array (* one per shard, in shard order *)

  let snapshot t =
    let locks = Array.to_list (Array.map (fun sh -> sh.lock) t.shards) in
    Sync.with_locks_ordered locks (fun () ->
        Array.map (fun sh -> S.snapshot sh.store) t.shards)

  let release t (snap : snapshot) =
    (* Engine-level release is idempotent, so releasing a sharded snapshot
       twice is harmless. One lock at a time: release never needs a
       cross-shard cut. *)
    Array.iteri
      (fun i s ->
        Sync.with_lock t.shards.(i).lock (fun () -> Intf.release s))
      snap

  let snapshot_seqs (snap : snapshot) = Array.map Intf.snapshot_seq snap

  let get_at t key ~snapshot:(snap : snapshot) =
    let i = shard_index t key in
    locked_shard t.shards.(i) (fun s -> S.get_at s key ~snapshot:snap.(i))

  let scan_at t ~lo ~hi ?limit ~snapshot:(snap : snapshot) () =
    if String.compare lo hi >= 0 then []
    else begin
      let n = Array.length t.shards in
      let i0 = shard_index t lo in
      let rec last j =
        if j + 1 < n && String.compare t.shards.(j + 1).lo hi < 0 then
          last (j + 1)
        else j
      in
      let i1 = last i0 in
      (* Unlike the unsnapshotted [scan], shards are visited one at a
         time: the pinned per-shard snapshots already fix what each shard
         may return, so holding all the locks across the collection would
         buy nothing. *)
      let per_shard =
        List.init (i1 - i0 + 1) (fun k ->
            let i = i0 + k in
            locked_shard t.shards.(i) (fun s ->
                S.scan_at s ~lo ~hi ?limit ~snapshot:snap.(i) ()))
      in
      let seqs = List.map List.to_seq per_shard in
      (* lint: allow R7 — disjoint shard streams, no cross-shard view *)
      let merged = Merge_iter.merge_by ~compare:String.compare seqs in
      let merged =
        match limit with
        | Some l -> Seq.take (max 0 l) merged
        | None -> merged
      in
      List.of_seq merged
    end
end
