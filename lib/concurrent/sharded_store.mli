(** Sharded concurrent store front with a parallel compaction pool.

    The key space is partitioned into contiguous shards, each owning an
    independent engine instance and its own lock, so puts/gets/deletes to
    different shards proceed in parallel — the deployment model the paper
    assumes (§IV-A runs 7 background compaction threads against many
    independent buckets). Align shard boundaries with engine bucket
    boundaries via {!Wipdb.Config.shard_boundaries} (or any strictly
    increasing partition starting at [""]).

    Concurrency model:

    - every operation on one shard holds that shard's mutex;
    - cross-shard [write_batch] and [scan] take the locks of all involved
      shards in ascending shard order — the single canonical order used
      everywhere, so no lock cycle can form. A multi-shard batch is atomic
      per shard and isolated across shards (all locks are held while it
      applies); a multi-shard scan is collected entirely under the locks,
      yielding a consistent cut merged through {!Wip_sstable.Merge_iter};
    - a pool of [pool_threads] worker domains (default 7, §IV-A) pulls
      per-shard maintenance work, each cycle serving the unclaimed shard
      with the largest {!Wip_kv.Store_intf.S.maintenance_pending} estimate
      under a per-cycle byte budget.

    For the pool to have work to steal, configure the wrapped engines so
    their write path does not compact inline (for WipDB:
    [compaction_budget_per_batch = 0]; mandatory splits/over-limit
    compactions still run in the writer to bound sublevel counts). *)

module Make (S : Wip_kv.Store_intf.S) : sig
  type t

  val create :
    ?pool_threads:int ->
    ?budget_per_cycle:int ->
    ?idle_sleep:float ->
    ?admission:bool ->
    ?slowdown_watermark_bytes:int ->
    ?stop_watermark_bytes:int ->
    ?inflight_limit_bytes:int ->
    ?stall_deadline_s:float ->
    (string * S.t) list ->
    t
  (** [create shards] starts the compaction pool over [(lower_bound, store)]
      shards. The first lower bound must be [""] and bounds must be strictly
      increasing; each store must only ever be reached through this wrapper.
      [pool_threads] (default 7) sizes the pool ([0] disables background
      work); each worker cycle runs maintenance on one shard bounded by
      [budget_per_cycle] bytes (default 1 MiB) and then yields for
      [idle_sleep] seconds (default 1 ms).

      Admission control (on unless [admission:false]) gates each write on
      its shard's {e write debt} — the engine's advisory
      [maintenance_pending] plus the bytes admitted since the pool last
      serviced the shard (capped at [inflight_limit_bytes], default 4 MiB).
      Debt past [stop_watermark_bytes] (default 4 MiB) stalls the writer
      with the shard lock released between checks so the pool can drain;
      a stall outliving [stall_deadline_s] (default 1 s) is refused with
      {!Wip_kv.Store_intf.Backpressure}. Debt past
      [slowdown_watermark_bytes] (default 2 MiB) waits briefly and admits.
      @raise Invalid_argument on an invalid shard partition or admission
      parameters. *)

  val put : t -> key:string -> value:string -> unit
  (** @raise Wip_kv.Store_intf.Rejected when admission control times out or
      the shard is degraded. *)

  val write_batch : t -> (Wip_util.Ikey.kind * string * string) list -> unit
  (** Items are routed to their shards; locks are acquired in canonical
      ascending order and held until every sub-batch has applied. A batch
      spanning several shards fails fast on admission (it cannot stall with
      multiple locks held) and is atomic per shard, not across shards.
      @raise Wip_kv.Store_intf.Rejected as for {!put}. *)

  val try_write_batch :
    t ->
    (Wip_util.Ikey.kind * string * string) list ->
    (unit, Wip_kv.Store_intf.write_error) result
  (** [write_batch] with the refusal as data; [Backpressure.shard] is the
      index of the refusing shard. *)

  val commit_batches :
    t ->
    (Wip_util.Ikey.kind * string * string) list array ->
    (unit, Wip_kv.Store_intf.write_error) result array
  (** Group commit: commit several independent logical batches as one
      window — per involved shard, a single WAL append carrying one record
      per batch ({!Wip_kv.Store_intf.S.try_write_batches}) followed by a
      single durability barrier ({!Wip_kv.Store_intf.S.log_sync}), so [n]
      concurrent commits cost one fsync per touched shard instead of [n].
      Returns one verdict per input batch, in order; [Ok] means {e durable}
      — the batch is applied and fsynced on every shard it touches — which
      is the invariant that lets a server acknowledge it. A batch fails
      (typed, like {!try_write_batch}) if any shard it touches refuses
      admission, is degraded, fails to apply, or fails to sync; other
      batches in the window are unaffected. Locks of all involved shards
      are taken in canonical ascending order; each batch stays atomic per
      shard, not across shards. *)

  val delete : t -> key:string -> unit
  (** @raise Wip_kv.Store_intf.Rejected as for {!put}. *)

  val health : t -> Wip_kv.Store_intf.health
  (** {!Wip_kv.Store_intf.Degraded} as soon as any shard's engine is. *)

  val probe : t -> Wip_kv.Store_intf.health
  (** Run a recovery probe on every degraded shard; the result is the
      aggregate health afterwards (first still-degraded shard wins). *)

  val inflight_bytes : t -> int
  (** Total bytes admitted but not yet serviced by the pool, across all
      shards — the quantity bounded by [inflight_limit_bytes]. *)

  val get : t -> string -> string option

  val scan :
    t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * string) list
  (** Merged across all shards overlapping [\[lo, hi)]; collected under all
      of their locks, so the result is a consistent multi-shard cut. A
      negative [limit] is clamped to 0. *)

  type snapshot
  (** A pinned multi-shard snapshot: one engine snapshot per shard, acquired
      as a consistent cut (all shard locks held in canonical order while the
      per-shard sequence numbers are pinned). *)

  val snapshot : t -> snapshot
  (** Pin a consistent cross-shard snapshot. Each shard's engine keeps every
      version (and every retired table) the snapshot can see until
      {!release}; hold snapshots briefly under write churn or space grows. *)

  val release : t -> snapshot -> unit
  (** Release every per-shard pin. Idempotent. *)

  val snapshot_seqs : snapshot -> int64 array
  (** The pinned sequence number of each shard, in shard order. *)

  val get_at : t -> string -> snapshot:snapshot -> string option
  (** {!get} as of the snapshot's cut. *)

  val scan_at :
    t ->
    lo:string ->
    hi:string ->
    ?limit:int ->
    snapshot:snapshot ->
    unit ->
    (string * string) list
  (** {!scan} as of the snapshot's cut. Shards are visited one at a time
      (no cross-shard lock hold): the pinned per-shard snapshots alone make
      the merged result a consistent cut, however long the scan takes and
      whatever writes or compactions land meanwhile. *)

  val flush : t -> unit

  val maintenance : t -> ?budget_bytes:int -> unit -> unit
  (** Foreground maintenance over every shard (in addition to the pool). *)

  val maintenance_pending : t -> int
  (** Sum of the per-shard advisory estimates (racy read, like the pool's). *)

  val with_shard : t -> key:string -> (S.t -> 'a) -> 'a
  (** Run [f] on the shard owning [key] while holding its lock — for
      engine-specific calls (snapshots, stats, introspection). *)

  val fold_shards : t -> init:'a -> f:('a -> S.t -> 'a) -> 'a
  (** Fold over all shards in key order, locking each in turn (not a
      consistent cut across shards — use for monitoring/aggregation). *)

  val shard_count : t -> int

  val pool_size : t -> int

  val compaction_cycles : t -> int
  (** Pool cycles that claimed a shard and ran maintenance on it. *)

  val stop : t -> unit
  (** Stop and join the pool, then run maintenance to quiescence on every
      shard. Idempotent; also invoked from [at_exit] as a safety net. *)
end
