(** Thread-safe store front with background compaction.

    The single-shard special case of {!Sharded_store}: wraps one engine
    implementing {!Wip_kv.Store_intf.S} behind a lock and runs a one-worker
    compaction pool, so foreground writes return after the WAL append +
    MemTable insert and merge-sorting happens off the critical path. Use
    {!Sharded_store} directly for parallel foreground traffic and the full
    pool (the paper's 7 background compaction threads, §IV-A).

    For the compactor to have work to steal, configure the wrapped engine
    so its write path does not compact inline (for WipDB:
    [compaction_budget_per_batch = 0] leaves eligible compactions to the
    background thread; mandatory splits/over-limit compactions still run in
    the writer to bound sublevel counts). *)

module Make (S : Wip_kv.Store_intf.S) : sig
  type t

  val create : ?budget_per_cycle:int -> ?idle_sleep:float -> S.t -> t
  (** Starts the compaction worker. Each cycle takes the store lock, runs
      maintenance bounded by [budget_per_cycle] bytes (default 1 MiB), then
      sleeps [idle_sleep] seconds (default 1 ms) so foreground threads can
      interleave. *)

  val put : t -> key:string -> value:string -> unit

  val write_batch : t -> (Wip_util.Ikey.kind * string * string) list -> unit

  val try_write_batch :
    t ->
    (Wip_util.Ikey.kind * string * string) list ->
    (unit, Wip_kv.Store_intf.write_error) result

  val commit_batches :
    t ->
    (Wip_util.Ikey.kind * string * string) list array ->
    (unit, Wip_kv.Store_intf.write_error) result array
  (** Group commit over the single shard: one WAL append + one fsync for
      the whole window; see {!Sharded_store.Make.commit_batches}. *)

  val health : t -> Wip_kv.Store_intf.health

  val probe : t -> Wip_kv.Store_intf.health

  val delete : t -> key:string -> unit

  val get : t -> string -> string option

  val scan : t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * string) list

  type snapshot
  (** A pinned snapshot of the wrapped engine; see
      {!Sharded_store.Make.snapshot}. *)

  val snapshot : t -> snapshot

  val release : t -> snapshot -> unit
  (** Idempotent. *)

  val get_at : t -> string -> snapshot:snapshot -> string option

  val scan_at :
    t ->
    lo:string ->
    hi:string ->
    ?limit:int ->
    snapshot:snapshot ->
    unit ->
    (string * string) list

  val flush : t -> unit

  val with_store : t -> (S.t -> 'a) -> 'a
  (** Run [f] on the underlying store while holding the lock — for
      engine-specific calls (snapshots, stats, introspection). *)

  val compaction_cycles : t -> int
  (** Background cycles that performed work (for tests/monitoring). *)

  val stop : t -> unit
  (** Stop and join the compaction thread, then run maintenance to
      quiescence. Idempotent. *)
end
