(* The single-shard special case of Sharded_store: same API as the old
   global-mutex wrapper, now backed by the sharded front so there is exactly
   one locking implementation to reason about. *)
module Make (S : Wip_kv.Store_intf.S) = struct
  module Sharded = Sharded_store.Make (S)

  type t = Sharded.t

  let create ?(budget_per_cycle = 1024 * 1024) ?(idle_sleep = 0.001) store =
    Sharded.create ~pool_threads:1 ~budget_per_cycle ~idle_sleep
      [ ("", store) ]

  let put = Sharded.put

  let write_batch = Sharded.write_batch

  let try_write_batch = Sharded.try_write_batch

  let commit_batches = Sharded.commit_batches

  let health = Sharded.health

  let probe = Sharded.probe

  let delete = Sharded.delete

  let get = Sharded.get

  let scan = Sharded.scan

  type snapshot = Sharded.snapshot

  let snapshot = Sharded.snapshot

  let release = Sharded.release

  let get_at = Sharded.get_at

  let scan_at = Sharded.scan_at

  let flush = Sharded.flush

  let with_store t f = Sharded.with_shard t ~key:"" f

  let compaction_cycles = Sharded.compaction_cycles

  let stop = Sharded.stop
end
