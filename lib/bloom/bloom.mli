(** Bloom filters for LevelTables/SSTables.

    Double hashing (Kirsch–Mitzenmacher): two base hashes generate all [k]
    probe positions, so adding a key costs two hash evaluations regardless of
    [k]. The number of probes is derived from [bits_per_key] as
    [k = round(bits_per_key * ln 2)], clamped to [\[1, 30\]], matching
    LevelDB's policy. Filters serialize to a compact string stored inside a
    table's filter block. *)

type t

val create : bits_per_key:int -> expected_keys:int -> t
(** A mutable filter sized for [expected_keys] insertions. *)

val add : t -> string -> unit

val add_sub : t -> string -> pos:int -> len:int -> unit
(** Add the substring [key.[pos .. pos+len)] without copying it out — table
    builders feed the escaped-user slice of encoded internal keys. *)

val mem : t -> string -> bool
(** No false negatives for added keys; false-positive probability decreases
    with [bits_per_key] (~1% at 10 bits/key). *)

val encode : t -> string
(** Serialized form: bit array followed by a one-byte probe count. *)

val mem_encoded : string -> string -> bool
(** [mem_encoded filter key] queries a serialized filter without decoding it
    into an intermediate structure. An empty or malformed filter returns
    [true] (maybe-present), never losing keys. *)

val mem_encoded_sub : string -> string -> pos:int -> len:int -> bool
(** {!mem_encoded} over the substring [key.[pos .. pos+len)] — probing with
    a slice of an encoded internal key allocates nothing. *)

val bit_count : t -> int
(** Size of the bit array, for introspection/tests. *)

val probe_count : t -> int
