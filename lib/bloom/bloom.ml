type t = { bits : Bytes.t; nbits : int; k : int }

let probes_for bits_per_key =
  let k = int_of_float (float_of_int bits_per_key *. 0.69 +. 0.5) in
  max 1 (min 30 k)

let create ~bits_per_key ~expected_keys =
  let nbits = max 64 (expected_keys * bits_per_key) in
  let nbytes = (nbits + 7) / 8 in
  { bits = Bytes.make nbytes '\000'; nbits = nbytes * 8; k = probes_for bits_per_key }

let base_hashes_sub key ~pos ~len =
  let h = Wip_util.Hashing.hash64_sub key ~pos ~len in
  let h1 = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) in
  let h2 =
    Int64.to_int
      (Int64.logand (Int64.shift_right_logical h 17) 0x3FFFFFFFFFFFFFFFL)
    lor 1
  in
  (h1, h2)

let base_hashes key = base_hashes_sub key ~pos:0 ~len:(String.length key)

let set_bit bits pos =
  let byte = pos lsr 3 and bit = pos land 7 in
  Bytes.unsafe_set bits byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits byte) lor (1 lsl bit)))

let get_bit_bytes bits pos =
  let byte = pos lsr 3 and bit = pos land 7 in
  Char.code (Bytes.unsafe_get bits byte) land (1 lsl bit) <> 0

let get_bit_string bits pos =
  let byte = pos lsr 3 and bit = pos land 7 in
  Char.code (String.unsafe_get bits byte) land (1 lsl bit) <> 0

let add_sub t key ~pos ~len =
  let h1, h2 = base_hashes_sub key ~pos ~len in
  let h = ref h1 in
  for _ = 1 to t.k do
    set_bit t.bits (!h mod t.nbits);
    h := (!h + h2) land max_int
  done

let add t key = add_sub t key ~pos:0 ~len:(String.length key)

let mem t key =
  let h1, h2 = base_hashes key in
  let rec loop h i =
    if i = 0 then true
    else if not (get_bit_bytes t.bits (h mod t.nbits)) then false
    else loop ((h + h2) land max_int) (i - 1)
  in
  loop h1 t.k

let encode t = Bytes.to_string t.bits ^ String.make 1 (Char.chr t.k)

let mem_encoded_sub filter key ~pos ~len =
  let n = String.length filter in
  if n < 2 then true
  else begin
    let k = Char.code filter.[n - 1] in
    if k < 1 || k > 30 then true
    else begin
      let nbits = (n - 1) * 8 in
      let h1, h2 = base_hashes_sub key ~pos ~len in
      let rec loop h i =
        if i = 0 then true
        else if not (get_bit_string filter (h mod nbits)) then false
        else loop ((h + h2) land max_int) (i - 1)
      in
      loop h1 k
    end
  end

let mem_encoded filter key =
  mem_encoded_sub filter key ~pos:0 ~len:(String.length key)

let bit_count t = t.nbits

let probe_count t = t.k
