module Sync = Wip_util.Sync

type t = {
  lock : Sync.t;
  window : int;
  start : float;
  mutable ops : int; (* guarded_by: lock *)
  mutable window_ops : int; (* guarded_by: lock *)
  mutable window_start : float; (* guarded_by: lock *)
  mutable bins : (int * float) list; (* reverse; guarded_by: lock *)
}

let now () = Unix.gettimeofday ()

let create ~window =
  let t0 = now () in
  {
    lock = Sync.create ~name:"throughput" ();
    window;
    start = t0;
    ops = 0;
    window_ops = 0;
    window_start = t0;
    bins = [];
  }

let locked t f = Sync.with_lock t.lock f

let tick t ?(n = 1) () =
  locked t (fun () ->
      (* Debug witness for the guarded_by annotations above. *)
      Sync.check_guard t.lock ~field:"ops";
      t.ops <- t.ops + n;
      t.window_ops <- t.window_ops + n;
      if t.window_ops >= t.window then begin
        let t1 = now () in
        let dt = Float.max 1e-9 (t1 -. t.window_start) in
        t.bins <- (t.ops, float_of_int t.window_ops /. dt) :: t.bins;
        t.window_ops <- 0;
        t.window_start <- t1
      end)

let series t =
  locked t (fun () ->
      let full = List.rev t.bins in
      (* Ops recorded since the last full window would otherwise vanish from
         the series (under-reporting total_ops); surface them as a final
         partial bin over its real elapsed time. Read-only: the next tick
         still completes the window at the normal boundary. *)
      if t.window_ops = 0 then full
      else begin
        let dt = Float.max 1e-9 (now () -. t.window_start) in
        full @ [ (t.ops, float_of_int t.window_ops /. dt) ]
      end)

let total_ops t = locked t (fun () -> t.ops)

let elapsed_seconds t = now () -. t.start
