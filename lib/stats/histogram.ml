let sub_buckets = 16

let bucket_count = 64 * sub_buckets

module Sync = Wip_util.Sync

type t = {
  lock : Sync.t;
  buckets : int array; (* guarded_by: lock *)
  mutable total : int; (* guarded_by: lock *)
  mutable sum : float; (* guarded_by: lock *)
  mutable minimum : float; (* guarded_by: lock *)
  mutable maximum : float; (* guarded_by: lock *)
}

let create () =
  {
    lock = Sync.create ~name:"histogram" ();
    buckets = Array.make bucket_count 0;
    total = 0;
    sum = 0.0;
    minimum = infinity;
    maximum = neg_infinity;
  }

let locked t f = Sync.with_lock t.lock f

(* Bucket index: exponent of 2 selects the decade, the next [sub_buckets]
   fractions subdivide it. Values < 1 land in bucket 0. *)
let bucket_of v =
  if v < 1.0 then 0
  else begin
    let e = int_of_float (Float.log2 v) in
    let base = 2.0 ** float_of_int e in
    let frac = (v -. base) /. base in
    let idx = (e * sub_buckets) + int_of_float (frac *. float_of_int sub_buckets) in
    min (bucket_count - 1) (max 0 idx)
  end

(* Bucket 0 is special: it holds every value in [0, 1), not just the first
   sixteenth of the first decade, so its lower bound is 0 — otherwise a
   histogram of sub-1.0 samples (sub-microsecond latencies measured in
   seconds, say) would interpolate every percentile to >= 1.0. *)
let lower_bound_of_bucket i =
  if i = 0 then 0.0
  else begin
    let e = i / sub_buckets and f = i mod sub_buckets in
    let base = 2.0 ** float_of_int e in
    base +. (base *. float_of_int f /. float_of_int sub_buckets)
  end

let upper_bound_of_bucket i =
  let e = i / sub_buckets and f = i mod sub_buckets in
  let base = 2.0 ** float_of_int e in
  base +. (base *. float_of_int (f + 1) /. float_of_int sub_buckets)

let add t v =
  let v = max v 0.0 in
  locked t (fun () ->
      (* Debug witness for the guarded_by annotations above. *)
      Sync.check_guard t.lock ~field:"total";
      t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
      t.total <- t.total + 1;
      t.sum <- t.sum +. v;
      if v < t.minimum then t.minimum <- v;
      if v > t.maximum then t.maximum <- v)

let count t = locked t (fun () -> t.total)

let mean t =
  locked t (fun () -> if t.total = 0 then 0.0 else t.sum /. float_of_int t.total)

let percentile t p =
  locked t (fun () ->
      if t.total = 0 then 0.0
      else begin
        let threshold = float_of_int t.total *. p /. 100.0 in
        let rec walk i seen =
          if i >= bucket_count then t.maximum
          else
            let seen' = seen + t.buckets.(i) in
            if float_of_int seen' >= threshold && t.buckets.(i) > 0 then begin
              (* Linear interpolation within the bucket, clamped to the
                 observed extremes: a bucket's nominal bounds can lie outside
                 [minimum, maximum] when few samples fell in it. *)
              let lo = lower_bound_of_bucket i and hi = upper_bound_of_bucket i in
              let within =
                (threshold -. float_of_int seen) /. float_of_int t.buckets.(i)
              in
              let v = lo +. ((hi -. lo) *. within) in
              Float.max t.minimum (Float.min v t.maximum)
            end
            else walk (i + 1) seen'
        in
        walk 0 0
      end)

let max_value t = locked t (fun () -> if t.total = 0 then 0.0 else t.maximum)

let min_value t = locked t (fun () -> if t.total = 0 then 0.0 else t.minimum)

let merge dst src =
  (* Snapshot [src] under its own lock first, then fold into [dst]; never
     hold both locks at once so concurrent merges cannot deadlock. *)
  let s_buckets, s_total, s_sum, s_min, s_max =
    locked src (fun () ->
        (Array.copy src.buckets, src.total, src.sum, src.minimum, src.maximum))
  in
  locked dst (fun () ->
      Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) s_buckets;
      dst.total <- dst.total + s_total;
      dst.sum <- dst.sum +. s_sum;
      if s_min < dst.minimum then dst.minimum <- s_min;
      if s_max > dst.maximum then dst.maximum <- s_max)

let reset t =
  locked t (fun () ->
      Array.fill t.buckets 0 bucket_count 0;
      t.total <- 0;
      t.sum <- 0.0;
      t.minimum <- infinity;
      t.maximum <- neg_infinity)
