(** Throughput time series.

    Records operation completions and bins them into fixed-size windows (by
    operation count or by wall-clock time), producing the throughput-over-
    time curves of Figures 6(a), 7 and 8.

    All operations are thread-safe: one recorder may be ticked from many
    foreground threads. *)

type t

val create : window:int -> t
(** [window] = operations per bin. *)

val tick : t -> ?n:int -> unit -> unit
(** Record [n] (default 1) completed operations at the current monotonic
    time. *)

val series : t -> (int * float) list
(** [(ops_so_far, ops_per_second_within_window)] for each completed window,
    in order, plus — when ops have been recorded since the last window
    boundary — one final partial bin over its real elapsed time, so the
    last bin's [ops_so_far] always equals {!total_ops}. Reading the series
    does not disturb the windowing. *)

val total_ops : t -> int

val elapsed_seconds : t -> float
