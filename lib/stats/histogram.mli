(** Log-bucketed histogram for latency percentiles.

    Values (any non-negative measurement; nanoseconds in the latency
    experiments, simulated I/O counts elsewhere) are bucketed
    logarithmically: 64 decades of 16 sub-buckets give <7% relative error
    per bucket, which is ample for reporting p50/p90/p99/p999 as in the
    paper's Tables I and II. Bucket 0 spans [0, 1) so sub-unit samples
    interpolate correctly, and percentiles clamp to the observed
    [min, max] range.

    All operations are thread-safe: a histogram may be shared by the
    multi-threaded benchmark's foreground threads. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t 99.0] — the bucket-interpolated value below which the
    given percentage of samples falls. 0 when empty. *)

val max_value : t -> float

val min_value : t -> float

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s samples into [dst]. *)

val reset : t -> unit
