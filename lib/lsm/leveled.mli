(** Leveled LSM-tree store — the LevelDB/RocksDB-like baseline (paper §II-A).

    Level 0 holds whole-memtable flushes whose key ranges overlap; levels 1
    and deeper hold runs of fixed-target-size, non-overlapping SSTables, each
    level [level_multiplier]× the capacity of the one above. Compaction
    merges one source file (chosen round-robin across the key space, as
    LevelDB does) with every overlapping file of the next level and rewrites
    both — the rewrite of next-level data is what drives this design's
    write amplification and what WipDB eliminates. *)

type config = {
  memtable_bytes : int;
  sstable_bytes : int;  (** target output file size *)
  l0_compaction_trigger : int;
  level1_bytes : int;
  level_multiplier : int;
  max_levels : int;
  bits_per_key : int;
  sorted_view : bool;
      (** maintain a store-wide REMIX-style sorted view so scans replay one
          frozen merge instead of heap-merging every table (default true) *)
  sorted_view_min_runs : int;
      (** table count below which scans just heap-merge (default 2) *)
  ph_index : bool;
      (** emit a perfect-hash point-index block in every table (default
          true); see {!Wip_sstable.Table} *)
  name : string;  (** label used in reports, e.g. "LevelDB" / "RocksDB" *)
}

val leveldb_config : scale:int -> config
(** Paper-shaped defaults scaled down: [scale] multiplies the memtable and
    level capacities (use 1 for unit tests, larger for benchmarks). *)

val rocksdb_config : scale:int -> config
(** Same organization, RocksDB-flavoured triggers. *)

val rocksdb_bigmem_config : scale:int -> config
(** The paper's "RocksDB-1.6G" variant: a much larger memtable, same
    compaction policy — used to show a bigger memtable alone does not fix
    write amplification. *)

type t

val create : ?env:Wip_storage.Env.t -> config -> t

val recover : ?env:Wip_storage.Env.t -> config -> t
(** Reopen the store persisted in [env]: manifest replay rebuilds the level
    structure, WAL replay repopulates the memtable. Equivalent to [create]
    on a fresh device. *)

val config : t -> config

val level_count : t -> int
(** Deepest non-empty level + 1. *)

val files_at_level : t -> int -> Wip_sstable.Table.meta list

val guard_positions : t -> level:int -> every:int -> space:int64 -> float list
(** Figure 2 instrumentation: positions (as fractions of the numeric key
    space) of hypothetical guards placed every [every] keys along the
    level's sorted key order. *)

val compaction_count : t -> int

val live_table_files : t -> string list
(** Names of every table file the level structure references — after
    recovery, exactly the table files present on the Env. *)

val live_snapshot_count : t -> int

val oldest_snapshot_seq : t -> int64
(** Version-GC floor: min over live pinned snapshots, [Int64.max_int] when
    none — compaction then keeps only the newest version per key. *)

include Wip_kv.Store_intf.S with type t := t
