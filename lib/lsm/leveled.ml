module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Table = Wip_sstable.Table
module Merge_iter = Wip_sstable.Merge_iter
module Sorted_view = Wip_sstable.Sorted_view
module Skiplist = Wip_memtable.Skiplist
module Wal = Wip_wal.Wal
module Manifest = Wip_manifest.Manifest

type config = {
  memtable_bytes : int;
  sstable_bytes : int;
  l0_compaction_trigger : int;
  level1_bytes : int;
  level_multiplier : int;
  max_levels : int;
  bits_per_key : int;
  sorted_view : bool;
  sorted_view_min_runs : int;
  ph_index : bool;
  name : string;
}

let leveldb_config ~scale =
  {
    memtable_bytes = 64 * 1024 * scale;
    sstable_bytes = 32 * 1024 * scale;
    l0_compaction_trigger = 4;
    level1_bytes = 256 * 1024 * scale;
    level_multiplier = 10;
    max_levels = 7;
    bits_per_key = 10;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "LevelDB";
  }

let rocksdb_config ~scale =
  (* RocksDB-flavoured tuning: larger target files and level-1 budget. *)
  {
    (leveldb_config ~scale) with
    sstable_bytes = 64 * 1024 * scale;
    level1_bytes = 384 * 1024 * scale;
    name = "RocksDB";
  }

let rocksdb_bigmem_config ~scale =
  {
    (rocksdb_config ~scale) with
    memtable_bytes = 64 * 1024 * scale * 25;
    name = "RocksDB-bigmem";
  }

type t = {
  cfg : config;
  env : Env.t;
  wal : Wal.t;
  manifest : Manifest.t;
  mutable mem : Skiplist.t; (* guarded_by: caller *)
  mutable levels : Table.meta list array; (* guarded_by: caller *)
  (* L0: newest first (flush order); L1+: sorted by smallest key, disjoint. *)
  readers : (string, Table.Reader.t) Hashtbl.t;
  mutable next_file : int; (* guarded_by: caller *)
  mutable seq : int64; (* guarded_by: caller *)
  mutable compact_pointer : string array; (* round-robin cursor per level; guarded_by: caller *)
  mutable compactions : int; (* guarded_by: caller *)
  mutable next_snap_id : int; (* guarded_by: caller *)
  live_snaps : (int, int64) Hashtbl.t; (* snapshot id -> pinned seq *)
  mutable view : (Sorted_view.t * Table.meta array) option; (* guarded_by: caller *)
      (* Store-wide sorted view over the whole table set; None when absent
         or invalidated. Scans build it lazily; compaction drops it. *)
}

let manifest_name cfg = cfg.name ^ "-manifest"

let create ?env cfg =
  let env = match env with Some e -> e | None -> Env.in_memory () in
  {
    cfg;
    env;
    wal = Wal.create env ~prefix:(cfg.name ^ "-wal") ();
    manifest = Manifest.create env ~name:(manifest_name cfg);
    mem = Skiplist.create ();
    levels = Array.make cfg.max_levels [];
    readers = Hashtbl.create 64;
    next_file = 1;
    seq = 0L;
    compact_pointer = Array.make cfg.max_levels "";
    compactions = 0;
    next_snap_id = 0;
    live_snaps = Hashtbl.create 8;
    view = None;
  }

let config t = t.cfg

let name t = t.cfg.name

let env t = t.env

let io_stats t = Env.stats t.env

let fresh_table_name t =
  let n = t.next_file in
  t.next_file <- n + 1;
  Printf.sprintf "%s-%06d.sst" t.cfg.name n

let reader_of t (meta : Table.meta) =
  match Hashtbl.find_opt t.readers meta.Table.name with
  | Some r -> r
  | None ->
    let r = Table.Reader.open_ t.env ~name:meta.Table.name in
    Hashtbl.replace t.readers meta.Table.name r;
    r

let drop_table t (meta : Table.meta) =
  (match Hashtbl.find_opt t.readers meta.Table.name with
  | Some r ->
    Table.Reader.close r;
    Hashtbl.remove t.readers meta.Table.name
  | None -> ());
  Env.delete t.env meta.Table.name

(* Pinned snapshots. This baseline's reads are eager (no lazy streams
   escape a call), so pinning only needs the version-GC floor: while a
   snapshot is live, compaction keeps every version a pinned seq can see
   ([oldest_snapshot_seq] feeds [Merge_iter.compact ~snapshot_floor]). *)

let oldest_snapshot_seq t =
  Hashtbl.fold
    (fun _ s acc -> if Int64.compare s acc < 0 then s else acc)
    t.live_snaps Int64.max_int

let live_snapshot_count t = Hashtbl.length t.live_snaps

let snapshot t =
  let id = t.next_snap_id in
  t.next_snap_id <- id + 1;
  Hashtbl.replace t.live_snaps id t.seq;
  {
    Wip_kv.Store_intf.snap_seq = t.seq;
    snap_id = id;
    snap_release = (fun () -> Hashtbl.remove t.live_snaps id);
  }

let level_capacity t level =
  (* Level 0 is triggered by file count, not bytes. *)
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  t.cfg.level1_bytes * pow t.cfg.level_multiplier (level - 1)

let level_bytes t level =
  List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.size) 0 t.levels.(level)

(* ------------------------------------------------------------------ *)
(* Sorted view (REMIX-style; see Sorted_view and DESIGN.md). One view over
   the whole table set — this baseline has a single key space, so "the run
   set" is every live table. Streams are scan-resistant
   (~fill_cache:false): replaying the store must not evict the point-read
   working set. *)

let invalidate_view t = t.view <- None

let view_open_run t (runs : Table.meta array) r ~from =
  Table.Reader.stream (reader_of t runs.(r)) ~category:Io_stats.Read_path
    ~fill_cache:false ~from ()

let all_tables t = Array.to_list t.levels |> List.concat

let store_view t =
  match t.view with
  | Some vr -> Some vr
  | None ->
    if not t.cfg.sorted_view then None
    else begin
      let tables = all_tables t in
      let n = List.length tables in
      if n < t.cfg.sorted_view_min_runs || n > Sorted_view.max_runs then None
      else begin
        let runs = Array.of_list tables in
        let started = Unix.gettimeofday () in
        let view =
          Sorted_view.build
            (Array.map
               (fun m ->
                 Table.Reader.stream (reader_of t m)
                   ~category:Io_stats.Read_path ~fill_cache:false ())
               runs)
        in
        Io_stats.record_view_rebuild (io_stats t)
          ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
        let vr = (view, runs) in
        t.view <- Some vr;
        Some vr
      end
    end

(* Flush site: extend an existing view with the new L0 run instead of
   dropping it. Stores that are never scanned never have a view and never
   pay this. *)
let view_note_flush t (meta : Table.meta) =
  match t.view with
  | None -> ()
  | Some (view, runs) ->
    if (not t.cfg.sorted_view) || Sorted_view.run_count view >= Sorted_view.max_runs
    then invalidate_view t
    else begin
      let started = Unix.gettimeofday () in
      let view' =
        Sorted_view.add_run view ~open_run:(view_open_run t runs)
          (Table.Reader.stream (reader_of t meta)
             ~category:Io_stats.Read_path ~fill_cache:false ())
      in
      Io_stats.record_view_rebuild (io_stats t)
        ~ns:(int_of_float ((Unix.gettimeofday () -. started) *. 1e9));
      t.view <- Some (view', Array.append runs [| meta |])
    end

(* ------------------------------------------------------------------ *)
(* Writing *)

let flush_mem t =
  if Skiplist.count t.mem > 0 then begin
    let name = fresh_table_name t in
    let builder =
      Table.Builder.create t.env ~name ~category:Io_stats.Flush
        ~bits_per_key:t.cfg.bits_per_key ~ph_index:t.cfg.ph_index
        ~expected_keys:(Skiplist.count t.mem) ()
    in
    Seq.iter (fun (ik, v) -> Table.Builder.add builder ik v)
      (Skiplist.to_sorted_seq t.mem);
    let meta = Table.Builder.finish builder in
    t.levels.(0) <- meta :: t.levels.(0);
    view_note_flush t meta;
    Manifest.append t.manifest
      (Manifest.Add_table
         {
           bucket = 0;
           level = 0;
           name = meta.Table.name;
           size = meta.Table.size;
           entry_count = meta.Table.entry_count;
           smallest = meta.Table.smallest;
           largest = meta.Table.largest;
         });
    Manifest.append t.manifest
      (Manifest.Watermark { seq = t.seq; next_file = t.next_file });
    (* The flushed table's manifest edit must be durable before the WAL
       records it replaces are reclaimed. *)
    Manifest.sync t.manifest;
    t.mem <- Skiplist.create ();
    ignore (Wal.reclaim t.wal ~persisted_below:(Int64.add t.seq 1L))
  end

(* Build one or more target-size output tables from a compacted (encoded)
   entry sequence. [expected_keys] sizes each output's bloom filter; callers
   derive it from the inputs' entry counts and byte sizes instead of a
   guessed constant. *)
let write_outputs t ~category ~expected_keys entries =
  let outputs = ref [] in
  let builder = ref None in
  let start_builder () =
    let name = fresh_table_name t in
    let b =
      Table.Builder.create t.env ~name ~category
        ~bits_per_key:t.cfg.bits_per_key ~ph_index:t.cfg.ph_index
        ~expected_keys ()
    in
    builder := Some b;
    b
  in
  let finish_builder () =
    match !builder with
    | Some b ->
      if Table.Builder.entry_count b > 0 then
        outputs := Table.Builder.finish b :: !outputs
      else Table.Builder.abandon b;
      builder := None
    | None -> ()
  in
  let last_key = ref None in
  Seq.iter
    (fun (key, value) ->
      (* Split lazily, and never between two versions of one user key: with
         a version-GC floor several versions of a key can flow through one
         compaction, and the L1+ point-read probes exactly one table per
         level — all of a key's versions must land in it. *)
      (match (!builder, !last_key) with
      | Some b, Some prev
        when Table.Builder.estimated_size b >= t.cfg.sstable_bytes
             && not (Ikey.encoded_same_user prev key) ->
        finish_builder ()
      | _ -> ());
      last_key := Some key;
      let b = match !builder with Some b -> b | None -> start_builder () in
      Table.Builder.add_encoded b ~key ~value)
    entries;
  finish_builder ();
  List.rev !outputs

let table_seq t ~category meta =
  Table.Reader.stream (reader_of t meta) ~category ~fill_cache:false ()

(* Insert [metas] into sorted level list (levels >= 1 stay sorted by
   smallest key). *)
let sorted_level metas =
  List.sort
    (fun (a : Table.meta) (b : Table.meta) ->
      String.compare a.Table.smallest b.Table.smallest)
    metas

let overlapping_files level ~lo ~hi =
  List.partition (fun m -> Table.overlaps m ~lo ~hi) level

(* Compact level -> level+1. For L0, all L0 files participate (their ranges
   overlap); for deeper levels one file is chosen round-robin. *)
let compact_level t level =
  t.compactions <- t.compactions + 1;
  let target = level + 1 in
  let sources =
    if level = 0 then t.levels.(0)
    else begin
      match t.levels.(level) with
      | [] -> []
      | files ->
        let cursor = t.compact_pointer.(level) in
        let next =
          try List.find (fun (m : Table.meta) -> String.compare m.Table.smallest cursor > 0) files
          with Not_found -> List.hd files
        in
        t.compact_pointer.(level) <- next.Table.smallest;
        [ next ]
    end
  in
  if sources = [] then ()
  else begin
    let lo =
      List.fold_left
        (fun acc (m : Table.meta) -> min acc m.Table.smallest)
        (List.hd sources).Table.smallest sources
    and hi =
      List.fold_left
        (fun acc (m : Table.meta) -> max acc m.Table.largest)
        (List.hd sources).Table.largest sources
    in
    let overlapping, untouched = overlapping_files t.levels.(target) ~lo ~hi in
    let inputs = sources @ overlapping in
    let read_cat m =
      if List.memq m sources then Io_stats.Compaction_read level
      else Io_stats.Compaction_read target
    in
    let seqs = List.map (fun m -> table_seq t ~category:(read_cat m) m) inputs in
    (* Tombstones can be dropped when the output level is the deepest level
       holding data for this key range. The range must cover every INPUT:
       overlapping target-level files can extend beyond the sources' [lo,
       hi], and their entries flow through this compaction too — judging
       them by the narrower sources range once dropped a tombstone whose
       older versions sat deeper, resurrecting a deleted key. *)
    let input_lo =
      List.fold_left
        (fun acc (m : Table.meta) -> min acc m.Table.smallest)
        lo inputs
    and input_hi =
      List.fold_left
        (fun acc (m : Table.meta) -> max acc m.Table.largest)
        hi inputs
    in
    let deeper_has_data =
      let rec check l =
        if l >= t.cfg.max_levels then false
        else if
          fst (overlapping_files t.levels.(l) ~lo:input_lo ~hi:input_hi) <> []
        then true
        else check (l + 1)
      in
      check (target + 1)
    in
    let entries =
      Merge_iter.compact ~dedup_user_keys:true
        ~drop_tombstones:(not deeper_has_data)
        ~snapshot_floor:(oldest_snapshot_seq t) seqs
    in
    (* Size each output's bloom from the inputs' observed entry density:
       expected keys per output ≈ target bytes / average entry size. *)
    let total_count =
      List.fold_left
        (fun acc (m : Table.meta) -> acc + m.Table.entry_count)
        0 inputs
    and total_bytes =
      List.fold_left (fun acc (m : Table.meta) -> acc + m.Table.size) 0 inputs
    in
    let expected_keys =
      max 64 (t.cfg.sstable_bytes * total_count / max 1 total_bytes)
    in
    let outputs =
      write_outputs t ~category:(Io_stats.Compaction target) ~expected_keys
        entries
    in
    (* Install: remove inputs, add outputs to target. *)
    if level = 0 then t.levels.(0) <- []
    else
      t.levels.(level) <-
        List.filter (fun m -> not (List.memq m sources)) t.levels.(level);
    t.levels.(target) <- sorted_level (untouched @ outputs);
    invalidate_view t;
    List.iter
      (fun (m : Table.meta) ->
        Manifest.append t.manifest
          (Manifest.Add_table
             {
               bucket = 0;
               level = target;
               name = m.Table.name;
               size = m.Table.size;
               entry_count = m.Table.entry_count;
               smallest = m.Table.smallest;
               largest = m.Table.largest;
             }))
      outputs;
    List.iter
      (fun (m : Table.meta) ->
        let from_level = if List.memq m sources then level else target in
        Manifest.append t.manifest
          (Manifest.Remove_table { bucket = 0; level = from_level; name = m.Table.name }))
      inputs;
    Manifest.append t.manifest
      (Manifest.Watermark { seq = t.seq; next_file = t.next_file });
    (* Removes durable before the input files vanish, or recovery would
       replay a manifest referencing deleted files. *)
    Manifest.sync t.manifest;
    List.iter (drop_table t) inputs
  end

(* LevelDB-style scores; >= 1.0 means the level needs compaction. *)
let compaction_score t level =
  if level = 0 then
    float_of_int (List.length t.levels.(0))
    /. float_of_int t.cfg.l0_compaction_trigger
  else
    float_of_int (level_bytes t level) /. float_of_int (level_capacity t level)

let pick_compaction t =
  let best = ref None in
  for level = 0 to t.cfg.max_levels - 2 do
    let score = compaction_score t level in
    if score >= 1.0 then
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (level, score)
  done;
  !best

(* Advisory estimate for the compaction pool (may be read without external
   synchronization): input bytes of every level whose score crossed 1.0. *)
let maintenance_pending t =
  let pending = ref 0 in
  for level = 0 to t.cfg.max_levels - 2 do
    if compaction_score t level >= 1.0 then
      pending := !pending + max 1 (level_bytes t level)
  done;
  !pending

let maintenance t ?budget_bytes () =
  let budget = ref (match budget_bytes with Some b -> b | None -> max_int) in
  let rec loop () =
    if !budget > 0 then
      match pick_compaction t with
      | Some (level, _score) ->
        let before = Io_stats.bytes_written (io_stats t) in
        compact_level t level;
        let after = Io_stats.bytes_written (io_stats t) in
        budget := !budget - (after - before);
        loop ()
      | None -> ()
  in
  loop ()

let recover ?env cfg =
  let env = match env with Some e -> e | None -> Env.in_memory () in
  if not (Manifest.exists env ~name:(manifest_name cfg)) then create ~env cfg
  else begin
    let t =
      {
        cfg;
        env;
        (* Replaced below once the real WAL is recovered. *)
        wal = Wal.create env ~prefix:(cfg.name ^ "-tmpwal") ();
        manifest = Manifest.reopen env ~name:(manifest_name cfg);
        mem = Skiplist.create ();
        levels = Array.make cfg.max_levels [];
        readers = Hashtbl.create 64;
        next_file = 1;
        seq = 0L;
        compact_pointer = Array.make cfg.max_levels "";
        compactions = 0;
        next_snap_id = 0;
        live_snaps = Hashtbl.create 8;
        view = None;
      }
    in
    Manifest.replay env ~name:(manifest_name cfg) (fun edit ->
        match edit with
        | Manifest.Add_table { level; name; size; entry_count; smallest; largest; _ } ->
          let meta = { Table.name; size; entry_count; smallest; largest } in
          t.levels.(level) <- meta :: t.levels.(level)
        | Manifest.Remove_table { level; name; _ } ->
          t.levels.(level) <-
            List.filter
              (fun (m : Table.meta) -> not (String.equal m.Table.name name))
              t.levels.(level)
        | Manifest.Watermark { seq; next_file } ->
          t.seq <- seq;
          t.next_file <- max t.next_file next_file
        | Manifest.Add_bucket _ | Manifest.Remove_bucket _ -> ());
    for level = 1 to cfg.max_levels - 1 do
      t.levels.(level) <- sorted_level t.levels.(level)
    done;
    let wal =
      Wal.recover env ~prefix:(cfg.name ^ "-wal")
        ~replay:(fun (r : Wal.record) ->
          if Int64.compare r.Wal.seq t.seq > 0 then t.seq <- r.Wal.seq;
          Skiplist.add t.mem
            (Ikey.make ~kind:r.Wal.kind r.Wal.key ~seq:r.Wal.seq)
            r.Wal.value)
        ()
    in
    Env.delete env (cfg.name ^ "-tmpwal-000000.log");
    let t = { t with wal } in
    if Int64.compare (Wal.max_seq_logged wal) t.seq > 0 then
      t.seq <- Wal.max_seq_logged wal;
    (* Garbage-collect table files no manifest edit survived for — debris
       of a flush or compaction interrupted before its edits were synced. *)
    let live = Hashtbl.create 64 in
    Array.iter
      (List.iter (fun (m : Table.meta) -> Hashtbl.replace live m.Table.name ()))
      t.levels;
    let prefix = cfg.name ^ "-" in
    let plen = String.length prefix in
    List.iter
      (fun f ->
        if
          String.length f > plen
          && String.equal (String.sub f 0 plen) prefix
          && Filename.check_suffix f ".sst"
          && not (Hashtbl.mem live f)
        then Env.delete env f)
      (Env.list_files env);
    t
  end

let apply t kind key value =
  let seq = Int64.add t.seq 1L in
  t.seq <- seq;
  Skiplist.add t.mem (Ikey.make ~kind key ~seq) value;
  Io_stats.record_write (io_stats t) Io_stats.User_write
    (String.length key + String.length value);
  if Skiplist.byte_size t.mem >= t.cfg.memtable_bytes then begin
    flush_mem t;
    maintenance t ()
  end

let write_batch t items =
  if items <> [] then begin
    Wal.append_batch t.wal ~first_seq:(Int64.add t.seq 1L) items;
    List.iter (fun (kind, key, value) -> apply t kind key value) items
  end

let put t ~key ~value = write_batch t [ (Ikey.Value, key, value) ]

let delete t ~key = write_batch t [ (Ikey.Deletion, key, "") ]

(* ------------------------------------------------------------------ *)
(* Reading *)

let get_seq t key ~snapshot =
  match Skiplist.find t.mem key ~snapshot with
  | Some (Ikey.Value, v) -> Some v
  | Some (Ikey.Deletion, _) -> None
  | None ->
    (* One encoded seek target serves every table probe on the way down. *)
    let target = Ikey.encode_seek key ~seq:snapshot in
    let check_meta (m : Table.meta) =
      if not (Table.overlaps m ~lo:key ~hi:key) then None
      else
        Table.Reader.get_encoded (reader_of t m) ~category:Io_stats.Read_path
          target
    in
    let rec check_l0 = function
      | [] -> check_levels 1
      | m :: rest -> (
        match check_meta m with
        | Some (Ikey.Value, v, _) -> Some v
        | Some (Ikey.Deletion, _, _) -> None
        | None -> check_l0 rest)
    and check_levels level =
      if level >= t.cfg.max_levels then None
      else
        (* Non-overlapping: at most one candidate file. *)
        let candidate =
          List.find_opt (fun m -> Table.overlaps m ~lo:key ~hi:key) t.levels.(level)
        in
        match candidate with
        | Some m -> (
          match check_meta m with
          | Some (Ikey.Value, v, _) -> Some v
          | Some (Ikey.Deletion, _, _) -> None
          | None -> check_levels (level + 1))
        | None -> check_levels (level + 1)
    in
    check_l0 t.levels.(0)

let get t key = get_seq t key ~snapshot:t.seq

let get_at t key ~snapshot =
  get_seq t key ~snapshot:snapshot.Wip_kv.Store_intf.snap_seq

let scan_seq t ~lo ~hi ?(limit = max_int) ~snapshot () =
  let from = Ikey.encode_seek lo ~seq:Ikey.max_seq in
  let hi_enc = Ikey.encode_user hi in
  let mem_seq =
    Skiplist.to_sorted_seq t.mem
    |> Seq.filter (fun ((ik : Ikey.t), _) ->
           Ikey.compare_user ik.Ikey.user_key lo >= 0
           && Ikey.compare_user ik.Ikey.user_key hi < 0)
    |> Seq.map (fun (ik, v) -> (Ikey.encode ik, v))
  in
  let table_seqs =
    match store_view t with
    | Some (view, runs) ->
      [
        Sorted_view.walk view ~from ~open_run:(view_open_run t runs)
        |> Seq.take_while (fun (k, _) ->
               Ikey.compare_encoded_user hi_enc k > 0);
      ]
    | None ->
      Array.to_list t.levels
      |> List.concat_map (fun level ->
             List.filter_map
               (fun m ->
                 (* Exclusive bound: a table starting exactly at [hi] holds
                    nothing in [lo, hi). *)
                 if Table.overlaps_excl m ~lo ~hi_excl:hi then
                   Some
                     (Table.Reader.stream (reader_of t m)
                        ~category:Io_stats.Read_path ~fill_cache:false ~from
                        ()
                     |> Seq.take_while (fun (k, _) ->
                            Ikey.compare_encoded_user hi_enc k > 0))
                 else None)
               level)
  in
  let merged =
    Merge_iter.compact ~dedup_user_keys:true ~drop_tombstones:false
      ~snapshot_floor:snapshot
      (mem_seq :: table_seqs)
  in
  let out = ref [] and n = ref 0 and last = ref None in
  (try
     Seq.iter
       (fun (k, v) ->
         if !n >= limit then raise Exit;
         if Int64.compare (Ikey.encoded_seq k) snapshot <= 0 then begin
           let dup =
             match !last with
             | Some prev -> Ikey.encoded_same_user prev k
             | None -> false
           in
           if not dup then begin
             last := Some k;
             match Ikey.encoded_kind k with
             | Ikey.Value ->
               out := (Ikey.user_key_of_encoded k, v) :: !out;
               incr n
             | Ikey.Deletion -> ()
           end
         end)
       merged
   with Exit -> ());
  List.rev !out

let scan t ~lo ~hi ?limit () = scan_seq t ~lo ~hi ?limit ~snapshot:t.seq ()

let scan_at t ~lo ~hi ?limit ~snapshot () =
  scan_seq t ~lo ~hi ?limit ~snapshot:snapshot.Wip_kv.Store_intf.snap_seq ()

let flush t = flush_mem t

let file_sizes t =
  Array.to_list t.levels
  |> List.concat_map (List.map (fun (m : Table.meta) -> m.Table.size))

let live_table_files t =
  Array.to_list t.levels
  |> List.concat_map (List.map (fun (m : Table.meta) -> m.Table.name))

let level_count t =
  let rec deepest l = if l < 0 then 0 else if t.levels.(l) <> [] then l + 1 else deepest (l - 1) in
  deepest (t.cfg.max_levels - 1)

let files_at_level t level = t.levels.(level)

let compaction_count t = t.compactions

(* Figure 2: hypothetical guard positions. Walk the level's files in key
   order; a guard sits at every [every]-th key. Within a file, interpolate
   numerically between its smallest and largest key (keys are fixed-width
   decimal so this is accurate for the plot's purpose). *)
let guard_positions t ~level ~every ~space =
  let files =
    if level = 0 then sorted_level t.levels.(0) else t.levels.(level)
  in
  let positions = ref [] in
  let carried = ref 0 in
  List.iter
    (fun (m : Table.meta) ->
      if m.Table.entry_count > 0 then begin
        let lo = Key_frac.of_key m.Table.smallest ~space in
        let hi = Key_frac.of_key m.Table.largest ~space in
        let count = m.Table.entry_count in
        let first_guard = every - !carried in
        let rec emit ordinal =
          if ordinal <= count then begin
            let frac =
              lo +. ((hi -. lo) *. float_of_int ordinal /. float_of_int count)
            in
            positions := frac :: !positions;
            emit (ordinal + every)
          end
          else carried := count - (ordinal - every)
        in
        if first_guard <= count then emit first_guard
        else carried := !carried + count
      end)
    files;
  List.rev !positions

(* Resilience interface: this baseline has no admission control or degraded
   state — it exists for I/O-pattern comparison, not fault drills. Writes
   are always admitted and faults propagate raw. *)
let try_write_batch t items =
  write_batch t items;
  Ok ()

let write_batches t batches =
  if List.exists (fun items -> items <> []) batches then begin
    Wal.append_batches t.wal ~first_seq:(Int64.add t.seq 1L) batches;
    List.iter
      (fun items ->
        List.iter (fun (kind, key, value) -> apply t kind key value) items)
      batches
  end

let try_write_batches t batches =
  write_batches t batches;
  Ok ()

let log_sync t = Wal.sync t.wal

let health _ = Wip_kv.Store_intf.Healthy

let probe _ = Wip_kv.Store_intf.Healthy
