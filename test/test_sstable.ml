(* Tests for wip_sstable: block coding, table build/read, merge iterator. *)

module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Block = Wip_sstable.Block
module Table = Wip_sstable.Table
module Table_format = Wip_sstable.Table_format
module Merge_iter = Wip_sstable.Merge_iter

let ik ?(kind = Ikey.Value) key seq = Ikey.make ~kind key ~seq:(Int64.of_int seq)

let enc ?kind key seq = Ikey.encode (ik ?kind key seq)

(* ------------------------------------------------------------------ *)
(* Block layer *)

let test_block_roundtrip () =
  let b = Block.Builder.create () in
  let entries =
    List.init 100 (fun i -> (Printf.sprintf "key-%05d" i, "value" ^ string_of_int i))
  in
  List.iter (fun (k, v) -> Block.Builder.add b ~key:k ~value:v) entries;
  let raw = Block.Builder.finish b in
  Alcotest.(check (list (pair string string))) "all entries back" entries
    (Block.decode_all raw)

let test_block_seek () =
  let b = Block.Builder.create () in
  for i = 0 to 99 do
    Block.Builder.add b ~key:(Printf.sprintf "k%04d" (i * 2)) ~value:(string_of_int i)
  done;
  let raw = Block.Builder.finish b in
  (* Exact hit *)
  (match Block.seek raw ~compare:(fun k -> String.compare k "k0050") with
  | Some (k, _) -> Alcotest.(check string) "exact" "k0050" k
  | None -> Alcotest.fail "not found");
  (* Between keys: lands on the next one *)
  (match Block.seek raw ~compare:(fun k -> String.compare k "k0051") with
  | Some (k, _) -> Alcotest.(check string) "next" "k0052" k
  | None -> Alcotest.fail "not found");
  (* Before the first key *)
  (match Block.seek raw ~compare:(fun k -> String.compare k "") with
  | Some (k, _) -> Alcotest.(check string) "first" "k0000" k
  | None -> Alcotest.fail "not found");
  (* Past the end *)
  Alcotest.(check bool) "past end" true
    (Block.seek raw ~compare:(fun k -> String.compare k "zzz") = None)

let test_block_seal_unseal () =
  let sealed = Table_format.seal_block "payload" in
  Alcotest.(check string) "roundtrip" "payload" (Table_format.unseal_block sealed);
  let corrupted =
    let b = Bytes.of_string sealed in
    Bytes.set b 0 'P';
    Bytes.to_string b
  in
  match Table_format.unseal_block corrupted with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corruption undetected"

let test_footer_roundtrip () =
  let f =
    {
      Table_format.index = { Table_format.offset = 123; size = 45 };
      filter = { Table_format.offset = 6; size = 7 };
      ph = Table_format.no_handle;
      entry_count = 890;
      smallest = "aaa";
      largest = "zzz";
    }
  in
  let encoded = Table_format.encode_footer f in
  let f' = Table_format.decode_footer encoded in
  Alcotest.(check int) "index offset" 123 f'.Table_format.index.Table_format.offset;
  Alcotest.(check int) "entries" 890 f'.Table_format.entry_count;
  Alcotest.(check string) "smallest" "aaa" f'.Table_format.smallest;
  Alcotest.(check string) "largest" "zzz" f'.Table_format.largest;
  Alcotest.(check int) "no ph block" 0 f'.Table_format.ph.Table_format.size;
  (* v1 magic: a footer without a ph block is byte-identical to v1. *)
  let n = String.length encoded in
  Alcotest.(check int64) "v1 magic" Table_format.magic
    (Wip_util.Coding.get_fixed64 encoded (n - 12));
  (* With a ph handle the footer switches to the v2 magic and round-trips. *)
  let f2 =
    { f with Table_format.ph = { Table_format.offset = 77; size = 88 } }
  in
  let encoded2 = Table_format.encode_footer f2 in
  let n2 = String.length encoded2 in
  Alcotest.(check int64) "v2 magic" Table_format.magic_v2
    (Wip_util.Coding.get_fixed64 encoded2 (n2 - 12));
  let f2' = Table_format.decode_footer encoded2 in
  Alcotest.(check int) "ph offset" 77 f2'.Table_format.ph.Table_format.offset;
  Alcotest.(check int) "ph size" 88 f2'.Table_format.ph.Table_format.size;
  Alcotest.(check int) "v2 index offset" 123
    f2'.Table_format.index.Table_format.offset

(* ------------------------------------------------------------------ *)
(* Table layer *)

let build_table env name entries =
  let b =
    Table.Builder.create env ~name ~category:Io_stats.Flush
      ~expected_keys:(List.length entries) ()
  in
  List.iter (fun (ikey, v) -> Table.Builder.add b ikey v) entries;
  Table.Builder.finish b

let test_table_roundtrip () =
  let env = Env.in_memory () in
  let entries =
    List.init 1000 (fun i -> (ik (Printf.sprintf "key-%06d" i) (i + 1), "v" ^ string_of_int i))
  in
  let meta = build_table env "t1" entries in
  Alcotest.(check int) "entry count" 1000 meta.Table.entry_count;
  Alcotest.(check string) "smallest" "key-000000" meta.Table.smallest;
  Alcotest.(check string) "largest" "key-000999" meta.Table.largest;
  let r = Table.Reader.open_ env ~name:"t1" in
  List.iter
    (fun ((ikey : Ikey.t), v) ->
      match
        Table.Reader.get r ~category:Io_stats.Read_path ikey.Ikey.user_key
          ~snapshot:Int64.max_int
      with
      | Some (Ikey.Value, v', _) when String.equal v v' -> ()
      | _ -> Alcotest.failf "lookup failed for %s" ikey.Ikey.user_key)
    entries;
  Alcotest.(check bool) "absent key" true
    (Table.Reader.get r ~category:Io_stats.Read_path "nope" ~snapshot:Int64.max_int
     = None);
  Table.Reader.close r

let test_table_snapshot_reads () =
  let env = Env.in_memory () in
  let entries =
    [ (ik "k" 9, "v9"); (ik "k" 5, "v5"); (ik ~kind:Ikey.Deletion "k" 3, ""); (ik "k" 1, "v1") ]
  in
  let _ = build_table env "t2" entries in
  let r = Table.Reader.open_ env ~name:"t2" in
  let get snap = Table.Reader.get r ~category:Io_stats.Read_path "k" ~snapshot:snap in
  (match get 100L with
  | Some (Ikey.Value, "v9", _) -> ()
  | _ -> Alcotest.fail "expected v9");
  (match get 6L with
  | Some (Ikey.Value, "v5", _) -> ()
  | _ -> Alcotest.fail "expected v5");
  (match get 3L with
  | Some (Ikey.Deletion, _, _) -> ()
  | _ -> Alcotest.fail "expected tombstone");
  (match get 1L with
  | Some (Ikey.Value, "v1", _) -> ()
  | _ -> Alcotest.fail "expected v1");
  Alcotest.(check bool) "snapshot 0" true (get 0L = None);
  Table.Reader.close r

let test_table_iter_from () =
  let env = Env.in_memory () in
  let entries =
    List.init 500 (fun i -> (ik (Printf.sprintf "%06d" (i * 2)) (i + 1), string_of_int i))
  in
  let _ = build_table env "t3" entries in
  let r = Table.Reader.open_ env ~name:"t3" in
  let from_300 =
    List.of_seq (Table.Reader.iter_from r ~category:Io_stats.Read_path ~lo:"000300" ())
  in
  Alcotest.(check int) "tail size" 350 (List.length from_300);
  (match from_300 with
  | ((first : Ikey.t), _) :: _ ->
    Alcotest.(check string) "first" "000300" first.Ikey.user_key
  | [] -> Alcotest.fail "empty");
  let from_301 =
    List.of_seq (Table.Reader.iter_from r ~category:Io_stats.Read_path ~lo:"000301" ())
  in
  (match from_301 with
  | ((first : Ikey.t), _) :: _ ->
    Alcotest.(check string) "between keys" "000302" first.Ikey.user_key
  | [] -> Alcotest.fail "empty");
  let all = List.of_seq (Table.Reader.iter_from r ~category:Io_stats.Read_path ()) in
  Alcotest.(check int) "full scan" 500 (List.length all);
  Table.Reader.close r

let test_table_bloom_short_circuits () =
  let env = Env.in_memory () in
  let entries = List.init 100 (fun i -> (ik (Printf.sprintf "in-%04d" i) (i + 1), "v")) in
  let _ = build_table env "t4" entries in
  let r = Table.Reader.open_ env ~name:"t4" in
  let stats = Env.stats env in
  let before = Io_stats.read_by stats Io_stats.Read_path in
  let misses = ref 0 in
  for i = 0 to 999 do
    if
      Table.Reader.get r ~category:Io_stats.Read_path
        (Printf.sprintf "out-%04d" i) ~snapshot:Int64.max_int
      = None
    then incr misses
  done;
  let after = Io_stats.read_by stats Io_stats.Read_path in
  Alcotest.(check int) "all misses" 1000 !misses;
  (* Bloom filters should have stopped nearly all block reads: allow a few
     false positives' worth of I/O. *)
  let per_block = 4096 + 64 in
  Alcotest.(check bool) "bloom stopped most I/O" true
    (after - before < 40 * per_block);
  Table.Reader.close r

let test_table_corruption_detection () =
  let env = Env.in_memory () in
  let entries = List.init 50 (fun i -> (ik (Printf.sprintf "%04d" i) (i + 1), "v")) in
  let _ = build_table env "t5" entries in
  (* Flip a byte in the middle of the file (inside the first data block). *)
  let r = Env.open_file env "t5" in
  let contents = Env.read_all r ~category:Io_stats.Read_path in
  Env.close_reader r;
  let b = Bytes.of_string contents in
  Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 0xFF));
  let w = Env.create_file env "t5" in
  Env.append w ~category:Io_stats.Flush (Bytes.to_string b);
  Env.close_writer w;
  let reader = Table.Reader.open_ env ~name:"t5" in
  (match
     Table.Reader.get reader ~category:Io_stats.Read_path "0000"
       ~snapshot:Int64.max_int
   with
  | exception Env.Corruption { file = "t5"; _ } -> ()
  | _ -> Alcotest.fail "corrupt block read succeeded");
  Table.Reader.close reader

let test_overlaps () =
  let m =
    { Table.name = "x"; size = 1; entry_count = 5; smallest = "d"; largest = "m" }
  in
  Alcotest.(check bool) "inside" true (Table.overlaps m ~lo:"e" ~hi:"f");
  Alcotest.(check bool) "spanning" true (Table.overlaps m ~lo:"a" ~hi:"z");
  Alcotest.(check bool) "left disjoint" false (Table.overlaps m ~lo:"a" ~hi:"c");
  Alcotest.(check bool) "right disjoint" false (Table.overlaps m ~lo:"n" ~hi:"z");
  Alcotest.(check bool) "boundary" true (Table.overlaps m ~lo:"m" ~hi:"z");
  let empty = { m with entry_count = 0 } in
  Alcotest.(check bool) "empty overlaps nothing" false
    (Table.overlaps empty ~lo:"a" ~hi:"z")

(* ------------------------------------------------------------------ *)
(* Merge iterator *)

let seq_of_list l = List.to_seq l

let user_of = Ikey.user_key_of_encoded

let test_merge_order () =
  let s1 = seq_of_list [ (enc "a" 1, "1"); (enc "c" 2, "2") ] in
  let s2 = seq_of_list [ (enc "b" 3, "3"); (enc "d" 4, "4") ] in
  let merged = List.of_seq (Merge_iter.merge [ s1; s2 ]) in
  Alcotest.(check (list string)) "interleaved"
    [ "a"; "b"; "c"; "d" ]
    (List.map (fun (k, _) -> user_of k) merged)

let test_compact_dedup () =
  let newer = seq_of_list [ (enc "k" 9, "new") ] in
  let older = seq_of_list [ (enc "k" 2, "old"); (enc "z" 1, "zv") ] in
  let out = List.of_seq (Merge_iter.compact [ newer; older ]) in
  Alcotest.(check (list (pair string string)))
    "newest survives"
    [ ("k", "new"); ("z", "zv") ]
    (List.map (fun (k, v) -> (user_of k, v)) out)

let test_compact_tombstones () =
  let s =
    seq_of_list [ (enc ~kind:Ikey.Deletion "k" 5, ""); (enc "k" 2, "old") ]
  in
  let keep = List.of_seq (Merge_iter.compact ~drop_tombstones:false [ s ]) in
  Alcotest.(check int) "tombstone kept" 1 (List.length keep);
  (match keep with
  | [ (k, _) ] ->
    Alcotest.(check bool) "is deletion" true
      (Ikey.encoded_kind k = Ikey.Deletion)
  | _ -> Alcotest.fail "unexpected");
  let s =
    seq_of_list [ (enc ~kind:Ikey.Deletion "k" 5, ""); (enc "k" 2, "old") ]
  in
  let dropped = List.of_seq (Merge_iter.compact ~drop_tombstones:true [ s ]) in
  Alcotest.(check int) "tombstone and shadowed value gone" 0 (List.length dropped)

let test_compact_snapshot_floor () =
  let s =
    seq_of_list
      [ (enc "k" 9, "v9"); (enc "k" 7, "v7"); (enc "k" 3, "v3"); (enc "k" 1, "v1") ]
  in
  let out = List.of_seq (Merge_iter.compact ~snapshot_floor:7L [ s ]) in
  (* Versions above the floor (9) are kept; newest at/below floor (7) kept;
     older (3, 1) dropped. *)
  Alcotest.(check (list string)) "floor semantics" [ "v9"; "v7" ]
    (List.map snd out)

(* Regression for the pairing-heap [merge]: the output must stay exactly the
   multiset of inputs sorted by encoded-key order — same ordering and
   duplicate handling as a reference sort — across many streams, empty
   streams, and (key, seq) entries duplicated between streams (as after a
   WAL replay re-ingests a flushed table's contents). *)
let test_merge_matches_reference_sort () =
  let streams =
    [
      [ (enc "b" 5, "b5"); (enc "d" 2, "d2"); (enc "f" 1, "f1") ];
      [];
      [ (enc "a" 9, "a9"); (enc "b" 7, "b7"); (enc "b" 5, "b5") ];
      [ (enc "b" 5, "b5") ];
      [ (enc "a" 9, "a9"); (enc "z" 1, "z1") ];
      [ (enc "c" 4, "c4") ];
    ]
  in
  let expected =
    List.concat streams
    |> List.stable_sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let out = List.of_seq (Merge_iter.merge (List.map seq_of_list streams)) in
  Alcotest.(check int) "length preserved" (List.length expected)
    (List.length out);
  List.iter2
    (fun (ek, ev) (ok, ov) ->
      Alcotest.(check string) "key order" ek ok;
      Alcotest.(check string) "value" ev ov)
    expected out;
  (* Duplicate handling downstream: compact keeps one entry per user key. *)
  let compacted =
    List.of_seq (Merge_iter.compact (List.map seq_of_list streams))
  in
  Alcotest.(check (list (pair string string)))
    "compact dedups to newest per key"
    [ ("a", "a9"); ("b", "b7"); ("c", "c4"); ("d", "d2"); ("f", "f1"); ("z", "z1") ]
    (List.map (fun (k, v) -> (user_of k, v)) compacted)

let qcheck_merge_is_sorted =
  QCheck.Test.make ~name:"merge output is sorted" ~count:100
    QCheck.(list (small_list (pair (int_bound 100) (int_bound 1000))))
    (fun lists ->
      let seqs =
        List.map
          (fun l ->
            l
            |> List.map (fun (k, s) -> (enc (Printf.sprintf "%03d" k) s, "v"))
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
            |> seq_of_list)
          lists
      in
      let out = List.of_seq (Merge_iter.merge seqs) in
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          String.compare a b <= 0 && sorted rest
        | _ -> true
      in
      sorted out
      && List.length out = List.fold_left (fun acc l -> acc + List.length l) 0 lists)

let qcheck_table_roundtrip =
  QCheck.Test.make ~name:"table roundtrips arbitrary sorted entries" ~count:30
    QCheck.(small_list (pair (int_bound 10000) small_string))
    (fun raw ->
      let entries =
        raw
        |> List.mapi (fun i (k, v) -> (ik (Printf.sprintf "%06d" k) (i + 1), v))
        |> List.sort_uniq (fun (a, _) (b, _) -> Ikey.compare a b)
      in
      QCheck.assume (entries <> []);
      let env = Env.in_memory () in
      let b =
        Table.Builder.create env ~name:"q" ~category:Io_stats.Flush
          ~expected_keys:(List.length entries) ()
      in
      List.iter (fun (ikey, v) -> Table.Builder.add b ikey v) entries;
      let _ = Table.Builder.finish b in
      let r = Table.Reader.open_ env ~name:"q" in
      let back = List.of_seq (Table.Reader.iter_from r ~category:Io_stats.Read_path ()) in
      Table.Reader.close r;
      List.length back = List.length entries
      && List.for_all2
           (fun (k1, v1) ((k2 : Ikey.t), v2) ->
             Ikey.compare k1 k2 = 0 && String.equal v1 v2)
           entries back)

let suite =
  [
    Alcotest.test_case "block roundtrip" `Quick test_block_roundtrip;
    Alcotest.test_case "block seek" `Quick test_block_seek;
    Alcotest.test_case "block seal/unseal" `Quick test_block_seal_unseal;
    Alcotest.test_case "footer roundtrip" `Quick test_footer_roundtrip;
    Alcotest.test_case "table roundtrip" `Quick test_table_roundtrip;
    Alcotest.test_case "table snapshots" `Quick test_table_snapshot_reads;
    Alcotest.test_case "table iter_from" `Quick test_table_iter_from;
    Alcotest.test_case "bloom short-circuit" `Quick
      test_table_bloom_short_circuits;
    Alcotest.test_case "corruption detection" `Quick
      test_table_corruption_detection;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "merge order" `Quick test_merge_order;
    Alcotest.test_case "merge matches reference sort" `Quick
      test_merge_matches_reference_sort;
    Alcotest.test_case "compact dedup" `Quick test_compact_dedup;
    Alcotest.test_case "compact tombstones" `Quick test_compact_tombstones;
    Alcotest.test_case "compact snapshot floor" `Quick
      test_compact_snapshot_floor;
    QCheck_alcotest.to_alcotest qcheck_merge_is_sorted;
    QCheck_alcotest.to_alcotest qcheck_table_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* Block cursor: must agree with decode_all on every block and seek
   position (before the first key, exact hits, between keys, exactly on
   restart points, past the end, and on the empty block). *)

let cursor_walk raw =
  let cur = Block.Cursor.create raw in
  let rec loop acc =
    if Block.Cursor.next cur then
      loop ((Block.Cursor.key cur, Block.Cursor.value cur) :: acc)
    else List.rev acc
  in
  loop []

let reference_seek entries target =
  List.find_opt (fun (k, _) -> String.compare k target >= 0) entries

let cursor_seek raw target =
  let cur = Block.Cursor.create raw in
  if Block.Cursor.seek cur target then
    Some (Block.Cursor.key cur, Block.Cursor.value cur)
  else None

let check_cursor_agrees raw =
  let entries = Block.decode_all raw in
  Alcotest.(check (list (pair string string)))
    "cursor walk = decode_all" entries (cursor_walk raw);
  let targets =
    ("" :: "\255\255\255" :: List.map fst entries)
    @ List.map (fun (k, _) -> k ^ "\000") entries
  in
  List.iter
    (fun target ->
      let expected = reference_seek entries target in
      let got = cursor_seek raw target in
      if expected <> got then
        Alcotest.failf "seek %S disagrees with reference" target)
    targets

let test_cursor_matches_decode_all () =
  (* Shared prefixes, varied lengths, >= several restart intervals. *)
  let b = Block.Builder.create () in
  for i = 0 to 199 do
    let key =
      if i mod 3 = 0 then Printf.sprintf "user-%05d" i
      else if i mod 3 = 1 then Printf.sprintf "user-%05d-long-suffix-%d" i i
      else Printf.sprintf "user-%05d\000bin" i
    in
    Block.Builder.add b ~key ~value:(String.make (i mod 7) 'v')
  done;
  check_cursor_agrees (Block.Builder.finish b);
  (* Rewind re-walks from the start. *)
  let b = Block.Builder.create () in
  List.iter
    (fun k -> Block.Builder.add b ~key:k ~value:k)
    [ "a"; "ab"; "abc"; "b" ];
  let raw = Block.Builder.finish b in
  let cur = Block.Cursor.create raw in
  ignore (Block.Cursor.seek cur "abc");
  Block.Cursor.rewind cur;
  Alcotest.(check bool) "next after rewind" true (Block.Cursor.next cur);
  Alcotest.(check string) "first key" "a" (Block.Cursor.key cur)

let test_cursor_restart_boundaries () =
  (* One key per restart slot boundary: restart_interval entries apart. *)
  let n = 4 * Wip_sstable.Table_format.restart_interval in
  let b = Block.Builder.create () in
  for i = 0 to n - 1 do
    Block.Builder.add b ~key:(Printf.sprintf "%06d" (2 * i)) ~value:""
  done;
  check_cursor_agrees (Block.Builder.finish b)

let test_cursor_empty_block () =
  let raw = Block.Builder.finish (Block.Builder.create ()) in
  let cur = Block.Cursor.create raw in
  Alcotest.(check bool) "next on empty" false (Block.Cursor.next cur);
  Alcotest.(check bool) "seek on empty" false (Block.Cursor.seek cur "x");
  Alcotest.(check bool) "invalid" false (Block.Cursor.valid cur)

let qcheck_cursor_equivalence =
  QCheck.Test.make ~name:"cursor agrees with decode_all on random blocks"
    ~count:60
    QCheck.(small_list (pair small_string small_string))
    (fun raw_entries ->
      let entries =
        raw_entries
        |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
      in
      let b = Block.Builder.create () in
      List.iter (fun (k, v) -> Block.Builder.add b ~key:k ~value:v) entries;
      let raw = Block.Builder.finish b in
      check_cursor_agrees raw;
      true)

(* Edge cases: degenerate tables. *)

let test_empty_table () =
  let env = Env.in_memory () in
  let b =
    Table.Builder.create env ~name:"empty" ~category:Io_stats.Flush
      ~expected_keys:1 ()
  in
  let meta = Table.Builder.finish b in
  Alcotest.(check int) "no entries" 0 meta.Table.entry_count;
  let r = Table.Reader.open_ env ~name:"empty" in
  Alcotest.(check bool) "get misses" true
    (Table.Reader.get r ~category:Io_stats.Read_path "k" ~snapshot:Int64.max_int
     = None);
  Alcotest.(check int) "iter empty" 0
    (Seq.length (Table.Reader.iter_from r ~category:Io_stats.Read_path ()));
  Table.Reader.close r

let test_single_entry_table () =
  let env = Env.in_memory () in
  let b =
    Table.Builder.create env ~name:"one" ~category:Io_stats.Flush
      ~expected_keys:1 ()
  in
  Table.Builder.add b (ik "only" 1) "";
  let meta = Table.Builder.finish b in
  Alcotest.(check string) "smallest=largest" meta.Table.smallest meta.Table.largest;
  let r = Table.Reader.open_ env ~name:"one" in
  (match
     Table.Reader.get r ~category:Io_stats.Read_path "only" ~snapshot:Int64.max_int
   with
  | Some (Ikey.Value, "", _) -> ()
  | _ -> Alcotest.fail "empty value lost");
  Table.Reader.close r

let test_abandon_removes_file () =
  let env = Env.in_memory () in
  let b =
    Table.Builder.create env ~name:"gone" ~category:Io_stats.Flush
      ~expected_keys:1 ()
  in
  Table.Builder.add b (ik "k" 1) "v";
  Table.Builder.abandon b;
  Alcotest.(check bool) "file deleted" false (Env.exists env "gone")

let suite =
  suite
  @ [
      Alcotest.test_case "empty table" `Quick test_empty_table;
      Alcotest.test_case "single entry" `Quick test_single_entry_table;
      Alcotest.test_case "abandon" `Quick test_abandon_removes_file;
      Alcotest.test_case "cursor = decode_all" `Quick
        test_cursor_matches_decode_all;
      Alcotest.test_case "cursor restart boundaries" `Quick
        test_cursor_restart_boundaries;
      Alcotest.test_case "cursor empty block" `Quick test_cursor_empty_block;
      QCheck_alcotest.to_alcotest qcheck_cursor_equivalence;
    ]
