(* End-to-end service-layer tests over real loopback sockets: round trips
   for every opcode against a live sharded store, out-of-order pipelining
   (a slow scan must not stall puts queued behind it on the same socket),
   the typed wire mapping of engine refusals, malformed-frame handling,
   and a chaos-style outage run asserting that no write acked over the
   wire is ever lost across recovery. *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Fault_env = Wip_storage.Fault_env
module Server = Wip_server.Server
module Client = Wip_server.Client
module Protocol = Wip_server.Protocol
module Ikey = Wip_util.Ikey
module Intf = Wip_kv.Store_intf

let base_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    compaction_budget_per_batch = 0;
    name = "srv";
  }

(* A live sharded store wired into the closure record the server consumes. *)
let mk_sharded_ops ?(shards = 2) () =
  let bounds = Config.shard_boundaries base_config ~shards in
  let stores =
    List.mapi
      (fun i lo ->
        let cfg = { base_config with Config.name = Printf.sprintf "srv-%d" i } in
        (lo, Store.create cfg))
      bounds
  in
  let st = Sh.create ~pool_threads:1 ~idle_sleep:0.0005 stores in
  let ops =
    {
      Server.get = (fun key -> Sh.get st key);
      scan = (fun ~lo ~hi ~limit -> Sh.scan st ~lo ~hi ?limit ());
      commit = (fun batches -> Sh.commit_batches st batches);
      stats = (fun () -> [ ("shards", Int64.of_int (Sh.shard_count st)) ]);
    }
  in
  (st, ops)

let with_server ?workers ?pipeline_depth ?group_commit ops f =
  let srv = Server.start ?workers ?pipeline_depth ?group_commit ~ops () in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.connect ~port:(Server.port srv) () in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" name (Client.error_to_string e)

(* ------------------------------------------------------------------ *)

let test_roundtrips () =
  let st, ops = mk_sharded_ops () in
  with_server ops (fun srv ->
      with_client srv (fun c ->
          ok "ping" (Client.ping c);
          (* Empty store. *)
          Alcotest.(check (option string)) "miss" None (ok "get" (Client.get c "absent"));
          (* Puts across the shard split, binary keys included. *)
          ok "put" (Client.put c ~key:"alpha" ~value:"1");
          ok "put" (Client.put c ~key:"zeta\x00\xff" ~value:"2");
          ok "put" (Client.put c ~key:"" ~value:"empty-key");
          Alcotest.(check (option string)) "hit" (Some "1") (ok "get" (Client.get c "alpha"));
          Alcotest.(check (option string)) "binary key" (Some "2")
            (ok "get" (Client.get c "zeta\x00\xff"));
          Alcotest.(check (option string)) "empty key" (Some "empty-key")
            (ok "get" (Client.get c ""));
          (* Batch with a delete: atomic, and the delete wins. *)
          ok "batch"
            (Client.write_batch c
               [
                 (Ikey.Value, "b1", "x");
                 (Ikey.Value, "b2", "y");
                 (Ikey.Deletion, "alpha", "");
               ]);
          Alcotest.(check (option string)) "deleted" None (ok "get" (Client.get c "alpha"));
          Alcotest.(check (option string)) "batched" (Some "x") (ok "get" (Client.get c "b1"));
          (* Scan merges across shards in order. *)
          let entries = ok "scan" (Client.scan c ~lo:"b" ~hi:"c" ()) in
          Alcotest.(check (list (pair string string)))
            "scan window"
            [ ("b1", "x"); ("b2", "y") ]
            entries;
          let limited = ok "scan" (Client.scan c ~lo:"" ~hi:"\xff" ~limit:1 ()) in
          Alcotest.(check int) "scan limit" 1 (List.length limited);
          (* Delete round trip. *)
          ok "delete" (Client.delete c ~key:"b1");
          Alcotest.(check (option string)) "gone" None (ok "get" (Client.get c "b1"));
          (* Stats pass through verbatim. *)
          let stats = ok "stats" (Client.stats c) in
          Alcotest.(check (option int64)) "stats shards" (Some 2L)
            (List.assoc_opt "shards" stats)));
  Sh.stop st

(* Out-of-order completion: a deliberately slow scan occupies one worker
   while puts pipelined behind it on the same socket complete on the
   others — their acks must arrive before the scan's entries. *)
let test_pipelining () =
  let slow_scan_s = 0.2 in
  let table : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let tlock = Mutex.create () in
  let ops =
    {
      Server.get =
        (fun key ->
          Mutex.lock tlock;
          let v = Hashtbl.find_opt table key in
          Mutex.unlock tlock;
          v);
      scan =
        (fun ~lo:_ ~hi:_ ~limit:_ ->
          Unix.sleepf slow_scan_s;
          []);
      commit =
        (fun batches ->
          Mutex.lock tlock;
          Array.iter
            (fun items ->
              List.iter (fun (_, k, v) -> Hashtbl.replace table k v) items)
            batches;
          Mutex.unlock tlock;
          Array.map (fun _ -> Ok ()) batches);
      stats = (fun () -> []);
    }
  in
  with_server ~workers:4 ops (fun srv ->
      with_client srv (fun c ->
          let scan_id = Client.send c (Protocol.Scan { lo = ""; hi = "z"; limit = None }) in
          let put_ids =
            List.init 8 (fun i ->
                Client.send c
                  (Protocol.Put
                     { key = Printf.sprintf "p%d" i; value = string_of_int i }))
          in
          (* Collect all nine responses in arrival order. *)
          let arrivals =
            List.init 9 (fun _ ->
                match Client.recv c with
                | Ok (id, resp) -> (id, resp)
                | Error e ->
                  Alcotest.failf "recv: %s" (Client.error_to_string e))
          in
          let order = List.map fst arrivals in
          List.iter
            (fun (id, resp) ->
              if List.mem id put_ids then
                match resp with
                | Protocol.Ack -> ()
                | _ -> Alcotest.failf "put %d: unexpected response" id)
            arrivals;
          (* The scan landed last: every put overtook it. *)
          Alcotest.(check int)
            "scan response arrives after all the puts" scan_id
            (List.nth order 8)))

(* Engine refusals travel as themselves, field for field. *)
let test_wire_error_mapping () =
  let refusal = ref (Intf.Backpressure { shard = 3; debt_bytes = 4242 }) in
  let ops =
    {
      Server.get = (fun _ -> None);
      scan = (fun ~lo:_ ~hi:_ ~limit:_ -> []);
      commit = (fun batches -> Array.map (fun _ -> Error !refusal) batches);
      stats = (fun () -> []);
    }
  in
  with_server ops (fun srv ->
      with_client srv (fun c ->
          (match Client.put c ~key:"k" ~value:"v" with
          | Error (Client.Wire (Protocol.Backpressure { shard = 3; debt_bytes = 4242 })) -> ()
          | _ -> Alcotest.fail "backpressure did not travel field-for-field");
          refusal := Intf.Store_degraded { reason = "wal: sync fault" };
          match Client.delete c ~key:"k" with
          | Error (Client.Wire (Protocol.Store_degraded { reason })) ->
            Alcotest.(check string) "degraded reason" "wal: sync fault" reason
          | _ -> Alcotest.fail "degraded did not travel"))

(* A malformed frame gets a typed Bad_request answer and the connection is
   closed — the stream past a framing error is unsynchronized. *)
let test_malformed_frame_hangs_up () =
  let ops =
    {
      Server.get = (fun _ -> None);
      scan = (fun ~lo:_ ~hi:_ ~limit:_ -> []);
      commit = (fun batches -> Array.map (fun _ -> Ok ()) batches);
      stats = (fun () -> []);
    }
  in
  with_server ops (fun srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
      (* A frame with an unknown opcode 0x7f. *)
      let buf = Buffer.create 16 in
      Wip_util.Coding.put_fixed32 buf 5;
      Wip_util.Coding.put_fixed32 buf 1;
      Buffer.add_char buf '\x7f';
      let garbage = Buffer.contents buf in
      let _ = Unix.write_substring fd garbage 0 (String.length garbage) in
      (* Read everything until EOF: exactly one Bad_request frame. *)
      let chunk = Bytes.create 4096 in
      let rec drain acc =
        match Unix.read fd chunk 0 4096 with
        | 0 -> acc
        | n -> drain (acc ^ Bytes.sub_string chunk 0 n)
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> acc
      in
      let bytes = drain "" in
      (match Protocol.decode_response bytes ~pos:0 with
      | Protocol.Frame
          { id = 0; payload = Protocol.Error (Protocol.Bad_request _); next } ->
        Alcotest.(check int) "nothing after the error frame" (String.length bytes) next
      | _ -> Alcotest.fail "expected a Bad_request error frame");
      Unix.close fd)

(* A scan frame whose limit varint decodes negative: the worker must stay
   alive and the client gets a typed Bad_request, not a dropped socket
   mid-request. The stream is unsynchronized afterwards, so the server
   answers once (id 0) and hangs up — same contract as any framing error. *)
let test_negative_scan_limit_over_wire () =
  let scans = ref 0 in
  let ops =
    {
      Server.get = (fun _ -> None);
      scan =
        (fun ~lo:_ ~hi:_ ~limit:_ ->
          incr scans;
          []);
      commit = (fun batches -> Array.map (fun _ -> Ok ()) batches);
      stats = (fun () -> []);
    }
  in
  with_server ops (fun srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
      (* Scan with lo = hi = "" and a 9-byte varint limit whose top bits land
         on the native sign bit. *)
      let payload = Buffer.create 16 in
      Buffer.add_char payload '\x00';
      Buffer.add_char payload '\x00';
      for _ = 1 to 8 do
        Buffer.add_char payload '\x80'
      done;
      Buffer.add_char payload '\x40';
      let buf = Buffer.create 32 in
      Wip_util.Coding.put_fixed32 buf (4 + 1 + Buffer.length payload);
      Wip_util.Coding.put_fixed32 buf 9;
      Buffer.add_char buf '\x06';
      (* tag_scan *)
      Buffer.add_buffer buf payload;
      let frame = Buffer.contents buf in
      let _ = Unix.write_substring fd frame 0 (String.length frame) in
      let chunk = Bytes.create 4096 in
      let rec drain acc =
        match Unix.read fd chunk 0 4096 with
        | 0 -> acc
        | n -> drain (acc ^ Bytes.sub_string chunk 0 n)
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> acc
      in
      let bytes = drain "" in
      (match Protocol.decode_response bytes ~pos:0 with
      | Protocol.Frame
          { id = 0; payload = Protocol.Error (Protocol.Bad_request _); next } ->
        Alcotest.(check int) "single error frame" (String.length bytes) next
      | _ -> Alcotest.fail "expected a Bad_request error frame");
      Unix.close fd;
      (* The store was never asked to scan with the poisoned limit. *)
      Alcotest.(check int) "scan never executed" 0 !scans;
      (* The server is still fully serviceable for the next connection. *)
      with_client srv (fun c -> ok "ping after poison" (Client.ping c)))

(* Chaos row through the full service path: clients hammer puts over the
   wire while the device dies mid-run (a permanent I/O storm). Every put
   acked on the wire before the outage must survive recovery from the
   durable image — an Ack means fsynced, so the set of acked keys is
   exactly what the server promised to keep. *)
let test_no_acked_write_lost_across_outage () =
  let fenv = Fault_env.create () in
  (* Let the store come up healthy, then kill the device permanently. *)
  let outage_start = 40 in
  Fault_env.storm fenv ~first_op:outage_start ~last_op:max_int;
  let db =
    Store.create ~env:(Fault_env.env fenv)
      { base_config with Config.name = "srv-chaos" }
  in
  let commit batches =
    match Store.try_write_batches db (Array.to_list batches) with
    | Error e -> Array.map (fun _ -> Error e) batches
    | Ok () -> (
      match Store.log_sync db with
      | () -> Array.map (fun _ -> Ok ()) batches
      | exception Intf.Rejected e -> Array.map (fun _ -> Error e) batches)
  in
  let ops =
    {
      Server.get = (fun key -> Store.get db key);
      scan = (fun ~lo:_ ~hi:_ ~limit:_ -> []);
      commit;
      stats = (fun () -> []);
    }
  in
  let acked = Queue.create () in
  let alock = Mutex.create () in
  with_server ~workers:2 ops (fun srv ->
      let client_thread t () =
        with_client srv (fun c ->
            (* Each client stops at its first refusal: past the outage the
               server answers with typed errors, never acks. *)
            let rec go i =
              if i < 40 then begin
                let key = Printf.sprintf "c%d-%03d" t i in
                match Client.put c ~key ~value:key with
                | Ok () ->
                  Mutex.lock alock;
                  Queue.push key acked;
                  Mutex.unlock alock;
                  go (i + 1)
                | Error _ -> ()
              end
            in
            go 0)
      in
      let threads = List.init 2 (fun t -> Thread.create (client_thread t) ()) in
      List.iter Thread.join threads);
  (* Recover from the synced prefix of the device — "the power failed
     during the storm" — and audit every wire-level ack. *)
  let db2 =
    Store.recover ~env:(Fault_env.durable_image fenv)
      { base_config with Config.name = "srv-chaos" }
  in
  let lost = ref [] in
  Queue.iter
    (fun key ->
      match Store.get db2 key with
      | Some v when v = key -> ()
      | _ -> lost := key :: !lost)
    acked;
  Alcotest.(check (list string)) "every acked write survived" [] !lost;
  Alcotest.(check bool) "the run acked something before the outage" true
    (not (Queue.is_empty acked))

let suite =
  [
    Alcotest.test_case "round trips for every opcode" `Quick test_roundtrips;
    Alcotest.test_case "pipelining: puts overtake a slow scan" `Quick
      test_pipelining;
    Alcotest.test_case "engine refusals travel typed" `Quick
      test_wire_error_mapping;
    Alcotest.test_case "malformed frame: typed answer, then hangup" `Quick
      test_malformed_frame_hangs_up;
    Alcotest.test_case "negative scan limit: typed answer over the wire" `Quick
      test_negative_scan_limit_over_wire;
    Alcotest.test_case "no acked write lost across a device outage" `Slow
      test_no_acked_write_lost_across_outage;
  ]
