(* Pinned snapshots, SI transactions and version GC:
   - property: reads at a pinned snapshot are exact across all three
     engines through interleaved writes, deletes, flushes and forced
     compactions — version GC never drops a version a live snapshot sees;
   - the drain-before-write hazard on the POSIX Env: a pinned iter_range
     stream keeps draining across a compaction that retires its tables,
     and the retired files are reclaimed on release;
   - SI conflict matrix, and committed transactions surviving a crash;
   - scan-boundary regressions: 17+ bytes of 0xff stay visible, negative
     limits are clamped, boundary-adjacent tables are never fetched. *)

module Store_intf = Wip_kv.Store_intf
module Store = Wipdb.Store
module Config = Wipdb.Config
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Fault_env = Wip_storage.Fault_env
module Rng = Wip_util.Rng
module Model = Map.Make (String)

let key i = Printf.sprintf "%06d" i

let small_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    name = "snap";
  }

let make_engines () =
  let wip = Store.create { small_config with Config.name = "swip" } in
  let lvl =
    Wip_lsm.Leveled.create
      {
        (Wip_lsm.Leveled.leveldb_config ~scale:1) with
        Wip_lsm.Leveled.memtable_bytes = 2 * 1024;
        sstable_bytes = 1024;
        level1_bytes = 8 * 1024;
        name = "slvl";
      }
  in
  let flsm =
    Wip_flsm.Flsm.create
      {
        (Wip_flsm.Flsm.default_config ~scale:1) with
        Wip_flsm.Flsm.memtable_bytes = 2 * 1024;
        top_level_bits = 6;
        name = "sflsm";
      }
  in
  [
    Store_intf.Store ((module Store), wip);
    Store_intf.Store ((module Wip_lsm.Leveled), lvl);
    Store_intf.Store ((module Wip_flsm.Flsm), flsm);
  ]

(* ------------------------------------------------------------------ *)
(* Property: a pinned snapshot always reads exactly the model captured at
   pin time, whatever lands (and however much compaction runs) after. *)

let check_snap ~name ~rng s (snap, m) =
  for _ = 1 to 8 do
    let k = key (Rng.int rng 200) in
    let got = Store_intf.get_at s k ~snapshot:snap in
    let expected = Model.find_opt k m in
    if got <> expected then
      Alcotest.failf "%s: get_at %s saw %s, pinned model has %s" name k
        (Option.value got ~default:"<none>")
        (Option.value expected ~default:"<none>")
  done;
  let a = Rng.int rng 150 in
  let lo = key a and hi = key (a + 50) in
  let got = Store_intf.scan_at s ~lo ~hi ~snapshot:snap () in
  let expected =
    Model.bindings m
    |> List.filter (fun (k, _) -> String.compare k lo >= 0 && String.compare k hi < 0)
  in
  if got <> expected then
    Alcotest.failf "%s: scan_at [%s, %s) returned %d entries, pinned model %d"
      name lo hi (List.length got) (List.length expected)

let run_engine_property ~seed s =
  let name = Store_intf.store_name s in
  let rng = Rng.create ~seed in
  let model = ref Model.empty in
  let snaps = ref [] in
  for step = 0 to 1199 do
    let r = Rng.int rng 100 in
    if r < 55 then begin
      let k = key (Rng.int rng 200) in
      let v = Printf.sprintf "v%d" step in
      Store_intf.put s ~key:k ~value:v;
      model := Model.add k v !model
    end
    else if r < 70 then begin
      let k = key (Rng.int rng 200) in
      Store_intf.delete s ~key:k;
      model := Model.remove k !model
    end
    else if r < 80 then begin
      if List.length !snaps < 6 then
        snaps := (Store_intf.snapshot s, !model) :: !snaps
    end
    else if r < 87 then begin
      match !snaps with
      | [] -> ()
      | (snap, _) :: rest ->
        Store_intf.release snap;
        snaps := rest
    end
    else if r < 95 then begin
      (* Forced GC churn: flush then compact with the floor at the oldest
         live snapshot. *)
      Store_intf.flush s;
      Store_intf.maintenance s ()
    end
    else List.iter (check_snap ~name ~rng s) !snaps
  done;
  Store_intf.flush s;
  Store_intf.maintenance s ();
  List.iter (check_snap ~name ~rng s) !snaps;
  List.iter (fun (snap, _) -> Store_intf.release snap) !snaps;
  (* With every snapshot released the floor is gone: compaction may now
     collapse history, but the current view must still match the model. *)
  Store_intf.flush s;
  Store_intf.maintenance s ();
  Model.iter
    (fun k v ->
      if Store_intf.get s k <> Some v then
        Alcotest.failf "%s: current read of %s diverged after release" name k)
    !model

let test_pinned_reads_exact () =
  List.iter
    (fun seed -> List.iter (run_engine_property ~seed) (make_engines ()))
    [ 0xC0FFEEL; 0x5EEDL ]

(* ------------------------------------------------------------------ *)
(* The store.ml drain-before-write hazard, on the real filesystem: a
   pinned stream must keep draining after compaction retires the tables
   it reads, and the retired files must be reclaimed once released. *)

let test_pinned_stream_survives_retirement_posix () =
  let root = Filename.temp_file "wipdb-snap" "" in
  Sys.remove root;
  let env = Env.posix ~root in
  let db = Store.create ~env { small_config with Config.name = "pin" } in
  let n = 2000 in
  for i = 0 to n - 1 do
    Store.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Store.flush db;
  Store.maintenance db ();
  let snap = Store.snapshot db in
  let stream = Store.iter_range db ~snapshot:snap ~lo:"" ~hi:"\255" () in
  (* Capture the first bucket's table streams by consuming a prefix. *)
  let rec take_n acc k seq =
    if k = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> take_n (x :: acc) (k - 1) rest
  in
  let prefix, rest = take_n [] 100 stream in
  (* Retire those tables: overwrite everything, flush, compact. *)
  for i = 0 to n - 1 do
    Store.put db ~key:(key i) ~value:"CHANGED"
  done;
  Store.flush db;
  Store.maintenance db ();
  let zombies = Store.zombie_table_files db in
  Alcotest.(check bool) "compaction retired pinned tables" true (zombies <> []);
  Alcotest.(check bool) "zombie bytes accounted" true (Store.zombie_bytes db > 0);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " still on device") true (Env.exists env f))
    zombies;
  (* The pinned stream must still drain to exactly the pre-churn view. *)
  let got = prefix @ List.of_seq rest in
  Alcotest.(check int) "pinned drain complete" n (List.length got);
  List.iteri
    (fun i (k, v) ->
      if k <> key i || v <> "v" ^ string_of_int i then
        Alcotest.failf "pinned stream diverged at %d: (%s, %s)" i k v)
    got;
  (* Release reclaims every zombie, on the POSIX device too. *)
  Wip_kv.Store_intf.release snap;
  Alcotest.(check (list string)) "zombies reclaimed" [] (Store.zombie_table_files db);
  Alcotest.(check int) "no snapshot live" 0 (Store.live_snapshot_count db);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " deleted after release") false
        (Env.exists env f))
    zombies;
  (* Releasing twice is harmless. *)
  Wip_kv.Store_intf.release snap

(* ------------------------------------------------------------------ *)
(* SI transactions *)

let check_commit what expected got =
  let pp = function
    | Ok () -> "Ok"
    | Error e -> Store_intf.write_error_to_string e
  in
  if got <> expected then
    Alcotest.failf "%s: expected %s, got %s" what (pp expected) (pp got)

let test_txn_conflict_matrix () =
  let db = Store.create small_config in
  Store.put db ~key:"base" ~value:"b0";
  (* Disjoint write sets: both commit. *)
  let t1 = Store.txn_begin db and t2 = Store.txn_begin db in
  Store.txn_put t1 ~key:"a" ~value:"1";
  Store.txn_put t2 ~key:"b" ~value:"2";
  check_commit "disjoint t1" (Ok ()) (Store.txn_commit t1);
  check_commit "disjoint t2" (Ok ()) (Store.txn_commit t2);
  Alcotest.(check (option string)) "a" (Some "1") (Store.get db "a");
  Alcotest.(check (option string)) "b" (Some "2") (Store.get db "b");
  (* Write-write conflict: first committer wins. *)
  let t1 = Store.txn_begin db and t2 = Store.txn_begin db in
  Store.txn_put t1 ~key:"k" ~value:"x";
  Store.txn_put t2 ~key:"k" ~value:"y";
  check_commit "ww winner" (Ok ()) (Store.txn_commit t1);
  check_commit "ww loser"
    (Error (Store_intf.Txn_conflict { key = "k" }))
    (Store.txn_commit t2);
  Alcotest.(check (option string)) "winner's value" (Some "x") (Store.get db "k");
  (* Read-write conflict: a commit under the transaction's read invalidates
     it even when the write sets are disjoint. *)
  let t = Store.txn_begin db in
  ignore (Store.txn_get t "base");
  Store.put db ~key:"base" ~value:"b1";
  Store.txn_put t ~key:"other" ~value:"o";
  check_commit "rw conflict"
    (Error (Store_intf.Txn_conflict { key = "base" }))
    (Store.txn_commit t);
  Alcotest.(check (option string)) "aborted write invisible" None
    (Store.get db "other");
  (* Reads of untouched keys don't conflict; own writes are read back. *)
  let t = Store.txn_begin db in
  Store.txn_put t ~key:"rw" ~value:"mine";
  Alcotest.(check (option string)) "own write" (Some "mine")
    (Store.txn_get t "rw");
  Store.txn_delete t ~key:"a";
  Alcotest.(check (option string)) "own delete" None (Store.txn_get t "a");
  ignore (Store.txn_get t "quiet");
  Store.put db ~key:"elsewhere" ~value:"z";
  check_commit "no conflict" (Ok ()) (Store.txn_commit t);
  Alcotest.(check (option string)) "committed write" (Some "mine")
    (Store.get db "rw");
  Alcotest.(check (option string)) "committed delete" None (Store.get db "a");
  (* The snapshot view holds while the transaction runs. *)
  let t = Store.txn_begin db in
  Store.put db ~key:"rw" ~value:"later";
  Alcotest.(check (option string)) "pinned read" (Some "mine")
    (Store.txn_get t "rw");
  Store.txn_abort t;
  (* Abort discards buffered writes and releases the pin; closed handles
     refuse further use. *)
  let t = Store.txn_begin db in
  Store.txn_put t ~key:"ab" ~value:"v";
  Store.txn_abort t;
  Alcotest.(check (option string)) "abort discards" None (Store.get db "ab");
  (match Store.txn_put t ~key:"ab" ~value:"again" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "closed transaction accepted a write");
  Alcotest.(check int) "all transaction pins released" 0
    (Store.live_snapshot_count db)

let test_committed_txns_survive_crash () =
  let fenv = Fault_env.create () in
  let db = Store.create ~env:(Fault_env.env fenv) small_config in
  (* An uncommitted transaction leaves no durable trace. *)
  let t0 = Store.txn_begin db in
  Store.txn_put t0 ~key:"ghost" ~value:"boo";
  let pre = Store.recover ~env:(Fault_env.durable_image fenv) small_config in
  Alcotest.(check (option string)) "uncommitted invisible" None
    (Store.get pre "ghost");
  Store.txn_abort t0;
  (* Acked transactions survive recovery from the durable image, whole. *)
  for n = 1 to 5 do
    let t = Store.txn_begin db in
    for j = 0 to 3 do
      Store.txn_put t
        ~key:(Printf.sprintf "t%d-%d" n j)
        ~value:(Printf.sprintf "v%d" n)
    done;
    (match Store.txn_commit t with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "txn %d refused: %s" n (Store_intf.write_error_to_string e));
    Store.checkpoint db;
    let db2 = Store.recover ~env:(Fault_env.durable_image fenv) small_config in
    for m = 1 to n do
      for j = 0 to 3 do
        Alcotest.(check (option string))
          (Printf.sprintf "txn %d key %d after crash %d" m j n)
          (Some (Printf.sprintf "v%d" m))
          (Store.get db2 (Printf.sprintf "t%d-%d" m j))
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Scan-boundary regressions *)

let test_long_0xff_keys_visible () =
  let db = Store.create small_config in
  let k17 = String.make 17 '\255' in
  let k20 = String.make 20 '\255' in
  Store.put db ~key:k17 ~value:"a";
  Store.put db ~key:k20 ~value:"b";
  Store.put db ~key:"zzz" ~value:"c";
  let hi = String.make 32 '\255' in
  let check_visible stage =
    Alcotest.(check (list (pair string string)))
      (stage ^ ": all-0xff keys in scan")
      [ ("zzz", "c"); (k17, "a"); (k20, "b") ]
      (Store.scan db ~lo:"z" ~hi ());
    Alcotest.(check (option string)) (stage ^ ": 17-byte get") (Some "a")
      (Store.get db k17);
    Alcotest.(check (option string)) (stage ^ ": 20-byte get") (Some "b")
      (Store.get db k20)
  in
  check_visible "memtable";
  Store.flush db;
  Store.maintenance db ();
  check_visible "tables";
  (* The old sentinel made [lo] at/above 17 bytes of 0xff skip the last
     bucket entirely. *)
  Alcotest.(check (list (pair string string)))
    "scan starting at the old sentinel"
    [ (k17, "a"); (k20, "b") ]
    (Store.scan db ~lo:k17 ~hi ());
  let snap = Store.snapshot db in
  Alcotest.(check (list (pair string string)))
    "pinned scan past the old sentinel"
    [ (k17, "a"); (k20, "b") ]
    (Store.scan_at db ~lo:k17 ~hi ~snapshot:snap ());
  Wip_kv.Store_intf.release snap

let test_negative_limit_clamped () =
  List.iter
    (fun s ->
      let name = Store_intf.store_name s in
      for i = 0 to 49 do
        Store_intf.put s ~key:(key i) ~value:"v"
      done;
      Alcotest.(check int)
        (name ^ ": negative limit is empty")
        0
        (List.length (Store_intf.scan s ~lo:"" ~hi:"\255" ~limit:(-3) ()));
      Alcotest.(check int)
        (name ^ ": zero limit is empty")
        0
        (List.length (Store_intf.scan s ~lo:"" ~hi:"\255" ~limit:0 ()));
      Alcotest.(check int)
        (name ^ ": max_int limit is unbounded")
        50
        (List.length (Store_intf.scan s ~lo:"" ~hi:"\255" ~limit:max_int ()));
      let snap = Store_intf.snapshot s in
      Alcotest.(check int)
        (name ^ ": negative limit at snapshot")
        0
        (List.length
           (Store_intf.scan_at s ~lo:"" ~hi:"\255" ~limit:(-1) ~snapshot:snap ()));
      Store_intf.release snap)
    (make_engines ())

let test_boundary_table_not_fetched () =
  let env = Env.in_memory () in
  let db = Store.create ~env { small_config with Config.name = "bnd" } in
  (* A single table whose smallest key is exactly the scan's exclusive
     upper bound. *)
  Store.put db ~key:"m" ~value:"v0";
  for i = 1 to 19 do
    Store.put db ~key:(Printf.sprintf "m%02d" i) ~value:"v"
  done;
  Store.flush db;
  Store.maintenance db ();
  let stats = Env.stats env in
  let read () = Io_stats.read_by stats Io_stats.Read_path in
  let b0 = read () in
  Alcotest.(check (list (pair string string)))
    "scan below the boundary" []
    (Store.scan db ~lo:"a" ~hi:"m" ());
  Alcotest.(check int) "boundary table not fetched" 0 (read () - b0);
  (* Sanity: the instrument fires as soon as the bound admits the table. *)
  Alcotest.(check (list (pair string string)))
    "inclusive bound reads it"
    [ ("m", "v0") ]
    (Store.scan db ~lo:"a" ~hi:"m\001" ());
  Alcotest.(check bool) "fetch observed" true (read () - b0 > 0)

let suite =
  [
    Alcotest.test_case "pinned reads exact (all engines)" `Quick
      test_pinned_reads_exact;
    Alcotest.test_case "pinned stream survives retirement (posix)" `Quick
      test_pinned_stream_survives_retirement_posix;
    Alcotest.test_case "SI conflict matrix" `Quick test_txn_conflict_matrix;
    Alcotest.test_case "committed txns survive crash" `Quick
      test_committed_txns_survive_crash;
    Alcotest.test_case "17-byte 0xff keys visible" `Quick
      test_long_0xff_keys_visible;
    Alcotest.test_case "negative scan limit clamped" `Quick
      test_negative_limit_clamped;
    Alcotest.test_case "boundary table not fetched" `Quick
      test_boundary_table_not_fetched;
  ]
