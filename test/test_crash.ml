(* Crash-injection tests: cut the device state at arbitrary points and
   verify recovery semantics — batches are atomic, the surviving set is a
   prefix of the write order, and corruption never escapes as wrong data.

   Device images come from Fault_env.snapshot_env, which also handles the
   degenerate cases the old hand-rolled copier crashed on (no WAL segment,
   truncation target missing). *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Env = Wip_storage.Env
module Fault_env = Wip_storage.Fault_env

let wal_only_config =
  (* Memtables far larger than the test writes: everything lives in WAL. *)
  { Config.default with Config.name = "crash"; memtable_items = 1 lsl 20 }

let key b i = Printf.sprintf "b%03d-i%02d" b i

let build_fenv ~batches ~batch_size =
  let fenv = Fault_env.create () in
  let db = Store.create ~env:(Fault_env.env fenv) wal_only_config in
  for b = 0 to batches - 1 do
    Store.write_batch db
      (List.init batch_size (fun i ->
           (Wip_util.Ikey.Value, key b i, Printf.sprintf "v%d-%d" b i)))
  done;
  fenv

let wal_segments fenv =
  Env.list_files (Fault_env.env fenv)
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.sort String.compare

let check_prefix_atomicity db ~batches ~batch_size =
  (* Find how many whole batches survived; then assert exact prefix
     semantics around that boundary. *)
  let batch_present b =
    let found =
      List.init batch_size (fun i -> Store.get db (key b i) <> None)
    in
    if List.for_all Fun.id found then `All
    else if List.exists Fun.id found then `Partial
    else `None
  in
  let survived = ref 0 in
  let after_gap = ref false in
  for b = 0 to batches - 1 do
    match batch_present b with
    | `All ->
      if !after_gap then
        Alcotest.failf "batch %d survived after a lost batch (not a prefix)" b;
      incr survived
    | `None -> after_gap := true
    | `Partial -> Alcotest.failf "batch %d partially recovered (not atomic)" b
  done;
  (* Values of survivors must be exact. *)
  for b = 0 to !survived - 1 do
    for i = 0 to batch_size - 1 do
      Alcotest.(check (option string))
        (Printf.sprintf "batch %d item %d" b i)
        (Some (Printf.sprintf "v%d-%d" b i))
        (Store.get db (key b i))
    done
  done;
  !survived

let test_truncation_sweep () =
  let batches = 12 and batch_size = 5 in
  let fenv = build_fenv ~batches ~batch_size in
  let wal =
    match wal_segments fenv with
    | [ seg ] -> seg
    | _ -> Alcotest.fail "expected a single WAL segment"
  in
  let total = Fault_env.file_size fenv wal in
  (* Cut at a spread of byte offsets, including record boundaries ±1. *)
  let rng = Wip_util.Rng.create ~seed:0xC4A5L in
  let cuts =
    0 :: 1 :: (total - 1) :: total
    :: List.init 24 (fun _ -> Wip_util.Rng.int rng (total + 1))
  in
  List.iter
    (fun cut ->
      let env' = Fault_env.snapshot_env ~truncate:(wal, cut) fenv in
      let db = Store.recover ~env:env' wal_only_config in
      let survived = check_prefix_atomicity db ~batches ~batch_size in
      if cut = total && survived <> batches then
        Alcotest.failf "uncut log lost %d batches" (batches - survived);
      if cut = 0 && survived <> 0 then Alcotest.fail "empty log produced data")
    cuts

let test_corruption_mid_log () =
  let batches = 8 and batch_size = 4 in
  let fenv = build_fenv ~batches ~batch_size in
  let wal = List.hd (wal_segments fenv) in
  (* Flip one bit somewhere in the middle: replay must stop at the damaged
     record, keeping an intact prefix and never inventing data. *)
  let pos = Fault_env.file_size fenv wal / 2 in
  Fault_env.flip_bit fenv ~file:wal ~bit:((pos * 8) + 6);
  let db = Store.recover ~env:(Fault_env.snapshot_env fenv) wal_only_config in
  let survived = check_prefix_atomicity db ~batches ~batch_size in
  Alcotest.(check bool)
    (Printf.sprintf "some prefix survived (%d), not everything" survived)
    true
    (survived < batches)

let test_snapshot_without_wal () =
  (* Regression: imaging a device with no WAL segment must not fail (the old
     copier indexed into an empty segment list), and a truncation aimed at a
     file that does not exist is ignored. *)
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "lone" in
  Env.append w ~category:Wip_storage.Io_stats.Manifest "data";
  Env.sync w;
  let img = Fault_env.snapshot_env ~truncate:("absent.log", 0) fenv in
  Alcotest.(check bool) "file copied" true (Env.exists img "lone")

let test_crash_after_flush_loses_nothing () =
  (* Once data is flushed and the manifest recorded, even deleting the whole
     WAL must not lose it. *)
  let env = Env.in_memory () in
  let cfg = { wal_only_config with Config.memtable_items = 64 } in
  let db = Store.create ~env cfg in
  for i = 0 to 999 do
    Store.put db ~key:(Printf.sprintf "%06d" i) ~value:"v"
  done;
  Store.flush db;
  Store.checkpoint db;
  (* Destroy the log entirely. *)
  Env.list_files env
  |> List.filter (fun f -> Filename.check_suffix f ".log")
  |> List.iter (Env.delete env);
  let db2 = Store.recover ~env cfg in
  for i = 0 to 999 do
    if Store.get db2 (Printf.sprintf "%06d" i) = None then
      Alcotest.failf "flushed key %d lost without WAL" i
  done

let suite =
  [
    Alcotest.test_case "WAL truncation sweep" `Quick test_truncation_sweep;
    Alcotest.test_case "mid-log corruption" `Quick test_corruption_mid_log;
    Alcotest.test_case "snapshot without WAL" `Quick test_snapshot_without_wal;
    Alcotest.test_case "crash after flush" `Quick test_crash_after_flush_loses_nothing;
  ]
