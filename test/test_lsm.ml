(* Tests for wip_lsm: the LevelDB/RocksDB-like leveled baseline. *)

module Leveled = Wip_lsm.Leveled
module Table = Wip_sstable.Table
module Io_stats = Wip_storage.Io_stats

module Model = Map.Make (String)

let small_config =
  {
    Leveled.memtable_bytes = 2 * 1024;
    sstable_bytes = 1024;
    l0_compaction_trigger = 4;
    level1_bytes = 8 * 1024;
    level_multiplier = 10;
    max_levels = 7;
    bits_per_key = 10;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "LevelDB-test";
  }

let key i = Printf.sprintf "%08d" i

let test_put_get () =
  let db = Leveled.create small_config in
  Leveled.put db ~key:"a" ~value:"1";
  Leveled.put db ~key:"b" ~value:"2";
  Alcotest.(check (option string)) "a" (Some "1") (Leveled.get db "a");
  Alcotest.(check (option string)) "b" (Some "2") (Leveled.get db "b");
  Alcotest.(check (option string)) "missing" None (Leveled.get db "c")

let test_overwrite () =
  let db = Leveled.create small_config in
  Leveled.put db ~key:"k" ~value:"old";
  Leveled.put db ~key:"k" ~value:"new";
  Alcotest.(check (option string)) "latest" (Some "new") (Leveled.get db "k")

let test_delete () =
  let db = Leveled.create small_config in
  Leveled.put db ~key:"k" ~value:"v";
  Leveled.delete db ~key:"k";
  Alcotest.(check (option string)) "deleted" None (Leveled.get db "k");
  (* Deletion survives flush + compaction. *)
  Leveled.flush db;
  Leveled.maintenance db ();
  Alcotest.(check (option string)) "still deleted" None (Leveled.get db "k")

let test_persistence_through_compaction () =
  let db = Leveled.create small_config in
  let n = 3000 in
  for i = 0 to n - 1 do
    Leveled.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Leveled.flush db;
  Leveled.maintenance db ();
  Alcotest.(check bool) "multiple levels formed" true (Leveled.level_count db >= 2);
  for i = 0 to n - 1 do
    match Leveled.get db (key i) with
    | Some v when String.equal v ("v" ^ string_of_int i) -> ()
    | _ -> Alcotest.failf "lost key %d" i
  done

let test_leveled_invariant_disjoint () =
  let db = Leveled.create small_config in
  for i = 0 to 4999 do
    Leveled.put db ~key:(key (i * 7919 mod 5000)) ~value:"v"
  done;
  Leveled.flush db;
  Leveled.maintenance db ();
  (* Levels >= 1: files sorted by smallest and non-overlapping. *)
  for level = 1 to 6 do
    let files = Leveled.files_at_level db level in
    let rec check = function
      | (a : Table.meta) :: (b : Table.meta) :: rest ->
        if String.compare a.Table.largest b.Table.smallest >= 0 then
          Alcotest.failf "overlap at level %d: %s >= %s" level a.Table.largest
            b.Table.smallest;
        check (b :: rest)
      | _ -> ()
    in
    check files
  done

let test_scan () =
  let db = Leveled.create small_config in
  for i = 0 to 999 do
    Leveled.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Leveled.delete db ~key:(key 500);
  let r = Leveled.scan db ~lo:(key 495) ~hi:(key 505) () in
  Alcotest.(check int) "9 live keys in range" 9 (List.length r);
  Alcotest.(check bool) "500 skipped" true (not (List.mem_assoc (key 500) r));
  let limited = Leveled.scan db ~lo:(key 0) ~hi:(key 999) ~limit:10 () in
  Alcotest.(check int) "limit" 10 (List.length limited)

let test_model_random_ops () =
  let db = Leveled.create small_config in
  let model = ref Model.empty in
  let rng = Wip_util.Rng.create ~seed:13L in
  for i = 0 to 4999 do
    let k = key (Wip_util.Rng.int rng 500) in
    if Wip_util.Rng.int rng 5 = 0 then begin
      Leveled.delete db ~key:k;
      model := Model.remove k !model
    end
    else begin
      let v = "v" ^ string_of_int i in
      Leveled.put db ~key:k ~value:v;
      model := Model.add k v !model
    end
  done;
  for i = 0 to 499 do
    let k = key i in
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Model.find_opt k !model) (Leveled.get db k)
  done;
  (* Full scan equals the model. *)
  let scanned = Leveled.scan db ~lo:"" ~hi:"\255" () in
  Alcotest.(check int) "scan size" (Model.cardinal !model) (List.length scanned);
  List.iter
    (fun (k, v) ->
      match Model.find_opt k !model with
      | Some v' when String.equal v v' -> ()
      | _ -> Alcotest.failf "scan mismatch at %s" k)
    scanned

let test_wa_grows_with_depth () =
  (* The leveled design rewrites target-level data: its WA must exceed
     WipDB's l_max-ish bound on a store deep enough to have 3+ levels. *)
  let db = Leveled.create small_config in
  for i = 0 to 19_999 do
    Leveled.put db ~key:(key (i * 7919 mod 20_000)) ~value:(String.make 64 'v')
  done;
  Leveled.flush db;
  Leveled.maintenance db ();
  let wa = Io_stats.write_amplification (Leveled.io_stats db) in
  Alcotest.(check bool)
    (Printf.sprintf "leveled WA %.2f > 4.5" wa)
    true (wa > 4.5)

let test_guard_positions () =
  let db = Leveled.create small_config in
  for i = 0 to 4999 do
    Leveled.put db ~key:(Printf.sprintf "%016d" (i * 200_000 mod 1_000_000_000))
      ~value:"v"
  done;
  Leveled.flush db;
  Leveled.maintenance db ();
  let guards = Leveled.guard_positions db ~level:1 ~every:500 ~space:1_000_000_000L in
  List.iter
    (fun f -> if f < 0.0 || f > 1.0 then Alcotest.failf "guard frac %f" f)
    guards;
  (* Guards must be non-decreasing along the level. *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (mono guards)

let test_configs () =
  let l = Leveled.leveldb_config ~scale:2 in
  let r = Leveled.rocksdb_config ~scale:2 in
  let rb = Leveled.rocksdb_bigmem_config ~scale:2 in
  Alcotest.(check bool) "bigmem larger" true (rb.Leveled.memtable_bytes > r.Leveled.memtable_bytes);
  Alcotest.(check bool) "names differ" true (l.Leveled.name <> r.Leveled.name)

let qcheck_model =
  QCheck.Test.make ~name:"leveled store agrees with Map model" ~count:15
    QCheck.(small_list (pair (int_bound 100) (option (int_bound 1000))))
    (fun ops ->
      let db = Leveled.create small_config in
      let model = ref Model.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            let v = string_of_int v in
            Leveled.put db ~key:k ~value:v;
            model := Model.add k v !model
          | None ->
            Leveled.delete db ~key:k;
            model := Model.remove k !model)
        ops;
      Leveled.flush db;
      Leveled.maintenance db ();
      Model.for_all (fun k v -> Leveled.get db k = Some v) !model
      && List.for_all
           (fun (k, _) -> Leveled.get db (key k) = Model.find_opt (key k) !model)
           ops)

let suite =
  [
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "compaction persistence" `Quick
      test_persistence_through_compaction;
    Alcotest.test_case "disjoint levels" `Quick test_leveled_invariant_disjoint;
    Alcotest.test_case "scan" `Quick test_scan;
    Alcotest.test_case "model random ops" `Quick test_model_random_ops;
    Alcotest.test_case "WA grows with depth" `Slow test_wa_grows_with_depth;
    Alcotest.test_case "guard positions" `Quick test_guard_positions;
    Alcotest.test_case "config presets" `Quick test_configs;
    QCheck_alcotest.to_alcotest qcheck_model;
  ]

let test_recovery_roundtrip () =
  let env = Wip_storage.Env.in_memory () in
  let db = Leveled.create ~env small_config in
  for i = 0 to 4999 do
    Leveled.put db ~key:(key (i * 7 mod 5000)) ~value:("v" ^ string_of_int i)
  done;
  Leveled.delete db ~key:(key 3);
  let db2 = Leveled.recover ~env small_config in
  Alcotest.(check (option string)) "deletion recovered" None (Leveled.get db2 (key 3));
  for i = 0 to 4999 do
    if i <> 3 && Leveled.get db2 (key i) = None then
      Alcotest.failf "recovery lost key %d" i
  done;
  (* The recovered structure keeps the leveled invariant and accepts writes. *)
  Leveled.put db2 ~key:"post" ~value:"crash";
  Alcotest.(check (option string)) "writes continue" (Some "crash")
    (Leveled.get db2 "post")

let test_recovery_of_unflushed_writes () =
  let env = Wip_storage.Env.in_memory () in
  let db = Leveled.create ~env small_config in
  Leveled.put db ~key:"wal-only" ~value:"survives";
  let db2 = Leveled.recover ~env small_config in
  Alcotest.(check (option string)) "wal replay" (Some "survives")
    (Leveled.get db2 "wal-only")

let test_recover_fresh_env () =
  let db = Leveled.recover small_config in
  Leveled.put db ~key:"a" ~value:"b";
  Alcotest.(check (option string)) "acts as create" (Some "b") (Leveled.get db "a")

let suite =
  suite
  @ [
      Alcotest.test_case "recovery roundtrip" `Quick test_recovery_roundtrip;
      Alcotest.test_case "recovery of unflushed" `Quick
        test_recovery_of_unflushed_writes;
      Alcotest.test_case "recover fresh env" `Quick test_recover_fresh_env;
    ]
