(* Group commit: window coalescing, the per-window fsync saving, typed
   failure of followers when a leader's commit blows up, and crash-matrix
   rows for the commit unit itself — a crash at EVERY durable op across a
   workload of multi-batch windows, recovering each image and asserting
   that exactly a prefix survives, acked windows are never lost, and no
   batch inside a window is ever torn. *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats
module Group_commit = Wip_server.Group_commit
module Ikey = Wip_util.Ikey
module Intf = Wip_kv.Store_intf

let cfg name =
  {
    Config.default with
    (* Memtable and segment sized so the workload's durable ops are the
       WAL appends and explicit syncs — no flush noise in the counts. *)
    Config.memtable_items = 4096;
    memtable_bytes = 1024 * 1024;
    wal_segment_bytes = 1024 * 1024;
    block_cache_bytes = 0;
    name;
  }

(* ------------------------------------------------------------------ *)
(* Window coalescing under real concurrency *)

let test_windows_coalesce () =
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let tlock = Mutex.create () in
  let commit batches =
    (* A slow device: while the leader is "inside the fsync", the other
       submitters must pile into the next window. *)
    Unix.sleepf 0.03;
    Mutex.lock tlock;
    Array.iter
      (fun items ->
        List.iter (fun (_, k, v) -> Hashtbl.replace table k v) items)
      batches;
    Mutex.unlock tlock;
    Array.map (fun _ -> Ok ()) batches
  in
  let stats = Io_stats.create () in
  let gc = Group_commit.create ~max_delay_s:0.002 ~stats ~commit () in
  let n = 8 in
  let results = Array.make n (Error (Intf.Store_degraded { reason = "unset" })) in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            results.(i) <-
              Group_commit.submit gc
                [ (Ikey.Value, Printf.sprintf "k%d" i, Printf.sprintf "v%d" i) ])
          ())
  in
  List.iter Thread.join threads;
  Group_commit.stop gc;
  Array.iteri
    (fun i r ->
      match r with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "submit %d refused: %s" i (Intf.write_error_to_string e))
    results;
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%d applied" i)
      (Some (Printf.sprintf "v%d" i))
      (Hashtbl.find_opt table (Printf.sprintf "k%d" i))
  done;
  Alcotest.(check int) "every request carried" n (Group_commit.requests gc);
  let w = Group_commit.windows gc in
  if w >= n then
    Alcotest.failf "no coalescing: %d windows for %d requests" w n;
  (* The stats hook saw the same window/request totals. *)
  Alcotest.(check int) "stats windows" w (Io_stats.group_commit_count stats);
  Alcotest.(check int) "stats requests" n
    (Io_stats.group_commit_request_count stats)

let test_no_coalesce_baseline () =
  let commit batches = Array.map (fun _ -> Ok ()) batches in
  let gc = Group_commit.create ~coalesce:false ~commit () in
  let n = 6 in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Group_commit.submit gc [ (Ikey.Value, string_of_int i, "v") ] with
            | Ok () -> ()
            | Error _ -> assert false)
          ())
  in
  List.iter Thread.join threads;
  Group_commit.stop gc;
  Alcotest.(check int) "requests" n (Group_commit.requests gc);
  Alcotest.(check int) "baseline: one window per request" n
    (Group_commit.windows gc)

let test_stop_refuses () =
  let gc =
    Group_commit.create ~commit:(fun b -> Array.map (fun _ -> Ok ()) b) ()
  in
  Group_commit.stop gc;
  match Group_commit.submit gc [ (Ikey.Value, "k", "v") ] with
  | Error (Intf.Store_degraded _) -> ()
  | Ok () -> Alcotest.fail "submit after stop succeeded"
  | Error e ->
    Alcotest.failf "wrong refusal: %s" (Intf.write_error_to_string e)

(* A leader whose commit raises must fail its followers with a typed
   verdict — nobody parks forever — and the exception must escape only
   through the leader's own submit. *)
let test_leader_crash_fails_followers () =
  let commit _ =
    Unix.sleepf 0.03;
    failwith "device went away"
  in
  let gc = Group_commit.create ~max_delay_s:0.002 ~commit () in
  let n = 4 in
  let outcomes = Array.make n `Pending in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            outcomes.(i) <-
              (match Group_commit.submit gc [ (Ikey.Value, string_of_int i, "v") ] with
              | Ok () -> `Acked
              | Error (Intf.Store_degraded _) -> `Typed
              | Error _ -> `Wrong
              | exception Failure _ -> `Raised))
          ())
  in
  (* Join with the test harness's own patience as the hang detector. *)
  List.iter Thread.join threads;
  let raised = ref 0 and typed = ref 0 in
  Array.iteri
    (fun i o ->
      match o with
      | `Raised -> incr raised
      | `Typed -> incr typed
      | `Acked -> Alcotest.failf "submit %d acked a failed commit" i
      | `Wrong -> Alcotest.failf "submit %d got a non-degraded error" i
      | `Pending -> Alcotest.failf "submit %d never completed" i)
    outcomes;
  Alcotest.(check int) "every submitter heard back" n (!raised + !typed);
  if !raised = 0 then Alcotest.fail "no leader re-raised the commit failure"

(* ------------------------------------------------------------------ *)
(* The fsync saving, measured on the real engine: one window of four
   batches costs one WAL append + one sync; four solo commits cost four
   of each. This is the deterministic core of the benchmark's headline. *)

let test_engine_fsync_accounting () =
  let batch i = [ (Ikey.Value, Printf.sprintf "b%d" i, "v") ] in
  let grouped =
    let fenv = Fault_env.create () in
    let db = Store.create ~env:(Fault_env.env fenv) (cfg "gc-grouped") in
    let before = Fault_env.durable_ops fenv in
    (match Store.try_write_batches db (List.init 4 batch) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "grouped: %s" (Intf.write_error_to_string e));
    Store.log_sync db;
    Fault_env.durable_ops fenv - before
  in
  let solo =
    let fenv = Fault_env.create () in
    let db = Store.create ~env:(Fault_env.env fenv) (cfg "gc-solo") in
    let before = Fault_env.durable_ops fenv in
    List.iter
      (fun i ->
        (match Store.try_write_batch db (batch i) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "solo: %s" (Intf.write_error_to_string e));
        Store.log_sync db)
      [ 0; 1; 2; 3 ];
    Fault_env.durable_ops fenv - before
  in
  Alcotest.(check int) "grouped window: one append + one sync" 2 grouped;
  Alcotest.(check int) "solo commits: four appends + four syncs" 8 solo

(* ------------------------------------------------------------------ *)
(* Crash-matrix rows for the commit unit *)

(* The workload the leader performs per window, replayed deterministically:
   each window carries two batches of two items, appended as one physical
   write ([try_write_batches]) then fsynced ([log_sync]). A window is
   "acked" only once log_sync returns — exactly when Group_commit hands
   out Ok verdicts. *)

let total_windows = 10

let wkey w b i = Printf.sprintf "w%02d-b%d-k%d" w b i

let wvalue w b i = Printf.sprintf "val-%d-%d-%d" w b i

let window_batches w =
  List.init 2 (fun b ->
      List.init 2 (fun i -> (Ikey.Value, wkey w b i, wvalue w b i)))

let run_windows db acked =
  for w = 1 to total_windows do
    (match Store.try_write_batches db (window_batches w) with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "window %d refused: %s" w (Intf.write_error_to_string e));
    (* Crash here = "between WAL append and fsync": window w appended,
       never acked. *)
    Store.log_sync db;
    (* Crash after this point = "after fsync, before acks": durable, and
       the recovery must keep it whether or not anyone recorded the ack. *)
    acked := w
  done

(* Which windows / batches survived recovery, and with what fidelity. *)
let survivors db =
  List.init total_windows (fun wi ->
      let w = wi + 1 in
      List.init 2 (fun b ->
          let present =
            List.init 2 (fun i -> Store.get db (wkey w b i))
          in
          match present with
          | [ Some v0; Some v1 ] ->
            Alcotest.(check string) "exact value" (wvalue w b 0) v0;
            Alcotest.(check string) "exact value" (wvalue w b 1) v1;
            true
          | [ None; None ] -> false
          | _ -> Alcotest.failf "torn batch: window %d batch %d" w b))

let check_image ~op ~acked image =
  let db = Store.recover ~env:image (cfg "gc-matrix") in
  let surv = survivors db in
  (* Batch survival is a prefix of append order: batch (w,b) present
     implies every earlier batch of every earlier window present. *)
  let flat = List.concat surv in
  let seen_gap = ref false in
  List.iteri
    (fun i present ->
      if present && !seen_gap then
        Alcotest.failf "op %d: batch %d survived after a gap" op i;
      if not present then seen_gap := true)
    flat;
  (* No acked window lost: acked = log_sync returned = durable. *)
  List.iteri
    (fun wi batches ->
      if wi + 1 <= acked && not (List.for_all (fun p -> p) batches) then
        Alcotest.failf "op %d: acked window %d lost" op (wi + 1))
    surv

let test_crash_matrix_windows () =
  (* Profile the workload to learn its durable-op count. *)
  let total_ops =
    let fenv = Fault_env.create () in
    let db = Store.create ~env:(Fault_env.env fenv) (cfg "gc-matrix") in
    let acked = ref 0 in
    run_windows db acked;
    Fault_env.durable_ops fenv
  in
  Alcotest.(check bool) "workload has durable ops" true (total_ops > 0);
  for op = 1 to total_ops do
    let fenv = Fault_env.create () in
    (* Rotate the torn-byte count so some crashes tear the tail of the
       multi-batch append mid-record. *)
    Fault_env.crash_at fenv ~op ~torn:(op mod 4) ();
    let acked = ref 0 in
    match
      (* Creation's own durable ops are crash candidates too. *)
      let db = Store.create ~env:(Fault_env.env fenv) (cfg "gc-matrix") in
      run_windows db acked
    with
    | () -> ()
    | exception Fault_env.Crashed ->
      check_image ~op ~acked:!acked (Fault_env.image fenv)
  done

(* The same rows driven through Group_commit itself: the leader runs the
   commit on a crashing device, the Crashed exception must escape submit
   (typed refusal is only for followers), and recovery from the image
   keeps every submit that returned Ok. *)
let test_crash_through_group_commit () =
  let run_until_crash ~op =
    let fenv = Fault_env.create () in
    Fault_env.crash_at fenv ~op ();
    let acked = ref [] in
    (try
       let db = Store.create ~env:(Fault_env.env fenv) (cfg "gc-live") in
       let commit batches =
         match Store.try_write_batches db (Array.to_list batches) with
         | Error e -> Array.map (fun _ -> Error e) batches
         | Ok () ->
           Store.log_sync db;
           Array.map (fun _ -> Ok ()) batches
       in
       let gc = Group_commit.create ~max_delay_s:0.0001 ~commit () in
       for i = 1 to 12 do
         let key = Printf.sprintf "live-%02d" i in
         match Group_commit.submit gc [ (Ikey.Value, key, key) ] with
         | Ok () -> acked := key :: !acked
         | Error _ -> ()
       done
     with Fault_env.Crashed -> ());
    (fenv, !acked)
  in
  for op = 1 to 30 do
    let fenv, acked = run_until_crash ~op in
    (* A scheduled op beyond the workload's durable-op count never fires;
       there is no image to check in that row. *)
    if Fault_env.durable_ops fenv >= op then begin
      let db = Store.recover ~env:(Fault_env.image fenv) (cfg "gc-live") in
      List.iter
        (fun key ->
          match Store.get db key with
          | Some v when v = key -> ()
          | Some _ -> Alcotest.failf "op %d: acked %s corrupted" op key
          | None -> Alcotest.failf "op %d: acked %s lost" op key)
        acked
    end
  done

let suite =
  [
    Alcotest.test_case "concurrent submits coalesce into windows" `Quick
      test_windows_coalesce;
    Alcotest.test_case "coalesce:false is one window per request" `Quick
      test_no_coalesce_baseline;
    Alcotest.test_case "stop refuses new submissions" `Quick test_stop_refuses;
    Alcotest.test_case "leader crash fails followers with typed verdicts"
      `Quick test_leader_crash_fails_followers;
    Alcotest.test_case "one window = one append + one fsync" `Quick
      test_engine_fsync_accounting;
    Alcotest.test_case "crash matrix over multi-batch windows" `Slow
      test_crash_matrix_windows;
    Alcotest.test_case "crash matrix through Group_commit submits" `Slow
      test_crash_through_group_commit;
  ]
