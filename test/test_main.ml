let () =
  Alcotest.run "wipdb"
    [
      ("util", Test_util.suite);
      ("sync", Test_sync.suite);
      ("bloom", Test_bloom.suite);
      ("storage", Test_storage.suite);
      ("memtable", Test_memtable.suite);
      ("sstable", Test_sstable.suite);
      ("wal", Test_wal.suite);
      ("workload", Test_workload.suite);
      ("stats", Test_stats.suite);
      ("lsm", Test_lsm.suite);
      ("flsm", Test_flsm.suite);
      ("wipdb", Test_wipdb.suite);
      ("manifest", Test_manifest.suite);
      ("integration", Test_integration.suite);
      ("cache", Test_cache.suite);
      ("readpath", Test_readpath.suite);
      ("iterator", Test_iterator.suite);
      ("sorted-view", Test_sorted_view.suite);
      ("snapshot", Test_snapshot.suite);
      ("concurrent", Test_concurrent.suite);
      ("sharded", Test_sharded.suite);
      ("crash", Test_crash.suite);
      ("crash-matrix", Test_crash_matrix.suite);
      ("fault", Test_fault.suite);
      ("chaos", Test_chaos.suite);
      ("properties", Test_properties.suite);
      ("protocol", Test_protocol.suite);
      ("group-commit", Test_group_commit.suite);
      ("server", Test_server.suite);
      ("lock-discipline", Test_lock_discipline.suite);
    ]
