(* Deterministic chaos harness: randomized concurrent load against the
   sharded front end while seeded transient-fault storms (and, on some
   seeds, injected device latency) hit every shard's device. Each seed is
   one fully deterministic scenario; the suite runs a fixed matrix of 8.

   Invariants asserted per seed:

   - {b no acked write lost}: every batch for which [try_write_batch]
     returned [Ok] is readable afterwards with its exact value — through
     storms, retries, stalls and degradation;
   - {b no hang past deadline}: admission stalls are bounded by
     [stall_deadline_s] and retry backoff by the policy cap, so the whole
     run finishes well inside a generous wall-clock budget;
   - {b clean terminal state}: the store ends [Healthy], or [Degraded]
     with mutations refused typed while reads still serve;
   - the fault machinery actually fired: injected faults > 0 and env-level
     retries > 0 (the storms were not scheduled past the workload). *)

module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Store = Wipdb.Store
module Config = Wipdb.Config
module Env = Wip_storage.Env
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats
module Rng = Wip_util.Rng
module Ikey = Wip_util.Ikey
module Intf = Wip_kv.Store_intf

let seeds = List.init 8 (fun i -> Int64.of_int (1009 + (37 * i)))

let base_config =
  {
    Config.default with
    Config.memtable_items = 48;
    memtable_bytes = 4 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    (* Leave eligible compactions to the background pool. *)
    compaction_budget_per_batch = 0;
    name = "chaos";
  }

let shards = 2

let writer_threads = 2

let batches_per_writer = 120

(* Unique key per (writer, iteration), spread across the engine key space
   so both shards see traffic. Unique keys make "no acked write lost" a
   pure set-membership check — no overwrite races to reason about. *)
let key_of tid i =
  let slot = (i * writer_threads) + tid in
  let count = writer_threads * batches_per_writer in
  Printf.sprintf "%016Ld"
    Int64.(
      div
        (mul (of_int slot) base_config.Config.initial_key_space)
        (of_int count))

let value_of ~seed tid i = Printf.sprintf "s%Ld-t%d-%d" seed tid i

(* One deterministic scenario: per-shard fault env with rng-scheduled
   storms, retry-wrapped, under concurrent writers. *)
let run_scenario seed =
  let rng = Rng.create ~seed in
  let fenvs = Array.init shards (fun _ -> Fault_env.create ()) in
  let bounds = Config.shard_boundaries base_config ~shards in
  let stores =
    List.mapi
      (fun i lo ->
        let fenv = fenvs.(i) in
        (* Storms early in the op sequence so they reliably overlap the
           workload. Width up to 6 can out-last the 4-attempt retry budget
           — degradation (and recovery via probe) is part of the scenario
           space. Backoff sleeps are elided: the schedule, not the wall
           clock, is what the test pins down. *)
        let storms = 2 + Rng.int rng 3 in
        for _ = 1 to storms do
          let first_op = 3 + Rng.int rng 120 in
          let width = 1 + Rng.int rng 6 in
          Fault_env.storm fenv ~first_op ~last_op:(first_op + width)
        done;
        if Rng.int rng 4 = 0 then
          Fault_env.set_latency fenv ~durable_ns:20_000;
        let env =
          Env.with_retry
            ~seed:(Int64.add seed (Int64.of_int i))
            ~sleep_ns:(fun _ -> ())
            (Fault_env.env fenv)
        in
        let cfg =
          { base_config with Config.name = Printf.sprintf "chaos-%d" i }
        in
        (lo, Store.create ~env cfg))
      bounds
  in
  let c =
    Sh.create ~pool_threads:2 ~idle_sleep:0.0005
      ~slowdown_watermark_bytes:(16 * 1024)
      ~stop_watermark_bytes:(64 * 1024)
      ~inflight_limit_bytes:(64 * 1024) ~stall_deadline_s:0.5 stores
  in
  let started = Unix.gettimeofday () in
  (* Per-writer journals of acknowledged writes; each is touched by exactly
     one thread until the joins below. *)
  let acked = Array.make writer_threads [] in
  let writer tid =
    for i = 0 to batches_per_writer - 1 do
      let key = key_of tid i and value = value_of ~seed tid i in
      match Sh.try_write_batch c [ (Ikey.Value, key, value) ] with
      | Ok () -> acked.(tid) <- (key, value) :: acked.(tid)
      | Error (Intf.Backpressure _) ->
        (* Refused under load: not acknowledged, nothing to verify. *)
        ()
      | Error (Intf.Store_degraded _) ->
        (* The shard went read-only under the storm; run a recovery probe
           and carry on — later writes retry against the probed state. *)
        ignore (Sh.probe c)
      | Error (Intf.Txn_conflict _) ->
        Alcotest.failf "seed %Ld: non-transactional write conflicted" seed
    done
  in
  let threads =
    List.init writer_threads (fun tid -> Thread.create writer tid)
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. started in
  (* Stall deadlines and the retry cap bound every wait; 60 s of wall clock
     means something hung. *)
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: no hang (%.1f s)" seed elapsed)
    true (elapsed < 60.0);
  (* Storms are over (their op windows are long past): a probe must be able
     to report a definite terminal state. *)
  let terminal = Sh.probe c in
  Sh.stop c;
  (* No acked write lost — regardless of terminal state, reads serve. *)
  Array.iteri
    (fun tid journal ->
      List.iter
        (fun (key, value) ->
          match Sh.get c key with
          | Some v when String.equal v value -> ()
          | Some v ->
            Alcotest.failf "seed %Ld writer %d: key %s has %S, acked %S"
              seed tid key v value
          | None ->
            Alcotest.failf "seed %Ld writer %d: acked key %s lost" seed tid
              key)
        journal)
    acked;
  let total_acked = Array.fold_left (fun n j -> n + List.length j) 0 acked in
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: workload made progress" seed)
    true
    (total_acked > batches_per_writer / 2);
  (* Terminal state is Healthy, or cleanly Degraded: mutations refused with
     the typed error, reads still serving (verified above). *)
  (match terminal with
  | Intf.Healthy -> (
    match
      Sh.try_write_batch c [ (Ikey.Value, key_of 0 0, "post-recovery") ]
    with
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "seed %Ld: healthy store refused a write: %s" seed
        (Intf.write_error_to_string e))
  | Intf.Degraded _ -> (
    match
      Sh.try_write_batch c [ (Ikey.Value, key_of 0 0, "post-degrade") ]
    with
    | Error (Intf.Store_degraded _) -> ()
    | Ok () ->
      Alcotest.failf "seed %Ld: degraded store accepted a mutation" seed
    | Error ((Intf.Backpressure _ | Intf.Txn_conflict _) as e) ->
      Alcotest.failf "seed %Ld: degraded store reported %s" seed
        (Intf.write_error_to_string e)));
  (* The scenario actually exercised the machinery under test. *)
  let faults, retries =
    Array.fold_left
      (fun (f, r) fenv ->
        let stats = Env.stats (Fault_env.env fenv) in
        (f + Io_stats.fault_count stats, r + Io_stats.retry_count stats))
      (0, 0) fenvs
  in
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: storms fired (faults=%d)" seed faults)
    true (faults > 0);
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: retries engaged (retries=%d)" seed retries)
    true (retries > 0)

let suite =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "storm seed %Ld" seed)
        `Quick
        (fun () -> run_scenario seed))
    seeds
