(* Regression tests for the allocation-free cursor read path: a cache-hot
   point get must cost at most one data-block fetch, zero full-block
   decodes and zero device bytes; compaction-style streams must not disturb
   the cache; the bloom/FP and cache counters must account every probe. *)

module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Block_cache = Wip_storage.Block_cache
module Block = Wip_sstable.Block
module Table = Wip_sstable.Table
module Ikey = Wip_util.Ikey

let key i = Printf.sprintf "%06d" i

(* Enough keys for several data blocks (4 KiB default block size). *)
let build_table ?cache env n =
  let b =
    Table.Builder.create env ~name:"t" ~category:Io_stats.Flush
      ~expected_keys:n ()
  in
  for i = 0 to n - 1 do
    Table.Builder.add b
      (Ikey.make (key i) ~seq:(Int64.of_int (i + 1)))
      (Printf.sprintf "value-%06d" i)
  done;
  let _ = Table.Builder.finish b in
  Table.Reader.open_ ?cache env ~name:"t"

(* The headline regression: once the block is cached, a point get performs
   exactly one block fetch (served by the cache), decodes no block wholesale
   and moves zero device bytes. *)
let test_hot_get_block_budget () =
  let env = Env.in_memory () in
  let cache = Block_cache.create ~capacity_bytes:(1 lsl 20) in
  let r = build_table ~cache env 2000 in
  let stats = Env.stats env in
  let get k =
    Table.Reader.get r ~category:Io_stats.Read_path (key k)
      ~snapshot:Int64.max_int
  in
  (* Warm the block holding key 700. *)
  Alcotest.(check bool) "warm get found" true (get 700 <> None);
  let fetches0 = Io_stats.block_fetch_count stats in
  let decodes0 = Atomic.get Block.decode_count in
  let device0 = Io_stats.read_by stats Io_stats.Read_path in
  (match get 700 with
  | Some (Ikey.Value, v, seq) ->
    Alcotest.(check string) "value" "value-000700" v;
    Alcotest.(check int64) "seq" 701L seq
  | _ -> Alcotest.fail "hot get lost the key");
  Alcotest.(check bool) "at most one block fetch" true
    (Io_stats.block_fetch_count stats - fetches0 <= 1);
  Alcotest.(check int) "zero full-block decodes" decodes0
    (Atomic.get Block.decode_count);
  Alcotest.(check int) "zero device bytes" device0
    (Io_stats.read_by stats Io_stats.Read_path)

(* Opening a table charges its self-description reads (footer, index,
   filter) to Table_meta, not Manifest. *)
let test_open_charged_to_table_meta () =
  let env = Env.in_memory () in
  let r = build_table env 500 in
  let stats = Env.stats env in
  Alcotest.(check bool) "Table_meta read traffic" true
    (Io_stats.read_by stats Io_stats.Table_meta > 0);
  Alcotest.(check int) "no Manifest reads" 0
    (Io_stats.read_by stats Io_stats.Manifest);
  Table.Reader.close r

(* A fill_cache:false pass over the whole table (the compaction/split/sample
   reader mode) must leave the cache untouched and count as bypass traffic;
   a normal pass populates it. *)
let test_stream_scan_resistance () =
  let env = Env.in_memory () in
  let cache = Block_cache.create ~capacity_bytes:(1 lsl 20) in
  let r = build_table ~cache env 2000 in
  let drain s = Seq.iter (fun _ -> ()) s in
  drain (Table.Reader.stream r ~category:(Io_stats.Compaction_read 0)
           ~fill_cache:false ());
  Alcotest.(check int) "cold pass caches nothing" 0
    (Block_cache.entry_count cache);
  Alcotest.(check bool) "misses counted as bypasses" true
    (Block_cache.bypasses cache > 0);
  Alcotest.(check int) "not as misses" 0 (Block_cache.misses cache);
  drain (Table.Reader.stream r ~category:Io_stats.Read_path ());
  Alcotest.(check bool) "filling pass populates" true
    (Block_cache.entry_count cache > 0);
  (* With every block now resident, another non-filling pass is pure
     cache hits: no device I/O. *)
  let stats = Env.stats env in
  let device0 = Io_stats.read_by stats (Io_stats.Compaction_read 0) in
  drain (Table.Reader.stream r ~category:(Io_stats.Compaction_read 0)
           ~fill_cache:false ());
  Alcotest.(check int) "warm non-filling pass reads no device bytes" device0
    (Io_stats.read_by stats (Io_stats.Compaction_read 0))

(* find_no_fill hits must not promote the entry in the LRU order. *)
let test_find_no_fill_does_not_promote () =
  let c = Block_cache.create ~capacity_bytes:30 in
  Block_cache.add c ~file:"f" ~offset:0 (String.make 10 'a');
  Block_cache.add c ~file:"f" ~offset:1 (String.make 10 'b');
  Block_cache.add c ~file:"f" ~offset:2 (String.make 10 'c');
  (* A promoting find would rescue offset 0 from the next eviction. *)
  Alcotest.(check bool) "no-fill hit" true
    (Block_cache.find_no_fill c ~file:"f" ~offset:0 <> None);
  Block_cache.add c ~file:"f" ~offset:3 (String.make 10 'd');
  Alcotest.(check bool) "oldest still evicted" true
    (Block_cache.find_no_fill c ~file:"f" ~offset:0 = None);
  Alcotest.(check int) "hits counted" 1 (Block_cache.hits c);
  Alcotest.(check int) "probe misses are bypasses" 1 (Block_cache.bypasses c);
  Alcotest.(check int) "not misses" 0 (Block_cache.misses c)

(* Values larger than the whole capacity are rejected loudly, not dropped
   silently. *)
let test_oversized_add_counts_rejection () =
  let c = Block_cache.create ~capacity_bytes:8 in
  Block_cache.add c ~file:"f" ~offset:0 "way-too-large-for-this-cache";
  Alcotest.(check int) "nothing stored" 0 (Block_cache.entry_count c);
  Alcotest.(check int) "rejection counted" 1 (Block_cache.rejections c);
  Block_cache.add c ~file:"f" ~offset:1 "tiny";
  Alcotest.(check int) "normal add unaffected" 1 (Block_cache.rejections c);
  Alcotest.(check int) "tiny stored" 1 (Block_cache.entry_count c)

(* Every bloom consultation is accounted: an absent-key get is either ruled
   out by the filter (negative) or becomes a measured false positive; a
   present-key get is a maybe that is not an FP. *)
let test_bloom_accounting () =
  let env = Env.in_memory () in
  let r = build_table env 1000 in
  let stats = Env.stats env in
  let absent = 500 in
  let probes0 = Io_stats.bloom_probe_count stats in
  for i = 0 to absent - 1 do
    let missing = Printf.sprintf "zz-not-there-%04d" i in
    Alcotest.(check bool) "absent key misses" true
      (Table.Reader.get r ~category:Io_stats.Read_path missing
         ~snapshot:Int64.max_int
      = None)
  done;
  Alcotest.(check int) "every get probes once" absent
    (Io_stats.bloom_probe_count stats - probes0);
  Alcotest.(check int) "each probe is a negative or a measured FP" absent
    (Io_stats.bloom_negative_count stats
    + Io_stats.bloom_false_positive_count stats);
  let fp = Io_stats.bloom_false_positive_count stats in
  let maybes =
    Io_stats.bloom_probe_count stats - Io_stats.bloom_negative_count stats
  in
  Alcotest.(check (float 1e-9)) "fp_rate = fp / maybes"
    (if maybes = 0 then 0.0 else float_of_int fp /. float_of_int maybes)
    (Io_stats.bloom_fp_rate stats);
  (* Present keys: maybe-answers that are not false positives. *)
  let fp0 = Io_stats.bloom_false_positive_count stats in
  for i = 0 to 99 do
    Alcotest.(check bool) "present key found" true
      (Table.Reader.get r ~category:Io_stats.Read_path (key (i * 7))
         ~snapshot:Int64.max_int
      <> None)
  done;
  Alcotest.(check int) "hits are not FPs" fp0
    (Io_stats.bloom_false_positive_count stats)

(* The full-store hot path composes the same way: a repeated Wipdb get on a
   flushed key decodes no blocks wholesale. *)
let test_store_hot_get_no_decode () =
  let env = Env.in_memory () in
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.memtable_items = 128;
      block_cache_bytes = 1 lsl 20;
      name = "rp";
    }
  in
  let db = Wipdb.Store.create ~env cfg in
  for i = 0 to 999 do
    Wipdb.Store.put db ~key:(key i) ~value:"payload"
  done;
  Wipdb.Store.flush db;
  Alcotest.(check (option string)) "warm" (Some "payload")
    (Wipdb.Store.get db (key 123));
  let decodes0 = Atomic.get Block.decode_count in
  for _ = 1 to 50 do
    Alcotest.(check (option string)) "hot" (Some "payload")
      (Wipdb.Store.get db (key 123))
  done;
  Alcotest.(check int) "no full-block decodes on store gets" decodes0
    (Atomic.get Block.decode_count)

let suite =
  [
    Alcotest.test_case "hot get block budget" `Quick test_hot_get_block_budget;
    Alcotest.test_case "table_meta accounting" `Quick
      test_open_charged_to_table_meta;
    Alcotest.test_case "scan resistance" `Quick test_stream_scan_resistance;
    Alcotest.test_case "no-fill LRU" `Quick test_find_no_fill_does_not_promote;
    Alcotest.test_case "rejections" `Quick test_oversized_add_counts_rejection;
    Alcotest.test_case "bloom accounting" `Quick test_bloom_accounting;
    Alcotest.test_case "store hot get" `Quick test_store_hot_get_no_decode;
  ]
