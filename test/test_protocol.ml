(* Property and adversarial tests for the wire protocol codec.

   The round-trip law — [decode (encode x) = x] — must hold for every
   frame shape including the degenerate ones (0-length keys and values,
   binary payloads, empty batches and scans), and the decoder must be
   total: any byte string, truncated at any point or corrupted in any
   field, yields [Need_more] or a typed [Fail] — never an exception. *)

module Protocol = Wip_server.Protocol
module Ikey = Wip_util.Ikey
module Coding = Wip_util.Coding

(* ------------------------------------------------------------------ *)
(* Generators *)

(* Binary-hostile strings: empty often, NUL / 0xFF bytes, short. *)
let bytes_gen =
  QCheck.Gen.(
    string_size (int_bound 12)
      ~gen:(oneofl [ '\x00'; '\x01'; 'k'; '\xfe'; '\xff' ]))

let kind_gen = QCheck.Gen.oneofl [ Ikey.Value; Ikey.Deletion ]

let request_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.Stats;
        map (fun key -> Protocol.Get { key }) bytes_gen;
        map2 (fun key value -> Protocol.Put { key; value }) bytes_gen bytes_gen;
        map (fun key -> Protocol.Delete { key }) bytes_gen;
        map
          (fun items -> Protocol.Write_batch items)
          (list_size (int_bound 6) (triple kind_gen bytes_gen bytes_gen));
        map3
          (fun lo hi limit ->
            Protocol.Scan
              { lo; hi; limit = (if limit = 0 then None else Some limit) })
          bytes_gen bytes_gen (int_bound 100);
      ])

let wire_error_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun shard debt_bytes ->
            Protocol.Backpressure { shard; debt_bytes })
          (int_bound 64) (int_bound 1_000_000);
        map (fun reason -> Protocol.Store_degraded { reason }) bytes_gen;
        map (fun key -> Protocol.Txn_conflict { key }) bytes_gen;
        map (fun message -> Protocol.Bad_request { message }) bytes_gen;
      ])

let response_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Ack;
        return Protocol.Not_found;
        return Protocol.Pong;
        map (fun value -> Protocol.Value { value }) bytes_gen;
        map
          (fun kvs -> Protocol.Entries kvs)
          (list_size (int_bound 6) (pair bytes_gen bytes_gen));
        map
          (fun stats ->
            Protocol.Stats_reply
              (List.map (fun (k, v) -> (k, Int64.of_int v)) stats))
          (list_size (int_bound 6) (pair bytes_gen int));
        map (fun e -> Protocol.Error e) wire_error_gen;
      ])

let id_gen = QCheck.Gen.(map (fun i -> i land 0x7fffffff) nat)

(* ------------------------------------------------------------------ *)
(* Round trips *)

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request frames round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair id_gen request_gen))
    (fun (id, r) ->
      let s = Protocol.encode_request ~id r in
      match Protocol.decode_request s ~pos:0 with
      | Protocol.Frame { id = id'; payload; next } ->
        id' = id && payload = r && next = String.length s
      | _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response frames round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair id_gen response_gen))
    (fun (id, r) ->
      let s = Protocol.encode_response ~id r in
      match Protocol.decode_response s ~pos:0 with
      | Protocol.Frame { id = id'; payload; next } ->
        id' = id && payload = r && next = String.length s
      | _ -> false)

(* Frames are self-delimiting: a stream of several frames decodes one at
   a time with [next] chaining exactly. *)
let qcheck_stream_of_frames =
  QCheck.Test.make ~name:"concatenated frames decode in sequence" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 5) request_gen))
    (fun rs ->
      let buf = Buffer.create 256 in
      List.iteri
        (fun i r -> Buffer.add_string buf (Protocol.encode_request ~id:(i + 1) r))
        rs;
      let s = Buffer.contents buf in
      let rec walk pos acc =
        if pos = String.length s then List.rev acc
        else
          match Protocol.decode_request s ~pos with
          | Protocol.Frame { payload; next; _ } -> walk next (payload :: acc)
          | _ -> List.rev acc
      in
      walk 0 [] = rs)

(* Totality under truncation: every strict prefix of a valid frame is
   [Need_more] — the streaming "frame still arriving" case — and never an
   exception or a bogus [Frame]. *)
let qcheck_truncation_is_need_more =
  QCheck.Test.make ~name:"every strict prefix decodes to Need_more" ~count:200
    (QCheck.make request_gen)
    (fun r ->
      let s = Protocol.encode_request ~id:7 r in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        (match Protocol.decode_request (String.sub s 0 cut) ~pos:0 with
        | Protocol.Need_more -> ()
        | _ -> ok := false)
      done;
      !ok)

(* Totality under corruption: flip one byte anywhere in a valid frame and
   the decoder still terminates with Frame / Need_more / Fail. (The result
   may legitimately still parse — e.g. a flipped value byte — the property
   is the absence of exceptions.) *)
let qcheck_corruption_never_raises =
  QCheck.Test.make ~name:"single byte corruption never raises" ~count:300
    (QCheck.make QCheck.Gen.(triple request_gen nat (int_bound 255)))
    (fun (r, at, byte) ->
      let s = Bytes.of_string (Protocol.encode_request ~id:3 r) in
      let at = at mod Bytes.length s in
      Bytes.set s at (Char.chr byte);
      match Protocol.decode_request (Bytes.to_string s) ~pos:0 with
      | Protocol.Frame _ | Protocol.Need_more | Protocol.Fail _ -> true)

(* ------------------------------------------------------------------ *)
(* Hand-built adversarial frames: each failure mode maps onto its typed
   error, not onto a neighbouring one. *)

(* Build a raw frame from an explicit body (id + tag + payload supplied
   by the test), bypassing the encoder's invariants. *)
let raw_frame body =
  let b = Buffer.create 32 in
  Coding.put_fixed32 b (String.length body);
  Buffer.add_string b body;
  Buffer.contents b

let body ~id ~tag payload =
  let b = Buffer.create 32 in
  Coding.put_fixed32 b id;
  Buffer.add_char b (Char.chr tag);
  Buffer.add_string b payload;
  Buffer.contents b

let check_fail name expect got =
  match got with
  | Protocol.Fail e ->
    Alcotest.(check string) name expect (Protocol.protocol_error_to_string e)
  | Protocol.Frame _ -> Alcotest.fail (name ^ ": decoded a Frame")
  | Protocol.Need_more -> Alcotest.fail (name ^ ": Need_more")

let test_adversarial_frames () =
  (* Declared frame length beyond the cap: typed Oversized before any
     allocation of that size. *)
  let b = Buffer.create 8 in
  Coding.put_fixed32 b (Protocol.max_frame_bytes + 1);
  Buffer.add_string b "xxxx";
  (match Protocol.decode_request (Buffer.contents b) ~pos:0 with
  | Protocol.Fail (Protocol.Oversized { len }) ->
    Alcotest.(check int) "oversized len" (Protocol.max_frame_bytes + 1) len
  | _ -> Alcotest.fail "oversized: wrong result");
  (* Unknown opcode. *)
  (match Protocol.decode_request (raw_frame (body ~id:1 ~tag:0x7f "")) ~pos:0 with
  | Protocol.Fail (Protocol.Bad_tag { tag }) ->
    Alcotest.(check int) "bad tag" 0x7f tag
  | _ -> Alcotest.fail "bad tag: wrong result");
  (* A get whose key length points past the end of the frame body: the
     frame is complete (declared length satisfied) so this is Truncated,
     not Need_more. *)
  let get_body =
    let b = Buffer.create 8 in
    Coding.put_fixed32 b 9;
    (* id *)
    Buffer.add_char b '\x02';
    (* tag_get *)
    Coding.put_varint b 200;
    (* key claims 200 bytes; none follow *)
    Buffer.contents b
  in
  check_fail "inner truncation" "truncated frame body"
    (Protocol.decode_request (raw_frame get_body) ~pos:0);
  (* Trailing bytes after a well-formed body violate the grammar. *)
  check_fail "trailing bytes" "malformed frame: trailing bytes in frame"
    (Protocol.decode_request (raw_frame (body ~id:1 ~tag:0x01 "junk")) ~pos:0);
  (* A frame too short to even hold id + tag. *)
  check_fail "short frame" "malformed frame: frame too short"
    (Protocol.decode_request (raw_frame "abc") ~pos:0);
  (* A write_batch item with an unknown kind byte. *)
  let batch_body =
    let b = Buffer.create 8 in
    Coding.put_varint b 1;
    Buffer.add_char b '\x09';
    (* bogus kind *)
    Coding.put_varint b 1;
    Buffer.add_char b 'k';
    Coding.put_varint b 1;
    Buffer.add_char b 'v';
    Buffer.contents b
  in
  (match
     Protocol.decode_request (raw_frame (body ~id:1 ~tag:0x05 batch_body)) ~pos:0
   with
  | Protocol.Fail (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "bad kind byte: expected Malformed")

let test_zero_length_and_binary () =
  (* 0-length key and value are legal everywhere. *)
  let probes =
    [
      Protocol.Get { key = "" };
      Protocol.Put { key = ""; value = "" };
      Protocol.Delete { key = "" };
      Protocol.Write_batch [ (Ikey.Value, "", "") ];
      Protocol.Write_batch [];
      Protocol.Scan { lo = ""; hi = ""; limit = None };
      Protocol.Scan { lo = ""; hi = ""; limit = Some 0 };
    ]
  in
  List.iteri
    (fun i r ->
      let s = Protocol.encode_request ~id:i r in
      match Protocol.decode_request s ~pos:0 with
      | Protocol.Frame { payload; _ } when payload = r -> ()
      | _ -> Alcotest.fail (Printf.sprintf "zero-length probe %d" i))
    probes;
  (* A payload at the frame cap round-trips; one byte more is refused by
     the encoder's own framing cap check on decode. *)
  let big = String.make (1024 * 1024) '\xab' in
  let s = Protocol.encode_response ~id:9 (Protocol.Value { value = big }) in
  match Protocol.decode_response s ~pos:0 with
  | Protocol.Frame { payload = Protocol.Value { value }; _ } ->
    Alcotest.(check int) "1 MiB value round-trips" (String.length big)
      (String.length value)
  | _ -> Alcotest.fail "large payload failed to round-trip"

let test_error_frames_roundtrip () =
  List.iter
    (fun e ->
      let s = Protocol.encode_response ~id:4 (Protocol.Error e) in
      match Protocol.decode_response s ~pos:0 with
      | Protocol.Frame { payload = Protocol.Error e'; _ } when e' = e -> ()
      | _ ->
        Alcotest.fail
          ("error frame lost fidelity: " ^ Protocol.wire_error_to_string e))
    [
      Protocol.Backpressure { shard = 3; debt_bytes = 123_456 };
      Protocol.Store_degraded { reason = "wal: sync Io_fault" };
      Protocol.Txn_conflict { key = "k\x00\xff" };
      Protocol.Txn_conflict { key = "" };
      Protocol.Bad_request { message = "" };
    ];
  (* The engine-refusal mapping preserves every field. *)
  (match
     Protocol.write_error_to_wire
       (Wip_kv.Store_intf.Backpressure { shard = 5; debt_bytes = 42 })
   with
  | Protocol.Backpressure { shard = 5; debt_bytes = 42 } -> ()
  | _ -> Alcotest.fail "write_error_to_wire dropped fields");
  match
    Protocol.write_error_to_wire
      (Wip_kv.Store_intf.Txn_conflict { key = "conflicted" })
  with
  | Protocol.Txn_conflict { key = "conflicted" } -> ()
  | _ -> Alcotest.fail "write_error_to_wire dropped the conflict key"

(* A scan limit that decodes to a negative OCaml int (an overflowed varint
   — 0x40 at shift 56 lands on bit 62, the native sign bit) must be a typed
   Malformed, never a value that could reach Seq.take; and the encoder
   clamps a caller's negative limit to "zero entries" rather than smuggling
   it onto the wire as something else. *)
let test_negative_scan_limit () =
  let scan_body =
    let b = Buffer.create 16 in
    Coding.put_varint b 0;
    (* lo = "" *)
    Coding.put_varint b 0;
    (* hi = "" *)
    for _ = 1 to 8 do
      Buffer.add_char b '\x80'
    done;
    Buffer.add_char b '\x40';
    Buffer.contents b
  in
  (match
     Protocol.decode_request (raw_frame (body ~id:6 ~tag:0x06 scan_body)) ~pos:0
   with
  | Protocol.Fail (Protocol.Malformed { detail }) ->
    Alcotest.(check string) "typed rejection" "negative scan limit" detail
  | _ -> Alcotest.fail "negative scan limit: expected Malformed");
  let s =
    Protocol.encode_request ~id:1
      (Protocol.Scan { lo = "a"; hi = "z"; limit = Some (-5) })
  in
  match Protocol.decode_request s ~pos:0 with
  | Protocol.Frame { payload = Protocol.Scan { limit = Some 0; _ }; _ } -> ()
  | _ -> Alcotest.fail "encoder did not clamp a negative limit to 0"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_stream_of_frames;
    QCheck_alcotest.to_alcotest qcheck_truncation_is_need_more;
    QCheck_alcotest.to_alcotest qcheck_corruption_never_raises;
    Alcotest.test_case "adversarial frames yield typed errors" `Quick
      test_adversarial_frames;
    Alcotest.test_case "zero-length and binary payloads" `Quick
      test_zero_length_and_binary;
    Alcotest.test_case "error frames and refusal mapping" `Quick
      test_error_frames_roundtrip;
    Alcotest.test_case "negative scan limit rejected and clamped" `Quick
      test_negative_scan_limit;
  ]
