(* Unit tests for the deterministic fault-injection device (Fault_env):
   crash images with synced-prefix semantics, torn writes, transient I/O
   faults, bit-flip corruption, and the fault/sync counters. *)

module Env = Wip_storage.Env
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats

let cat = Io_stats.Manifest

let read_file env name =
  let r = Env.open_file env name in
  let c = Env.read_all r ~category:cat in
  Env.close_reader r;
  c

let test_crash_drops_unsynced_tail () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello" (* op 1 *);
  Env.sync w (* op 2 *);
  Env.append w ~category:cat "world" (* op 3 *);
  Fault_env.crash_at fenv ~op:4 ();
  (match Env.sync w with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  let image = Fault_env.image fenv in
  Alcotest.(check string) "only the synced prefix survives" "hello"
    (read_file image "a");
  (* The live (pre-crash) state still holds everything. *)
  Alcotest.(check int) "buffered size" 10 (Fault_env.file_size fenv "a")

let test_torn_append () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "base";
  Env.sync w;
  Fault_env.crash_at fenv ~op:3 ~torn:2 ();
  (match Env.append w ~category:cat "XYZW" with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  Alcotest.(check string) "two torn bytes beyond the synced prefix" "baseXY"
    (read_file (Fault_env.image fenv) "a")

let test_crash_image_spans_files () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let wa = Env.create_file env "a" in
  Env.append wa ~category:cat "aaaa" (* 1 *);
  Env.sync wa (* 2 *);
  let wb = Env.create_file env "b" in
  Env.append wb ~category:cat "bb" (* 3 *);
  Fault_env.crash_at fenv ~op:4 ();
  (match Env.append wb ~category:cat "cc" with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  let image = Fault_env.image fenv in
  Alcotest.(check string) "synced file intact" "aaaa" (read_file image "a");
  Alcotest.(check string) "unsynced file empty" "" (read_file image "b")

let test_write_fault_is_transient () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Fault_env.fail_write_at fenv ~op:1 ();
  (match Env.append w ~category:cat "x" with
  | () -> Alcotest.fail "scheduled fault did not fire"
  | exception Env.Io_fault { op = "append"; file = "a"; retryable = true } ->
    ());
  (* The failed op had no effect; retrying is legal and succeeds. *)
  Env.append w ~category:cat "x";
  Env.sync w;
  Alcotest.(check int) "exactly one byte landed" 1 (Fault_env.file_size fenv "a");
  Alcotest.(check int) "fault counted" 1 (Io_stats.fault_count (Env.stats env))

let test_read_fault_is_transient () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello";
  Env.sync w;
  Env.close_writer w;
  Fault_env.fail_read_at fenv ~op:1;
  let r = Env.open_file env "a" in
  (match Env.read r ~category:cat ~pos:0 ~len:5 with
  | _ -> Alcotest.fail "scheduled read fault did not fire"
  | exception Env.Io_fault { op = "read"; file = "a"; retryable = false } ->
    ());
  Alcotest.(check string) "retry succeeds" "hello"
    (Env.read r ~category:cat ~pos:0 ~len:5);
  Env.close_reader r

let test_flip_bit () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "A" (* 0x41 *);
  Env.sync w;
  Fault_env.flip_bit fenv ~file:"a" ~bit:1;
  Alcotest.(check string) "bit 1 flipped: 0x41 -> 0x43" "C" (read_file env "a");
  Alcotest.(check int) "corruption counted as a fault" 1
    (Io_stats.fault_count (Env.stats env));
  (match Fault_env.flip_bit fenv ~file:"a" ~bit:800 with
  | () -> Alcotest.fail "out-of-range flip accepted"
  | exception Invalid_argument _ -> ())

let test_durable_and_snapshot_images () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello";
  Env.sync w;
  Env.append w ~category:cat "tail";
  Alcotest.(check string) "durable image cuts the unsynced tail" "hello"
    (read_file (Fault_env.durable_image fenv) "a");
  Alcotest.(check string) "snapshot keeps buffered bytes" "hellotail"
    (read_file (Fault_env.snapshot_env fenv) "a");
  Alcotest.(check string) "snapshot with truncation" "hellota"
    (read_file (Fault_env.snapshot_env ~truncate:("a", 7) fenv) "a");
  (* Truncating a file that does not exist is silently ignored. *)
  Alcotest.(check string) "missing truncate target ignored" "hellotail"
    (read_file (Fault_env.snapshot_env ~truncate:("nope", 3) fenv) "a")

let test_deletes_are_durable () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "x";
  Env.sync w;
  Env.delete env "a";
  Alcotest.(check bool) "deleted from the durable view too" false
    (Env.exists (Fault_env.durable_image fenv) "a")

(* ------------------------------------------------------------------ *)
(* Read faults through the cursor read path: a device read failing under a
   Block.Cursor-backed point get must surface as the typed Io_fault — and
   must not poison the block cache with a partial block. *)

module Block_cache = Wip_storage.Block_cache
module Table = Wip_sstable.Table
module Ikey = Wip_util.Ikey

let build_table env ~cache n =
  let b =
    Table.Builder.create env ~name:"t" ~category:Io_stats.Flush
      ~expected_keys:n ()
  in
  for i = 0 to n - 1 do
    Table.Builder.add b
      (Ikey.make (Printf.sprintf "%06d" i) ~seq:(Int64.of_int (i + 1)))
      (Printf.sprintf "value-%06d" i)
  done;
  ignore (Table.Builder.finish b);
  Table.Reader.open_ ~cache env ~name:"t"

let test_read_fault_under_cursor () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let cache = Block_cache.create ~capacity_bytes:(1 lsl 20) in
  (* Enough keys for several data blocks; opening the reader performs its
     footer/index/filter reads, so the next read op is the data-block fetch
     the get needs. *)
  let r = build_table env ~cache 2000 in
  let entries0 = Block_cache.entry_count cache in
  Fault_env.fail_read_at fenv ~op:(Fault_env.read_ops fenv + 1);
  let get () =
    Table.Reader.get r ~category:Io_stats.Read_path "000700"
      ~snapshot:Int64.max_int
  in
  (match get () with
  | _ -> Alcotest.fail "scheduled read fault did not fire"
  | exception Env.Io_fault { op = "read"; file = "t"; retryable = false } ->
    ());
  (* No cache poisoning: the failed fetch left nothing behind. *)
  Alcotest.(check int) "no partial block cached" entries0
    (Block_cache.entry_count cache);
  (* The fault was transient at the device level: the same seek now
     succeeds and only then does the block enter the cache. *)
  (match get () with
  | Some (Ikey.Value, v, seq) ->
    Alcotest.(check string) "value after reread" "value-000700" v;
    Alcotest.(check int64) "seq after reread" 701L seq
  | _ -> Alcotest.fail "key lost after a transient read fault");
  Alcotest.(check bool) "block cached after the successful fetch" true
    (Block_cache.entry_count cache > entries0);
  Table.Reader.close r

(* The same fault surfacing through the full store read path: the store
   stays Healthy (read faults do not degrade — only durable-write faults
   do) and the retried get serves the value. *)
let test_read_fault_through_store () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let cfg =
    {
      Wipdb.Config.default with
      Wipdb.Config.name = "rf";
      memtable_items = 4;
      block_cache_bytes = 1 lsl 20;
    }
  in
  let db = Wipdb.Store.create ~env cfg in
  for i = 0 to 15 do
    Wipdb.Store.put db
      ~key:(Printf.sprintf "k%03d" i)
      ~value:(Printf.sprintf "v%03d" i)
  done;
  Wipdb.Store.flush db;
  Fault_env.fail_read_at fenv ~op:(Fault_env.read_ops fenv + 1);
  (match Wipdb.Store.get db "k007" with
  | _ -> Alcotest.fail "scheduled read fault did not fire"
  | exception Env.Io_fault { op = "read"; retryable = false; _ } -> ());
  (match Wipdb.Store.health db with
  | Wip_kv.Store_intf.Healthy -> ()
  | Wip_kv.Store_intf.Degraded { reason } ->
    Alcotest.failf "read fault degraded the store: %s" reason);
  Alcotest.(check (option string)) "reread serves the value" (Some "v007")
    (Wipdb.Store.get db "k007")

let test_sync_counter () =
  let env = Env.in_memory () in
  let w = Env.create_file env "a" in
  Env.sync w;
  Env.sync w;
  Alcotest.(check int) "sync_count" 2 (Io_stats.sync_count (Env.stats env));
  Io_stats.reset (Env.stats env);
  Alcotest.(check int) "reset clears syncs" 0
    (Io_stats.sync_count (Env.stats env))

let suite =
  [
    Alcotest.test_case "crash drops unsynced tail" `Quick
      test_crash_drops_unsynced_tail;
    Alcotest.test_case "torn append" `Quick test_torn_append;
    Alcotest.test_case "crash image spans files" `Quick
      test_crash_image_spans_files;
    Alcotest.test_case "write fault is transient" `Quick
      test_write_fault_is_transient;
    Alcotest.test_case "read fault is transient" `Quick
      test_read_fault_is_transient;
    Alcotest.test_case "flip bit" `Quick test_flip_bit;
    Alcotest.test_case "durable and snapshot images" `Quick
      test_durable_and_snapshot_images;
    Alcotest.test_case "deletes are durable" `Quick test_deletes_are_durable;
    Alcotest.test_case "read fault under cursor" `Quick
      test_read_fault_under_cursor;
    Alcotest.test_case "read fault through store" `Quick
      test_read_fault_through_store;
    Alcotest.test_case "sync counter" `Quick test_sync_counter;
  ]
