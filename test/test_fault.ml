(* Unit tests for the deterministic fault-injection device (Fault_env):
   crash images with synced-prefix semantics, torn writes, transient I/O
   faults, bit-flip corruption, and the fault/sync counters. *)

module Env = Wip_storage.Env
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats

let cat = Io_stats.Manifest

let read_file env name =
  let r = Env.open_file env name in
  let c = Env.read_all r ~category:cat in
  Env.close_reader r;
  c

let test_crash_drops_unsynced_tail () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello" (* op 1 *);
  Env.sync w (* op 2 *);
  Env.append w ~category:cat "world" (* op 3 *);
  Fault_env.crash_at fenv ~op:4 ();
  (match Env.sync w with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  let image = Fault_env.image fenv in
  Alcotest.(check string) "only the synced prefix survives" "hello"
    (read_file image "a");
  (* The live (pre-crash) state still holds everything. *)
  Alcotest.(check int) "buffered size" 10 (Fault_env.file_size fenv "a")

let test_torn_append () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "base";
  Env.sync w;
  Fault_env.crash_at fenv ~op:3 ~torn:2 ();
  (match Env.append w ~category:cat "XYZW" with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  Alcotest.(check string) "two torn bytes beyond the synced prefix" "baseXY"
    (read_file (Fault_env.image fenv) "a")

let test_crash_image_spans_files () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let wa = Env.create_file env "a" in
  Env.append wa ~category:cat "aaaa" (* 1 *);
  Env.sync wa (* 2 *);
  let wb = Env.create_file env "b" in
  Env.append wb ~category:cat "bb" (* 3 *);
  Fault_env.crash_at fenv ~op:4 ();
  (match Env.append wb ~category:cat "cc" with
  | () -> Alcotest.fail "scheduled crash did not fire"
  | exception Fault_env.Crashed -> ());
  let image = Fault_env.image fenv in
  Alcotest.(check string) "synced file intact" "aaaa" (read_file image "a");
  Alcotest.(check string) "unsynced file empty" "" (read_file image "b")

let test_write_fault_is_transient () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Fault_env.fail_write_at fenv ~op:1;
  (match Env.append w ~category:cat "x" with
  | () -> Alcotest.fail "scheduled fault did not fire"
  | exception Env.Io_fault { op = "append"; file = "a" } -> ());
  (* The failed op had no effect; retrying is legal and succeeds. *)
  Env.append w ~category:cat "x";
  Env.sync w;
  Alcotest.(check int) "exactly one byte landed" 1 (Fault_env.file_size fenv "a");
  Alcotest.(check int) "fault counted" 1 (Io_stats.fault_count (Env.stats env))

let test_read_fault_is_transient () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello";
  Env.sync w;
  Env.close_writer w;
  Fault_env.fail_read_at fenv ~op:1;
  let r = Env.open_file env "a" in
  (match Env.read r ~category:cat ~pos:0 ~len:5 with
  | _ -> Alcotest.fail "scheduled read fault did not fire"
  | exception Env.Io_fault { op = "read"; file = "a" } -> ());
  Alcotest.(check string) "retry succeeds" "hello"
    (Env.read r ~category:cat ~pos:0 ~len:5);
  Env.close_reader r

let test_flip_bit () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "A" (* 0x41 *);
  Env.sync w;
  Fault_env.flip_bit fenv ~file:"a" ~bit:1;
  Alcotest.(check string) "bit 1 flipped: 0x41 -> 0x43" "C" (read_file env "a");
  Alcotest.(check int) "corruption counted as a fault" 1
    (Io_stats.fault_count (Env.stats env));
  (match Fault_env.flip_bit fenv ~file:"a" ~bit:800 with
  | () -> Alcotest.fail "out-of-range flip accepted"
  | exception Invalid_argument _ -> ())

let test_durable_and_snapshot_images () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "hello";
  Env.sync w;
  Env.append w ~category:cat "tail";
  Alcotest.(check string) "durable image cuts the unsynced tail" "hello"
    (read_file (Fault_env.durable_image fenv) "a");
  Alcotest.(check string) "snapshot keeps buffered bytes" "hellotail"
    (read_file (Fault_env.snapshot_env fenv) "a");
  Alcotest.(check string) "snapshot with truncation" "hellota"
    (read_file (Fault_env.snapshot_env ~truncate:("a", 7) fenv) "a");
  (* Truncating a file that does not exist is silently ignored. *)
  Alcotest.(check string) "missing truncate target ignored" "hellotail"
    (read_file (Fault_env.snapshot_env ~truncate:("nope", 3) fenv) "a")

let test_deletes_are_durable () =
  let fenv = Fault_env.create () in
  let env = Fault_env.env fenv in
  let w = Env.create_file env "a" in
  Env.append w ~category:cat "x";
  Env.sync w;
  Env.delete env "a";
  Alcotest.(check bool) "deleted from the durable view too" false
    (Env.exists (Fault_env.durable_image fenv) "a")

let test_sync_counter () =
  let env = Env.in_memory () in
  let w = Env.create_file env "a" in
  Env.sync w;
  Env.sync w;
  Alcotest.(check int) "sync_count" 2 (Io_stats.sync_count (Env.stats env));
  Io_stats.reset (Env.stats env);
  Alcotest.(check int) "reset clears syncs" 0
    (Io_stats.sync_count (Env.stats env))

let suite =
  [
    Alcotest.test_case "crash drops unsynced tail" `Quick
      test_crash_drops_unsynced_tail;
    Alcotest.test_case "torn append" `Quick test_torn_append;
    Alcotest.test_case "crash image spans files" `Quick
      test_crash_image_spans_files;
    Alcotest.test_case "write fault is transient" `Quick
      test_write_fault_is_transient;
    Alcotest.test_case "read fault is transient" `Quick
      test_read_fault_is_transient;
    Alcotest.test_case "flip bit" `Quick test_flip_bit;
    Alcotest.test_case "durable and snapshot images" `Quick
      test_durable_and_snapshot_images;
    Alcotest.test_case "deletes are durable" `Quick test_deletes_are_durable;
    Alcotest.test_case "sync counter" `Quick test_sync_counter;
  ]
