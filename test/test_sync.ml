(* Tests for Wip_util.Sync: exception-safe critical sections, the
   ascending-rank lock order, and the debug-mode acquisition validator —
   including that it catches a deliberately out-of-order cross-shard
   acquisition made through the real sharded front-end. *)

module Sync = Wip_util.Sync
module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Config = Wipdb.Config

(* Module-init side effect: the whole test binary (dune runtest and the
   @concurrent / @crash aliases alike) runs with the lock-order validator
   on, so every suite doubles as a lock-discipline check. *)
let () = Sync.set_debug true

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_with_lock_basics () =
  let l = Sync.create ~name:"basics" () in
  Alcotest.(check int) "returns the body's value" 42
    (Sync.with_lock l (fun () -> 42));
  Alcotest.(check int) "nothing held after return" 0 (Sync.held_count ());
  (match Sync.with_lock l (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Alcotest.(check int) "nothing held after raise" 0 (Sync.held_count ());
  (* The lock was actually released: re-acquiring must not deadlock. *)
  Alcotest.(check bool) "re-acquirable after raise" true
    (Sync.with_lock l (fun () -> true))

let test_held_count_tracks_nesting () =
  let outer = Sync.create ~rank:1 ~name:"outer" () in
  let inner = Sync.create ~rank:2 ~name:"inner" () in
  Sync.with_lock outer (fun () ->
      Alcotest.(check int) "one held" 1 (Sync.held_count ());
      Sync.with_lock inner (fun () ->
          Alcotest.(check int) "two held" 2 (Sync.held_count ())));
  Alcotest.(check int) "zero at quiescence" 0 (Sync.held_count ())

let test_order_violation_detected () =
  let hi = Sync.create ~rank:7 ~name:"hi" () in
  let lo = Sync.create ~rank:3 ~name:"lo" () in
  let v0 = Sync.violation_count () in
  (match Sync.with_lock hi (fun () -> Sync.with_lock lo (fun () -> ())) with
  | exception Sync.Order_violation msg ->
    Alcotest.(check bool) "names the offending locks" true
      (contains msg "lo" && contains msg "hi")
  | _ -> Alcotest.fail "expected Order_violation");
  Alcotest.(check bool) "violation counted" true (Sync.violation_count () > v0);
  Alcotest.(check int) "no lock leaked by the violation" 0 (Sync.held_count ());
  (* The refused lock was never acquired; both remain usable. *)
  Sync.with_lock lo (fun () -> Sync.with_lock hi (fun () -> ()))

let test_equal_rank_is_a_violation () =
  (* Two default-rank (leaf) locks must never nest: leaves are innermost. *)
  let a = Sync.create ~name:"leaf-a" () in
  let b = Sync.create ~name:"leaf-b" () in
  match Sync.with_lock a (fun () -> Sync.with_lock b (fun () -> ())) with
  | exception Sync.Order_violation _ -> ()
  | _ -> Alcotest.fail "expected Order_violation on equal ranks"

let test_with_locks_ordered () =
  let ls = List.init 3 (fun i -> Sync.create ~rank:(10 + i) ~name:"range" ()) in
  Sync.with_locks_ordered ls (fun () ->
      Alcotest.(check int) "all held" 3 (Sync.held_count ()));
  Alcotest.(check int) "all released" 0 (Sync.held_count ());
  (match Sync.with_locks_ordered (List.rev ls) (fun () -> ()) with
  | exception Sync.Order_violation _ -> ()
  | _ -> Alcotest.fail "expected Order_violation on descending ranks");
  Alcotest.(check int) "eager check acquires nothing" 0 (Sync.held_count ())

(* The acceptance scenario: a cross-shard acquisition through the real
   sharded store that takes shard locks against the canonical ascending
   order — holding a high shard's lock while operating on a lower shard. *)
let test_sharded_out_of_order_acquisition () =
  let base =
    { Config.default with Config.memtable_items = 64; name = "sync-shard" }
  in
  let shards = 4 in
  let bounds = Config.shard_boundaries base ~shards in
  let stores =
    List.mapi
      (fun i lo ->
        (lo, Wipdb.Store.create { base with Config.name = Printf.sprintf "sync-shard-%d" i }))
      bounds
  in
  let c = Sh.create ~pool_threads:0 stores in
  let key_of i =
    Printf.sprintf "%016Ld"
      Int64.(div (mul (of_int i) base.Config.initial_key_space) (of_int shards))
  in
  let lo_key = key_of 0 and hi_key = key_of 3 in
  (* Sanity: the straight path works under the validator. *)
  Sh.put c ~key:lo_key ~value:"a";
  Sh.put c ~key:hi_key ~value:"b";
  (match
     Sh.with_shard c ~key:hi_key (fun _ -> Sh.put c ~key:lo_key ~value:"x")
   with
  | exception Sync.Order_violation _ -> ()
  | _ ->
    Alcotest.fail "expected Order_violation for hi-shard -> lo-shard nesting");
  Alcotest.(check int) "no shard lock leaked" 0 (Sync.held_count ());
  (* The store is still fully operational after the refused acquisition. *)
  Sh.put c ~key:lo_key ~value:"y";
  Alcotest.(check (option string)) "post-violation put lands" (Some "y")
    (Sh.get c lo_key);
  Sh.stop c

let suite =
  [
    Alcotest.test_case "with_lock basics" `Quick test_with_lock_basics;
    Alcotest.test_case "held count nesting" `Quick
      test_held_count_tracks_nesting;
    Alcotest.test_case "order violation" `Quick test_order_violation_detected;
    Alcotest.test_case "equal leaf ranks" `Quick test_equal_rank_is_a_violation;
    Alcotest.test_case "with_locks_ordered" `Quick test_with_locks_ordered;
    Alcotest.test_case "sharded out-of-order" `Quick
      test_sharded_out_of_order_acquisition;
  ]
