(* Crash-point matrix: run a mixed workload (flushes, compactions, bucket
   splits) on a fault-injected device, schedule a crash at EVERY durable op
   (append or sync) the workload performs, recover from each captured image,
   and assert the recovery invariants of DESIGN.md:

   - every batch is atomic: all of its writes visible or none;
   - the surviving batches form a prefix of the acknowledged order;
   - everything acknowledged before the last durability point survives;
   - survivor values are exact — corruption or loss never surfaces as
     wrong data;
   - recovery is idempotent: recovering the recovered device again yields
     the identical logical state;
   - recovery garbage-collects orphan table files, so the device holds
     exactly the manifest-referenced footprint. *)

module Config = Wipdb.Config
module Store = Wipdb.Store
module Leveled = Wip_lsm.Leveled
module Flsm = Wip_flsm.Flsm
module Env = Wip_storage.Env
module Fault_env = Wip_storage.Fault_env
module Io_stats = Wip_storage.Io_stats
module Ikey = Wip_util.Ikey

(* ------------------------------------------------------------------ *)
(* Uniform view of the three engines *)

type engine = {
  label : string;
  table_suffix : string;
  create : Env.t -> Wip_kv.Store_intf.store;
  recover : Env.t -> Wip_kv.Store_intf.store;
  (* Block until everything acknowledged so far is durable. *)
  durability_point : Wip_kv.Store_intf.store -> unit;
  live_tables : Wip_kv.Store_intf.store -> string list;
}

(* Tiny configs so the whole matrix stays a few hundred durable ops while
   still crossing at least one flush, one compaction and (for WipDB) one
   bucket split. *)

let store_cfg =
  {
    Config.default with
    Config.name = "mx";
    memtable_items = 4;
    l_max = 2;
    t_sublevels = 2;
    split_fanout = 2;
    min_count = 2;
    max_count = 2;
    initial_buckets = 1;
    adaptive_memtable = false;
    wal_segment_bytes = 512;
    bucket_merge_bytes = 0;
    block_cache_bytes = 0;
  }

let leveled_cfg =
  {
    Leveled.memtable_bytes = 256;
    sstable_bytes = 256;
    l0_compaction_trigger = 2;
    level1_bytes = 512;
    level_multiplier = 4;
    max_levels = 3;
    bits_per_key = 10;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "mxl";
  }

let flsm_cfg =
  {
    Flsm.memtable_bytes = 256;
    max_files_per_guard = 2;
    top_level_bits = 2;
    bits_decrement = 1;
    max_levels = 3;
    bits_per_key = 10;
    sorted_view = true;
    sorted_view_min_runs = 2;
    ph_index = true;
    name = "mxf";
  }

let pack (type a) (module M : Wip_kv.Store_intf.S with type t = a) (db : a) =
  Wip_kv.Store_intf.Store ((module M), db)

(* The existential wrapper hides engine-specific operations (checkpoint,
   live_table_files), so each engine carries closures over its own typed
   handle instead. *)

let wipdb_engine () =
  let handle = ref None in
  let get_handle () =
    match !handle with Some db -> db | None -> assert false
  in
  {
    label = "wipdb";
    table_suffix = ".lvt";
    create =
      (fun env ->
        let db = Store.create ~env store_cfg in
        handle := Some db;
        pack (module Store) db);
    recover =
      (fun env ->
        let db = Store.recover ~env store_cfg in
        handle := Some db;
        pack (module Store) db);
    durability_point = (fun _ -> Store.checkpoint (get_handle ()));
    live_tables = (fun _ -> Store.live_table_files (get_handle ()));
  }

let leveled_engine () =
  let handle = ref None in
  let get_handle () =
    match !handle with Some db -> db | None -> assert false
  in
  {
    label = "leveled";
    table_suffix = ".sst";
    create =
      (fun env ->
        let db = Leveled.create ~env leveled_cfg in
        handle := Some db;
        pack (module Leveled) db);
    recover =
      (fun env ->
        let db = Leveled.recover ~env leveled_cfg in
        handle := Some db;
        pack (module Leveled) db);
    (* A flush persists the memtable and syncs the manifest, making every
       acknowledged batch durable. *)
    durability_point = (fun _ -> Leveled.flush (get_handle ()));
    live_tables = (fun _ -> Leveled.live_table_files (get_handle ()));
  }

let flsm_engine () =
  let handle = ref None in
  let get_handle () =
    match !handle with Some db -> db | None -> assert false
  in
  {
    label = "flsm";
    table_suffix = ".sst";
    create =
      (fun env ->
        let db = Flsm.create ~env flsm_cfg in
        handle := Some db;
        pack (module Flsm) db);
    recover =
      (fun env ->
        let db = Flsm.recover ~env flsm_cfg in
        handle := Some db;
        pack (module Flsm) db);
    durability_point = (fun _ -> Flsm.flush (get_handle ()));
    live_tables = (fun _ -> Flsm.live_table_files (get_handle ()));
  }

(* ------------------------------------------------------------------ *)
(* The workload: unique keys per batch plus a rotating overwrite slot *)

let total_batches = 16

let uniques_per_batch = 4

let overwrite_slots = 3

let durability_every = 5

let uniq_key b i = Printf.sprintf "u-%03d-%d" b i

let uniq_value b i = Printf.sprintf "v%d-%d" b i

let ow_key b = Printf.sprintf "ow-%d" (b mod overwrite_slots)

let ow_value b = Printf.sprintf "ow-v%d" b

let batch_items b =
  List.init uniques_per_batch (fun i ->
      (Ikey.Value, uniq_key b i, uniq_value b i))
  @ [ (Ikey.Value, ow_key b, ow_value b) ]

type progress = { mutable acked : int; mutable floor : int }

(* Run batches 1..total_batches; a scripted crash escapes as
   Fault_env.Crashed with [progress] telling how far the run got. *)
let run_workload eng fenv progress =
  let db = eng.create (Fault_env.env fenv) in
  for b = 1 to total_batches do
    Wip_kv.Store_intf.write_batch db (batch_items b);
    progress.acked <- b;
    if b mod durability_every = 0 then begin
      eng.durability_point db;
      progress.floor <- b
    end
  done;
  eng.durability_point db;
  progress.floor <- total_batches;
  db

(* ------------------------------------------------------------------ *)
(* Invariants *)

let scan_all db =
  Wip_kv.Store_intf.scan db ~lo:"" ~hi:"\127" ()

(* The logical state after recovering any crash image must equal the state
   produced by some prefix [1..p] of the batch sequence. *)
let expected_state p =
  let uniq =
    List.concat
      (List.init p (fun b0 ->
           let b = b0 + 1 in
           List.init uniques_per_batch (fun i -> (uniq_key b i, uniq_value b i))))
  in
  let ows =
    List.filter_map
      (fun s ->
        (* Largest b <= p writing slot s. *)
        let rec last b best =
          if b > p then best
          else last (b + 1) (if b mod overwrite_slots = s then Some b else best)
        in
        match last 1 None with
        | Some b -> Some (ow_key b, ow_value b)
        | None -> None)
      (List.init overwrite_slots Fun.id)
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (uniq @ ows)

let check_invariants eng ~op ~acked ~floor image =
  let ctx fmt = Printf.ksprintf (fun s -> s) fmt in
  let db = eng.recover image in
  (* 1. Batch atomicity + prefix order, via each batch's unique keys. *)
  let batch_status b =
    let found =
      List.init uniques_per_batch (fun i ->
          match Wip_kv.Store_intf.get db (uniq_key b i) with
          | Some v ->
            if not (String.equal v (uniq_value b i)) then
              Alcotest.failf "%s op %d: key %s has wrong value %S" eng.label op
                (uniq_key b i) v;
            true
          | None -> false)
    in
    if List.for_all Fun.id found then `All
    else if List.exists Fun.id found then `Partial
    else `None
  in
  let survived = ref 0 in
  let gap = ref false in
  for b = 1 to total_batches do
    match batch_status b with
    | `All ->
      if !gap then
        Alcotest.failf "%s op %d: batch %d survived after a lost batch"
          eng.label op b;
      survived := b
    | `None -> gap := true
    | `Partial ->
      Alcotest.failf "%s op %d: batch %d partially recovered" eng.label op b
  done;
  let p = !survived in
  (* 2. The durable floor: everything acknowledged before the last completed
     durability point must have survived. *)
  if p < floor then
    Alcotest.failf "%s op %d: only %d batches survived, floor was %d" eng.label
      op p floor;
  (* A batch beyond the one in flight cannot exist. *)
  if p > acked + 1 then
    Alcotest.failf "%s op %d: %d batches survived but only %d were issued"
      eng.label op p acked;
  (* 3. The full visible state is exactly the prefix state — nothing
     invented, nothing stale surfacing for overwritten slots. *)
  let got = scan_all db in
  let want = expected_state p in
  Alcotest.(check (list (pair string string)))
    (ctx "%s op %d: state = prefix of %d batches" eng.label op p)
    want got;
  (* 4. Orphan GC: the device holds exactly the referenced table files. *)
  let on_device =
    Env.list_files image
    |> List.filter (fun f -> Filename.check_suffix f eng.table_suffix)
    |> List.sort String.compare
  in
  let referenced = List.sort String.compare (eng.live_tables db) in
  Alcotest.(check (list string))
    (ctx "%s op %d: device tables = referenced tables" eng.label op)
    referenced on_device;
  (* The referenced footprint is the on-device table footprint. *)
  let device_table_bytes =
    List.fold_left
      (fun acc f ->
        let r = Env.open_file image f in
        let s = Env.file_size r in
        Env.close_reader r;
        acc + s)
      0 on_device
  in
  let referenced_bytes =
    List.fold_left ( + ) 0 (Wip_kv.Store_intf.file_sizes db)
  in
  Alcotest.(check int)
    (ctx "%s op %d: table footprint" eng.label op)
    referenced_bytes device_table_bytes;
  (* 5. Idempotence: recovering the recovered device again yields the same
     logical state. *)
  let db2 = eng.recover image in
  let again = scan_all db2 in
  Alcotest.(check (list (pair string string)))
    (ctx "%s op %d: recovery is idempotent" eng.label op)
    got again

(* ------------------------------------------------------------------ *)
(* The matrix *)

let profile eng =
  (* Fault-free run: learn the durable-op count and check the workload
     actually exercises the structural transitions the matrix is about. *)
  let fenv = Fault_env.create () in
  let progress = { acked = 0; floor = 0 } in
  let db = run_workload eng fenv progress in
  let final = scan_all db in
  Alcotest.(check (list (pair string string)))
    (eng.label ^ ": fault-free final state")
    (expected_state total_batches)
    final;
  Fault_env.durable_ops fenv

let run_matrix eng ~structural_check =
  let n = profile eng in
  if n < 10 then Alcotest.failf "%s: workload too small (%d durable ops)" eng.label n;
  for op = 1 to n do
    let fenv = Fault_env.create () in
    (* Vary the torn-tail length so crash images exercise clean cuts, a
       single stray byte and longer torn writes. *)
    Fault_env.crash_at fenv ~op ~torn:(op mod 4) ();
    let progress = { acked = 0; floor = 0 } in
    match run_workload eng fenv progress with
    | _ ->
      Alcotest.failf "%s: scheduled crash at op %d/%d never fired" eng.label op n
    | exception Fault_env.Crashed ->
      let image = Fault_env.image fenv in
      check_invariants eng ~op ~acked:progress.acked ~floor:progress.floor image
  done;
  (* The structural assertions run on a final fault-free build so the counts
     reflect the very workload the matrix crashed. *)
  structural_check ()

let test_store_matrix () =
  let eng = wipdb_engine () in
  run_matrix eng ~structural_check:(fun () ->
      let fenv = Fault_env.create () in
      let progress = { acked = 0; floor = 0 } in
      let db = Store.create ~env:(Fault_env.env fenv) store_cfg in
      for b = 1 to total_batches do
        Store.write_batch db (batch_items b);
        progress.acked <- b
      done;
      Alcotest.(check bool) "wipdb: workload flushed" true
        (Store.live_table_files db <> [] || Store.compaction_count db > 0);
      Alcotest.(check bool) "wipdb: workload compacted" true
        (Store.compaction_count db >= 1);
      Alcotest.(check bool) "wipdb: workload split a bucket" true
        (Store.split_count db >= 1))

let test_leveled_matrix () =
  let eng = leveled_engine () in
  run_matrix eng ~structural_check:(fun () ->
      let fenv = Fault_env.create () in
      let db = Leveled.create ~env:(Fault_env.env fenv) leveled_cfg in
      for b = 1 to total_batches do
        Leveled.write_batch db (batch_items b)
      done;
      Alcotest.(check bool) "leveled: workload flushed" true
        (Leveled.live_table_files db <> []);
      Alcotest.(check bool) "leveled: workload compacted" true
        (Leveled.compaction_count db >= 1))

let test_flsm_matrix () =
  let eng = flsm_engine () in
  run_matrix eng ~structural_check:(fun () ->
      let fenv = Fault_env.create () in
      let db = Flsm.create ~env:(Fault_env.env fenv) flsm_cfg in
      for b = 1 to total_batches do
        Flsm.write_batch db (batch_items b)
      done;
      Alcotest.(check bool) "flsm: workload flushed" true
        (Flsm.live_table_files db <> []);
      Alcotest.(check bool) "flsm: workload compacted" true
        (Flsm.compaction_count db >= 1))

(* ------------------------------------------------------------------ *)
(* WAL reclaim under crash: a flush reclaims rolled segments; crashing at
   any point around that transition must not lose acknowledged records the
   deleted segments held. (The tiny segment size forces rolls, so the flush
   at the durability point actually deletes segments.) *)

let test_wal_reclaim_under_crash () =
  let eng = wipdb_engine () in
  (* Profile to find the op count, then crash at every op of the first
     durability point's window (the flush + checkpoint that reclaims). *)
  let n = profile eng in
  (* Sample more densely than the main matrix is needed here: every op is
     already covered by test_store_matrix; this test additionally verifies
     that after a crash anywhere, durable records never depend on a deleted
     segment. It recovers from the durable image at each checkpoint too. *)
  ignore n;
  let fenv = Fault_env.create () in
  let progress = { acked = 0; floor = 0 } in
  let _db = run_workload eng fenv progress in
  (* At quiescence, with every durability point passed, the durable image
     (power loss right now, nothing in flight) must recover to the complete
     state even though reclaim has deleted rolled WAL segments. *)
  let image = Fault_env.durable_image fenv in
  let db = eng.recover image in
  Alcotest.(check (list (pair string string)))
    "durable image after reclaim recovers everything"
    (expected_state total_batches)
    (scan_all db)

(* ------------------------------------------------------------------ *)
(* Matrix row: disk full during flush. The device's byte budget runs out
   while the store is streaming tables out, so a flush (or the WAL append
   feeding it) hits a non-retryable [no_space] fault. The store must go
   read-only typed, keep serving every acknowledged write from the live
   image, and the durable image must still recover to a consistent batch
   prefix — a partially-written, never-registered table is garbage, not
   corruption. *)

let test_disk_full_during_flush () =
  let eng = wipdb_engine () in
  let fenv = Fault_env.create () in
  let env =
    Env.with_retry ~seed:7L ~sleep_ns:(fun _ -> ()) (Fault_env.env fenv)
  in
  let db = Store.create ~env store_cfg in
  (* Small enough to trip a few batches in (the profile run appends tens of
     KiB), large enough that several flushes complete first. *)
  Fault_env.set_space_budget fenv ~bytes:(Some 4096);
  let acked = ref 0 in
  (try
     for b = 1 to total_batches do
       match Store.try_write_batch db (batch_items b) with
       | Ok () -> acked := b
       | Error (Wip_kv.Store_intf.Store_degraded _) -> raise Exit
       | Error
           (Wip_kv.Store_intf.Backpressure _ | Wip_kv.Store_intf.Txn_conflict _)
         ->
         Alcotest.fail "disk-full surfaced as a spurious refusal"
     done
   with Exit -> ());
  Alcotest.(check bool) "ran out of space before finishing" true
    (!acked < total_batches);
  Alcotest.(check bool) "some batches landed first" true (!acked > 0);
  (match Store.health db with
  | Wip_kv.Store_intf.Degraded _ -> ()
  | Wip_kv.Store_intf.Healthy -> Alcotest.fail "store still healthy");
  (* Reads keep serving everything acknowledged, from the live store. The
     refused batch may have applied before its flush hit the wall (refused
     ≠ rolled back — it was simply never acknowledged), so only the
     never-overwritten unique keys admit an exact-value check. *)
  for b = 1 to !acked do
    List.init uniques_per_batch (fun i -> i)
    |> List.iter (fun i ->
           Alcotest.(check (option string))
             (Printf.sprintf "acked key %s survives degradation"
                (uniq_key b i))
             (Some (uniq_value b i))
             (Store.get db (uniq_key b i)))
  done;
  (* Degradation is not recovery-visible damage: power off right now and
     the durable image recovers to a clean prefix, idempotently. *)
  check_invariants eng ~op:0 ~acked:!acked ~floor:0
    (Fault_env.durable_image fenv);
  (* Space restored: a recovery probe flips the store writable again. *)
  Fault_env.set_space_budget fenv ~bytes:None;
  (match Store.probe db with
  | Wip_kv.Store_intf.Healthy -> ()
  | Wip_kv.Store_intf.Degraded { reason } ->
    Alcotest.failf "probe failed after space restored: %s" reason);
  Store.put db ~key:"post-recovery" ~value:"ok";
  Alcotest.(check (option string)) "writes accepted again" (Some "ok")
    (Store.get db "post-recovery")

(* Matrix row: crash during a retry backoff window. A transient fault at
   durable op [k] sends the env's retry loop into its backoff, and the
   crash fires on the re-attempt — the device dies while the store is
   mid-retry. Recovery must satisfy the full invariant set (prefix state,
   atomicity, orphan GC, idempotence) exactly as for a plain crash. *)

let test_crash_during_retry_backoff () =
  let eng = wipdb_engine () in
  let with_retry_eng =
    {
      eng with
      create =
        (fun env ->
          eng.create (Env.with_retry ~seed:11L ~sleep_ns:(fun _ -> ()) env));
    }
  in
  let n = profile eng in
  (* Sample the op range rather than the full matrix: the plain-crash rows
     above already cover every op; this row pins the fault+retry+crash
     interleaving specifically. *)
  let sample = [ 2; n / 4; n / 2; n - 2 ] in
  List.iter
    (fun k ->
      let fenv = Fault_env.create () in
      (* Op k fails transiently; the retry consumes op k+1, where the
         crash is scheduled — it fires inside the backoff window's
         re-attempt. *)
      Fault_env.fail_write_at fenv ~op:k ();
      Fault_env.crash_at fenv ~op:(k + 1) ~torn:(k mod 3) ();
      let progress = { acked = 0; floor = 0 } in
      match run_workload with_retry_eng fenv progress with
      | _ ->
        Alcotest.failf "crash at retried op %d never fired" (k + 1)
      | exception Fault_env.Crashed ->
        let image = Fault_env.image fenv in
        check_invariants eng ~op:(k + 1) ~acked:progress.acked
          ~floor:progress.floor image;
        (* The schedule really was fault-then-retry: one injected write
           fault besides the crash. *)
        Alcotest.(check bool)
          (Printf.sprintf "op %d: transient fault fired first" k)
          true
          (Io_stats.fault_count (Env.stats (Fault_env.env fenv)) >= 1))
    sample

let suite =
  [
    Alcotest.test_case "wipdb crash matrix" `Slow test_store_matrix;
    Alcotest.test_case "leveled crash matrix" `Slow test_leveled_matrix;
    Alcotest.test_case "flsm crash matrix" `Slow test_flsm_matrix;
    Alcotest.test_case "wal reclaim under crash" `Quick
      test_wal_reclaim_under_crash;
    Alcotest.test_case "disk full during flush" `Quick
      test_disk_full_during_flush;
    Alcotest.test_case "crash during retry backoff" `Quick
      test_crash_during_retry_backoff;
  ]
