(* Tests for WipDB's streaming iterator (iter_range). *)

module Config = Wipdb.Config
module Store = Wipdb.Store

let small_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    name = "iter";
  }

let key i = Printf.sprintf "%08d" i

let test_iterator_matches_scan () =
  let db = Store.create small_config in
  for i = 0 to 4999 do
    Store.put db ~key:(key (i * 3 mod 5000)) ~value:("v" ^ string_of_int i)
  done;
  Store.delete db ~key:(key 42);
  let lo = key 0 and hi = key 2000 in
  let via_scan = Store.scan db ~lo ~hi () in
  let via_iter = List.of_seq (Store.iter_range db ~lo ~hi ()) in
  Alcotest.(check bool) "identical" true (via_scan = via_iter)

let test_iterator_is_lazy () =
  (* Consuming only the first few entries of a huge range must not read the
     whole store: compare Read_path bytes for a 5-entry prefix against a
     full drain. *)
  let env = Wip_storage.Env.in_memory () in
  let db = Store.create ~env small_config in
  for i = 0 to 9999 do
    Store.put db ~key:(key i) ~value:(String.make 50 'v')
  done;
  Store.flush db;
  Store.maintenance db ();
  let stats = Wip_storage.Env.stats env in
  let read_bytes () =
    Wip_storage.Io_stats.read_by stats Wip_storage.Io_stats.Read_path
  in
  let before = read_bytes () in
  let short = Store.iter_range db ~lo:"" ~hi:"\255" () |> Seq.take 5 |> List.of_seq in
  let after_short = read_bytes () in
  Alcotest.(check int) "five entries" 5 (List.length short);
  let full = Store.iter_range db ~lo:"" ~hi:"\255" () |> List.of_seq in
  let after_full = read_bytes () in
  Alcotest.(check int) "full drain" 10_000 (List.length full);
  Alcotest.(check bool)
    (Printf.sprintf "prefix I/O (%d) far below full I/O (%d)"
       (after_short - before) (after_full - after_short))
    true
    ((after_short - before) * 5 < after_full - after_short)

let test_iterator_snapshot_pinned () =
  let db = Store.create small_config in
  Store.put db ~key:"a" ~value:"1";
  Store.put db ~key:"b" ~value:"2";
  let snap = Store.snapshot db in
  let seq = Store.iter_range db ~snapshot:snap ~lo:"" ~hi:"\255" () in
  (* Mutate after creating the sequence but before consuming it: the
     memtable buffer was captured at creation, so the view stays pinned. *)
  Store.put db ~key:"a" ~value:"CHANGED";
  Store.put db ~key:"c" ~value:"3";
  let got = List.of_seq seq in
  Alcotest.(check (list (pair string string)))
    "snapshot view"
    [ ("a", "1"); ("b", "2") ]
    got

let test_iterator_empty_range () =
  let db = Store.create small_config in
  Store.put db ~key:"m" ~value:"v";
  Alcotest.(check int) "empty" 0
    (Seq.length (Store.iter_range db ~lo:"x" ~hi:"z" ()));
  Alcotest.(check int) "inverted" 0
    (Seq.length (Store.iter_range db ~lo:"z" ~hi:"a" ()))

let test_iterator_sorted_unique () =
  let db = Store.create small_config in
  let rng = Wip_util.Rng.create ~seed:404L in
  for i = 0 to 7999 do
    Store.put db ~key:(key (Wip_util.Rng.int rng 2000)) ~value:(string_of_int i)
  done;
  let rec check last seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons ((k, _), rest) ->
      (match last with
      | Some prev when String.compare prev k >= 0 ->
        Alcotest.failf "out of order or duplicate: %s after %s" k prev
      | _ -> ());
      check (Some k) rest
  in
  check None (Store.iter_range db ~lo:"" ~hi:"\255" ())

let suite =
  [
    Alcotest.test_case "matches scan" `Quick test_iterator_matches_scan;
    Alcotest.test_case "lazy block fetches" `Quick test_iterator_is_lazy;
    Alcotest.test_case "snapshot pinned" `Quick test_iterator_snapshot_pinned;
    Alcotest.test_case "empty range" `Quick test_iterator_empty_range;
    Alcotest.test_case "sorted unique" `Quick test_iterator_sorted_unique;
  ]

let test_iterator_after_recovery () =
  let env = Wip_storage.Env.in_memory () in
  let db = Store.create ~env small_config in
  for i = 0 to 2999 do
    Store.put db ~key:(key i) ~value:("v" ^ string_of_int i)
  done;
  Store.checkpoint db;
  let db2 = Store.recover ~env small_config in
  let got = List.of_seq (Store.iter_range db2 ~lo:(key 100) ~hi:(key 110) ()) in
  Alcotest.(check int) "ten entries" 10 (List.length got);
  List.iteri
    (fun off (k, v) ->
      Alcotest.(check string) "key" (key (100 + off)) k;
      Alcotest.(check string) "value" ("v" ^ string_of_int (100 + off)) v)
    got

let test_iterator_with_block_cache () =
  (* Scans are scan-resistant: a full drain reads through the cache without
     populating it, so long range walks can never evict the point-get
     working set — and point gets keep caching normally. *)
  let env = Wip_storage.Env.in_memory () in
  let cfg = { small_config with Config.block_cache_bytes = 8 * 1024 * 1024 } in
  let db = Store.create ~env cfg in
  for i = 0 to 4999 do
    Store.put db ~key:(key i) ~value:"payload"
  done;
  Store.flush db;
  Store.maintenance db ();
  let stats = Wip_storage.Env.stats env in
  let read () = Wip_storage.Io_stats.read_by stats Wip_storage.Io_stats.Read_path in
  (* Warm one hot key; the repeat get is served entirely from the cache. *)
  ignore (Store.get db (key 123));
  let warmed = read () in
  Alcotest.(check (option string)) "hot get" (Some "payload")
    (Store.get db (key 123));
  Alcotest.(check int) "hot get fully cached" warmed (read ());
  let first = List.of_seq (Store.iter_range db ~lo:"" ~hi:"\255" ()) in
  Alcotest.(check int) "complete" 5000 (List.length first);
  let after_first = read () in
  Alcotest.(check bool) "drain read the device" true (after_first > warmed);
  (* The drain inserted nothing, so a second drain pays for its own I/O
     instead of riding a scan-polluted cache. *)
  let second = List.of_seq (Store.iter_range db ~lo:"" ~hi:"\255" ()) in
  Alcotest.(check int) "complete again" 5000 (List.length second);
  Alcotest.(check bool) "second drain reads again (no scan pollution)" true
    (read () > after_first);
  (* ...and it evicted nothing: the hot block still serves from cache. *)
  let before_hot = read () in
  Alcotest.(check (option string)) "hot get after scans" (Some "payload")
    (Store.get db (key 123));
  Alcotest.(check int) "hot block survived the scans" before_hot (read ())

let suite =
  suite
  @ [
      Alcotest.test_case "iterator after recovery" `Quick
        test_iterator_after_recovery;
      Alcotest.test_case "iterator with cache" `Quick
        test_iterator_with_block_cache;
    ]
