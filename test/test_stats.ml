(* Tests for wip_stats: histogram percentiles and throughput windows. *)

module Histogram = Wip_stats.Histogram
module Throughput = Wip_stats.Throughput

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "p99" 0.0 (Histogram.percentile h 99.0);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Histogram.mean h)

let test_histogram_single () =
  let h = Histogram.create () in
  Histogram.add h 42.0;
  Alcotest.(check int) "count" 1 (Histogram.count h);
  Alcotest.(check (float 0.001)) "mean" 42.0 (Histogram.mean h);
  Alcotest.(check (float 0.001)) "max" 42.0 (Histogram.max_value h);
  let p = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 near 42" true (p >= 40.0 && p <= 44.7)

let test_histogram_percentiles_uniform () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.add h (float_of_int i)
  done;
  let check_pct p expected =
    let v = Histogram.percentile h p in
    let err = Float.abs (v -. expected) /. expected in
    if err > 0.08 then
      Alcotest.failf "p%.0f = %.1f, expected ~%.1f (err %.3f)" p v expected err
  in
  check_pct 50.0 5000.0;
  check_pct 90.0 9000.0;
  check_pct 99.0 9900.0;
  check_pct 99.9 9990.0

let test_histogram_percentile_bounded_by_max () =
  let h = Histogram.create () in
  Histogram.add h 10.0;
  Histogram.add h 1000.0;
  Alcotest.(check bool) "p999 <= max" true
    (Histogram.percentile h 99.9 <= Histogram.max_value h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 100 do
    Histogram.add a (float_of_int i)
  done;
  for i = 101 to 200 do
    Histogram.add b (float_of_int i)
  done;
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 200 (Histogram.count a);
  Alcotest.(check (float 0.001)) "merged max" 200.0 (Histogram.max_value a);
  Alcotest.(check (float 0.001)) "merged min" 1.0 (Histogram.min_value a);
  let p50 = Histogram.percentile a 50.0 in
  Alcotest.(check bool) "p50 near 100" true (p50 > 85.0 && p50 < 115.0)

let test_histogram_reset () =
  let h = Histogram.create () in
  Histogram.add h 5.0;
  Histogram.reset h;
  Alcotest.(check int) "count" 0 (Histogram.count h)

let test_histogram_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5.0);
  Alcotest.(check int) "counted" 1 (Histogram.count h);
  Alcotest.(check bool) "clamped" true (Histogram.min_value h >= 0.0)

(* Regression: bucket 0 used to claim the range [1, 2), so sub-1.0 samples
   interpolated to percentile values above the observed maximum. *)
let test_histogram_sub_unit_samples () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0.1; 0.2; 0.3; 0.4; 0.5 ];
  let mx = Histogram.max_value h and mn = Histogram.min_value h in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      if v > mx +. 1e-9 then
        Alcotest.failf "p%.1f = %f exceeds observed max %f" p v mx;
      if v < mn -. 1e-9 then
        Alcotest.failf "p%.1f = %f below observed min %f" p v mn)
    [ 1.0; 50.0; 90.0; 99.0; 99.9 ]

let test_throughput_series () =
  let t = Throughput.create ~window:10 in
  for _ = 1 to 35 do
    Throughput.tick t ()
  done;
  Alcotest.(check int) "total" 35 (Throughput.total_ops t);
  let s = Throughput.series t in
  Alcotest.(check int) "three full windows plus trailing partial" 4
    (List.length s);
  List.iter
    (fun (_, rate) ->
      if rate <= 0.0 then Alcotest.fail "non-positive rate")
    s;
  Alcotest.(check (list int)) "window boundaries" [ 10; 20; 30; 35 ]
    (List.map fst s)

(* Regression: series used to drop ops recorded after the last full window,
   so the bins under-counted total_ops. The last bin must always land on the
   total. *)
let test_throughput_partial_window_counted () =
  let t = Throughput.create ~window:3 in
  for _ = 1 to 10 do
    Throughput.tick t ()
  done;
  let s = Throughput.series t in
  Alcotest.(check int) "bins" 4 (List.length s);
  Alcotest.(check (list int)) "cumulative ops per bin" [ 3; 6; 9; 10 ]
    (List.map fst s);
  Alcotest.(check int) "last bin reaches total_ops" (Throughput.total_ops t)
    (fst (List.nth s (List.length s - 1)));
  (* Exact multiple of the window: no partial bin is fabricated. *)
  let t2 = Throughput.create ~window:5 in
  for _ = 1 to 10 do
    Throughput.tick t2 ()
  done;
  Alcotest.(check (list int)) "exact multiple has no partial bin" [ 5; 10 ]
    (List.map fst (Throughput.series t2))

let test_throughput_bulk_ticks () =
  let t = Throughput.create ~window:100 in
  Throughput.tick t ~n:250 ();
  Alcotest.(check int) "total" 250 (Throughput.total_ops t);
  Alcotest.(check int) "one bin (n>=window flushes once)" 1
    (List.length (Throughput.series t))

let qcheck_histogram_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:50
    QCheck.(small_list (float_bound_exclusive 100000.0))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Histogram.create () in
      List.iter (Histogram.add h) values;
      let p50 = Histogram.percentile h 50.0 in
      let p90 = Histogram.percentile h 90.0 in
      let p99 = Histogram.percentile h 99.0 in
      p50 <= p90 +. 1e-9 && p90 <= p99 +. 1e-9)

let suite =
  [
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram single" `Quick test_histogram_single;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles_uniform;
    Alcotest.test_case "percentile <= max" `Quick
      test_histogram_percentile_bounded_by_max;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram reset" `Quick test_histogram_reset;
    Alcotest.test_case "negative clamped" `Quick test_histogram_negative_clamped;
    Alcotest.test_case "sub-unit samples stay within min/max" `Quick
      test_histogram_sub_unit_samples;
    Alcotest.test_case "throughput series" `Quick test_throughput_series;
    Alcotest.test_case "throughput partial window counted" `Quick
      test_throughput_partial_window_counted;
    Alcotest.test_case "throughput bulk" `Quick test_throughput_bulk_ticks;
    QCheck_alcotest.to_alcotest qcheck_histogram_percentile_monotone;
  ]
