(* Tests for the sharded concurrent front: key routing, cross-shard batches
   and scans, the parallel compaction pool, and a writer/reader stress run
   that doubles as the torn-value check for the shared statistics and the
   block cache counters. *)

module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Config = Wipdb.Config
module Block_cache = Wip_storage.Block_cache
module Histogram = Wip_stats.Histogram
module Throughput = Wip_stats.Throughput

let base_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    (* Leave eligible compactions entirely to the background pool. *)
    compaction_budget_per_batch = 0;
    name = "shard";
  }

(* Spread [i] of [count] uniformly across the engine key space so keys
   actually land on different shards (shard boundaries live at fractions of
   [initial_key_space], formatted "%016Ld"). *)
let key_of ~count i =
  Printf.sprintf "%016Ld"
    Int64.(
      div
        (mul (of_int i) base_config.Config.initial_key_space)
        (of_int count))

let mk_store ?(shards = 4) ?(pool_threads = 2) () =
  let bounds = Config.shard_boundaries base_config ~shards in
  let stores =
    List.mapi
      (fun i lo ->
        let cfg = { base_config with Config.name = Printf.sprintf "shard-%d" i } in
        (lo, Wipdb.Store.create cfg))
      bounds
  in
  Sh.create ~pool_threads ~idle_sleep:0.0005 stores

let test_routing_and_shape () =
  let c = mk_store ~shards:4 () in
  Alcotest.(check int) "shard count" 4 (Sh.shard_count c);
  Alcotest.(check int) "pool size" 2 (Sh.pool_size c);
  let n = 400 in
  for i = 0 to n - 1 do
    Sh.put c ~key:(key_of ~count:n i) ~value:(string_of_int i)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d" i)
      (Some (string_of_int i))
      (Sh.get c (key_of ~count:n i))
  done;
  (* Every shard saw a share of the traffic. *)
  let populated =
    Sh.fold_shards c ~init:0 ~f:(fun acc s ->
        if Wipdb.Store.sequence s > 0L then acc + 1 else acc)
  in
  Alcotest.(check int) "all shards populated" 4 populated;
  Sh.stop c

let test_invalid_partitions () =
  let mk bounds =
    Sh.create ~pool_threads:0
      (List.map (fun lo -> (lo, Wipdb.Store.create base_config)) bounds)
  in
  Alcotest.check_raises "empty" (Invalid_argument
    "Sharded_store.create: at least one shard") (fun () -> ignore (mk []));
  (match mk [ "a"; "b" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "first bound must be \"\"");
  match mk [ ""; "m"; "m" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bounds must be strictly increasing"

let test_cross_shard_write_batch () =
  let c = mk_store ~shards:4 () in
  let n = 40 in
  (* One batch spanning every shard, including a delete of a key written by
     the same batch's predecessor. *)
  Sh.put c ~key:(key_of ~count:n 1) ~value:"doomed";
  let batch =
    List.init n (fun i -> (Wip_util.Ikey.Value, key_of ~count:n i, "b" ^ string_of_int i))
    @ [ (Wip_util.Ikey.Deletion, key_of ~count:n 1, "") ]
  in
  Sh.write_batch c batch;
  Alcotest.(check (option string)) "deleted" None (Sh.get c (key_of ~count:n 1));
  for i = 0 to n - 1 do
    if i <> 1 then
      Alcotest.(check (option string))
        (Printf.sprintf "batch key %d" i)
        (Some ("b" ^ string_of_int i))
        (Sh.get c (key_of ~count:n i))
  done;
  Sh.flush c;
  Alcotest.(check (option string)) "still deleted after flush" None
    (Sh.get c (key_of ~count:n 1));
  Sh.stop c

let test_scan_across_shards () =
  let c = mk_store ~shards:4 () in
  let n = 200 in
  for i = 0 to n - 1 do
    Sh.put c ~key:(key_of ~count:n i) ~value:(string_of_int i)
  done;
  (* Range spanning all four shards. *)
  let lo = key_of ~count:n 10 and hi = key_of ~count:n 190 in
  let r = Sh.scan c ~lo ~hi () in
  Alcotest.(check int) "span size" 180 (List.length r);
  let rec ordered = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.compare a b >= 0 then Alcotest.fail "scan out of order";
      ordered rest
    | _ -> ()
  in
  ordered r;
  Alcotest.(check string) "first" (string_of_int 10) (snd (List.hd r));
  (* Limit cuts across the shard merge, not per shard. *)
  let limited = Sh.scan c ~lo ~hi ~limit:7 () in
  Alcotest.(check int) "limit" 7 (List.length limited);
  Alcotest.(check (list string)) "limited prefix"
    (List.filteri (fun i _ -> i < 7) (List.map snd r))
    (List.map snd limited);
  (* Empty and inverted ranges. *)
  Alcotest.(check int) "inverted" 0 (List.length (Sh.scan c ~lo:hi ~hi:lo ()));
  Sh.stop c

let test_pool_compacts_in_background () =
  let c = mk_store ~shards:4 ~pool_threads:3 () in
  let n = 3000 in
  for i = 0 to (3 * n) - 1 do
    Sh.put c ~key:(key_of ~count:n (i mod n)) ~value:("v" ^ string_of_int i)
  done;
  Sh.stop c;
  let compactions =
    Sh.fold_shards c ~init:0 ~f:(fun acc s -> acc + Wipdb.Store.compaction_count s)
  in
  Alcotest.(check bool)
    (Printf.sprintf "compactions ran (%d over %d pool cycles)" compactions
       (Sh.compaction_cycles c))
    true (compactions > 0);
  Alcotest.(check int) "drained" 0 (Sh.maintenance_pending c);
  for i = 0 to n - 1 do
    if Sh.get c (key_of ~count:n i) = None then Alcotest.failf "lost key %d" i
  done

(* The ISSUE's stress shape: N writer domains + M reader domains over
   disjoint and overlapping ranges. Every read must return a
   previously-written value or None — never a torn value. *)
let test_stress_writers_readers () =
  let c = mk_store ~shards:4 ~pool_threads:2 () in
  let writers = 4 and readers = 4 in
  let per_writer = 600 in
  let disjoint = writers * per_writer in
  (* Overlap range: a band of keys every writer fights over. *)
  let overlap = 64 in
  let overlap_key j = "ovl:" ^ Printf.sprintf "%04d" j in
  let failures = Atomic.make 0 in
  let writer w () =
    for i = 0 to per_writer - 1 do
      let idx = (w * per_writer) + i in
      let k = key_of ~count:disjoint idx in
      Sh.put c ~key:k ~value:(Printf.sprintf "w%d:%s" w k);
      if i mod 7 = 0 then begin
        let j = (idx * 13) mod overlap in
        Sh.put c ~key:(overlap_key j)
          ~value:(Printf.sprintf "%s#%d" (overlap_key j) w)
      end
    done
  in
  let reader _ () =
    for _ = 0 to (2 * disjoint) - 1 do
      let idx = Random.int disjoint in
      let k = key_of ~count:disjoint idx in
      (match Sh.get c k with
      | None -> ()
      | Some v ->
        (* The only writer of this key is its range owner: the value is
           either absent or exactly what that writer put. *)
        let w = idx / per_writer in
        if v <> Printf.sprintf "w%d:%s" w k then Atomic.incr failures);
      let j = Random.int overlap in
      (match Sh.get c (overlap_key j) with
      | None -> ()
      | Some v ->
        (* Contended key: any writer may own it, but the value must be a
           well-formed write, never an interleaving of two. *)
        let prefix = overlap_key j ^ "#" in
        let plen = String.length prefix in
        if
          String.length v <= plen
          || String.sub v 0 plen <> prefix
          || int_of_string_opt (String.sub v plen (String.length v - plen))
             = None
        then Atomic.incr failures)
    done
  in
  let ds =
    List.init writers (fun w -> Domain.spawn (writer w))
    @ List.init readers (fun r -> Domain.spawn (reader r))
  in
  List.iter Domain.join ds;
  Sh.stop c;
  Alcotest.(check int) "no torn values" 0 (Atomic.get failures);
  for idx = 0 to disjoint - 1 do
    let k = key_of ~count:disjoint idx in
    let w = idx / per_writer in
    Alcotest.(check (option string))
      (Printf.sprintf "final key %d" idx)
      (Some (Printf.sprintf "w%d:%s" w k))
      (Sh.get c k)
  done

let test_block_cache_counters_under_contention () =
  let cache = Block_cache.create ~capacity_bytes:(64 * 1024) in
  let domains = 4 and per_domain = 20_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let file = Printf.sprintf "f%d" (i mod 8) in
              let offset = (d + i) mod 32 in
              (match Block_cache.find cache ~file ~offset with
              | Some _ -> ()
              | None -> Block_cache.add cache ~file ~offset "0123456789abcdef");
              ignore (Block_cache.used_bytes cache)
            done))
  in
  List.iter Domain.join ds;
  (* Exactly one counter bumps per lookup — lost updates would break this. *)
  let cc = Block_cache.counters cache in
  Alcotest.(check int) "hits + misses = lookups" (domains * per_domain)
    (cc.Block_cache.c_hits + cc.Block_cache.c_misses)

let test_stats_under_contention () =
  let h = Histogram.create () in
  let tp = Throughput.create ~window:100 in
  let domains = 4 and per_domain = 25_000 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let local = Histogram.create () in
            for i = 1 to per_domain do
              Histogram.add h (float_of_int (i mod 1000));
              Histogram.add local (float_of_int ((d * per_domain) + i));
              Throughput.tick tp ()
            done;
            Histogram.merge h local))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "histogram count (direct + merged)"
    (2 * domains * per_domain) (Histogram.count h);
  Alcotest.(check int) "throughput total" (domains * per_domain)
    (Throughput.total_ops tp);
  let s = Throughput.series tp in
  Alcotest.(check int) "series reaches total" (domains * per_domain)
    (fst (List.nth s (List.length s - 1)))

let suite =
  [
    Alcotest.test_case "routing and shape" `Quick test_routing_and_shape;
    Alcotest.test_case "invalid partitions" `Quick test_invalid_partitions;
    Alcotest.test_case "cross-shard write_batch" `Quick
      test_cross_shard_write_batch;
    Alcotest.test_case "scan across shards" `Quick test_scan_across_shards;
    Alcotest.test_case "pool compacts in background" `Quick
      test_pool_compacts_in_background;
    Alcotest.test_case "stress writers+readers" `Slow
      test_stress_writers_readers;
    Alcotest.test_case "block cache counters" `Slow
      test_block_cache_counters_under_contention;
    Alcotest.test_case "stats under contention" `Slow
      test_stats_under_contention;
  ]
