(* Cross-cutting property tests: invariants that must hold for arbitrary
   inputs and configurations, spanning several libraries at once. *)

module Ikey = Wip_util.Ikey
module Env = Wip_storage.Env
module Io_stats = Wip_storage.Io_stats
module Block = Wip_sstable.Block
module Merge_iter = Wip_sstable.Merge_iter
module Distribution = Wip_workload.Distribution

(* Blocks must roundtrip keys with heavy shared prefixes and arbitrary
   bytes — the prefix-compression path is the risky one. *)
let qcheck_block_prefix_compression =
  QCheck.Test.make ~name:"block roundtrips prefix-heavy binary keys" ~count:100
    QCheck.(small_list (pair small_string small_string))
    (fun raw ->
      let keys =
        raw
        |> List.mapi (fun i (a, b) ->
               (* Construct keys sharing long prefixes deliberately. *)
               ("common-prefix-" ^ a ^ "\x00\xff" ^ b, string_of_int i))
        |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
      in
      let b = Block.Builder.create () in
      List.iter (fun (k, v) -> Block.Builder.add b ~key:k ~value:v) keys;
      let raw_block = Block.Builder.finish b in
      Block.decode_all raw_block = keys)

(* The memcomparable encoding is the load-bearing invariant of the whole
   read path: every hot-path comparison is [String.compare] on encoded
   bytes, which is only correct if it sign-agrees with [Ikey.compare].
   Exercise the nasty cases on purpose: strict-prefix user keys, embedded
   NUL and 0xFF bytes, equal user keys with different sequences/kinds. *)
let qcheck_encode_order_agrees =
  let open QCheck in
  let user_gen =
    (* Small alphabet with the escape-relevant bytes so collisions, shared
       prefixes and escape sequences all occur often. *)
    Gen.(string_size (int_bound 6) ~gen:(oneofl [ '\x00'; '\x01'; 'a'; '\xff' ]))
  in
  let ikey_gen =
    Gen.map3
      (fun user seq kind ->
        Ikey.make user
          ~seq:(Int64.of_int seq)
          ~kind:(if kind then Ikey.Value else Ikey.Deletion))
      user_gen (Gen.int_bound 1000) Gen.bool
  in
  let print ik =
    Printf.sprintf "%S@%Ld/%s" ik.Ikey.user_key ik.Ikey.seq
      (Ikey.kind_to_string ik.Ikey.kind)
  in
  Test.make ~name:"String.compare on encodings sign-agrees with Ikey.compare"
    ~count:2000
    (make ~print:(QCheck.Print.pair print print) Gen.(pair ikey_gen ikey_gen))
    (fun (a, b) ->
      let sign n = Stdlib.compare n 0 in
      sign (String.compare (Ikey.encode a) (Ikey.encode b))
      = sign (Ikey.compare a b)
      (* and the roundtrip stays faithful, so the order claim is about the
         keys we think it is about *)
      && Ikey.decode (Ikey.encode a) = a)

(* compact is idempotent: compacting an already-compacted stream changes
   nothing. *)
let qcheck_compact_idempotent =
  QCheck.Test.make ~name:"merge compact is idempotent" ~count:100
    QCheck.(small_list (pair (int_bound 50) (int_bound 1000)))
    (fun raw ->
      let entries =
        raw
        |> List.map (fun (k, s) ->
               ( Ikey.encode
                   (Ikey.make (Printf.sprintf "%03d" k) ~seq:(Int64.of_int s)),
                 "v" ))
        |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
      in
      let once =
        List.of_seq
          (Merge_iter.compact ~drop_tombstones:true [ List.to_seq entries ])
      in
      let twice =
        List.of_seq
          (Merge_iter.compact ~drop_tombstones:true [ List.to_seq once ])
      in
      once = twice)

(* Splitting one sorted stream into chunks and merging them back is the
   identity. *)
let qcheck_merge_of_partition_is_identity =
  QCheck.Test.make ~name:"merge of a partition restores the stream" ~count:100
    QCheck.(pair (small_list (pair (int_bound 100) (int_bound 100))) (int_range 1 5))
    (fun (raw, parts) ->
      let entries =
        raw
        |> List.map (fun (k, s) ->
               ( Ikey.encode
                   (Ikey.make (Printf.sprintf "%03d" k) ~seq:(Int64.of_int s)),
                 "v" ))
        |> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b)
      in
      let chunks = Array.make parts [] in
      List.iteri (fun i e -> chunks.(i mod parts) <- e :: chunks.(i mod parts)) entries;
      let seqs =
        Array.to_list chunks |> List.map (fun c -> List.to_seq (List.rev c))
      in
      List.of_seq (Merge_iter.merge seqs) = entries)

(* Every distribution shape stays within the space bound. *)
let qcheck_distribution_bounds =
  let shape_gen =
    QCheck.Gen.oneofl
      [
        Distribution.Uniform;
        Distribution.Zipfian { theta = 0.99; scrambled = true };
        Distribution.Zipfian { theta = 0.8; scrambled = false };
        Distribution.Exponential { rate = 5.0 };
        Distribution.Reversed_exponential { rate = 12.0 };
        Distribution.Normal { mean_frac = 0.3; stddev_frac = 0.4 };
        Distribution.Sequential;
        Distribution.Latest { theta = 0.99 };
      ]
  in
  QCheck.Test.make ~name:"all distributions respect the space bound" ~count:40
    (QCheck.make shape_gen)
    (fun shape ->
      let space = 10_000L in
      let g = Distribution.make shape ~space ~seed:9L in
      Distribution.set_bound g 500L;
      let ok = ref true in
      for _ = 1 to 500 do
        let v = Distribution.next g in
        if Int64.compare v 0L < 0 || Int64.compare v space >= 0 then ok := false
      done;
      !ok)

(* Io_stats.diff algebra: diff(current, base) + base = current, per category. *)
let qcheck_io_stats_diff =
  QCheck.Test.make ~name:"io_stats diff is the counter delta" ~count:100
    QCheck.(pair (small_list (pair (int_bound 5) small_nat)) (small_list (pair (int_bound 5) small_nat)))
    (fun (first, second) ->
      let cat = function
        | 0 -> Io_stats.Flush
        | 1 -> Io_stats.Wal
        | 2 -> Io_stats.Compaction 1
        | 3 -> Io_stats.Compaction 3
        | 4 -> Io_stats.Split
        | _ -> Io_stats.Manifest
      in
      let stats = Io_stats.create () in
      List.iter (fun (c, n) -> Io_stats.record_write stats (cat c) n) first;
      let base = Io_stats.snapshot stats in
      List.iter (fun (c, n) -> Io_stats.record_write stats (cat c) n) second;
      let d = Io_stats.diff stats base in
      List.for_all
        (fun c ->
          Io_stats.written_by d (cat c)
          = Io_stats.written_by stats (cat c) - Io_stats.written_by base (cat c))
        [ 0; 1; 2; 3; 4; 5 ])

(* WipDB's WA bound holds for arbitrary (valid) small configurations. *)
let qcheck_wa_bound_random_configs =
  QCheck.Test.make ~name:"WA stays near the paper bound for random configs"
    ~count:8
    QCheck.(triple (int_range 1 4) (int_range 2 6) (int_range 2 8))
    (fun (l_max, t_sublevels, split_fanout) ->
      let cfg =
        {
          Wipdb.Config.default with
          Wipdb.Config.l_max;
          t_sublevels;
          split_fanout;
          memtable_items = 64;
          memtable_bytes = 8 * 1024;
          min_count = 2;
          max_count = max 4 t_sublevels;
          bucket_merge_bytes = 0;
          name = Printf.sprintf "q-%d-%d-%d" l_max t_sublevels split_fanout;
        }
      in
      let db = Wipdb.Store.create cfg in
      for i = 0 to 14_999 do
        Wipdb.Store.put db ~key:(Printf.sprintf "%012d" (i * 31 mod 15_000))
          ~value:"0123456789abcdef0123"
      done;
      let wa = Io_stats.write_amplification (Wipdb.Store.io_stats db) in
      (* 1.4x allowance for format framing + manifest (see test_wipdb). *)
      wa <= Wipdb.Config.wa_upper_bound cfg *. 1.4)

(* A single flipped bit anywhere on the device — sstable, WAL or manifest —
   must never surface as a wrong value. Checksums turn it into a typed
   [Env.Corruption] (or a clean loss of the damaged suffix); silent
   misreads are the one unacceptable outcome. *)
let qcheck_bit_flip_never_wrong =
  QCheck.Test.make ~name:"single bit flip never yields a wrong value" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (file_pick, bit_pick) ->
      let module Fault_env = Wip_storage.Fault_env in
      let cfg =
        {
          Wipdb.Config.default with
          Wipdb.Config.name = "flip";
          memtable_items = 8;
          l_max = 2;
          t_sublevels = 2;
          split_fanout = 2;
          min_count = 2;
          max_count = 2;
          initial_buckets = 1;
          adaptive_memtable = false;
          wal_segment_bytes = 1024;
          bucket_merge_bytes = 0;
          block_cache_bytes = 0;
        }
      in
      let keys = 80 in
      let value i = Printf.sprintf "val-%d" i in
      let fenv = Fault_env.create () in
      let db = Wipdb.Store.create ~env:(Fault_env.env fenv) cfg in
      for i = 0 to keys - 1 do
        Wipdb.Store.put db ~key:(Printf.sprintf "%03d" i) ~value:(value i)
      done;
      Wipdb.Store.checkpoint db;
      let files =
        Env.list_files (Fault_env.env fenv)
        |> List.filter (fun f -> Fault_env.file_size fenv f > 0)
        |> List.sort String.compare
      in
      let file = List.nth files (file_pick mod List.length files) in
      Fault_env.flip_bit fenv ~file
        ~bit:(bit_pick mod (8 * Fault_env.file_size fenv file));
      (* Corruption may be detected at recovery (manifest/WAL damage) or at
         read time (sstable damage); it may lose data; it must never lie. *)
      match Wipdb.Store.recover ~env:(Fault_env.snapshot_env fenv) cfg with
      | exception (Env.Corruption _ | Not_found) -> true
      | db2 ->
        let ok = ref true in
        for i = 0 to keys - 1 do
          match Wipdb.Store.get db2 (Printf.sprintf "%03d" i) with
          | Some v -> if not (String.equal v (value i)) then ok := false
          | None -> () (* loss of the damaged suffix is legal *)
          | exception (Env.Corruption _ | Not_found) -> ()
        done;
        !ok)

(* Recovery is an identity on reads, regardless of where writes stopped. *)
let qcheck_leveled_recovery =
  QCheck.Test.make ~name:"leveled recovery preserves live keys" ~count:10
    QCheck.(small_list (pair (int_bound 80) (option (int_bound 100))))
    (fun ops ->
      let env = Env.in_memory () in
      let cfg =
        {
          (Wip_lsm.Leveled.leveldb_config ~scale:1) with
          Wip_lsm.Leveled.memtable_bytes = 1024;
          sstable_bytes = 512;
          level1_bytes = 4096;
          name = "qlvl";
        }
      in
      let db = Wip_lsm.Leveled.create ~env cfg in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = Printf.sprintf "%04d" k in
          match v with
          | Some v ->
            Wip_lsm.Leveled.put db ~key:k ~value:(string_of_int v);
            Hashtbl.replace model k (Some (string_of_int v))
          | None ->
            Wip_lsm.Leveled.delete db ~key:k;
            Hashtbl.replace model k None)
        ops;
      let db2 = Wip_lsm.Leveled.recover ~env cfg in
      Hashtbl.fold
        (fun k v acc -> acc && Wip_lsm.Leveled.get db2 k = v)
        model true)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_block_prefix_compression;
    QCheck_alcotest.to_alcotest qcheck_encode_order_agrees;
    QCheck_alcotest.to_alcotest qcheck_compact_idempotent;
    QCheck_alcotest.to_alcotest qcheck_merge_of_partition_is_identity;
    QCheck_alcotest.to_alcotest qcheck_distribution_bounds;
    QCheck_alcotest.to_alcotest qcheck_io_stats_diff;
    QCheck_alcotest.to_alcotest qcheck_wa_bound_random_configs;
    QCheck_alcotest.to_alcotest qcheck_bit_flip_never_wrong;
    QCheck_alcotest.to_alcotest qcheck_leveled_recovery;
  ]
