(* Read acceleration: sorted views and the perfect-hash point index.

   - property: a view walk is byte-identical to the pairing-heap reference
     merge (Merge_iter) from arbitrary seek points, including after an
     incremental add_run;
   - property: engine scans with the accelerators on equal the same store
     with them off, under interleaved writes/deletes/flushes/compactions/
     splits, including pinned-snapshot reads;
   - unit: Ph_index build/find roundtrip, alias rate, malformed blocks;
   - unit: table gets through the ph index equal the binary-search path for
     every live version and snapshot. *)

module Ikey = Wip_util.Ikey
module Rng = Wip_util.Rng
module Merge_iter = Wip_sstable.Merge_iter
module Sorted_view = Wip_sstable.Sorted_view
module Ph_index = Wip_sstable.Ph_index
module Table = Wip_sstable.Table
module Io_stats = Wip_storage.Io_stats
module Config = Wipdb.Config
module Store = Wipdb.Store

let key i = Printf.sprintf "%08d" i

(* ------------------------------------------------------------------ *)
(* Pure view-vs-reference property *)

(* [k] runs of encoded entries with globally unique keys (distinct seqs),
   each run sorted by encoded key — the shape every table stream has. *)
let make_runs rng ~k ~n =
  let runs = Array.make k [] in
  for i = 0 to n - 1 do
    let user = key (Rng.int rng 400) in
    let enc = Ikey.encode (Ikey.make user ~seq:(Int64.of_int (i + 1))) in
    let r = Rng.int rng k in
    runs.(r) <- (enc, "v" ^ string_of_int i) :: runs.(r)
  done;
  Array.map
    (fun l -> List.sort (fun (a, _) (b, _) -> String.compare a b) l)
    runs

let reference_merge runs ~from =
  Merge_iter.merge (Array.to_list runs |> List.map List.to_seq)
  |> Seq.filter (fun (k, _) -> String.compare k from >= 0)
  |> List.of_seq

let open_run_of runs r ~from =
  List.to_seq runs.(r) |> Seq.filter (fun (k, _) -> String.compare k from >= 0)

let check_walk name view runs ~from =
  let got =
    Sorted_view.walk view ~from ~open_run:(open_run_of runs) |> List.of_seq
  in
  let want = reference_merge runs ~from in
  if got <> want then
    Alcotest.failf "%s: walk from %S diverged (%d entries vs %d)" name
      (String.escaped from) (List.length got) (List.length want)

let test_view_matches_merge () =
  let rng = Rng.create ~seed:7701L in
  for round = 0 to 9 do
    let k = 1 + Rng.int rng 8 in
    let n = Rng.int rng 1500 in
    let runs = make_runs rng ~k ~n in
    let view = Sorted_view.build (Array.map List.to_seq runs) in
    Alcotest.(check int)
      (Printf.sprintf "round %d entry count" round)
      n (Sorted_view.entry_count view);
    check_walk "full" view runs ~from:"";
    (* Seek from existing keys, keys past the end, and synthetic points. *)
    let all = reference_merge runs ~from:"" in
    for _ = 1 to 25 do
      let from =
        match all with
        | [] -> key (Rng.int rng 400)
        | l ->
          let i = Rng.int rng (List.length l) in
          fst (List.nth l i)
      in
      check_walk "seek" view runs ~from
    done;
    check_walk "past end" view runs ~from:"\255\255"
  done

let test_view_add_run () =
  let rng = Rng.create ~seed:7702L in
  for _ = 0 to 4 do
    let k = 1 + Rng.int rng 5 in
    let runs = make_runs rng ~k:(k + 1) ~n:(200 + Rng.int rng 800) in
    let base = Array.sub runs 0 k in
    let view = Sorted_view.build (Array.map List.to_seq base) in
    let view' =
      Sorted_view.add_run view ~open_run:(open_run_of base)
        (List.to_seq runs.(k))
    in
    Alcotest.(check int) "run count" (k + 1) (Sorted_view.run_count view');
    check_walk "after add_run" view' runs ~from:"";
    for _ = 1 to 10 do
      check_walk "after add_run seek" view' runs ~from:(key (Rng.int rng 400))
    done
  done

(* ------------------------------------------------------------------ *)
(* Ph_index unit tests *)

let test_ph_roundtrip () =
  let rng = Rng.create ~seed:7703L in
  let n = 3000 in
  let keys = Array.init n (fun i -> Printf.sprintf "user-%06d" i) in
  let locators =
    Array.init n (fun _ -> (Rng.int rng 0x10000 lsl 16) lor Rng.int rng 0x10000)
  in
  match Ph_index.build ~keys ~locators with
  | None -> Alcotest.fail "build failed on a well-formed key set"
  | Some block ->
    let r = Ph_index.read block in
    Alcotest.(check int) "key count" n (Ph_index.key_count r);
    Array.iteri
      (fun i k ->
        match Ph_index.find r k ~pos:0 ~len:(String.length k) with
        | Some loc when loc = (locators.(i) lsr 16, locators.(i) land 0xFFFF) ->
          ()
        | Some (b, e) ->
          Alcotest.failf "%s: wrong locator (%d,%d), want (%d,%d)" k b e
            (locators.(i) lsr 16)
            (locators.(i) land 0xFFFF)
        | None -> Alcotest.failf "%s: perfect hash missed a member key" k)
      keys;
    (* Absent keys: fingerprint aliases are possible but must be rare
       (expected rate 1/255 ≈ 0.4%). *)
    let aliases = ref 0 in
    let probes = 2000 in
    for i = 0 to probes - 1 do
      let k = Printf.sprintf "absent-%06d" i in
      match Ph_index.find r k ~pos:0 ~len:(String.length k) with
      | Some _ -> incr aliases
      | None -> ()
    done;
    Alcotest.(check bool)
      (Printf.sprintf "alias rate %d/%d below 2.5%%" !aliases probes)
      true
      (!aliases * 40 < probes)

let test_ph_rejects_overweight () =
  let keys = [| "a"; "b" |] in
  Alcotest.(check bool) "block ordinal over 16 bits" true
    (Ph_index.build ~keys ~locators:[| 0x1_0000_0000; 1 |] = None);
  Alcotest.(check bool) "empty key set" true
    (Ph_index.build ~keys:[||] ~locators:[||] = None)

let test_ph_malformed () =
  let raises s =
    match Ph_index.read s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "malformed block %S parsed" (String.escaped s)
  in
  raises "";
  raises "garbage that is not an index block";
  (* Truncate a valid block: every prefix must be rejected, not mis-read. *)
  let keys = Array.init 50 (fun i -> key i) in
  let locators = Array.init 50 (fun i -> i) in
  match Ph_index.build ~keys ~locators with
  | None -> Alcotest.fail "small build failed"
  | Some block ->
    raises (String.sub block 0 (String.length block / 2));
    raises (String.sub block 0 (String.length block - 1))

(* ------------------------------------------------------------------ *)
(* Table-level: ph path equals binary-search path for every version *)

let test_table_ph_equals_binary () =
  let env = Wip_storage.Env.in_memory () in
  let name = "ph-eq.sst" in
  let b =
    Table.Builder.create env ~name ~category:Io_stats.Flush ~bits_per_key:10
      ~expected_keys:700 ()
  in
  (* 200 users; user i has versions at seqs {3i+3, 3i+2, 3i+1} (descending
     encoded order = ascending table order by encoding), multiples of 7
     deleted at their newest seq. *)
  let seqs_of i = [ 3 * i + 3; 3 * i + 2; 3 * i + 1 ] in
  for i = 0 to 199 do
    List.iter
      (fun s ->
        let kind =
          if i mod 7 = 0 && s = 3 * i + 3 then Ikey.Deletion else Ikey.Value
        in
        Table.Builder.add b
          (Ikey.make ~kind (key i) ~seq:(Int64.of_int s))
          (Printf.sprintf "v%d@%d" i s))
      (seqs_of i)
  done;
  let _meta = Table.Builder.finish b in
  let with_ph = Table.Reader.open_ env ~name in
  let without = Table.Reader.open_ env ~name ~ph:false in
  Alcotest.(check bool) "index present" true (Table.Reader.has_ph with_ph);
  Alcotest.(check bool) "index suppressed" false (Table.Reader.has_ph without);
  Alcotest.(check bool) "index bytes reported" true
    (Table.Reader.ph_bytes with_ph > 0);
  let probe r target =
    match Table.Reader.get_encoded r ~category:Io_stats.Read_path target with
    | Some (kind, v, seq) -> Some (kind, v, seq)
    | None -> None
  in
  (* Every user x every interesting snapshot, plus absent users. *)
  for i = 0 to 209 do
    List.iter
      (fun snap ->
        let target = Ikey.encode_seek (key i) ~seq:(Int64.of_int snap) in
        let a = probe with_ph target and b = probe without target in
        if a <> b then
          Alcotest.failf "user %d snap %d: ph path diverged from binary path"
            i snap)
      [ 0; 3 * i; 3 * i + 1; 3 * i + 2; 3 * i + 3; 10_000 ]
  done;
  (* The ph path was actually exercised. *)
  let stats = Wip_storage.Env.stats env in
  Alcotest.(check bool) "ph probes recorded" true
    (Io_stats.ph_probe_count stats > 0);
  Table.Reader.close with_ph;
  Table.Reader.close without

(* ------------------------------------------------------------------ *)
(* Engine-level equivalence: accelerators on vs off under churn *)

let small_config ~accel name =
  {
    Config.default with
    Config.memtable_items = 48;
    memtable_bytes = 4 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 6;
    initial_buckets = 2;
    sorted_view = accel;
    ph_index = accel;
    name;
  }

let test_store_equivalence_under_churn () =
  let rng = Rng.create ~seed:7704L in
  let on = Store.create (small_config ~accel:true "sv-on") in
  let off = Store.create (small_config ~accel:false "sv-off") in
  let both f =
    f on;
    f off
  in
  let compare_scans tag =
    for _ = 1 to 6 do
      let a = Rng.int rng 600 and b = Rng.int rng 600 in
      let lo = key (min a b) and hi = key (max a b) in
      let sa = Store.scan on ~lo ~hi () and sb = Store.scan off ~lo ~hi () in
      if sa <> sb then
        Alcotest.failf "%s: scan [%s,%s) diverged (%d vs %d entries)" tag lo
          hi (List.length sa) (List.length sb);
      let ia = List.of_seq (Store.iter_range on ~lo ~hi ())
      and ib = List.of_seq (Store.iter_range off ~lo ~hi ()) in
      if ia <> ib then Alcotest.failf "%s: iter_range diverged" tag
    done
  in
  let snaps = ref [] in
  for phase = 0 to 7 do
    for _ = 1 to 300 do
      let k = key (Rng.int rng 600) in
      if Rng.int rng 10 = 0 then both (fun s -> Store.delete s ~key:k)
      else
        let v = Printf.sprintf "p%d-%d" phase (Rng.int rng 1_000_000) in
        both (fun s -> Store.put s ~key:k ~value:v)
    done;
    (* Pin matching snapshots on both stores before more churn. *)
    if phase = 2 || phase = 5 then
      snaps := (Store.snapshot on, Store.snapshot off) :: !snaps;
    if phase mod 2 = 1 then both (fun s -> Store.flush s);
    if phase mod 3 = 2 then both (fun s -> Store.maintenance s ());
    compare_scans (Printf.sprintf "phase %d" phase);
    (* Snapshot-anchored scans must agree long after the pin, across the
       flushes/compactions/splits that happened since. *)
    List.iter
      (fun (sa, sb) ->
        let ra = Store.scan_at on ~lo:"" ~hi:"\255" ~snapshot:sa ()
        and rb = Store.scan_at off ~lo:"" ~hi:"\255" ~snapshot:sb () in
        if ra <> rb then
          Alcotest.failf "phase %d: pinned snapshot scan diverged" phase)
      !snaps
  done;
  List.iter
    (fun (sa, sb) ->
      Wip_kv.Store_intf.release sa;
      Wip_kv.Store_intf.release sb)
    !snaps;
  (* The accelerated store actually used its accelerators. *)
  let stats_on = Wip_storage.Env.stats (Store.env on) in
  Alcotest.(check bool) "views were built" true
    (Io_stats.view_rebuild_count stats_on > 0)

let suite =
  [
    Alcotest.test_case "view matches merge reference" `Quick
      test_view_matches_merge;
    Alcotest.test_case "add_run matches rebuilt merge" `Quick
      test_view_add_run;
    Alcotest.test_case "ph roundtrip + alias rate" `Quick test_ph_roundtrip;
    Alcotest.test_case "ph rejects overweight tables" `Quick
      test_ph_rejects_overweight;
    Alcotest.test_case "ph rejects malformed blocks" `Quick test_ph_malformed;
    Alcotest.test_case "table ph path equals binary path" `Quick
      test_table_ph_equals_binary;
    Alcotest.test_case "store scans: accelerators on = off" `Quick
      test_store_equivalence_under_churn;
  ]
