(* Dynamic/static agreement for the guarded-by discipline (lint rule R8).

   The linter proves, lexically, that every access to a [guarded_by: lock]
   field happens inside [Sync.with_lock lock]. Several modules additionally
   carry a runtime witness — [Sync.check_guard lock ~field] placed beside
   an annotated access — which, in debug mode, checks the lock really is in
   the calling thread's held stack and records a contradiction otherwise.

   This suite drives a concurrent workload through every witness-bearing
   module (sharded store, group commit, block cache, io stats, histogram,
   throughput) with the validator on and asserts the runtime never
   contradicts a static annotation. If an annotation rots — a field's real
   guard changes but the comment (and hence the linter's model) does not —
   the witness fires here before the stale annotation can mislead anyone. *)

module Sync = Wip_util.Sync
module Ikey = Wip_util.Ikey
module Sh = Wip_concurrent.Sharded_store.Make (Wipdb.Store)
module Config = Wipdb.Config
module Group_commit = Wip_server.Group_commit
module Block_cache = Wip_storage.Block_cache
module Io_stats = Wip_storage.Io_stats
module Histogram = Wip_stats.Histogram
module Throughput = Wip_stats.Throughput

let () = Sync.set_debug true

(* The witness mechanism itself: a guarded access outside its lock is a
   contradiction; the same access under the lock is not. *)
let test_witness_mechanism () =
  Sync.reset_guard_contradictions ();
  let l = Sync.create ~name:"probe-lock" () in
  Sync.with_lock l (fun () -> Sync.check_guard l ~field:"probe");
  Alcotest.(check int)
    "no contradiction under the lock" 0
    (Sync.guard_contradiction_count ());
  (* Deliberate negative: the annotation claims [l], but nothing holds it. *)
  Sync.check_guard l ~field:"probe";
  Alcotest.(check int)
    "unlocked access recorded" 1
    (Sync.guard_contradiction_count ());
  (match Sync.guard_contradictions () with
  | [ (field, lock) ] ->
    Alcotest.(check string) "field named" "probe" field;
    Alcotest.(check string) "lock named" "probe-lock" lock
  | l -> Alcotest.failf "expected one contradiction, got %d" (List.length l));
  (* Holding a *different* lock does not satisfy the guard. *)
  let other = Sync.create ~rank:1 ~name:"other-lock" () in
  Sync.with_lock other (fun () -> Sync.check_guard l ~field:"probe");
  Alcotest.(check int)
    "wrong lock recorded" 2
    (Sync.guard_contradiction_count ());
  Sync.reset_guard_contradictions ();
  Alcotest.(check int) "reset clears" 0 (Sync.guard_contradiction_count ())

let base_config =
  {
    Config.default with
    Config.memtable_items = 64;
    memtable_bytes = 8 * 1024;
    t_sublevels = 4;
    min_count = 2;
    max_count = 8;
    compaction_budget_per_batch = 0;
    name = "lockdisc";
  }

let key_of ~count i =
  Printf.sprintf "%016Ld"
    Int64.(
      div
        (mul (of_int i) base_config.Config.initial_key_space)
        (of_int count))

let spawn_all fns = List.map (fun f -> Thread.create f ()) fns

let join_all = List.iter Thread.join

(* Concurrent workload over every witness-bearing module. Static analysis
   says each witness site runs under its annotated lock; the assertion at
   the end says the runtime agreed on every single execution. *)
let test_concurrent_agreement () =
  Sync.reset_guard_contradictions ();
  let v0 = Sync.violation_count () in
  (* Sharded store: parallel writers + readers hit the sub_batch witness
     ("inflight" under the shard lock) through the normal put path. *)
  let bounds = Config.shard_boundaries base_config ~shards:4 in
  let stores =
    List.mapi
      (fun i lo ->
        let cfg =
          { base_config with Config.name = Printf.sprintf "lockdisc-%d" i }
        in
        (lo, Wipdb.Store.create cfg))
      bounds
  in
  let sh = Sh.create ~pool_threads:2 ~idle_sleep:0.0005 stores in
  (* Group commit: concurrent submitters hit the "queue" witness under the
     group-commit lock on every enqueue. *)
  let gc =
    Group_commit.create ~max_delay_s:0.001
      ~commit:(fun batches -> Array.map (fun _ -> Ok ()) batches)
      ()
  in
  (* Leaf-lock modules, shared across threads. *)
  let cache = Block_cache.create ~capacity_bytes:4096 in
  let stats = Io_stats.create () in
  let hist = Histogram.create () in
  let tput = Throughput.create ~window:16 in
  let n = 200 in
  let writer t0 () =
    for i = 0 to n - 1 do
      let k = key_of ~count:n ((i + (t0 * 37)) mod n) in
      Sh.put sh ~key:k ~value:(string_of_int i)
    done
  in
  let reader () =
    for i = 0 to n - 1 do
      ignore (Sh.get sh (key_of ~count:n i))
    done
  in
  let submitter () =
    for i = 0 to 49 do
      ignore (Group_commit.submit gc [ (Ikey.Value, string_of_int i, "v") ])
    done
  in
  let leaf_hammer () =
    for i = 0 to n - 1 do
      Block_cache.add cache ~file:"f" ~offset:(i mod 16) (String.make 32 'x');
      ignore (Block_cache.find cache ~file:"f" ~offset:(i mod 16));
      Io_stats.record_sync stats;
      Histogram.add hist (float_of_int i);
      Throughput.tick tput ()
    done
  in
  join_all
    (spawn_all
       [
         writer 0;
         writer 1;
         reader;
         reader;
         submitter;
         submitter;
         leaf_hammer;
         leaf_hammer;
       ]);
  Group_commit.stop gc;
  Sh.stop sh;
  Alcotest.(check int)
    "runtime never contradicted an annotation" 0
    (Sync.guard_contradiction_count ());
  Alcotest.(check int) "no order violations" v0 (Sync.violation_count ());
  Alcotest.(check int) "nothing held at quiescence" 0 (Sync.held_count ())

let suite =
  [
    Alcotest.test_case "witness mechanism" `Quick test_witness_mechanism;
    Alcotest.test_case "concurrent agreement" `Quick test_concurrent_agreement;
  ]
