(* Readpath regression gate.

   Compares a fresh BENCH_readpath.json against the committed baseline
   (bench/readpath_baseline.json) and fails if the read-path accelerators
   regressed. CI machines differ wildly in raw ns, so only
   machine-independent signals gate:

     - probes/op: restart-interval probe counts are a pure function of the
       workload and table layout. The perfect-hash index pins point gets at
       ~0 probes; a regression here means the PH build or lookup broke and
       gets silently fell back to binary search. Budget: baseline * 1.1
       plus a 0.05 absolute floor (a 0 baseline must not forbid noise).
     - scan_speedup (per engine): the on/off ratio cancels the machine's
       per-entry cost; it falls only if the sorted-view replay stopped
       beating the heap merge. Budget: baseline * 0.9.

   Usage: readpath_gate BASELINE.json FRESH.json *)

(* Minimal JSON reader for the bench's own output: objects, numbers,
   strings, and whatever else appears get tokenized enough to extract
   number fields by path. Not a general parser — input is trusted. *)

type json =
  | Obj of (string * json) list
  | Num of float
  | Str of string
  | Other

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected %c at %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          advance ();
          Buffer.add_char b c
        | None -> raise (Parse "eof in string"));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
      | None -> raise (Parse "eof in string")
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise (Parse "expected , or } in object")
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      let rec num () =
        match peek () with
        | Some ('-' | '+' | '.' | 'e' | 'E' | '0' .. '9') ->
          advance ();
          num ()
        | _ -> ()
      in
      num ();
      Num (float_of_string (String.sub s start (!pos - start)))
    | Some 't' ->
      pos := !pos + 4;
      Other
    | Some 'f' ->
      pos := !pos + 5;
      Other
    | Some 'n' ->
      pos := !pos + 4;
      Other
    | _ -> raise (Parse (Printf.sprintf "unexpected input at %d" !pos))
  in
  let v = parse_value () in
  skip_ws ();
  v

let load file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try parse_json s
  with Parse m -> failwith (Printf.sprintf "%s: bad JSON (%s)" file m)

let field j k =
  match j with Obj fields -> List.assoc_opt k fields | _ -> None

let num_at j path =
  let rec go j = function
    | [] -> ( match j with Num f -> Some f | _ -> None)
    | k :: rest -> ( match field j k with Some v -> go v rest | None -> None)
  in
  go j path

let engine_names j =
  match field j "engines" with
  | Some (Obj fields) -> List.map fst fields
  | _ -> []

let failures = ref 0

let check ~what ~baseline ~fresh ~ok ~budget =
  let pass = ok in
  Printf.printf "%-46s baseline %8.3f  fresh %8.3f  budget %-14s %s\n" what
    baseline fresh budget
    (if pass then "ok" else "REGRESSED");
  if not pass then incr failures

(* probes/op may not regress past baseline * 1.1 (+0.05 absolute so a 0.00
   baseline still tolerates float noise). *)
let gate_probes ~what b f =
  match (b, f) with
  | Some b, Some f ->
    check ~what ~baseline:b ~fresh:f
      ~ok:(f <= (b *. 1.1) +. 0.05)
      ~budget:"<= 1.1x + 0.05"
  | _ ->
    Printf.printf "%-46s missing field\n" what;
    incr failures

(* scan_speedup may not fall below baseline * 0.9. *)
let gate_speedup ~what b f =
  match (b, f) with
  | Some b, Some f ->
    check ~what ~baseline:b ~fresh:f ~ok:(f >= b *. 0.9) ~budget:">= 0.9x"
  | _ ->
    Printf.printf "%-46s missing field\n" what;
    incr failures

let () =
  let baseline_file, fresh_file =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
      prerr_endline "usage: readpath_gate BASELINE.json FRESH.json";
      exit 2
  in
  let b = load baseline_file and f = load fresh_file in
  gate_probes ~what:"point_get_hot_probes_per_op"
    (num_at b [ "point_get_hot_probes_per_op" ])
    (num_at f [ "point_get_hot_probes_per_op" ]);
  gate_probes ~what:"point_get_cold_probes_per_op"
    (num_at b [ "point_get_cold_probes_per_op" ])
    (num_at f [ "point_get_cold_probes_per_op" ]);
  let engines = engine_names b in
  if engines = [] then begin
    Printf.printf "baseline has no engines object\n";
    incr failures
  end;
  List.iter
    (fun e ->
      gate_probes
        ~what:(Printf.sprintf "engines.%s.get_probes_per_op_on" e)
        (num_at b [ "engines"; e; "get_probes_per_op_on" ])
        (num_at f [ "engines"; e; "get_probes_per_op_on" ]);
      gate_speedup
        ~what:(Printf.sprintf "engines.%s.scan_speedup" e)
        (num_at b [ "engines"; e; "scan_speedup" ])
        (num_at f [ "engines"; e; "scan_speedup" ]))
    engines;
  if !failures > 0 then begin
    Printf.printf "readpath_gate: %d regression(s)\n" !failures;
    exit 1
  end;
  Printf.printf "readpath_gate: all read-path acceleration gates hold\n"
