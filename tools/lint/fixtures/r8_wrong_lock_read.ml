(* R8: holding a lock — just not the one the field is guarded by. *)

type t = {
  alock : Wip_util.Sync.t;
  block : Wip_util.Sync.t;
  mutable v : int; (* guarded_by: alock *)
}

let ok t = Wip_util.Sync.with_lock t.alock (fun () -> t.v)

let bad t = Wip_util.Sync.with_lock t.block (fun () -> t.v) (* FINDING: R8 *)
