(* Fixture: R4 — device I/O that Io_stats never sees. *)

let slurp path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in (* FINDING: R4 *)
  let buf = Bytes.create 4096 in
  let n = Unix.read fd buf 0 4096 in (* FINDING: R4 *)
  Unix.close fd; (* FINDING: R4 *)
  Bytes.sub_string buf 0 n

(* Negative cases: the clock/sleep allowlist. *)
let now () = Unix.gettimeofday ()

let nap () = Unix.sleepf 0.01
