(* Fixture: R6 — matching Io_fault in a handler outside the fault layer
   (Wip_util.Retry / lib/storage). The linter is purely syntactic, so a
   local exception of the same name stands in for Storage.Env.Io_fault. *)

exception Io_fault of { op : string; file : string; retryable : bool }

let swallow f =
  try Some (f ()) with
  | Io_fault _ -> None (* FINDING: R6 *)

let classify e =
  match e with
  | Io_fault { retryable = true; _ } -> "transient" (* FINDING: R6 *)
  | _ -> "other"

let probe f =
  match f () with
  | v -> Some v
  | exception Io_fault _ -> None (* FINDING: R6 *)

let qualified f =
  try Some (f ()) with
  | Io_fault { retryable = false; _ } -> None (* FINDING: R6 *)
  | _ -> None

let allowed f =
  (* lint: allow R6 — fixture: suppression must be honored and counted *)
  try Some (f ()) with Io_fault _ -> None

let raising_is_fine () =
  (* Constructing the fault is expression syntax, not a handler. *)
  raise (Io_fault { op = "append"; file = "x.lvt"; retryable = true })
