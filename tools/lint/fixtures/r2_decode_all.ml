(* Fixture: R2 — full-block decode outside test/ and tools. *)

let block_entries raw = Block.decode_all raw (* FINDING: R2 *)

let qualified raw = Wip_sstable.Block.decode_all raw (* FINDING: R2 *)

(* Negative case: the cursor read path. *)
let first_entry raw =
  let c = Block.Cursor.create raw in
  if Block.Cursor.next c then Some (Block.Cursor.key c) else None
