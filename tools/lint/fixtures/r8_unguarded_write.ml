(* R8: writing a guarded field outside its lock. *)

type t = {
  lock : Wip_util.Sync.t;
  mutable count : int; (* guarded_by: lock *)
}

let good t = Wip_util.Sync.with_lock t.lock (fun () -> t.count <- t.count + 1)

let bad t = t.count <- 0 (* FINDING: R8 *)
