(* Fixture: R3 — bare mutex operations leak the lock on exception. *)

let m = Mutex.create () (* FINDING: R3 *)

let unsafe_incr r =
  Mutex.lock m; (* FINDING: R3 *)
  incr r;
  Mutex.unlock m (* FINDING: R3 *)

let wait_nonempty cond = Condition.wait cond m (* FINDING: R3 *)

(* Negative case: the Sync wrappers are the sanctioned entry points. *)
let safe_incr lock r = Wip_util.Sync.with_lock lock (fun () -> incr r)
