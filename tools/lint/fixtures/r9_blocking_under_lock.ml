(* R9: durable I/O, retries and sleeps must not run while a lock is held. *)

let flush env lock =
  Wip_util.Sync.with_lock lock (fun () -> Storage.Env.sync env) (* FINDING: R9 *)

let sleepy lock =
  Wip_util.Sync.with_lock lock (fun () -> Unix.sleepf 0.01) (* FINDING: R9 *)

let retrying env lock =
  Wip_util.Sync.with_lock lock (fun () ->
      Wip_util.Retry.with_retries (fun () -> Storage.Env.sync env)) (* FINDING: R9 *)

(* A deliberate leaf-lock flush site: justified and suppressed. *)
let deliberate env lock =
  Wip_util.Sync.with_lock lock (fun () ->
      (* lint: allow R9 — leaf lock, one-frame flush, measured *)
      Storage.Env.sync env)

let staged env lock =
  Wip_util.Sync.with_lock lock (fun () -> ());
  Storage.Env.sync env
