(* Fixture: suppressions — both scopes must be honored and counted. *)
(* lint: allow-file R5 — fixture exercises file-scope suppressions *)

let m = ref 0

let held_dump lock =
  (* lint: allow R3 — fixture: inline suppression on the preceding line *)
  Mutex.lock lock;
  incr m;
  Mutex.unlock lock; (* lint: allow R3 — fixture: same-line suppression *)
  print_endline "released"
