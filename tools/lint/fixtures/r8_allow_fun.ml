(* allow-fun: one justified suppression covers every access in a binding
   (the static analogue of NO_THREAD_SAFETY_ANALYSIS). *)

type t = {
  lock : Wip_util.Sync.t;
  mutable a : int; (* guarded_by: lock *)
  mutable b : int; (* guarded_by: lock *)
}

(* lint: allow-fun R8 — diffing private snapshot copies, never shared *)
let diff x y = (x.a - y.a) + (x.b - y.b)

let bad t = t.a (* FINDING: R8 *)
