(* R8: a Sync.await predicate body is modeled as lock-released — await
   drops and retakes the lock around every poll, so the enclosing critical
   section is not continuous across it. *)

type t = {
  lock : Wip_util.Sync.t;
  mutable ready : bool; (* guarded_by: lock *)
}

let wait t deadline =
  Wip_util.Sync.with_lock t.lock (fun () ->
      Wip_util.Sync.await t.lock ~deadline (fun () -> t.ready)) (* FINDING: R8 *)

let still_inside t deadline =
  Wip_util.Sync.with_lock t.lock (fun () ->
      Wip_util.Sync.await t.lock ~deadline (fun () -> true);
      t.ready)
