(* Fixture: an allowance nothing uses is itself a finding (USED-ALLOWS: 0). *)
(* lint: allow R2 — stale: nothing below decodes a block *) (* FINDING: R0 *)

let id x = x
