(* Fixture: R1 — polymorphic comparison primitives on key values. *)

let lookup table key = List.exists (fun (k, _) -> k = key) table (* FINDING: R1 *)

let stale old_key new_key = old_key <> new_key (* FINDING: R1 *)

let clamp_key lo key = max lo key (* FINDING: R1 *)

let hash_route shards key = Hashtbl.hash key mod shards (* FINDING: R1 *)

let before a b = Stdlib.compare a.key b.key < 0 (* FINDING: R1 *)

(* Negative cases: typed module compares and key *measurements* are fine. *)
let ordered a b = String.compare a b <= 0

let fits n key_bytes = n = key_bytes

let same_key a b = Ikey.compare a b = 0
