(* R10: nested acquisitions must strictly ascend in rank where ranks are
   known at lint time. *)

let outer = Wip_util.Sync.create ~rank:200 ~name:"outer" ()
let inner = Wip_util.Sync.create ~rank:100 ~name:"inner" ()

let ok () =
  Wip_util.Sync.with_lock inner (fun () ->
      Wip_util.Sync.with_lock outer (fun () -> ()))

let bad () =
  Wip_util.Sync.with_lock outer (fun () ->
      Wip_util.Sync.with_lock inner (fun () -> ())) (* FINDING: R10 *)

let bad_equal () =
  Wip_util.Sync.with_lock outer (fun () ->
      Wip_util.Sync.with_lock outer (fun () -> ())) (* FINDING: R10 *)

let bad_ordered () =
  Wip_util.Sync.with_locks_ordered [ outer; inner ] (fun () -> ()) (* FINDING: R10 *)
