(* R8: mutable fields in a module that uses Sync must carry guarded_by. *)

type t = {
  lock : Wip_util.Sync.t;
  mutable hits : int; (* FINDING: R8 *)
  mutable misses : int; (* guarded_by: lock *)
}

let touch t =
  Wip_util.Sync.with_lock t.lock (fun () -> t.misses <- t.misses + 1)
