(* Fixture: R7 negative — lib/sstable owns the heap merge: view rebuilds
   and compaction are built on it. *)

let build runs = Merge_iter.merge_by ~compare:String.compare runs

let merge_runs seqs = Merge_iter.merge seqs
