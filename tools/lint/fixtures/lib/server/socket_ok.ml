(* Fixture: R4 negative — the socket surface is legal under lib/server/
   (this file's path puts it there). No findings expected: network bytes
   are not device I/O, so the Env/Io_stats accounting boundary is not
   bypassed. *)

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

let serve_one fd =
  let client, _ = Unix.accept fd in
  let buf = Bytes.create 512 in
  let n = Unix.read client buf 0 512 in
  let _ = Unix.write client buf 0 n in
  Unix.close client

(* Still banned even here: file I/O around the engine. *)
let side_channel path =
  Unix.openfile path [ Unix.O_RDONLY ] 0 (* FINDING: R4 *)
