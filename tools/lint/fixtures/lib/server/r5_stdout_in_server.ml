(* Fixture: R5 stays enforced over lib/server/ — the socket allowance for
   R4 must not loosen the no-stdout rule for the new subsystem. *)

let log_connection addr =
  Printf.printf "accepted %s\n" addr; (* FINDING: R5 *)
  print_endline "serving" (* FINDING: R5 *)

(* Negative case: stderr diagnostics remain fine. *)
let complain msg = prerr_endline msg
