(* Fixture: R7 — heap merges outside lib/sstable bypass the sorted view. *)

let scan_all seqs = Merge_iter.merge seqs (* FINDING: R7 *)

let scan_user seqs =
  Wip_sstable.Merge_iter.merge_by ~compare:String.compare seqs (* FINDING: R7 *)

(* Negative case: compact is the sanctioned engine entry point. *)
let flush seqs = Merge_iter.compact ~dedup_user_keys:true seqs

(* Suppressed case: disjoint-shard concatenation is not a run merge. *)
let shard_concat seqs =
  (* lint: allow R7 — fixture: shard streams are disjoint, not runs *)
  Merge_iter.merge_by ~compare:String.compare seqs
