(* Fixture: R4 — the lib/server/ socket allowance must not leak into the
   rest of lib/: this file's path places it under lib/core/, where every
   socket call is still a finding. *)

let listen_on port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in (* FINDING: R4 *)
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)); (* FINDING: R4 *)
  Unix.listen fd 16; (* FINDING: R4 *)
  fd

let shovel fd =
  let buf = Bytes.create 512 in
  let n = Unix.read fd buf 0 512 in (* FINDING: R4 *)
  Unix.write fd buf 0 n (* FINDING: R4 *)

(* Negative case: the clock allowlist still applies everywhere. *)
let now () = Unix.gettimeofday ()
