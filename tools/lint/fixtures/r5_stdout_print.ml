(* Fixture: R5 — stdout chatter from library code. *)

let report n =
  Printf.printf "compactions: %d\n" n; (* FINDING: R5 *)
  print_endline "done" (* FINDING: R5 *)

(* Negative cases: building strings and stderr diagnostics are fine. *)
let describe n = Printf.sprintf "compactions: %d" n

let complain msg = prerr_endline msg
