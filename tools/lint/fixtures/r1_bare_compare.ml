(* Fixture: R1 — bare [compare] is Stdlib.compare in disguise. *)

let sort_entries entries = List.sort compare entries (* FINDING: R1 *)

(* Negative case: a locally-bound [compare] (here a labelled parameter, the
   Merge_iter / Block.seek idiom) is not the polymorphic primitive. *)
let seek ~compare keys = List.find (fun k -> compare k >= 0) keys
