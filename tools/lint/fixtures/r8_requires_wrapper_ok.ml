(* Zero findings: wrapper inference, requires preconditions, and the
   reserved guards (caller / none) together cover the idioms the lexical
   analysis meets in the tree. *)

type t = {
  lock : Wip_util.Sync.t;
  mutable used : int; (* guarded_by: lock *)
  mutable workers : int list; (* guarded_by: none — joined at stop only *)
}

let locked t f = Wip_util.Sync.with_lock t.lock f

(* requires: lock *)
let bump t = t.used <- t.used + 1

let touch t =
  locked t (fun () ->
      bump t;
      t.used)

type engine = { mutable seq : int (* guarded_by: caller — shard lock held *) }

let next e =
  e.seq <- e.seq + 1;
  e.seq
